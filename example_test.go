package nestedsg_test

import (
	"fmt"

	"nestedsg"
)

// Example runs two nested transactions concurrently under Moss' locking,
// checks the behavior with the serialization-graph construction, and
// materializes the serial witness.
func Example() {
	tr := nestedsg.NewTree()
	x := tr.AddObject("x", nestedsg.SpecByName("register"))

	writer := nestedsg.Seq("writer", nestedsg.Access("w", x, nestedsg.WriteOp(7)))
	reader := nestedsg.Seq("reader", nestedsg.Access("r", x, nestedsg.ReadOp()))
	root := nestedsg.Par("T0", writer, reader)

	trace, _, err := nestedsg.Run(tr, root, nestedsg.RunOptions{
		Seed: 1, Protocol: nestedsg.MossLocking(),
	})
	if err != nil {
		panic(err)
	}
	res := nestedsg.Check(tr, trace)
	fmt.Println("checker ok:", res.OK)

	gamma, err := nestedsg.SerialWitness(tr, root, trace, res.Certificate)
	if err != nil {
		panic(err)
	}
	fmt.Println("witness is serial:", nestedsg.ValidateSerial(tr, gamma) == nil)
	// Output:
	// checker ok: true
	// witness is serial: true
}

// ExampleUndoLogging shows the §6 generalization: commuting counter
// increments proceed without blocking under undo logging.
func ExampleUndoLogging() {
	tr := nestedsg.NewTree()
	c := tr.AddObject("hits", nestedsg.SpecByName("counter"))

	root := nestedsg.Par("T0",
		nestedsg.Seq("a", nestedsg.Access("i1", c, nestedsg.IncOp(2))),
		nestedsg.Seq("b", nestedsg.Access("i2", c, nestedsg.IncOp(3))),
	)
	trace, stats, err := nestedsg.Run(tr, root, nestedsg.RunOptions{
		Seed: 4, Protocol: nestedsg.UndoLogging(),
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("blocked polls:", stats.Blocked)
	fmt.Println("checker ok:", nestedsg.Check(tr, trace).OK)
	// Output:
	// blocked polls: 0
	// checker ok: true
}

// ExampleRunSerial drives the specification system directly: the serial
// scheduler runs siblings one at a time.
func ExampleRunSerial() {
	tr := nestedsg.NewTree()
	x := tr.AddObject("x", nestedsg.SpecByName("register"))
	root := nestedsg.Par("T0",
		nestedsg.Seq("t1", nestedsg.Access("w", x, nestedsg.WriteOp(9))),
		nestedsg.Seq("t2", nestedsg.Access("r", x, nestedsg.ReadOp())),
	)
	trace, err := nestedsg.RunSerial(tr, root, 0)
	if err != nil {
		panic(err)
	}
	fmt.Println("serial:", nestedsg.ValidateSerial(tr, trace) == nil)
	// Output:
	// serial: true
}
