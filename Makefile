GO ?= go

.PHONY: all build test vet sgvet lockreport race fuzz-short bench-smoke bench-json bench-gate bench-server bench-server-gate serve loadtest-smoke sim-soak ci

all: build test vet sgvet

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The repo's own analyzers (exhaustivekind, noeventliteral, checkederr,
# tnamecompare, behaviorimmutable, simdeterminism, lockguard, lockorder,
# hotalloc); see internal/analysis/README.md.
sgvet:
	$(GO) run ./cmd/sgvet ./...

# Dump the global lock-order graph of the concurrent packages as DOT —
# the acyclic graph the lockorder analyzer enforces; DESIGN.md §11
# commits the current rendering.
lockreport:
	$(GO) run ./cmd/sgvet -lockdot ./internal/server ./internal/sim ./internal/client ./internal/core ./internal/part ./internal/mvto ./internal/replica

race:
	$(GO) test -race ./...

# Short fuzz pass over the trace codec round-trip properties, the WAL
# recovery path, and the moss-vs-undolog backend differential. The
# committed seeds live under */testdata/fuzz/.
fuzz-short:
	$(GO) test -run '^$$' -fuzz '^FuzzTraceRoundTrip$$' -fuzztime 10s ./internal/event
	$(GO) test -run '^$$' -fuzz '^FuzzBinaryTraceRoundTrip$$' -fuzztime 10s ./internal/event
	$(GO) test -run '^$$' -fuzz '^FuzzRecoveryReplay$$' -fuzztime 10s ./internal/server
	$(GO) test -run '^$$' -fuzz '^FuzzPartitionedCertificate$$' -fuzztime 10s ./internal/part
	$(GO) test -run '^$$' -fuzz '^FuzzBackendDifferential$$' -fuzztime 10s ./internal/sim

# One iteration of every benchmark: catches benchmarks that no longer
# compile or fail their correctness assertions, without measuring anything.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# Refresh the "current" side of BENCH_PR3.json from a fresh run of the
# gated checker benchmarks (E1, E15) plus the trace-codec table (E16). The
# committed "baseline" side (the pre-optimization numbers) is preserved.
bench-json:
	$(GO) test -run '^$$' -bench 'E1MossSerialCorrectness|E15|E16' -benchmem -count 1 . \
		| $(GO) run ./cmd/benchdiff -write-current BENCH_PR3.json

# Fail when the checker benchmarks regress against the committed baseline
# by more than 25% in allocs/op or B/op (ns/op is reported but never gated
# — wall-clock timing is hardware noise on shared runners).
bench-gate: bench-json
	$(GO) run ./cmd/benchdiff -suite BENCH_PR3.json \
		-match 'E1MossSerialCorrectness|E15' -max-allocs-regress 25 -max-bytes-regress 25

# Refresh the "current" side of BENCH_SERVER.json: the server hot-path
# micro benchmarks (sharded log append with WAL attached and the merger
# live, group-commit ticket protocol, full client/server session round
# trip, partitioned certifier apply+compose) plus a short certified
# nestedload sweep over clients × read-ratio × zipf × shards ×
# certifier partitions, whose latency percentiles and throughput parse
# into the suite as first-class columns (p50-us, p99-us, tx/s).
bench-server:
	( $(GO) test -run '^$$' -bench 'ShardedLogAppend|ServerGroupCommit|ServerSessionRoundTrip' -benchmem -count 1 ./internal/server ; \
	  $(GO) test -run '^$$' -bench 'PartitionedApply' -benchmem -count 1 ./internal/part ; \
	  $(GO) run ./cmd/nestedload -sweep -dur 250ms -objects 8 \
		-sweep-clients 1,4,8 -sweep-readratios 0.2,0.8 -sweep-zipfs 0,1.5 -sweep-shards 1,4 \
		-sweep-partitions 1,4 ; \
	  $(GO) run ./cmd/nestedload -sweep -dur 250ms -objects 8 \
		-sweep-backends moss,undolog,mvto,replica -sweep-clients 8 \
		-sweep-readratios 0.5,0.95 -sweep-zipfs 0 -sweep-shards 1 -sweep-partitions 1 ) \
		| $(GO) run ./cmd/benchdiff -write-current BENCH_SERVER.json

# Fail when the server hot-path benchmarks regress against the committed
# baseline by more than 25% in allocs/op or B/op. Sweep latency and
# throughput are reported in the diff table but never gated — wall-clock
# numbers are hardware noise on shared runners.
bench-server-gate: bench-server
	$(GO) run ./cmd/benchdiff -suite BENCH_SERVER.json \
		-match 'ShardedLogAppend|ServerGroupCommit|ServerSessionRoundTrip|PartitionedApply' -max-allocs-regress 25 -max-bytes-regress 25

# Run the certified transaction server on the default port. SIGTERM (or
# ctrl-C) drains it and prints the final online-vs-batch certificate.
serve:
	$(GO) run ./cmd/nestedsgd -addr 127.0.0.1:7474 -objects x,y,z

# Certified load tests against in-process servers, one per object
# backend: each exits nonzero unless every commit certified and the final
# online SG snapshot matches the batch check byte-for-byte.
loadtest-smoke:
	$(GO) run ./cmd/nestedload -selfserve -backend moss -workers 8 -dur 1s -objects 4 -zipf 1.2 -bench
	$(GO) run ./cmd/nestedload -selfserve -backend undolog -workers 8 -dur 250ms -objects 4 -zipf 1.2
	$(GO) run ./cmd/nestedload -selfserve -backend mvto -workers 8 -dur 250ms -objects 4 -readratio 0.8
	$(GO) run ./cmd/nestedload -selfserve -backend replica -workers 8 -dur 250ms -objects 4 -zipf 1.2

# Long deterministic fault-injection soak: 64 seeds, every fault class,
# both protocols. Any failure prints the uint64 seed that replays it;
# SIM_FAILURE_DIR (set in CI) collects per-seed repro artifacts.
sim-soak:
	$(GO) test ./internal/sim -run TestSimLongSoak -seeds 64 -timeout 20m

# Everything CI runs, in order (CI runs the sim soak in short mode with
# -race; sim-soak above is the long local version).
ci: build vet sgvet race bench-smoke loadtest-smoke bench-gate bench-server-gate
