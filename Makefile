GO ?= go

.PHONY: all build test vet sgvet race fuzz-short bench-smoke ci

all: build test vet sgvet

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The repo's own analyzers (exhaustivekind, noeventliteral, checkederr,
# tnamecompare, behaviorimmutable); see internal/analysis/README.md.
sgvet:
	$(GO) run ./cmd/sgvet ./...

race:
	$(GO) test -race ./...

# Short fuzz pass over the trace codec round-trip property. The committed
# seeds live in internal/event/testdata/fuzz/FuzzTraceRoundTrip/.
fuzz-short:
	$(GO) test -run '^$$' -fuzz '^FuzzTraceRoundTrip$$' -fuzztime 10s ./internal/event

# One iteration of every benchmark: catches benchmarks that no longer
# compile or fail their correctness assertions, without measuring anything.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# Everything CI runs, in order.
ci: build vet sgvet race bench-smoke
