package main

import (
	"os"
	"strings"
	"syscall"
	"testing"

	"nestedsg/internal/client"
	"nestedsg/internal/spec"
)

// startDaemon runs the daemon main loop in a goroutine and returns the bound
// address, the signal channel that triggers drain, and the exit-code channel.
func startDaemon(t *testing.T, args ...string) (string, chan os.Signal, <-chan int, *strings.Builder) {
	t.Helper()
	sig := make(chan os.Signal, 1)
	ready := make(chan string, 1)
	code := make(chan int, 1)
	var out strings.Builder
	go func() {
		var errBuf strings.Builder
		c := run(args, &out, &errBuf, sig, ready)
		if errBuf.Len() > 0 {
			t.Log("stderr:", errBuf.String())
		}
		code <- c
	}()
	addr, ok := <-ready, true
	if addr == "" {
		ok = false
	}
	if !ok {
		t.Fatal("daemon never became ready")
	}
	return addr, sig, code, &out
}

func TestDaemonServeDrainVerify(t *testing.T) {
	addr, sig, code, out := startDaemon(t, "-addr", "127.0.0.1:0", "-objects", "x,y", "-shards", "3")

	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.RunTx(5, func(tx *client.Tx) error {
		if _, err := tx.Access("x", spec.OpWrite, spec.Int(1)); err != nil {
			return err
		}
		_, err := tx.Access("y", spec.OpRead, spec.Nil)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	c.Close()

	sig <- syscall.SIGTERM
	if got := <-code; got != 0 {
		t.Fatalf("daemon exited %d\noutput:\n%s", got, out.String())
	}
	for _, want := range []string{
		"nestedsgd: listening on",
		"draining...",
		"final certificate: serially correct for T0",
		"online snapshot matches batch SG byte-for-byte",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

// TestDaemonWalRestart: with -wal, the daemon replays the durable log on
// boot. A second incarnation over the same directory reports the first
// run's events in its recovery summary and keeps serving.
func TestDaemonWalRestart(t *testing.T) {
	dir := t.TempDir()

	addr, sig, code, out := startDaemon(t, "-addr", "127.0.0.1:0", "-objects", "x", "-wal", dir)
	if !strings.Contains(out.String(), "recovered 0 events") {
		t.Errorf("fresh boot missing empty recovery summary:\n%s", out.String())
	}
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.RunTx(3, func(tx *client.Tx) error {
		_, err := tx.Access("x", spec.OpWrite, spec.Int(42))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	c.Close()
	sig <- syscall.SIGTERM
	if got := <-code; got != 0 {
		t.Fatalf("first incarnation exited %d\noutput:\n%s", got, out.String())
	}

	addr2, sig2, code2, out2 := startDaemon(t, "-addr", "127.0.0.1:0", "-wal", dir)
	if !strings.Contains(out2.String(), "audit: ok") ||
		strings.Contains(out2.String(), "recovered 0 events") {
		t.Errorf("restart did not replay the first run's log:\n%s", out2.String())
	}
	c2, err := client.Dial(addr2)
	if err != nil {
		t.Fatal(err)
	}
	if err := c2.RunTx(3, func(tx *client.Tx) error {
		_, err := tx.Access("x", spec.OpWrite, spec.Int(43))
		return err
	}); err != nil {
		t.Fatalf("transaction after recovery: %v", err)
	}
	c2.Close()
	sig2 <- syscall.SIGTERM
	if got := <-code2; got != 0 {
		t.Fatalf("second incarnation exited %d\noutput:\n%s", got, out2.String())
	}
	for _, want := range []string{
		"final certificate: serially correct for T0",
		"online snapshot matches batch SG byte-for-byte",
	} {
		if !strings.Contains(out2.String(), want) {
			t.Errorf("restart output missing %q:\n%s", want, out2.String())
		}
	}
}

func TestDaemonBadFlags(t *testing.T) {
	var out, errBuf strings.Builder
	if got := run([]string{"-protocol", "nope"}, &out, &errBuf, nil, nil); got != 2 {
		t.Fatalf("unknown protocol: exit %d, want 2", got)
	}
	if !strings.Contains(errBuf.String(), "unknown protocol") {
		t.Fatalf("stderr: %s", errBuf.String())
	}
	errBuf.Reset()
	if got := run([]string{"-spec", "nope"}, &out, &errBuf, nil, nil); got != 2 {
		t.Fatalf("unknown spec: exit %d, want 2", got)
	}
}
