// Command nestedsgd serves nested transactions over TCP with online SG
// certification: every committed response is backed by an acyclic SG(β)
// prefix of the server's event log. On SIGINT/SIGTERM it drains connections,
// recomputes the whole log offline, and cross-checks the online certifier's
// final snapshot against the batch graph before exiting.
//
// Usage:
//
//	nestedsgd -addr :7474 -backend moss -spec register -objects x,y,z
//	nestedsgd -addr :7474 -backend mvto          # multiversion TO + lock-free read-only snapshots
//	nestedsgd -addr :7474 -backend replica -replica-copies 5 -replica-read-quorum 3 -replica-write-quorum 3
//	nestedsgd -addr :7474 -metrics :7475     # JSON at /metrics, expvar at /debug/vars
//	nestedsgd -addr :7474 -wal /var/lib/nestedsgd/wal   # durable log; replayed and audited on boot
//
// Backends: moss, undolog, mvto, replica (-protocol is the legacy alias
// for the first two). Specs: register, counter, account, set, appendlog,
// queue (mvto and replica support register only).
package main

import (
	"context"
	"expvar"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"nestedsg/internal/locking"
	"nestedsg/internal/object"
	"nestedsg/internal/server"
	"nestedsg/internal/spec"
	"nestedsg/internal/undolog"
)

func main() {
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr, sig, nil))
}

func protocolByName(name string) object.Protocol {
	switch name {
	case "moss":
		return locking.Protocol{}
	case "undolog":
		return undolog.Protocol{}
	}
	return nil
}

// expvarOnce guards the process-global expvar name: tests run the server
// more than once per process, and expvar.Publish panics on duplicates. The
// first server in the process wins the expvar slot; the per-server HTTP
// -metrics endpoint is unaffected.
var expvarOnce sync.Once

func publishExpvar(s *server.Server) {
	expvarOnce.Do(func() {
		expvar.Publish("nestedsgd", expvar.Func(func() any { return s.MetricsSnapshot() }))
	})
}

// run starts the server and blocks until a signal arrives (or sig closes).
// ready, when non-nil, receives the bound listener address once accepting.
func run(args []string, stdout, stderr io.Writer, sig <-chan os.Signal, ready chan<- string) int {
	fs := flag.NewFlagSet("nestedsgd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr         = fs.String("addr", "127.0.0.1:7474", "TCP listen address")
		metricsAddr  = fs.String("metrics", "", "serve JSON metrics on this HTTP address ('' disables)")
		protoName    = fs.String("protocol", "", "legacy alias for -backend: moss or undolog")
		backendName  = fs.String("backend", "", "object backend: moss (default), undolog, mvto, replica")
		replicaN     = fs.Int("replica-copies", 0, "replica backend: copy count N (0 = server default 3)")
		replicaR     = fs.Int("replica-read-quorum", 0, "replica backend: read quorum R (0 = server default 2)")
		replicaW     = fs.Int("replica-write-quorum", 0, "replica backend: write quorum W (0 = server default 2)")
		specName     = fs.String("spec", "register", "object type for new objects: register, counter, account, set, appendlog, queue")
		objects      = fs.String("objects", "", "comma-separated object labels to pre-create")
		walDir       = fs.String("wal", "", "directory for the durable write-ahead log; on boot, replay and audit it before serving ('' = in-memory, no durability)")
		shards       = fs.Int("shards", 0, "event-log append shards (0 = server default)")
		certParts    = fs.Int("cert-partitions", 0, "certifier partitions; >1 certifies via per-partition SG workers with cross-partition edge exchange (0 or 1 = single certifier)")
		lockTimeout  = fs.Duration("lock-timeout", time.Second, "abort a transaction whose access waits this long")
		drainTimeout = fs.Duration("drain-timeout", 5*time.Second, "shutdown: force-close busy connections after this long")
		verbose      = fs.Bool("v", false, "log per-session aborts")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	backend := *backendName
	if *protoName != "" {
		// -protocol is the legacy alias; it resolves to the same backends.
		if backend != "" {
			fmt.Fprintln(stderr, "nestedsgd: -protocol and -backend are both set; use -backend")
			return 2
		}
		if protocolByName(*protoName) == nil {
			fmt.Fprintf(stderr, "nestedsgd: unknown protocol %q (want moss or undolog)\n", *protoName)
			return 2
		}
		backend = *protoName
	}
	if backend == "" {
		backend = "moss"
	}
	sp := spec.ByName(*specName)
	if sp == nil {
		fmt.Fprintf(stderr, "nestedsgd: unknown spec %q\n", *specName)
		return 2
	}
	opts := server.Options{
		Backend:            backend,
		DefaultSpec:        sp,
		LockTimeout:        *lockTimeout,
		LogShards:          *shards,
		CertPartitions:     *certParts,
		ReplicaCopies:      *replicaN,
		ReplicaReadQuorum:  *replicaR,
		ReplicaWriteQuorum: *replicaW,
	}
	if err := server.ValidateBackendOptions(opts); err != nil {
		fmt.Fprintln(stderr, "nestedsgd:", err)
		return 2
	}
	if *objects != "" {
		for _, label := range strings.Split(*objects, ",") {
			if label = strings.TrimSpace(label); label != "" {
				opts.Objects = append(opts.Objects, label)
			}
		}
	}
	if *verbose {
		opts.Logf = func(format string, a ...any) { fmt.Fprintf(stderr, "nestedsgd: "+format+"\n", a...) }
	}

	var s *server.Server
	if *walDir != "" {
		disk, derr := server.NewDirDisk(*walDir)
		if derr != nil {
			fmt.Fprintln(stderr, "nestedsgd: wal:", derr)
			return 2
		}
		opts.WAL = disk
		recovered, rep, rerr := server.Recover(opts)
		if rerr != nil {
			fmt.Fprintln(stderr, "nestedsgd: recover:", rerr)
			return 2
		}
		fmt.Fprintln(stdout, "nestedsgd:", rep.Summary())
		if serr := recovered.Start(*addr); serr != nil {
			fmt.Fprintln(stderr, "nestedsgd:", serr)
			recovered.Kill()
			return 2
		}
		s = recovered
	} else {
		listening, lerr := server.Listen(*addr, opts)
		if lerr != nil {
			fmt.Fprintln(stderr, "nestedsgd:", lerr)
			return 2
		}
		s = listening
	}
	publishExpvar(s)

	var msrv *http.Server
	if *metricsAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("/metrics", s.MetricsHandler())
		mux.Handle("/debug/vars", expvar.Handler())
		msrv = &http.Server{Addr: *metricsAddr, Handler: mux}
		go func() {
			if merr := msrv.ListenAndServe(); merr != nil && merr != http.ErrServerClosed {
				fmt.Fprintln(stderr, "nestedsgd: metrics:", merr)
			}
		}()
	}

	fmt.Fprintf(stdout, "nestedsgd: listening on %s (backend=%s spec=%s)\n", s.Addr(), s.Backend(), *specName)
	if ready != nil {
		ready <- s.Addr().String()
	}

	<-sig
	fmt.Fprintln(stdout, "nestedsgd: draining...")
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		fmt.Fprintln(stderr, "nestedsgd: drain:", err)
	}
	if msrv != nil {
		msrv.Close()
	}

	f := s.Final()
	fmt.Fprint(stdout, f.Summary)
	if werr := s.WALError(); werr != nil {
		fmt.Fprintln(stderr, "nestedsgd: wal:", werr)
		return 1
	}
	if !f.Batch.OK || !f.Match {
		return 1
	}
	return 0
}
