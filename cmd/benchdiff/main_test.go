package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
BenchmarkE1MossSerialCorrectness-8   	     100	   1418009 ns/op	  359730 B/op	    5889 allocs/op
BenchmarkE15StreamingCheck/toplevel=8-8   	   10000	    140505 ns/op	     271 events	   98366 B/op	     844 allocs/op
PASS
`

func TestParseBench(t *testing.T) {
	s, err := parseBench(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	e, ok := s["BenchmarkE1MossSerialCorrectness"]
	if !ok {
		t.Fatalf("E1 not parsed; got %v", s)
	}
	if e.NsOp != 1418009 || e.BOp != 359730 || e.AllocsOp != 5889 {
		t.Fatalf("E1 parsed wrong: %+v", e)
	}
	e, ok = s["BenchmarkE15StreamingCheck/toplevel=8"]
	if !ok || e.AllocsOp != 844 {
		t.Fatalf("sub-benchmark parsed wrong: %+v (ok=%v)", e, ok)
	}
}

func TestParseBenchRejectsEmpty(t *testing.T) {
	if _, err := parseBench(strings.NewReader("PASS\n")); err == nil {
		t.Fatal("expected an error for input without benchmark lines")
	}
}

func TestDiffGate(t *testing.T) {
	oldS := Suite{"BenchmarkX": {NsOp: 100, BOp: 1000, AllocsOp: 10}}
	improved := Suite{"BenchmarkX": {NsOp: 50, BOp: 500, AllocsOp: 5}}
	regressed := Suite{"BenchmarkX": {NsOp: 100, BOp: 1000, AllocsOp: 20}}

	var out, errb bytes.Buffer
	if code := diff(&out, &errb, oldS, improved, "", 25, 25); code != 0 {
		t.Fatalf("improvement gated: code %d, stderr %s", code, errb.String())
	}
	out.Reset()
	errb.Reset()
	if code := diff(&out, &errb, oldS, regressed, "", 25, -1); code != 1 {
		t.Fatalf("100%% allocs regression passed the 25%% gate: code %d", code)
	}
	if !strings.Contains(errb.String(), "allocs/op regressed") {
		t.Fatalf("missing regression message: %s", errb.String())
	}
	// The regression is invisible when -match excludes the benchmark...
	out.Reset()
	errb.Reset()
	if code := diff(&out, &errb, oldS, regressed, "NoSuchBenchmark", 25, -1); code != 2 {
		t.Fatalf("want exit 2 for empty comparison, got %d", code)
	}
	// ...and ns/op changes alone never gate (timing is hardware-noise).
	slower := Suite{"BenchmarkX": {NsOp: 500, BOp: 1000, AllocsOp: 10}}
	out.Reset()
	errb.Reset()
	if code := diff(&out, &errb, oldS, slower, "", 25, 25); code != 0 {
		t.Fatalf("ns/op slowdown tripped the allocation gate: code %d", code)
	}
}

func TestZeroBaseGate(t *testing.T) {
	oldS := Suite{"BenchmarkX": {AllocsOp: 0}}
	newS := Suite{"BenchmarkX": {AllocsOp: 3}}
	var out, errb bytes.Buffer
	if code := diff(&out, &errb, oldS, newS, "", 25, -1); code != 1 {
		t.Fatalf("regression from a zero-alloc baseline passed the gate: code %d", code)
	}
}

func TestWriteCurrentRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "combined.json")

	var out, errb bytes.Buffer
	code := run([]string{"-write-current", path}, strings.NewReader(sampleBench), &out, &errb)
	if code != 0 {
		t.Fatalf("write-current failed: code %d, stderr %s", code, errb.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var c Combined
	if err := json.Unmarshal(data, &c); err != nil {
		t.Fatal(err)
	}
	if len(c.Current) != 2 || len(c.Baseline) != 2 {
		t.Fatalf("first write must seed both sides: %+v", c)
	}

	// A second write must refresh current but keep the baseline.
	improved := strings.ReplaceAll(sampleBench, "5889 allocs/op", "100 allocs/op")
	out.Reset()
	errb.Reset()
	if code := run([]string{"-write-current", path}, strings.NewReader(improved), &out, &errb); code != 0 {
		t.Fatalf("second write-current failed: code %d, stderr %s", code, errb.String())
	}
	data, err = os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &c); err != nil {
		t.Fatal(err)
	}
	if c.Baseline["BenchmarkE1MossSerialCorrectness"].AllocsOp != 5889 {
		t.Fatalf("baseline was overwritten: %+v", c.Baseline)
	}
	if c.Current["BenchmarkE1MossSerialCorrectness"].AllocsOp != 100 {
		t.Fatalf("current was not refreshed: %+v", c.Current)
	}

	// And -suite must gate the combined file end to end.
	out.Reset()
	errb.Reset()
	if code := run([]string{"-suite", path, "-max-allocs-regress", "25"}, strings.NewReader(""), &out, &errb); code != 0 {
		t.Fatalf("improved suite gated: code %d, stderr %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "E1MossSerialCorrectness") {
		t.Fatalf("diff table missing benchmark: %s", out.String())
	}
}

func TestParseMode(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-parse"}, strings.NewReader(sampleBench), &out, &errb); code != 0 {
		t.Fatalf("parse mode failed: code %d, stderr %s", code, errb.String())
	}
	var s Suite
	if err := json.Unmarshal(out.Bytes(), &s); err != nil {
		t.Fatalf("parse mode output is not a suite: %v", err)
	}
	if len(s) != 2 {
		t.Fatalf("want 2 benchmarks, got %d", len(s))
	}
}
