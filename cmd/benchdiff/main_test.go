package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
BenchmarkE1MossSerialCorrectness-8   	     100	   1418009 ns/op	  359730 B/op	    5889 allocs/op
BenchmarkE15StreamingCheck/toplevel=8-8   	   10000	    140505 ns/op	     271 events	   98366 B/op	     844 allocs/op
PASS
`

func TestParseBench(t *testing.T) {
	s, err := parseBench(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	e, ok := s["BenchmarkE1MossSerialCorrectness"]
	if !ok {
		t.Fatalf("E1 not parsed; got %v", s)
	}
	if e.NsOp != 1418009 || e.BOp != 359730 || e.AllocsOp != 5889 {
		t.Fatalf("E1 parsed wrong: %+v", e)
	}
	e, ok = s["BenchmarkE15StreamingCheck/toplevel=8"]
	if !ok || e.AllocsOp != 844 {
		t.Fatalf("sub-benchmark parsed wrong: %+v (ok=%v)", e, ok)
	}
}

func TestParseBenchRejectsEmpty(t *testing.T) {
	if _, err := parseBench(strings.NewReader("PASS\n")); err == nil {
		t.Fatal("expected an error for input without benchmark lines")
	}
}

func TestDiffGate(t *testing.T) {
	oldS := Suite{"BenchmarkX": {NsOp: 100, BOp: 1000, AllocsOp: 10}}
	improved := Suite{"BenchmarkX": {NsOp: 50, BOp: 500, AllocsOp: 5}}
	regressed := Suite{"BenchmarkX": {NsOp: 100, BOp: 1000, AllocsOp: 20}}

	var out, errb bytes.Buffer
	if code := diff(&out, &errb, oldS, improved, "", 25, 25); code != 0 {
		t.Fatalf("improvement gated: code %d, stderr %s", code, errb.String())
	}
	out.Reset()
	errb.Reset()
	if code := diff(&out, &errb, oldS, regressed, "", 25, -1); code != 1 {
		t.Fatalf("100%% allocs regression passed the 25%% gate: code %d", code)
	}
	if !strings.Contains(errb.String(), "allocs/op regressed") {
		t.Fatalf("missing regression message: %s", errb.String())
	}
	// The regression is invisible when -match excludes the benchmark...
	out.Reset()
	errb.Reset()
	if code := diff(&out, &errb, oldS, regressed, "NoSuchBenchmark", 25, -1); code != 2 {
		t.Fatalf("want exit 2 for empty comparison, got %d", code)
	}
	// ...and ns/op changes alone never gate (timing is hardware-noise).
	slower := Suite{"BenchmarkX": {NsOp: 500, BOp: 1000, AllocsOp: 10}}
	out.Reset()
	errb.Reset()
	if code := diff(&out, &errb, oldS, slower, "", 25, 25); code != 0 {
		t.Fatalf("ns/op slowdown tripped the allocation gate: code %d", code)
	}
}

func TestZeroBaseGate(t *testing.T) {
	oldS := Suite{"BenchmarkX": {AllocsOp: 0}}
	newS := Suite{"BenchmarkX": {AllocsOp: 3}}
	var out, errb bytes.Buffer
	if code := diff(&out, &errb, oldS, newS, "", 25, -1); code != 1 {
		t.Fatalf("regression from a zero-alloc baseline passed the gate: code %d", code)
	}
}

func TestWriteCurrentRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "combined.json")

	var out, errb bytes.Buffer
	code := run([]string{"-write-current", path}, strings.NewReader(sampleBench), &out, &errb)
	if code != 0 {
		t.Fatalf("write-current failed: code %d, stderr %s", code, errb.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var c Combined
	if err := json.Unmarshal(data, &c); err != nil {
		t.Fatal(err)
	}
	if len(c.Current) != 2 || len(c.Baseline) != 2 {
		t.Fatalf("first write must seed both sides: %+v", c)
	}

	// A second write must refresh current but keep the baseline.
	improved := strings.ReplaceAll(sampleBench, "5889 allocs/op", "100 allocs/op")
	out.Reset()
	errb.Reset()
	if code := run([]string{"-write-current", path}, strings.NewReader(improved), &out, &errb); code != 0 {
		t.Fatalf("second write-current failed: code %d, stderr %s", code, errb.String())
	}
	data, err = os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &c); err != nil {
		t.Fatal(err)
	}
	if c.Baseline["BenchmarkE1MossSerialCorrectness"].AllocsOp != 5889 {
		t.Fatalf("baseline was overwritten: %+v", c.Baseline)
	}
	if c.Current["BenchmarkE1MossSerialCorrectness"].AllocsOp != 100 {
		t.Fatalf("current was not refreshed: %+v", c.Current)
	}

	// And -suite must gate the combined file end to end.
	out.Reset()
	errb.Reset()
	if code := run([]string{"-suite", path, "-max-allocs-regress", "25"}, strings.NewReader(""), &out, &errb); code != 0 {
		t.Fatalf("improved suite gated: code %d, stderr %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "E1MossSerialCorrectness") {
		t.Fatalf("diff table missing benchmark: %s", out.String())
	}
}

func TestParseMode(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-parse"}, strings.NewReader(sampleBench), &out, &errb); code != 0 {
		t.Fatalf("parse mode failed: code %d, stderr %s", code, errb.String())
	}
	var s Suite
	if err := json.Unmarshal(out.Bytes(), &s); err != nil {
		t.Fatalf("parse mode output is not a suite: %v", err)
	}
	if len(s) != 2 {
		t.Fatalf("want 2 benchmarks, got %d", len(s))
	}
}

const sampleSweep = `# ServerSweep/c4/r0.80/z0.0 committed=359 failed=0 elapsed=251ms ok=true
BenchmarkServerSweep/c4/r0.80/z0.0 359 698000 ns/op 256 p50-us 8192 p99-us 1433.5 tx/s
BenchmarkServerGroupCommit-8   	12754850	       186.2 ns/op	       0 B/op	       0 allocs/op
`

func TestParseBenchSweepUnits(t *testing.T) {
	s, err := parseBench(strings.NewReader(sampleSweep))
	if err != nil {
		t.Fatal(err)
	}
	e, ok := s["BenchmarkServerSweep/c4/r0.80/z0.0"]
	if !ok {
		t.Fatalf("sweep cell not parsed; got %v", s)
	}
	if e.NsOp != 698000 || e.P50Us != 256 || e.P99Us != 8192 || e.TxS != 1433.5 {
		t.Fatalf("sweep units parsed wrong: %+v", e)
	}
	if g := s["BenchmarkServerGroupCommit"]; g.AllocsOp != 0 || g.NsOp != 186.2 {
		t.Fatalf("micro benchmark parsed wrong: %+v", g)
	}
}

func TestDiffLatencyColumns(t *testing.T) {
	oldS := Suite{"BenchmarkServerSweep/c4": {NsOp: 100, P50Us: 200, P99Us: 800, TxS: 1000}}
	newS := Suite{"BenchmarkServerSweep/c4": {NsOp: 100, P50Us: 100, P99Us: 1600, TxS: 2000}}
	var out, errb bytes.Buffer
	if code := diff(&out, &errb, oldS, newS, "", -1, -1); code != 0 {
		t.Fatalf("latency-only diff failed: code %d, stderr %s", code, errb.String())
	}
	for _, want := range []string{"p50-us", "p99-us", "tx/s", "-50.0%", "+100.0%"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("diff table missing %q:\n%s", want, out.String())
		}
	}
	// Micro-benchmark-only comparisons keep the classic 4-column table.
	micro := Suite{"BenchmarkX": {NsOp: 100, BOp: 10, AllocsOp: 1}}
	out.Reset()
	if code := diff(&out, &errb, micro, micro, "", -1, -1); code != 0 {
		t.Fatalf("micro diff failed: code %d", code)
	}
	if strings.Contains(out.String(), "p50-us") {
		t.Fatalf("latency columns leaked into a micro-only table:\n%s", out.String())
	}
}
