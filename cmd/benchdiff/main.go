// Command benchdiff turns `go test -bench` text output into JSON and
// compares two benchmark suites, optionally failing on allocation
// regressions — the allocation gate CI runs over the checker benchmarks.
//
// Usage:
//
//	go test -run '^$' -bench E15 -benchmem . | benchdiff -parse > new.json
//	benchdiff -old old.json -new new.json
//	benchdiff -old old.json -new new.json -max-allocs-regress 25
//	go test ... -benchmem . | benchdiff -write-current BENCH_PR3.json
//	benchdiff -suite BENCH_PR3.json -match 'E1|E15' -max-allocs-regress 25
//
// A suite file is a JSON object mapping benchmark names to
// {ns_op, b_op, allocs_op}; a combined file (BENCH_PR3.json) holds a
// "baseline" and a "current" suite side by side, so the repository can
// commit the pre-optimization numbers next to the current ones and CI can
// verify the improvement never regresses away.
//
// Exit status: 0 on success, 1 when a gate is exceeded, 2 on usage or I/O
// errors.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Entry is one benchmark's measurements. Beyond the standard go-test
// triple, the server sweep (cmd/nestedload -sweep) reports latency
// percentiles and throughput as custom units, so a load run's tail
// behavior diffs like any other benchmark column.
type Entry struct {
	NsOp     float64 `json:"ns_op"`
	BOp      float64 `json:"b_op,omitempty"`
	AllocsOp float64 `json:"allocs_op,omitempty"`
	P50Us    float64 `json:"p50_us,omitempty"`
	P99Us    float64 `json:"p99_us,omitempty"`
	TxS      float64 `json:"tx_s,omitempty"`
}

// hasLatency reports whether the entry carries the sweep's latency and
// throughput units.
func (e Entry) hasLatency() bool { return e.P50Us != 0 || e.P99Us != 0 || e.TxS != 0 }

// Suite maps benchmark names (GOMAXPROCS suffix stripped) to measurements.
type Suite map[string]Entry

// Combined holds the two sides of a before/after comparison in one file.
type Combined struct {
	Baseline Suite `json:"baseline"`
	Current  Suite `json:"current"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		parse        = fs.Bool("parse", false, "parse `go test -bench` text from stdin and print a JSON suite")
		oldFile      = fs.String("old", "", "baseline suite JSON file")
		newFile      = fs.String("new", "", "candidate suite JSON file")
		suiteFile    = fs.String("suite", "", "combined baseline/current JSON file to diff")
		writeCurrent = fs.String("write-current", "", "parse bench text from stdin and replace the 'current' side of this combined file")
		match        = fs.String("match", "", "regexp restricting which benchmarks are compared and gated")
		maxAllocs    = fs.Float64("max-allocs-regress", -1, "fail when allocs/op regresses by more than this percent (-1 disables)")
		maxBytes     = fs.Float64("max-bytes-regress", -1, "fail when B/op regresses by more than this percent (-1 disables)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	switch {
	case *parse:
		s, err := parseBench(stdin)
		if err != nil {
			fmt.Fprintln(stderr, "benchdiff:", err)
			return 2
		}
		return writeJSON(stdout, stderr, s)

	case *writeCurrent != "":
		cur, err := parseBench(stdin)
		if err != nil {
			fmt.Fprintln(stderr, "benchdiff:", err)
			return 2
		}
		var c Combined
		if data, err := os.ReadFile(*writeCurrent); err == nil {
			if err := json.Unmarshal(data, &c); err != nil {
				fmt.Fprintf(stderr, "benchdiff: %s: %v\n", *writeCurrent, err)
				return 2
			}
		}
		c.Current = cur
		if c.Baseline == nil {
			// First run: seed the baseline too, so the file is complete.
			c.Baseline = cur
		}
		out, err := json.MarshalIndent(&c, "", "  ")
		if err != nil {
			fmt.Fprintln(stderr, "benchdiff:", err)
			return 2
		}
		if err := os.WriteFile(*writeCurrent, append(out, '\n'), 0o644); err != nil {
			fmt.Fprintln(stderr, "benchdiff:", err)
			return 2
		}
		fmt.Fprintf(stdout, "wrote %d benchmarks to the current side of %s\n", len(cur), *writeCurrent)
		return 0

	case *suiteFile != "":
		data, err := os.ReadFile(*suiteFile)
		if err != nil {
			fmt.Fprintln(stderr, "benchdiff:", err)
			return 2
		}
		var c Combined
		if err := json.Unmarshal(data, &c); err != nil {
			fmt.Fprintf(stderr, "benchdiff: %s: %v\n", *suiteFile, err)
			return 2
		}
		return diff(stdout, stderr, c.Baseline, c.Current, *match, *maxAllocs, *maxBytes)

	case *oldFile != "" && *newFile != "":
		oldS, err := readSuite(*oldFile)
		if err != nil {
			fmt.Fprintln(stderr, "benchdiff:", err)
			return 2
		}
		newS, err := readSuite(*newFile)
		if err != nil {
			fmt.Fprintln(stderr, "benchdiff:", err)
			return 2
		}
		return diff(stdout, stderr, oldS, newS, *match, *maxAllocs, *maxBytes)
	}

	fmt.Fprintln(stderr, "benchdiff: need -parse, -write-current, -suite, or -old and -new")
	return 2
}

func writeJSON(stdout, stderr io.Writer, v any) int {
	out, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		fmt.Fprintln(stderr, "benchdiff:", err)
		return 2
	}
	fmt.Fprintln(stdout, string(out))
	return 0
}

func readSuite(path string) (Suite, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Suite
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// gomaxprocsSuffix strips the trailing -N goroutine suffix go test appends
// to benchmark names.
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

// parseBench extracts benchmark lines from `go test -bench -benchmem`
// output. With -count > 1 the last sample for a name wins.
func parseBench(r io.Reader) (Suite, error) {
	s := Suite{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		f := strings.Fields(line)
		if len(f) < 4 {
			continue
		}
		name := gomaxprocsSuffix.ReplaceAllString(f[0], "")
		e := s[name]
		// f[1] is the iteration count; then (value, unit) pairs follow.
		for i := 2; i+1 < len(f); i += 2 {
			v, err := strconv.ParseFloat(f[i], 64)
			if err != nil {
				return nil, fmt.Errorf("bad value %q in line %q", f[i], line)
			}
			switch f[i+1] {
			case "ns/op":
				e.NsOp = v
			case "B/op":
				e.BOp = v
			case "allocs/op":
				e.AllocsOp = v
			case "p50-us":
				e.P50Us = v
			case "p99-us":
				e.P99Us = v
			case "tx/s":
				e.TxS = v
			}
		}
		s[name] = e
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(s) == 0 {
		return nil, fmt.Errorf("no benchmark lines found on stdin")
	}
	return s, nil
}

// pct computes the percent change from old to new; +∞-ish changes from a
// zero base are reported as 100 per unit gained so gates still trip.
func pct(old, new float64) float64 {
	if old == 0 {
		if new == 0 {
			return 0
		}
		return 100 * new
	}
	return (new - old) / old * 100
}

func diff(stdout, stderr io.Writer, oldS, newS Suite, match string, maxAllocs, maxBytes float64) int {
	var re *regexp.Regexp
	if match != "" {
		var err error
		if re, err = regexp.Compile(match); err != nil {
			fmt.Fprintln(stderr, "benchdiff:", err)
			return 2
		}
	}
	var names []string
	for name := range newS {
		if _, ok := oldS[name]; !ok {
			continue
		}
		if re != nil && !re.MatchString(name) {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	if len(names) == 0 {
		fmt.Fprintln(stderr, "benchdiff: no common benchmarks to compare")
		return 2
	}

	// Latency/throughput columns appear when any compared entry carries
	// them (the server sweep does; micro benchmarks do not).
	latency := false
	for _, name := range names {
		if oldS[name].hasLatency() || newS[name].hasLatency() {
			latency = true
			break
		}
	}

	fail := false
	w := func(format string, a ...any) { fmt.Fprintf(stdout, format, a...) }
	w("%-55s %14s %14s %14s", "benchmark", "ns/op", "B/op", "allocs/op")
	if latency {
		w(" %14s %14s %14s", "p50-us", "p99-us", "tx/s")
	}
	w("\n")
	for _, name := range names {
		o, n := oldS[name], newS[name]
		w("%-55s %14s %14s %14s", strings.TrimPrefix(name, "Benchmark"),
			fmt.Sprintf("%+.1f%%", pct(o.NsOp, n.NsOp)),
			fmt.Sprintf("%+.1f%%", pct(o.BOp, n.BOp)),
			fmt.Sprintf("%+.1f%%", pct(o.AllocsOp, n.AllocsOp)))
		if latency {
			w(" %14s %14s %14s",
				fmt.Sprintf("%+.1f%%", pct(o.P50Us, n.P50Us)),
				fmt.Sprintf("%+.1f%%", pct(o.P99Us, n.P99Us)),
				fmt.Sprintf("%+.1f%%", pct(o.TxS, n.TxS)))
		}
		w("\n")
		if maxAllocs >= 0 && pct(o.AllocsOp, n.AllocsOp) > maxAllocs {
			fmt.Fprintf(stderr, "benchdiff: %s allocs/op regressed %.1f%% (%.0f -> %.0f), limit %.1f%%\n",
				name, pct(o.AllocsOp, n.AllocsOp), o.AllocsOp, n.AllocsOp, maxAllocs)
			fail = true
		}
		if maxBytes >= 0 && pct(o.BOp, n.BOp) > maxBytes {
			fmt.Fprintf(stderr, "benchdiff: %s B/op regressed %.1f%% (%.0f -> %.0f), limit %.1f%%\n",
				name, pct(o.BOp, n.BOp), o.BOp, n.BOp, maxBytes)
			fail = true
		}
	}
	if fail {
		return 1
	}
	return 0
}
