package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"nestedsg/internal/event"
	"nestedsg/internal/generic"
	"nestedsg/internal/locking"
	"nestedsg/internal/tname"
	"nestedsg/internal/workload"
)

func makeTrace(t *testing.T) string {
	t.Helper()
	tr := tname.NewTree()
	root := workload.Build(tr, workload.Config{Seed: 3, TopLevel: 4, Depth: 1, Fanout: 3,
		Objects: 2, SpecName: "mixed", ParProb: 0.7})
	b, _, err := generic.Run(tr, root, generic.Options{Seed: 5, Protocol: locking.Protocol{},
		AbortProb: 0.03, MaxAborts: 3})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "t.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := event.WriteTrace(f, tr, b); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestSummarize(t *testing.T) {
	path := makeTrace(t)
	var out, errBuf bytes.Buffer
	code := run([]string{"-in", path}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	for _, want := range []string{"events by kind", "CREATE", "tree shape", "outcomes:",
		"per-object operations", "concurrency: max"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestMissingFile(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-in", "/nope.json"}, &out, &errBuf); code != 2 {
		t.Fatalf("exit %d", code)
	}
}

func TestGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "g.json")
	if err := os.WriteFile(path, []byte("42"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errBuf bytes.Buffer
	if code := run([]string{"-in", path}, &out, &errBuf); code != 2 {
		t.Fatalf("exit %d", code)
	}
}
