// Command tracestats summarizes a trace (as written by nestedrun, JSON or
// binary): event-kind counts, tree shape, per-object operation mix,
// completion outcomes and a concurrency profile (how many transactions were
// live over time) — a quick look at what a run actually did before feeding
// it to sgcheck.
//
// Usage:
//
//	nestedrun -seed 7 -out trace.json
//	tracestats -in trace.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"nestedsg/internal/event"
	"nestedsg/internal/stats"
	"nestedsg/internal/tname"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tracestats", flag.ContinueOnError)
	fs.SetOutput(stderr)
	in := fs.String("in", "", "trace file to summarize ('-' or empty for stdin)")
	format := fs.String("format", "auto", "trace format: auto, json, binary")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	r := io.Reader(os.Stdin)
	if *in != "" && *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			fmt.Fprintln(stderr, "tracestats:", err)
			return 2
		}
		defer f.Close() //sgvet:ignore[checkederr] read-only open; a close error cannot lose data
		r = f
	}
	var (
		tr  *tname.Tree
		b   event.Behavior
		err error
	)
	switch *format {
	case "json":
		tr, b, err = event.ReadTrace(r)
	case "binary":
		tr, b, err = event.ReadBinaryTrace(r)
	case "auto":
		tr, b, err = event.ReadTraceAuto(r)
	default:
		fmt.Fprintf(stderr, "tracestats: unknown -format %q (want auto, json or binary)\n", *format)
		return 2
	}
	if err != nil {
		fmt.Fprintln(stderr, "tracestats:", err)
		return 2
	}
	summarize(stdout, tr, b)
	return 0
}

func summarize(w io.Writer, tr *tname.Tree, b event.Behavior) {
	fmt.Fprintf(w, "trace: %d events, %d transaction names, %d objects\n\n",
		len(b), tr.NumTx(), tr.NumObjects())

	// Event kinds.
	kinds := stats.NewTable("events by kind", "kind", "count")
	counts := map[event.Kind]int{}
	for _, e := range b {
		counts[e.Kind]++
	}
	for k := event.Create; k <= event.InformAbort; k++ {
		if counts[k] > 0 {
			kinds.AddRow(k.String(), counts[k])
		}
	}
	fmt.Fprintln(w, kinds.String())

	// Tree shape: depth histogram of names that actually appear.
	appeared := map[tname.TxID]bool{}
	for _, e := range b {
		appeared[e.Tx] = true
	}
	depthCount := map[int]int{}
	accesses := 0
	for tx := range appeared {
		depthCount[tr.Depth(tx)]++
		if tr.IsAccess(tx) {
			accesses++
		}
	}
	shape := stats.NewTable("tree shape (names appearing in the trace)", "depth", "names")
	var depths []int
	for d := range depthCount {
		depths = append(depths, d)
	}
	sort.Ints(depths)
	for _, d := range depths {
		shape.AddRow(d, depthCount[d])
	}
	fmt.Fprintln(w, shape.String())

	// Outcomes.
	commits, aborts := b.CommitSet(), b.AbortSet()
	live := 0
	for tx := range appeared {
		if tx != tname.Root && !commits[tx] && !aborts[tx] && b.IsLive(tx) {
			live++
		}
	}
	fmt.Fprintf(w, "outcomes: %d committed, %d aborted, %d still live; %d access names\n\n",
		len(commits), len(aborts), live, accesses)

	// Per-object operation mix (granted accesses only).
	mix := stats.NewTable("per-object operations (REQUEST_COMMITs)", "object", "spec", "ops", "distinct kinds")
	type objAgg struct {
		n     int
		kinds map[string]bool
	}
	agg := map[tname.ObjID]*objAgg{}
	for _, op := range b.Operations(tr) {
		a := agg[op.Obj]
		if a == nil {
			a = &objAgg{kinds: map[string]bool{}}
			agg[op.Obj] = a
		}
		a.n++
		a.kinds[op.OV.Op.Kind.String()] = true
	}
	var objs []tname.ObjID
	for x := range agg {
		objs = append(objs, x)
	}
	sort.Slice(objs, func(i, j int) bool { return objs[i] < objs[j] })
	for _, x := range objs {
		mix.AddRow(tr.ObjectLabel(x), tr.Spec(x).Name(), agg[x].n, len(agg[x].kinds))
	}
	fmt.Fprintln(w, mix.String())

	// Concurrency profile: live (created, uncompleted) transactions over
	// the serial actions.
	liveNow, maxLive, area := 0, 0, 0
	serialEvents := 0
	for _, e := range b {
		if !e.Kind.IsSerial() {
			continue
		}
		switch e.Kind {
		case event.Create:
			if e.Tx != tname.Root {
				liveNow++
			}
		case event.Commit, event.Abort:
			// An abort of a never-created transaction does not reduce
			// liveness; guard by tracking created names.
			if createdBefore(b, e.Tx) {
				liveNow--
			}
		default:
			// Requests and reports do not change the live count.
		}
		if liveNow > maxLive {
			maxLive = liveNow
		}
		area += liveNow
		serialEvents++
	}
	mean := 0.0
	if serialEvents > 0 {
		mean = float64(area) / float64(serialEvents)
	}
	fmt.Fprintf(w, "concurrency: max %d live transactions, mean %.2f over %d serial events\n",
		maxLive, mean, serialEvents)
}

// createdBefore reports whether tx has a CREATE anywhere in the behavior
// (completions follow creations when present, so this suffices for the
// profile).
func createdBefore(b event.Behavior, tx tname.TxID) bool {
	for _, e := range b {
		if e.Kind == event.Create && e.Tx == tx {
			return true
		}
	}
	return false
}
