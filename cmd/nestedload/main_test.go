package main

import (
	"regexp"
	"strings"
	"testing"
)

func runLoad(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errBuf strings.Builder
	code := run(args, &out, &errBuf)
	return code, out.String(), errBuf.String()
}

func TestSelfServeSmoke(t *testing.T) {
	code, out, errs := runLoad(t,
		"-selfserve", "-workers", "4", "-sessions", "5", "-objects", "3", "-seed", "42")
	if code != 0 {
		t.Fatalf("exit %d\nstdout:\n%s\nstderr:\n%s", code, out, errs)
	}
	if !strings.Contains(out, "workers=4 committed=20 failed=0") {
		t.Errorf("unexpected tally line:\n%s", out)
	}
	for _, want := range []string{
		"latency: mean=",
		"final certificate: serially correct for T0",
		"online snapshot matches batch SG byte-for-byte",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestSelfServeZipfCounter(t *testing.T) {
	code, out, errs := runLoad(t,
		"-selfserve", "-workers", "3", "-sessions", "4", "-spec", "counter",
		"-protocol", "undolog", "-zipf", "1.3", "-childprob", "0.5", "-seed", "7")
	if code != 0 {
		t.Fatalf("exit %d\nstdout:\n%s\nstderr:\n%s", code, out, errs)
	}
	if !strings.Contains(out, "final certificate: serially correct for T0") {
		t.Errorf("no certificate:\n%s", out)
	}
}

var benchLine = regexp.MustCompile(`(?m)^BenchmarkNestedload/c2 \d+ \d+ ns/op$`)

func TestBenchLineFormat(t *testing.T) {
	code, out, errs := runLoad(t,
		"-selfserve", "-workers", "2", "-sessions", "3", "-bench", "-seed", "9")
	if code != 0 {
		t.Fatalf("exit %d\nstdout:\n%s\nstderr:\n%s", code, out, errs)
	}
	if !benchLine.MatchString(out) {
		t.Fatalf("no go test -bench style line in:\n%s", out)
	}
}

func TestLoadBadFlags(t *testing.T) {
	if code, _, _ := runLoad(t, "-workers", "0"); code != 2 {
		t.Fatalf("zero workers: exit %d, want 2", code)
	}
	if code, _, errs := runLoad(t); code != 2 || !strings.Contains(errs, "-addr is required") {
		t.Fatalf("missing addr: exit %d, stderr %q", code, errs)
	}
	if code, _, _ := runLoad(t, "-selfserve", "-spec", "nope"); code != 2 {
		t.Fatalf("bad spec: exit %d, want 2", code)
	}
}

var sweepLine = regexp.MustCompile(`(?m)^BenchmarkServerSweep/c2/r0\.50/z0\.0/s2/p1 \d+ \d+ ns/op \d+ p50-us \d+ p99-us \d+(\.\d+)? tx/s$`)

func TestSweepBenchLines(t *testing.T) {
	code, out, errs := runLoad(t,
		"-sweep", "-sweep-clients", "2", "-sweep-readratios", "0.5", "-sweep-zipfs", "0",
		"-sweep-shards", "2,8", "-sessions", "3", "-seed", "11")
	if code != 0 {
		t.Fatalf("exit %d\nstdout:\n%s\nstderr:\n%s", code, out, errs)
	}
	if !sweepLine.MatchString(out) {
		t.Fatalf("no sweep bench line in:\n%s", out)
	}
	if !strings.Contains(out, "BenchmarkServerSweep/c2/r0.50/z0.0/s8/p1 ") {
		t.Fatalf("sweep missing the shards=8 cell:\n%s", out)
	}
	if !strings.Contains(errs, "ok=true") {
		t.Fatalf("sweep cell did not report a clean certificate:\n%s", errs)
	}
}

// TestSweepPartitionsAxis: -sweep-partitions adds the certifier partition
// count as a grid axis, and each cell's bench name carries its /p segment.
func TestSweepPartitionsAxis(t *testing.T) {
	code, out, errs := runLoad(t,
		"-sweep", "-sweep-clients", "2", "-sweep-readratios", "0.5", "-sweep-zipfs", "0",
		"-sweep-shards", "1", "-sweep-partitions", "1,4", "-sessions", "3", "-seed", "17")
	if code != 0 {
		t.Fatalf("exit %d\nstdout:\n%s\nstderr:\n%s", code, out, errs)
	}
	for _, cell := range []string{
		"BenchmarkServerSweep/c2/r0.50/z0.0/s1/p1 ",
		"BenchmarkServerSweep/c2/r0.50/z0.0/s1/p4 ",
	} {
		if !strings.Contains(out, cell) {
			t.Fatalf("sweep missing cell %q:\n%s", cell, out)
		}
	}
	if strings.Contains(errs, "ok=false") {
		t.Fatalf("a partitioned sweep cell failed certification:\n%s", errs)
	}
}

func TestSweepBadLists(t *testing.T) {
	if code, _, errs := runLoad(t, "-sweep", "-sweep-clients", "2,x"); code != 2 || !strings.Contains(errs, "-sweep-clients") {
		t.Fatalf("bad client list: exit %d, stderr %q", code, errs)
	}
	if code, _, errs := runLoad(t, "-sweep", "-sweep-shards", "4,"); code != 2 || !strings.Contains(errs, "-sweep-shards") {
		t.Fatalf("bad shard list: exit %d, stderr %q", code, errs)
	}
	if code, _, errs := runLoad(t, "-sweep", "-sweep-partitions", "p"); code != 2 || !strings.Contains(errs, "-sweep-partitions") {
		t.Fatalf("bad partition list: exit %d, stderr %q", code, errs)
	}
}

// TestSelfServeShardsFlag: the single-run -shards knob plumbs through to
// the server and still certifies.
func TestSelfServeShardsFlag(t *testing.T) {
	code, out, errs := runLoad(t,
		"-selfserve", "-workers", "3", "-sessions", "4", "-shards", "8", "-seed", "13")
	if code != 0 {
		t.Fatalf("exit %d\nstdout:\n%s\nstderr:\n%s", code, out, errs)
	}
	if !strings.Contains(out, "final certificate: serially correct for T0") {
		t.Errorf("no certificate:\n%s", out)
	}
}

// TestSelfServeCertPartitionsFlag: -cert-partitions plumbs through to the
// partitioned certifier backend, and the composed certificate still
// matches the batch check at drain.
func TestSelfServeCertPartitionsFlag(t *testing.T) {
	code, out, errs := runLoad(t,
		"-selfserve", "-workers", "3", "-sessions", "4", "-cert-partitions", "4", "-seed", "19")
	if code != 0 {
		t.Fatalf("exit %d\nstdout:\n%s\nstderr:\n%s", code, out, errs)
	}
	for _, want := range []string{
		"final certificate: serially correct for T0",
		"online snapshot matches batch SG byte-for-byte",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
