package main

import (
	"regexp"
	"strings"
	"testing"
)

func runLoad(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errBuf strings.Builder
	code := run(args, &out, &errBuf)
	return code, out.String(), errBuf.String()
}

func TestSelfServeSmoke(t *testing.T) {
	code, out, errs := runLoad(t,
		"-selfserve", "-workers", "4", "-sessions", "5", "-objects", "3", "-seed", "42")
	if code != 0 {
		t.Fatalf("exit %d\nstdout:\n%s\nstderr:\n%s", code, out, errs)
	}
	if !regexp.MustCompile(`(?m)^backend=moss workers=4 committed=20 ro=\d+ failed=0 server-aborts=\d+ `).MatchString(out) {
		t.Errorf("unexpected tally line:\n%s", out)
	}
	for _, want := range []string{
		"latency: mean=",
		"final certificate: serially correct for T0",
		"online snapshot matches batch SG byte-for-byte",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestSelfServeZipfCounter(t *testing.T) {
	code, out, errs := runLoad(t,
		"-selfserve", "-workers", "3", "-sessions", "4", "-spec", "counter",
		"-protocol", "undolog", "-zipf", "1.3", "-childprob", "0.5", "-seed", "7")
	if code != 0 {
		t.Fatalf("exit %d\nstdout:\n%s\nstderr:\n%s", code, out, errs)
	}
	if !strings.Contains(out, "final certificate: serially correct for T0") {
		t.Errorf("no certificate:\n%s", out)
	}
}

var benchLine = regexp.MustCompile(`(?m)^BenchmarkNestedload/c2 \d+ \d+ ns/op$`)

func TestBenchLineFormat(t *testing.T) {
	code, out, errs := runLoad(t,
		"-selfserve", "-workers", "2", "-sessions", "3", "-bench", "-seed", "9")
	if code != 0 {
		t.Fatalf("exit %d\nstdout:\n%s\nstderr:\n%s", code, out, errs)
	}
	if !benchLine.MatchString(out) {
		t.Fatalf("no go test -bench style line in:\n%s", out)
	}
}

func TestLoadBadFlags(t *testing.T) {
	if code, _, _ := runLoad(t, "-workers", "0"); code != 2 {
		t.Fatalf("zero workers: exit %d, want 2", code)
	}
	if code, _, errs := runLoad(t); code != 2 || !strings.Contains(errs, "-addr is required") {
		t.Fatalf("missing addr: exit %d, stderr %q", code, errs)
	}
	if code, _, _ := runLoad(t, "-selfserve", "-spec", "nope"); code != 2 {
		t.Fatalf("bad spec: exit %d, want 2", code)
	}
	if code, _, errs := runLoad(t, "-selfserve", "-backend", "nope"); code != 2 || !strings.Contains(errs, "unknown backend") {
		t.Fatalf("bad backend: exit %d, stderr %q", code, errs)
	}
	if code, _, errs := runLoad(t, "-selfserve", "-backend", "mvto", "-protocol", "moss"); code != 2 || !strings.Contains(errs, "both set") {
		t.Fatalf("backend+protocol conflict: exit %d, stderr %q", code, errs)
	}
	if code, _, errs := runLoad(t, "-selfserve", "-backend", "mvto", "-spec", "counter"); code != 2 || !strings.Contains(errs, "register") {
		t.Fatalf("mvto non-register spec: exit %d, stderr %q", code, errs)
	}
}

// TestSelfServeBackends: every -backend value runs the closed loop to a
// clean certificate, and a read-heavy mvto run routes all-read
// transactions through the snapshot path.
func TestSelfServeBackends(t *testing.T) {
	for _, backend := range []string{"moss", "undolog", "mvto", "replica"} {
		backend := backend
		t.Run(backend, func(t *testing.T) {
			t.Parallel()
			code, out, errs := runLoad(t,
				"-selfserve", "-backend", backend, "-workers", "3", "-sessions", "5",
				"-readratio", "0.9", "-seed", "23")
			if code != 0 {
				t.Fatalf("exit %d\nstdout:\n%s\nstderr:\n%s", code, out, errs)
			}
			if !strings.Contains(out, "backend="+backend+" ") {
				t.Errorf("tally line missing backend=%s:\n%s", backend, out)
			}
			if !strings.Contains(out, "final certificate: serially correct for T0") {
				t.Errorf("no certificate:\n%s", out)
			}
			if backend == "mvto" && !regexp.MustCompile(`ro=[1-9]`).MatchString(out) {
				t.Errorf("read-heavy mvto run drove no read-only transactions:\n%s", out)
			}
		})
	}
}

// TestSweepBackendsAxis: -sweep-backends adds the object backend as a grid
// axis; each cell's bench name carries its /b segment and certifies.
func TestSweepBackendsAxis(t *testing.T) {
	code, out, errs := runLoad(t,
		"-sweep", "-sweep-backends", "moss,mvto", "-sweep-clients", "2",
		"-sweep-readratios", "0.5", "-sweep-zipfs", "0", "-sweep-shards", "1",
		"-sessions", "3", "-seed", "29")
	if code != 0 {
		t.Fatalf("exit %d\nstdout:\n%s\nstderr:\n%s", code, out, errs)
	}
	for _, cell := range []string{
		"BenchmarkServerSweep/bmoss/c2/r0.50/z0.0/s1/p1 ",
		"BenchmarkServerSweep/bmvto/c2/r0.50/z0.0/s1/p1 ",
	} {
		if !strings.Contains(out, cell) {
			t.Fatalf("sweep missing cell %q:\n%s", cell, out)
		}
	}
	if strings.Contains(errs, "ok=false") {
		t.Fatalf("a backend sweep cell failed certification:\n%s", errs)
	}
	if code, _, errs := runLoad(t, "-sweep", "-sweep-backends", "nope"); code != 2 || !strings.Contains(errs, "-sweep-backends") {
		t.Fatalf("bad backend list: exit %d, stderr %q", code, errs)
	}
}

var sweepLine = regexp.MustCompile(`(?m)^BenchmarkServerSweep/bmoss/c2/r0\.50/z0\.0/s2/p1 \d+ \d+ ns/op \d+ p50-us \d+ p99-us \d+(\.\d+)? tx/s$`)

func TestSweepBenchLines(t *testing.T) {
	code, out, errs := runLoad(t,
		"-sweep", "-sweep-clients", "2", "-sweep-readratios", "0.5", "-sweep-zipfs", "0",
		"-sweep-shards", "2,8", "-sessions", "3", "-seed", "11")
	if code != 0 {
		t.Fatalf("exit %d\nstdout:\n%s\nstderr:\n%s", code, out, errs)
	}
	if !sweepLine.MatchString(out) {
		t.Fatalf("no sweep bench line in:\n%s", out)
	}
	if !strings.Contains(out, "BenchmarkServerSweep/bmoss/c2/r0.50/z0.0/s8/p1 ") {
		t.Fatalf("sweep missing the shards=8 cell:\n%s", out)
	}
	if !strings.Contains(errs, "ok=true") {
		t.Fatalf("sweep cell did not report a clean certificate:\n%s", errs)
	}
}

// TestSweepPartitionsAxis: -sweep-partitions adds the certifier partition
// count as a grid axis, and each cell's bench name carries its /p segment.
func TestSweepPartitionsAxis(t *testing.T) {
	code, out, errs := runLoad(t,
		"-sweep", "-sweep-clients", "2", "-sweep-readratios", "0.5", "-sweep-zipfs", "0",
		"-sweep-shards", "1", "-sweep-partitions", "1,4", "-sessions", "3", "-seed", "17")
	if code != 0 {
		t.Fatalf("exit %d\nstdout:\n%s\nstderr:\n%s", code, out, errs)
	}
	for _, cell := range []string{
		"BenchmarkServerSweep/bmoss/c2/r0.50/z0.0/s1/p1 ",
		"BenchmarkServerSweep/bmoss/c2/r0.50/z0.0/s1/p4 ",
	} {
		if !strings.Contains(out, cell) {
			t.Fatalf("sweep missing cell %q:\n%s", cell, out)
		}
	}
	if strings.Contains(errs, "ok=false") {
		t.Fatalf("a partitioned sweep cell failed certification:\n%s", errs)
	}
}

func TestSweepBadLists(t *testing.T) {
	if code, _, errs := runLoad(t, "-sweep", "-sweep-clients", "2,x"); code != 2 || !strings.Contains(errs, "-sweep-clients") {
		t.Fatalf("bad client list: exit %d, stderr %q", code, errs)
	}
	if code, _, errs := runLoad(t, "-sweep", "-sweep-shards", "4,"); code != 2 || !strings.Contains(errs, "-sweep-shards") {
		t.Fatalf("bad shard list: exit %d, stderr %q", code, errs)
	}
	if code, _, errs := runLoad(t, "-sweep", "-sweep-partitions", "p"); code != 2 || !strings.Contains(errs, "-sweep-partitions") {
		t.Fatalf("bad partition list: exit %d, stderr %q", code, errs)
	}
}

// TestSelfServeShardsFlag: the single-run -shards knob plumbs through to
// the server and still certifies.
func TestSelfServeShardsFlag(t *testing.T) {
	code, out, errs := runLoad(t,
		"-selfserve", "-workers", "3", "-sessions", "4", "-shards", "8", "-seed", "13")
	if code != 0 {
		t.Fatalf("exit %d\nstdout:\n%s\nstderr:\n%s", code, out, errs)
	}
	if !strings.Contains(out, "final certificate: serially correct for T0") {
		t.Errorf("no certificate:\n%s", out)
	}
}

// TestSelfServeCertPartitionsFlag: -cert-partitions plumbs through to the
// partitioned certifier backend, and the composed certificate still
// matches the batch check at drain.
func TestSelfServeCertPartitionsFlag(t *testing.T) {
	code, out, errs := runLoad(t,
		"-selfserve", "-workers", "3", "-sessions", "4", "-cert-partitions", "4", "-seed", "19")
	if code != 0 {
		t.Fatalf("exit %d\nstdout:\n%s\nstderr:\n%s", code, out, errs)
	}
	for _, want := range []string{
		"final certificate: serially correct for T0",
		"online snapshot matches batch SG byte-for-byte",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
