// Command nestedload is a closed-loop load generator for nestedsgd: N
// workers each drive their own connection, running top-level transactions
// (with optional subtransactions) against K shared objects with a
// configurable read/write mix and zipf skew, retrying server-side aborts
// with bounded exponential backoff. It prints a throughput/latency table
// and the server's final certification verdict.
//
// Usage:
//
//	nestedload -addr 127.0.0.1:7474 -workers 16 -sessions 25
//	nestedload -selfserve -workers 4 -dur 1s       # in-process server
//	nestedload -selfserve -workers 4 -bench        # go test -bench format
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"context"

	"nestedsg/internal/client"
	"nestedsg/internal/locking"
	"nestedsg/internal/object"
	"nestedsg/internal/server"
	"nestedsg/internal/spec"
	"nestedsg/internal/undolog"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func protocolByName(name string) object.Protocol {
	switch name {
	case "moss":
		return locking.Protocol{}
	case "undolog":
		return undolog.Protocol{}
	}
	return nil
}

// opFor draws one operation for the given spec: read-class with probability
// readRatio, update-class otherwise, with small argument domains so
// conflicts actually occur.
func opFor(specName string, rng *rand.Rand, readRatio float64) (spec.OpKind, spec.Value) {
	read := rng.Float64() < readRatio
	switch specName {
	case "counter":
		if read {
			return spec.OpGet, spec.Nil
		}
		if rng.Intn(2) == 0 {
			return spec.OpIncrement, spec.Int(int64(1 + rng.Intn(4)))
		}
		return spec.OpDecrement, spec.Int(int64(1 + rng.Intn(4)))
	case "account":
		if read {
			return spec.OpBalance, spec.Nil
		}
		if rng.Intn(2) == 0 {
			return spec.OpDeposit, spec.Int(int64(1 + rng.Intn(10)))
		}
		return spec.OpWithdraw, spec.Int(int64(1 + rng.Intn(10)))
	case "set":
		if read {
			if rng.Intn(2) == 0 {
				return spec.OpMember, spec.Int(int64(rng.Intn(8)))
			}
			return spec.OpSize, spec.Nil
		}
		if rng.Intn(2) == 0 {
			return spec.OpInsert, spec.Int(int64(rng.Intn(8)))
		}
		return spec.OpRemove, spec.Int(int64(rng.Intn(8)))
	case "appendlog":
		if read {
			return spec.OpLen, spec.Nil
		}
		return spec.OpAppend, spec.Int(int64(rng.Intn(100)))
	case "queue":
		if read {
			return spec.OpDeq, spec.Nil
		}
		return spec.OpEnq, spec.Int(int64(rng.Intn(100)))
	default: // register
		if read {
			return spec.OpRead, spec.Nil
		}
		return spec.OpWrite, spec.Int(int64(rng.Intn(100)))
	}
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("nestedload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr      = fs.String("addr", "", "server address (empty with -selfserve)")
		selfserve = fs.Bool("selfserve", false, "start an in-process server on a loopback port")
		workers   = fs.Int("workers", 4, "concurrent client connections")
		sessions  = fs.Int("sessions", 25, "transactions per worker (ignored with -dur)")
		dur       = fs.Duration("dur", 0, "run for this long instead of a fixed transaction count")
		accesses  = fs.Int("accesses", 4, "accesses per transaction")
		childProb = fs.Float64("childprob", 0.25, "probability an access runs inside a subtransaction")
		readRatio = fs.Float64("readratio", 0.5, "fraction of read-class operations")
		zipfS     = fs.Float64("zipf", 0, "zipf skew parameter s (>1 enables skewed object choice)")
		numObj    = fs.Int("objects", 4, "number of shared objects (x0..x{n-1})")
		specName  = fs.String("spec", "register", "object type")
		protoName = fs.String("protocol", "moss", "selfserve: concurrency control protocol")
		seed      = fs.Int64("seed", 1, "per-worker RNG seed base")
		retries   = fs.Int("retries", 8, "max attempts per transaction (bounded exponential backoff)")
		bench     = fs.Bool("bench", false, "also print a go test -bench style summary line")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *workers < 1 || *accesses < 1 || *numObj < 1 {
		fmt.Fprintln(stderr, "nestedload: -workers, -accesses and -objects must be positive")
		return 2
	}
	if spec.ByName(*specName) == nil {
		fmt.Fprintf(stderr, "nestedload: unknown spec %q\n", *specName)
		return 2
	}

	objects := make([]string, *numObj)
	for i := range objects {
		objects[i] = fmt.Sprintf("x%d", i)
	}

	var srv *server.Server
	target := *addr
	if *selfserve {
		proto := protocolByName(*protoName)
		if proto == nil {
			fmt.Fprintf(stderr, "nestedload: unknown protocol %q\n", *protoName)
			return 2
		}
		var err error
		srv, err = server.Listen("127.0.0.1:0", server.Options{
			Protocol:    proto,
			DefaultSpec: spec.ByName(*specName),
			Objects:     objects,
		})
		if err != nil {
			fmt.Fprintln(stderr, "nestedload:", err)
			return 2
		}
		target = srv.Addr().String()
	} else if target == "" {
		fmt.Fprintln(stderr, "nestedload: -addr is required without -selfserve")
		return 2
	}

	var (
		committed atomic.Int64
		failed    atomic.Int64
		lat       server.Histogram
		wg        sync.WaitGroup
	)
	start := time.Now()
	deadline := time.Time{}
	if *dur > 0 {
		deadline = start.Add(*dur)
	}
	errCh := make(chan error, *workers)
	for w := 0; w < *workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(*seed + int64(w)))
			var zipf *rand.Zipf
			if *zipfS > 1 {
				zipf = rand.NewZipf(rng, *zipfS, 1, uint64(*numObj-1))
			}
			pick := func() string {
				if zipf != nil {
					return objects[zipf.Uint64()]
				}
				return objects[rng.Intn(*numObj)]
			}
			c, err := client.Dial(target)
			if err != nil {
				errCh <- err
				return
			}
			defer c.Close()
			body := func(tx *client.Tx) error {
				for a := 0; a < *accesses; a++ {
					op, arg := opFor(*specName, rng, *readRatio)
					obj := pick()
					if rng.Float64() < *childProb {
						if _, err := tx.Child(); err != nil {
							return err
						}
						if _, err := tx.Access(obj, op, arg); err != nil {
							return err
						}
						if _, err := tx.Commit(); err != nil {
							return err
						}
					} else if _, err := tx.Access(obj, op, arg); err != nil {
						return err
					}
				}
				return nil
			}
			for i := 0; deadline.IsZero() && i < *sessions || !deadline.IsZero() && time.Now().Before(deadline); i++ {
				t0 := time.Now()
				if err := c.RunTx(*retries, body); err != nil {
					failed.Add(1)
					if !errors.Is(err, client.ErrTxAborted) {
						errCh <- err
						return
					}
					continue
				}
				lat.Observe(time.Since(t0))
				committed.Add(1)
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errCh)
	for err := range errCh {
		fmt.Fprintln(stderr, "nestedload: worker:", err)
	}

	done := committed.Load()
	tput := float64(done) / elapsed.Seconds()
	fmt.Fprintf(stdout, "workers=%d committed=%d failed=%d elapsed=%s throughput=%.1f tx/s\n",
		*workers, done, failed.Load(), elapsed.Round(time.Millisecond), tput)
	fmt.Fprintf(stdout, "latency: mean=%s p50=%s p99=%s\n",
		lat.Mean().Round(time.Microsecond), lat.Quantile(0.50), lat.Quantile(0.99))

	ok := true
	if srv != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Fprintln(stderr, "nestedload: drain:", err)
		}
		f := srv.Final()
		fmt.Fprint(stdout, f.Summary)
		ok = f.Batch.OK && f.Match
	} else {
		// Remote server: read its live verdict over the wire.
		c, err := client.Dial(target)
		if err == nil {
			v, verr := c.Verdict()
			c.Close()
			if verr == nil {
				var rate float64
				if v.Commits+v.Aborts > 0 {
					rate = float64(v.Aborts) / float64(v.Commits+v.Aborts)
				}
				fmt.Fprintf(stdout,
					"server verdict: events=%d certified=%d acyclic=%v sg=%d/%d/%d (parents/nodes/edges) commits=%d aborts=%d abort-rate=%.3f\n",
					v.Events, v.Certified, v.Acyclic, v.Parents, v.Nodes, v.Edges, v.Commits, v.Aborts, rate)
				ok = v.Acyclic
			} else {
				fmt.Fprintln(stderr, "nestedload: verdict:", verr)
				ok = false
			}
		}
	}

	if *bench && done > 0 {
		// One line per run in `go test -bench` text format so cmd/benchdiff
		// can diff load runs; reported only, never gated.
		fmt.Fprintf(stdout, "BenchmarkNestedload/c%d %d %d ns/op\n",
			*workers, done, elapsed.Nanoseconds()/done)
	}
	if !ok || (done == 0 && failed.Load() > 0) {
		return 1
	}
	return 0
}
