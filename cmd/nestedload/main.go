// Command nestedload is a closed-loop load generator for nestedsgd: N
// workers each drive their own connection, running top-level transactions
// (with optional subtransactions) against K shared objects with a
// configurable read/write mix and zipf skew, retrying server-side aborts
// with bounded exponential backoff. It prints a throughput/latency table
// and the server's final certification verdict.
//
// Usage:
//
//	nestedload -addr 127.0.0.1:7474 -workers 16 -sessions 25
//	nestedload -selfserve -workers 4 -dur 1s       # in-process server
//	nestedload -selfserve -backend mvto -readratio 0.95   # snapshot reads
//	nestedload -selfserve -workers 4 -bench        # go test -bench format
//	nestedload -sweep -dur 250ms                   # clients × read-ratio × zipf grid
//	nestedload -sweep -sweep-backends moss,undolog,mvto,replica
//
// The sweep runs every combination of -sweep-backends, -sweep-clients,
// -sweep-readratios and -sweep-zipfs against a fresh in-process server and
// emits one `go test -bench` style line per cell with latency percentiles
// and throughput as custom units (p50-us, p99-us, tx/s), so cmd/benchdiff
// can track tail latency and throughput as first-class columns.
//
// Transactions whose drawn operations are all read-class run through
// client.RunReadTx: on the mvto backend they read a lock-free certified
// snapshot; every other backend degrades them to ordinary transactions.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"context"

	"nestedsg/internal/client"
	"nestedsg/internal/server"
	"nestedsg/internal/spec"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// opFor draws one operation for the given spec: read-class with probability
// readRatio, update-class otherwise, with small argument domains so
// conflicts actually occur. The third return reports whether the drawn
// operation is read-class, so the caller can route all-read transactions
// through the read-only BEGIN.
func opFor(specName string, rng *rand.Rand, readRatio float64) (spec.OpKind, spec.Value, bool) {
	read := rng.Float64() < readRatio
	switch specName {
	case "counter":
		if read {
			return spec.OpGet, spec.Nil, true
		}
		if rng.Intn(2) == 0 {
			return spec.OpIncrement, spec.Int(int64(1 + rng.Intn(4))), false
		}
		return spec.OpDecrement, spec.Int(int64(1 + rng.Intn(4))), false
	case "account":
		if read {
			return spec.OpBalance, spec.Nil, true
		}
		if rng.Intn(2) == 0 {
			return spec.OpDeposit, spec.Int(int64(1 + rng.Intn(10))), false
		}
		return spec.OpWithdraw, spec.Int(int64(1 + rng.Intn(10))), false
	case "set":
		if read {
			if rng.Intn(2) == 0 {
				return spec.OpMember, spec.Int(int64(rng.Intn(8))), true
			}
			return spec.OpSize, spec.Nil, true
		}
		if rng.Intn(2) == 0 {
			return spec.OpInsert, spec.Int(int64(rng.Intn(8))), false
		}
		return spec.OpRemove, spec.Int(int64(rng.Intn(8))), false
	case "appendlog":
		if read {
			return spec.OpLen, spec.Nil, true
		}
		return spec.OpAppend, spec.Int(int64(rng.Intn(100))), false
	case "queue":
		if read {
			return spec.OpDeq, spec.Nil, false // Deq mutates: not read-class
		}
		return spec.OpEnq, spec.Int(int64(rng.Intn(100))), false
	default: // register
		if read {
			return spec.OpRead, spec.Nil, true
		}
		return spec.OpWrite, spec.Int(int64(rng.Intn(100))), false
	}
}

// loadConfig is one load run's parameters. selfserve means execute starts
// (and drains) an in-process server running the named object backend.
type loadConfig struct {
	target    string
	selfserve bool
	backend   string
	workers   int
	sessions  int
	dur       time.Duration
	accesses  int
	childProb float64
	readRatio float64
	zipfS     float64
	objects   []string
	specName  string
	seed      int64
	retries   int
	shards    int
	parts     int
}

// loadResult is what one load run measured, plus the certification verdict
// the run ended with.
type loadResult struct {
	committed int64
	roDone    int64 // committed transactions that ran through RunReadTx
	failed    int64
	srvAborts int64 // selfserve: server-initiated top-level aborts (timeouts, deadlocks, restarts, drain)
	elapsed   time.Duration
	lat       *server.Histogram
	ok        bool
	summary   string // final certificate (selfserve) or remote verdict line
}

// snapInt reads an int64-valued counter out of a metrics snapshot.
func snapInt(m map[string]any, key string) int64 {
	v, _ := m[key].(int64)
	return v
}

// execute runs one closed loop load against the configured server and
// returns the measurements; worker transport errors go to stderr. The
// second return is nonzero on setup failure.
func execute(cfg loadConfig, stderr io.Writer) (*loadResult, int) {
	var srv *server.Server
	target := cfg.target
	if cfg.selfserve {
		var err error
		srv, err = server.Listen("127.0.0.1:0", server.Options{
			Backend:        cfg.backend,
			DefaultSpec:    spec.ByName(cfg.specName),
			Objects:        cfg.objects,
			LogShards:      cfg.shards,
			CertPartitions: cfg.parts,
		})
		if err != nil {
			fmt.Fprintln(stderr, "nestedload:", err)
			return nil, 2
		}
		target = srv.Addr().String()
	}

	var (
		committed atomic.Int64
		roDone    atomic.Int64
		failed    atomic.Int64
		lat       server.Histogram
		wg        sync.WaitGroup
	)
	start := time.Now()
	deadline := time.Time{}
	if cfg.dur > 0 {
		deadline = start.Add(cfg.dur)
	}
	errCh := make(chan error, cfg.workers)
	for w := 0; w < cfg.workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.seed + int64(w)))
			var zipf *rand.Zipf
			if cfg.zipfS > 1 {
				zipf = rand.NewZipf(rng, cfg.zipfS, 1, uint64(len(cfg.objects)-1))
			}
			pick := func() string {
				if zipf != nil {
					return cfg.objects[zipf.Uint64()]
				}
				return cfg.objects[rng.Intn(len(cfg.objects))]
			}
			c, err := client.Dial(target)
			if err != nil {
				errCh <- err
				return
			}
			defer c.Close()
			// Each transaction's accesses are drawn up front so retries
			// replay the same work, and so an all-read plan can run through
			// RunReadTx: on the mvto backend that is a lock-free certified
			// snapshot, on every other backend the server degrades it to an
			// ordinary transaction.
			type planned struct {
				obj   string
				op    spec.OpKind
				arg   spec.Value
				child bool
			}
			plan := make([]planned, cfg.accesses)
			body := func(tx *client.Tx) error {
				for _, p := range plan {
					if p.child {
						if _, err := tx.Child(); err != nil {
							return err
						}
						if _, err := tx.Access(p.obj, p.op, p.arg); err != nil {
							return err
						}
						if _, err := tx.Commit(); err != nil {
							return err
						}
					} else if _, err := tx.Access(p.obj, p.op, p.arg); err != nil {
						return err
					}
				}
				return nil
			}
			for i := 0; deadline.IsZero() && i < cfg.sessions || !deadline.IsZero() && time.Now().Before(deadline); i++ {
				allRead := true
				for a := range plan {
					op, arg, read := opFor(cfg.specName, rng, cfg.readRatio)
					plan[a] = planned{obj: pick(), op: op, arg: arg, child: rng.Float64() < cfg.childProb}
					allRead = allRead && read
				}
				runTx := c.RunTx
				if allRead {
					runTx = c.RunReadTx
				}
				t0 := time.Now()
				if err := runTx(cfg.retries, body); err != nil {
					failed.Add(1)
					if !errors.Is(err, client.ErrTxAborted) {
						errCh <- err
						return
					}
					continue
				}
				lat.Observe(time.Since(t0))
				committed.Add(1)
				if allRead {
					roDone.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errCh)
	for err := range errCh {
		fmt.Fprintln(stderr, "nestedload: worker:", err)
	}

	res := &loadResult{
		committed: committed.Load(),
		roDone:    roDone.Load(),
		failed:    failed.Load(),
		elapsed:   elapsed,
		lat:       &lat,
	}
	if srv != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Fprintln(stderr, "nestedload: drain:", err)
		}
		snap := srv.MetricsSnapshot()
		res.srvAborts = snapInt(snap, "lock_timeouts") + snapInt(snap, "deadlock_aborts") +
			snapInt(snap, "restart_aborts") + snapInt(snap, "drain_aborts")
		f := srv.Final()
		res.summary = f.Summary
		res.ok = f.Batch.OK && f.Match
	} else {
		// Remote server: read its live verdict over the wire.
		c, err := client.Dial(target)
		if err == nil {
			v, verr := c.Verdict()
			c.Close()
			if verr == nil {
				var rate float64
				if v.Commits+v.Aborts > 0 {
					rate = float64(v.Aborts) / float64(v.Commits+v.Aborts)
				}
				res.summary = fmt.Sprintf(
					"server verdict: events=%d certified=%d acyclic=%v sg=%d/%d/%d (parents/nodes/edges) commits=%d aborts=%d abort-rate=%.3f\n",
					v.Events, v.Certified, v.Acyclic, v.Parents, v.Nodes, v.Edges, v.Commits, v.Aborts, rate)
				res.ok = v.Acyclic
			} else {
				fmt.Fprintln(stderr, "nestedload: verdict:", verr)
				res.ok = false
			}
		}
	}
	return res, 0
}

// tput is committed transactions per wall second.
func (r *loadResult) tput() float64 {
	if r.elapsed <= 0 {
		return 0
	}
	return float64(r.committed) / r.elapsed.Seconds()
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("nestedload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr      = fs.String("addr", "", "server address (empty with -selfserve)")
		selfserve = fs.Bool("selfserve", false, "start an in-process server on a loopback port")
		workers   = fs.Int("workers", 4, "concurrent client connections")
		sessions  = fs.Int("sessions", 25, "transactions per worker (ignored with -dur)")
		dur       = fs.Duration("dur", 0, "run for this long instead of a fixed transaction count")
		accesses  = fs.Int("accesses", 4, "accesses per transaction")
		childProb = fs.Float64("childprob", 0.25, "probability an access runs inside a subtransaction")
		readRatio = fs.Float64("readratio", 0.5, "fraction of read-class operations")
		zipfS     = fs.Float64("zipf", 0, "zipf skew parameter s (>1 enables skewed object choice)")
		numObj    = fs.Int("objects", 4, "number of shared objects (x0..x{n-1})")
		specName    = fs.String("spec", "register", "object type")
		protoName   = fs.String("protocol", "", "selfserve: legacy alias for -backend (moss or undolog)")
		backendName = fs.String("backend", "", "selfserve: object backend: moss (default), undolog, mvto, replica")
		seed        = fs.Int64("seed", 1, "per-worker RNG seed base")
		shards    = fs.Int("shards", 0, "selfserve: event-log append shards (0 = server default)")
		certParts = fs.Int("cert-partitions", 0, "selfserve: certifier partitions (0 or 1 = single certifier)")
		retries   = fs.Int("retries", 8, "max attempts per transaction (bounded exponential backoff)")
		bench     = fs.Bool("bench", false, "also print a go test -bench style summary line")

		sweep         = fs.Bool("sweep", false, "run a backends × clients × read-ratio × zipf grid on in-process servers, one bench line per cell")
		sweepBackends = fs.String("sweep-backends", "moss", "sweep: comma-separated object backends")
		sweepCli      = fs.String("sweep-clients", "1,4,8,16", "sweep: comma-separated worker counts")
		sweepRatios   = fs.String("sweep-readratios", "0.2,0.8", "sweep: comma-separated read ratios")
		sweepZipfs    = fs.String("sweep-zipfs", "0,1.5", "sweep: comma-separated zipf skews (0 = uniform)")
		sweepShards   = fs.String("sweep-shards", "1,4", "sweep: comma-separated event-log shard counts")
		sweepParts    = fs.String("sweep-partitions", "1", "sweep: comma-separated certifier partition counts")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *workers < 1 || *accesses < 1 || *numObj < 1 {
		fmt.Fprintln(stderr, "nestedload: -workers, -accesses and -objects must be positive")
		return 2
	}
	sp := spec.ByName(*specName)
	if sp == nil {
		fmt.Fprintf(stderr, "nestedload: unknown spec %q\n", *specName)
		return 2
	}
	backend := *backendName
	if *protoName != "" {
		// -protocol is the legacy alias; it resolves to the same backends.
		if backend != "" {
			fmt.Fprintln(stderr, "nestedload: -protocol and -backend are both set; use -backend")
			return 2
		}
		if *protoName != "moss" && *protoName != "undolog" {
			fmt.Fprintf(stderr, "nestedload: unknown protocol %q (want moss or undolog)\n", *protoName)
			return 2
		}
		backend = *protoName
	}
	if backend == "" {
		backend = "moss"
	}
	if err := server.ValidateBackendOptions(server.Options{Backend: backend, DefaultSpec: sp}); err != nil {
		fmt.Fprintln(stderr, "nestedload:", err)
		return 2
	}

	objects := make([]string, *numObj)
	for i := range objects {
		objects[i] = fmt.Sprintf("x%d", i)
	}

	base := loadConfig{
		backend:   backend,
		workers:   *workers,
		sessions:  *sessions,
		dur:       *dur,
		accesses:  *accesses,
		childProb: *childProb,
		readRatio: *readRatio,
		zipfS:     *zipfS,
		objects:   objects,
		specName:  *specName,
		seed:      *seed,
		retries:   *retries,
		shards:    *shards,
		parts:     *certParts,
	}

	if *sweep {
		return runSweep(base, *sweepBackends, *sweepCli, *sweepRatios, *sweepZipfs, *sweepShards, *sweepParts, stdout, stderr)
	}

	if *selfserve {
		base.selfserve = true
	} else if *addr == "" {
		fmt.Fprintln(stderr, "nestedload: -addr is required without -selfserve")
		return 2
	} else {
		base.target = *addr
	}

	res, rc := execute(base, stderr)
	if rc != 0 {
		return rc
	}
	tput := res.tput()
	// backend= and server-aborts= are selfserve facts; a remote server's
	// backend is its own business and its abort counters arrive in the
	// verdict line instead.
	if base.selfserve {
		fmt.Fprintf(stdout, "backend=%s ", base.backend)
	}
	fmt.Fprintf(stdout, "workers=%d committed=%d ro=%d failed=%d", base.workers, res.committed, res.roDone, res.failed)
	if base.selfserve {
		fmt.Fprintf(stdout, " server-aborts=%d", res.srvAborts)
	}
	fmt.Fprintf(stdout, " elapsed=%s throughput=%.1f tx/s\n", res.elapsed.Round(time.Millisecond), tput)
	fmt.Fprintf(stdout, "latency: mean=%s p50=%s p99=%s\n",
		res.lat.Mean().Round(time.Microsecond), res.lat.Quantile(0.50), res.lat.Quantile(0.99))
	fmt.Fprint(stdout, res.summary)

	if *bench && res.committed > 0 {
		// One line per run in `go test -bench` text format so cmd/benchdiff
		// can diff load runs; reported only, never gated.
		fmt.Fprintf(stdout, "BenchmarkNestedload/c%d %d %d ns/op\n",
			base.workers, res.committed, res.elapsed.Nanoseconds()/res.committed)
	}
	if !res.ok || (res.committed == 0 && res.failed > 0) {
		return 1
	}
	return 0
}

// runSweep executes the backends × clients × read-ratio × zipf × shards ×
// partitions grid, each cell a fresh in-process server, and emits one
// benchmark line per cell whose custom units (p50-us, p99-us, tx/s)
// cmd/benchdiff parses into BENCH columns. Every cell must end with a clean
// certificate; any verdict failure fails the sweep.
func runSweep(base loadConfig, backendList, cliList, ratioList, zipfList, shardList, partList string, stdout, stderr io.Writer) int {
	var bks []string
	for _, b := range strings.Split(backendList, ",") {
		if b = strings.TrimSpace(b); b == "" {
			continue
		}
		if err := server.ValidateBackendOptions(server.Options{Backend: b, DefaultSpec: spec.ByName(base.specName)}); err != nil {
			fmt.Fprintln(stderr, "nestedload: -sweep-backends:", err)
			return 2
		}
		bks = append(bks, b)
	}
	if len(bks) == 0 {
		fmt.Fprintln(stderr, "nestedload: -sweep-backends is empty")
		return 2
	}
	clients, err := parseInts(cliList)
	if err != nil {
		fmt.Fprintln(stderr, "nestedload: -sweep-clients:", err)
		return 2
	}
	ratios, err := parseFloats(ratioList)
	if err != nil {
		fmt.Fprintln(stderr, "nestedload: -sweep-readratios:", err)
		return 2
	}
	zipfs, err := parseFloats(zipfList)
	if err != nil {
		fmt.Fprintln(stderr, "nestedload: -sweep-zipfs:", err)
		return 2
	}
	shards, err := parseInts(shardList)
	if err != nil {
		fmt.Fprintln(stderr, "nestedload: -sweep-shards:", err)
		return 2
	}
	parts, err := parseInts(partList)
	if err != nil {
		fmt.Fprintln(stderr, "nestedload: -sweep-partitions:", err)
		return 2
	}

	rc := 0
	for _, bk := range bks {
		for _, c := range clients {
			for _, r := range ratios {
				for _, z := range zipfs {
					for _, sh := range shards {
						for _, pt := range parts {
							cfg := base
							cfg.selfserve = true
							cfg.backend = bk
							cfg.workers = c
							cfg.readRatio = r
							cfg.zipfS = z
							cfg.shards = sh
							cfg.parts = pt
							res, erc := execute(cfg, stderr)
							if erc != 0 {
								return erc
							}
							name := fmt.Sprintf("BenchmarkServerSweep/b%s/c%d/r%.2f/z%.1f/s%d/p%d", bk, c, r, z, sh, pt)
							fmt.Fprintf(stderr, "# %s committed=%d ro=%d failed=%d aborts=%d elapsed=%s ok=%v\n",
								strings.TrimPrefix(name, "Benchmark"), res.committed, res.roDone, res.failed,
								res.srvAborts, res.elapsed.Round(time.Millisecond), res.ok)
							if res.committed > 0 {
								fmt.Fprintf(stdout, "%s %d %d ns/op %d p50-us %d p99-us %.1f tx/s\n",
									name, res.committed, res.elapsed.Nanoseconds()/res.committed,
									res.lat.Quantile(0.50).Microseconds(), res.lat.Quantile(0.99).Microseconds(),
									res.tput())
							}
							if !res.ok || (res.committed == 0 && res.failed > 0) {
								rc = 1
							}
						}
					}
				}
			}
		}
	}
	return rc
}
