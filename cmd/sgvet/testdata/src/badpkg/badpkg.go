// Package badpkg violates each sgvet analyzer exactly once; cmd/sgvet's
// tests assert one finding per analyzer against it. The simdeterminism
// bait lives in the badpkg/sim subpackage, whose import path ends in /sim.
package badpkg

import (
	"nestedsg/internal/event"
	"nestedsg/internal/simple"
	"nestedsg/internal/tname"
)

// nonExhaustive trips exhaustivekind: no default, eight kinds missing.
func nonExhaustive(k event.Kind) bool {
	switch k {
	case event.Create:
		return true
	}
	return false
}

// literalEvent trips noeventliteral: hand-assembled event.Event.
func literalEvent(tx tname.TxID) event.Event {
	return event.Event{Kind: event.Create, Tx: tx}
}

// droppedCheck trips checkederr: the well-formedness verdict is discarded.
func droppedCheck(tr *tname.Tree, b event.Behavior) {
	simple.CheckWellFormed(tr, b)
}

// nameCompare trips tnamecompare: identity via rendered names.
func nameCompare(tr *tname.Tree, a, b tname.TxID) bool {
	return tr.Name(a) == tr.Name(b)
}

// mutate trips behaviorimmutable: writes into a recorded behavior.
func mutate(b event.Behavior) {
	b[0] = event.NewEvent(event.Abort, tname.Root)
}
