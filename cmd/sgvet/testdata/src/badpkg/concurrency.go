// The concurrency-discipline baits: one lockguard violation, one
// lockorder cycle, one allocating hotpath. Each must fire its analyzer
// exactly once.
package badpkg

import "sync"

// guarded carries a field whose annotation demands the sibling mutex.
type guarded struct {
	mu sync.Mutex
	n  int //sgvet:guardedby mu
}

// unguardedWrite trips lockguard: the write skips g.mu.
func unguardedWrite(g *guarded) {
	g.n = 1
}

var (
	lockA sync.Mutex
	lockB sync.Mutex
)

// abOrder acquires lockA before lockB…
func abOrder() {
	lockA.Lock()
	lockB.Lock()
	lockB.Unlock()
	lockA.Unlock()
}

// baOrder …and baOrder acquires them in the reverse order, closing the
// two-lock cycle lockorder reports as a potential deadlock.
func baOrder() {
	lockB.Lock()
	lockA.Lock()
	lockA.Unlock()
	lockB.Unlock()
}

// boxed exists to give hotAllocates something to heap-allocate.
type boxed struct{ v int }

// hotAllocates trips hotalloc: a hotpath function whose return value
// escapes to the heap.
//
//sgvet:hotpath
func hotAllocates() *boxed {
	return &boxed{v: 1}
}
