// Package sim rides along with badpkg under an import path ending in
// /sim, tripping simdeterminism exactly once.
package sim

import "time"

// wallClock trips simdeterminism: a simulator package reading time.Now.
func wallClock() time.Time {
	return time.Now()
}
