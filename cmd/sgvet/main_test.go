package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"nestedsg/internal/analysis"
)

// TestBadPackageFiresEachAnalyzerOnce runs the full suite against the
// known-bad fixture and asserts every analyzer fires exactly once — no
// analyzer is dead, and none misfires on the others' bait.
func TestBadPackageFiresEachAnalyzerOnce(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := sgvet([]string{"./testdata/src/badpkg/..."}, &stdout, &stderr)
	if code != 2 {
		t.Fatalf("exit code = %d, want 2 (findings); stderr: %s", code, stderr.String())
	}

	tagRE := regexp.MustCompile(`\[(\w+)\]$`)
	counts := make(map[string]int)
	for _, line := range strings.Split(strings.TrimSpace(stdout.String()), "\n") {
		m := tagRE.FindStringSubmatch(line)
		if m == nil {
			t.Errorf("finding line without analyzer tag: %q", line)
			continue
		}
		counts[m[1]]++
	}
	for _, a := range analysis.All() {
		if counts[a.Name] != 1 {
			t.Errorf("analyzer %s fired %d times on badpkg, want exactly 1", a.Name, counts[a.Name])
		}
	}
	if len(counts) != len(analysis.All()) {
		t.Errorf("findings from %d analyzers, want %d; got %v", len(counts), len(analysis.All()), counts)
	}
}

// TestCleanPackageExitsZero pins the go-vet-style exit contract on a
// violation-free package.
func TestCleanPackageExitsZero(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := sgvet([]string{"nestedsg/internal/graph"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0; stdout: %s stderr: %s", code, stdout.String(), stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("unexpected findings on clean package: %s", stdout.String())
	}
}

// TestListFlag pins the -list inventory so that adding an analyzer without
// registering it in All() is caught.
func TestListFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := sgvet([]string{"-list"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0", code)
	}
	for _, a := range analysis.All() {
		if !strings.Contains(stdout.String(), a.Name) {
			t.Errorf("-list output missing analyzer %s:\n%s", a.Name, stdout.String())
		}
	}
}

// TestBadPatternExitsOne pins the operational-error exit code.
func TestBadPatternExitsOne(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := sgvet([]string{"./does-not-exist"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1; stderr: %s", code, stderr.String())
	}
}

// TestJSONOutput pins the machine-readable mode: -json replaces the text
// findings with a JSON array carrying the same analyzer attributions.
func TestJSONOutput(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := sgvet([]string{"-json", "./testdata/src/badpkg/..."}, &stdout, &stderr)
	if code != 2 {
		t.Fatalf("exit code = %d, want 2; stderr: %s", code, stderr.String())
	}
	var recs []struct {
		File     string `json:"file"`
		Line     int    `json:"line"`
		Analyzer string `json:"analyzer"`
		Message  string `json:"message"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &recs); err != nil {
		t.Fatalf("stdout is not a JSON array: %v\n%s", err, stdout.String())
	}
	if len(recs) != len(analysis.All()) {
		t.Fatalf("got %d JSON findings, want %d", len(recs), len(analysis.All()))
	}
	for _, r := range recs {
		if r.File == "" || r.Line == 0 || r.Analyzer == "" || r.Message == "" {
			t.Errorf("incomplete JSON finding: %+v", r)
		}
	}
}

// TestJSONEmptyArray: a clean package yields [] rather than null, so CI
// consumers can always iterate the array.
func TestJSONEmptyArray(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := sgvet([]string{"-json", "nestedsg/internal/graph"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0; stderr: %s", code, stderr.String())
	}
	if got := strings.TrimSpace(stdout.String()); got != "[]" {
		t.Fatalf("clean -json output = %q, want []", got)
	}
}

// TestReportFile: -report writes the JSON artifact next to the normal text
// output, for CI to upload on failure.
func TestReportFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "report.json")
	var stdout, stderr bytes.Buffer
	code := sgvet([]string{"-report", path, "./testdata/src/badpkg/..."}, &stdout, &stderr)
	if code != 2 {
		t.Fatalf("exit code = %d, want 2; stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "[lockguard]") {
		t.Errorf("text output suppressed by -report:\n%s", stdout.String())
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("report not written: %v", err)
	}
	var recs []map[string]any
	if err := json.Unmarshal(b, &recs); err != nil {
		t.Fatalf("report is not a JSON array: %v", err)
	}
	if len(recs) != len(analysis.All()) {
		t.Errorf("report has %d findings, want %d", len(recs), len(analysis.All()))
	}
}

// TestLockDot: -lockdot renders the loaded packages' lock-order graph,
// including the bait cycle's two edges in both directions.
func TestLockDot(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := sgvet([]string{"-lockdot", "./testdata/src/badpkg/..."}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0; stderr: %s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.HasPrefix(out, "digraph lockorder {") {
		t.Fatalf("-lockdot output is not a DOT digraph:\n%s", out)
	}
	for _, edge := range []string{
		`"cmd/sgvet/testdata/src/badpkg.lockA" -> "cmd/sgvet/testdata/src/badpkg.lockB"`,
		`"cmd/sgvet/testdata/src/badpkg.lockB" -> "cmd/sgvet/testdata/src/badpkg.lockA"`,
	} {
		if !strings.Contains(out, edge) {
			t.Errorf("-lockdot output missing edge %s:\n%s", edge, out)
		}
	}
}
