package main

import (
	"bytes"
	"regexp"
	"strings"
	"testing"

	"nestedsg/internal/analysis"
)

// TestBadPackageFiresEachAnalyzerOnce runs the full suite against the
// known-bad fixture and asserts every analyzer fires exactly once — no
// analyzer is dead, and none misfires on the others' bait.
func TestBadPackageFiresEachAnalyzerOnce(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := sgvet([]string{"./testdata/src/badpkg/..."}, &stdout, &stderr)
	if code != 2 {
		t.Fatalf("exit code = %d, want 2 (findings); stderr: %s", code, stderr.String())
	}

	tagRE := regexp.MustCompile(`\[(\w+)\]$`)
	counts := make(map[string]int)
	for _, line := range strings.Split(strings.TrimSpace(stdout.String()), "\n") {
		m := tagRE.FindStringSubmatch(line)
		if m == nil {
			t.Errorf("finding line without analyzer tag: %q", line)
			continue
		}
		counts[m[1]]++
	}
	for _, a := range analysis.All() {
		if counts[a.Name] != 1 {
			t.Errorf("analyzer %s fired %d times on badpkg, want exactly 1", a.Name, counts[a.Name])
		}
	}
	if len(counts) != len(analysis.All()) {
		t.Errorf("findings from %d analyzers, want %d; got %v", len(counts), len(analysis.All()), counts)
	}
}

// TestCleanPackageExitsZero pins the go-vet-style exit contract on a
// violation-free package.
func TestCleanPackageExitsZero(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := sgvet([]string{"nestedsg/internal/graph"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0; stdout: %s stderr: %s", code, stdout.String(), stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("unexpected findings on clean package: %s", stdout.String())
	}
}

// TestListFlag pins the -list inventory so that adding an analyzer without
// registering it in All() is caught.
func TestListFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := sgvet([]string{"-list"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0", code)
	}
	for _, a := range analysis.All() {
		if !strings.Contains(stdout.String(), a.Name) {
			t.Errorf("-list output missing analyzer %s:\n%s", a.Name, stdout.String())
		}
	}
}

// TestBadPatternExitsOne pins the operational-error exit code.
func TestBadPatternExitsOne(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := sgvet([]string{"./does-not-exist"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1; stderr: %s", code, stderr.String())
	}
}
