// Command sgvet runs the repo's custom static analyzers over the given
// package patterns (default ./...) and reports every violation of the
// invariants they enforce; see internal/analysis/README.md for the
// catalogue.
//
// Usage:
//
//	go run ./cmd/sgvet [-list] [packages]
//
// sgvet is the static half of the correctness story: the runtime checkers
// (core.Check, simple.CheckWellFormed, Moss.CheckChainInvariant, ...)
// verify recorded behaviors, while sgvet verifies that the code feeding
// them cannot drift out of the model — no enum switch silently ignoring a
// new kind, no hand-assembled event, no discarded checker verdict, no
// string-compared transaction name, no mutated recording.
//
// The exit code follows go vet: 0 when clean, 1 on operational errors,
// 2 when findings were reported. CI runs it alongside `go vet` (see the
// Makefile's vet and sgvet targets); the standard vet passes are left to
// the standard tool rather than re-driven from here.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"nestedsg/internal/analysis"
)

func main() {
	os.Exit(sgvet(os.Args[1:], os.Stdout, os.Stderr))
}

// sgvet is main with injectable streams; it returns the process exit code.
func sgvet(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sgvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list the analyzers and exit")
	dir := fs.String("C", "", "change to this directory before loading packages")
	if err := fs.Parse(args); err != nil {
		return 1
	}
	if *list {
		for _, a := range analysis.All() {
			fmt.Fprintf(stdout, "%-18s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	n, err := analysis.Vet(stdout, analysis.LoadConfig{Dir: *dir}, patterns, analysis.All())
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	if n > 0 {
		fmt.Fprintf(stderr, "sgvet: %d finding(s)\n", n)
		return 2
	}
	return 0
}
