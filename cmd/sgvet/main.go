// Command sgvet runs the repo's custom static analyzers over the given
// package patterns (default ./...) and reports every violation of the
// invariants they enforce; see internal/analysis/README.md for the
// catalogue.
//
// Usage:
//
//	go run ./cmd/sgvet [-list] [-json] [-report file] [-lockdot] [packages]
//
// -json replaces the text findings on stdout with a JSON array; -report
// additionally writes that JSON to a file alongside the text output (CI
// uploads it as an artifact when the run fails); -lockdot prints the
// global lock-order graph of the loaded packages as DOT and exits 0 —
// the same graph the lockorder analyzer checks for cycles.
//
// sgvet is the static half of the correctness story: the runtime checkers
// (core.Check, simple.CheckWellFormed, Moss.CheckChainInvariant, ...)
// verify recorded behaviors, while sgvet verifies that the code feeding
// them cannot drift out of the model — no enum switch silently ignoring a
// new kind, no hand-assembled event, no discarded checker verdict, no
// string-compared transaction name, no mutated recording.
//
// The exit code follows go vet: 0 when clean, 1 on operational errors,
// 2 when findings were reported. CI runs it alongside `go vet` (see the
// Makefile's vet and sgvet targets); the standard vet passes are left to
// the standard tool rather than re-driven from here.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"nestedsg/internal/analysis"
)

func main() {
	os.Exit(sgvet(os.Args[1:], os.Stdout, os.Stderr))
}

// sgvet is main with injectable streams; it returns the process exit code.
func sgvet(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sgvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list the analyzers and exit")
	dir := fs.String("C", "", "change to this directory before loading packages")
	jsonOut := fs.Bool("json", false, "write the findings to stdout as a JSON array instead of text")
	report := fs.String("report", "", "also write the findings as JSON to this `file`")
	lockdot := fs.Bool("lockdot", false, "print the lock-order graph of the loaded packages as DOT and exit")
	if err := fs.Parse(args); err != nil {
		return 1
	}
	if *list {
		for _, a := range analysis.All() {
			fmt.Fprintf(stdout, "%-18s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cfg := analysis.LoadConfig{Dir: *dir}
	if *lockdot {
		pkgs, err := analysis.Load(cfg, patterns...)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		dot, err := analysis.LockOrderDOT(pkgs)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		fmt.Fprint(stdout, dot)
		return 0
	}
	findings, err := analysis.RunPatterns(cfg, patterns, analysis.All())
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	if *jsonOut {
		if err := analysis.WriteJSON(stdout, findings); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
	} else {
		for _, f := range findings {
			fmt.Fprintln(stdout, f)
		}
	}
	if *report != "" {
		f, err := os.Create(*report)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		werr := analysis.WriteJSON(f, findings)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintln(stderr, werr)
			return 1
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "sgvet: %d finding(s)\n", len(findings))
		return 2
	}
	return 0
}
