// Command experiments regenerates every table of EXPERIMENTS.md: the
// theorem-validation sweeps (E1, E2), the negative controls (E3), the
// concurrency and cost characterizations (E4–E5, E8–E10) and the
// classical-theory subsumption check (E6) plus the Lemma 6 audit (E7).
//
// Usage:
//
//	experiments                # standard scale
//	experiments -scale full    # the thorough setting
//	experiments -only E4,E5
//
// Exit status is non-zero if any experiment reports violations.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"nestedsg/internal/experiments"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		scaleName = fs.String("scale", "standard", "smoke, standard or full")
		only      = fs.String("only", "", "comma-separated experiment ids to run (e.g. E1,E4)")
		notes     = fs.Bool("notes", false, "print per-experiment notes")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	var scale experiments.Scale
	switch *scaleName {
	case "smoke":
		scale = experiments.Smoke
	case "standard":
		scale = experiments.Standard
	case "full":
		scale = experiments.Full
	default:
		fmt.Fprintf(stderr, "experiments: unknown scale %q\n", *scaleName)
		return 2
	}

	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}

	failures := 0
	for _, res := range experiments.All(scale) {
		if len(want) > 0 && !want[res.ID] {
			continue
		}
		fmt.Fprintln(stdout, res.Table.String())
		if res.Violations > 0 {
			failures++
			fmt.Fprintf(stdout, "!! %s reported %d violations\n\n", res.ID, res.Violations)
		}
		if *notes && len(res.Notes) > 0 {
			for _, n := range res.Notes {
				fmt.Fprintf(stdout, "   note: %s\n", n)
			}
			fmt.Fprintln(stdout)
		}
	}
	if failures > 0 {
		fmt.Fprintf(stdout, "%d experiment(s) reported violations\n", failures)
		return 1
	}
	fmt.Fprintln(stdout, "all experiments passed")
	return 0
}
