package main

import (
	"bytes"
	"strings"
	"testing"
)

func runCmd(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errBuf bytes.Buffer
	code := run(args, &out, &errBuf)
	return code, out.String(), errBuf.String()
}

func TestSmokeScaleAllPass(t *testing.T) {
	code, out, errOut := runCmd(t, "-scale", "smoke")
	if code != 0 {
		t.Fatalf("exit %d, stderr=%s\n%s", code, errOut, out)
	}
	if !strings.Contains(out, "all experiments passed") {
		t.Errorf("missing pass line:\n%s", out)
	}
	for _, id := range []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10"} {
		if !strings.Contains(out, id+" —") {
			t.Errorf("missing table for %s", id)
		}
	}
}

func TestOnlyFilter(t *testing.T) {
	code, out, _ := runCmd(t, "-scale", "smoke", "-only", "e5,E6")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "E5 —") || !strings.Contains(out, "E6 —") {
		t.Errorf("filtered tables missing:\n%s", out)
	}
	if strings.Contains(out, "E1 —") {
		t.Errorf("E1 should be filtered out")
	}
}

func TestUnknownScale(t *testing.T) {
	code, _, errOut := runCmd(t, "-scale", "cosmic")
	if code != 2 || !strings.Contains(errOut, "unknown scale") {
		t.Fatalf("code=%d stderr=%s", code, errOut)
	}
}
