// Command nestedrun generates a seeded nested-transaction workload, runs it
// under a chosen concurrency-control protocol, and writes the recorded
// behavior as a trace (JSON by default, or the compact binary format with
// -format binary; both are checkable with sgcheck). It can also check the
// trace in-process and print run statistics.
//
// Usage:
//
//	nestedrun -protocol moss -toplevel 8 -depth 2 -seed 7 -out trace.json
//	nestedrun -protocol moss -format binary -out trace.bin
//	nestedrun -protocol undolog -spec counter -hot 0.9 -check
//	nestedrun -protocol moss-broken-readlocks -check   # watch it get caught
//
// Protocols: serial, moss, undolog, mvto, replica, moss-broken-readlocks,
// moss-broken-inheritance, moss-broken-recovery, undolog-broken-noundo,
// undolog-broken-commute.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"nestedsg/internal/core"
	"nestedsg/internal/event"
	"nestedsg/internal/generic"
	"nestedsg/internal/locking"
	"nestedsg/internal/mvto"
	"nestedsg/internal/object"
	"nestedsg/internal/profiling"
	"nestedsg/internal/replica"
	"nestedsg/internal/serial"
	"nestedsg/internal/tname"
	"nestedsg/internal/undolog"
	"nestedsg/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func protocolByName(name string) object.Protocol {
	switch name {
	case "moss":
		return locking.Protocol{}
	case "undolog":
		return undolog.Protocol{}
	case "moss-broken-readlocks":
		return locking.BrokenProtocol{Mode: locking.IgnoreReadLocks}
	case "moss-broken-inheritance":
		return locking.BrokenProtocol{Mode: locking.NoInheritance}
	case "moss-broken-recovery":
		return locking.BrokenProtocol{Mode: locking.KeepAbortState}
	case "undolog-broken-noundo":
		return undolog.BrokenProtocol{Mode: undolog.NoUndo}
	case "undolog-broken-commute":
		return undolog.BrokenProtocol{Mode: undolog.SkipCommute}
	}
	return nil
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("nestedrun", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		protocol   = fs.String("protocol", "moss", "protocol: serial, moss, undolog, or a *-broken-* variant")
		seed       = fs.Int64("seed", 1, "seed for workload generation and scheduling")
		topLevel   = fs.Int("toplevel", 6, "number of top-level transactions")
		depth      = fs.Int("depth", 1, "maximum nesting depth below the top level")
		fanout     = fs.Int("fanout", 3, "children per subtransaction")
		objects    = fs.Int("objects", 4, "number of objects")
		specName   = fs.String("spec", "register", "object type: register, counter, account, set, appendlog, queue, mixed")
		readRatio  = fs.Float64("readratio", 0.5, "fraction of reads on register objects")
		hot        = fs.Float64("hot", 0, "probability an access hits object 0 (contention)")
		parProb    = fs.Float64("par", 0.5, "probability a subtransaction runs children in parallel")
		retryProb  = fs.Float64("retry", 0, "probability a subtransaction retries an aborted child once")
		condProb   = fs.Float64("cond", 0, "probability a sequential subtransaction adds a value-dependent access")
		abortProb  = fs.Float64("abortprob", 0, "per-step probability of injecting a spontaneous abort")
		maxAborts  = fs.Int("maxaborts", 0, "budget of injected aborts (0 disables injection)")
		replicas   = fs.Int("replicas", 3, "replica protocol: number of copies N")
		readQ      = fs.Int("readq", 2, "replica protocol: read quorum R")
		writeQ     = fs.Int("writeq", 2, "replica protocol: write quorum W (R+W must exceed N)")
		unavail    = fs.Float64("unavail", 0, "replica protocol: per-attempt copy unavailability probability")
		out        = fs.String("out", "", "write the trace here ('-' for stdout)")
		format     = fs.String("format", "json", "trace format for -out: json or binary")
		check      = fs.Bool("check", false, "run the serialization-graph check on the trace")
		cpuprofile = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = fs.String("memprofile", "", "write a heap profile to this file on exit")
		quiet      = fs.Bool("q", false, "suppress the statistics line")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	var writeTrace func(io.Writer, *tname.Tree, event.Behavior) error
	switch *format {
	case "json":
		writeTrace = event.WriteTrace
	case "binary":
		writeTrace = event.WriteBinaryTrace
	default:
		fmt.Fprintf(stderr, "nestedrun: unknown -format %q (want json or binary)\n", *format)
		return 2
	}

	stopProf, err := profiling.Start(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(stderr, "nestedrun:", err)
		return 2
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(stderr, "nestedrun:", err)
		}
	}()

	tr := tname.NewTree()
	cfg := workload.Config{
		Seed: *seed, TopLevel: *topLevel, Depth: *depth, Fanout: *fanout,
		Objects: *objects, SpecName: *specName, ReadRatio: *readRatio,
		HotProb: *hot, ParProb: *parProb, RetryProb: *retryProb, CondProb: *condProb,
	}
	root := workload.Build(tr, cfg)

	var (
		trace event.Behavior
		st    generic.Stats
	)
	switch *protocol {
	case "serial":
		trace, err = serial.Run(tr, root, serial.Options{Seed: *seed, AbortProb: *abortProb, MaxAborts: *maxAborts})
	case "mvto":
		// MVTO needs the system type to share one hierarchical clock and
		// supports register objects only.
		if *specName != "register" {
			fmt.Fprintln(stderr, "nestedrun: -protocol mvto requires -spec register")
			return 2
		}
		trace, st, err = generic.Run(tr, root, generic.Options{
			Seed: *seed, Protocol: mvto.NewProtocol(tr), AbortProb: *abortProb, MaxAborts: *maxAborts,
		})
	case "replica":
		if *specName != "register" {
			fmt.Fprintln(stderr, "nestedrun: -protocol replica requires -spec register")
			return 2
		}
		cfgR := replica.Config{Copies: *replicas, ReadQuorum: *readQ, WriteQuorum: *writeQ,
			UnavailableProb: *unavail, Seed: *seed}
		if err := cfgR.Validate(); err != nil {
			fmt.Fprintln(stderr, "nestedrun:", err)
			return 2
		}
		trace, st, err = generic.Run(tr, root, generic.Options{
			Seed: *seed, Protocol: replica.Protocol{Cfg: cfgR}, AbortProb: *abortProb, MaxAborts: *maxAborts,
		})
	default:
		proto := protocolByName(*protocol)
		if proto == nil {
			fmt.Fprintf(stderr, "nestedrun: unknown protocol %q\n", *protocol)
			return 2
		}
		trace, st, err = generic.Run(tr, root, generic.Options{
			Seed: *seed, Protocol: proto, AbortProb: *abortProb, MaxAborts: *maxAborts,
		})
	}
	if err != nil {
		fmt.Fprintln(stderr, "nestedrun:", err)
		return 2
	}

	// With -out - the trace owns stdout; informational lines move to stderr
	// so `nestedrun -out - | sgcheck` pipes a clean stream.
	msgW := stdout
	if *out == "-" {
		msgW = stderr
	}
	if !*quiet {
		fmt.Fprintf(msgW, "protocol=%s events=%d commits=%d aborts=%d accesses=%d blocked=%d victims=%d\n",
			*protocol, len(trace), st.Commits, st.Aborts, st.Accesses, st.Blocked, st.DeadlockVictims)
	}

	if *out != "" {
		if *out == "-" {
			if err := writeTrace(stdout, tr, trace); err != nil {
				fmt.Fprintln(stderr, "nestedrun:", err)
				return 2
			}
		} else {
			f, err := os.Create(*out)
			if err != nil {
				fmt.Fprintln(stderr, "nestedrun:", err)
				return 2
			}
			werr := writeTrace(f, tr, trace)
			// The close flushes buffered data; dropping its error would
			// report success for a trace that never reached the disk.
			if cerr := f.Close(); werr == nil {
				werr = cerr
			}
			if werr != nil {
				fmt.Fprintln(stderr, "nestedrun:", werr)
				return 2
			}
			if !*quiet {
				fmt.Fprintf(stdout, "wrote trace to %s\n", *out)
			}
		}
	}

	if *check {
		res := core.Check(tr, trace)
		fmt.Fprintln(msgW, "check:", res.Summary(tr))
		if !res.OK {
			return 1
		}
	}
	return 0
}
