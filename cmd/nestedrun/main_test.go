package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runCmd(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errBuf bytes.Buffer
	code := run(args, &out, &errBuf)
	return code, out.String(), errBuf.String()
}

func TestRunMossWithCheck(t *testing.T) {
	code, out, errOut := runCmd(t, "-protocol", "moss", "-seed", "3", "-toplevel", "4", "-check")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	if !strings.Contains(out, "serially correct for T0") {
		t.Errorf("output: %s", out)
	}
}

func TestRunSerialProtocol(t *testing.T) {
	code, out, _ := runCmd(t, "-protocol", "serial", "-seed", "1", "-check")
	if code != 0 || !strings.Contains(out, "serially correct") {
		t.Fatalf("code=%d out=%s", code, out)
	}
}

func TestRunUndoLogAllSpecs(t *testing.T) {
	for _, spn := range []string{"register", "counter", "account", "set", "appendlog", "queue", "mixed"} {
		code, _, errOut := runCmd(t, "-protocol", "undolog", "-spec", spn, "-seed", "2", "-check", "-q")
		if code != 0 {
			t.Fatalf("%s: exit %d, stderr: %s", spn, code, errOut)
		}
	}
}

func TestRunBrokenProtocolGetsFlagged(t *testing.T) {
	flagged := false
	for seed := int64(0); seed < 10 && !flagged; seed++ {
		code, out, _ := runCmd(t, "-protocol", "moss-broken-readlocks", "-hot", "1",
			"-objects", "1", "-seed", "977", "-check", "-q", "-par", "0.9")
		if code == 1 && strings.Contains(out, "check:") {
			flagged = true
		}
	}
	if !flagged {
		t.Error("broken protocol was never flagged")
	}
}

func TestRunWritesTraceFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.json")
	code, _, errOut := runCmd(t, "-protocol", "moss", "-seed", "5", "-out", path)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"events"`) {
		t.Error("trace file does not look like a trace")
	}
}

func TestRunUnknownProtocol(t *testing.T) {
	code, _, errOut := runCmd(t, "-protocol", "martian")
	if code != 2 || !strings.Contains(errOut, "unknown protocol") {
		t.Fatalf("code=%d stderr=%s", code, errOut)
	}
}

func TestRunBadFlag(t *testing.T) {
	code, _, _ := runCmd(t, "-definitely-not-a-flag")
	if code != 2 {
		t.Fatalf("code=%d", code)
	}
}

func TestProtocolByNameCoversAll(t *testing.T) {
	names := []string{"moss", "undolog", "moss-broken-readlocks", "moss-broken-inheritance",
		"moss-broken-recovery", "undolog-broken-noundo", "undolog-broken-commute"}
	for _, n := range names {
		p := protocolByName(n)
		if p == nil {
			t.Errorf("protocolByName(%q) = nil", n)
			continue
		}
		if p.Name() != n {
			t.Errorf("protocolByName(%q).Name() = %q", n, p.Name())
		}
	}
	if protocolByName("serial") != nil {
		t.Error("serial is not a generic protocol")
	}
}

func TestRunMVTO(t *testing.T) {
	code, out, errOut := runCmd(t, "-protocol", "mvto", "-seed", "4", "-toplevel", "4", "-q")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	_ = out
	// MVTO is register-only.
	code, _, errOut = runCmd(t, "-protocol", "mvto", "-spec", "counter")
	if code != 2 || !strings.Contains(errOut, "register") {
		t.Fatalf("code=%d stderr=%s", code, errOut)
	}
}

func TestRunReplica(t *testing.T) {
	code, _, errOut := runCmd(t, "-protocol", "replica", "-replicas", "5", "-readq", "3",
		"-writeq", "3", "-unavail", "0.3", "-seed", "9", "-check", "-q")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	// Bad quorum arithmetic is rejected.
	code, _, errOut = runCmd(t, "-protocol", "replica", "-replicas", "3", "-readq", "1", "-writeq", "1")
	if code != 2 || !strings.Contains(errOut, "R+W") {
		t.Fatalf("code=%d stderr=%s", code, errOut)
	}
	// Register-only.
	code, _, _ = runCmd(t, "-protocol", "replica", "-spec", "set")
	if code != 2 {
		t.Fatalf("code=%d", code)
	}
}

func TestRunOutWriteErrorExits2(t *testing.T) {
	if _, err := os.Stat("/dev/full"); err != nil {
		t.Skip("/dev/full not available")
	}
	code, out, errOut := runCmd(t, "-protocol", "moss", "-seed", "3", "-toplevel", "4", "-out", "/dev/full", "-q")
	if code != 2 || errOut == "" {
		t.Fatalf("write failure must exit 2 with a message; code=%d stderr=%q out=%q", code, errOut, out)
	}
	if strings.Contains(out, "wrote trace") {
		t.Fatalf("must not claim success: %q", out)
	}
}

func TestRunOutToUnwritableDirExits2(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "missing")
	code, _, errOut := runCmd(t, "-protocol", "moss", "-seed", "3", "-toplevel", "4",
		"-out", filepath.Join(dir, "trace.json"), "-q")
	if code != 2 || errOut == "" {
		t.Fatalf("create failure must exit 2; code=%d stderr=%q", code, errOut)
	}
}
