package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"nestedsg/internal/event"
	"nestedsg/internal/generic"
	"nestedsg/internal/locking"
	"nestedsg/internal/mvto"
	"nestedsg/internal/tname"
	"nestedsg/internal/undolog"
	"nestedsg/internal/workload"
)

// writeTrace produces a trace file from a generated run.
func writeTrace(t *testing.T, broken bool) string {
	t.Helper()
	tr := tname.NewTree()
	root := workload.Build(tr, workload.Config{Seed: 7, TopLevel: 4, Depth: 1, Fanout: 3,
		Objects: 2, HotProb: 0.8, ParProb: 0.9})
	opts := generic.Options{Seed: 11, Protocol: locking.Protocol{}}
	if broken {
		opts.Protocol = undolog.BrokenProtocol{Mode: undolog.SkipCommute}
	}
	b, _, err := generic.Run(tr, root, opts)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "trace.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := event.WriteTrace(f, tr, b); err != nil {
		t.Fatal(err)
	}
	return path
}

func runCmd(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	return runCmdStdin(t, strings.NewReader(""), args...)
}

func runCmdStdin(t *testing.T, stdin io.Reader, args ...string) (int, string, string) {
	t.Helper()
	var out, errBuf bytes.Buffer
	code := run(args, stdin, &out, &errBuf)
	return code, out.String(), errBuf.String()
}

func TestCheckGoodTrace(t *testing.T) {
	path := writeTrace(t, false)
	code, out, errOut := runCmd(t, "-in", path, "-cert", "-deep", "-currentsafe")
	if code != 0 {
		t.Fatalf("exit %d, stderr=%s out=%s", code, errOut, out)
	}
	for _, want := range []string{"serially correct for T0", "suitable sibling order",
		"suitability audit: ok", "current/safe audit:"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestCheckBadTraceExits1(t *testing.T) {
	// The broken protocol frequently yields cycles on this hot workload;
	// find a flagged seed deterministically by scanning.
	path := writeTrace(t, true)
	code, out, _ := runCmd(t, "-in", path)
	if code == 0 && !strings.Contains(out, "serially correct") {
		t.Fatalf("inconsistent verdict: %s", out)
	}
	// Either verdict is possible for one seed; just assert the tool ran and
	// printed a verdict line.
	if !strings.Contains(out, "verdict:") {
		t.Fatalf("no verdict: %s", out)
	}
}

func TestCheckWritesDOT(t *testing.T) {
	path := writeTrace(t, false)
	dot := filepath.Join(t.TempDir(), "sg.dot")
	code, _, errOut := runCmd(t, "-in", path, "-dot", dot)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	data, err := os.ReadFile(dot)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "digraph") {
		t.Error("DOT file content wrong")
	}
}

func TestCheckMissingFile(t *testing.T) {
	code, _, errOut := runCmd(t, "-in", "/does/not/exist.json")
	if code != 2 || errOut == "" {
		t.Fatalf("code=%d stderr=%s", code, errOut)
	}
}

func TestCheckGarbageInput(t *testing.T) {
	path := filepath.Join(t.TempDir(), "garbage.json")
	if err := os.WriteFile(path, []byte("{ nope"), 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, _ := runCmd(t, "-in", path)
	if code != 2 {
		t.Fatalf("code=%d", code)
	}
}

func TestCheckVerbosePrintsTrace(t *testing.T) {
	path := writeTrace(t, false)
	code, out, _ := runCmd(t, "-in", path, "-v")
	if code != 0 || !strings.Contains(out, "CREATE(T0)") {
		t.Fatalf("code=%d out prefix=%s", code, out[:min(200, len(out))])
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestOracleFlagOnMVTOTrace(t *testing.T) {
	// An MVTO trace the SG checker flags but the oracle certifies.
	tr := tname.NewTree()
	root := workload.Build(tr, workload.Config{Seed: 2, TopLevel: 4, Depth: 1, Fanout: 2,
		Objects: 1, HotProb: 1, ParProb: 0.9, ReadRatio: 0.6})
	b, _, err := generic.Run(tr, root, generic.Options{Seed: 31, Protocol: mvto.NewProtocol(tr)})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "mvto.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := event.WriteTrace(f, tr, b); err != nil {
		t.Fatal(err)
	}
	f.Close()

	code, out, _ := runCmd(t, "-in", path, "-oracle")
	if !strings.Contains(out, "verdict:") {
		t.Fatalf("no verdict: %s", out)
	}
	if strings.Contains(out, "oracle:") {
		// SG flagged it; the oracle must have rescued it.
		if code != 0 || !strings.Contains(out, "conservative") {
			t.Fatalf("oracle should certify MVTO traces: code=%d\n%s", code, out)
		}
	} else if code != 0 {
		t.Fatalf("SG passed but exit code %d", code)
	}
}

func TestMinimizeFlag(t *testing.T) {
	// Find a failing broken trace by scanning seeds, then minimize it.
	var path string
	for seed := int64(0); seed < 30; seed++ {
		tr := tname.NewTree()
		root := workload.Build(tr, workload.Config{Seed: seed, TopLevel: 8, Depth: 1,
			Fanout: 3, Objects: 1, HotProb: 1, ParProb: 0.9})
		b, _, err := generic.Run(tr, root, generic.Options{Seed: seed * 11,
			Protocol: undolog.BrokenProtocol{Mode: undolog.SkipCommute}})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := event.WriteTrace(&buf, tr, b); err != nil {
			t.Fatal(err)
		}
		p := filepath.Join(t.TempDir(), "fail.json")
		if err := os.WriteFile(p, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		code, _, _ := runCmd(t, "-in", p)
		if code == 1 {
			path = p
			break
		}
	}
	if path == "" {
		t.Fatal("no failing trace found")
	}
	out := filepath.Join(t.TempDir(), "small.json")
	code, stdout, errOut := runCmd(t, "-in", path, "-minimize", out)
	if code != 1 {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	if !strings.Contains(stdout, "minimize:") || !strings.Contains(stdout, "wrote minimized trace") {
		t.Fatalf("output: %s", stdout)
	}
	// The minimized trace still fails.
	code, _, _ = runCmd(t, "-in", out)
	if code != 1 {
		t.Fatalf("minimized trace exit %d", code)
	}
}

func TestStreamFlagGoodTrace(t *testing.T) {
	path := writeTrace(t, false)
	code, out, errOut := runCmd(t, "-in", path, "-stream")
	if code != 0 {
		t.Fatalf("exit %d, stderr=%s out=%s", code, errOut, out)
	}
	if !strings.Contains(out, "prefixes have acyclic SGs") || !strings.Contains(out, "verdict:") {
		t.Fatalf("stream output wrong:\n%s", out)
	}
}

func TestStreamFlagRejectsAtPrefix(t *testing.T) {
	// Scan seeds for a trace the checker rejects with a cycle, then confirm
	// -stream reports a prefix index and exits 1 without a verdict line.
	for seed := int64(0); seed < 30; seed++ {
		tr := tname.NewTree()
		root := workload.Build(tr, workload.Config{Seed: seed, TopLevel: 8, Depth: 1,
			Fanout: 3, Objects: 1, HotProb: 1, ParProb: 0.9})
		b, _, err := generic.Run(tr, root, generic.Options{Seed: seed * 11,
			Protocol: undolog.BrokenProtocol{Mode: undolog.SkipCommute}})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := event.WriteTrace(&buf, tr, b); err != nil {
			t.Fatal(err)
		}
		p := filepath.Join(t.TempDir(), "fail.json")
		if err := os.WriteFile(p, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		code, out, _ := runCmd(t, "-in", p)
		if code != 1 || !strings.Contains(out, "cycle in SG") {
			continue // need an SG cycle specifically, not a value violation
		}
		code, out, _ = runCmd(t, "-in", p, "-stream")
		if code != 1 {
			t.Fatalf("stream exit %d:\n%s", code, out)
		}
		if !strings.Contains(out, "stream: rejected at event") || !strings.Contains(out, "cycle in SG") {
			t.Fatalf("stream rejection output wrong:\n%s", out)
		}
		if strings.Contains(out, "verdict:") {
			t.Fatalf("stream rejection must short-circuit the offline check:\n%s", out)
		}
		return
	}
	t.Fatal("no cyclic trace found")
}

func TestWorkersFlagMatchesSequential(t *testing.T) {
	path := writeTrace(t, false)
	_, seqOut, _ := runCmd(t, "-in", path, "-cert")
	for _, w := range []string{"0", "4"} {
		code, out, errOut := runCmd(t, "-in", path, "-cert", "-workers", w)
		if code != 0 {
			t.Fatalf("workers=%s exit %d: %s", w, code, errOut)
		}
		if out != seqOut {
			t.Fatalf("workers=%s output differs:\n%s\nvs\n%s", w, out, seqOut)
		}
	}
}

func TestMinimizeWriteErrorExits2(t *testing.T) {
	if _, err := os.Stat("/dev/full"); err != nil {
		t.Skip("/dev/full not available")
	}
	path := writeTrace(t, true)
	if code, _, _ := runCmd(t, "-in", path); code != 1 {
		t.Skip("seed did not produce a failing trace")
	}
	code, _, errOut := runCmd(t, "-in", path, "-minimize", "/dev/full")
	if code != 2 || errOut == "" {
		t.Fatalf("write failure must exit 2 with a message; code=%d stderr=%q", code, errOut)
	}
}

// traceBytes renders a generated good trace in the requested codec.
func traceBytes(t *testing.T, format string) []byte {
	t.Helper()
	tr := tname.NewTree()
	root := workload.Build(tr, workload.Config{Seed: 7, TopLevel: 4, Depth: 1, Fanout: 3,
		Objects: 2, HotProb: 0.8, ParProb: 0.9})
	b, _, err := generic.Run(tr, root, generic.Options{Seed: 11, Protocol: locking.Protocol{}})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if format == "binary" {
		err = event.WriteBinaryTrace(&buf, tr, b)
	} else {
		err = event.WriteTrace(&buf, tr, b)
	}
	if err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestStdinBothCodecs(t *testing.T) {
	for _, format := range []string{"json", "binary"} {
		for _, inFlag := range [][]string{nil, {"-in", "-"}} {
			code, out, errOut := runCmdStdin(t, bytes.NewReader(traceBytes(t, format)), inFlag...)
			if code != 0 {
				t.Fatalf("%s %v: exit %d stderr=%s", format, inFlag, code, errOut)
			}
			if !strings.Contains(out, "serially correct for T0") {
				t.Fatalf("%s %v: no verdict:\n%s", format, inFlag, out)
			}
		}
	}
}

func TestStdinBinaryStream(t *testing.T) {
	// -stream over binary stdin must use the streaming decoder (and still
	// run the batch check on the accumulated events).
	code, out, errOut := runCmdStdin(t, bytes.NewReader(traceBytes(t, "binary")), "-stream")
	if code != 0 {
		t.Fatalf("exit %d stderr=%s out=%s", code, errOut, out)
	}
	if !strings.Contains(out, "binary streaming decode") {
		t.Fatalf("binary stdin -stream did not take the streaming path:\n%s", out)
	}
	if !strings.Contains(out, "serially correct for T0") {
		t.Fatalf("batch verdict missing after streaming pass:\n%s", out)
	}

	// JSON on stdin with -stream falls back to the in-memory replay.
	code, out, _ = runCmdStdin(t, bytes.NewReader(traceBytes(t, "json")), "-stream")
	if code != 0 || !strings.Contains(out, "stream: all") || strings.Contains(out, "streaming decode") {
		t.Fatalf("json stdin -stream path wrong (exit %d):\n%s", code, out)
	}
}
