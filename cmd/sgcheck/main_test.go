package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"nestedsg/internal/event"
	"nestedsg/internal/generic"
	"nestedsg/internal/locking"
	"nestedsg/internal/mvto"
	"nestedsg/internal/tname"
	"nestedsg/internal/undolog"
	"nestedsg/internal/workload"
)

// writeTrace produces a trace file from a generated run.
func writeTrace(t *testing.T, broken bool) string {
	t.Helper()
	tr := tname.NewTree()
	root := workload.Build(tr, workload.Config{Seed: 7, TopLevel: 4, Depth: 1, Fanout: 3,
		Objects: 2, HotProb: 0.8, ParProb: 0.9})
	opts := generic.Options{Seed: 11, Protocol: locking.Protocol{}}
	if broken {
		opts.Protocol = undolog.BrokenProtocol{Mode: undolog.SkipCommute}
	}
	b, _, err := generic.Run(tr, root, opts)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "trace.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := event.WriteTrace(f, tr, b); err != nil {
		t.Fatal(err)
	}
	return path
}

func runCmd(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errBuf bytes.Buffer
	code := run(args, &out, &errBuf)
	return code, out.String(), errBuf.String()
}

func TestCheckGoodTrace(t *testing.T) {
	path := writeTrace(t, false)
	code, out, errOut := runCmd(t, "-in", path, "-cert", "-deep", "-currentsafe")
	if code != 0 {
		t.Fatalf("exit %d, stderr=%s out=%s", code, errOut, out)
	}
	for _, want := range []string{"serially correct for T0", "suitable sibling order",
		"suitability audit: ok", "current/safe audit:"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestCheckBadTraceExits1(t *testing.T) {
	// The broken protocol frequently yields cycles on this hot workload;
	// find a flagged seed deterministically by scanning.
	path := writeTrace(t, true)
	code, out, _ := runCmd(t, "-in", path)
	if code == 0 && !strings.Contains(out, "serially correct") {
		t.Fatalf("inconsistent verdict: %s", out)
	}
	// Either verdict is possible for one seed; just assert the tool ran and
	// printed a verdict line.
	if !strings.Contains(out, "verdict:") {
		t.Fatalf("no verdict: %s", out)
	}
}

func TestCheckWritesDOT(t *testing.T) {
	path := writeTrace(t, false)
	dot := filepath.Join(t.TempDir(), "sg.dot")
	code, _, errOut := runCmd(t, "-in", path, "-dot", dot)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	data, err := os.ReadFile(dot)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "digraph") {
		t.Error("DOT file content wrong")
	}
}

func TestCheckMissingFile(t *testing.T) {
	code, _, errOut := runCmd(t, "-in", "/does/not/exist.json")
	if code != 2 || errOut == "" {
		t.Fatalf("code=%d stderr=%s", code, errOut)
	}
}

func TestCheckGarbageInput(t *testing.T) {
	path := filepath.Join(t.TempDir(), "garbage.json")
	if err := os.WriteFile(path, []byte("{ nope"), 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, _ := runCmd(t, "-in", path)
	if code != 2 {
		t.Fatalf("code=%d", code)
	}
}

func TestCheckVerbosePrintsTrace(t *testing.T) {
	path := writeTrace(t, false)
	code, out, _ := runCmd(t, "-in", path, "-v")
	if code != 0 || !strings.Contains(out, "CREATE(T0)") {
		t.Fatalf("code=%d out prefix=%s", code, out[:min(200, len(out))])
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestOracleFlagOnMVTOTrace(t *testing.T) {
	// An MVTO trace the SG checker flags but the oracle certifies.
	tr := tname.NewTree()
	root := workload.Build(tr, workload.Config{Seed: 2, TopLevel: 4, Depth: 1, Fanout: 2,
		Objects: 1, HotProb: 1, ParProb: 0.9, ReadRatio: 0.6})
	b, _, err := generic.Run(tr, root, generic.Options{Seed: 31, Protocol: mvto.NewProtocol(tr)})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "mvto.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := event.WriteTrace(f, tr, b); err != nil {
		t.Fatal(err)
	}
	f.Close()

	code, out, _ := runCmd(t, "-in", path, "-oracle")
	if !strings.Contains(out, "verdict:") {
		t.Fatalf("no verdict: %s", out)
	}
	if strings.Contains(out, "oracle:") {
		// SG flagged it; the oracle must have rescued it.
		if code != 0 || !strings.Contains(out, "conservative") {
			t.Fatalf("oracle should certify MVTO traces: code=%d\n%s", code, out)
		}
	} else if code != 0 {
		t.Fatalf("SG passed but exit code %d", code)
	}
}

func TestMinimizeFlag(t *testing.T) {
	// Find a failing broken trace by scanning seeds, then minimize it.
	var path string
	for seed := int64(0); seed < 30; seed++ {
		tr := tname.NewTree()
		root := workload.Build(tr, workload.Config{Seed: seed, TopLevel: 8, Depth: 1,
			Fanout: 3, Objects: 1, HotProb: 1, ParProb: 0.9})
		b, _, err := generic.Run(tr, root, generic.Options{Seed: seed * 11,
			Protocol: undolog.BrokenProtocol{Mode: undolog.SkipCommute}})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := event.WriteTrace(&buf, tr, b); err != nil {
			t.Fatal(err)
		}
		p := filepath.Join(t.TempDir(), "fail.json")
		if err := os.WriteFile(p, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		code, _, _ := runCmd(t, "-in", p)
		if code == 1 {
			path = p
			break
		}
	}
	if path == "" {
		t.Fatal("no failing trace found")
	}
	out := filepath.Join(t.TempDir(), "small.json")
	code, stdout, errOut := runCmd(t, "-in", path, "-minimize", out)
	if code != 1 {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	if !strings.Contains(stdout, "minimize:") || !strings.Contains(stdout, "wrote minimized trace") {
		t.Fatalf("output: %s", stdout)
	}
	// The minimized trace still fails.
	code, _, _ = runCmd(t, "-in", out)
	if code != 1 {
		t.Fatalf("minimized trace exit %d", code)
	}
}
