// Command sgcheck reads a trace (as written by nestedrun, JSON or binary)
// and runs the paper's serialization-graph check on it: well-formedness,
// appropriate return values, SG(β) acyclicity. It prints the verdict, and
// optionally the certificate, the graph in DOT form, or the quadratic
// suitability audit.
//
// Usage:
//
//	nestedrun -seed 7 -out trace.json
//	sgcheck -in trace.json -cert -dot sg.dot
//	sgcheck -in trace.json -stream          # report the shortest bad prefix
//	sgcheck -in trace.json -workers 0       # parallel SG construction
//	sgcheck -in trace.bin                   # binary traces auto-detected
//	nestedrun -out - | sgcheck              # '-in -' (or no -in) reads stdin
//	nestedrun -format binary -out - | sgcheck -stream
//
// Both codecs work on stdin: the format is sniffed from the first bytes
// (binary traces start with the NSGB magic). When the input is a binary
// trace, -stream replays it through the incremental checker straight off
// the decoder, one event at a time. For a file, the behavior is never
// materialized in memory; for stdin — which cannot be re-read — the events
// are accumulated during the streaming pass and handed to the batch check.
//
// Exit status is 0 when the trace is certified serially correct for T0, 1
// on a check failure and 2 on usage or I/O errors.
package main

import (
	"bufio"
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"

	"nestedsg/internal/core"
	"nestedsg/internal/event"
	"nestedsg/internal/minimize"
	"nestedsg/internal/oracle"
	"nestedsg/internal/profiling"
	"nestedsg/internal/simple"
	"nestedsg/internal/tname"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sgcheck", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		in           = fs.String("in", "", "trace file to check ('-' or empty for stdin)")
		cert         = fs.Bool("cert", false, "print the certificate (sibling order and views) on success")
		dotOut       = fs.String("dot", "", "write SG(β) in Graphviz DOT form to this file")
		deep         = fs.Bool("deep", false, "run the quadratic suitability audit of §2.3.2")
		useOracle    = fs.Bool("oracle", false, "on SG failure, run the exhaustive Theorem-2 order search (exponential; small traces only)")
		oracleBudget = fs.Int("oraclebudget", 200000, "candidate budget for -oracle")
		minimizeOut  = fs.String("minimize", "", "on failure, shrink the trace to a 1-minimal failing core and write it here")
		audit        = fs.Bool("currentsafe", false, "also audit the Lemma 6 current/safe conditions (read/write objects only)")
		stream       = fs.Bool("stream", false, "replay the trace through the incremental checker first and report the shortest prefix with a cyclic SG")
		workers      = fs.Int("workers", 1, "worker count for the parallel SG construction (0 = all cores, 1 = sequential)")
		format       = fs.String("format", "auto", "trace format: auto, json, binary")
		cpuprofile   = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile   = fs.String("memprofile", "", "write a heap profile to this file on exit")
		verbose      = fs.Bool("v", false, "print the trace as it is read")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	stopProf, err := profiling.Start(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(stderr, "sgcheck:", err)
		return 2
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(stderr, "sgcheck:", err)
		}
	}()

	// Streaming check for binary input: drive the incremental checker
	// straight off the decoder. For a file the behavior is never built (the
	// batch check below re-reads the file); stdin cannot be re-read, so
	// there the streaming pass accumulates the events it decodes.
	var (
		streamed bool
		tr       *tname.Tree
		b        event.Behavior
	)
	fromStdin := *in == "" || *in == "-"
	stdinBuf := bufio.NewReader(stdin)
	if *stream && *format != "json" {
		if !fromStdin && isBinaryFile(*in) {
			code, ok := streamBinaryFile(*in, stdout, stderr)
			if !ok {
				return code
			}
			streamed = true
		} else if fromStdin && isBinaryStream(stdinBuf) {
			d, err := event.NewBinaryDecoder(stdinBuf)
			if err != nil {
				fmt.Fprintln(stderr, "sgcheck:", err)
				return 2
			}
			kept, code, ok := streamDecode(d, true, stdout, stderr)
			if !ok {
				return code
			}
			streamed = true
			tr, b = d.Tree(), kept
		}
	}

	if tr == nil {
		r := io.Reader(stdinBuf)
		if !fromStdin {
			f, err := os.Open(*in)
			if err != nil {
				fmt.Fprintln(stderr, "sgcheck:", err)
				return 2
			}
			defer f.Close() //sgvet:ignore[checkederr] read-only open; a close error cannot lose data
			r = f
		}
		var err error
		tr, b, err = readTrace(r, *format)
		if err != nil {
			fmt.Fprintln(stderr, "sgcheck:", err)
			return 2
		}
	}
	if *verbose {
		fmt.Fprint(stdout, b.Format(tr))
	}

	fmt.Fprintf(stdout, "trace: %d events, %d transactions, %d objects\n", len(b), tr.NumTx(), tr.NumObjects())
	if *stream && !streamed {
		if at, cyc := core.StreamPrefix(tr, b); at >= 0 {
			fmt.Fprintf(stdout, "stream: rejected at event %d/%d — %s\n", at, len(b), cyc.Format(tr))
			return 1
		}
		fmt.Fprintf(stdout, "stream: all %d prefixes have acyclic SGs\n", len(b))
	}

	var res *core.Result
	if *workers == 1 {
		res = core.Check(tr, b)
	} else {
		res = core.CheckParallel(tr, b, *workers)
	}
	fmt.Fprintln(stdout, "verdict:", res.Summary(tr))

	if res.SG != nil && *dotOut != "" {
		if err := os.WriteFile(*dotOut, []byte(res.SG.DOT()), 0o644); err != nil {
			fmt.Fprintln(stderr, "sgcheck:", err)
			return 2
		}
		fmt.Fprintf(stdout, "wrote SG(β) to %s\n", *dotOut)
	}
	if !res.OK {
		if *minimizeOut != "" {
			small, mst := minimize.Minimize(tr, b)
			fmt.Fprintf(stdout, "minimize: %d -> %d events (%s, %d subtrees removed)\n",
				mst.EventsBefore, mst.EventsAfter, mst.Class, mst.Removed)
			f, err := os.Create(*minimizeOut)
			if err != nil {
				fmt.Fprintln(stderr, "sgcheck:", err)
				return 2
			}
			werr := event.WriteTrace(f, tr, small)
			// A buffered flush can fail at close; losing that error would
			// break the exit-status contract.
			if cerr := f.Close(); werr == nil {
				werr = cerr
			}
			if werr != nil {
				fmt.Fprintln(stderr, "sgcheck:", werr)
				return 2
			}
			fmt.Fprintf(stdout, "wrote minimized trace to %s\n", *minimizeOut)
		}
		if *useOracle && res.WFErr == nil {
			or := oracle.Search(tr, b, *oracleBudget)
			fmt.Fprintf(stdout, "oracle: %s after %d candidate orders\n", or.Outcome, or.Tried)
			if or.Outcome == oracle.Found {
				fmt.Fprintln(stdout, "oracle: a suitable sibling order exists — the SG rejection was conservative; the behavior is serially correct for T0 by Theorem 2")
				return 0
			}
		}
		return 1
	}
	if *cert {
		fmt.Fprint(stdout, core.FormatCertificate(tr, res.Certificate))
	}
	if *deep {
		if err := core.AuditSuitability(tr, b, res.Certificate.Order); err != nil {
			fmt.Fprintln(stdout, "suitability audit: FAILED:", err)
			return 1
		}
		fmt.Fprintln(stdout, "suitability audit: ok (R is suitable for β and T0)")
	}
	if *audit {
		allRegisters := true
		for x := tname.ObjID(0); int(x) < tr.NumObjects(); x++ {
			if tr.Spec(x).Name() != "register" {
				allRegisters = false
			}
		}
		if !allRegisters {
			fmt.Fprintln(stdout, "current/safe audit: skipped (non read/write objects present)")
		} else {
			reads, badWrites := simple.AuditCurrentSafe(tr, b)
			curOK, safeOK := 0, 0
			for _, rr := range reads {
				if rr.Current {
					curOK++
				}
				if rr.Safe {
					safeOK++
				}
			}
			fmt.Fprintf(stdout, "current/safe audit: %d reads, %d current, %d safe, %d bad writes\n",
				len(reads), curOK, safeOK, len(badWrites))
		}
	}
	return 0
}

// readTrace dispatches on the -format flag; "auto" sniffs the stream.
func readTrace(r io.Reader, format string) (*tname.Tree, event.Behavior, error) {
	switch format {
	case "json":
		return event.ReadTrace(r)
	case "binary":
		return event.ReadBinaryTrace(r)
	case "auto":
		return event.ReadTraceAuto(r)
	}
	return nil, nil, fmt.Errorf("unknown -format %q (want auto, json or binary)", format)
}

// isBinaryFile reports whether the file starts with the binary trace magic.
func isBinaryFile(path string) bool {
	f, err := os.Open(path)
	if err != nil {
		return false
	}
	defer f.Close() //sgvet:ignore[checkederr] read-only open; a close error cannot lose data
	var head [4]byte
	if _, err := io.ReadFull(f, head[:]); err != nil {
		return false
	}
	return bytes.Equal(head[:], []byte("NSGB"))
}

// isBinaryStream reports whether the buffered reader starts with the binary
// trace magic, without consuming it.
func isBinaryStream(r *bufio.Reader) bool {
	head, err := r.Peek(4)
	return err == nil && bytes.Equal(head, []byte("NSGB"))
}

// streamBinaryFile replays a binary trace file through the incremental
// checker event-by-event, never holding the behavior in memory. Returns
// (exitCode, false) to terminate on rejection or I/O error, (0, true) when
// every prefix was accepted.
func streamBinaryFile(path string, stdout, stderr io.Writer) (int, bool) {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(stderr, "sgcheck:", err)
		return 2, false
	}
	defer f.Close() //sgvet:ignore[checkederr] read-only open; a close error cannot lose data
	d, err := event.NewBinaryDecoder(f)
	if err != nil {
		fmt.Fprintln(stderr, "sgcheck:", err)
		return 2, false
	}
	_, code, ok := streamDecode(d, false, stdout, stderr)
	return code, ok
}

// streamDecode drives the incremental checker straight off a binary
// decoder. With keep set it also accumulates the decoded events, for inputs
// (stdin) that cannot be read a second time by the batch check. Returns
// (kept, exitCode, ok): ok is false when the caller should terminate with
// exitCode (rejection or I/O error).
func streamDecode(d *event.BinaryDecoder, keep bool, stdout, stderr io.Writer) (event.Behavior, int, bool) {
	total := d.Remaining()
	inc := core.NewIncremental(d.Tree())
	var kept event.Behavior
	if keep {
		kept = make(event.Behavior, 0, total)
	}
	for i := 0; ; i++ {
		e, err := d.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			fmt.Fprintln(stderr, "sgcheck:", err)
			return nil, 2, false
		}
		if keep {
			kept = append(kept, e)
		}
		if cyc := inc.Append(e); cyc != nil {
			fmt.Fprintf(stdout, "stream: rejected at event %d/%d — %s\n", i, total, cyc.Format(d.Tree()))
			return nil, 1, false
		}
	}
	fmt.Fprintf(stdout, "stream: all %d prefixes have acyclic SGs (binary streaming decode)\n", total)
	return kept, 0, true
}
