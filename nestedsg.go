// Package nestedsg is a Go implementation of the serialization graph
// construction for nested transactions of Fekete, Lynch & Weihl (PODS
// 1990), together with everything needed to exercise it: a nested
// transaction runtime with pluggable concurrency-control/recovery objects
// (Moss' read/write locking, undo logging for arbitrary data types), the
// serial systems the correctness definition refers to, and checkers that
// certify recorded behaviors serially correct for T0.
//
// # Overview
//
// The paper's model is event-based: a system's execution is a behavior — a
// sequence of actions such as CREATE(T), REQUEST_COMMIT(T, v), COMMIT(T).
// Concurrency control is correct when every behavior is "serially correct
// for T0": the environment cannot distinguish it from an execution of a
// serial system in which sibling transactions never overlap and aborted
// transactions never ran.
//
// This package is the facade over the implementation:
//
//   - Build a system type with NewTree, AddObject (pick a data type from
//     Specs) and declare transaction programs with Seq, Par and Access.
//   - Run the programs concurrently with Run, choosing a Protocol —
//     MossLocking (the paper's M1_X) or UndoLogging (the paper's U_X) —
//     and optional failure injection.
//   - Check the recorded behavior with Check: it verifies appropriate
//     return values, builds the serialization graph SG(β), tests it for
//     cycles and, on success, returns a certificate (a suitable sibling
//     order and per-object views).
//   - Materialize the serial witness with SerialWitness: an explicit
//     serial behavior γ with γ|T0 = β|T0, re-deriving every value from the
//     serial object specifications.
//
// The subpackages under internal/ contain the full model; this facade
// re-exports the stable surface.
package nestedsg

import (
	"io"

	"nestedsg/internal/core"
	"nestedsg/internal/event"
	"nestedsg/internal/generic"
	"nestedsg/internal/locking"
	"nestedsg/internal/mvto"
	"nestedsg/internal/object"
	"nestedsg/internal/program"
	"nestedsg/internal/replica"
	"nestedsg/internal/serial"
	"nestedsg/internal/spec"
	"nestedsg/internal/tname"
	"nestedsg/internal/undolog"
)

// Core model types.
type (
	// Tree is a system type: the tree of transaction names and the named,
	// typed objects.
	Tree = tname.Tree
	// TxID names a transaction; ObjID names an object.
	TxID = tname.TxID
	// ObjID names an object.
	ObjID = tname.ObjID
	// Event is one action occurrence; Behavior is a finite sequence of
	// events.
	Event = event.Event
	// Behavior is a recorded finite behavior.
	Behavior = event.Behavior
	// Value is an operation argument or return value.
	Value = spec.Value
	// Op is an operation on an object.
	Op = spec.Op
	// Spec is a serial object specification (data type).
	Spec = spec.Spec
	// Node is a transaction program node.
	Node = program.Node
	// Outcome is what a parent program learns about a completed child.
	Outcome = program.Outcome
	// Protocol is a concurrency-control/recovery algorithm: a factory of
	// generic object automata.
	Protocol = object.Protocol
	// RunOptions configures the concurrent runner.
	RunOptions = generic.Options
	// RunStats summarizes a concurrent run.
	RunStats = generic.Stats
	// CheckResult is the outcome of the Theorem 8/19 checker.
	CheckResult = core.Result
	// Certificate carries the sibling order and object views of a
	// successful check.
	Certificate = core.Certificate
	// SG is a constructed serialization graph.
	SG = core.SG
	// Cycle is the failure certificate of an acyclicity check: the parent
	// whose SG(β, T) is cyclic and the cycle's transactions.
	Cycle = core.Cycle
	// IncrementalChecker maintains SG(β) online, one event at a time.
	IncrementalChecker = core.Incremental
	// Checker is a reusable checker bound to one system type: repeated
	// Build/Check/StreamPrefix calls reuse its scratch memory, so
	// steady-state checking is allocation-free. Results are valid until
	// the next call on the same Checker.
	Checker = core.Checker
	// BinaryTraceDecoder streams events out of a binary trace without
	// materializing the behavior.
	BinaryTraceDecoder = event.BinaryDecoder
)

// Root is the transaction name T0.
const Root = tname.Root

// Event kinds, for inspecting recorded behaviors.
const (
	EventCreate        = event.Create
	EventRequestCreate = event.RequestCreate
	EventRequestCommit = event.RequestCommit
	EventCommit        = event.Commit
	EventAbort         = event.Abort
	EventReportCommit  = event.ReportCommit
	EventReportAbort   = event.ReportAbort
)

// NewTree returns an empty system type containing only T0.
func NewTree() *Tree { return tname.NewTree() }

// Specs returns one instance of every built-in data type specification:
// register (read/write), counter, account, set, appendlog and queue.
func Specs() []Spec { return spec.All() }

// SpecByName resolves a built-in specification by name, or nil.
func SpecByName(name string) Spec { return spec.ByName(name) }

// Value constructors.

// IntValue wraps an integer as an operation argument or return value.
func IntValue(v int64) Value { return spec.Int(v) }

// BoolValue wraps a boolean.
func BoolValue(b bool) Value { return spec.Bool(b) }

// OKValue is the distinguished return value of blind updates.
func OKValue() Value { return spec.OK }

// Operation constructors for the built-in data types.

// ReadOp reads a register.
func ReadOp() Op { return Op{Kind: spec.OpRead} }

// WriteOp writes v to a register.
func WriteOp(v int64) Op { return Op{Kind: spec.OpWrite, Arg: spec.Int(v)} }

// IncOp increments a counter by n; DecOp decrements; GetOp reads it.
func IncOp(n int64) Op { return Op{Kind: spec.OpIncrement, Arg: spec.Int(n)} }

// DecOp decrements a counter by n.
func DecOp(n int64) Op { return Op{Kind: spec.OpDecrement, Arg: spec.Int(n)} }

// GetOp reads a counter.
func GetOp() Op { return Op{Kind: spec.OpGet} }

// DepositOp deposits amt into an account; WithdrawOp withdraws (returning
// true/false); BalanceOp reads the balance.
func DepositOp(amt int64) Op { return Op{Kind: spec.OpDeposit, Arg: spec.Int(amt)} }

// WithdrawOp withdraws amt from an account if the balance suffices.
func WithdrawOp(amt int64) Op { return Op{Kind: spec.OpWithdraw, Arg: spec.Int(amt)} }

// BalanceOp reads an account balance.
func BalanceOp() Op { return Op{Kind: spec.OpBalance} }

// InsertOp, RemoveOp, MemberOp and SizeOp operate on integer sets.
func InsertOp(v int64) Op { return Op{Kind: spec.OpInsert, Arg: spec.Int(v)} }

// RemoveOp removes v from a set.
func RemoveOp(v int64) Op { return Op{Kind: spec.OpRemove, Arg: spec.Int(v)} }

// MemberOp tests membership of v in a set.
func MemberOp(v int64) Op { return Op{Kind: spec.OpMember, Arg: spec.Int(v)} }

// SizeOp reads a set's cardinality.
func SizeOp() Op { return Op{Kind: spec.OpSize} }

// AppendOp appends v to an append log; LenOp reads its length.
func AppendOp(v int64) Op { return Op{Kind: spec.OpAppend, Arg: spec.Int(v)} }

// LenOp reads an append log's length.
func LenOp() Op { return Op{Kind: spec.OpLen} }

// EnqOp enqueues v; DeqOp dequeues the head (nil when empty).
func EnqOp(v int64) Op { return Op{Kind: spec.OpEnq, Arg: spec.Int(v)} }

// DeqOp dequeues the head of a queue.
func DeqOp() Op { return Op{Kind: spec.OpDeq} }

// Program combinators.

// Access declares an access leaf performing op on object obj.
func Access(label string, obj ObjID, op Op) *Node { return program.Access(label, obj, op) }

// Seq declares a subtransaction that runs its children sequentially.
func Seq(label string, children ...*Node) *Node { return program.SeqNode(label, children...) }

// Par declares a subtransaction that runs its children in parallel.
func Par(label string, children ...*Node) *Node { return program.ParNode(label, children...) }

// Protocols.

// MossLocking returns the paper's read/write locking protocol (§5), the
// default concurrency control of Argus and Camelot.
func MossLocking() Protocol { return locking.Protocol{} }

// UndoLogging returns the paper's undo logging protocol for arbitrary data
// types (§6.2).
func UndoLogging() Protocol { return undolog.Protocol{} }

// ReplicaConfig parameterizes QuorumReplication: N copies with R/W quorums
// (R+W must exceed N) and a seeded transient-unavailability process.
type ReplicaConfig = replica.Config

// QuorumReplication returns a protocol storing each read/write object as N
// versioned copies with quorum reads and writes, under Moss' lock
// discipline — the replicated-data extension the paper cites as [6].
// Register objects only.
func QuorumReplication(cfg ReplicaConfig) Protocol { return replica.Protocol{Cfg: cfg} }

// MultiversionTimestamps returns a Reed-style multiversion
// timestamp-ordering protocol over the given system type (one shared
// hierarchical clock per system). Register objects only. Its behaviors are
// serially correct but generally NOT certifiable by Check — the §7 gap;
// use the exhaustive oracle (cmd/sgcheck -oracle) on small traces.
func MultiversionTimestamps(tr *Tree) Protocol { return mvto.NewProtocol(tr) }

// Run executes the program of T0 concurrently under the generic controller
// and returns the recorded behavior. The trace can be fed to Check.
func Run(tr *Tree, root *Node, opts RunOptions) (Behavior, RunStats, error) {
	return generic.Run(tr, root, opts)
}

// RunSerial executes the program under the serial scheduler: siblings run
// one at a time and aborted transactions never start. It is the
// specification system, useful as a baseline and an oracle.
func RunSerial(tr *Tree, root *Node, seed int64) (Behavior, error) {
	return serial.Run(tr, root, serial.Options{Seed: seed})
}

// Check verifies the hypotheses of the paper's main theorem on a recorded
// behavior: simple-system well-formedness, appropriate return values and
// acyclicity of the serialization graph SG(β). On success the result
// carries a certificate from which serial correctness for T0 follows.
func Check(tr *Tree, b Behavior) *CheckResult { return core.Check(tr, b) }

// CheckParallel is Check with the SG construction's per-object conflict
// scans fanned out over a bounded worker pool (workers ≤ 0 means all
// cores). Verdicts and certificates are identical to Check's.
func CheckParallel(tr *Tree, b Behavior, workers int) *CheckResult {
	return core.CheckParallel(tr, b, workers)
}

// StreamCheck replays a behavior through the incremental checker and
// returns the index of the first event whose prefix has a cyclic SG,
// together with that prefix's cycle certificate, or (-1, nil) when every
// prefix passes. The construction is prefix-monotone, so the reported
// prefix is the shortest evidence the batch checker would find. For
// event-at-a-time feeding use NewIncrementalChecker.
func StreamCheck(tr *Tree, b Behavior) (int, *Cycle) {
	return core.StreamPrefix(tr, b)
}

// NewIncrementalChecker returns an online SG(β) maintainer: feed it events
// with Append, which reports the first cycle as it forms.
func NewIncrementalChecker(tr *Tree) *IncrementalChecker {
	return core.NewIncremental(tr)
}

// SerialWitness materializes the serial behavior γ promised by the
// theorem: γ|T0 equals the projection of b onto T0, every access value is
// re-derived from the serial objects, and sibling transactions execute in
// the certificate's order. It fails if the certificate does not actually
// support the behavior.
func SerialWitness(tr *Tree, root *Node, b Behavior, cert *Certificate) (Behavior, error) {
	return serial.Witness(tr, root, b, cert.Order)
}

// ValidateSerial checks that a behavior could have been produced by the
// serial system (used to certify witnesses).
func ValidateSerial(tr *Tree, b Behavior) error { return serial.Validate(tr, b) }

// NewChecker returns a reusable checker for tr. Prefer it over the free
// Check/StreamCheck functions when checking many behaviors over one system
// type: after the first call its scratch memory is recycled and the graph
// construction allocates nothing.
func NewChecker(tr *Tree) *Checker { return core.NewChecker(tr) }

// WriteTrace writes the behavior as an indented JSON trace.
func WriteTrace(w io.Writer, tr *Tree, b Behavior) error { return event.WriteTrace(w, tr, b) }

// WriteBinaryTrace writes the behavior in the compact binary trace format
// (varint-encoded, typically an order of magnitude smaller than JSON).
func WriteBinaryTrace(w io.Writer, tr *Tree, b Behavior) error {
	return event.WriteBinaryTrace(w, tr, b)
}

// ReadTrace parses a trace in either format, auto-detected from the
// leading bytes (binary traces start with the "NSGB" magic).
func ReadTrace(r io.Reader) (*Tree, Behavior, error) { return event.ReadTraceAuto(r) }

// NewBinaryTraceDecoder opens a binary trace for streaming: the system
// type is decoded eagerly, then Next yields one event at a time — feed
// them to an IncrementalChecker to check unbounded traces in constant
// memory.
func NewBinaryTraceDecoder(r io.Reader) (*BinaryTraceDecoder, error) {
	return event.NewBinaryDecoder(r)
}
