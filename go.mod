module nestedsg

go 1.22
