// Quickstart: build a tiny nested-transaction system, run it concurrently
// under Moss' read/write locking, check the recorded behavior with the
// serialization-graph construction, and materialize the serial witness.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"nestedsg"
)

func main() {
	// A system type: two read/write objects x and y.
	tr := nestedsg.NewTree()
	reg := nestedsg.SpecByName("register")
	x := tr.AddObject("x", reg)
	y := tr.AddObject("y", reg)

	// Two top-level transactions. Each is a nested program: "transfer"
	// writes both objects inside parallel subtransactions; "sum" reads
	// both. Labels name the transactions in the (conceptually infinite)
	// transaction tree.
	transfer := nestedsg.Par("transfer",
		nestedsg.Seq("debit", nestedsg.Access("wx", x, nestedsg.WriteOp(58))),
		nestedsg.Seq("credit", nestedsg.Access("wy", y, nestedsg.WriteOp(42))),
	)
	sum := nestedsg.Seq("sum",
		nestedsg.Access("rx", x, nestedsg.ReadOp()),
		nestedsg.Access("ry", y, nestedsg.ReadOp()),
	)

	root := nestedsg.Par("T0", transfer, sum)

	// Run the two transactions concurrently under Moss locking. The seed
	// fixes the interleaving, so this program is reproducible.
	trace, stats, err := nestedsg.Run(tr, root, nestedsg.RunOptions{
		Seed:     2024,
		Protocol: nestedsg.MossLocking(),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("concurrent run: %d events, %d commits, %d accesses, %d blocked polls\n",
		len(trace), stats.Commits, stats.Accesses, stats.Blocked)

	// Check the behavior: appropriate return values + acyclic SG(β).
	res := nestedsg.Check(tr, trace)
	fmt.Println("checker:", res.Summary(tr))
	if !res.OK {
		log.Fatal("trace failed the check — this should be impossible under Moss locking")
	}

	// Materialize the serial witness γ: an execution of the serial system
	// with γ|T0 = trace|T0 — the definition of serial correctness for T0.
	gamma, err := nestedsg.SerialWitness(tr, root, trace, res.Certificate)
	if err != nil {
		log.Fatal(err)
	}
	if err := nestedsg.ValidateSerial(tr, gamma); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("serial witness: %d events; γ|T0 = β|T0 verified\n", len(gamma))

	// The certificate's sibling order tells you in which order the
	// transactions appear to have run.
	order := res.Certificate.Order.SortSiblings(tr.Children(nestedsg.Root))
	fmt.Print("apparent serial order of top-level transactions: ")
	for i, tx := range order {
		if i > 0 {
			fmt.Print(" < ")
		}
		fmt.Print(tr.Label(tx))
	}
	fmt.Println()
}
