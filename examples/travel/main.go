// Travel: the introduction's motivation for nesting — a transaction that
// issues several concurrent "remote procedure calls" (subtransactions),
// tolerates the failure of some of them, and retries.
//
// Each trip booking runs flight, hotel and car reservations as parallel
// subtransactions against seat/room/car counters plus a booking set.
// Failures are injected; aborted legs are retried once by the booking
// program. The recorded concurrent behavior is checked with the
// serialization-graph construction and replayed into its serial witness —
// under failures, the witness shows aborted legs as never having run.
//
// Run with:
//
//	go run ./examples/travel
package main

import (
	"fmt"
	"log"

	"nestedsg"
)

const trips = 6

// leg books one resource: decrement the inventory counter and record the
// booking in the ledger set.
func leg(name string, inventory, ledger nestedsg.ObjID, bookingID int64) *nestedsg.Node {
	return nestedsg.Seq(name,
		nestedsg.Access("take", inventory, nestedsg.DecOp(1)),
		nestedsg.Access("record", ledger, nestedsg.InsertOp(bookingID)),
	)
}

// retryOnce wraps a parallel booking so each statically declared leg that
// aborts is retried exactly once under a "~r" label — a deterministic
// program, so the serial witness can re-run it.
func retryOnce(n *nestedsg.Node) *nestedsg.Node {
	static := make(map[*nestedsg.Node]bool, len(n.Children))
	for _, c := range n.Children {
		static[c] = true
	}
	n.OnOutcome = func(idx int, child *nestedsg.Node, oc nestedsg.Outcome) []*nestedsg.Node {
		if !oc.Committed && static[child] {
			clone := *child
			clone.Label = child.Label + "~r"
			return []*nestedsg.Node{&clone}
		}
		return nil
	}
	return n
}

func main() {
	tr := nestedsg.NewTree()
	counter := nestedsg.SpecByName("counter")
	seats := tr.AddObject("seats", counter)
	rooms := tr.AddObject("rooms", counter)
	cars := tr.AddObject("cars", counter)
	ledger := tr.AddObject("ledger", nestedsg.SpecByName("set"))

	var tops []*nestedsg.Node
	for i := 0; i < trips; i++ {
		booking := nestedsg.Par(fmt.Sprintf("trip%d", i),
			leg("flight", seats, ledger, int64(i)),
			leg("hotel", rooms, ledger, int64(i)),
			leg("car", cars, ledger, int64(i)),
		)
		tops = append(tops, retryOnce(booking))
	}
	root := nestedsg.Par("T0", tops...)

	// Undo logging lets the commuting inventory decrements interleave;
	// failure injection aborts random subtransactions mid-flight.
	trace, stats, err := nestedsg.Run(tr, root, nestedsg.RunOptions{
		Seed:      7,
		Protocol:  nestedsg.UndoLogging(),
		AbortProb: 0.03,
		MaxAborts: 6,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("concurrent run: %d events, %d commits, %d aborts (%d injected), %d accesses\n",
		len(trace), stats.Commits, stats.Aborts, stats.SpontaneousAborts, stats.Accesses)

	res := nestedsg.Check(tr, trace)
	fmt.Println("checker:", res.Summary(tr))
	if !res.OK {
		log.Fatal("unexpectedly incorrect")
	}

	gamma, err := nestedsg.SerialWitness(tr, root, trace, res.Certificate)
	if err != nil {
		log.Fatal(err)
	}
	if err := nestedsg.ValidateSerial(tr, gamma); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("serial witness: %d events — aborted legs appear never to have run\n", len(gamma))

	// Show each trip's fate and the apparent serial order.
	commits := trace.CommitSet()
	aborted := trace.AbortSet()
	fmt.Println("\ntrip outcomes (concurrent run):")
	for i := 0; i < trips; i++ {
		tx := tr.Child(nestedsg.Root, fmt.Sprintf("trip%d", i))
		switch {
		case commits[tx]:
			fmt.Printf("  trip%d committed\n", i)
		case aborted[tx]:
			fmt.Printf("  trip%d aborted\n", i)
		default:
			fmt.Printf("  trip%d incomplete\n", i)
		}
	}
	var committedTrips []nestedsg.TxID
	for i := 0; i < trips; i++ {
		if tx := tr.Child(nestedsg.Root, fmt.Sprintf("trip%d", i)); commits[tx] {
			committedTrips = append(committedTrips, tx)
		}
	}
	fmt.Print("\napparent serial order of committed trips: ")
	for i, tx := range res.Certificate.Order.SortSiblings(committedTrips) {
		if i > 0 {
			fmt.Print(" < ")
		}
		fmt.Print(tr.Label(tx))
	}
	fmt.Println()
}
