// Replicated: nested transactions over quorum-replicated objects — the
// replicated-data extension the paper cites as [6].
//
// An inventory register is stored as five versioned copies with majority
// quorums (R=3, W=3). Copies fail transiently; reads still see the latest
// committed write because every read quorum intersects every write quorum.
// Concurrency control is Moss' locking on the logical object, so the
// recorded behavior is certified serially correct for T0 by the same
// serialization-graph checker.
//
// Run with:
//
//	go run ./examples/replicated
package main

import (
	"fmt"
	"log"

	"nestedsg"
)

func main() {
	for _, unavail := range []float64{0, 0.4} {
		fmt.Printf("=== copy unavailability p = %.1f ===\n", unavail)
		runOnce(unavail)
		fmt.Println()
	}
	fmt.Println("With R+W > N every read quorum overlaps every write quorum, so the")
	fmt.Println("highest version number always surfaces — unavailability only costs")
	fmt.Println("retries, never staleness; the checker certifies every run.")
}

func runOnce(unavail float64) {
	tr := nestedsg.NewTree()
	stock := tr.AddObject("stock", nestedsg.SpecByName("register"))

	// One restocker sets the level twice inside a sequential transaction;
	// auditors read concurrently.
	restock := nestedsg.Seq("restock",
		nestedsg.Access("first", stock, nestedsg.WriteOp(100)),
		nestedsg.Access("second", stock, nestedsg.WriteOp(80)),
	)
	var tops []*nestedsg.Node
	tops = append(tops, restock)
	for i := 0; i < 4; i++ {
		tops = append(tops, nestedsg.Seq(fmt.Sprintf("audit%d", i),
			nestedsg.Access("read", stock, nestedsg.ReadOp())))
	}
	root := nestedsg.Par("T0", tops...)

	trace, stats, err := nestedsg.Run(tr, root, nestedsg.RunOptions{
		Seed: 11,
		Protocol: nestedsg.QuorumReplication(nestedsg.ReplicaConfig{
			Copies: 5, ReadQuorum: 3, WriteQuorum: 3,
			UnavailableProb: unavail, Seed: 23,
		}),
	})
	if err != nil {
		log.Fatal(err)
	}
	res := nestedsg.Check(tr, trace)
	if !res.OK {
		log.Fatalf("check failed: %s", res.Summary(tr))
	}
	if _, err := nestedsg.SerialWitness(tr, root, trace, res.Certificate); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("events=%d accesses=%d blocked-polls=%d  %s\n",
		len(trace), stats.Accesses, stats.Blocked, res.Summary(tr))

	// What did the audits see? Either the initial 0 (serialized before the
	// restock) or the final 80 — never the intermediate 100 leaking from
	// an uncommitted chain, and never a stale version.
	for _, e := range trace {
		if e.Kind == nestedsg.EventRequestCommit && tr.IsAccess(e.Tx) && tr.Label(e.Tx) == "read" {
			fmt.Printf("  %s read %s\n", tr.Name(tr.Parent(e.Tx)), e.Val)
		}
	}
}
