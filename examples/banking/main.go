// Banking: the §6 motivation for type-specific concurrency control.
//
// Many tellers concurrently deposit into one hot account. Under read/write
// locking every deposit takes an exclusive lock, so the tellers serialize
// and deadlock-avoidance aborts appear under contention. Under undo
// logging, deposits commute backward, so they interleave freely — yet the
// serialization-graph checker certifies both runs serially correct for T0.
//
// Run with:
//
//	go run ./examples/banking
package main

import (
	"fmt"
	"log"

	"nestedsg"
)

const (
	tellers          = 12
	depositsPer      = 3
	depositAmount    = 10
	auditWithdrawals = 2
)

// buildBank constructs the system and the program of T0: `tellers`
// top-level transactions that each make several deposits into the shared
// account inside a nested subtransaction, plus an auditor that withdraws
// twice and checks the balance.
func buildBank(tr *nestedsg.Tree) (*nestedsg.Node, nestedsg.ObjID) {
	account := tr.AddObject("account", nestedsg.SpecByName("account"))

	var tops []*nestedsg.Node
	for i := 0; i < tellers; i++ {
		var deps []*nestedsg.Node
		for j := 0; j < depositsPer; j++ {
			deps = append(deps, nestedsg.Access(
				fmt.Sprintf("dep%d", j), account, nestedsg.DepositOp(depositAmount)))
		}
		// Each teller wraps its deposits in a parallel subtransaction —
		// nested atomicity around a batch of commuting updates.
		tops = append(tops, nestedsg.Seq(fmt.Sprintf("teller%d", i),
			nestedsg.Par("batch", deps...)))
	}

	auditor := nestedsg.Seq("auditor",
		nestedsg.Access("w1", account, nestedsg.WithdrawOp(depositAmount)),
		nestedsg.Access("w2", account, nestedsg.WithdrawOp(depositAmount)),
		nestedsg.Access("bal", account, nestedsg.BalanceOp()),
	)
	tops = append(tops, auditor)

	return nestedsg.Par("T0", tops...), account
}

func runUnder(name string, proto nestedsg.Protocol, seed int64) {
	tr := nestedsg.NewTree()
	root, _ := buildBank(tr)
	trace, stats, err := nestedsg.Run(tr, root, nestedsg.RunOptions{Seed: seed, Protocol: proto})
	if err != nil {
		log.Fatalf("%s: %v", name, err)
	}
	res := nestedsg.Check(tr, trace)
	if !res.OK {
		log.Fatalf("%s: check failed: %s", name, res.Summary(tr))
	}
	if _, err := nestedsg.SerialWitness(tr, root, trace, res.Certificate); err != nil {
		log.Fatalf("%s: witness failed: %v", name, err)
	}
	fmt.Printf("%-9s events=%-4d accesses=%-3d blocked-polls=%-5d deadlock-victims=%-2d  %s\n",
		name, len(trace), stats.Accesses, stats.Blocked, stats.DeadlockVictims, res.Summary(tr))
}

func main() {
	fmt.Printf("%d tellers × %d deposits of %d into one hot account, plus an auditor\n\n",
		tellers, depositsPer, depositAmount)
	for seed := int64(1); seed <= 3; seed++ {
		fmt.Printf("seed %d:\n", seed)
		runUnder("moss", nestedsg.MossLocking(), seed)
		runUnder("undolog", nestedsg.UndoLogging(), seed)
		fmt.Println()
	}
	fmt.Println("Deposits commute backward (Weihl), so the undo-logging objects admit")
	fmt.Println("them concurrently where read/write locks serialize every update —")
	fmt.Println("compare the blocked-poll and victim counts. Both traces are certified")
	fmt.Println("serially correct for T0 by the same serialization-graph construction.")
}
