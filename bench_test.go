// Benchmarks: one per experiment table of EXPERIMENTS.md (E1–E15). Each
// benchmark exercises the hot path of its experiment under testing.B so
// the tables' cost columns can be regenerated with:
//
//	go test -bench=. -benchmem
//
// The correctness assertions mirror the experiment definitions: a theorem
// benchmark fails the run if any iteration violates the theorem.
package nestedsg_test

import (
	"bytes"
	"fmt"
	"io"
	"testing"

	"nestedsg/internal/classic"
	"nestedsg/internal/core"
	"nestedsg/internal/event"
	"nestedsg/internal/generic"
	"nestedsg/internal/harness"
	"nestedsg/internal/locking"
	"nestedsg/internal/mvto"
	"nestedsg/internal/object"
	"nestedsg/internal/oracle"
	"nestedsg/internal/program"
	"nestedsg/internal/replica"
	"nestedsg/internal/serial"
	"nestedsg/internal/simple"
	"nestedsg/internal/spec"
	"nestedsg/internal/tname"
	"nestedsg/internal/undolog"
	"nestedsg/internal/workload"
)

func specRegister() spec.Spec { return spec.Register{} }
func specCounter() spec.Spec  { return spec.Counter{} }

func workloadWriteOp(v int64) spec.Op { return spec.Op{Kind: spec.OpWrite, Arg: spec.Int(v)} }
func workloadIncOp() spec.Op          { return spec.Op{Kind: spec.OpIncrement, Arg: spec.Int(1)} }

// BenchmarkE1MossSerialCorrectness measures the full Theorem 17 pipeline:
// one concurrent Moss run plus checking and witnessing per iteration.
func BenchmarkE1MossSerialCorrectness(b *testing.B) {
	violations := 0
	for i := 0; i < b.N; i++ {
		v, err := harness.RunAndCheck(harness.Options{
			Workload: workload.Config{Seed: int64(i), TopLevel: 5, Depth: 2, Fanout: 3,
				Objects: 3, ParProb: 0.5},
			Generic: generic.Options{Seed: int64(i) * 31, Protocol: locking.Protocol{},
				AbortProb: 0.01, MaxAborts: 2},
		})
		if err != nil {
			b.Fatal(err)
		}
		if !v.SeriallyCorrect() {
			violations++
		}
	}
	if violations > 0 {
		b.Fatalf("%d violations of Theorem 17", violations)
	}
}

// BenchmarkE2UndoLogSerialCorrectness is the Theorem 25 analogue over
// mixed data types.
func BenchmarkE2UndoLogSerialCorrectness(b *testing.B) {
	violations := 0
	for i := 0; i < b.N; i++ {
		v, err := harness.RunAndCheck(harness.Options{
			Workload: workload.Config{Seed: int64(i), TopLevel: 5, Depth: 2, Fanout: 3,
				Objects: 6, SpecName: "mixed", ParProb: 0.5},
			Generic: generic.Options{Seed: int64(i)*31 + 7, Protocol: undolog.Protocol{},
				AbortProb: 0.01, MaxAborts: 2},
		})
		if err != nil {
			b.Fatal(err)
		}
		if !v.SeriallyCorrect() {
			violations++
		}
	}
	if violations > 0 {
		b.Fatalf("%d violations of Theorem 25", violations)
	}
}

// BenchmarkE3NegativeControls measures detection cost on broken-protocol
// runs and reports the detection rate.
func BenchmarkE3NegativeControls(b *testing.B) {
	flagged := 0
	for i := 0; i < b.N; i++ {
		v, err := harness.RunAndCheck(harness.Options{
			Workload: workload.Config{Seed: int64(i), TopLevel: 5, Depth: 1, Fanout: 3,
				Objects: 1, HotProb: 1, ParProb: 0.8, ReadRatio: 0.4},
			Generic: generic.Options{Seed: int64(i) * 977,
				Protocol: locking.BrokenProtocol{Mode: locking.IgnoreReadLocks}},
			SkipWitness: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		if !v.Check.OK {
			flagged++
		}
	}
	b.ReportMetric(float64(flagged)/float64(b.N), "detected/op")
}

// BenchmarkE4Commutativity compares the two protocols on a hot counter
// (the §6 motivation); the interesting column is blocked-polls/op.
func BenchmarkE4Commutativity(b *testing.B) {
	for _, proto := range []object.Protocol{locking.Protocol{}, undolog.Protocol{}} {
		proto := proto
		b.Run(proto.Name(), func(b *testing.B) {
			blocked, victims := 0, 0
			for i := 0; i < b.N; i++ {
				tr := tname.NewTree()
				root := workload.Build(tr, workload.Config{Seed: int64(i), TopLevel: 8,
					Depth: 0, Fanout: 4, Objects: 1, HotProb: 1, SpecName: "counter"})
				_, st, err := generic.Run(tr, root, generic.Options{Seed: int64(i) * 17, Protocol: proto})
				if err != nil {
					b.Fatal(err)
				}
				blocked += st.Blocked
				victims += st.DeadlockVictims
			}
			b.ReportMetric(float64(blocked)/float64(b.N), "blocked-polls/op")
			b.ReportMetric(float64(victims)/float64(b.N), "victims/op")
		})
	}
}

// prebuiltTrace generates one Moss trace for the checker-cost benchmarks.
func prebuiltTrace(b *testing.B, topLevel int) (*tname.Tree, *program.Node, event.Behavior) {
	b.Helper()
	tr := tname.NewTree()
	root := workload.Build(tr, workload.Config{Seed: 42, TopLevel: topLevel, Depth: 1,
		Fanout: 3, Objects: 4, HotProb: 0.3, ParProb: 0.5})
	trace, _, err := generic.Run(tr, root, generic.Options{Seed: 99, Protocol: locking.Protocol{}})
	if err != nil {
		b.Fatal(err)
	}
	return tr, root, trace
}

// BenchmarkE5SGConstruction measures SG(β) build + acyclicity against
// history length.
func BenchmarkE5SGConstruction(b *testing.B) {
	for _, topLevel := range []int{4, 16, 64} {
		topLevel := topLevel
		b.Run(fmt.Sprintf("toplevel=%d", topLevel), func(b *testing.B) {
			tr, _, trace := prebuiltTrace(b, topLevel)
			b.ReportMetric(float64(len(trace)), "events")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sg := core.Build(tr, trace)
				if _, cyc := sg.Acyclicity(); cyc != nil {
					b.Fatal("unexpected cycle")
				}
			}
		})
	}
}

// BenchmarkE6ClassicalEquivalence measures the flat-history subsumption
// check: one run, both graph constructions, and the comparison.
func BenchmarkE6ClassicalEquivalence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tr := tname.NewTree()
		root := workload.Build(tr, workload.Config{Seed: int64(i), TopLevel: 6, Depth: 0,
			Fanout: 3, Objects: 2, HotProb: 0.5})
		trace, _, err := generic.Run(tr, root, generic.Options{Seed: int64(i) * 31, Protocol: locking.Protocol{}})
		if err != nil {
			b.Fatal(err)
		}
		sgt, err := classic.BuildSGT(tr, trace)
		if err != nil {
			b.Fatal(err)
		}
		if msg := sgt.CompareWithNested(tr, core.Build(tr, trace)); msg != "" {
			b.Fatal(msg)
		}
	}
}

// BenchmarkE7CurrentSafe measures the Lemma 6 audit on a prebuilt trace.
func BenchmarkE7CurrentSafe(b *testing.B) {
	tr, _, trace := prebuiltTrace(b, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reads, badWrites := simple.AuditCurrentSafe(tr, trace)
		if len(badWrites) != 0 {
			b.Fatal("bad writes under faithful Moss")
		}
		for _, r := range reads {
			if !r.Current || !r.Safe {
				b.Fatal("read neither current nor safe under faithful Moss")
			}
		}
	}
}

// BenchmarkE8ProtocolOverhead compares end-to-end run cost per protocol on
// identical workloads.
func BenchmarkE8ProtocolOverhead(b *testing.B) {
	cfg := workload.Config{TopLevel: 8, Depth: 1, Fanout: 3, Objects: 4, ParProb: 0.5}
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tr := tname.NewTree()
			c := cfg
			c.Seed = int64(i)
			root := workload.Build(tr, c)
			if _, err := serial.Run(tr, root, serial.Options{Seed: int64(i)}); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, proto := range []object.Protocol{locking.Protocol{}, undolog.Protocol{}} {
		proto := proto
		b.Run(proto.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tr := tname.NewTree()
				c := cfg
				c.Seed = int64(i)
				root := workload.Build(tr, c)
				if _, _, err := generic.Run(tr, root, generic.Options{Seed: int64(i), Protocol: proto}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE9DeadlockFailure measures Moss under high contention with
// failure injection; reports deadlock victims per run.
func BenchmarkE9DeadlockFailure(b *testing.B) {
	victims, aborts := 0, 0
	for i := 0; i < b.N; i++ {
		tr := tname.NewTree()
		root := workload.Build(tr, workload.Config{Seed: int64(i), TopLevel: 8, Depth: 1,
			Fanout: 3, Objects: 2, HotProb: 1, ParProb: 0.8, ReadRatio: 0.4})
		_, st, err := generic.Run(tr, root, generic.Options{Seed: int64(i) * 7919,
			Protocol: locking.Protocol{}, AbortProb: 0.03, MaxAborts: 8})
		if err != nil {
			b.Fatal(err)
		}
		victims += st.DeadlockVictims
		aborts += st.Aborts
	}
	b.ReportMetric(float64(victims)/float64(b.N), "victims/op")
	b.ReportMetric(float64(aborts)/float64(b.N), "aborts/op")
}

// BenchmarkE10WitnessReplay measures serial-witness materialization on a
// prebuilt checked trace.
func BenchmarkE10WitnessReplay(b *testing.B) {
	for _, topLevel := range []int{8, 32} {
		topLevel := topLevel
		b.Run(fmt.Sprintf("toplevel=%d", topLevel), func(b *testing.B) {
			tr, root, trace := prebuiltTrace(b, topLevel)
			res := core.Check(tr, trace)
			if !res.OK {
				b.Fatal(res.Summary(tr))
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := serial.Witness(tr, root, trace, res.Certificate.Order); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Micro-benchmarks for the per-object automata: the cost of one access
// decision.

// BenchmarkMossAccessDecision measures TryRequestCommit + inform cycles on
// the locking automaton.
func BenchmarkMossAccessDecision(b *testing.B) {
	tr := tname.NewTree()
	x := tr.AddObject("x", specRegister())
	top := tr.Child(tname.Root, "t")
	accs := make([]tname.TxID, b.N)
	for i := range accs {
		accs[i] = tr.Access(top, fmt.Sprintf("a%d", i), x, workloadWriteOp(int64(i)))
	}
	m := locking.NewMoss(tr, x)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Create(accs[i])
		if _, ok := m.TryRequestCommit(accs[i]); !ok {
			b.Fatal("write blocked unexpectedly")
		}
		m.InformCommit(accs[i])
		m.InformCommit(top) // keeps the chain at T0, so the next access is free
	}
}

// BenchmarkUndoAccessDecision measures the undo-log commutativity gate at
// bounded log lengths. The gate scans the log, so cost is linear in log
// size — exactly the compaction need the paper notes ("practical
// implementations would need to compact the information in the operations
// log"); the sub-benchmarks show the slope.
func BenchmarkUndoAccessDecision(b *testing.B) {
	for _, logLen := range []int{16, 256} {
		logLen := logLen
		b.Run(fmt.Sprintf("log=%d", logLen), func(b *testing.B) {
			tr := tname.NewTree()
			x := tr.AddObject("c", specCounter())
			top := tr.Child(tname.Root, "t")
			warm := make([]tname.TxID, logLen)
			for i := range warm {
				warm[i] = tr.Access(top, fmt.Sprintf("w%d", i), x, workloadIncOp())
			}
			accs := make([]tname.TxID, b.N)
			for i := range accs {
				accs[i] = tr.Access(top, fmt.Sprintf("a%d", i), x, workloadIncOp())
			}
			fresh := func() *undolog.Undo {
				u := undolog.New(tr, x)
				for _, id := range warm {
					u.Create(id)
					if _, ok := u.TryRequestCommit(id); !ok {
						b.Fatal("warmup inc blocked")
					}
					u.InformCommit(id)
				}
				return u
			}
			u := fresh()
			sinceRebuild := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				u.Create(accs[i])
				if _, ok := u.TryRequestCommit(accs[i]); !ok {
					b.Fatal("inc blocked unexpectedly")
				}
				u.InformCommit(accs[i])
				sinceRebuild++
				if sinceRebuild == logLen {
					// Keep the measured log length in [logLen, 2·logLen).
					b.StopTimer()
					u = fresh()
					sinceRebuild = 0
					b.StartTimer()
				}
			}
		})
	}
}

// BenchmarkE11OracleSearch measures the exhaustive-order oracle on small
// traces (the conservatism experiment).
func BenchmarkE11OracleSearch(b *testing.B) {
	tr := tname.NewTree()
	root := workload.Build(tr, workload.Config{Seed: 3, TopLevel: 4, Depth: 1,
		Fanout: 2, Objects: 1, HotProb: 1, ParProb: 0.9})
	trace, _, err := generic.Run(tr, root, generic.Options{Seed: 13, Protocol: locking.Protocol{}})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := oracle.Search(tr, trace, 200000)
		if res.Outcome != oracle.Found {
			b.Fatalf("oracle outcome %s on a Moss trace", res.Outcome)
		}
	}
}

// BenchmarkE12OrphanActivity measures the cost of letting orphans run.
func BenchmarkE12OrphanActivity(b *testing.B) {
	for _, allow := range []bool{false, true} {
		allow := allow
		name := "frozen"
		if allow {
			name = "running"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tr := tname.NewTree()
				root := workload.Build(tr, workload.Config{Seed: int64(i), TopLevel: 5,
					Depth: 2, Fanout: 3, Objects: 2, HotProb: 0.6, ParProb: 0.7})
				_, _, err := generic.Run(tr, root, generic.Options{Seed: int64(i)*577 + 3,
					Protocol: locking.Protocol{}, AbortProb: 0.04, MaxAborts: 6, AllowOrphans: allow})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE13MultiversionGap measures one MVTO run plus the oracle
// certification.
func BenchmarkE13MultiversionGap(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tr := tname.NewTree()
		root := workload.Build(tr, workload.Config{Seed: int64(i), TopLevel: 4, Depth: 1,
			Fanout: 2, Objects: 2, HotProb: 0.8, ParProb: 0.9, ReadRatio: 0.6})
		trace, _, err := generic.Run(tr, root, generic.Options{Seed: int64(i)*13 + 5,
			Protocol: mvto.NewProtocol(tr)})
		if err != nil {
			b.Fatal(err)
		}
		if res := oracle.Search(tr, trace, 500000); res.Outcome != oracle.Found {
			b.Fatalf("oracle outcome %s", res.Outcome)
		}
	}
}

// BenchmarkE14ReplicatedData measures a quorum-replicated run with
// availability failures.
func BenchmarkE14ReplicatedData(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tr := tname.NewTree()
		root := workload.Build(tr, workload.Config{Seed: int64(i), TopLevel: 5, Depth: 1,
			Fanout: 3, Objects: 2, HotProb: 0.6, ParProb: 0.7})
		proto := replica.Protocol{Cfg: replica.Config{Copies: 5, ReadQuorum: 3, WriteQuorum: 3,
			UnavailableProb: 0.3, Seed: int64(i) * 131}}
		if _, _, err := generic.Run(tr, root, generic.Options{Seed: int64(i)*17 + 3,
			Protocol: proto, AbortProb: 0.02, MaxAborts: 4}); err != nil {
			b.Fatal(err)
		}
	}
}

// contendedTrace generates the E15 workload: deep nesting over several
// objects so the parallel conflict scan has independent work to fan out.
func contendedTrace(b *testing.B, topLevel int) (*tname.Tree, event.Behavior) {
	b.Helper()
	tr := tname.NewTree()
	root := workload.Build(tr, workload.Config{Seed: 42, TopLevel: topLevel, Depth: 2,
		Fanout: 3, Objects: 8, HotProb: 0.3, ParProb: 0.7})
	trace, _, err := generic.Run(tr, root, generic.Options{Seed: 99, Protocol: locking.Protocol{}})
	if err != nil {
		b.Fatal(err)
	}
	return tr, trace
}

// BenchmarkE15StreamingCheck measures the incremental checker's replay of a
// clean trace; the ns/event metric is the streaming cost per event.
func BenchmarkE15StreamingCheck(b *testing.B) {
	for _, topLevel := range []int{8, 32} {
		topLevel := topLevel
		b.Run(fmt.Sprintf("toplevel=%d", topLevel), func(b *testing.B) {
			tr, trace := contendedTrace(b, topLevel)
			b.ReportMetric(float64(len(trace)), "events")
			c := core.NewChecker(tr)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if at, _ := c.StreamPrefix(trace); at >= 0 {
					b.Fatalf("clean Moss trace rejected at %d", at)
				}
			}
			b.StopTimer()
			if b.N > 0 {
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(len(trace)), "ns/event")
			}
		})
	}
}

// denseTrace generates the E15 scan-bound workload: the serial scheduler
// commits every access, so the quadratic per-object conflict scan — the
// phase BuildParallel fans out — dominates construction cost.
func denseTrace(b *testing.B, topLevel int) (*tname.Tree, event.Behavior) {
	b.Helper()
	tr := tname.NewTree()
	root := workload.Build(tr, workload.Config{Seed: 42, TopLevel: topLevel, Depth: 1,
		Fanout: 4, Objects: 8, ParProb: 0.5})
	trace, err := serial.Run(tr, root, serial.Options{Seed: 99})
	if err != nil {
		b.Fatal(err)
	}
	return tr, trace
}

// BenchmarkE15ParallelBuild measures the batch SG construction at several
// worker counts on one scan-bound trace; workers=1 is the sequential
// baseline the speedup column of EXPERIMENTS.md is computed against.
// Speedup is hardware-dependent: on a single-core host every worker count
// collapses to ~1×.
func BenchmarkE15ParallelBuild(b *testing.B) {
	tr, trace := denseTrace(b, 128)
	want := core.Build(tr, trace).NumEdges()
	for _, workers := range []int{1, 2, 4, 8} {
		workers := workers
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			c := core.NewChecker(tr)
			for i := 0; i < b.N; i++ {
				if got := c.BuildParallel(trace, workers).NumEdges(); got != want {
					b.Fatalf("edges = %d, want %d", got, want)
				}
			}
		})
	}
}

// BenchmarkE16TraceCodec measures the two trace codecs on one mid-sized
// trace: encode cost, decode cost, and — for the binary format — streaming
// decode feeding the incremental checker without materializing a behavior.
// The encoded sizes are reported as metrics; the rows back the E16 table
// of EXPERIMENTS.md.
func BenchmarkE16TraceCodec(b *testing.B) {
	tr, trace := denseTrace(b, 32)
	var jbuf bytes.Buffer
	if err := event.WriteTrace(&jbuf, tr, trace); err != nil {
		b.Fatal(err)
	}
	jsonData := jbuf.Bytes()
	binData := event.MarshalBinaryTrace(tr, trace)

	b.Run("json-encode", func(b *testing.B) {
		b.ReportMetric(float64(len(jsonData)), "bytes")
		for i := 0; i < b.N; i++ {
			var buf bytes.Buffer
			if err := event.WriteTrace(&buf, tr, trace); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("json-decode", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := event.ReadTrace(bytes.NewReader(jsonData)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("binary-encode", func(b *testing.B) {
		b.ReportMetric(float64(len(binData)), "bytes")
		for i := 0; i < b.N; i++ {
			event.MarshalBinaryTrace(tr, trace)
		}
	})
	b.Run("binary-decode", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := event.ReadBinaryTrace(bytes.NewReader(binData)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("binary-stream-check", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			d, err := event.NewBinaryDecoder(bytes.NewReader(binData))
			if err != nil {
				b.Fatal(err)
			}
			inc := core.NewIncremental(d.Tree())
			for {
				e, err := d.Next()
				if err == io.EOF {
					break
				}
				if err != nil {
					b.Fatal(err)
				}
				if cyc := inc.Append(e); cyc != nil {
					b.Fatal("clean trace rejected")
				}
			}
		}
	})
}
