package analysis

import (
	"go/ast"
	"go/types"
)

// BehaviorImmutable forbids mutating a recorded behavior received as a
// parameter.
//
// Every checker in the module consumes an event.Behavior that some runner
// recorded; the paper's operators (serial(β), β|T, visible(β, T)) are all
// defined as projections that leave β itself untouched, and the Behavior
// methods honor that by returning fresh slices. A function that writes
// through a Behavior parameter — assigning to b[i] or a field of b[i],
// sorting it in place, or copying over it — corrupts the caller's recording
// and every other alias of it, typically long after the fact. The analyzer
// flags element writes, in-place reordering (sort.Slice and friends) and
// copy-into for parameters (and receivers, and closure captures of either)
// whose type is event.Behavior or []event.Event. Functions that need a
// variant of a behavior must build a new slice, as Serial and ProjectTx do.
var BehaviorImmutable = &Analyzer{
	Name: "behaviorimmutable",
	Doc:  "recorded behaviors passed as parameters must not be mutated in place",
	Run:  runBehaviorImmutable,
}

const eventPkgPath = "nestedsg/internal/event"

func runBehaviorImmutable(pass *Pass) error {
	// Collect every parameter and receiver of behavior type declared in
	// this package. Matching by object identity means writes inside nested
	// closures that capture the parameter are caught too.
	params := make(map[*types.Var]bool)
	addFields := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			for _, name := range field.Names {
				if v, ok := pass.TypesInfo.Defs[name].(*types.Var); ok && isBehaviorType(v.Type()) {
					params[v] = true
				}
			}
		}
	}
	pass.Preorder(func(n ast.Node) {
		switch fn := n.(type) {
		case *ast.FuncDecl:
			addFields(fn.Recv)
			addFields(fn.Type.Params)
		case *ast.FuncLit:
			addFields(fn.Type.Params)
		}
	})
	if len(params) == 0 {
		return nil
	}

	behaviorParamRoot := func(e ast.Expr) *types.Var {
		// Strip selector/index chains down to the root identifier and
		// require at least one index step: b[i] = ..., b[i].Kind = ...
		indexed := false
		for {
			switch x := ast.Unparen(e).(type) {
			case *ast.IndexExpr:
				indexed = true
				e = x.X
			case *ast.SelectorExpr:
				e = x.X
			case *ast.Ident:
				if !indexed {
					return nil
				}
				if v, ok := pass.ObjectOf(x).(*types.Var); ok && params[v] {
					return v
				}
				return nil
			default:
				return nil
			}
		}
	}

	pass.Preorder(func(n ast.Node) {
		switch stmt := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range stmt.Lhs {
				if v := behaviorParamRoot(lhs); v != nil {
					pass.Reportf(lhs.Pos(), "write into element of behavior parameter %s; recorded behaviors are immutable — build a new slice", v.Name())
				}
			}
		case *ast.IncDecStmt:
			if v := behaviorParamRoot(stmt.X); v != nil {
				pass.Reportf(stmt.X.Pos(), "write into element of behavior parameter %s; recorded behaviors are immutable — build a new slice", v.Name())
			}
		case *ast.CallExpr:
			reportInPlaceCall(pass, params, stmt)
		}
	})
	return nil
}

// reportInPlaceCall flags calls that reorder or overwrite a behavior
// parameter through a well-known in-place API.
func reportInPlaceCall(pass *Pass, params map[*types.Var]bool, call *ast.CallExpr) {
	if len(call.Args) == 0 {
		return
	}
	argParam := func(i int) *types.Var {
		if i >= len(call.Args) {
			return nil
		}
		id, ok := ast.Unparen(call.Args[i]).(*ast.Ident)
		if !ok {
			return nil
		}
		v, _ := pass.ObjectOf(id).(*types.Var)
		if v != nil && params[v] {
			return v
		}
		return nil
	}

	// copy(b, ...) writes through its first argument.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, okb := pass.ObjectOf(id).(*types.Builtin); okb && b.Name() == "copy" {
			if v := argParam(0); v != nil {
				pass.Reportf(call.Pos(), "copy into behavior parameter %s; recorded behaviors are immutable — build a new slice", v.Name())
			}
			return
		}
	}

	fn := calleeFunc(pass, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	inPlace := map[string]map[string]bool{
		"sort":   {"Slice": true, "SliceStable": true, "Sort": true, "Stable": true},
		"slices": {"Sort": true, "SortFunc": true, "SortStableFunc": true, "Reverse": true},
	}
	if names, ok := inPlace[fn.Pkg().Path()]; ok && names[fn.Name()] {
		if v := argParam(0); v != nil {
			pass.Reportf(call.Pos(), "%s.%s reorders behavior parameter %s in place; recorded behaviors are immutable — sort a copy", fn.Pkg().Name(), fn.Name(), v.Name())
		}
	}
}

// isBehaviorType reports whether t is event.Behavior, []event.Event, or a
// named type with one of those underlying.
func isBehaviorType(t types.Type) bool {
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == eventPkgPath && obj.Name() == "Behavior" {
			return true
		}
		t = named.Underlying()
	}
	sl, ok := t.(*types.Slice)
	if !ok {
		return false
	}
	elem, ok := sl.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := elem.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == eventPkgPath && obj.Name() == "Event"
}
