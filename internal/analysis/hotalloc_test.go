package analysis_test

import (
	"testing"

	"nestedsg/internal/analysis"
	"nestedsg/internal/analysis/analysistest"
)

// TestHotAlloc runs the real compiler's escape analysis over the fixture:
// the annotated allocating function fires, the annotated clean function
// and the unannotated allocator stay silent.
func TestHotAlloc(t *testing.T) {
	analysistest.Run(t, ".", analysis.HotAlloc, "./testdata/src/hotalloc")
}
