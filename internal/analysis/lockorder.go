package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockOrder detects potential deadlocks by cycle detection on the global
// lock-order graph — the same construction the certifier applies to
// transactions (Theorem 8/19's "serialisable iff the serialization graph
// is acyclic"), applied to the implementation's own mutexes.
//
// During each package pass the lock-set engine records every nested
// acquisition (mutex B taken while mutex A is held) as a directed edge
// A→B, keyed by declaration site ("internal/server.Server.mu") rather
// than instance, plus a call summary per function. After all packages
// are analyzed, Finish closes the summaries transitively — a call made
// while holding A contributes edges from A to everything the callee may
// acquire — and reports every strongly connected component of the
// resulting graph as a potential deadlock.
//
// The propagation follows static calls only: interface dispatch and
// function values are not resolved, and closures launched by go
// statements do not inherit (or contribute to) the spawner's held set.
// Those are under-approximations; the graph can miss an edge but every
// reported edge corresponds to a real nesting in the source.
var LockOrder = &Analyzer{
	Name:   "lockorder",
	Doc:    "nested mutex acquisitions must form an acyclic lock-order graph",
	Run:    runLockOrder,
	Finish: finishLockOrder,
}

// lockOrderFacts is the cross-package accumulator stored in the
// FactStore slot of LockOrder.
type lockOrderFacts struct {
	// edges are direct nested acquisitions: held-lock → acquired-lock.
	edges map[[2]string]lockEdgeInfo
	// fns summarizes each first-party function: locks it directly
	// acquires and static calls it makes (with the locks held at the
	// call site).
	fns map[string]*fnLockFact
}

type lockEdgeInfo struct {
	pos  token.Position
	note string
}

type fnLockFact struct {
	acquires map[string]token.Position
	calls    []lockCallFact
}

type lockCallFact struct {
	callee string
	held   []string
	pos    token.Position
}

func lockOrderFactsOf(store *FactStore) *lockOrderFacts {
	if f, ok := store.Get("lockorder").(*lockOrderFacts); ok {
		return f
	}
	f := &lockOrderFacts{
		edges: make(map[[2]string]lockEdgeInfo),
		fns:   make(map[string]*fnLockFact),
	}
	store.Set("lockorder", f)
	return f
}

func (lf *lockOrderFacts) fn(key string) *fnLockFact {
	f, ok := lf.fns[key]
	if !ok {
		f = &fnLockFact{acquires: make(map[string]token.Position)}
		lf.fns[key] = f
	}
	return f
}

func (lf *lockOrderFacts) addEdge(from, to string, pos token.Position, note string) {
	k := [2]string{from, to}
	if _, ok := lf.edges[k]; !ok {
		lf.edges[k] = lockEdgeInfo{pos: pos, note: note}
	}
}

func runLockOrder(pass *Pass) error {
	lf := lockOrderFactsOf(pass.Facts)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fnObj, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if fnObj == nil {
				continue
			}
			fact := lf.fn(funcKeyOf(pass, fnObj))
			seed := make(heldSet)
			if arg, ok := annotationArg(fd.Doc, "holds"); ok {
				scope := pass.TypesInfo.Scopes[fd.Type]
				seed, _ = parseHolds(pass, scope, fd.Body.Pos(), arg) // lockguard reports the problems
			}
			walkLockFunc(pass, file, fd.Body, seed, lockVisitor{
				acquire: func(op lockOp, held heldSet, async bool) {
					pos := pass.Fset.Position(op.pos)
					for _, h := range held {
						lf.addEdge(h.typeKey, op.typeKey, pos, "")
					}
					if !async {
						if _, ok := fact.acquires[op.typeKey]; !ok {
							fact.acquires[op.typeKey] = pos
						}
					}
				},
				call: func(call *ast.CallExpr, held heldSet, async bool) {
					if async {
						return // a go-routine does not run under the caller's locks
					}
					callee := calleeFunc(pass, call)
					if callee == nil || callee.Pkg() == nil || !pass.InModule(callee.Pkg().Path()) {
						return
					}
					fact.calls = append(fact.calls, lockCallFact{
						callee: funcKeyOf(pass, callee),
						held:   heldTypeKeys(held),
						pos:    pass.Fset.Position(call.Pos()),
					})
				},
			})
		}
	}
	return nil
}

// funcKeyOf names a function for the call summaries:
// "internal/server.Server.withObj" or "internal/core.Check".
func funcKeyOf(pass *Pass, fn *types.Func) string {
	key := relPkg(pass, fn.Pkg())
	sig := fn.Type().(*types.Signature)
	if recv := sig.Recv(); recv != nil {
		t := recv.Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if n, ok := t.(*types.Named); ok {
			return key + "." + n.Obj().Name() + "." + fn.Name()
		}
	}
	return key + "." + fn.Name()
}

func heldTypeKeys(held heldSet) []string {
	out := make([]string, 0, len(held))
	for _, h := range held {
		out = append(out, h.typeKey)
	}
	sort.Strings(out)
	return out
}

// resolveEdges closes the call summaries into the full edge set: the
// direct edges plus, for every call made with locks held, edges from
// each held lock to everything the callee may transitively acquire.
func (lf *lockOrderFacts) resolveEdges() map[[2]string]lockEdgeInfo {
	// Fixpoint of may-acquire over the static call graph.
	acq := make(map[string]map[string]bool, len(lf.fns))
	for key, fact := range lf.fns {
		s := make(map[string]bool, len(fact.acquires))
		for tk := range fact.acquires {
			s[tk] = true
		}
		acq[key] = s
	}
	for changed := true; changed; {
		changed = false
		for key, fact := range lf.fns {
			s := acq[key]
			for _, c := range fact.calls {
				for tk := range acq[c.callee] {
					if !s[tk] {
						s[tk] = true
						changed = true
					}
				}
			}
		}
	}

	edges := make(map[[2]string]lockEdgeInfo, len(lf.edges))
	for k, v := range lf.edges {
		edges[k] = v
	}
	for _, fact := range lf.fns {
		for _, c := range fact.calls {
			if len(c.held) == 0 {
				continue
			}
			for tk := range acq[c.callee] {
				for _, h := range c.held {
					k := [2]string{h, tk}
					if _, ok := edges[k]; !ok {
						edges[k] = lockEdgeInfo{pos: c.pos, note: "via call to " + c.callee}
					}
				}
			}
		}
	}
	return edges
}

// finishLockOrder reports each strongly connected component of the
// resolved graph (of size > 1, or a self-loop) as a potential deadlock.
func finishLockOrder(store *FactStore, report func(token.Position, string)) error {
	lf, ok := store.Get("lockorder").(*lockOrderFacts)
	if !ok {
		return nil
	}
	edges := lf.resolveEdges()
	adj := make(map[string][]string)
	nodes := make(map[string]bool)
	for k := range edges {
		adj[k[0]] = append(adj[k[0]], k[1])
		nodes[k[0]], nodes[k[1]] = true, true
	}
	for n := range adj {
		sort.Strings(adj[n])
	}
	for _, scc := range stronglyConnected(nodes, adj) {
		if len(scc) == 1 {
			self := [2]string{scc[0], scc[0]}
			if _, ok := edges[self]; !ok {
				continue
			}
		}
		sort.Strings(scc)
		cycle := cyclePath(scc, adj)
		var b strings.Builder
		b.WriteString("lock-order cycle (potential deadlock): ")
		b.WriteString(strings.Join(cycle, " -> "))
		first := edges[[2]string{cycle[0], cycle[1]}]
		if first.note != "" {
			b.WriteString(" (" + first.note + ")")
		}
		report(first.pos, b.String())
	}
	return nil
}

// cyclePath walks a concrete cycle within one SCC starting from its
// smallest node, for a readable diagnostic: ["a", "b", "a"].
func cyclePath(scc []string, adj map[string][]string) []string {
	inSCC := make(map[string]bool, len(scc))
	for _, n := range scc {
		inSCC[n] = true
	}
	start := scc[0]
	path := []string{start}
	seen := map[string]bool{start: true}
	cur := start
	for {
		next := ""
		for _, n := range adj[cur] {
			if n == start && len(path) > 1 {
				return append(path, start)
			}
			if inSCC[n] && !seen[n] && next == "" {
				next = n
			}
		}
		if next == "" {
			// Self-loop or exhausted: close the cycle directly.
			return append(path, start)
		}
		seen[next] = true
		path = append(path, next)
		cur = next
	}
}

// stronglyConnected is Tarjan's algorithm over the lock graph; the graph
// has a handful of nodes, so the recursive form is fine.
func stronglyConnected(nodes map[string]bool, adj map[string][]string) [][]string {
	sorted := make([]string, 0, len(nodes))
	for n := range nodes {
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)

	index := make(map[string]int)
	low := make(map[string]int)
	onStack := make(map[string]bool)
	var stack []string
	next := 0
	var out [][]string

	var strong func(v string)
	strong = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range adj[v] {
			if _, seen := index[w]; !seen {
				strong(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var scc []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			out = append(out, scc)
		}
	}
	for _, n := range sorted {
		if _, seen := index[n]; !seen {
			strong(n)
		}
	}
	return out
}

// LockOrderDOT runs the lock-order collection over already-loaded
// packages and renders the global nested-acquisition graph as Graphviz
// DOT. Edges are deduplicated and sorted so the output is stable enough
// to commit (DESIGN.md §11 embeds it); `make lockreport` is the driver.
func LockOrderDOT(pkgs []*Package) (string, error) {
	store := NewFactStore()
	for _, pkg := range pkgs {
		pass := &Pass{
			Analyzer:  LockOrder,
			Fset:      pkg.Fset,
			Files:     pkg.Syntax,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
			Module:    pkg.Module,
			Dir:       pkg.Dir,
			Facts:     store,
			report:    func(Diagnostic) {},
		}
		if err := LockOrder.Run(pass); err != nil {
			return "", fmt.Errorf("analysis: lockorder on %s: %w", pkg.PkgPath, err)
		}
	}
	lf := lockOrderFactsOf(store)
	edges := lf.resolveEdges()
	keys := make([][2]string, 0, len(edges))
	for k := range edges {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	var b strings.Builder
	b.WriteString("digraph lockorder {\n")
	b.WriteString("  rankdir=LR;\n")
	for _, k := range keys {
		fmt.Fprintf(&b, "  %q -> %q;\n", k[0], k[1])
	}
	b.WriteString("}\n")
	return b.String(), nil
}
