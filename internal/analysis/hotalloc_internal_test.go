package analysis

import (
	"fmt"
	"strings"
	"testing"
)

// TestHotAllocMangledOutput feeds the analyzer unrecognizable compiler
// output: it must emit a notice and report nothing (exit 0 end to end),
// so a toolchain upgrade that reshapes -gcflags=-m diagnostics degrades
// the gate instead of hard-failing CI.
func TestHotAllocMangledOutput(t *testing.T) {
	savedBuild, savedNotice := hotallocBuild, hotallocNotice
	defer func() { hotallocBuild, hotallocNotice = savedBuild, savedNotice }()

	hotallocBuild = func(dir string) ([]byte, error) {
		return []byte("cannot parse this ★ shape\nstill not a position\n"), nil
	}
	var notices []string
	hotallocNotice = func(format string, args ...any) {
		notices = append(notices, fmt.Sprintf(format, args...))
	}

	pkgs, err := Load(LoadConfig{}, "./testdata/src/hotalloc")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	findings, err := RunAnalyzers(pkgs, []*Analyzer{HotAlloc})
	if err != nil {
		t.Fatalf("RunAnalyzers: %v", err)
	}
	if len(findings) != 0 {
		t.Fatalf("expected no findings on mangled output, got %v", findings)
	}
	if len(notices) != 1 || !strings.Contains(notices[0], "unrecognized -gcflags=-m output") {
		t.Fatalf("expected one degrade notice, got %q", notices)
	}
}

// TestHotAllocBuildErrorPropagates distinguishes the degrade path from a
// genuinely failing build, which must surface as an operational error.
func TestHotAllocBuildErrorPropagates(t *testing.T) {
	savedBuild := hotallocBuild
	defer func() { hotallocBuild = savedBuild }()
	hotallocBuild = func(dir string) ([]byte, error) {
		return nil, fmt.Errorf("boom")
	}
	pkgs, err := Load(LoadConfig{}, "./testdata/src/hotalloc")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	if _, err := RunAnalyzers(pkgs, []*Analyzer{HotAlloc}); err == nil {
		t.Fatalf("expected a build error to propagate")
	}
}

// TestIgnoreRequiresReason: a bare //sgvet:ignore is itself a finding,
// attributed to the driver, and is never honored as a suppression.
func TestIgnoreRequiresReason(t *testing.T) {
	pkgs, err := Load(LoadConfig{}, "./testdata/src/ignorebare")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	findings, err := RunAnalyzers(pkgs, nil)
	if err != nil {
		t.Fatalf("RunAnalyzers: %v", err)
	}
	if len(findings) != 1 || findings[0].Analyzer != "sgvet" ||
		!strings.Contains(findings[0].Message, "requires a reason") {
		t.Fatalf("expected one driver finding about the missing reason, got %v", findings)
	}
}
