package analysis

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"
)

// nondetTimeFuncs are the package-time entry points that read or schedule
// against the wall clock. time.Unix, time.Duration conversions and the
// duration constants are pure and stay allowed.
var nondetTimeFuncs = map[string]bool{
	"Now":       true,
	"Sleep":     true,
	"After":     true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
	"AfterFunc": true,
	"Since":     true,
	"Until":     true,
}

// SimDeterminism forbids wall-clock and ambient-randomness sources inside
// simulator packages (import paths ending in "/sim").
//
// The fault-injection simulator's contract is that one uint64 seed replays
// an entire run — schedule, faults, crashes and the event trace — byte for
// byte. That only holds if every nondeterministic input is drawn from the
// seeded splitmix64 generator and every timestamp from the driver-owned
// virtual clock. A single time.Now or math/rand call smuggled into the
// package silently breaks replay: the soak still passes, but a failing
// seed no longer reproduces, which defeats the point of the harness.
var SimDeterminism = &Analyzer{
	Name: "simdeterminism",
	Doc:  "simulator packages must draw time and randomness only from the seeded virtual scheduler",
	Run:  runSimDeterminism,
}

func runSimDeterminism(pass *Pass) error {
	if !strings.HasSuffix(pass.Pkg.Path(), "/sim") {
		return nil
	}
	for _, file := range pass.Files {
		for _, imp := range file.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == "math/rand" || path == "math/rand/v2" {
				pass.Reportf(imp.Pos(), "simulator package imports %s; draw randomness from the seeded rng instead", path)
			}
		}
	}
	pass.Preorder(func(n ast.Node) {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok || !nondetTimeFuncs[sel.Sel.Name] {
			return
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok {
			return
		}
		pkgName, ok := pass.ObjectOf(id).(*types.PkgName)
		if !ok || pkgName.Imported().Path() != "time" {
			return
		}
		pass.Reportf(sel.Pos(), "simulator package reads the wall clock via time.%s; use the driver's virtual clock", sel.Sel.Name)
	})
	return nil
}
