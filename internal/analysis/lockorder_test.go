package analysis_test

import (
	"strings"
	"testing"

	"nestedsg/internal/analysis"
	"nestedsg/internal/analysis/analysistest"
)

// TestLockOrder checks cycle detection on the fixture: a direct AB/BA
// inversion, a cycle closed only through a call summary, and a
// consistently ordered pair that stays silent.
func TestLockOrder(t *testing.T) {
	analysistest.Run(t, ".", analysis.LockOrder, "./testdata/src/lockorder")
}

// TestLockOrderRealPackagesAcyclic asserts the production lock-order
// graph — server, sim, client and core analyzed together — has no cycle.
// This is the static counterpart of the certifier's own acyclicity
// requirement, and the committed DOT graph in DESIGN.md §11 documents
// the edges this run discovers.
func TestLockOrderRealPackagesAcyclic(t *testing.T) {
	analysistest.Run(t, ".", analysis.LockOrder,
		"nestedsg/internal/server",
		"nestedsg/internal/sim",
		"nestedsg/internal/client",
		"nestedsg/internal/core",
	)
}

// TestLockOrderDOT renders the fixture graph and spot-checks shape and
// determinism.
func TestLockOrderDOT(t *testing.T) {
	pkgs, err := analysis.Load(analysis.LoadConfig{Dir: "."}, "./testdata/src/lockorder")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	dot, err := analysis.LockOrderDOT(pkgs)
	if err != nil {
		t.Fatalf("LockOrderDOT: %v", err)
	}
	if !strings.HasPrefix(dot, "digraph lockorder {") {
		t.Fatalf("DOT output does not start with digraph header:\n%s", dot)
	}
	for _, edge := range []string{
		`.a" -> "`, // a -> b and a -> c
		`.b" -> "`, // b -> a
		`.e" -> "`, // the summary-propagated e -> d edge
	} {
		if !strings.Contains(dot, edge) {
			t.Errorf("DOT output missing %q:\n%s", edge, dot)
		}
	}
	dot2, err := analysis.LockOrderDOT(pkgs)
	if err != nil {
		t.Fatalf("LockOrderDOT (second run): %v", err)
	}
	if dot != dot2 {
		t.Errorf("DOT output is not deterministic:\n%s\n---\n%s", dot, dot2)
	}
}
