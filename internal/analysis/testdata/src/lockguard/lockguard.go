// Package lockguard is the fixture for the lockguard analyzer. The good
// cases pin down the paths that must not false-positive — defer-unlock,
// explicit unlock, RLock for reads, early returns, constructor freshness,
// //sgvet:holds seeding — and the bad cases prove each diagnostic fires.
package lockguard

import "sync"

// counter pairs a plain mutex with one guarded field.
type counter struct {
	mu sync.Mutex
	n  int //sgvet:guardedby mu
}

func (c *counter) goodDeferUnlock() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

func (c *counter) goodExplicitUnlock() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

func (c *counter) goodEarlyReturn(flag bool) int {
	c.mu.Lock()
	if flag {
		n := c.n
		c.mu.Unlock()
		return n
	}
	c.mu.Unlock()
	return 0
}

func (c *counter) badRead() int {
	return c.n // want `guarded field n read without holding c\.mu`
}

func (c *counter) badAfterUnlock() {
	c.mu.Lock()
	c.n = 1
	c.mu.Unlock()
	c.n = 2 // want `guarded field n written without holding c\.mu`
}

// badBranchMerge holds the lock on only one arm, so the merge point must
// treat it as released.
func (c *counter) badBranchMerge(flag bool) {
	if flag {
		c.mu.Lock()
	}
	c.n = 3 // want `guarded field n written without holding c\.mu`
	if flag {
		c.mu.Unlock()
	}
}

// table exercises the RWMutex read/write modes.
type table struct {
	mu sync.RWMutex
	m  map[string]int //sgvet:guardedby mu
}

func newTable() *table {
	t := &table{m: make(map[string]int)}
	t.m["seed"] = 1 // fresh local: unshared, no lock needed
	return t
}

func (t *table) goodReadLocked(k string) int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.m[k]
}

func (t *table) goodWriteLocked(k string) {
	t.mu.Lock()
	t.m[k] = 2
	t.mu.Unlock()
}

func (t *table) badWriteUnderRead(k string) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	t.m[k] = 1 // want `guarded field m written while holding only the read lock on t\.mu`
}

// fill documents its precondition instead of locking.
//
//sgvet:holds t.mu
func fill(t *table) {
	t.m["a"] = 1
}

// size needs only the read lock.
//
//sgvet:holds t.mu:r
func size(t *table) int {
	return len(t.m)
}

//sgvet:holds t.mu:r
func badWriteWithReadHolds(t *table) {
	t.m["b"] = 2 // want `guarded field m written while holding only the read lock on t\.mu`
}

// withTable is the withObj idiom: the callback runs under the lock.
func withTable(t *table, f func()) {
	t.mu.Lock()
	defer t.mu.Unlock()
	f()
}

func goodClosure(t *table) {
	withTable(t, func() { //sgvet:holds t.mu
		t.m["c"] = 3
	})
}

func badClosure(t *table) {
	withTable(t, func() {
		t.m["d"] = 4 // want `guarded field m written without holding t\.mu`
	})
}

var tables []*table

func badNonCanonical(i int) int {
	return len(tables[i].m) // want `guarded field m accessed through a non-canonical expression`
}

func ignoredAccess(t *table) int {
	return len(t.m) //sgvet:ignore fixture demonstrates the escape hatch
}

type badspec struct {
	//sgvet:guardedby missing
	n int // want `no sibling sync\.Mutex/RWMutex field`
}

//sgvet:holds nowhere.mu
func badHolds() {} // want `bad //sgvet:holds annotation`
