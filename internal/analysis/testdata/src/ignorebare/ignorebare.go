// Package ignorebare holds a reason-less //sgvet:ignore; the driver must
// flag the annotation itself rather than honor it.
package ignorebare

func one() int {
	return 1 //sgvet:ignore
}
