// Package sim is a fixture for the simdeterminism analyzer: its import
// path ends in /sim, so wall-clock and math/rand use must be flagged.
package sim

import (
	"math/rand" // want `simulator package imports math/rand`
	"time"
)

// BadNow reads the wall clock directly.
func BadNow() time.Time {
	return time.Now() // want `reads the wall clock via time\.Now`
}

// BadSleep blocks on real time.
func BadSleep() {
	time.Sleep(time.Millisecond) // want `reads the wall clock via time\.Sleep`
}

// BadTimer schedules against real time in three ways.
func BadTimer() {
	<-time.After(time.Millisecond)  // want `reads the wall clock via time\.After`
	t := time.NewTimer(time.Second) // want `reads the wall clock via time\.NewTimer`
	t.Stop()
	_ = time.Since(time.Unix(0, 0)) // want `reads the wall clock via time\.Since`
}

// BadRand draws ambient randomness.
func BadRand() int {
	return rand.Intn(6)
}

// GoodVirtual builds timestamps and durations without touching the wall
// clock: time.Unix, duration constants and conversions are pure.
func GoodVirtual(ns int64) (time.Time, time.Duration) {
	return time.Unix(0, ns), 40 * time.Millisecond
}
