// Package exhaustivekind is a fixture for the exhaustivekind analyzer.
package exhaustivekind

import "nestedsg/internal/event"

// Color is an enum-like type local to the fixture.
type Color uint8

// Color constants.
const (
	Red Color = iota
	Green
	Blue
)

// Handle is a non-enum signed type; switches on it are never flagged.
type Handle int32

// MissingCases lacks Blue and has no default.
func MissingCases(c Color) int {
	switch c { // want `non-exhaustive switch on Color: missing Blue`
	case Red:
		return 1
	case Green:
		return 2
	}
	return 0
}

// CoversAll lists every constant; no default needed.
func CoversAll(c Color) int {
	switch c {
	case Red, Green:
		return 1
	case Blue:
		return 2
	}
	return 0
}

// HasDefault documents the ignored kinds explicitly.
func HasDefault(c Color) int {
	switch c {
	case Red:
		return 1
	default:
		return 0
	}
}

// ImportedEnum switches on event.Kind from another module package.
func ImportedEnum(k event.Kind) bool {
	switch k { // want `non-exhaustive switch on event\.Kind: missing KindInvalid, RequestCreate, RequestCommit, Abort, ReportCommit, ReportAbort, InformCommit, InformAbort`
	case event.Create, event.Commit:
		return true
	}
	return false
}

// ImportedEnumDefault is the fixed form of ImportedEnum.
func ImportedEnumDefault(k event.Kind) bool {
	switch k {
	case event.Create, event.Commit:
		return true
	default:
		return false
	}
}

// SignedNotEnum switches on a signed index type; not enum-like.
func SignedNotEnum(h Handle) bool {
	switch h {
	case 0:
		return true
	}
	return false
}

// Untagged switches carry no discriminator and are ignored.
func Untagged(c Color) int {
	switch {
	case c == Red:
		return 1
	}
	return 0
}
