// Package tnamecompare is a fixture for the tnamecompare analyzer.
package tnamecompare

import "nestedsg/internal/tname"

// StringCompare compares rendered names instead of interned IDs.
func StringCompare(tr *tname.Tree, a, b tname.TxID) bool {
	return tr.Name(a) == tr.Name(b) // want `comparing rendered transaction names`
}

// LabelCompare compares local labels of two names.
func LabelCompare(tr *tname.Tree, a, b tname.TxID) bool {
	return tr.Label(a) != tr.Label(b) // want `comparing rendered transaction names`
}

// ObjectLabelCompare compares rendered object names.
func ObjectLabelCompare(tr *tname.Tree, x, y tname.ObjID) bool {
	return tr.ObjectLabel(x) == tr.ObjectLabel(y) // want `comparing rendered transaction names`
}

// MagicLiteral compares IDs against bare integers.
func MagicLiteral(tx tname.TxID, obj tname.ObjID) bool {
	if tx == 3 { // want `comparing an interned tname ID against a bare literal`
		return true
	}
	return obj != -1 // want `comparing an interned tname ID against a bare literal`
}

// IDCompare is the canonical comparison: interned IDs with ==.
func IDCompare(a, b tname.TxID) bool { return a == b }

// SentinelCompare names the declared constants; fine.
func SentinelCompare(tx tname.TxID, obj tname.ObjID) bool {
	return tx == tname.Root || tx != tname.None || obj == tname.NoObj
}

// LabelFilter compares one label against a string constant — a filter on
// the label text, not an identity comparison between two names.
func LabelFilter(tr *tname.Tree, tx tname.TxID) bool {
	return tr.Label(tx) == "read"
}

// ConvertedIndex compares against a converted loop index, which is how the
// trace decoder checks interning order; conversions are not bare literals.
func ConvertedIndex(tx tname.TxID, i int) bool {
	return tx == tname.TxID(i)
}

// AncestryHelpers answer tree questions through the helpers.
func AncestryHelpers(tr *tname.Tree, a, b tname.TxID) bool {
	return tr.IsAncestor(a, b) || tr.IsOrdered(a, b)
}
