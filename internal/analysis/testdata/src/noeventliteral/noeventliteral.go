// Package noeventliteral is a fixture for the noeventliteral analyzer.
package noeventliteral

import (
	"nestedsg/internal/event"
	"nestedsg/internal/spec"
	"nestedsg/internal/tname"
)

// BadEvent hand-assembles an event, bypassing the Kind/Obj coupling.
func BadEvent(tx tname.TxID) event.Event {
	return event.Event{Kind: event.Create, Tx: tx} // want `composite literal of event\.Event bypasses its constructors`
}

// BadEventPtr does the same through a pointer literal.
func BadEventPtr(tx tname.TxID) *event.Event {
	return &event.Event{Kind: event.Abort, Tx: tx} // want `composite literal of event\.Event bypasses its constructors`
}

// BadValue builds a union value without a constructor.
func BadValue() spec.Value {
	return spec.Value{Kind: spec.VInt, Int: 7, Str: "junk"} // want `composite literal of spec\.Value bypasses its constructors`
}

// GoodEvent uses the constructors.
func GoodEvent(tx tname.TxID) event.Event {
	return event.NewValEvent(event.RequestCommit, tx, spec.Int(7))
}

// GoodInform uses the inform constructor.
func GoodInform(tx tname.TxID, x tname.ObjID) event.Event {
	return event.NewInform(event.InformCommit, tx, x)
}

// GoodValue uses the value constructors.
func GoodValue() []spec.Value {
	return []spec.Value{spec.Nil, spec.OK, spec.Int(1), spec.Bool(true), spec.Str("s")}
}

// UnprotectedLiteral builds a type outside the protected table; fine.
func UnprotectedLiteral() spec.Op {
	return spec.Op{Kind: spec.OpRead}
}

// BehaviorLiteral builds the slice type, not the struct; the slice itself
// is not constructor-guarded (its elements are).
func BehaviorLiteral(tx tname.TxID) event.Behavior {
	return event.Behavior{event.NewEvent(event.Create, tx)}
}
