// Package hotalloc is the fixture for the hotalloc analyzer: an
// annotated function that allocates, an annotated one that does not, and
// an unannotated allocator that must stay silent.
package hotalloc

type box struct{ v [4]int64 }

// escape heap-allocates its result.
//
//sgvet:hotpath
func escape() *box {
	return &box{} // want `hotpath function escape allocates`
}

// sum is allocation-free and must pass the gate.
//
//sgvet:hotpath
func sum(xs []int64) int64 {
	var t int64
	for _, x := range xs {
		t += x
	}
	return t
}

// coldAlloc allocates but carries no annotation.
func coldAlloc() *box {
	return &box{}
}
