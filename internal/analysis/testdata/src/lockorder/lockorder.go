// Package lockorder is the fixture for the lockorder analyzer: a direct
// AB/BA double-lock cycle, a second cycle closed only through a call
// summary, and a consistently ordered pair that must stay silent.
package lockorder

import "sync"

var (
	a sync.Mutex
	b sync.Mutex
	c sync.Mutex
	d sync.Mutex
	e sync.Mutex
)

func abFirst() {
	a.Lock()
	b.Lock() // want `lock-order cycle \(potential deadlock\)`
	b.Unlock()
	a.Unlock()
}

func baSecond() {
	b.Lock()
	a.Lock()
	a.Unlock()
	b.Unlock()
}

// acPair orders a before c everywhere, so no cycle involves c.
func acPair() {
	a.Lock()
	c.Lock()
	c.Unlock()
	a.Unlock()
}

func deFirst() {
	d.Lock()
	e.Lock() // want `lock-order cycle \(potential deadlock\)`
	e.Unlock()
	d.Unlock()
}

func lockD() {
	d.Lock()
	d.Unlock()
}

// edViaCall closes the d/e cycle without a direct nested acquisition:
// lockD's summary says it may take d, and e is held at the call.
func edViaCall() {
	e.Lock()
	lockD()
	e.Unlock()
}
