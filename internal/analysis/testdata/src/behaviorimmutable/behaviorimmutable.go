// Package behaviorimmutable is a fixture for the behaviorimmutable
// analyzer.
package behaviorimmutable

import (
	"sort"

	"nestedsg/internal/event"
	"nestedsg/internal/tname"
)

// Recorded is a locally named behavior type; its underlying []event.Event
// makes it a recorded behavior too.
type Recorded []event.Event

// OverwriteElement assigns through the parameter.
func OverwriteElement(b event.Behavior, e event.Event) {
	b[0] = e // want `write into element of behavior parameter b`
}

// OverwriteField mutates one field of an element in place.
func OverwriteField(b event.Behavior, tx tname.TxID) {
	b[0].Tx = tx // want `write into element of behavior parameter b`
}

// CompoundAndIncDec also write through the parameter.
func CompoundAndIncDec(b []event.Event) {
	b[1].Val.Int += 2 // want `write into element of behavior parameter b`
	b[1].Val.Int++    // want `write into element of behavior parameter b`
}

// SortInPlace reorders the recording itself.
func SortInPlace(b event.Behavior) {
	sort.Slice(b, func(i, j int) bool { return b[i].Tx < b[j].Tx }) // want `sort\.Slice reorders behavior parameter b in place`
}

// CopyInto overwrites the recording wholesale.
func CopyInto(b event.Behavior, src event.Behavior) {
	copy(b, src) // want `copy into behavior parameter b`
}

// ClosureCapture mutates a captured parameter from a nested function.
func ClosureCapture(b Recorded) func() {
	return func() {
		b[0].Kind = event.Abort // want `write into element of behavior parameter b`
	}
}

// MethodReceiver mutates through a behavior-typed receiver.
type Wrapper event.Behavior

// Zap writes through the receiver.
func (w Wrapper) Zap() {
	w[0].Val = w[1].Val // want `write into element of behavior parameter w`
}

// CopyThenMutate takes a private copy first; mutating the copy is fine.
func CopyThenMutate(b event.Behavior, e event.Event) event.Behavior {
	out := make(event.Behavior, len(b))
	copy(out, b)
	out[0] = e
	return out
}

// ProjectionStyle builds a new slice, as the event package's own operators
// do; reading b[i] is of course fine.
func ProjectionStyle(b event.Behavior) event.Behavior {
	var out event.Behavior
	for i := range b {
		if b[i].Kind.IsSerial() {
			out = append(out, b[i])
		}
	}
	return out
}

// LocalMutation writes into a slice the function itself built.
func LocalMutation(e event.Event) event.Behavior {
	local := make(event.Behavior, 1)
	local[0] = e
	return local
}

// SortCopy sorts a copy, never the parameter.
func SortCopy(b event.Behavior) event.Behavior {
	out := append(event.Behavior(nil), b...)
	sort.Slice(out, func(i, j int) bool { return out[i].Tx < out[j].Tx })
	return out
}
