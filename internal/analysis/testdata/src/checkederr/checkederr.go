// Package checkederr is a fixture for the checkederr analyzer.
package checkederr

import (
	"fmt"

	"nestedsg/internal/event"
	"nestedsg/internal/simple"
	"nestedsg/internal/tname"
)

// Gadget carries checker-shaped methods for the fixture.
type Gadget struct{}

// CheckChainInvariant mimics the Moss lock-chain checker.
func (Gadget) CheckChainInvariant() error { return nil }

// VerifyAll returns a verdict.
func (Gadget) VerifyAll() (int, error) { return 0, nil }

// Restore returns an error but is not named like an invariant checker;
// discarding its result is outside this analyzer's scope.
func (Gadget) Restore() error { return nil }

// Discarded drops checker results in every flagged form.
func Discarded(g Gadget, tr *tname.Tree, b event.Behavior) {
	g.CheckChainInvariant()       // want `result of CheckChainInvariant is discarded`
	simple.CheckWellFormed(tr, b) // want `result of CheckWellFormed is discarded`
	_ = g.CheckChainInvariant()   // want `result of CheckChainInvariant is discarded`
	_, _ = g.VerifyAll()          // want `result of VerifyAll is discarded`
	defer g.CheckChainInvariant() // want `result of CheckChainInvariant is discarded`
	go g.CheckChainInvariant()    // want `result of CheckChainInvariant is discarded`
}

// durableFile has both Close and Sync returning errors — the signature
// of a writable file whose dropped errors can lose committed data.
type durableFile struct{}

func (durableFile) Close() error { return nil }
func (durableFile) Sync() error  { return nil }

// conn has Close but no Sync; closing it is legitimately best-effort.
type conn struct{}

func (conn) Close() error { return nil }

// segment mimics the WAL's SegmentFile interface shape.
type segment interface {
	Close() error
	Sync() error
}

// DroppedDurable discards Close/Sync results on durable surfaces.
func DroppedDurable(f durableFile, s segment) {
	f.Close()       // want `result of Close on a durable file is discarded`
	f.Sync()        // want `result of Sync on a durable file is discarded`
	defer f.Close() // want `result of Close on a durable file is discarded`
	_ = s.Sync()    // want `result of Sync on a durable file is discarded`
	s.Close()       // want `result of Close on a durable file is discarded`
}

// HandledDurable consumes the results; connections stay exempt.
func HandledDurable(f durableFile, c conn) error {
	if err := f.Sync(); err != nil {
		return err
	}
	// conn has no Sync, so its unchecked Close is out of scope.
	c.Close()
	return f.Close()
}

// Handled consumes every result; nothing is flagged.
func Handled(g Gadget, tr *tname.Tree, b event.Behavior) error {
	if err := g.CheckChainInvariant(); err != nil {
		return err
	}
	if err := simple.CheckWellFormed(tr, b); err != nil {
		return fmt.Errorf("ill-formed: %w", err)
	}
	n, err := g.VerifyAll()
	if err != nil || n > 0 {
		return err
	}
	// Restore is not a Check*/Verify*/Validate* function; discarding its
	// error is errcheck's business, not this analyzer's.
	g.Restore()
	return g.CheckChainInvariant()
}
