package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"os"
	"os/exec"
	"regexp"
	"strconv"
	"strings"
)

// HotAlloc gates //sgvet:hotpath-annotated functions against heap
// allocations, statically enforcing what the testing.AllocsPerRun
// assertions from PR 3 only spot-check.
//
// When a package contains at least one annotated function, the analyzer
// rebuilds it with `go build -gcflags=-m` and parses the compiler's
// escape-analysis diagnostics. Any "escapes to heap" or "moved to heap"
// site whose line falls inside an annotated function is a finding —
// including allocations attributed to the caller's line by inlining, so
// an inlined callee cannot smuggle an allocation into a hot path. The
// build cache replays compiler diagnostics, so repeated runs stay cheap.
//
// Robustness: the -m output format is not a stable interface. If the
// output parses to zero recognizable positions, the analyzer assumes a
// toolchain change, emits a notice, and reports nothing — a compiler
// upgrade must never hard-fail CI through this gate (see
// TestHotAllocMangledOutput).
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "functions annotated //sgvet:hotpath must not heap-allocate",
	Run:  runHotAlloc,
}

// hotallocBuild invokes the compiler's escape analysis for the package
// in dir. It is a variable so tests can substitute canned or mangled
// output without shelling out.
var hotallocBuild = func(dir string) ([]byte, error) {
	cmd := exec.Command("go", "build", "-o", os.DevNull, "-gcflags=-m", ".")
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	if err != nil {
		return nil, fmt.Errorf("go build -gcflags=-m in %s: %w\n%s", dir, err, out)
	}
	return out, nil
}

// hotallocNotice receives the degrade-gracefully notice; a variable so
// the mangled-output test can observe it.
var hotallocNotice = func(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
}

// hotFunc is one annotated function: its file and line extent.
type hotFunc struct {
	name      string
	file      string // absolute path of the declaring file
	tokFile   *token.File
	startLine int
	endLine   int
}

// escapeLineRE matches one -gcflags=-m diagnostic:
// "internal/server/log.go:93:2: leaking param: e".
var escapeLineRE = regexp.MustCompile(`^(.+\.go):(\d+):(\d+): (.+)$`)

func runHotAlloc(pass *Pass) error {
	var hot []hotFunc
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if _, ok := annotationArg(fd.Doc, "hotpath"); !ok {
				continue
			}
			start := pass.Fset.Position(fd.Pos())
			end := pass.Fset.Position(fd.End())
			hot = append(hot, hotFunc{
				name:      fd.Name.Name,
				file:      start.Filename,
				tokFile:   pass.Fset.File(fd.Pos()),
				startLine: start.Line,
				endLine:   end.Line,
			})
		}
	}
	if len(hot) == 0 {
		return nil // don't invoke the compiler for unannotated packages
	}

	out, err := hotallocBuild(pass.Dir)
	if err != nil {
		return err
	}
	lines := strings.Split(string(out), "\n")
	parsed := 0
	content := 0
	for _, line := range lines {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		content++
		m := escapeLineRE.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		parsed++
		msg := m[4]
		if !isHeapAllocMessage(msg) {
			continue
		}
		path := strings.TrimPrefix(m[1], "./")
		lineNo, _ := strconv.Atoi(m[2])
		for _, hf := range hot {
			if lineNo < hf.startLine || lineNo > hf.endLine {
				continue
			}
			if !strings.HasSuffix(hf.file, "/"+path) && hf.file != path {
				continue
			}
			pos := hf.tokFile.LineStart(lineNo)
			pass.Reportf(pos, "hotpath function %s allocates: %s", hf.name, msg)
		}
	}
	if parsed == 0 && content > 0 {
		hotallocNotice("sgvet: hotalloc: unrecognized -gcflags=-m output for %s; skipping the allocation gate", pass.Pkg.Path())
	}
	return nil
}

// isHeapAllocMessage classifies one escape diagnostic as an actual heap
// allocation. "does not escape" and "leaking param" lines describe
// non-allocating flow facts and are skipped.
func isHeapAllocMessage(msg string) bool {
	if strings.Contains(msg, "does not escape") {
		return false
	}
	if strings.HasPrefix(msg, "leaking param") {
		return false
	}
	return strings.Contains(msg, "escapes to heap") || strings.HasPrefix(msg, "moved to heap")
}
