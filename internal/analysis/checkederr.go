package analysis

import (
	"go/ast"
	"go/types"
	"regexp"
)

// CheckedErr forbids discarding the result of an invariant checker.
//
// The runtime halves of the paper's lemmas are functions like
// simple.CheckWellFormed (simple-system axioms), core.Check (Theorem 8/19),
// Moss.CheckChainInvariant (Lemma 9), serial.Validate and tname.Validate.
// Calling one and ignoring its result turns a correctness check into dead
// code while still reading as if the property were verified. The analyzer
// flags any statement that calls a first-party function or method whose
// name begins with Check, Verify or Validate and drops every result —
// whether as a bare expression statement, via blank assignments, or behind
// defer/go.
var CheckedErr = &Analyzer{
	Name: "checkederr",
	Doc:  "results of Check*/Verify*/Validate* invariant functions must not be discarded",
	Run:  runCheckedErr,
}

var checkerNameRE = regexp.MustCompile(`^(Check|Verify|Validate)([A-Z0-9_].*)?$`)

func runCheckedErr(pass *Pass) error {
	pass.Preorder(func(n ast.Node) {
		var call *ast.CallExpr
		switch stmt := n.(type) {
		case *ast.ExprStmt:
			call, _ = stmt.X.(*ast.CallExpr)
		case *ast.DeferStmt:
			call = stmt.Call
		case *ast.GoStmt:
			call = stmt.Call
		case *ast.AssignStmt:
			if len(stmt.Rhs) != 1 || !allBlank(stmt.Lhs) {
				return
			}
			call, _ = stmt.Rhs[0].(*ast.CallExpr)
		default:
			return
		}
		if call == nil {
			return
		}
		fn := calleeFunc(pass, call)
		if fn == nil || fn.Pkg() == nil || !pass.InModule(fn.Pkg().Path()) {
			return
		}
		if !checkerNameRE.MatchString(fn.Name()) {
			return
		}
		if fn.Type().(*types.Signature).Results().Len() == 0 {
			return
		}
		pass.Reportf(call.Pos(), "result of %s is discarded; invariant checks must be acted on", fn.Name())
	})
	return nil
}

// allBlank reports whether every expression is the blank identifier.
func allBlank(exprs []ast.Expr) bool {
	for _, e := range exprs {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name != "_" {
			return false
		}
	}
	return len(exprs) > 0
}

// calleeFunc resolves the static callee of a call, or nil for indirect or
// built-in calls.
func calleeFunc(pass *Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pass.ObjectOf(id).(*types.Func)
	return fn
}
