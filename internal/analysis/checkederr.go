package analysis

import (
	"go/ast"
	"go/types"
	"regexp"
)

// CheckedErr forbids discarding the result of an invariant checker.
//
// The runtime halves of the paper's lemmas are functions like
// simple.CheckWellFormed (simple-system axioms), core.Check (Theorem 8/19),
// Moss.CheckChainInvariant (Lemma 9), serial.Validate and tname.Validate.
// Calling one and ignoring its result turns a correctness check into dead
// code while still reading as if the property were verified. The analyzer
// flags any statement that calls a first-party function or method whose
// name begins with Check, Verify or Validate and drops every result —
// whether as a bare expression statement, via blank assignments, or behind
// defer/go.
//
// It also flags discarded results of Close() and Sync() on durability
// surfaces: any receiver whose method set offers both Close() and Sync()
// returning errors (os.File, the WAL's SegmentFile, MemDisk's handles) is
// a writable file in this codebase, and the PR 5 durability bugs were
// exactly dropped errors of this shape. Types with Close but no Sync
// (network connections, response bodies) stay exempt — closing those is
// legitimately best-effort.
var CheckedErr = &Analyzer{
	Name: "checkederr",
	Doc:  "results of Check*/Verify*/Validate* invariant functions and of Close/Sync on durable files must not be discarded",
	Run:  runCheckedErr,
}

var checkerNameRE = regexp.MustCompile(`^(Check|Verify|Validate)([A-Z0-9_].*)?$`)

func runCheckedErr(pass *Pass) error {
	pass.Preorder(func(n ast.Node) {
		var call *ast.CallExpr
		switch stmt := n.(type) {
		case *ast.ExprStmt:
			call, _ = stmt.X.(*ast.CallExpr)
		case *ast.DeferStmt:
			call = stmt.Call
		case *ast.GoStmt:
			call = stmt.Call
		case *ast.AssignStmt:
			if len(stmt.Rhs) != 1 || !allBlank(stmt.Lhs) {
				return
			}
			call, _ = stmt.Rhs[0].(*ast.CallExpr)
		default:
			return
		}
		if call == nil {
			return
		}
		fn := calleeFunc(pass, call)
		if fn == nil {
			return
		}
		sig := fn.Type().(*types.Signature)
		if sig.Results().Len() == 0 {
			return
		}
		firstParty := fn.Pkg() != nil && pass.InModule(fn.Pkg().Path())
		switch {
		case firstParty && checkerNameRE.MatchString(fn.Name()):
			pass.Reportf(call.Pos(), "result of %s is discarded; invariant checks must be acted on", fn.Name())
		case (fn.Name() == "Close" || fn.Name() == "Sync") && isDurableReceiver(sig.Recv()):
			pass.Reportf(call.Pos(), "result of %s on a durable file is discarded; close/sync errors can lose committed data", fn.Name())
		}
	})
	return nil
}

// isDurableReceiver reports whether the method's receiver type offers
// both Close() and Sync() with results — the signature of a writable,
// durable file as opposed to a connection or reader.
func isDurableReceiver(recv *types.Var) bool {
	if recv == nil {
		return false
	}
	t := recv.Type()
	for _, name := range [...]string{"Close", "Sync"} {
		obj, _, _ := types.LookupFieldOrMethod(t, true, recv.Pkg(), name)
		m, ok := obj.(*types.Func)
		if !ok {
			return false
		}
		if m.Type().(*types.Signature).Results().Len() == 0 {
			return false
		}
	}
	return true
}

// allBlank reports whether every expression is the blank identifier.
func allBlank(exprs []ast.Expr) bool {
	for _, e := range exprs {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name != "_" {
			return false
		}
	}
	return len(exprs) > 0
}

// calleeFunc resolves the static callee of a call, or nil for indirect or
// built-in calls.
func calleeFunc(pass *Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pass.ObjectOf(id).(*types.Func)
	return fn
}
