package analysis_test

import (
	"testing"

	"nestedsg/internal/analysis"
	"nestedsg/internal/analysis/analysistest"
)

// TestExhaustiveKind checks that the analyzer fires on non-exhaustive
// switches over enum-like module types and stays silent on exhaustive or
// defaulted ones — including the real spec package, whose OpKind/ValueKind
// switches were made explicitly exhaustive and must stay that way.
func TestExhaustiveKind(t *testing.T) {
	for _, pattern := range []string{
		"./testdata/src/exhaustivekind",
		"nestedsg/internal/spec",
		"nestedsg/internal/event",
	} {
		t.Run(pattern, func(t *testing.T) {
			analysistest.Run(t, ".", analysis.ExhaustiveKind, pattern)
		})
	}
}
