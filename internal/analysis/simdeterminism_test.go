package analysis_test

import (
	"testing"

	"nestedsg/internal/analysis"
	"nestedsg/internal/analysis/analysistest"
)

// TestSimDeterminism checks that wall-clock reads and math/rand are
// flagged inside packages whose import path ends in /sim, and that the
// real simulator package is clean.
func TestSimDeterminism(t *testing.T) {
	for _, pattern := range []string{
		"./testdata/src/simdeterminism/sim",
		"nestedsg/internal/sim",
	} {
		t.Run(pattern, func(t *testing.T) {
			analysistest.Run(t, ".", analysis.SimDeterminism, pattern)
		})
	}
}

// TestSimDeterminismScope: the analyzer must ignore packages outside a
// /sim import path even when they use the wall clock freely — the server
// itself reads time.Now via its default hooks.
func TestSimDeterminismScope(t *testing.T) {
	analysistest.Run(t, ".", analysis.SimDeterminism, "nestedsg/internal/server")
}
