package analysis

import (
	"go/ast"
	"regexp"
	"strings"
)

// Annotation comments drive the concurrency-discipline analyzers. All of
// them live behind the machine-readable "//sgvet:" prefix:
//
//	//sgvet:guardedby mu          on a struct field: the sibling mutex
//	                              field mu must be held to touch it
//	//sgvet:holds e.mu, s.mu:r    on a function or closure: callers
//	                              guarantee these locks are held (":r"
//	                              means at least the read lock)
//	//sgvet:hotpath               on a function: no heap allocations
//	//sgvet:ignore[name] reason   suppress findings (of analyzer name, or
//	                              of all analyzers when the bracket is
//	                              omitted); the reason string is mandatory
//
// Parsing is shared here so every analyzer agrees on the syntax; the
// catalogue in internal/analysis/README.md documents it for humans.

// annotationArg scans a comment group for "//sgvet:<name>" and returns the
// rest of that line, trimmed. The second result distinguishes an absent
// annotation from one with an empty argument.
func annotationArg(cg *ast.CommentGroup, name string) (string, bool) {
	if cg == nil {
		return "", false
	}
	prefix := "//sgvet:" + name
	for _, c := range cg.List {
		text := strings.TrimSpace(c.Text)
		if !strings.HasPrefix(text, prefix) {
			continue
		}
		rest := text[len(prefix):]
		if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
			continue // e.g. "//sgvet:hotpathX" is not "hotpath"
		}
		return strings.TrimSpace(rest), true
	}
	return "", false
}

// ignoreRegion suppresses findings of one analyzer (or all, when Analyzer
// is empty) on a span of lines of one file.
type ignoreRegion struct {
	File     string
	FromLine int
	ToLine   int
	Analyzer string
}

var ignoreRE = regexp.MustCompile(`^//sgvet:ignore(?:\[([A-Za-z0-9_]+)\])?(?:\s+(.*))?$`)

// collectIgnores gathers every //sgvet:ignore annotation in the package.
// An ignore in a function's doc comment covers the whole declaration; any
// other ignore covers its own line and the next (so both trailing and
// standalone placements work). An ignore with no reason string is itself
// reported as a finding — the escape hatch must say why it is open.
func collectIgnores(pkg *Package) ([]ignoreRegion, []Finding) {
	var regions []ignoreRegion
	var diags []Finding

	// Function docs first, so line-level collection can skip them.
	funcDocIgnores := make(map[*ast.Comment]bool)
	for _, file := range pkg.Syntax {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			for _, c := range fd.Doc.List {
				m := ignoreRE.FindStringSubmatch(strings.TrimSpace(c.Text))
				if m == nil {
					continue
				}
				funcDocIgnores[c] = true
				start := pkg.Fset.Position(fd.Pos())
				end := pkg.Fset.Position(fd.End())
				regions, diags = addIgnore(pkg, regions, diags, c, m, start.Line, end.Line)
			}
		}
	}
	for _, file := range pkg.Syntax {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				if funcDocIgnores[c] {
					continue
				}
				m := ignoreRE.FindStringSubmatch(strings.TrimSpace(c.Text))
				if m == nil {
					continue
				}
				line := pkg.Fset.Position(c.Pos()).Line
				regions, diags = addIgnore(pkg, regions, diags, c, m, line, line+1)
			}
		}
	}
	return regions, diags
}

// addIgnore validates one matched ignore comment and appends its region,
// or a missing-reason finding.
func addIgnore(pkg *Package, regions []ignoreRegion, diags []Finding, c *ast.Comment, m []string, from, to int) ([]ignoreRegion, []Finding) {
	if strings.TrimSpace(m[2]) == "" {
		diags = append(diags, Finding{
			Analyzer: "sgvet",
			Position: pkg.Fset.Position(c.Pos()),
			Message:  "//sgvet:ignore requires a reason string",
		})
		return regions, diags
	}
	regions = append(regions, ignoreRegion{
		File:     pkg.Fset.Position(c.Pos()).Filename,
		FromLine: from,
		ToLine:   to,
		Analyzer: m[1],
	})
	return regions, diags
}

// filterIgnored drops findings covered by an ignore region. The driver's
// own "ignore requires a reason" findings are never suppressed.
func filterIgnored(findings []Finding, regions []ignoreRegion) []Finding {
	if len(regions) == 0 {
		return findings
	}
	out := findings[:0]
	for _, f := range findings {
		if f.Analyzer != "sgvet" && ignored(f, regions) {
			continue
		}
		out = append(out, f)
	}
	return out
}

func ignored(f Finding, regions []ignoreRegion) bool {
	for _, r := range regions {
		if r.File != f.Position.Filename {
			continue
		}
		if r.Analyzer != "" && r.Analyzer != f.Analyzer {
			continue
		}
		if f.Position.Line >= r.FromLine && f.Position.Line <= r.ToLine {
			return true
		}
	}
	return false
}
