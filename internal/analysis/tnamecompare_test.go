package analysis_test

import (
	"testing"

	"nestedsg/internal/analysis"
	"nestedsg/internal/analysis/analysistest"
)

// TestTnameCompare checks that rendered-name and magic-literal comparisons
// are flagged while interned-ID comparison, sentinel constants, label
// filters against string constants, and the tname package itself pass.
func TestTnameCompare(t *testing.T) {
	for _, pattern := range []string{
		"./testdata/src/tnamecompare",
		"nestedsg/internal/tname",
	} {
		t.Run(pattern, func(t *testing.T) {
			analysistest.Run(t, ".", analysis.TnameCompare, pattern)
		})
	}
}
