package analysis

import (
	"encoding/json"
	"fmt"
	"go/token"
	"io"
	"sort"
)

// A Finding is a positioned diagnostic attributed to an analyzer, as
// produced by running a suite over loaded packages.
type Finding struct {
	// Analyzer is the name of the analyzer that fired.
	Analyzer string
	// Position is the resolved source position.
	Position token.Position
	// Message is the diagnostic text.
	Message string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s [%s]", f.Position, f.Message, f.Analyzer)
}

// RunAnalyzers applies each analyzer to each package, invokes each
// analyzer's Finish hook once at the end, drops findings suppressed by
// //sgvet:ignore annotations, and returns the survivors sorted by file,
// line, column and analyzer name. A nil error means the run itself
// succeeded; individual findings are not errors.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	var out []Finding
	facts := NewFactStore()
	var ignores []ignoreRegion
	for _, pkg := range pkgs {
		regions, diags := collectIgnores(pkg)
		ignores = append(ignores, regions...)
		out = append(out, diags...)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Syntax,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				Module:    pkg.Module,
				Dir:       pkg.Dir,
				Facts:     facts,
			}
			pass.report = func(d Diagnostic) {
				out = append(out, Finding{
					Analyzer: a.Name,
					Position: pkg.Fset.Position(d.Pos),
					Message:  d.Message,
				})
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.PkgPath, err)
			}
		}
	}
	for _, a := range analyzers {
		if a.Finish == nil {
			continue
		}
		report := func(pos token.Position, msg string) {
			out = append(out, Finding{Analyzer: a.Name, Position: pos, Message: msg})
		}
		if err := a.Finish(facts, report); err != nil {
			return nil, fmt.Errorf("analysis: %s finish: %w", a.Name, err)
		}
	}
	out = filterIgnored(out, ignores)
	sort.Slice(out, func(i, j int) bool {
		pi, pj := out[i].Position, out[j].Position
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out, nil
}

// RunPatterns loads the patterns and runs the suite over them.
func RunPatterns(cfg LoadConfig, patterns []string, analyzers []*Analyzer) ([]Finding, error) {
	pkgs, err := Load(cfg, patterns...)
	if err != nil {
		return nil, err
	}
	return RunAnalyzers(pkgs, analyzers)
}

// Vet loads the patterns, runs the full suite, and writes one line per
// finding to w. It returns the number of findings; a non-nil error means
// loading or an analyzer failed, not that findings exist.
func Vet(w io.Writer, cfg LoadConfig, patterns []string, analyzers []*Analyzer) (int, error) {
	findings, err := RunPatterns(cfg, patterns, analyzers)
	if err != nil {
		return 0, err
	}
	for _, f := range findings {
		fmt.Fprintln(w, f)
	}
	return len(findings), nil
}

// jsonFinding is the machine-readable projection of a Finding used by
// sgvet -json and the CI report artifact.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// WriteJSON renders the findings as an indented JSON array (empty slice,
// not null, when there are none) followed by a newline.
func WriteJSON(w io.Writer, findings []Finding) error {
	recs := make([]jsonFinding, 0, len(findings))
	for _, f := range findings {
		recs = append(recs, jsonFinding{
			File:     f.Position.Filename,
			Line:     f.Position.Line,
			Column:   f.Position.Column,
			Analyzer: f.Analyzer,
			Message:  f.Message,
		})
	}
	b, err := json.MarshalIndent(recs, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}
