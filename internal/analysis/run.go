package analysis

import (
	"fmt"
	"go/token"
	"io"
	"sort"
)

// A Finding is a positioned diagnostic attributed to an analyzer, as
// produced by running a suite over loaded packages.
type Finding struct {
	// Analyzer is the name of the analyzer that fired.
	Analyzer string
	// Position is the resolved source position.
	Position token.Position
	// Message is the diagnostic text.
	Message string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s [%s]", f.Position, f.Message, f.Analyzer)
}

// RunAnalyzers applies each analyzer to each package and returns the
// findings sorted by file, line, column and analyzer name. A nil analyzer
// error list means the run itself succeeded; individual findings are not
// errors.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	var out []Finding
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Syntax,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				Module:    pkg.Module,
			}
			pass.report = func(d Diagnostic) {
				out = append(out, Finding{
					Analyzer: a.Name,
					Position: pkg.Fset.Position(d.Pos),
					Message:  d.Message,
				})
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.PkgPath, err)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		pi, pj := out[i].Position, out[j].Position
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out, nil
}

// Vet loads the patterns, runs the full suite, and writes one line per
// finding to w. It returns the number of findings; a non-nil error means
// loading or an analyzer failed, not that findings exist.
func Vet(w io.Writer, cfg LoadConfig, patterns []string, analyzers []*Analyzer) (int, error) {
	pkgs, err := Load(cfg, patterns...)
	if err != nil {
		return 0, err
	}
	findings, err := RunAnalyzers(pkgs, analyzers)
	if err != nil {
		return 0, err
	}
	for _, f := range findings {
		fmt.Fprintln(w, f)
	}
	return len(findings), nil
}
