package analysis_test

import (
	"testing"

	"nestedsg/internal/analysis"
	"nestedsg/internal/analysis/analysistest"
)

// TestLockGuard exercises the guardedby discipline on the fixture: the
// defer-unlock, explicit-unlock, RLock-for-read, early-return, fresh
// constructor and //sgvet:holds paths must stay silent, and each
// violation shape must fire.
func TestLockGuard(t *testing.T) {
	analysistest.Run(t, ".", analysis.LockGuard, "./testdata/src/lockguard")
}

// TestLockGuardAdopted pins the annotated production packages at zero
// findings. Server, sim and client carry //sgvet:guardedby on every
// mutex-protected field, so any unguarded access added later fails here
// (and in `make sgvet`) rather than intermittently under -race.
func TestLockGuardAdopted(t *testing.T) {
	for _, pattern := range []string{
		"nestedsg/internal/server",
		"nestedsg/internal/sim",
		"nestedsg/internal/client",
		"nestedsg/internal/core",
	} {
		t.Run(pattern, func(t *testing.T) {
			analysistest.Run(t, ".", analysis.LockGuard, pattern)
		})
	}
}
