package analysis_test

import (
	"testing"

	"nestedsg/internal/analysis"
	"nestedsg/internal/analysis/analysistest"
)

// TestNoEventLiteral checks that foreign composite literals of the
// protected structs are flagged while constructor calls — and the home
// packages event and spec themselves — stay silent.
func TestNoEventLiteral(t *testing.T) {
	for _, pattern := range []string{
		"./testdata/src/noeventliteral",
		"nestedsg/internal/event",
		"nestedsg/internal/spec",
	} {
		t.Run(pattern, func(t *testing.T) {
			analysistest.Run(t, ".", analysis.NoEventLiteral, pattern)
		})
	}
}
