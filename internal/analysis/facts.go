package analysis

// A FactStore carries analyzer-private state across the packages of one
// RunAnalyzers call. Per-package analyzers never need it; whole-program
// analyzers such as lockorder accumulate per-package facts during Run and
// combine them in Finish once every package has been visited. Slots are
// keyed by analyzer name (not pointer, which would tie the analyzer's
// initializer to itself), so analyzers cannot observe each other's facts
// without deliberately naming them.
type FactStore struct {
	slots map[string]any
}

// NewFactStore returns an empty store. RunAnalyzers creates one per call;
// tests and special drivers (LockOrderDOT) create their own.
func NewFactStore() *FactStore {
	return &FactStore{slots: make(map[string]any)}
}

// Get returns the named analyzer's fact slot, or nil.
func (s *FactStore) Get(analyzer string) any { return s.slots[analyzer] }

// Set replaces the named analyzer's fact slot.
func (s *FactStore) Set(analyzer string, v any) { s.slots[analyzer] = v }
