package analysis_test

import (
	"testing"

	"nestedsg/internal/analysis"
	"nestedsg/internal/analysis/analysistest"
)

// TestCheckedErr checks that discarded Check*/Verify*/Validate* results are
// flagged in every statement form (expression, blank assign, defer, go)
// and that consumed results — and the real core checker package — pass.
func TestCheckedErr(t *testing.T) {
	for _, pattern := range []string{
		"./testdata/src/checkederr",
		"nestedsg/internal/core",
		"nestedsg/internal/locking",
	} {
		t.Run(pattern, func(t *testing.T) {
			analysistest.Run(t, ".", analysis.CheckedErr, pattern)
		})
	}
}
