package analysis_test

import (
	"testing"

	"nestedsg/internal/analysis"
	"nestedsg/internal/analysis/analysistest"
)

// TestBehaviorImmutable checks that element writes, in-place sorts and
// copy-into on behavior parameters (including receivers and closure
// captures) are flagged, while copy-then-mutate and the event package's
// own projection operators pass.
func TestBehaviorImmutable(t *testing.T) {
	for _, pattern := range []string{
		"./testdata/src/behaviorimmutable",
		"nestedsg/internal/event",
		"nestedsg/internal/minimize",
	} {
		t.Run(pattern, func(t *testing.T) {
			analysistest.Run(t, ".", analysis.BehaviorImmutable, pattern)
		})
	}
}
