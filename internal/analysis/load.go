package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
)

// A Package is one loaded, parsed and type-checked package, ready to be
// analyzed.
type Package struct {
	// PkgPath is the import path.
	PkgPath string
	// Dir is the directory holding the sources.
	Dir string
	// Fset maps positions; it is shared by all packages of one Load call.
	Fset *token.FileSet
	// Syntax is the parsed source files, in GoFiles order.
	Syntax []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// TypesInfo is the resolution produced by the type checker.
	TypesInfo *types.Info
	// Module is the module path the package belongs to.
	Module string
}

// listedPackage is the subset of `go list -json` output the loader uses.
type listedPackage struct {
	ImportPath string
	Dir        string
	Export     string
	Standard   bool
	DepOnly    bool
	GoFiles    []string
	Module     *struct{ Path string }
	Error      *struct{ Err string }
}

// LoadConfig configures Load.
type LoadConfig struct {
	// Dir is the working directory for the underlying `go list` invocation;
	// it must lie inside the module. Empty means the current directory.
	Dir string
}

// Load resolves the go-list patterns to packages, builds export data for
// their dependencies, and parses and type-checks each matched package from
// source.
//
// The loader shells out to `go list -export -deps -json`, which compiles
// (or reuses from the build cache) export data for every dependency, then
// type-checks each target package with go/types, resolving imports through
// the standard library's gc export-data importer. This works fully offline
// and needs nothing beyond the Go toolchain: it is a miniature, two-pass
// replacement for golang.org/x/tools/go/packages.
//
// Packages in directories named "testdata" are never matched by `...`
// patterns but may be named explicitly, which is how the analysis tests
// load their fixtures. _test.go files are not loaded; sgvet analyzes
// shipped code only (test sources deliberately build malformed values to
// exercise the runtime checkers).
func Load(cfg LoadConfig, patterns ...string) ([]*Package, error) {
	listed, err := goList(cfg.Dir, patterns)
	if err != nil {
		return nil, err
	}

	// Export data for every dependency (and target), keyed by import path.
	exports := make(map[string]string)
	var targets []*listedPackage
	for _, lp := range listed {
		if lp.Error != nil {
			return nil, fmt.Errorf("analysis: load %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
		if !lp.DepOnly {
			targets = append(targets, lp)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("analysis: no export data for %q", path)
		}
		return os.Open(f)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)

	var out []*Package
	for _, lp := range targets {
		var files []*ast.File
		for _, name := range lp.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, fmt.Errorf("analysis: parse %s: %w", name, err)
			}
			files = append(files, f)
		}
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Implicits:  make(map[ast.Node]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Scopes:     make(map[ast.Node]*types.Scope),
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(lp.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("analysis: type-check %s: %w", lp.ImportPath, err)
		}
		mod := ""
		if lp.Module != nil {
			mod = lp.Module.Path
		}
		out = append(out, &Package{
			PkgPath:   lp.ImportPath,
			Dir:       lp.Dir,
			Fset:      fset,
			Syntax:    files,
			Types:     tpkg,
			TypesInfo: info,
			Module:    mod,
		})
	}
	return out, nil
}

// goList runs `go list -export -deps -json` on the patterns and decodes the
// JSON stream.
func goList(dir string, patterns []string) ([]*listedPackage, error) {
	args := append([]string{"list", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("analysis: go list %v: %w\n%s", patterns, err, stderr.String())
	}
	var out []*listedPackage
	dec := json.NewDecoder(&stdout)
	for {
		var lp listedPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decode go list output: %w", err)
		}
		out = append(out, &lp)
	}
	return out, nil
}
