package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// TnameCompare forbids comparing transaction names by anything other than
// their interned identity.
//
// The tname package interns every transaction and object name exactly once,
// so TxID/ObjID equality (==) IS name equality — that is the whole point of
// interning (tname package doc). Two anti-patterns defeat it:
//
//   - comparing rendered names, e.g. tr.Name(a) == tr.Name(b) or
//     tr.Label(a) != tr.Label(b): the string forms are for humans and
//     traces; labels are not unique across parents, and Name() is O(depth).
//     Compare the IDs, or use Tree.IsAncestor/IsOrdered for tree questions.
//   - comparing an ID against a bare integer literal, e.g. tx == 3 or
//     obj != -1: interned IDs are allocation-order artifacts with no stable
//     meaning across trees. The only IDs with fixed values are the declared
//     constants tname.Root, tname.None and tname.NoObj — name them.
var TnameCompare = &Analyzer{
	Name: "tnamecompare",
	Doc:  "transaction names must be compared by interned ID, not rendered string or magic literal",
	Run:  runTnameCompare,
}

const tnamePkgPath = "nestedsg/internal/tname"

// renderMethods are the (*tname.Tree) methods that render a name to a
// human-readable string.
var renderMethods = map[string]bool{"Name": true, "Label": true, "ObjectLabel": true}

func runTnameCompare(pass *Pass) error {
	pass.Preorder(func(n ast.Node) {
		bin, ok := n.(*ast.BinaryExpr)
		if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
			return
		}
		if isNameRendering(pass, bin.X) && isNameRendering(pass, bin.Y) {
			pass.Reportf(bin.Pos(), "comparing rendered transaction names; compare interned IDs with == or use Tree.IsAncestor/IsOrdered")
			return
		}
		if (isInternedID(pass, bin.X) && isBareIntLiteral(bin.Y)) ||
			(isInternedID(pass, bin.Y) && isBareIntLiteral(bin.X)) {
			pass.Reportf(bin.Pos(), "comparing an interned tname ID against a bare literal; use tname.Root, tname.None or tname.NoObj")
		}
	})
	return nil
}

// isNameRendering reports whether e is a call to a name-rendering method of
// *tname.Tree.
func isNameRendering(pass *Pass, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	fn := calleeFunc(pass, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != tnamePkgPath {
		return false
	}
	if !renderMethods[fn.Name()] {
		return false
	}
	recv := fn.Type().(*types.Signature).Recv()
	return recv != nil
}

// isInternedID reports whether e has type tname.TxID or tname.ObjID.
func isInternedID(pass *Pass, e ast.Expr) bool {
	named, ok := pass.TypeOf(e).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != tnamePkgPath {
		return false
	}
	return obj.Name() == "TxID" || obj.Name() == "ObjID"
}

// isBareIntLiteral reports whether e is an integer literal, possibly
// negated, that is not spelled as a named constant.
func isBareIntLiteral(e ast.Expr) bool {
	e = ast.Unparen(e)
	if u, ok := e.(*ast.UnaryExpr); ok && (u.Op == token.SUB || u.Op == token.ADD) {
		e = ast.Unparen(u.X)
	}
	lit, ok := e.(*ast.BasicLit)
	return ok && lit.Kind == token.INT
}
