package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// This file is the intraprocedural lock-set dataflow engine shared by the
// lockguard and lockorder analyzers. It walks a function body statement by
// statement, tracking which mutexes are held at each point:
//
//   - m.Lock()/m.RLock() add m to the held set (write/read mode);
//     m.Unlock()/m.RUnlock() remove it
//   - defer m.Unlock() keeps m held for the rest of the function
//   - branches fork the set and merge by intersection (a lock is held
//     after an if only when both arms keep it); arms ending in return
//     drop out of the merge
//   - //sgvet:holds annotations seed the set for functions and closures
//     whose callers guarantee locks are already held
//
// The analysis is deliberately flow-insensitive across calls and loops:
// a loop body is walked once with the entry set, and calls do not change
// the held set. Balanced lock usage — which is what the analyzers
// ultimately enforce — makes this approximation exact for this codebase;
// unbalanced loops degrade to over-approximating the held set, which can
// mask a finding but never invents one.

// A lockKey canonically identifies one lock expression within a function
// body: the root object (a local, parameter, receiver or package-level
// variable) plus the field selector path from it. `sn.s.mu` and `s.mu`
// inside different functions compare equal only when they root at the
// same types.Object, so distinct instances are never conflated.
type lockKey struct {
	root types.Object
	path string // ".mu", ".s.mu", ... ; empty when the root is the lock
}

func (k lockKey) display() string {
	if k.root == nil {
		return "<unknown>"
	}
	return k.root.Name() + k.path
}

// lockMode distinguishes read (RLock) from write (Lock) acquisition.
type lockMode uint8

const (
	lockRead lockMode = iota + 1
	lockWrite
)

// heldLock is one member of a held set: the acquisition mode plus the
// instance-independent type key ("internal/server.Server.mu") used by
// the lock-order graph.
type heldLock struct {
	mode    lockMode
	typeKey string
}

// heldSet maps each held lock to how it is held.
type heldSet map[lockKey]heldLock

func (h heldSet) clone() heldSet {
	out := make(heldSet, len(h))
	for k, v := range h {
		out[k] = v
	}
	return out
}

// intersectHeld merges two branch outcomes: a lock survives only if both
// arms hold it, at the weaker of the two modes.
func intersectHeld(a, b heldSet) heldSet {
	out := make(heldSet)
	for k, va := range a {
		if vb, ok := b[k]; ok {
			m := va.mode
			if vb.mode < m {
				m = vb.mode
			}
			out[k] = heldLock{mode: m, typeKey: va.typeKey}
		}
	}
	return out
}

// canonExpr reduces an expression to a lockKey, unwrapping parens,
// address-of and dereference. It fails (ok=false) for anything that is
// not a chain of selectors over an identifier — map indexes, call
// results, and so on have no stable identity within the function.
func canonExpr(pass *Pass, e ast.Expr) (lockKey, bool) {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := pass.ObjectOf(x)
		if obj == nil {
			return lockKey{}, false
		}
		return lockKey{root: obj}, true
	case *ast.SelectorExpr:
		// Qualified package identifiers (pkg.Var) resolve to the var
		// itself, not a field path.
		if id, ok := ast.Unparen(x.X).(*ast.Ident); ok {
			if _, isPkg := pass.ObjectOf(id).(*types.PkgName); isPkg {
				obj := pass.ObjectOf(x.Sel)
				if obj == nil {
					return lockKey{}, false
				}
				return lockKey{root: obj}, true
			}
		}
		base, ok := canonExpr(pass, x.X)
		if !ok {
			return lockKey{}, false
		}
		base.path += "." + x.Sel.Name
		return base, true
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			return canonExpr(pass, x.X)
		}
	case *ast.StarExpr:
		return canonExpr(pass, x.X)
	}
	return lockKey{}, false
}

// isSyncMutex reports whether t (possibly behind a pointer) is
// sync.Mutex or sync.RWMutex; rw distinguishes the two.
func isSyncMutex(t types.Type) (rw, ok bool) {
	if t == nil {
		return false, false
	}
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed {
		return false, false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false, false
	}
	switch obj.Name() {
	case "Mutex":
		return false, true
	case "RWMutex":
		return true, true
	}
	return false, false
}

// relPkg shortens a package path by stripping the module prefix, so lock
// type keys read "internal/server.Server.mu" rather than repeating the
// module path on every node.
func relPkg(pass *Pass, pkg *types.Package) string {
	if pkg == nil {
		return ""
	}
	p := pkg.Path()
	if strings.HasPrefix(p, pass.Module+"/") {
		return p[len(pass.Module)+1:]
	}
	return p
}

// lockTypeKey names a lock by its declaration site rather than its
// instance: "pkg.Struct.field" for a struct field, "pkg.var" for a
// package-level mutex, and a position-qualified form for locals (which
// must not be conflated across functions).
func lockTypeKey(pass *Pass, e ast.Expr) string {
	e = ast.Unparen(e)
	if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.AND {
		e = ast.Unparen(u.X)
	}
	switch x := e.(type) {
	case *ast.SelectorExpr:
		if sel, ok := pass.TypesInfo.Selections[x]; ok && sel.Kind() == types.FieldVal {
			f := sel.Obj()
			recv := sel.Recv()
			if p, isPtr := recv.(*types.Pointer); isPtr {
				recv = p.Elem()
			}
			owner := ""
			if n, isNamed := recv.(*types.Named); isNamed {
				owner = n.Obj().Name() + "."
			}
			return relPkg(pass, f.Pkg()) + "." + owner + f.Name()
		}
		if obj := pass.ObjectOf(x.Sel); obj != nil {
			return relPkg(pass, obj.Pkg()) + "." + obj.Name()
		}
	case *ast.Ident:
		obj := pass.ObjectOf(x)
		if obj == nil {
			break
		}
		if obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
			return relPkg(pass, obj.Pkg()) + "." + obj.Name()
		}
		pos := pass.Fset.Position(obj.Pos())
		return fmt.Sprintf("%s.%s@L%d", relPkg(pass, obj.Pkg()), obj.Name(), pos.Line)
	}
	return "<unknown>"
}

// A lockOp is one classified mutex call: which lock, acquire or release,
// read or write.
type lockOp struct {
	key     lockKey
	typeKey string
	acquire bool
	mode    lockMode
	pos     token.Pos
}

// classifyLockCall recognizes m.Lock/RLock/Unlock/RUnlock calls on
// sync.Mutex/sync.RWMutex receivers. TryLock variants are deliberately
// not classified: their conditional result cannot be tracked, so they
// fall through as ordinary calls and never extend the held set.
func classifyLockCall(pass *Pass, call *ast.CallExpr) (lockOp, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return lockOp{}, false
	}
	var acquire bool
	var mode lockMode
	switch sel.Sel.Name {
	case "Lock":
		acquire, mode = true, lockWrite
	case "RLock":
		acquire, mode = true, lockRead
	case "Unlock":
		acquire, mode = false, lockWrite
	case "RUnlock":
		acquire, mode = false, lockRead
	default:
		return lockOp{}, false
	}
	if _, isMutex := isSyncMutex(pass.TypeOf(sel.X)); !isMutex {
		return lockOp{}, false
	}
	key, ok := canonExpr(pass, sel.X)
	if !ok {
		return lockOp{}, false
	}
	return lockOp{
		key:     key,
		typeKey: lockTypeKey(pass, sel.X),
		acquire: acquire,
		mode:    mode,
		pos:     call.Pos(),
	}, true
}

// parseHolds resolves one //sgvet:holds argument list ("e.mu, s.mu:r")
// against the scope of the annotated function. Each entry is a selector
// chain naming a mutex visible in that scope; a ":r" suffix means the
// caller holds only the read lock. Unresolvable or non-mutex entries are
// returned as problems for the caller to report.
func parseHolds(pass *Pass, scope *types.Scope, pos token.Pos, arg string) (heldSet, []string) {
	held := make(heldSet)
	var problems []string
	for _, item := range strings.Split(arg, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		mode := lockWrite
		if strings.HasSuffix(item, ":r") {
			mode = lockRead
			item = strings.TrimSuffix(item, ":r")
		}
		parts := strings.Split(item, ".")
		_, obj := scope.LookupParent(parts[0], pos)
		if obj == nil {
			problems = append(problems, fmt.Sprintf("%q does not resolve in this scope", item))
			continue
		}
		key := lockKey{root: obj}
		cur := obj.Type()
		typeKey := ""
		if obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
			typeKey = relPkg(pass, obj.Pkg()) + "." + obj.Name()
		} else {
			p := pass.Fset.Position(obj.Pos())
			typeKey = fmt.Sprintf("%s.%s@L%d", relPkg(pass, obj.Pkg()), obj.Name(), p.Line)
		}
		bad := false
		for _, fieldName := range parts[1:] {
			t := cur
			if p, isPtr := t.(*types.Pointer); isPtr {
				t = p.Elem()
			}
			owner := ""
			if n, isNamed := t.(*types.Named); isNamed {
				owner = n.Obj().Name() + "."
			}
			fobj, _, _ := types.LookupFieldOrMethod(t, true, pass.Pkg, fieldName)
			fvar, isVar := fobj.(*types.Var)
			if !isVar {
				problems = append(problems, fmt.Sprintf("%q: no field %s on %s", item, fieldName, cur))
				bad = true
				break
			}
			key.path += "." + fieldName
			typeKey = relPkg(pass, fvar.Pkg()) + "." + owner + fieldName
			cur = fvar.Type()
		}
		if bad {
			continue
		}
		if _, isMutex := isSyncMutex(cur); !isMutex {
			problems = append(problems, fmt.Sprintf("%q is not a sync.Mutex or sync.RWMutex", item))
			continue
		}
		held[key] = heldLock{mode: mode, typeKey: typeKey}
	}
	return held, problems
}

// A lockVisitor receives the walker's observations. Any callback may be
// nil. async is true inside closures launched by a go statement, whose
// work does not run under the spawning goroutine's locks.
type lockVisitor struct {
	// acquire fires when a mutex is taken, with the set already held.
	acquire func(op lockOp, held heldSet, async bool)
	// access fires for every field selector, with write=true when it is
	// an assignment target (including map/slice element writes through
	// the field).
	access func(sel *ast.SelectorExpr, write bool, held heldSet)
	// call fires for every call that is not a lock operation.
	call func(call *ast.CallExpr, held heldSet, async bool)
	// badAnnotation fires for malformed //sgvet:holds annotations on
	// closures; only one analyzer should set it to avoid duplicates.
	badAnnotation func(pos token.Pos, msg string)
}

type lockWalker struct {
	pass        *Pass
	v           lockVisitor
	async       bool
	holdsByLine map[int]string // trailing //sgvet:holds per source line
}

// walkLockFunc runs the lock-set dataflow over one function body with the
// given initial held set. file is the enclosing source file; it supplies
// the //sgvet:holds annotations for closures nested in body (written as a
// trailing comment on the closure's opening line).
func walkLockFunc(pass *Pass, file *ast.File, body *ast.BlockStmt, seed heldSet, v lockVisitor) {
	w := &lockWalker{pass: pass, v: v, holdsByLine: make(map[int]string)}
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if arg, ok := annotationArg(&ast.CommentGroup{List: []*ast.Comment{c}}, "holds"); ok {
				w.holdsByLine[pass.Fset.Position(c.Pos()).Line] = arg
			}
		}
	}
	if seed == nil {
		seed = make(heldSet)
	}
	w.block(body.List, seed.clone())
}

// block walks a statement list, returning the held set at its end and
// whether control definitely left the function (return/branch).
func (w *lockWalker) block(list []ast.Stmt, held heldSet) (heldSet, bool) {
	for _, s := range list {
		var term bool
		held, term = w.stmt(s, held)
		if term {
			return held, true
		}
	}
	return held, false
}

func (w *lockWalker) stmt(s ast.Stmt, held heldSet) (heldSet, bool) {
	switch x := s.(type) {
	case *ast.ExprStmt:
		if call, ok := x.X.(*ast.CallExpr); ok {
			if op, ok := classifyLockCall(w.pass, call); ok {
				w.applyLockOp(op, held)
				return held, false
			}
		}
		w.scanExpr(x.X, held)
	case *ast.AssignStmt:
		for _, rhs := range x.Rhs {
			w.scanExpr(rhs, held)
		}
		for _, lhs := range x.Lhs {
			w.scanLValue(lhs, held)
		}
	case *ast.IncDecStmt:
		w.scanLValue(x.X, held)
	case *ast.SendStmt:
		w.scanExpr(x.Chan, held)
		w.scanExpr(x.Value, held)
	case *ast.DeclStmt:
		if gd, ok := x.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.scanExpr(v, held)
					}
				}
			}
		}
	case *ast.DeferStmt:
		if op, ok := classifyLockCall(w.pass, x.Call); ok {
			// defer mu.Unlock(): the lock stays held to function end, so
			// the held set is simply left alone. A deferred Lock would be
			// pathological; it is ignored rather than modeled.
			_ = op
			return held, false
		}
		w.callStmt(x.Call, held, false)
	case *ast.GoStmt:
		w.callStmt(x.Call, held, true)
	case *ast.ReturnStmt:
		for _, r := range x.Results {
			w.scanExpr(r, held)
		}
		return held, true
	case *ast.BranchStmt:
		// break/continue/goto end this path for merge purposes; the
		// over-approximation can only widen the held set afterwards.
		return held, true
	case *ast.BlockStmt:
		return w.block(x.List, held)
	case *ast.LabeledStmt:
		return w.stmt(x.Stmt, held)
	case *ast.IfStmt:
		if x.Init != nil {
			held, _ = w.stmt(x.Init, held)
		}
		w.scanExpr(x.Cond, held)
		thenOut, thenTerm := w.block(x.Body.List, held.clone())
		elseOut := held.clone()
		elseTerm := false
		if x.Else != nil {
			elseOut, elseTerm = w.stmt(x.Else, held.clone())
		}
		switch {
		case thenTerm && elseTerm:
			return held, true
		case thenTerm:
			return elseOut, false
		case elseTerm:
			return thenOut, false
		default:
			return intersectHeld(thenOut, elseOut), false
		}
	case *ast.ForStmt:
		if x.Init != nil {
			held, _ = w.stmt(x.Init, held)
		}
		w.scanExpr(x.Cond, held)
		bodyOut, bodyTerm := w.block(x.Body.List, held.clone())
		if x.Post != nil {
			w.stmt(x.Post, bodyOut)
		}
		if bodyTerm {
			return held, false
		}
		return intersectHeld(held, bodyOut), false
	case *ast.RangeStmt:
		w.scanExpr(x.X, held)
		if x.Key != nil {
			w.scanLValue(x.Key, held)
		}
		if x.Value != nil {
			w.scanLValue(x.Value, held)
		}
		bodyOut, bodyTerm := w.block(x.Body.List, held.clone())
		if bodyTerm {
			return held, false
		}
		return intersectHeld(held, bodyOut), false
	case *ast.SwitchStmt:
		if x.Init != nil {
			held, _ = w.stmt(x.Init, held)
		}
		w.scanExpr(x.Tag, held)
		return w.clauses(x.Body.List, held)
	case *ast.TypeSwitchStmt:
		if x.Init != nil {
			held, _ = w.stmt(x.Init, held)
		}
		w.stmt(x.Assign, held)
		return w.clauses(x.Body.List, held)
	case *ast.SelectStmt:
		return w.clauses(x.Body.List, held)
	}
	return held, false
}

// clauses merges the arms of a switch/type-switch/select. The entry set
// joins the merge unless a default/(any select arm) guarantees one arm
// runs; break-terminated arms drop out, widening the result.
func (w *lockWalker) clauses(list []ast.Stmt, held heldSet) (heldSet, bool) {
	var outs []heldSet
	covered := false
	for _, cc := range list {
		var body []ast.Stmt
		h2 := held.clone()
		switch c := cc.(type) {
		case *ast.CaseClause:
			if c.List == nil {
				covered = true
			}
			for _, e := range c.List {
				w.scanExpr(e, h2)
			}
			body = c.Body
		case *ast.CommClause:
			covered = true // select blocks until some arm runs
			if c.Comm != nil {
				h2, _ = w.stmt(c.Comm, h2)
			}
			body = c.Body
		default:
			continue
		}
		if out, term := w.block(body, h2); !term {
			outs = append(outs, out)
		}
	}
	if !covered {
		outs = append(outs, held)
	}
	if len(outs) == 0 {
		return held, true
	}
	merged := outs[0]
	for _, o := range outs[1:] {
		merged = intersectHeld(merged, o)
	}
	return merged, false
}

func (w *lockWalker) applyLockOp(op lockOp, held heldSet) {
	if op.acquire {
		if w.v.acquire != nil {
			w.v.acquire(op, held, w.async)
		}
		held[op.key] = heldLock{mode: op.mode, typeKey: op.typeKey}
		return
	}
	delete(held, op.key)
}

// callStmt handles go/defer call statements: arguments are evaluated now
// (under the current held set) while a literal closure body runs later —
// with no inherited locks when launched by go.
func (w *lockWalker) callStmt(call *ast.CallExpr, held heldSet, async bool) {
	if w.v.call != nil {
		w.v.call(call, held, async || w.async)
	}
	for _, arg := range call.Args {
		w.scanExpr(arg, held)
	}
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		w.funcLit(lit, async)
		return
	}
	w.scanExpr(call.Fun, held)
}

// funcLit walks a closure body with a fresh held set, seeded only by an
// explicit //sgvet:holds trailing comment on its opening line. Closures
// may run on other goroutines or at other times, so inheriting the
// lexical held set would be unsound.
func (w *lockWalker) funcLit(lit *ast.FuncLit, async bool) {
	seed := make(heldSet)
	if arg, ok := w.holdsByLine[w.pass.Fset.Position(lit.Pos()).Line]; ok {
		scope := w.pass.TypesInfo.Scopes[lit.Type]
		var problems []string
		seed, problems = parseHolds(w.pass, scope, lit.Body.Pos(), arg)
		if w.v.badAnnotation != nil {
			for _, p := range problems {
				w.v.badAnnotation(lit.Pos(), "bad //sgvet:holds annotation: "+p)
			}
		}
	}
	saved := w.async
	w.async = w.async || async
	w.block(lit.Body.List, seed)
	w.async = saved
}

// scanExpr reports field accesses (as reads) and calls within e, walking
// nested closures separately.
func (w *lockWalker) scanExpr(e ast.Expr, held heldSet) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			w.funcLit(x, false)
			return false
		case *ast.CallExpr:
			if w.v.call != nil {
				w.v.call(x, held, w.async)
			}
		case *ast.SelectorExpr:
			if w.v.access != nil {
				w.v.access(x, false, held)
			}
		}
		return true
	})
}

// scanLValue reports the written-to field of an assignment target, then
// scans the rest of the target as reads. Writing through a map or slice
// element (s.objs[id] = o) counts as a write of the field that holds the
// container.
func (w *lockWalker) scanLValue(e ast.Expr, held heldSet) {
	switch x := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		if w.v.access != nil {
			w.v.access(x, true, held)
		}
		w.scanExpr(x.X, held)
	case *ast.IndexExpr:
		w.scanExpr(x.Index, held)
		w.scanLValue(x.X, held)
	case *ast.StarExpr:
		w.scanExpr(x.X, held)
	default:
		w.scanExpr(e, held)
	}
}
