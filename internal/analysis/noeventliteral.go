package analysis

import (
	"go/ast"
	"go/types"
)

// protectedStruct is a struct type whose invariants are established by its
// constructor functions; composite literals outside the home package bypass
// them.
type protectedStruct struct {
	pkgPath string
	name    string
	// hint names the constructors to use instead.
	hint string
}

// protectedStructs lists the invariant-carrying value types of the model
// packages. Extend this table when a new package grows a constructor-guarded
// type.
var protectedStructs = []protectedStruct{
	// Event's Obj field must be NoObj for every kind except the INFORM
	// inputs (event.Event doc); the constructors maintain that pairing.
	{"nestedsg/internal/event", "Event", "event.NewEvent, event.NewValEvent or event.NewInform"},
	// Value is a discriminated union: only the fields selected by Kind are
	// meaningful, and the constructors never set the others.
	{"nestedsg/internal/spec", "Value", "spec.Nil, spec.OK, spec.Int, spec.Bool or spec.Str"},
}

// NoEventLiteral forbids composite literals of constructor-guarded structs
// outside their home package.
//
// event.Event couples its Kind to its Obj field (only INFORM events carry
// an object); spec.Value is a sum type whose non-selected fields must stay
// zero so that == comparison and map-key use remain meaningful. The
// constructors (NewEvent/NewValEvent/NewInform, spec.Int/Bool/Str/...)
// maintain those couplings; a struct literal in a client package can
// produce values no constructor would, which then flow into checkers that
// assume the invariant (Behavior.Equal, trace encoding, conflict tables).
var NoEventLiteral = &Analyzer{
	Name: "noeventliteral",
	Doc:  "invariant-carrying structs must be built with their constructors outside their home package",
	Run:  runNoEventLiteral,
}

func runNoEventLiteral(pass *Pass) error {
	pass.Preorder(func(n ast.Node) {
		lit, ok := n.(*ast.CompositeLit)
		if !ok {
			return
		}
		t := pass.TypeOf(lit)
		if t == nil {
			return
		}
		named, ok := t.(*types.Named)
		if !ok {
			return
		}
		obj := named.Obj()
		if obj.Pkg() == nil || obj.Pkg().Path() == pass.Pkg.Path() {
			return
		}
		for _, ps := range protectedStructs {
			if obj.Pkg().Path() == ps.pkgPath && obj.Name() == ps.name {
				pass.Reportf(lit.Pos(), "composite literal of %s.%s bypasses its constructors; use %s",
					obj.Pkg().Name(), obj.Name(), ps.hint)
				return
			}
		}
	})
	return nil
}
