// Package analysis implements a small, dependency-free analogue of
// golang.org/x/tools/go/analysis together with the sgvet analyzer suite.
//
// The repo's correctness story (Theorem 8/19, Lemmas 9–13 and 20–22 of
// Fekete, Lynch & Weihl) is enforced at runtime by checkers such as
// core.Check, simple.CheckWellFormed and Moss.CheckChainInvariant. Nothing
// in the type system, however, stops a future change from adding an event
// Kind without updating every switch, hand-assembling an event.Event that
// no constructor would produce, or silently dropping the error returned by
// an invariant checker. The analyzers in this package push those
// well-formedness obligations to build time; cmd/sgvet runs them over the
// whole module as part of tier-1 verification.
//
// The module has no third-party dependencies, so instead of importing
// golang.org/x/tools this package re-implements the small slice of its API
// that the analyzers need: an Analyzer/Pass/Diagnostic triple (analysis.go),
// a package loader built on `go list -export` plus the standard library's
// gc export-data importer (load.go), a driver that runs analyzers over
// loaded packages (run.go), and a `// want`-comment test harness
// (analysistest/). Each analyzer lives in its own file and documents the
// invariant it enforces; internal/analysis/README.md is the catalogue.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// An Analyzer is one static check. Run inspects a single type-checked
// package and reports diagnostics through the Pass.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and test assertions. It
	// must be a valid identifier.
	Name string
	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
	// Finish, if non-nil, runs once per RunAnalyzers call after every
	// package has been analyzed. Whole-program analyzers accumulate facts
	// in the Pass's FactStore during Run and report cross-package
	// diagnostics here. Positions are pre-resolved because Finish has no
	// single package (and therefore no FileSet) in scope.
	Finish func(facts *FactStore, report func(token.Position, string)) error
}

func (a *Analyzer) String() string { return a.Name }

// A Pass provides one analyzer run with a single type-checked package and
// a sink for diagnostics.
type Pass struct {
	// Analyzer is the check being run.
	Analyzer *Analyzer
	// Fset maps token positions of Files to file/line/column.
	Fset *token.FileSet
	// Files is the package's parsed syntax.
	Files []*ast.File
	// Pkg is the package's type information.
	Pkg *types.Package
	// TypesInfo holds type and object resolution for Files.
	TypesInfo *types.Info
	// Module is the module path the package belongs to ("nestedsg").
	// Analyzers use it to restrict themselves to first-party types.
	Module string
	// Dir is the directory holding the package sources. Analyzers that
	// shell back out to the toolchain (hotalloc) run from here.
	Dir string
	// Facts is the run-wide store for cross-package analyzers; nil-safe
	// helpers are not provided because the driver always sets it.
	Facts *FactStore

	report func(Diagnostic)
}

// Report emits one diagnostic.
func (p *Pass) Report(d Diagnostic) { p.report(d) }

// Reportf emits a diagnostic at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// TypeOf returns the type of expression e, or nil if unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.TypesInfo.TypeOf(e) }

// ObjectOf returns the object denoted by identifier id, or nil.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	return p.TypesInfo.ObjectOf(id)
}

// InModule reports whether pkgPath is a package of the module under
// analysis (as opposed to the standard library or, hypothetically, a
// third-party dependency).
func (p *Pass) InModule(pkgPath string) bool {
	return pkgPath == p.Module || strings.HasPrefix(pkgPath, p.Module+"/")
}

// Preorder calls f for every node of every file in the pass, in depth-first
// preorder.
func (p *Pass) Preorder(f func(ast.Node)) {
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			if n != nil {
				f(n)
			}
			return true
		})
	}
}

// A Diagnostic is one finding of an analyzer.
type Diagnostic struct {
	// Pos is the position of the offending syntax.
	Pos token.Pos
	// Message describes the finding. By convention it is lowercase and has
	// no trailing period.
	Message string
}

// All returns the sgvet analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		ExhaustiveKind,
		NoEventLiteral,
		CheckedErr,
		TnameCompare,
		BehaviorImmutable,
		SimDeterminism,
		LockGuard,
		LockOrder,
		HotAlloc,
	}
}
