package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// ExhaustiveKind enforces exhaustive switches over the module's enum types.
//
// The event loop of every checker dispatches on enum-like discriminators:
// event.Kind (the paper's seven serial actions plus the two INFORM inputs),
// core.EdgeKind, spec.OpKind, spec.ValueKind. Adding a constant to one of
// those enumerations must force a revisit of every switch, otherwise the
// new kind silently falls through — the exact failure mode that would let a
// new action slip past CheckWellFormed or the SG construction unnoticed.
//
// A type is treated as enum-like when it is a defined type of this module
// whose underlying type is an unsigned integer and whose home package
// declares at least two constants of the type. (The signed index types
// tname.TxID and tname.ObjID are identifiers with an open domain, not
// enumerations, and are deliberately excluded by the signedness rule.)
// Every switch on such a type must either list a case for every declared
// constant value or carry an explicit default clause — even an empty
// default, which documents that ignoring the remaining kinds is a decision
// rather than an accident.
var ExhaustiveKind = &Analyzer{
	Name: "exhaustivekind",
	Doc:  "switches on module enum types must cover every constant or have an explicit default",
	Run:  runExhaustiveKind,
}

func runExhaustiveKind(pass *Pass) error {
	pass.Preorder(func(n ast.Node) {
		sw, ok := n.(*ast.SwitchStmt)
		if !ok || sw.Tag == nil {
			return
		}
		tagType := pass.TypeOf(sw.Tag)
		named := enumLikeType(pass, tagType)
		if named == nil {
			return
		}
		consts := enumConstants(named)
		if len(consts) < 2 {
			return
		}

		covered := make(map[string]bool)
		hasDefault := false
		for _, stmt := range sw.Body.List {
			cc, ok := stmt.(*ast.CaseClause)
			if !ok {
				continue
			}
			if cc.List == nil {
				hasDefault = true
				continue
			}
			for _, e := range cc.List {
				if tv, ok := pass.TypesInfo.Types[e]; ok && tv.Value != nil {
					covered[tv.Value.ExactString()] = true
				}
			}
		}
		if hasDefault {
			return
		}

		var missing []string
		seen := make(map[string]bool)
		for _, c := range consts {
			key := c.Val().ExactString()
			if covered[key] || seen[key] {
				continue
			}
			seen[key] = true
			missing = append(missing, c.Name())
		}
		if len(missing) == 0 {
			return
		}
		typeName := named.Obj().Name()
		if pkg := named.Obj().Pkg(); pkg != nil && pkg != pass.Pkg {
			typeName = pkg.Name() + "." + typeName
		}
		pass.Reportf(sw.Pos(), "non-exhaustive switch on %s: missing %s (add the cases or an explicit default)",
			typeName, strings.Join(missing, ", "))
	})
	return nil
}

// enumLikeType returns t as a defined module type with unsigned-integer
// underlying type, or nil.
func enumLikeType(pass *Pass, t types.Type) *types.Named {
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	basic, ok := named.Underlying().(*types.Basic)
	if !ok || basic.Info()&types.IsUnsigned == 0 || basic.Info()&types.IsInteger == 0 {
		return nil
	}
	pkg := named.Obj().Pkg()
	if pkg == nil || !pass.InModule(pkg.Path()) {
		return nil
	}
	return named
}

// enumConstants returns the package-level constants declared with exactly
// the given type, sorted by value then name.
func enumConstants(named *types.Named) []*types.Const {
	scope := named.Obj().Pkg().Scope()
	var out []*types.Const
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if ok && types.Identical(c.Type(), named) {
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		vi, vj := out[i].Val(), out[j].Val()
		if cmp := constant.Compare(vi, token.LSS, vj); cmp {
			return true
		}
		if constant.Compare(vi, token.EQL, vj) {
			return out[i].Name() < out[j].Name()
		}
		return false
	})
	return out
}
