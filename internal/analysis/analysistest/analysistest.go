// Package analysistest runs an analyzer over fixture packages and checks
// its diagnostics against `// want` comments, mirroring the contract of
// golang.org/x/tools/go/analysis/analysistest on the standard library only.
//
// A fixture file marks each line on which a diagnostic is expected:
//
//	bad := event.Event{Kind: event.Create} // want `composite literal`
//
// The argument of want is a regular expression (backquoted or
// double-quoted; several may follow one want) that must match the message
// of exactly one diagnostic reported on that line. Unmatched expectations
// and unexpected diagnostics both fail the test. Fixture packages live
// under testdata/src/<analyzer>/ so that `./...` builds never see them,
// and are loaded by explicit path; they must type-check.
package analysistest

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"nestedsg/internal/analysis"
)

// expectation is one want directive: a position plus a message pattern.
type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// Run loads each pattern (a go-list package pattern, resolved relative to
// dir) and checks a's diagnostics against the fixtures' want comments.
func Run(t *testing.T, dir string, a *analysis.Analyzer, patterns ...string) {
	t.Helper()
	pkgs, err := analysis.Load(analysis.LoadConfig{Dir: dir}, patterns...)
	if err != nil {
		t.Fatalf("loading fixtures: %v", err)
	}
	findings, err := analysis.RunAnalyzers(pkgs, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	var wants []*expectation
	for _, pkg := range pkgs {
		for _, file := range pkg.Syntax {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					pos := pkg.Fset.Position(c.Pos())
					ws, err := parseWant(c.Text)
					if err != nil {
						t.Fatalf("%s: %v", pos, err)
					}
					for _, re := range ws {
						wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, pattern: re})
					}
				}
			}
		}
	}

	for _, f := range findings {
		matched := false
		for _, w := range wants {
			if w.matched || w.file != f.Position.Filename || w.line != f.Position.Line {
				continue
			}
			if w.pattern.MatchString(f.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", f.Position, f.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.pattern)
		}
	}
}

// parseWant extracts the regexps of a `// want "re" `+"`re`"+` ...`
// comment, or nil if the comment carries no want directive.
func parseWant(comment string) ([]*regexp.Regexp, error) {
	text := strings.TrimPrefix(comment, "//")
	text = strings.TrimSpace(text)
	rest, ok := strings.CutPrefix(text, "want ")
	if !ok {
		return nil, nil
	}
	var out []*regexp.Regexp
	rest = strings.TrimSpace(rest)
	for rest != "" {
		var raw, remainder string
		switch rest[0] {
		case '"':
			end := strings.Index(rest[1:], `"`)
			if end < 0 {
				return nil, fmt.Errorf("unterminated want pattern %q", rest)
			}
			var err error
			raw, err = strconv.Unquote(rest[:end+2])
			if err != nil {
				return nil, fmt.Errorf("bad want pattern %q: %v", rest[:end+2], err)
			}
			remainder = rest[end+2:]
		case '`':
			end := strings.Index(rest[1:], "`")
			if end < 0 {
				return nil, fmt.Errorf("unterminated want pattern %q", rest)
			}
			raw = rest[1 : end+1]
			remainder = rest[end+2:]
		default:
			return nil, fmt.Errorf("want patterns must be quoted or backquoted: %q", rest)
		}
		re, err := regexp.Compile(raw)
		if err != nil {
			return nil, fmt.Errorf("bad want regexp %q: %v", raw, err)
		}
		out = append(out, re)
		rest = strings.TrimSpace(remainder)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("want directive with no pattern")
	}
	return out, nil
}
