package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LockGuard enforces //sgvet:guardedby field annotations.
//
// The server's invariants (which sessions may touch the tree, the log
// buffer, the WAL writer state) are concurrency invariants: every one of
// them is phrased as "field X is only touched with mutex Y held". Until
// now that discipline lived in comments. A field annotated
//
//	tr *tname.Tree //sgvet:guardedby mu
//
// may be read only while the sibling mutex `mu` of the same struct value
// is held (the read lock of a sync.RWMutex suffices), and written only
// under the write lock. The lock-set engine (lockset.go) tracks
// Lock/RLock/Unlock/RUnlock and defer-unlock through branches and early
// returns; functions whose callers already hold locks declare it with
// //sgvet:holds, and deliberate exceptions (single-threaded construction
// and recovery, post-shutdown reads) use //sgvet:ignore with a reason.
//
// Two approximations are deliberate: values freshly allocated in the
// current function are exempt (they are unshared until published), and
// accesses through expressions with no stable identity (map lookups,
// call results) are reported as unprovable rather than guessed at.
var LockGuard = &Analyzer{
	Name: "lockguard",
	Doc:  "fields annotated //sgvet:guardedby must only be accessed with their mutex held",
	Run:  runLockGuard,
}

// guardSpec records one annotated field: the name of the sibling mutex
// field that guards it.
type guardSpec struct {
	guard string
}

func runLockGuard(pass *Pass) error {
	guards := collectGuards(pass)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			seed := make(heldSet)
			if arg, ok := annotationArg(fd.Doc, "holds"); ok {
				scope := pass.TypesInfo.Scopes[fd.Type]
				var problems []string
				seed, problems = parseHolds(pass, scope, fd.Body.Pos(), arg)
				for _, p := range problems {
					pass.Reportf(fd.Pos(), "bad //sgvet:holds annotation: %s", p)
				}
			}
			fresh := freshLocals(pass, fd.Body)
			walkLockFunc(pass, file, fd.Body, seed, lockVisitor{
				access: func(sel *ast.SelectorExpr, write bool, held heldSet) {
					checkGuardedAccess(pass, guards, fresh, sel, write, held)
				},
				badAnnotation: func(pos token.Pos, msg string) {
					pass.Reportf(pos, "%s", msg)
				},
			})
		}
	}
	return nil
}

// collectGuards finds every //sgvet:guardedby annotation in the package
// and validates that the named guard is a sibling mutex field. Guarded
// fields in this codebase are unexported, so a per-package map suffices;
// cross-package access to a guarded field is impossible without also
// exporting it (which the annotation syntax does not support).
func collectGuards(pass *Pass) map[*types.Var]guardSpec {
	guards := make(map[*types.Var]guardSpec)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				arg, ok := annotationArg(field.Doc, "guardedby")
				if !ok {
					arg, ok = annotationArg(field.Comment, "guardedby")
				}
				if !ok {
					continue
				}
				if arg == "" {
					pass.Reportf(field.Pos(), "//sgvet:guardedby requires the name of a sibling mutex field")
					continue
				}
				if !structHasMutexField(pass, st, arg) {
					pass.Reportf(field.Pos(), "//sgvet:guardedby %s: no sibling sync.Mutex/RWMutex field with that name", arg)
					continue
				}
				for _, name := range field.Names {
					if v, ok := pass.TypesInfo.Defs[name].(*types.Var); ok {
						guards[v] = guardSpec{guard: arg}
					}
				}
			}
			return true
		})
	}
	return guards
}

// structHasMutexField reports whether the struct literally declares a
// mutex field with the given name.
func structHasMutexField(pass *Pass, st *ast.StructType, name string) bool {
	for _, field := range st.Fields.List {
		for _, n := range field.Names {
			if n.Name != name {
				continue
			}
			if _, ok := isSyncMutex(pass.TypeOf(field.Type)); ok {
				return true
			}
		}
	}
	return false
}

// freshLocals collects local variables that only ever hold values
// allocated inside this function (composite literals or new). Such
// values are unshared until published, so accessing their guarded fields
// without the lock is safe — this is what lets constructors initialize
// the structs they build.
func freshLocals(pass *Pass, body *ast.BlockStmt) map[types.Object]bool {
	fresh := make(map[types.Object]bool)
	tainted := make(map[types.Object]bool)
	note := func(id *ast.Ident, rhs ast.Expr) {
		obj := pass.TypesInfo.ObjectOf(id)
		if obj == nil || id.Name == "_" {
			return
		}
		if isFreshAlloc(rhs) {
			fresh[obj] = true
		} else {
			tainted[obj] = true
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			if len(x.Lhs) != len(x.Rhs) {
				return true
			}
			for i, lhs := range x.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					note(id, x.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			if len(x.Names) != len(x.Values) {
				return true
			}
			for i, id := range x.Names {
				note(id, x.Values[i])
			}
		}
		return true
	})
	for obj := range tainted {
		delete(fresh, obj)
	}
	return fresh
}

// isFreshAlloc reports whether e evaluates to a newly allocated value:
// a composite literal (possibly behind &) or a call to new.
func isFreshAlloc(e ast.Expr) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		return x.Op == token.AND && isFreshAlloc(x.X)
	case *ast.CallExpr:
		if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok {
			return id.Name == "new"
		}
	}
	return false
}

// checkGuardedAccess verifies one field selector against the held set.
func checkGuardedAccess(pass *Pass, guards map[*types.Var]guardSpec, fresh map[types.Object]bool, sel *ast.SelectorExpr, write bool, held heldSet) {
	selection, ok := pass.TypesInfo.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return
	}
	field, ok := selection.Obj().(*types.Var)
	if !ok {
		return
	}
	spec, ok := guards[field]
	if !ok {
		return
	}
	base, canonical := canonExpr(pass, sel.X)
	if !canonical {
		pass.Reportf(sel.Sel.Pos(), "guarded field %s accessed through a non-canonical expression; cannot prove %s is held", field.Name(), spec.guard)
		return
	}
	if fresh[base.root] {
		return
	}
	need := lockKey{root: base.root, path: base.path + "." + spec.guard}
	lockName := base.display() + "." + spec.guard
	got, isHeld := held[need]
	switch {
	case !isHeld:
		verb := "read"
		if write {
			verb = "written"
		}
		pass.Reportf(sel.Sel.Pos(), "guarded field %s %s without holding %s", field.Name(), verb, lockName)
	case write && got.mode != lockWrite:
		pass.Reportf(sel.Sel.Pos(), "guarded field %s written while holding only the read lock on %s", field.Name(), lockName)
	}
}
