package sim_test

import (
	"bytes"
	"fmt"
	"testing"

	"nestedsg/internal/sim"
)

// TestSimPartitionCountInvariance: the certifier partition count is a
// pure concurrency knob. The composed certificate is byte-identical to
// the batch check at any P (every run's final drain and every crash
// recovery audit that), and under the driver's serialized schedule the
// same seed must produce an identical summary, a byte-identical final
// trace AND byte-identical WAL contents at 1, 2 and 8 partitions —
// crashes, torn tails, certifier stalls and cross-partition deadlocks
// included. FaultPartStall is excluded: its install draws a random
// partition index (and needs P > 1 at all), so the rng stream — not the
// certification semantics — depends on P.
func TestSimPartitionCountInvariance(t *testing.T) {
	faults := []sim.FaultClass{
		sim.FaultDrop, sim.FaultDropAfterCommit, sim.FaultCertStall,
		sim.FaultClockStorm, sim.FaultCrash, sim.FaultMergeStall,
		sim.FaultXPartDeadlock,
	}
	var stalls int
	for _, seed := range []uint64{11, 12} {
		var refRep *sim.Report
		var refWal []byte
		for _, parts := range []int{1, 2, 8} {
			cfg := sim.Config{
				Seed:           seed,
				Steps:          220,
				CertPartitions: parts,
				Faults:         faults,
				FaultPermille:  120,
			}
			rep, err := sim.Run(cfg)
			if err != nil {
				t.Fatalf("seed=%d parts=%d: %v", seed, parts, err)
			}
			wal := walBytes(t, rep.FinalDisk)
			if refRep == nil {
				refRep, refWal = rep, wal
				continue
			}
			if got, want := rep.Summary(), refRep.Summary(); got != want {
				t.Fatalf("seed=%d parts=%d report diverges from parts=1:\n  %s\n  %s",
					seed, parts, got, want)
			}
			if !bytes.Equal(rep.Trace, refRep.Trace) {
				t.Fatalf("seed=%d parts=%d: trace diverges from parts=1 (%d vs %d bytes)",
					seed, parts, len(rep.Trace), len(refRep.Trace))
			}
			if !bytes.Equal(wal, refWal) {
				t.Fatalf("seed=%d parts=%d: WAL diverges from parts=1 (%d vs %d bytes)",
					seed, parts, len(wal), len(refWal))
			}
		}
		if refRep.Recoveries == 0 {
			t.Errorf("seed=%d never crashed — the invariance check should cover recovery; raise FaultPermille", seed)
		}
		stalls += refRep.Faults[sim.FaultCertStall]
	}
	if stalls == 0 {
		t.Errorf("no seed stalled the certifier — the invariance check should cover stalled watermarks")
	}
}

// TestSimPartStallDeterminism: a run whose only faults are frozen
// certifier partitions replays byte-identically — the stalled
// partition's bound, the commits parked on the composed watermark and
// the stall's eventual lift are all on the driver's deterministic
// schedule.
func TestSimPartStallDeterminism(t *testing.T) {
	cfg := sim.Config{
		Seed:           23,
		Steps:          220,
		CertPartitions: 4,
		Faults:         []sim.FaultClass{sim.FaultPartStall},
		FaultPermille:  200,
	}
	a, err := sim.Run(cfg)
	if err != nil {
		t.Fatalf("first run: %v", err)
	}
	b, err := sim.Run(cfg)
	if err != nil {
		t.Fatalf("second run: %v", err)
	}
	if a.Summary() != b.Summary() {
		t.Fatalf("reports diverge:\n  %s\n  %s", a.Summary(), b.Summary())
	}
	if !bytes.Equal(a.Trace, b.Trace) {
		t.Fatalf("traces diverge for the same seed (%d vs %d bytes)", len(a.Trace), len(b.Trace))
	}
	if a.Faults[sim.FaultPartStall] == 0 {
		t.Fatalf("partition stall never injected: %s", a.Summary())
	}
}

// TestSimCrashDuringPartStall: crashing while one certifier partition is
// frozen is the partitioned backend's hardest corner — the dying
// incarnation's stalled worker must fall out of its hook, the recovery
// must re-prime all partitions over the stitched log and audit the
// composed graph against the batch check, and the runs must stay
// deterministic.
func TestSimCrashDuringPartStall(t *testing.T) {
	var stalls, crashes int
	for seed := uint64(41); seed <= 46; seed++ {
		cfg := sim.Config{
			Seed:           seed,
			Steps:          220,
			CertPartitions: 4,
			Faults:         []sim.FaultClass{sim.FaultPartStall, sim.FaultCrash},
			FaultPermille:  250,
		}
		a, err := sim.Run(cfg)
		if err != nil {
			t.Fatalf("seed=%d: %v\nreproduce: sim.Run(%+v)", seed, err, cfg)
		}
		b, err := sim.Run(cfg)
		if err != nil {
			t.Fatalf("seed=%d replay: %v", seed, err)
		}
		if a.Summary() != b.Summary() || !bytes.Equal(a.Trace, b.Trace) {
			t.Fatalf("seed=%d: crash+part-stall run is not deterministic:\n  %s\n  %s",
				seed, a.Summary(), b.Summary())
		}
		stalls += a.Faults[sim.FaultPartStall]
		crashes += a.Faults[sim.FaultCrash]
	}
	if stalls == 0 || crashes == 0 {
		t.Fatalf("fault mix never exercised both classes: stalls=%d crashes=%d", stalls, crashes)
	}
}

// TestSimPartsInMatrix pins the fault matrix's reach at a higher
// partition count: every fault class must inject and certify at P=4.
func TestSimPartsInMatrix(t *testing.T) {
	for _, class := range sim.AllFaults() {
		class := class
		t.Run(fmt.Sprintf("parts=4/%s", class), func(t *testing.T) {
			t.Parallel()
			cfg := sim.Config{
				Seed:           5,
				Steps:          160,
				CertPartitions: 4,
				Faults:         []sim.FaultClass{class},
				FaultPermille:  200,
			}
			rep, err := sim.Run(cfg)
			if err != nil {
				t.Fatalf("%v\nreproduce: sim.Run(%+v)", err, cfg)
			}
			if rep.Faults[class] == 0 {
				t.Errorf("fault %s never injected: %s", class, rep.Summary())
			}
		})
	}
}

// TestSimXPartDeadlockSpans: at P=4 with several objects, the injected
// crossing conflicts must actually span partitions — otherwise the fault
// class degenerates to ordinary same-partition deadlocks and the
// cross-partition waits-for path goes untested.
func TestSimXPartDeadlockSpans(t *testing.T) {
	cfg := sim.Config{
		Seed:           9,
		Steps:          220,
		Objects:        5,
		CertPartitions: 4,
		Faults:         []sim.FaultClass{sim.FaultXPartDeadlock},
		FaultPermille:  250,
	}
	rep, err := sim.Run(cfg)
	if err != nil {
		t.Fatalf("%v\nreproduce: sim.Run(%+v)", err, cfg)
	}
	if rep.Faults[sim.FaultXPartDeadlock] == 0 {
		t.Fatalf("cross-partition deadlock never injected: %s", rep.Summary())
	}
	if rep.XPartSpans == 0 {
		t.Fatalf("no injected conflict spanned partitions (injected %d): %s",
			rep.Faults[sim.FaultXPartDeadlock], rep.Summary())
	}
}
