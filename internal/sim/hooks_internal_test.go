package sim

import (
	"testing"
	"time"
)

// TestDrainWaitAdvancesVirtualClock: DrainWait must cost virtual time, not
// wall time — the server's drain poll and accept-retry backoff run on the
// simulated clock so seeded runs stay deterministic and fast.
func TestDrainWaitAdvancesVirtualClock(t *testing.T) {
	s := &sim{}
	h := &simHooks{s: s}
	start := time.Now()
	h.DrainWait(10 * time.Second)
	if wall := time.Since(start); wall > time.Second {
		t.Fatalf("DrainWait(10s) slept %v of wall time", wall)
	}
	if got := s.clock.Load(); got != int64(10*time.Second) {
		t.Fatalf("virtual clock advanced by %d, want %d", got, int64(10*time.Second))
	}
	if got := h.Now().UnixNano(); got != int64(10*time.Second) {
		t.Fatalf("Now() = %d after DrainWait, want %d", got, int64(10*time.Second))
	}
}

// TestCertBatchCutsAtStall: the batch-size hook must bound a certifier run
// at the installed stall point — batching may never silently carry the
// certifier across a stall — and pass the full window through otherwise.
func TestCertBatchCutsAtStall(t *testing.T) {
	s := &sim{}
	h := &simHooks{s: s}
	if got := h.CertBatch(0, 16); got != 16 {
		t.Fatalf("no stall: CertBatch(0, 16) = %d, want 16", got)
	}
	s.stall = &stallState{from: 10, released: make(chan struct{})}
	if got := h.CertBatch(4, 16); got != 6 {
		t.Fatalf("CertBatch(4, 16) with stall at 10 = %d, want 6 (cut at the stall)", got)
	}
	if got := h.CertBatch(4, 3); got != 3 {
		t.Fatalf("CertBatch(4, 3) with stall at 10 = %d, want 3 (window ends before the stall)", got)
	}
	// At or past the stall CertApply blocks first, so the size hook just
	// passes the window through.
	if got := h.CertBatch(10, 16); got != 16 {
		t.Fatalf("CertBatch(10, 16) at the stall = %d, want 16", got)
	}
	// A stale generation (its server was crashed) ignores the stall.
	stale := &simHooks{s: s, gen: 7}
	if got := stale.CertBatch(4, 16); got != 16 {
		t.Fatalf("stale CertBatch(4, 16) = %d, want 16", got)
	}
}
