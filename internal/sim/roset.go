package sim

import (
	"fmt"

	"nestedsg/internal/event"
	"nestedsg/internal/spec"
	"nestedsg/internal/tname"
)

// committedTimeline replays the final stitched log exactly like the
// server's snapshot store: granted register writes accumulate per open
// top-level transaction, aborts discard the aborted subtree's writes, and
// a top-level COMMIT publishes the survivors last-write-per-object. It
// returns the successive committed states — entry 0 is the initial state
// (every register holds its init value) and each later entry is the state
// after one state-changing top-level commit. Call only after Shutdown:
// the tree must be quiescent.
func (s *sim) committedTimeline() []map[tname.ObjID]spec.Value {
	tr := s.srv.Tree()
	type pend struct {
		writer tname.TxID
		obj    tname.ObjID
		val    spec.Value
	}
	topOf := func(tx tname.TxID) tname.TxID {
		if tr.Parent(tx) == tname.Root {
			return tx
		}
		return tr.ChildAncestor(tname.Root, tx)
	}
	pending := make(map[tname.TxID][]pend)
	state := map[tname.ObjID]spec.Value{}
	timeline := []map[tname.ObjID]spec.Value{state}
	for _, e := range s.srv.Log() {
		switch e.Kind {
		case event.RequestCommit:
			if e.Tx == tname.Root || !tr.IsAccess(e.Tx) {
				continue
			}
			op := tr.AccessOp(e.Tx)
			if !spec.IsWrite(op) {
				continue
			}
			top := topOf(e.Tx)
			pending[top] = append(pending[top], pend{writer: e.Tx, obj: tr.AccessObject(e.Tx), val: op.Arg})
		case event.Abort:
			if e.Tx == tname.Root {
				continue
			}
			if tr.Parent(e.Tx) == tname.Root {
				delete(pending, e.Tx)
				continue
			}
			top := topOf(e.Tx)
			kept := pending[top][:0]
			for _, w := range pending[top] {
				if w.writer != e.Tx && !tr.IsDescendant(w.writer, e.Tx) {
					kept = append(kept, w)
				}
			}
			pending[top] = kept
		case event.Commit:
			if e.Tx == tname.Root || tr.Parent(e.Tx) != tname.Root {
				continue
			}
			ws := pending[e.Tx]
			delete(pending, e.Tx)
			if len(ws) == 0 {
				continue
			}
			next := make(map[tname.ObjID]spec.Value, len(state)+len(ws))
			for k, v := range state {
				next[k] = v
			}
			for _, w := range ws {
				next[w.obj] = w.val // pend is in log order: last write wins
			}
			state = next
			timeline = append(timeline, state)
		default:
		}
	}
	return timeline
}

// finalState renders the last timeline entry keyed by object label, with
// every configured object present (init value when never written).
func (s *sim) finalState(timeline []map[tname.ObjID]spec.Value) map[string]spec.Value {
	tr := s.srv.Tree()
	last := timeline[len(timeline)-1]
	init := spec.Register{}.Init().(spec.Value)
	out := make(map[string]spec.Value, len(s.objs))
	for _, label := range s.objs {
		val := init
		if obj := tr.Object(label); obj != tname.NoObj {
			if v, ok := last[obj]; ok {
				val = v
			}
		}
		out[label] = val
	}
	return out
}

// validateROSets proves the snapshot-isolation property for every
// completed read-only transaction of the final incarnation: its whole
// read set must equal the committed state of SOME log prefix, i.e. some
// timeline entry serves every read in the set. (Sets recorded before a
// crash were discarded — they may have read a published commit whose WAL
// record was unsynced and hence absent from the stitched log.)
func (s *sim) validateROSets(timeline []map[tname.ObjID]spec.Value) error {
	if len(s.roSets) == 0 {
		return nil
	}
	tr := s.srv.Tree()
	init := spec.Register{}.Init().(spec.Value)
	for si, set := range s.roSets {
		matched := false
		for _, state := range timeline {
			if roSetMatches(tr, set, state, init) {
				matched = true
				break
			}
		}
		if !matched {
			return fmt.Errorf("read-only read set %d (%d reads, first %s=%s) matches no committed log prefix",
				si, len(set), set[0].obj, set[0].val)
		}
	}
	return nil
}

func roSetMatches(tr *tname.Tree, set []roRead, state map[tname.ObjID]spec.Value, init spec.Value) bool {
	for _, rd := range set {
		want := init
		if obj := tr.Object(rd.obj); obj != tname.NoObj {
			if v, ok := state[obj]; ok {
				want = v
			}
		}
		if rd.val != want {
			return false
		}
	}
	return true
}
