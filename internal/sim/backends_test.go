package sim_test

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"nestedsg/internal/sim"
)

// Backends is the full object-backend surface the server exposes through
// -backend; the matrix below runs every one of them through every fault
// class. mvto additionally carries read-only snapshot traffic, so its
// lock-free path is exercised under the same faults.
var backends = []string{"moss", "undolog", "mvto", "replica"}

func backendCfg(backend string, seed uint64) sim.Config {
	cfg := sim.Config{Seed: seed, Backend: backend}
	if backend == "mvto" {
		cfg.ROPermille = 250
	}
	return cfg
}

// TestSimBackendFaultMatrix is the headline matrix: every backend ×
// every fault class × one and two certifier partitions, each seed a
// full certify-crash-recover-drain cycle. Any failure reproduces from
// the printed Config alone.
func TestSimBackendFaultMatrix(t *testing.T) {
	seeds := 3
	if testing.Short() {
		seeds = 2
	}
	for _, backend := range backends {
		for _, parts := range []int{1, 2} {
			for _, class := range sim.AllFaults() {
				backend, parts, class := backend, parts, class
				t.Run(fmt.Sprintf("%s/p%d/%s", backend, parts, class), func(t *testing.T) {
					t.Parallel()
					injected := 0
					for seed := uint64(1); seed <= uint64(seeds); seed++ {
						cfg := backendCfg(backend, seed)
						cfg.Steps = 160
						cfg.CertPartitions = parts
						cfg.Faults = []sim.FaultClass{class}
						cfg.FaultPermille = 200
						rep, err := sim.Run(cfg)
						if err != nil {
							writeFailureArtifact(t, seed, backend, err, rep)
							t.Fatalf("seed %d: %v\nreproduce: sim.Run(%+v)", seed, err, cfg)
						}
						injected += rep.Faults[class]
					}
					// Aggregated across seeds: a class can be inapplicable on
					// one seed's schedule (e.g. clock-storm needs a parked
					// session, which mvto's restart discipline makes rare),
					// but the cell as a whole must exercise its fault.
					// part-stall needs P > 1 to inject at all.
					if injected == 0 && !(class == sim.FaultPartStall && parts == 1) {
						t.Errorf("fault %s never injected across %d seeds", class, seeds)
					}
				})
			}
		}
	}
}

// TestSimBackendDeterministicReplay: per backend, the same seed replays
// to the identical report, byte-identical trace, and byte-identical
// certificate — crashes, restarts and read-only traffic included.
func TestSimBackendDeterministicReplay(t *testing.T) {
	for _, backend := range backends {
		backend := backend
		t.Run(backend, func(t *testing.T) {
			t.Parallel()
			cfg := backendCfg(backend, 42)
			cfg.Steps = 250
			cfg.Faults = sim.AllFaults()
			cfg.FaultPermille = 120
			a, err := sim.Run(cfg)
			if err != nil {
				t.Fatalf("first run: %v", err)
			}
			b, err := sim.Run(cfg)
			if err != nil {
				t.Fatalf("second run: %v", err)
			}
			if a.Summary() != b.Summary() {
				t.Fatalf("reports diverge:\n  %s\n  %s", a.Summary(), b.Summary())
			}
			if !bytes.Equal(a.Trace, b.Trace) {
				t.Fatalf("traces diverge for the same seed (%d vs %d bytes)", len(a.Trace), len(b.Trace))
			}
			if a.CertDOT == "" || a.CertDOT != b.CertDOT {
				t.Fatalf("certificates diverge for the same seed")
			}
			if a.Recoveries == 0 {
				t.Fatalf("determinism run never crashed — raise FaultPermille: %s", a.Summary())
			}
		})
	}
}

// stateString renders a report's final committed register state
// deterministically for byte comparison.
func stateString(rep *sim.Report) string {
	labels := make([]string, 0, len(rep.FinalState))
	for l := range rep.FinalState {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	var b strings.Builder
	for _, l := range labels {
		fmt.Fprintf(&b, "%s=%s\n", l, rep.FinalState[l])
	}
	return b.String()
}

// TestSimBackendDifferential drives moss, undolog and replica with the
// identical seed and fault schedule. Their grant conditions are provably
// equivalent for registers (undolog logs inverse operations instead of
// deferring writes but admits exactly the Moss lock set; replica runs
// Moss admission over quorum copies with the failure process disabled),
// so the whole runs must agree byte for byte: same trace, same
// serialization certificate, same final committed state.
func TestSimBackendDifferential(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			var ref *sim.Report
			for _, backend := range []string{"moss", "undolog", "replica"} {
				cfg := sim.Config{
					Seed:          seed,
					Steps:         200,
					Backend:       backend,
					Faults:        sim.AllFaults(),
					FaultPermille: 100,
				}
				rep, err := sim.Run(cfg)
				if err != nil {
					t.Fatalf("%s: %v", backend, err)
				}
				if ref == nil {
					ref = rep
					continue
				}
				if rep.Summary() != ref.Summary() {
					t.Errorf("%s report differs from moss:\n  %s\n  %s", backend, ref.Summary(), rep.Summary())
				}
				if !bytes.Equal(rep.Trace, ref.Trace) {
					t.Errorf("%s trace differs from moss (%d vs %d bytes)", backend, len(rep.Trace), len(ref.Trace))
				}
				if rep.CertDOT != ref.CertDOT {
					t.Errorf("%s certificate differs from moss", backend)
				}
				if stateString(rep) != stateString(ref) {
					t.Errorf("%s final state differs from moss:\n%svs\n%s", backend, stateString(ref), stateString(rep))
				}
			}
		})
	}
}

// TestSimMVTOReadOnly is the snapshot-isolation property test: under the
// mvto backend, read-only transactions never park on a lock, are never
// aborted by the server, and every completed read set matches the
// committed state of some certified log prefix — all three enforced
// inside sim.Run (the driver errors on an RO park or RO abort, and
// finish() replays the log to validate the read sets). The loop both
// proves RO traffic actually flowed and soaks the property across fault
// schedules, crashes included.
func TestSimMVTOReadOnly(t *testing.T) {
	seeds := 12
	if testing.Short() {
		seeds = 4
	}
	totalRO, totalReads := 0, 0
	for i := 0; i < seeds; i++ {
		seed := uint64(3000 + i)
		cfg := sim.Config{
			Seed:       seed,
			Steps:      240,
			Backend:    "mvto",
			ROPermille: 450,
		}
		if i%2 == 1 {
			cfg.Faults = sim.AllFaults()
			cfg.FaultPermille = 100
		}
		rep, err := sim.Run(cfg)
		if err != nil {
			writeFailureArtifact(t, seed, "mvto-ro", err, rep)
			t.Fatalf("seed %d: %v", seed, err)
		}
		totalRO += rep.ROBegins
		totalReads += rep.ROReads
	}
	if totalRO == 0 || totalReads == 0 {
		t.Fatalf("property test exercised no read-only traffic (ro=%d reads=%d)", totalRO, totalReads)
	}
	t.Logf("validated %d read-only transactions, %d snapshot reads", totalRO, totalReads)
}

// TestSimReplicaTornInstall is the torn-write / partial-quorum recovery
// test: with the replica backend and crash faults only, every recovery
// replays the stitched log through fresh quorum copies and then re-proves
// the quorum-intersection audit (sim.boot calls Server.AuditObjects). A
// commit whose WAL record was torn is aborted as an orphan — its install
// never reaches any copy — and a surviving commit reinstalls into a full
// write quorum, so no crash can leave the latest version on a minority.
func TestSimReplicaTornInstall(t *testing.T) {
	crashes, torn := 0, int64(0)
	for seed := uint64(1); seed <= 8; seed++ {
		cfg := sim.Config{
			Seed:          seed,
			Steps:         200,
			Backend:       "replica",
			Faults:        []sim.FaultClass{sim.FaultCrash},
			FaultPermille: 120,
		}
		rep, err := sim.Run(cfg)
		if err != nil {
			writeFailureArtifact(t, seed, "replica-torn", err, rep)
			t.Fatalf("seed %d: %v", seed, err)
		}
		crashes += rep.Recoveries
		torn += rep.TornBytes
	}
	if crashes == 0 {
		t.Fatal("no crash ever injected — the torn-install path was not exercised")
	}
	t.Logf("audited %d crash recoveries (%d torn bytes) under the replica backend", crashes, torn)
}

// FuzzBackendDifferential runs the moss-vs-undolog differential over
// fuzzed seeds: for any seed, both backends must produce byte-identical
// traces, certificates and final committed snapshots.
func FuzzBackendDifferential(f *testing.F) {
	for _, seed := range fuzzSeeds() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed uint64) {
		var ref *sim.Report
		for _, backend := range []string{"moss", "undolog"} {
			cfg := sim.Config{
				Seed:          seed,
				Steps:         140,
				Backend:       backend,
				Faults:        sim.AllFaults(),
				FaultPermille: 100,
			}
			rep, err := sim.Run(cfg)
			if err != nil {
				t.Fatalf("%s: %v", backend, err)
			}
			if ref == nil {
				ref = rep
				continue
			}
			if !bytes.Equal(rep.Trace, ref.Trace) {
				t.Fatalf("seed %d: undolog trace differs from moss (%d vs %d bytes)", seed, len(rep.Trace), len(ref.Trace))
			}
			if rep.CertDOT != ref.CertDOT {
				t.Fatalf("seed %d: undolog certificate differs from moss", seed)
			}
			if stateString(rep) != stateString(ref) {
				t.Fatalf("seed %d: final snapshots differ:\n%svs\n%s", seed, stateString(ref), stateString(rep))
			}
		}
	})
}

// fuzzSeeds is the committed seed corpus for FuzzBackendDifferential.
func fuzzSeeds() []uint64 {
	return []uint64{1, 7, 42, 1234, 99991}
}

// TestRegenerateBackendFuzzCorpus rewrites the committed seed corpus for
// FuzzBackendDifferential when UPDATE_FUZZ_CORPUS=1; otherwise it checks
// the committed files are current.
func TestRegenerateBackendFuzzCorpus(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzBackendDifferential")
	for _, seed := range fuzzSeeds() {
		content := fmt.Sprintf("go test fuzz v1\nuint64(%d)\n", seed)
		path := filepath.Join(dir, fmt.Sprintf("seed_%d", seed))
		if os.Getenv("UPDATE_FUZZ_CORPUS") == "1" {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("seed corpus missing (run with UPDATE_FUZZ_CORPUS=1): %v", err)
		}
		if string(got) != content {
			t.Fatalf("seed corpus seed_%d is stale (run with UPDATE_FUZZ_CORPUS=1)", seed)
		}
	}
}
