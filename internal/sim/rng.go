package sim

// rng is a splitmix64 generator: the simulator's single source of
// randomness. Every scheduling decision, workload choice and fault sample
// is drawn from it, so one uint64 seed determines the entire run —
// math/rand and the wall clock are banned from this package (enforced by
// the simdeterminism sgvet analyzer).
type rng struct{ state uint64 }

func newRng(seed uint64) *rng { return &rng{state: seed} }

func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// intn returns a value in [0, n). The modulo bias is irrelevant for
// scheduling choices.
func (r *rng) intn(n int) int {
	if n <= 1 {
		return 0
	}
	return int(r.next() % uint64(n))
}
