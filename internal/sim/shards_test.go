package sim_test

import (
	"bytes"
	"fmt"
	"testing"

	"nestedsg/internal/server"
	"nestedsg/internal/sim"
)

// walBytes concatenates the final disk's segments in name order — the byte
// stream recovery would replay.
func walBytes(t *testing.T, d *server.MemDisk) []byte {
	t.Helper()
	if d == nil {
		return nil
	}
	names, err := d.Segments()
	if err != nil {
		t.Fatal(err)
	}
	var all []byte
	for _, name := range names {
		seg, err := d.ReadSegment(name)
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, seg...)
	}
	return all
}

// TestSimShardCountInvariance: the shard count is a pure concurrency knob.
// Under the driver's serialized execution the global append tickets replay
// the exact action order regardless of how sessions hash to shards, so the
// same seed must produce a byte-identical final trace AND byte-identical
// WAL contents at 1, 2 and 8 shards — crashes, torn tails and recoveries
// included. FaultMergeStall is excluded: its install draws a random shard
// index, so the rng stream (not the log semantics) depends on the shard
// count.
func TestSimShardCountInvariance(t *testing.T) {
	faults := []sim.FaultClass{
		sim.FaultDrop, sim.FaultDropAfterCommit, sim.FaultCertStall,
		sim.FaultClockStorm, sim.FaultCrash,
	}
	for _, seed := range []uint64{11, 12} {
		var refRep *sim.Report
		var refWal []byte
		for _, shards := range []int{1, 2, 8} {
			cfg := sim.Config{
				Seed:          seed,
				Steps:         220,
				Shards:        shards,
				Faults:        faults,
				FaultPermille: 120,
			}
			rep, err := sim.Run(cfg)
			if err != nil {
				t.Fatalf("seed=%d shards=%d: %v", seed, shards, err)
			}
			wal := walBytes(t, rep.FinalDisk)
			if refRep == nil {
				refRep, refWal = rep, wal
				continue
			}
			if got, want := rep.Summary(), refRep.Summary(); got != want {
				t.Fatalf("seed=%d shards=%d report diverges from shards=1:\n  %s\n  %s",
					seed, shards, got, want)
			}
			if !bytes.Equal(rep.Trace, refRep.Trace) {
				t.Fatalf("seed=%d shards=%d: trace diverges from shards=1 (%d vs %d bytes)",
					seed, shards, len(rep.Trace), len(refRep.Trace))
			}
			if !bytes.Equal(wal, refWal) {
				t.Fatalf("seed=%d shards=%d: WAL diverges from shards=1 (%d vs %d bytes)",
					seed, shards, len(wal), len(refWal))
			}
		}
		if refRep.Recoveries == 0 {
			t.Errorf("seed=%d never crashed — the invariance check should cover recovery; raise FaultPermille", seed)
		}
	}
}

// TestSimMergeStallDeterminism: a run whose only faults are merge stalls
// replays byte-identically — the stalled shard's pending entries, the
// parked completions and the stall's eventual lift are all on the driver's
// deterministic schedule.
func TestSimMergeStallDeterminism(t *testing.T) {
	cfg := sim.Config{
		Seed:          21,
		Steps:         220,
		Shards:        4,
		Faults:        []sim.FaultClass{sim.FaultMergeStall},
		FaultPermille: 200,
	}
	a, err := sim.Run(cfg)
	if err != nil {
		t.Fatalf("first run: %v", err)
	}
	b, err := sim.Run(cfg)
	if err != nil {
		t.Fatalf("second run: %v", err)
	}
	if a.Summary() != b.Summary() {
		t.Fatalf("reports diverge:\n  %s\n  %s", a.Summary(), b.Summary())
	}
	if !bytes.Equal(a.Trace, b.Trace) {
		t.Fatalf("traces diverge for the same seed (%d vs %d bytes)", len(a.Trace), len(b.Trace))
	}
	if a.Faults[sim.FaultMergeStall] == 0 {
		t.Fatalf("merge stall never injected: %s", a.Summary())
	}
}

// TestSimCrashDuringMergeStall: crashing while a shard's merge front is
// stalled is the sharded log's hardest durability corner — the crash must
// settle the merged prefix at the stall's deterministic bound (nothing at
// or past the stalled ticket reaches the WAL writer), and recovery from
// the surviving bytes must still audit clean. The runs themselves must
// stay deterministic.
func TestSimCrashDuringMergeStall(t *testing.T) {
	var stalls, crashes int
	for seed := uint64(31); seed <= 36; seed++ {
		cfg := sim.Config{
			Seed:          seed,
			Steps:         220,
			Shards:        4,
			Faults:        []sim.FaultClass{sim.FaultMergeStall, sim.FaultCrash},
			FaultPermille: 250,
		}
		a, err := sim.Run(cfg)
		if err != nil {
			t.Fatalf("seed=%d: %v\nreproduce: sim.Run(%+v)", seed, err, cfg)
		}
		b, err := sim.Run(cfg)
		if err != nil {
			t.Fatalf("seed=%d replay: %v", seed, err)
		}
		if a.Summary() != b.Summary() || !bytes.Equal(a.Trace, b.Trace) {
			t.Fatalf("seed=%d: crash+merge-stall run is not deterministic:\n  %s\n  %s",
				seed, a.Summary(), b.Summary())
		}
		stalls += a.Faults[sim.FaultMergeStall]
		crashes += a.Faults[sim.FaultCrash]
	}
	if stalls == 0 || crashes == 0 {
		t.Fatalf("fault mix never exercised both classes: stalls=%d crashes=%d", stalls, crashes)
	}
}

// TestSimShardsInMatrix pins the fault matrix's reach: every fault class —
// merge-stall included — must inject and certify at a non-default shard
// count too.
func TestSimShardsInMatrix(t *testing.T) {
	for _, class := range sim.AllFaults() {
		class := class
		t.Run(fmt.Sprintf("shards=8/%s", class), func(t *testing.T) {
			t.Parallel()
			cfg := sim.Config{
				Seed:   5,
				Steps:  160,
				Shards: 8,
				// part-stall needs multiple certifier partitions to inject.
				CertPartitions: 2,
				Faults:         []sim.FaultClass{class},
				FaultPermille:  200,
			}
			rep, err := sim.Run(cfg)
			if err != nil {
				t.Fatalf("%v\nreproduce: sim.Run(%+v)", err, cfg)
			}
			if rep.Faults[class] == 0 {
				t.Errorf("fault %s never injected: %s", class, rep.Summary())
			}
		})
	}
}
