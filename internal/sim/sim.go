// Package sim is a deterministic fault-injection simulator for the
// nested-transaction server. It wraps the real server — real sessions,
// real locking automata, real WAL, real certifier — behind a seeded
// virtual scheduler: a single driver goroutine issues every request,
// wakes every blocked lock poll, advances a virtual clock, and samples
// faults (connection drops mid-transaction, drops after REQUEST_COMMIT,
// certifier stalls, lock-timeout storms, frozen certifier partitions,
// cross-partition deadlocks, and full process crashes with torn-write
// recovery) from one splitmix64 stream. Two runs with the same
// Config produce byte-identical event traces, so any failing run
// reproduces from its uint64 seed alone.
//
// Crashes use the in-memory Disk: the simulator snapshots the durable
// prefix (plus a random torn tail of unsynced bytes), freezes the old
// disk, kills the server, and rebuilds it with server.Recover — whose
// audit proves the resumed certificate is byte-identical to a batch
// core.Check over the stitched log. On small runs the stitched log is
// additionally cross-checked against the internal/oracle sibling-order
// search.
package sim

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"nestedsg/internal/event"
	"nestedsg/internal/locking"
	"nestedsg/internal/object"
	"nestedsg/internal/oracle"
	"nestedsg/internal/part"
	"nestedsg/internal/server"
	"nestedsg/internal/spec"
	"nestedsg/internal/wire"
)

// FaultClass names one injectable fault.
type FaultClass uint8

// Fault classes.
const (
	// FaultDrop closes a client connection while its transaction is open;
	// the server must abort the orphaned top and release its locks.
	FaultDrop FaultClass = iota
	// FaultDropAfterCommit sends COMMIT and closes the connection before
	// reading the response: the commit is durable but unacknowledged.
	FaultDropAfterCommit
	// FaultCertStall blocks the online certifier at the current log
	// length for a sampled number of scheduler decisions; commits queue
	// on the watermark and must all drain when the stall lifts.
	FaultCertStall
	// FaultClockStorm jumps the virtual clock past every blocked
	// access's lock-wait deadline, forcing a storm of timeout aborts.
	FaultClockStorm
	// FaultCrash kills the process at the current instant: the disk
	// keeps only the synced prefix plus a random torn tail of unsynced
	// bytes, and the server is rebuilt with server.Recover.
	FaultCrash
	// FaultMergeStall blocks one randomly chosen shard of the sharded
	// event log at the current log length: entries that session appends
	// stay pending, the totally-ordered merge front stops at the shard's
	// first pending ticket, and completions behind it park on the merged
	// watermark until the stall lifts.
	FaultMergeStall
	// FaultPartStall freezes one randomly chosen certifier partition at
	// the current log length: the partition delivers its edge batch up to
	// the bound and blocks, the composed watermark settles exactly there,
	// and commits past it park until the stall lifts (or a crash retires
	// the incarnation). Applicable only with CertPartitions > 1.
	FaultPartStall
	// FaultXPartDeadlock drives two sessions into a crossing write
	// conflict over two distinct objects — lock waits that span certifier
	// partitions whenever the objects hash to different owners — which
	// the server's waits-for detector (or timeout) must resolve. The
	// injection itself is partition-count independent.
	FaultXPartDeadlock
)

var faultNames = map[FaultClass]string{
	FaultDrop:            "drop",
	FaultDropAfterCommit: "drop-after-commit",
	FaultCertStall:       "cert-stall",
	FaultClockStorm:      "clock-storm",
	FaultCrash:           "crash",
	FaultMergeStall:      "merge-stall",
	FaultPartStall:       "part-stall",
	FaultXPartDeadlock:   "xpart-deadlock",
}

// String names the fault class.
func (f FaultClass) String() string {
	if n, ok := faultNames[f]; ok {
		return n
	}
	return fmt.Sprintf("fault(%d)", uint8(f))
}

// AllFaults lists every fault class.
func AllFaults() []FaultClass {
	return []FaultClass{FaultDrop, FaultDropAfterCommit, FaultCertStall, FaultClockStorm, FaultCrash, FaultMergeStall, FaultPartStall, FaultXPartDeadlock}
}

// Config parameterizes a simulation run. The zero value plus a seed is a
// usable configuration.
type Config struct {
	// Seed drives every random choice in the run.
	Seed uint64
	// Sessions is the number of concurrent client sessions (default 4).
	Sessions int
	// Objects is the number of shared register objects (default 3; few
	// objects force lock conflicts).
	Objects int
	// Steps is the number of scheduler decisions before the graceful
	// drain (default 150).
	Steps int
	// Protocol is the concurrency-control protocol under test (default
	// Moss locking when Backend is empty).
	Protocol object.Protocol
	// Backend selects a named server object backend ("moss", "undolog",
	// "mvto", "replica"); empty uses Protocol. Setting both is a server
	// configuration error, exactly as over server.Options.
	Backend string
	// ROPermille is the per-BEGIN probability (in 1/1000) that a
	// top-level transaction opens read-only (default 0: none). Read-only
	// transactions issue only reads; on a snapshot-capable backend
	// ("mvto") the simulator additionally asserts they never park on a
	// lock, are never aborted by the server, and that each completed
	// read set matches the committed state of some log prefix.
	ROPermille int
	// Shards is the server's event-log shard count (default 2, so the
	// merge path is exercised without drowning small runs in shards).
	Shards int
	// CertPartitions is the server's certifier partition count (default
	// 1: the single certifier goroutine).
	CertPartitions int
	// Faults enables fault classes; empty means a fault-free run.
	Faults []FaultClass
	// FaultPermille is the per-step probability (in 1/1000) of injecting
	// one of the enabled faults (default 30 when Faults is non-empty).
	FaultPermille int
	// OracleMaxEvents bounds the log size for the sibling-order oracle
	// cross-check after recoveries and at the end (default 60; 0 keeps
	// the default, negative disables).
	OracleMaxEvents int
}

func (c Config) withDefaults() Config {
	if c.Sessions <= 0 {
		c.Sessions = 4
	}
	if c.Objects <= 0 {
		c.Objects = 3
	}
	if c.Steps <= 0 {
		c.Steps = 150
	}
	if c.Protocol == nil && c.Backend == "" {
		c.Protocol = locking.Protocol{}
	}
	if c.Shards <= 0 {
		c.Shards = 2
	}
	if c.CertPartitions <= 0 {
		c.CertPartitions = 1
	}
	if c.FaultPermille <= 0 {
		c.FaultPermille = 30
	}
	if c.OracleMaxEvents == 0 {
		c.OracleMaxEvents = 60
	}
	return c
}

// Report is the deterministic outcome of a run: identical Configs yield
// identical Reports (compare Summary() and Trace).
type Report struct {
	Seed  uint64
	Steps int
	// Request counters, as observed by the driver.
	Begins, Accesses, TopCommits, TxAborts int
	// ROBegins and ROReads count read-only top-level BEGINs and the
	// reads they issued (zero unless Config.ROPermille > 0).
	ROBegins, ROReads int
	// Faults counts injected faults by class.
	Faults map[FaultClass]int
	// Recoveries counts crash recoveries; the repair totals aggregate
	// their RecoveryReports.
	Recoveries   int
	OrphanTops   int
	FixupInforms int
	TornBytes    int64
	// FinalEvents is the stitched log length after the graceful drain;
	// Trace is its binary encoding (the determinism witness).
	FinalEvents int
	Trace       []byte
	// CertDOT is the DOT rendering of the final batch-checked SG(β) —
	// the serialization certificate. Byte-comparable across runs and
	// across backends fed the identical trace.
	CertDOT string
	// FinalState maps each configured object label to its committed value
	// after the drain, replayed from the stitched log (registers).
	FinalState map[string]spec.Value
	// XPartSpans counts injected cross-partition deadlocks whose two
	// objects were owned by different certifier partitions. Partition-
	// count dependent by construction, so deliberately NOT part of
	// Summary() — summaries stay comparable across partition counts.
	XPartSpans int
	// FinalDisk is the WAL left behind by the clean shutdown — tests
	// re-recover from it. Not part of the deterministic comparison.
	FinalDisk *server.MemDisk
}

// Summary renders the deterministic counters in one line (fault counts in
// class order).
func (r *Report) Summary() string {
	var fs []string
	classes := make([]FaultClass, 0, len(r.Faults))
	for c := range r.Faults {
		classes = append(classes, c)
	}
	sort.Slice(classes, func(i, j int) bool { return classes[i] < classes[j] })
	for _, c := range classes {
		fs = append(fs, fmt.Sprintf("%s=%d", c, r.Faults[c]))
	}
	return fmt.Sprintf(
		"seed=%d steps=%d begins=%d accesses=%d commits=%d txaborts=%d ro=%d/%d faults=%v recoveries=%d orphans=%d fixups=%d torn=%d events=%d",
		r.Seed, r.Steps, r.Begins, r.Accesses, r.TopCommits, r.TxAborts, r.ROBegins, r.ROReads, fs,
		r.Recoveries, r.OrphanTops, r.FixupInforms, r.TornBytes, r.FinalEvents)
}

// Slot phases: where one client session is in its request cycle.
const (
	phIdle     = iota // no outstanding request
	phAwait           // request sent, no settlement yet
	phParkLock        // blocked access parked in LockWait
	phParkCert        // commit parked behind a stalled certifier
	phClosed          // connection dropped, waiting for SessionDone
)

// slot is one simulated client session.
type slot struct {
	idx     int
	conn    net.Conn
	w       *bufio.Writer
	out     []byte
	sid     int64 // server session id
	connID  int   // bumped on every reconnect; stale readers are ignored
	phase   int
	parkDur time.Duration
	lastCmd wire.Cmd
	lastRO  bool   // the in-flight request was a read-only BEGIN
	lastObj string // object of the in-flight ACCESS (read-set recording)
	inTx    bool
	depth   int
	ro      bool     // the open top-level transaction is read-only
	roReads []roRead // reads of the open read-only transaction (snapshot backends)
}

// roRead is one observed read of a read-only transaction: the object label
// and the value the server returned.
type roRead struct {
	obj string
	val spec.Value
}

// sim is the driver state. Exactly one goroutine (the driver) mutates it;
// mu guards only the fields the hook callbacks touch.
type sim struct {
	cfg  Config
	r    *rng
	rep  *Report
	objs []string

	// roSnap: the configured backend serves read-only transactions from a
	// certified snapshot, so the driver asserts they never park and never
	// abort, and records their read sets for the prefix-consistency check.
	roSnap bool
	// roSets are the completed read-only read sets of the CURRENT server
	// incarnation. A crash discards them: a set may have read a published
	// commit whose WAL record was still unsynced, and such a commit is
	// legitimately absent from the stitched post-crash log.
	roSets [][]roRead

	clock atomic.Int64  // virtual ns
	gen   atomic.Uint64 // server incarnation; bumped by crashes

	events chan simEvent

	mu      sync.Mutex
	wakes   map[int64]chan struct{} //sgvet:guardedby mu
	release chan struct{}           //sgvet:guardedby mu
	stall   *stallState             //sgvet:guardedby mu
	mstall  *mergeStallState        //sgvet:guardedby mu
	pstall  *partStallState         //sgvet:guardedby mu

	disk  *server.MemDisk
	srv   *server.Server
	slots []*slot
	bySid map[int64]*slot
	done  map[int64]bool // SessionDone seen, by server session id

	stallLeft  int // scheduler decisions until the certifier stall lifts
	mstallLeft int // scheduler decisions until the merge stall lifts
	pstallLeft int // scheduler decisions until the partition stall lifts
}

// Run executes one simulation and returns its deterministic report. A
// non-nil error is a certification, recovery, determinism or protocol
// failure; the report (possibly partial) is returned alongside for
// diagnostics.
func Run(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	s := &sim{
		cfg:     cfg,
		r:       newRng(cfg.Seed),
		rep:     &Report{Seed: cfg.Seed, Steps: cfg.Steps, Faults: make(map[FaultClass]int)},
		events:  make(chan simEvent, 4096),
		wakes:   make(map[int64]chan struct{}),
		release: make(chan struct{}),
		done:    make(map[int64]bool),
		bySid:   make(map[int64]*slot),
		roSnap:  cfg.Backend == "mvto",
	}
	s.clock.Store(1)
	for i := 0; i < cfg.Objects; i++ {
		s.objs = append(s.objs, fmt.Sprintf("r%d", i))
	}
	if err := s.boot(server.NewMemDisk(), nil); err != nil {
		return s.rep, err
	}
	err := s.drive()
	if err == nil {
		err = s.finish()
	}
	if err != nil {
		return s.rep, fmt.Errorf("sim: seed %d: %w", cfg.Seed, err)
	}
	return s.rep, nil
}

func (s *sim) serverOpts(disk *server.MemDisk) server.Options {
	return server.Options{
		Protocol:       s.cfg.Protocol,
		Backend:        s.cfg.Backend,
		Objects:        s.objs,
		LockTimeout:    40 * time.Millisecond, // virtual
		LockPoll:       time.Millisecond,
		LockPollMax:    8 * time.Millisecond,
		LogShards:      s.cfg.Shards,
		CertPartitions: s.cfg.CertPartitions,
		WAL:            disk,
		Hooks:          &simHooks{s: s, gen: s.gen.Load()},
	}
}

// boot recovers a server from disk (fresh or post-crash) and connects
// every client slot to it over a pipe.
func (s *sim) boot(disk *server.MemDisk, into []*slot) error {
	s.disk = disk
	srv, rrep, err := server.Recover(s.serverOpts(disk))
	if err != nil {
		return fmt.Errorf("recover: %w", err)
	}
	if !rrep.AuditOK {
		srv.Kill()
		return fmt.Errorf("recovery audit skipped unexpectedly: %s", rrep.Summary())
	}
	s.srv = srv
	s.rep.OrphanTops += rrep.OrphanTops
	s.rep.FixupInforms += rrep.FixupInforms
	s.rep.TornBytes += rrep.TornBytes
	if err := s.checkOracle(); err != nil {
		return err
	}
	if err := srv.AuditObjects(); err != nil {
		return fmt.Errorf("post-recovery object audit: %w", err)
	}
	s.bySid = make(map[int64]*slot)
	if into == nil {
		for i := 0; i < s.cfg.Sessions; i++ {
			s.slots = append(s.slots, &slot{idx: i})
		}
		into = s.slots
	}
	for _, sl := range into {
		if err := s.connect(sl); err != nil {
			return err
		}
	}
	return nil
}

// connect gives sl a fresh pipe-backed session on the current server.
func (s *sim) connect(sl *slot) error {
	clientEnd, serverEnd := net.Pipe()
	sid := s.srv.ServeConn(serverEnd)
	if sid < 0 {
		return fmt.Errorf("slot %d: server refused connection", sl.idx)
	}
	sl.conn = clientEnd
	sl.w = bufio.NewWriter(clientEnd)
	sl.sid = sid
	sl.connID++
	sl.phase = phIdle
	sl.inTx = false
	sl.depth = 0
	sl.ro = false
	sl.roReads = nil
	s.bySid[sid] = sl
	go s.reader(s.gen.Load(), sl.idx, sl.connID, clientEnd)
	return nil
}

// reader forwards response frames (or the terminal transport error) from
// one connection to the driver.
func (s *sim) reader(gen uint64, idx, connID int, c net.Conn) {
	r := bufio.NewReader(c)
	var buf []byte
	for {
		payload, err := wire.ReadFrame(r, buf)
		if err != nil {
			s.send(gen, simEvent{kind: evResp, slot: idx, conn: connID, err: err})
			return
		}
		buf = payload
		s.send(gen, simEvent{kind: evResp, slot: idx, conn: connID, data: append([]byte(nil), payload...)})
	}
}

// drive runs the scheduler: one decision per step.
func (s *sim) drive() error {
	for step := 0; step < s.cfg.Steps; step++ {
		if s.stalled() {
			if s.stallLeft--; s.stallLeft <= 0 {
				if err := s.unstall(); err != nil {
					return fmt.Errorf("step %d: %w", step, err)
				}
			}
		}
		if s.mstalled() {
			if s.mstallLeft--; s.mstallLeft <= 0 {
				if err := s.unstallMerge(); err != nil {
					return fmt.Errorf("step %d: %w", step, err)
				}
			}
		}
		if s.pstalled() {
			if s.pstallLeft--; s.pstallLeft <= 0 {
				if err := s.unstallPart(); err != nil {
					return fmt.Errorf("step %d: %w", step, err)
				}
			}
		}
		if err := s.tick(); err != nil {
			return fmt.Errorf("step %d: %w", step, err)
		}
	}
	return nil
}

// tick makes one scheduler decision: inject a fault, wake a parked
// session, or issue one request on an idle session.
func (s *sim) tick() error {
	if len(s.cfg.Faults) > 0 && s.r.intn(1000) < s.cfg.FaultPermille {
		class := s.cfg.Faults[s.r.intn(len(s.cfg.Faults))]
		if did, err := s.fault(class); err != nil || did {
			return err
		}
		// Fault not applicable right now (e.g. nothing to drop): fall
		// through to a normal decision.
	}
	parked := s.phaseSlots(phParkLock)
	idle := s.phaseSlots(phIdle)
	if len(parked) > 0 && (len(idle) == 0 || s.r.intn(100) < 40) {
		return s.wakeOne(parked[s.r.intn(len(parked))])
	}
	if len(idle) == 0 {
		if s.stalled() {
			return s.unstall()
		}
		if s.mstalled() {
			return s.unstallMerge()
		}
		if s.pstalled() {
			return s.unstallPart()
		}
		return fmt.Errorf("no runnable session (phases %v)", s.phases())
	}
	sl := idle[s.r.intn(len(idle))]
	return s.perform(sl, s.nextRequest(sl))
}

func (s *sim) phases() []int {
	out := make([]int, len(s.slots))
	for i, sl := range s.slots {
		out[i] = sl.phase
	}
	return out
}

func (s *sim) phaseSlots(phase int) []*slot {
	var out []*slot
	for _, sl := range s.slots {
		if sl.phase == phase {
			out = append(out, sl)
		}
	}
	return out
}

// nextRequest samples the next workload request for an idle slot. The
// read-only draw happens only when ROPermille is set, so configurations
// without read-only traffic consume exactly the rng stream they always did.
func (s *sim) nextRequest(sl *slot) wire.Request {
	if !sl.inTx {
		q := wire.Request{Cmd: wire.CmdBegin}
		if s.cfg.ROPermille > 0 && s.r.intn(1000) < s.cfg.ROPermille {
			q.RO = true
		}
		return q
	}
	roll := s.r.intn(100)
	switch {
	case roll < 55:
		obj := s.objs[s.r.intn(len(s.objs))]
		if sl.ro || s.r.intn(100) < 40 {
			return wire.Request{Cmd: wire.CmdAccess, Obj: obj, Op: spec.OpRead, Arg: spec.Nil}
		}
		return wire.Request{Cmd: wire.CmdAccess, Obj: obj, Op: spec.OpWrite, Arg: spec.Int(int64(s.r.intn(8)))}
	case roll < 65:
		return wire.Request{Cmd: wire.CmdChild}
	case roll < 85:
		return wire.Request{Cmd: wire.CmdCommit}
	default:
		return wire.Request{Cmd: wire.CmdAbort}
	}
}

// perform sends one request on sl and pumps events until the session
// settles (response, lock park, or certifier park).
func (s *sim) perform(sl *slot, q wire.Request) error {
	sl.out = wire.AppendRequest(sl.out[:0], q)
	if err := wire.WriteFrame(sl.w, sl.out); err != nil {
		return fmt.Errorf("slot %d: write %s: %w", sl.idx, q.Cmd, err)
	}
	sl.lastCmd = q.Cmd
	sl.lastRO = q.RO
	sl.lastObj = q.Obj
	sl.phase = phAwait
	return s.pumpUntil(func() bool { return sl.phase != phAwait })
}

// wakeOne advances the virtual clock by the parked session's requested
// backoff, wakes it, and pumps until it settles again.
func (s *sim) wakeOne(sl *slot) error {
	s.clock.Add(int64(sl.parkDur))
	sl.phase = phAwait
	s.mu.Lock()
	wake := s.wakes[sl.sid]
	delete(s.wakes, sl.sid)
	s.mu.Unlock()
	if wake == nil {
		return fmt.Errorf("slot %d: parked without a wake channel", sl.idx)
	}
	close(wake)
	return s.pumpUntil(func() bool { return sl.phase != phAwait })
}

// pumpUntil consumes driver events until pred holds.
func (s *sim) pumpUntil(pred func() bool) error {
	for !pred() {
		ev := <-s.events
		if ev.gen != s.gen.Load() {
			continue
		}
		if err := s.handleEvent(ev); err != nil {
			return err
		}
	}
	return nil
}

func (s *sim) handleEvent(ev simEvent) error {
	switch ev.kind {
	case evPark:
		if sl := s.bySid[ev.sess]; sl != nil && sl.phase != phClosed {
			if sl.ro && s.roSnap {
				return fmt.Errorf("slot %d: snapshot read-only transaction parked on a lock wait", sl.idx)
			}
			sl.phase = phParkLock
			sl.parkDur = ev.dur
		}
	case evCommitWait:
		sl := s.bySid[ev.sess]
		if sl == nil || sl.phase != phAwait {
			return nil
		}
		s.mu.Lock()
		st := s.stall
		pst := s.pstall
		s.mu.Unlock()
		// Either stall pins the certified watermark at its from — the
		// partition stall because the frozen partition's bound is the min
		// — so the park rule is the same for both.
		if st != nil && ev.seq >= st.from {
			sl.phase = phParkCert
		}
		if pst != nil && ev.seq >= pst.from {
			sl.phase = phParkCert
		}
	case evMergeWait:
		// The session is about to wait for the merged prefix to cover
		// ev.seq; it blocks exactly when the stalled shard has a pending
		// ticket ≤ ev.seq. The query is deterministic: entries at or past
		// the stall point only accumulate while the stall holds, and no
		// other session is mid-request when the driver handles this.
		sl := s.bySid[ev.sess]
		if sl == nil || sl.phase != phAwait {
			return nil
		}
		s.mu.Lock()
		mst := s.mstall
		s.mu.Unlock()
		if mst == nil {
			return nil
		}
		if b := s.srv.MergeBoundAfter(mst.shard, mst.from); b >= 0 && b <= ev.seq {
			sl.phase = phParkCert
		}
	case evDone:
		s.done[ev.sess] = true
	case evResp:
		sl := s.slots[ev.slot]
		if ev.conn != sl.connID {
			return nil // a reader of a replaced connection winding down
		}
		if ev.err != nil {
			if sl.phase == phClosed {
				return nil // expected: we dropped this connection
			}
			return fmt.Errorf("slot %d: transport error: %w", sl.idx, ev.err)
		}
		if sl.phase == phClosed {
			return nil // response raced our drop; the session is dying
		}
		resp, err := wire.ParseResponse(sl.lastCmd, ev.data)
		if err != nil {
			return fmt.Errorf("slot %d: parse %s response: %w", sl.idx, sl.lastCmd, err)
		}
		return s.applyResp(sl, resp)
	}
	return nil
}

// applyResp folds a response into the slot's workload cursor.
func (s *sim) applyResp(sl *slot, resp wire.Response) error {
	sl.phase = phIdle
	switch resp.Status {
	case wire.StatusOK:
		switch sl.lastCmd {
		case wire.CmdBegin:
			sl.inTx = true
			sl.depth = 1
			sl.ro = sl.lastRO
			sl.roReads = nil
			s.rep.Begins++
			if sl.ro {
				s.rep.ROBegins++
			}
		case wire.CmdChild:
			sl.depth++
		case wire.CmdAccess:
			s.rep.Accesses++
			if sl.ro {
				s.rep.ROReads++
				if s.roSnap {
					sl.roReads = append(sl.roReads, roRead{obj: sl.lastObj, val: resp.Value})
				}
			}
		case wire.CmdCommit:
			if sl.depth--; sl.depth == 0 {
				sl.inTx = false
				s.rep.TopCommits++
				s.endRO(sl)
			}
		case wire.CmdAbort:
			if sl.depth--; sl.depth == 0 {
				sl.inTx = false
				s.endRO(sl)
			}
		default:
			// CmdVerdict/CmdPing responses carry no cursor state; the
			// workload generator never sends them anyway.
		}
	case wire.StatusTxAborted:
		if sl.ro && s.roSnap {
			return fmt.Errorf("slot %d: snapshot read-only transaction aborted by server: %s", sl.idx, resp.Reason)
		}
		sl.inTx = false
		sl.depth = 0
		sl.ro = false
		sl.roReads = nil
		s.rep.TxAborts++
	default:
		return fmt.Errorf("slot %d: server rejected %s: %s", sl.idx, sl.lastCmd, resp.Reason)
	}
	return nil
}

// endRO closes out a finished read-only top-level transaction: on a
// snapshot backend its completed read set is queued for the
// prefix-consistency validation in finish().
func (s *sim) endRO(sl *slot) {
	if sl.ro && s.roSnap && len(sl.roReads) > 0 {
		s.roSets = append(s.roSets, sl.roReads)
	}
	sl.ro = false
	sl.roReads = nil
}

// fault injects one fault; did=false means the class is not applicable in
// the current state and the step should fall through to normal work.
func (s *sim) fault(class FaultClass) (did bool, err error) {
	switch class {
	case FaultDrop:
		if s.mstalled() {
			// The disconnect abort must drain through the merged watermark
			// before SessionDone; behind a stalled shard that would wedge
			// the driver's wait for the session to retire.
			return false, nil
		}
		var open []*slot
		for _, sl := range s.slots {
			if sl.phase == phIdle && sl.inTx {
				open = append(open, sl)
			}
		}
		if len(open) == 0 {
			return false, nil
		}
		s.rep.Faults[class]++
		return true, s.drop(open[s.r.intn(len(open))], wire.Request{})
	case FaultDropAfterCommit:
		if s.stalled() || s.mstalled() || s.pstalled() {
			// The dropped session's COMMIT parks on the stalled watermark
			// (or merge front), and with it the driver's wait for the
			// session to retire.
			return false, nil
		}
		var open []*slot
		for _, sl := range s.slots {
			if sl.phase == phIdle && sl.inTx {
				open = append(open, sl)
			}
		}
		if len(open) == 0 {
			return false, nil
		}
		s.rep.Faults[class]++
		return true, s.drop(open[s.r.intn(len(open))], wire.Request{Cmd: wire.CmdCommit})
	case FaultCertStall:
		// Mutually exclusive with a merge stall: their unstall drains both
		// pump on "no slot parked behind a watermark", so overlapping
		// stalls would make either lift wait on the other's parks.
		s.mu.Lock()
		already := s.stall != nil || s.mstall != nil || s.pstall != nil
		if !already {
			s.stall = &stallState{from: s.srv.LogLen(), released: make(chan struct{})}
		}
		s.mu.Unlock()
		if already {
			return false, nil
		}
		s.stallLeft = 5 + s.r.intn(20)
		s.rep.Faults[class]++
		return true, nil
	case FaultMergeStall:
		s.mu.Lock()
		already := s.stall != nil || s.mstall != nil || s.pstall != nil
		if !already {
			// from = LogLen(): no entry at or past the stall point exists
			// yet, so the stalled shard's pending-set grows monotonically
			// for the stall's whole lifetime — the driver's park decisions
			// stay a pure function of its own history.
			s.mstall = &mergeStallState{
				shard:    s.r.intn(s.srv.LogShards()),
				from:     s.srv.LogLen(),
				released: make(chan struct{}),
			}
		}
		s.mu.Unlock()
		if already {
			return false, nil
		}
		s.mstallLeft = 5 + s.r.intn(20)
		s.rep.Faults[class]++
		return true, nil
	case FaultClockStorm:
		parked := s.phaseSlots(phParkLock)
		if len(parked) == 0 {
			return false, nil
		}
		s.rep.Faults[class]++
		// Jump past every lock-wait deadline, then deliver the storm:
		// every parked poll times out as it wakes.
		s.clock.Add(int64(41 * time.Millisecond))
		for _, sl := range parked {
			if err := s.wakeOne(sl); err != nil {
				return true, err
			}
		}
		return true, nil
	case FaultPartStall:
		// Applicability is decided before any random draw, so runs with a
		// single certifier treat the class as a deterministic no-op.
		if s.srv.CertPartitions() <= 1 {
			return false, nil
		}
		s.mu.Lock()
		already := s.stall != nil || s.mstall != nil || s.pstall != nil
		if !already {
			// from = LogLen(): the frozen partition delivers its bound up
			// to from and blocks, so the composed watermark settles exactly
			// at from and the park decisions below stay deterministic.
			s.pstall = &partStallState{
				part:     s.r.intn(s.srv.CertPartitions()),
				from:     s.srv.LogLen(),
				released: make(chan struct{}),
			}
		}
		s.mu.Unlock()
		if already {
			return false, nil
		}
		s.pstallLeft = 5 + s.r.intn(20)
		s.rep.Faults[class]++
		return true, nil
	case FaultXPartDeadlock:
		if len(s.objs) < 2 {
			return false, nil
		}
		// Read-only slots are excluded: the crossing pattern needs writes,
		// which a snapshot backend rejects on a read-only session.
		var open []*slot
		for _, sl := range s.slots {
			if sl.phase == phIdle && sl.inTx && !sl.ro {
				open = append(open, sl)
			}
		}
		if len(open) < 2 {
			return false, nil
		}
		s.rep.Faults[class]++
		// Two distinct objects and two distinct sessions, all drawn
		// independently of the partition count so the injection (and the
		// trace it produces) is identical at any CertPartitions.
		i := s.r.intn(len(s.objs))
		j := s.r.intn(len(s.objs) - 1)
		if j >= i {
			j++
		}
		a := s.r.intn(len(open))
		b := s.r.intn(len(open) - 1)
		if b >= a {
			b++
		}
		p := s.srv.CertPartitions()
		if part.Owner(s.objs[i], p) != part.Owner(s.objs[j], p) {
			s.rep.XPartSpans++
		}
		return true, s.xpartDeadlock(open[a], open[b], s.objs[i], s.objs[j])
	case FaultCrash:
		s.rep.Faults[class]++
		return true, s.crash()
	}
	return false, fmt.Errorf("unknown fault class %d", class)
}

// drop closes a slot's connection (optionally sending one last frame
// first — the drop-after-commit variant), waits for the server to retire
// the session, and reconnects the slot.
func (s *sim) drop(sl *slot, last wire.Request) error {
	if last.Cmd != wire.CmdInvalid {
		sl.out = wire.AppendRequest(sl.out[:0], last)
		if err := wire.WriteFrame(sl.w, sl.out); err != nil {
			return fmt.Errorf("slot %d: write %s before drop: %w", sl.idx, last.Cmd, err)
		}
		sl.lastCmd = last.Cmd
	}
	sl.phase = phClosed
	sl.conn.Close()
	sid := sl.sid
	if err := s.pumpUntil(func() bool { return s.done[sid] }); err != nil {
		return err
	}
	delete(s.bySid, sid)
	return s.connect(sl)
}

// xpartDeadlock drives sessions a and b into a crossing write conflict:
// a writes x then wants y, b writes y then wants x. Whenever both halves
// of the cross block, the waits-for edge spans the two objects' owner
// partitions (when they differ); the server's deadlock detector or lock
// timeout must resolve it exactly as a same-partition cycle. Each access
// is only issued while its session is still idle inside its transaction
// — an earlier park or abort leaves a harmless partial pattern.
func (s *sim) xpartDeadlock(a, b *slot, x, y string) error {
	steps := []struct {
		sl  *slot
		obj string
	}{{a, x}, {b, y}, {a, y}, {b, x}}
	for _, st := range steps {
		if st.sl.phase != phIdle || !st.sl.inTx {
			continue
		}
		q := wire.Request{Cmd: wire.CmdAccess, Obj: st.obj, Op: spec.OpWrite, Arg: spec.Int(int64(s.r.intn(8)))}
		if err := s.perform(st.sl, q); err != nil {
			return err
		}
	}
	return nil
}

// stalled reports whether a certifier stall is active. Only the driver
// writes s.stall, but the stalled certifier reads it under mu from its own
// goroutine (simHooks.CertApply), so the driver's reads take the lock too
// rather than rely on "single writer" reasoning the analyzer cannot check.
func (s *sim) stalled() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stall != nil
}

// unstall lifts a certifier stall and pumps until every commit parked on
// the watermark has its response.
func (s *sim) unstall() error {
	s.mu.Lock()
	st := s.stall
	s.stall = nil
	s.mu.Unlock()
	if st == nil {
		return nil
	}
	close(st.released)
	return s.pumpUntil(func() bool { return len(s.phaseSlots(phParkCert)) == 0 })
}

// mstalled reports whether a merge stall is active (locked for the same
// reason as stalled: the merger reads s.mstall from its own goroutine).
func (s *sim) mstalled() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.mstall != nil
}

// unstallMerge lifts a merge stall and pumps until every completion parked
// on the merged watermark has its response.
func (s *sim) unstallMerge() error {
	s.mu.Lock()
	st := s.mstall
	s.mstall = nil
	s.mu.Unlock()
	if st == nil {
		return nil
	}
	close(st.released)
	return s.pumpUntil(func() bool { return len(s.phaseSlots(phParkCert)) == 0 })
}

// pstalled reports whether a certifier-partition stall is active (locked
// for the same reason as stalled: the frozen partition worker reads
// s.pstall from its own goroutine).
func (s *sim) pstalled() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pstall != nil
}

// unstallPart lifts a partition stall and pumps until every commit parked
// on the composed watermark has its response.
func (s *sim) unstallPart() error {
	s.mu.Lock()
	st := s.pstall
	s.pstall = nil
	s.mu.Unlock()
	if st == nil {
		return nil
	}
	close(st.released)
	return s.pumpUntil(func() bool { return len(s.phaseSlots(phParkCert)) == 0 })
}

// crash kills the server at the current instant and recovers it from the
// durable prefix plus a random torn tail.
func (s *sim) crash() error {
	// Settle the merger at its deterministic fixpoint before snapshotting
	// the disk: every ticketed entry merges, except that an active merge
	// stall pins the merge front at the stalled shard's first pending
	// ticket. The stall is NOT lifted first — releasing it would let the
	// parked sessions race their fsyncs against the snapshot below.
	settle := s.srv.LogLen()
	s.mu.Lock()
	mst := s.mstall
	s.mu.Unlock()
	if mst != nil {
		if b := s.srv.MergeBoundAfter(mst.shard, mst.from); b >= 0 && b < settle {
			settle = b
		}
	}
	s.srv.SettleMerged(settle)

	keep := 0
	if u := s.disk.UnsyncedBytes(); u > 0 {
		keep = s.r.intn(u + 1)
	}
	crashDisk := s.disk.Crash(keep)
	s.disk.Freeze()

	// Retire the generation: stale hooks return immediately, parked
	// sessions, a stalled certifier and a stalled merger fall out of their
	// hooks (the dying merger drains the rest of its queue onto the frozen
	// disk, harmlessly), and every event they still emit is discarded by
	// the gen filter.
	s.mu.Lock()
	s.gen.Add(1)
	close(s.release)
	s.release = make(chan struct{})
	s.wakes = make(map[int64]chan struct{})
	s.stall = nil
	s.mstall = nil
	s.pstall = nil
	s.mu.Unlock()

	// Discard the incarnation's read-only read sets: a set may have read a
	// published commit whose WAL record was unsynced at the crash instant,
	// and such a commit is legitimately missing from the stitched log.
	s.roSets = nil

	s.srv.Kill()
	for _, sl := range s.slots {
		sl.conn.Close()
	}
	for {
		select {
		case <-s.events: // drain stale events
			continue
		default:
		}
		break
	}
	s.rep.Recoveries++
	return s.boot(crashDisk, s.slots)
}

// checkOracle cross-checks the current log against the sibling-order
// search on small runs: an SG-certified behavior must admit a suitable
// sibling order (Theorem 2 ⊆ Theorem 8/19).
func (s *sim) checkOracle() error {
	if s.cfg.OracleMaxEvents < 0 {
		return nil
	}
	b := s.srv.Log()
	if len(b) > s.cfg.OracleMaxEvents {
		return nil
	}
	res := oracle.Search(s.srv.Tree(), b, 200000)
	if res.Outcome == oracle.NoOrder {
		return fmt.Errorf("oracle found no sibling order for an SG-certified %d-event log", len(b))
	}
	return nil
}

// finish drains the run deterministically: lift any stall, wake every
// parked session to its resolution, abort the open transactions, retire
// all sessions, shut down, and verify the final certificate — the online
// snapshot must match the batch check byte for byte, and recovering the
// final WAL must reproduce the exact trace.
func (s *sim) finish() error {
	if err := s.unstall(); err != nil {
		return fmt.Errorf("final unstall: %w", err)
	}
	if err := s.unstallMerge(); err != nil {
		return fmt.Errorf("final merge unstall: %w", err)
	}
	if err := s.unstallPart(); err != nil {
		return fmt.Errorf("final partition unstall: %w", err)
	}
	for {
		parked := s.phaseSlots(phParkLock)
		if len(parked) == 0 {
			break
		}
		if err := s.wakeOne(parked[0]); err != nil {
			return fmt.Errorf("final wake: %w", err)
		}
	}
	for _, sl := range s.slots {
		for sl.inTx {
			if err := s.perform(sl, wire.Request{Cmd: wire.CmdAbort}); err != nil {
				return fmt.Errorf("final abort: %w", err)
			}
			if sl.phase != phIdle {
				return fmt.Errorf("final abort parked slot %d (phase %d)", sl.idx, sl.phase)
			}
		}
	}
	for _, sl := range s.slots {
		sl.phase = phClosed
		sl.conn.Close()
	}
	if err := s.pumpUntil(func() bool {
		for _, sl := range s.slots {
			if !s.done[sl.sid] {
				return false
			}
		}
		return true
	}); err != nil {
		return err
	}
	if err := s.srv.Shutdown(context.Background()); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := s.srv.WALError(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	f := s.srv.Final()
	if !f.Batch.OK {
		return fmt.Errorf("final batch check failed: %s", f.Batch.Summary(s.srv.Tree()))
	}
	if !f.Match {
		return fmt.Errorf("final online SG differs from batch SG")
	}
	s.rep.FinalEvents = f.Events
	s.rep.Trace = event.MarshalBinaryTrace(s.srv.Tree(), s.srv.Log())
	if f.Batch.SG != nil {
		s.rep.CertDOT = f.Batch.SG.DOT()
	}
	s.rep.FinalDisk = s.disk
	timeline := s.committedTimeline()
	s.rep.FinalState = s.finalState(timeline)
	if err := s.checkOracle(); err != nil {
		return err
	}
	if err := s.validateROSets(timeline); err != nil {
		return err
	}
	if err := s.srv.AuditObjects(); err != nil {
		return fmt.Errorf("final object audit: %w", err)
	}

	// The WAL of the clean shutdown must recover to the identical trace,
	// through the same backend that produced it.
	s2, rrep, err := server.Recover(server.Options{
		Protocol: s.cfg.Protocol,
		Backend:  s.cfg.Backend,
		Objects:  s.objs,
		WAL:      s.disk,
	})
	if err != nil {
		return fmt.Errorf("re-recovering final wal: %w", err)
	}
	if !rrep.AuditOK || rrep.OrphanTops != 0 || rrep.FixupInforms != 0 {
		s2.Kill()
		return fmt.Errorf("final wal needed repair: %s", rrep.Summary())
	}
	trace2 := event.MarshalBinaryTrace(s2.Tree(), s2.Log())
	s2.Kill()
	if !bytes.Equal(s.rep.Trace, trace2) {
		return fmt.Errorf("final wal recovers to a different trace (%d vs %d bytes)", len(trace2), len(s.rep.Trace))
	}
	return nil
}
