package sim_test

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"nestedsg/internal/locking"
	"nestedsg/internal/object"
	"nestedsg/internal/sim"
	"nestedsg/internal/undolog"
)

// seeds caps the long soak; `make sim-soak` raises it to 64.
var seedsFlag = flag.Int("seeds", 16, "number of seeds for TestSimLongSoak")

var protocols = []struct {
	name string
	p    object.Protocol
}{
	{"moss", locking.Protocol{}},
	{"undolog", undolog.Protocol{}},
}

// TestSimFaultMatrix runs every fault class against every protocol, each
// as a named standalone subtest. The runs are deterministic: a failure
// message always carries the seed that reproduces it.
func TestSimFaultMatrix(t *testing.T) {
	for _, proto := range protocols {
		for _, class := range sim.AllFaults() {
			proto, class := proto, class
			t.Run(fmt.Sprintf("%s/%s", proto.name, class), func(t *testing.T) {
				t.Parallel()
				for seed := uint64(1); seed <= 3; seed++ {
					cfg := sim.Config{
						Seed:     seed,
						Steps:    160,
						Protocol: proto.p,
						// Two certifier partitions: part-stall needs P > 1
						// to inject, and every other class should certify
						// through the partitioned backend too.
						CertPartitions: 2,
						Faults:         []sim.FaultClass{class},
						FaultPermille:  200,
					}
					rep, err := sim.Run(cfg)
					if err != nil {
						t.Fatalf("seed %d: %v\nreproduce: sim.Run(%+v)", seed, err, cfg)
					}
					if rep.Faults[class] == 0 {
						t.Errorf("seed %d: fault %s never injected: %s", seed, class, rep.Summary())
					}
				}
			})
		}
	}
}

// TestSimNoFaults: the fault-free simulator is a plain concurrency
// exerciser and must still certify.
func TestSimNoFaults(t *testing.T) {
	for _, proto := range protocols {
		rep, err := sim.Run(sim.Config{Seed: 7, Steps: 200, Protocol: proto.p})
		if err != nil {
			t.Fatalf("%s: %v", proto.name, err)
		}
		if rep.TopCommits == 0 {
			t.Fatalf("%s: no transaction ever committed: %s", proto.name, rep.Summary())
		}
	}
}

// TestSimDeterministicReplay: the whole point of the simulator — the same
// seed replays to the identical report and byte-identical event trace,
// fault storms, crashes and all.
func TestSimDeterministicReplay(t *testing.T) {
	cfg := sim.Config{
		Seed:          42,
		Steps:         250,
		Faults:        sim.AllFaults(),
		FaultPermille: 120,
	}
	a, err := sim.Run(cfg)
	if err != nil {
		t.Fatalf("first run: %v", err)
	}
	b, err := sim.Run(cfg)
	if err != nil {
		t.Fatalf("second run: %v", err)
	}
	if a.Summary() != b.Summary() {
		t.Fatalf("reports diverge:\n  %s\n  %s", a.Summary(), b.Summary())
	}
	if !bytes.Equal(a.Trace, b.Trace) {
		t.Fatalf("traces diverge for the same seed (%d vs %d bytes)", len(a.Trace), len(b.Trace))
	}
	if a.Recoveries == 0 {
		t.Fatalf("determinism run never crashed — raise FaultPermille: %s", a.Summary())
	}
}

// TestSimLongSoak sweeps many seeds with every fault class enabled. Any
// failure prints the seed; with SIM_FAILURE_DIR set, it also writes a
// per-seed artifact so CI can upload the repro.
func TestSimLongSoak(t *testing.T) {
	n := *seedsFlag
	if testing.Short() && n > 8 {
		n = 8
	}
	for i := 0; i < n; i++ {
		seed := uint64(1000 + i)
		proto := protocols[i%len(protocols)]
		t.Run(fmt.Sprintf("seed=%d/%s", seed, proto.name), func(t *testing.T) {
			t.Parallel()
			cfg := sim.Config{
				Seed:          seed,
				Steps:         220,
				Protocol:      proto.p,
				Faults:        sim.AllFaults(),
				FaultPermille: 80,
			}
			rep, err := sim.Run(cfg)
			if err != nil {
				writeFailureArtifact(t, seed, proto.name, err, rep)
				t.Fatalf("seed %d (%s): %v", seed, proto.name, err)
			}
		})
	}
}

// writeFailureArtifact records a failing seed under SIM_FAILURE_DIR (when
// set) so the CI workflow can upload it.
func writeFailureArtifact(t *testing.T, seed uint64, proto string, err error, rep *sim.Report) {
	dir := os.Getenv("SIM_FAILURE_DIR")
	if dir == "" {
		return
	}
	if mkErr := os.MkdirAll(dir, 0o755); mkErr != nil {
		t.Logf("artifact dir: %v", mkErr)
		return
	}
	body := fmt.Sprintf("seed: %d\nprotocol: %s\nerror: %v\n", seed, proto, err)
	if rep != nil {
		body += "report: " + rep.Summary() + "\n"
	}
	path := filepath.Join(dir, fmt.Sprintf("seed-%d-%s.txt", seed, proto))
	if wErr := os.WriteFile(path, []byte(body), 0o644); wErr != nil {
		t.Logf("artifact write: %v", wErr)
	} else {
		t.Logf("failure artifact written to %s", path)
	}
}

// TestSimE18FaultSweep is experiment E18: abort rate and recovery repair
// work as the fault rate sweeps 0%, 1%, 5%, 20%. Certificate agreement is
// implied by every run returning nil (each crash recovery and the final
// drain audit online-vs-batch byte equality).
func TestSimE18FaultSweep(t *testing.T) {
	steps := 220
	seedsPer := 4
	if testing.Short() {
		steps, seedsPer = 120, 2
	}
	t.Logf("%-8s %8s %8s %8s %10s %8s %8s", "fault%", "begins", "commits", "aborts", "abortrate", "crashes", "orphans")
	for _, permille := range []int{0, 10, 50, 200} {
		var begins, commits, aborts, crashes, orphans int
		for i := 0; i < seedsPer; i++ {
			cfg := sim.Config{
				Seed:          uint64(9000 + 100*permille + i),
				Steps:         steps,
				Faults:        sim.AllFaults(),
				FaultPermille: permille,
			}
			if permille == 0 {
				cfg.Faults = nil
			}
			rep, err := sim.Run(cfg)
			if err != nil {
				t.Fatalf("permille=%d seed=%d: %v", permille, cfg.Seed, err)
			}
			begins += rep.Begins
			commits += rep.TopCommits
			aborts += rep.TxAborts
			crashes += rep.Recoveries
			orphans += rep.OrphanTops
		}
		rate := 0.0
		if begins > 0 {
			rate = float64(aborts) / float64(begins)
		}
		t.Logf("%-8.1f %8d %8d %8d %9.1f%% %8d %8d",
			float64(permille)/10, begins, commits, aborts, 100*rate, crashes, orphans)
	}
}
