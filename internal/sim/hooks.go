package sim

import (
	"runtime"
	"time"
)

// Event kinds flowing from the server (via hooks and per-connection
// readers) to the single driver goroutine.
type evKind uint8

const (
	// evPark: a session entered Hooks.LockWait and is blocked until the
	// driver wakes it.
	evPark evKind = iota
	// evCommitWait: a session logged a COMMIT at log index seq and is
	// about to block on the certification watermark.
	evCommitWait
	// evMergeWait: a session is about to block until the merged log
	// covers log index seq (a completion's durability point).
	evMergeWait
	// evDone: a session's serve loop finished; all of its events are in
	// the log.
	evDone
	// evResp: a response frame (or transport error) arrived on a client
	// connection.
	evResp
)

// simEvent is one message on the driver's central channel. Events carry
// the server generation that produced them; the driver discards events
// from a generation that has since been crashed.
type simEvent struct {
	gen  uint64
	kind evKind
	sess int64 // server session id (evPark, evCommitWait, evDone)
	slot int   // client slot index (evResp)
	conn int   // slot connection number (evResp); filters readers of replaced connections
	dur  time.Duration
	seq  int
	data []byte // raw response payload (evResp)
	err  error  // transport error (evResp)
}

// simHooks implements server.Hooks for one server incarnation
// (generation). Stale hooks — ones whose generation was retired by a
// simulated crash — return immediately so the dying server's goroutines
// can run to completion without touching the simulation.
type simHooks struct {
	s   *sim
	gen uint64
}

// Now returns the virtual clock; only the driver advances it.
func (h *simHooks) Now() time.Time {
	return time.Unix(0, h.s.clock.Load())
}

// LockWait parks the session until the driver wakes it (advancing the
// virtual clock by d first) or the generation is retired.
func (h *simHooks) LockWait(sess int64, d time.Duration) {
	s := h.s
	s.mu.Lock()
	if h.gen != s.gen.Load() {
		s.mu.Unlock()
		return
	}
	wake := make(chan struct{})
	s.wakes[sess] = wake
	rel := s.release
	s.mu.Unlock()
	s.send(h.gen, simEvent{kind: evPark, sess: sess, dur: d})
	select {
	case <-wake:
	case <-rel:
	}
}

// CertApply blocks the certifier at indexes at or beyond an active stall
// point until the driver lifts the stall or retires the generation. The
// server calls it without any lock held, so a stalled certifier never
// wedges the sessions.
func (h *simHooks) CertApply(index int) {
	s := h.s
	for {
		s.mu.Lock()
		if h.gen != s.gen.Load() {
			s.mu.Unlock()
			return
		}
		st := s.stall
		rel := s.release
		s.mu.Unlock()
		if st == nil || index < st.from {
			return
		}
		select {
		case <-st.released:
		case <-rel:
			return
		}
	}
}

// CertBatch bounds a certifier run at the active stall point: events
// before the stall may be applied as one run, events at or past it keep
// blocking in CertApply. The happens-before chain that makes the read
// reliable: the driver installs the stall with from = LogLen() under s.mu,
// so any event at index ≥ from was appended — and therefore fetched by the
// certifier — after the install, and this read (also under s.mu) sees it.
// Without a stall the full window is allowed.
func (h *simHooks) CertBatch(index, max int) int {
	s := h.s
	s.mu.Lock()
	st := s.stall
	stale := h.gen != s.gen.Load()
	s.mu.Unlock()
	if stale || st == nil {
		return max
	}
	if d := st.from - index; d > 0 && d < max {
		return d
	}
	return max
}

// PartApply blocks certifier partitions at the active stall fronts: a
// certifier stall (FaultCertStall) freezes EVERY partition at indexes at
// or beyond its from — so the fault behaves identically at any partition
// count, watermark pinned at from — while a partition stall
// (FaultPartStall) freezes just its chosen partition. The workers call
// it with no lock held and with their delivered bound already at the
// stall front (the worker flushes each run's edge batch before the next
// PartApply), so the composed watermark settles exactly at from.
func (h *simHooks) PartApply(part, index int) {
	s := h.s
	for {
		s.mu.Lock()
		if h.gen != s.gen.Load() {
			s.mu.Unlock()
			return
		}
		st := s.stall
		pst := s.pstall
		rel := s.release
		s.mu.Unlock()
		var released chan struct{}
		switch {
		case st != nil && index >= st.from:
			released = st.released
		case pst != nil && part == pst.part && index >= pst.from:
			released = pst.released
		default:
			return
		}
		select {
		case <-released:
		case <-rel:
			return
		}
	}
}

// PartBatch cuts a partition's locked run at the nearest active stall
// front, exactly like CertBatch: events before the front may be applied
// as one run, events at or past it keep blocking in PartApply.
func (h *simHooks) PartBatch(part, index, max int) int {
	s := h.s
	s.mu.Lock()
	st := s.stall
	pst := s.pstall
	stale := h.gen != s.gen.Load()
	s.mu.Unlock()
	if stale {
		return max
	}
	if st != nil {
		if d := st.from - index; d > 0 && d < max {
			max = d
		}
	}
	if pst != nil && part == pst.part {
		if d := pst.from - index; d > 0 && d < max {
			max = d
		}
	}
	return max
}

// MergeApply blocks the merger when it reaches the stalled shard's merge
// front — entries of that shard at or past the stall's install point —
// until the driver lifts the stall or retires the generation. Entries of
// other shards with smaller tickets keep merging; the totally-ordered
// front simply stops at the stalled shard's first pending ticket. The
// merger calls it with no lock held, so a stalled shard never wedges
// appenders or waiters on the already-merged prefix.
func (h *simHooks) MergeApply(shard, base int) {
	s := h.s
	for {
		s.mu.Lock()
		if h.gen != s.gen.Load() {
			s.mu.Unlock()
			return
		}
		st := s.mstall
		rel := s.release
		s.mu.Unlock()
		if st == nil || shard != st.shard || base < st.from {
			return
		}
		select {
		case <-st.released:
		case <-rel:
			return
		}
	}
}

// MergeWait tells the driver the session is about to block until the
// merged log covers log sequence seq (notification only). The driver
// decides whether that wait will block — a stalled shard with a pending
// ticket ≤ seq — by querying the server, which is deterministic because
// entries at or past an active stall point can only accumulate, never
// merge, while the stall holds.
func (h *simHooks) MergeWait(sess int64, seq int) {
	h.s.send(h.gen, simEvent{kind: evMergeWait, sess: sess, seq: seq})
}

// CommitWait tells the driver the session is about to block on the
// certification watermark for log sequence seq (notification only).
func (h *simHooks) CommitWait(sess int64, seq int) {
	h.s.send(h.gen, simEvent{kind: evCommitWait, sess: sess, seq: seq})
}

// SessionDone tells the driver all of the session's events are logged.
func (h *simHooks) SessionDone(sess int64) {
	h.s.send(h.gen, simEvent{kind: evDone, sess: sess})
}

// DrainWait advances the virtual clock instead of sleeping: the drain
// poll and accept-retry cadence cost no wall time and stay deterministic.
// Gosched lets the goroutines the waiter is polling for actually run.
func (h *simHooks) DrainWait(d time.Duration) {
	h.s.clock.Add(int64(d))
	runtime.Gosched()
}

// stallState is an active certifier stall: indexes >= from block until
// released is closed.
type stallState struct {
	from     int
	released chan struct{}
}

// mergeStallState is an active merge stall: the merger blocks on entries
// of shard with tickets >= from until released is closed.
type mergeStallState struct {
	shard    int
	from     int
	released chan struct{}
}

// partStallState is an active certifier-partition stall: partition part
// blocks at indexes >= from until released is closed.
type partStallState struct {
	part     int
	from     int
	released chan struct{}
}

// send forwards an event to the driver unless the generation is stale.
// The channel is buffered generously; the driver is the only consumer and
// pumps whenever any session can make progress.
func (s *sim) send(gen uint64, ev simEvent) {
	if gen != s.gen.Load() {
		return
	}
	ev.gen = gen
	s.events <- ev
}
