package sim

import (
	"sync"
	"testing"
)

// TestStalledLocksAgainstHooks is the regression test for the driver's
// unlocked s.stall reads in drive/tick: simHooks.CertApply reads the
// stall pointer under mu from the certifier's goroutine, so the driver
// must too. The writer below plays the driver's stall/unstall role while
// the readers play concurrent hooks; under -race a stalled() that drops
// the lock fails this test immediately.
func TestStalledLocksAgainstHooks(t *testing.T) {
	s := &sim{}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 2000; i++ {
			s.mu.Lock()
			if s.stall == nil {
				s.stall = &stallState{from: i, released: make(chan struct{})}
			} else {
				s.stall = nil
			}
			s.mu.Unlock()
		}
		close(stop)
	}()
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					s.stalled()
				}
			}
		}()
	}
	wg.Wait()
	if s.stalled() {
		t.Fatalf("writer made an even number of toggles; stall should be lifted")
	}
}

// TestMergeStalledLocksAgainstHooks mirrors the test above for the merge
// stall: simHooks.MergeApply reads s.mstall under mu from the merger's
// goroutine, so the driver's mstalled() must take the lock too.
func TestMergeStalledLocksAgainstHooks(t *testing.T) {
	s := &sim{}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 2000; i++ {
			s.mu.Lock()
			if s.mstall == nil {
				s.mstall = &mergeStallState{shard: i % 4, from: i, released: make(chan struct{})}
			} else {
				s.mstall = nil
			}
			s.mu.Unlock()
		}
		close(stop)
	}()
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					s.mstalled()
				}
			}
		}()
	}
	wg.Wait()
	if s.mstalled() {
		t.Fatalf("writer made an even number of toggles; merge stall should be lifted")
	}
}
