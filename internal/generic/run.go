// Package generic implements generic systems (§5.1): the composition of
// transaction programs, generic object automata (Moss locking, undo
// logging, or broken variants) and the generic controller, driven by a
// seeded scheduler that picks uniformly among the enabled actions.
//
// Unlike the serial scheduler, the generic controller runs sibling
// transactions concurrently and can abort transactions that have already
// performed work; recovery is the generic objects' problem. The runner
// restricts the paper's controller in two ways, both of which select a
// subset of its nondeterministic behaviors (so every trace produced is a
// generic behavior):
//
//   - orphans are frozen by default: once a transaction aborts, no
//     descendant takes further steps (Options.AllowOrphans restores the
//     paper's full nondeterminism; orphan management is a separate line of
//     work it cites);
//   - INFORM events for each object are delivered in completion order,
//     which yields the ascending ("leaf-to-root") commit-inform order the
//     lock-visibility notion of §5.3 relies on.
//
// Blocking protocols can deadlock; the runner aborts a blocking
// transaction (the timeout analogue, always safe in this model) either at
// quiescence or, with Options.EagerDeadlock, as soon as a waits-for cycle
// appears. Protocols that abort rather than block (object.Aborter, e.g.
// MVTO) have their restarts executed by the runner as well.
//
// The scheduler loop is allocation-lean: enabled actions are value structs
// in a reused slice (not closures), per-object automata and per-transaction
// states are dense slices indexed by the interned names, and the per-step
// blocking poll uses the object.BlockChecker fast path when the protocol
// provides it. The enumeration order and random-number consumption are
// exactly those of the original closure-based loop, so seeds reproduce the
// same traces.
package generic

import (
	"context"
	"fmt"
	"math/rand"
	"sort"

	"nestedsg/internal/event"
	"nestedsg/internal/graph"
	"nestedsg/internal/object"
	"nestedsg/internal/program"
	"nestedsg/internal/spec"
	"nestedsg/internal/tname"
)

// Options configures a run.
type Options struct {
	// Seed drives every scheduling decision; equal seeds and inputs give
	// identical traces.
	Seed int64
	// Protocol chooses the generic object automaton.
	Protocol object.Protocol
	// AbortProb is a per-step probability of spontaneously aborting one
	// live transaction (crash/failure injection).
	AbortProb float64
	// MaxAborts bounds spontaneous aborts; 0 means none are injected even
	// if AbortProb is set.
	MaxAborts int
	// MaxSteps bounds the scheduler loop; 0 selects a generous default
	// proportional to the program size.
	MaxSteps int
	// AuditObjects asks every object implementing object.Auditor to check
	// its invariants after each step; a failure aborts the run with an
	// error. Used by the property tests (it is O(state) per step).
	AuditObjects bool
	// EagerDeadlock turns on periodic waits-for cycle detection between
	// top-level transactions: every 32 steps the runner builds the
	// waits-for graph from the objects' Blockers and aborts one member of
	// each cycle immediately, instead of waiting for global quiescence.
	// Quiescence-based resolution remains as the safety net (it also
	// catches intra-transaction cycles the top-level graph cannot see).
	// This is the deadlock-policy ablation of experiment E9.
	EagerDeadlock bool
	// AllowOrphans lets descendants of aborted transactions keep running
	// (the paper's generic controller permits this; orphan management is
	// the separate line of work it cites as [8]). Orphan activity is never
	// visible to T0, so serial correctness for T0 must still hold — the
	// orphan property tests exercise exactly that. The default freezes
	// orphans, which restricts the controller's nondeterminism.
	AllowOrphans bool
}

// Stats summarizes a run for the benchmark harness.
type Stats struct {
	// Steps is the number of scheduler decisions taken.
	Steps int
	// Events is the number of trace events emitted.
	Events int
	// Commits and Aborts count completion events.
	Commits, Aborts int
	// SpontaneousAborts counts failure-injected aborts; DeadlockVictims
	// counts aborts issued to break deadlocks; ProtocolAborts counts
	// restarts demanded by the protocol itself (object.Aborter).
	SpontaneousAborts, DeadlockVictims, ProtocolAborts int
	// Accesses counts access REQUEST_COMMITs granted; Blocked counts
	// scheduler polls that found an access waiting for locks or
	// commutativity.
	Accesses, Blocked int
}

type status uint8

const (
	stRequested status = iota
	stCreated
	stCommitRequested
	stCommitted
	stAborted
)

type txState struct {
	id     tname.TxID
	node   *program.Node
	status status
	// dead marks descendants of aborted transactions: frozen.
	dead     bool
	reported bool
	value    spec.Value
	exec     *program.Exec
	// pendingRequests are children the program has requested but whose
	// REQUEST_CREATE the controller has not yet emitted.
	pendingRequests []*program.Node
	// touched is the set of objects accessed in this transaction's subtree
	// so far, in first-touch order; informs about this transaction go to
	// exactly these objects. Subtrees touch few objects, so a scanned
	// slice beats a map.
	touched []tname.ObjID
}

func (ts *txState) touch(x tname.ObjID) {
	for _, y := range ts.touched {
		if y == x {
			return
		}
	}
	ts.touched = append(ts.touched, x)
}

type informMsg struct {
	commit bool
	tx     tname.TxID
}

// actKind discriminates the enabled-action structs.
type actKind uint8

const (
	akCreate actKind = iota
	akProtocolAbort
	akRespond
	akIssueRequest
	akRequestCommit
	akCommit
	akReportCommit
	akReportAbort
	akInform
)

// act is one enabled controller/object/transaction step, as data: the
// scheduler enumerates these into a reused slice instead of allocating a
// closure per enabled action per step.
type act struct {
	kind actKind
	ts   *txState    // nil for akInform
	x    tname.ObjID // akInform only
}

// Runner holds the mutable state of one generic-system execution. Objects
// and transaction states are dense slices indexed by the interned names;
// the optional per-object interfaces (Aborter, BlockChecker, Auditor) are
// resolved once at startup rather than type-asserted per step.
type Runner struct {
	tr       *tname.Tree
	opts     Options
	rng      *rand.Rand
	objects  []object.Generic
	aborters []object.Aborter
	checkers []object.BlockChecker
	auditors []object.Auditor
	informQ  [][]informMsg

	txs   []*txState   // indexed by TxID; nil for unknown names
	order []tname.TxID // stable enumeration order of known transactions

	acts  []act      // reused action buffer
	cands []*txState // reused failure-injection candidate buffer

	trace event.Behavior
	stats Stats
}

// tx returns the state of id, or nil if the runner has not seen it.
func (r *Runner) tx(id tname.TxID) *txState {
	if int(id) >= len(r.txs) {
		return nil
	}
	return r.txs[id]
}

// putTx registers a fresh transaction state.
func (r *Runner) putTx(ts *txState) {
	for int(ts.id) >= len(r.txs) {
		r.txs = append(r.txs, nil)
	}
	if r.txs[ts.id] != nil {
		panic(fmt.Sprintf("generic: duplicate child %s", r.tr.Name(ts.id)))
	}
	r.txs[ts.id] = ts
	r.order = append(r.order, ts.id)
}

// Run executes the program of T0 under the generic controller and returns
// the recorded behavior (serial actions plus informs).
func Run(tr *tname.Tree, root *program.Node, opts Options) (event.Behavior, Stats, error) {
	return RunContext(context.Background(), tr, root, opts)
}

// RunContext is Run with cancellation: the scheduler checks ctx between
// steps and stops with an error wrapping ctx's cause (context.Canceled or
// context.DeadlineExceeded), so callers can distinguish a cancelled run
// from a scheduling failure with errors.Is. The trace accumulated so far is
// discarded — a cancelled run has no meaningful behavior to certify.
func RunContext(ctx context.Context, tr *tname.Tree, root *program.Node, opts Options) (event.Behavior, Stats, error) {
	if err := program.Validate(root); err != nil {
		return nil, Stats{}, err
	}
	if opts.Protocol == nil {
		return nil, Stats{}, fmt.Errorf("generic: Options.Protocol is required")
	}
	numObj := tr.NumObjects()
	r := &Runner{
		tr:       tr,
		opts:     opts,
		rng:      rand.New(rand.NewSource(opts.Seed)),
		objects:  make([]object.Generic, numObj),
		aborters: make([]object.Aborter, numObj),
		checkers: make([]object.BlockChecker, numObj),
		auditors: make([]object.Auditor, numObj),
		informQ:  make([][]informMsg, numObj),
	}
	for x := tname.ObjID(0); int(x) < numObj; x++ {
		g := opts.Protocol.New(tr, x)
		r.objects[x] = g
		if ab, ok := g.(object.Aborter); ok {
			r.aborters[x] = ab
		}
		if bc, ok := g.(object.BlockChecker); ok {
			r.checkers[x] = bc
		}
		if au, ok := g.(object.Auditor); ok {
			r.auditors[x] = au
		}
	}

	// CREATE(T0) and start its program.
	rootState := &txState{id: tname.Root, node: root, status: stCreated}
	rootState.exec = program.NewExec(root)
	rootState.pendingRequests = rootState.exec.Start()
	r.putTx(rootState)
	r.emit(event.NewEvent(event.Create, tname.Root))

	maxSteps := opts.MaxSteps
	if maxSteps == 0 {
		maxSteps = 200*program.CountNodes(root) + 10000
	}

	for ; r.stats.Steps < maxSteps; r.stats.Steps++ {
		if err := ctx.Err(); err != nil {
			return nil, r.stats, fmt.Errorf("generic: run canceled at step %d: %w", r.stats.Steps, err)
		}
		if r.maybeInjectAbort() {
			continue
		}
		if opts.EagerDeadlock && r.stats.Steps%32 == 31 && r.breakWaitsForCycle() {
			continue
		}
		acts := r.enabledActions()
		if len(acts) == 0 {
			if r.breakDeadlock() {
				continue
			}
			// Quiescent.
			r.stats.Events = len(r.trace)
			return r.trace, r.stats, nil
		}
		r.perform(acts[r.rng.Intn(len(acts))])
		if opts.AuditObjects {
			for x, a := range r.auditors {
				if a == nil {
					continue
				}
				if err := a.Audit(); err != nil {
					return nil, r.stats, fmt.Errorf("generic: object %s invariant violated at step %d: %w",
						tr.ObjectLabel(tname.ObjID(x)), r.stats.Steps, err)
				}
			}
		}
	}
	return nil, r.stats, fmt.Errorf("generic: no quiescence after %d steps", maxSteps)
}

func (r *Runner) emit(e event.Event) { r.trace = append(r.trace, e) }

// blocked reports whether access t at x currently has blockers, via the
// protocol's fast path when it offers one.
func (r *Runner) blocked(x tname.ObjID, t tname.TxID) bool {
	if bc := r.checkers[x]; bc != nil {
		return bc.Blocked(t)
	}
	return len(r.objects[x].Blockers(t)) > 0
}

// enabledActions enumerates every enabled action of the composed system
// into the reused buffer. The enumeration order is fixed (transactions in
// creation order, then object inform queues), so the scheduler's uniform
// pick is a pure function of the seed.
func (r *Runner) enabledActions() []act {
	acts := r.acts[:0]
	for _, id := range r.order {
		ts := r.txs[id]
		if ts.dead {
			continue
		}
		switch ts.status {
		case stRequested:
			acts = append(acts, act{kind: akCreate, ts: ts})
			// The controller may also abort any requested, uncompleted
			// transaction; that nondeterminism is exercised through
			// failure injection rather than the uniform pick, so that
			// abort rates are a workload parameter.
		case stCreated:
			if ts.node.IsAccess {
				x := ts.node.Obj
				if ab := r.aborters[x]; ab != nil && ab.ShouldAbort(ts.id) {
					// The protocol demands a restart (e.g. an MVTO write
					// that arrived too late): abort the classical
					// transaction the access belongs to.
					acts = append(acts, act{kind: akProtocolAbort, ts: ts})
				} else if !r.blocked(x, ts.id) {
					acts = append(acts, act{kind: akRespond, ts: ts})
				} else {
					r.stats.Blocked++
				}
			} else {
				if len(ts.pendingRequests) > 0 {
					acts = append(acts, act{kind: akIssueRequest, ts: ts})
				}
				if ts.exec.Ready() && len(ts.pendingRequests) == 0 && ts.id != tname.Root {
					acts = append(acts, act{kind: akRequestCommit, ts: ts})
				}
			}
		case stCommitRequested:
			acts = append(acts, act{kind: akCommit, ts: ts})
		case stCommitted:
			if !ts.reported {
				if p := r.tx(r.tr.Parent(ts.id)); p != nil && !p.dead && p.status == stCreated {
					acts = append(acts, act{kind: akReportCommit, ts: ts})
				}
			}
		case stAborted:
			if !ts.reported {
				if p := r.tx(r.tr.Parent(ts.id)); p != nil && !p.dead && p.status == stCreated {
					acts = append(acts, act{kind: akReportAbort, ts: ts})
				}
			}
		}
	}
	for x := range r.informQ {
		if len(r.informQ[x]) > 0 {
			acts = append(acts, act{kind: akInform, x: tname.ObjID(x)})
		}
	}
	r.acts = acts
	return acts
}

// perform executes one enabled action.
func (r *Runner) perform(a act) {
	switch a.kind {
	case akCreate:
		r.doCreate(a.ts)
	case akProtocolAbort:
		r.doProtocolAbort(a.ts)
	case akRespond:
		r.doRespond(a.ts)
	case akIssueRequest:
		r.doIssueRequest(a.ts)
	case akRequestCommit:
		r.doRequestCommit(a.ts)
	case akCommit:
		r.doCommit(a.ts)
	case akReportCommit:
		r.doReportCommit(a.ts)
	case akReportAbort:
		r.doReportAbort(a.ts)
	case akInform:
		r.doInform(a.x)
	}
}

func (r *Runner) doCreate(ts *txState) {
	ts.status = stCreated
	r.emit(event.NewEvent(event.Create, ts.id))
	if ts.node.IsAccess {
		x := ts.node.Obj
		r.objects[x].Create(ts.id)
		r.markTouched(ts.id, x)
		return
	}
	ts.exec = program.NewExec(ts.node)
	ts.pendingRequests = ts.exec.Start()
}

// markTouched records that x was accessed in the subtree of every ancestor
// of the access.
func (r *Runner) markTouched(acc tname.TxID, x tname.ObjID) {
	for u := acc; u != tname.None; u = r.tr.Parent(u) {
		if ts := r.tx(u); ts != nil {
			ts.touch(x)
		}
	}
}

func (r *Runner) doIssueRequest(ts *txState) {
	child := ts.pendingRequests[0]
	ts.pendingRequests = ts.pendingRequests[1:]
	var childID tname.TxID
	if child.IsAccess {
		childID = r.tr.Access(ts.id, child.Label, child.Obj, child.Op)
	} else {
		childID = r.tr.Child(ts.id, child.Label)
	}
	cs := &txState{id: childID, node: child, status: stRequested}
	r.putTx(cs)
	r.emit(event.NewEvent(event.RequestCreate, childID))
}

func (r *Runner) doRespond(ts *txState) {
	x := ts.node.Obj
	v, ok := r.objects[x].TryRequestCommit(ts.id)
	if !ok {
		// Blockers said it was enabled; a protocol for which that is
		// not equivalent would simply lose a step.
		r.stats.Blocked++
		return
	}
	ts.status = stCommitRequested
	ts.value = v
	r.stats.Accesses++
	r.emit(event.NewValEvent(event.RequestCommit, ts.id, v))
}

func (r *Runner) doRequestCommit(ts *txState) {
	ts.status = stCommitRequested
	ts.value = ts.exec.Value()
	r.emit(event.NewValEvent(event.RequestCommit, ts.id, ts.value))
}

func (r *Runner) doCommit(ts *txState) {
	ts.status = stCommitted
	r.stats.Commits++
	r.emit(event.NewEvent(event.Commit, ts.id))
	// When orphans run, a committing orphan's locks/log entries would
	// otherwise be inherited past an ancestor whose abort the objects
	// have already been informed of, and stick there; re-informing the
	// abort right after the commit keeps recovery exact (inform
	// handlers are idempotent).
	var orphanOf tname.TxID = tname.None
	if r.opts.AllowOrphans {
		for u := r.tr.Parent(ts.id); u != tname.None; u = r.tr.Parent(u) {
			if p := r.tx(u); p != nil && p.status == stAborted {
				orphanOf = u
				break
			}
		}
	}
	for _, x := range ts.touched {
		r.informQ[x] = append(r.informQ[x], informMsg{commit: true, tx: ts.id})
		if orphanOf != tname.None {
			r.informQ[x] = append(r.informQ[x], informMsg{commit: false, tx: orphanOf})
		}
	}
}

// abortTx aborts a requested-or-created transaction and, unless orphan
// activity is allowed, freezes its subtree.
func (r *Runner) abortTx(ts *txState) {
	ts.status = stAborted
	r.stats.Aborts++
	r.emit(event.NewEvent(event.Abort, ts.id))
	for _, x := range ts.touched {
		r.informQ[x] = append(r.informQ[x], informMsg{commit: false, tx: ts.id})
	}
	if r.opts.AllowOrphans {
		return
	}
	// Freeze descendants.
	for _, id := range r.order {
		if id != ts.id && r.tr.IsDescendant(id, ts.id) {
			r.txs[id].dead = true
		}
	}
}

// doProtocolAbort aborts the top-level ancestor of an access the protocol
// says can never be granted.
func (r *Runner) doProtocolAbort(ts *txState) {
	top := r.tr.ChildAncestor(tname.Root, ts.id)
	vs := r.tx(top)
	if vs == nil || vs.dead || vs.status >= stCommitted {
		return
	}
	r.stats.ProtocolAborts++
	r.abortTx(vs)
}

func (r *Runner) doReportCommit(ts *txState) {
	ts.reported = true
	r.emit(event.NewValEvent(event.ReportCommit, ts.id, ts.value))
	r.deliverOutcome(ts, program.Outcome{Committed: true, Val: ts.value})
}

func (r *Runner) doReportAbort(ts *txState) {
	ts.reported = true
	r.emit(event.NewEvent(event.ReportAbort, ts.id))
	r.deliverOutcome(ts, program.Outcome{Committed: false})
}

func (r *Runner) deliverOutcome(child *txState, oc program.Outcome) {
	parent := r.tx(r.tr.Parent(child.id))
	idx := parent.exec.RequestIndex(child.node.Label)
	more := parent.exec.OnReport(idx, oc)
	parent.pendingRequests = append(parent.pendingRequests, more...)
}

func (r *Runner) doInform(x tname.ObjID) {
	q := r.informQ[x]
	msg := q[0]
	r.informQ[x] = q[1:]
	if msg.commit {
		r.objects[x].InformCommit(msg.tx)
		r.emit(event.NewInform(event.InformCommit, msg.tx, x))
	} else {
		r.objects[x].InformAbort(msg.tx)
		r.emit(event.NewInform(event.InformAbort, msg.tx, x))
	}
}

// maybeInjectAbort flips the failure-injection coin and aborts one random
// abortable transaction.
func (r *Runner) maybeInjectAbort() bool {
	if r.opts.MaxAborts <= 0 || r.stats.SpontaneousAborts >= r.opts.MaxAborts || r.opts.AbortProb <= 0 {
		return false
	}
	if r.rng.Float64() >= r.opts.AbortProb {
		return false
	}
	candidates := r.cands[:0]
	for _, id := range r.order {
		ts := r.txs[id]
		if id != tname.Root && !ts.dead && ts.status < stCommitted {
			candidates = append(candidates, ts)
		}
	}
	r.cands = candidates
	if len(candidates) == 0 {
		return false
	}
	r.stats.SpontaneousAborts++
	r.abortTx(candidates[r.rng.Intn(len(candidates))])
	return true
}

// breakDeadlock fires when no action is enabled: if blocked accesses
// remain, abort a transaction whose activity blocks one of them.
//
// A blocker reported by an object may itself have committed already (an
// undo-log entry whose owning access committed while an enclosing
// subtransaction has not); aborting it is impossible, but aborting its
// lowest uncommitted ancestor releases the same resources — the object is
// informed of the abort and discards the whole subtree's locks or log
// entries.
func (r *Runner) breakDeadlock() bool {
	var blockers []tname.TxID
	for _, id := range r.order {
		ts := r.txs[id]
		if ts.dead || ts.status != stCreated || !ts.node.IsAccess {
			continue
		}
		blockers = append(blockers, r.objects[ts.node.Obj].Blockers(ts.id)...)
	}
	var victims []*txState
	seen := make(map[tname.TxID]bool)
	for _, blk := range blockers {
		for u := blk; u != tname.Root && u != tname.None; u = r.tr.Parent(u) {
			ts := r.tx(u)
			if ts == nil || ts.dead {
				break
			}
			if ts.status < stCommitted {
				if !seen[u] {
					seen[u] = true
					victims = append(victims, ts)
				}
				break
			}
		}
	}
	if len(victims) == 0 {
		return false
	}
	// Objects may report blockers in map order; sort so the victim choice
	// is a pure function of the seed.
	sort.Slice(victims, func(i, j int) bool { return victims[i].id < victims[j].id })
	r.stats.DeadlockVictims++
	r.abortTx(victims[r.rng.Intn(len(victims))])
	return true
}

// breakWaitsForCycle builds the waits-for graph between top-level
// transactions (an edge from the waiter's classical transaction to each
// blocker's) and, if it contains a cycle, aborts one cycle member. It
// returns whether a victim was aborted.
func (r *Runner) breakWaitsForCycle() bool {
	index := make(map[tname.TxID]int)
	var tops []tname.TxID
	node := func(t tname.TxID) int {
		if i, ok := index[t]; ok {
			return i
		}
		i := len(tops)
		index[t] = i
		tops = append(tops, t)
		return i
	}
	type edge struct{ from, to tname.TxID }
	var edges []edge
	for _, id := range r.order {
		ts := r.txs[id]
		if ts.dead || ts.status != stCreated || !ts.node.IsAccess {
			continue
		}
		waiter := r.tr.ChildAncestor(tname.Root, id)
		for _, blk := range r.objects[ts.node.Obj].Blockers(id) {
			holder := r.tr.ChildAncestor(tname.Root, blk)
			if holder != waiter {
				node(waiter)
				node(holder)
				edges = append(edges, edge{waiter, holder})
			}
		}
	}
	if len(edges) == 0 {
		return false
	}
	g := graph.New(len(tops))
	for _, e := range edges {
		g.AddEdge(index[e.from], index[e.to])
	}
	_, cyc := g.TopoSort()
	if cyc == nil {
		return false
	}
	// Abort one cycle member that is still abortable.
	var victims []*txState
	for _, n := range cyc {
		ts := r.tx(tops[n])
		if ts != nil && !ts.dead && ts.status < stCommitted {
			victims = append(victims, ts)
		}
	}
	if len(victims) == 0 {
		return false
	}
	sort.Slice(victims, func(i, j int) bool { return victims[i].id < victims[j].id })
	r.stats.DeadlockVictims++
	r.abortTx(victims[r.rng.Intn(len(victims))])
	return true
}
