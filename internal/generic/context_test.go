package generic

import (
	"context"
	"errors"
	"testing"
	"time"

	"nestedsg/internal/locking"
	"nestedsg/internal/tname"
	"nestedsg/internal/workload"
)

// bigWorkload is large enough that a run takes far longer than the cancel
// delay below, so cancellation lands mid-flight.
func bigWorkload() workload.Config {
	return workload.Config{Seed: 3, TopLevel: 200, Depth: 2, Fanout: 4,
		Objects: 4, HotProb: 0.5, ParProb: 0.9}
}

func TestRunContextCanceledBeforeStart(t *testing.T) {
	tr := tname.NewTree()
	root := workload.Build(tr, bigWorkload())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	b, st, err := RunContext(ctx, tr, root, Options{Seed: 1, Protocol: locking.Protocol{}})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if b != nil {
		t.Fatalf("canceled run must not return a trace (%d events)", len(b))
	}
	if st.Steps != 0 {
		t.Fatalf("canceled-before-start run took %d steps", st.Steps)
	}
}

func TestRunContextCancelMidFlight(t *testing.T) {
	tr := tname.NewTree()
	root := workload.Build(tr, bigWorkload())
	ctx, cancel := context.WithCancel(context.Background())
	type result struct {
		steps int
		err   error
	}
	done := make(chan result, 1)
	go func() {
		// A blocking protocol on a hot workload: the scheduler runs long
		// enough that the cancel below interrupts it mid-run.
		_, st, err := RunContext(ctx, tr, root, Options{Seed: 1, Protocol: locking.Protocol{}})
		done <- result{st.Steps, err}
	}()
	time.Sleep(2 * time.Millisecond)
	cancel()
	res := <-done
	if !errors.Is(res.err, context.Canceled) {
		t.Fatalf("want context.Canceled after %d steps, got %v", res.steps, res.err)
	}
	// Distinguishable from a scheduling failure: the message names the step.
	if res.steps == 0 {
		t.Log("run was canceled before taking a step (slow machine); still acceptable")
	}
}

func TestRunContextDeadline(t *testing.T) {
	tr := tname.NewTree()
	root := workload.Build(tr, bigWorkload())
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	_, _, err := RunContext(ctx, tr, root, Options{Seed: 1, Protocol: locking.Protocol{}})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want context.DeadlineExceeded, got %v", err)
	}
}

func TestRunIsRunContextBackground(t *testing.T) {
	tr := tname.NewTree()
	root := workload.Build(tr, workload.Config{Seed: 5, TopLevel: 3, Depth: 1, Fanout: 2, Objects: 2})
	b1, _, err := Run(tr, root, Options{Seed: 9, Protocol: locking.Protocol{}})
	if err != nil {
		t.Fatal(err)
	}
	tr2 := tname.NewTree()
	root2 := workload.Build(tr2, workload.Config{Seed: 5, TopLevel: 3, Depth: 1, Fanout: 2, Objects: 2})
	b2, _, err := RunContext(context.Background(), tr2, root2, Options{Seed: 9, Protocol: locking.Protocol{}})
	if err != nil {
		t.Fatal(err)
	}
	if !b1.Equal(b2) {
		t.Fatal("Run and RunContext(Background) diverge on the same seed")
	}
}
