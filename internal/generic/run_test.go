package generic

import (
	"fmt"
	"testing"

	"nestedsg/internal/event"
	"nestedsg/internal/locking"
	"nestedsg/internal/object"
	"nestedsg/internal/program"
	"nestedsg/internal/simple"
	"nestedsg/internal/spec"
	"nestedsg/internal/tname"
	"nestedsg/internal/undolog"
)

// contendedRoot: two top-level transactions both writing then reading one
// register — guaranteed lock contention under Moss.
func contendedRoot(tr *tname.Tree) *program.Node {
	x := tr.AddObject("x", spec.Register{})
	mk := func(name string, val int64) *program.Node {
		return program.SeqNode(name,
			program.Access(name+".w", x, spec.Op{Kind: spec.OpWrite, Arg: spec.Int(val)}),
			program.Access(name+".r", x, spec.Op{Kind: spec.OpRead}),
		)
	}
	return &program.Node{Label: "T0", Mode: program.Par,
		Children: []*program.Node{mk("t1", 1), mk("t2", 2)}}
}

func TestRunQuiescesAndIsWellFormed(t *testing.T) {
	tr := tname.NewTree()
	root := contendedRoot(tr)
	b, st, err := Run(tr, root, Options{Seed: 1, Protocol: locking.Protocol{}})
	if err != nil {
		t.Fatal(err)
	}
	if err := simple.CheckWellFormed(tr, b); err != nil {
		t.Fatalf("%v\n%s", err, b.Format(tr))
	}
	if st.Commits == 0 || st.Accesses != 4 {
		t.Errorf("stats = %+v", st)
	}
	// Both top-level transactions must commit (no deadlock in this shape
	// once one waits for the other).
	commits := b.CommitSet()
	for _, c := range root.Children {
		id := tr.Child(tname.Root, c.Label)
		if !commits[id] {
			t.Errorf("%s did not commit", c.Label)
		}
	}
}

func TestRunDeterministicPerSeed(t *testing.T) {
	tr1 := tname.NewTree()
	b1, _, err := Run(tr1, contendedRoot(tr1), Options{Seed: 42, Protocol: locking.Protocol{}})
	if err != nil {
		t.Fatal(err)
	}
	tr2 := tname.NewTree()
	b2, _, err := Run(tr2, contendedRoot(tr2), Options{Seed: 42, Protocol: locking.Protocol{}})
	if err != nil {
		t.Fatal(err)
	}
	if !b1.Equal(b2) {
		t.Fatal("same seed must give the same trace")
	}
	tr3 := tname.NewTree()
	b3, _, err := Run(tr3, contendedRoot(tr3), Options{Seed: 43, Protocol: locking.Protocol{}})
	if err != nil {
		t.Fatal(err)
	}
	if b1.Equal(b3) {
		t.Log("different seeds gave the same trace (possible but unlikely)")
	}
}

func TestRunRequiresProtocol(t *testing.T) {
	tr := tname.NewTree()
	root := contendedRoot(tr)
	if _, _, err := Run(tr, root, Options{}); err == nil {
		t.Fatal("missing protocol must error")
	}
}

func TestInformsDeliveredInCompletionOrderPerObject(t *testing.T) {
	tr := tname.NewTree()
	root := contendedRoot(tr)
	b, _, err := Run(tr, root, Options{Seed: 9, Protocol: locking.Protocol{}})
	if err != nil {
		t.Fatal(err)
	}
	// For each object, the sequence of INFORM events must match the
	// sequence of completion events of the informed transactions.
	completionPos := make(map[tname.TxID]int)
	for i, e := range b {
		if e.Kind.IsCompletion() {
			completionPos[e.Tx] = i
		}
	}
	lastPos := make(map[tname.ObjID]int)
	for _, e := range b {
		if e.Kind != event.InformCommit && e.Kind != event.InformAbort {
			continue
		}
		pos, ok := completionPos[e.Tx]
		if !ok {
			t.Fatalf("inform for %s without completion", tr.Name(e.Tx))
		}
		if pos < lastPos[e.Obj] {
			t.Fatalf("informs at object %d out of completion order", e.Obj)
		}
		lastPos[e.Obj] = pos
	}
}

func TestDeadlockResolvedByVictimAbort(t *testing.T) {
	// Classic deadlock: t1 reads x then writes y; t2 reads y then writes x.
	// Under Moss both take read locks then block upgrading — scan seeds for
	// a run that needed a victim, and require that every run quiesces.
	tr0 := tname.NewTree()
	mkRoot := func(tr *tname.Tree) *program.Node {
		x := tr.AddObject("x", spec.Register{})
		y := tr.AddObject("y", spec.Register{})
		t1 := program.SeqNode("t1",
			program.Access("rx", x, spec.Op{Kind: spec.OpRead}),
			program.Access("wy", y, spec.Op{Kind: spec.OpWrite, Arg: spec.Int(1)}),
		)
		t2 := program.SeqNode("t2",
			program.Access("ry", y, spec.Op{Kind: spec.OpRead}),
			program.Access("wx", x, spec.Op{Kind: spec.OpWrite, Arg: spec.Int(2)}),
		)
		return &program.Node{Label: "T0", Mode: program.Par, Children: []*program.Node{t1, t2}}
	}
	_ = tr0
	sawVictim := false
	for seed := int64(0); seed < 40; seed++ {
		tr := tname.NewTree()
		b, st, err := Run(tr, mkRoot(tr), Options{Seed: seed, Protocol: locking.Protocol{}})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := simple.CheckWellFormed(tr, b); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if st.DeadlockVictims > 0 {
			sawVictim = true
		}
	}
	if !sawVictim {
		t.Error("expected at least one deadlock among 40 seeds")
	}
}

func TestSpontaneousAbortsFreezeSubtrees(t *testing.T) {
	tr := tname.NewTree()
	root := contendedRoot(tr)
	b, st, err := Run(tr, root, Options{Seed: 11, Protocol: locking.Protocol{},
		AbortProb: 0.2, MaxAborts: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := simple.CheckWellFormed(tr, b); err != nil {
		t.Fatalf("%v\n%s", err, b.Format(tr))
	}
	// No event of any transaction may follow the abort of an ancestor.
	abortedAt := make(map[tname.TxID]int)
	for i, e := range b {
		if e.Kind == event.Abort {
			abortedAt[e.Tx] = i
		}
	}
	for i, e := range b {
		if !e.Kind.IsSerial() || e.Kind == event.Abort || e.Kind.IsReport() {
			continue
		}
		for anc, pos := range abortedAt {
			if i > pos && e.Tx != anc && tr.IsDescendant(e.Tx, anc) {
				t.Fatalf("event %d (%s) after ancestor %s aborted", i, e.Format(tr), tr.Name(anc))
			}
		}
	}
	_ = st
}

func TestUndoLogRunQuiesces(t *testing.T) {
	tr := tname.NewTree()
	c := tr.AddObject("c", spec.Counter{})
	mk := func(name string, amt int64) *program.Node {
		return program.SeqNode(name,
			program.Access(name+".i", c, spec.Op{Kind: spec.OpIncrement, Arg: spec.Int(amt)}),
		)
	}
	root := &program.Node{Label: "T0", Mode: program.Par,
		Children: []*program.Node{mk("t1", 1), mk("t2", 2), mk("t3", 3)}}
	b, st, err := Run(tr, root, Options{Seed: 5, Protocol: undolog.Protocol{}})
	if err != nil {
		t.Fatal(err)
	}
	if err := simple.CheckWellFormed(tr, b); err != nil {
		t.Fatal(err)
	}
	if st.Accesses != 3 {
		t.Errorf("accesses = %d", st.Accesses)
	}
	// Commuting increments never block.
	if st.Blocked != 0 {
		t.Errorf("blocked polls = %d, want 0 for commuting updates", st.Blocked)
	}
}

func TestMaxStepsGuard(t *testing.T) {
	tr := tname.NewTree()
	root := contendedRoot(tr)
	if _, _, err := Run(tr, root, Options{Seed: 1, Protocol: locking.Protocol{}, MaxSteps: 3}); err == nil {
		t.Fatal("tiny step budget must fail")
	}
}

// TestAllowOrphansReleasesStuckLocks: an orphan's committed work inherits
// its lock up into an aborted ancestor; the follow-up abort re-inform must
// release it so live transactions eventually proceed.
func TestAllowOrphansReleasesStuckLocks(t *testing.T) {
	completedBoth := 0
	for seed := int64(0); seed < 25; seed++ {
		tr := tname.NewTree()
		root := contendedRoot(tr)
		b, _, err := Run(tr, root, Options{Seed: seed, Protocol: locking.Protocol{},
			AbortProb: 0.05, MaxAborts: 2, AllowOrphans: true})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := simple.CheckWellFormed(tr, b); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// Every top-level transaction must reach a completion (no
		// permanent stalls from stuck inherited locks).
		commits, aborts := b.CommitSet(), b.AbortSet()
		done := 0
		for _, c := range tr.Children(tname.Root) {
			if commits[c] || aborts[c] {
				done++
			}
		}
		if done == len(tr.Children(tname.Root)) {
			completedBoth++
		}
	}
	if completedBoth == 0 {
		t.Error("no run completed all top-level transactions under orphan mode")
	}
}

// TestDuplicateChildPanics: a program requesting the same label twice in
// one parent is a programming error the runner surfaces loudly.
func TestDuplicateChildPanics(t *testing.T) {
	tr := tname.NewTree()
	x := tr.AddObject("x", spec.Register{})
	dup := program.Access("same", x, spec.Op{Kind: spec.OpRead})
	bad := &program.Node{Label: "T0", Mode: program.Par, Children: []*program.Node{
		program.SeqNode("t", program.Access("a", x, spec.Op{Kind: spec.OpRead})),
	}}
	bad.Children[0].OnOutcome = func(i int, c *program.Node, oc program.Outcome) []*program.Node {
		// Request "same" twice via two outcomes... simpler: return it and
		// a clone with the same label at once.
		clone := *dup
		return []*program.Node{dup, &clone}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate child name")
		}
	}()
	_, _, _ = Run(tr, bad, Options{Seed: 1, Protocol: locking.Protocol{}})
}

// TestStatsAccounting: commits+aborts equal the completion events in the
// trace, and Events matches the trace length.
func TestStatsAccounting(t *testing.T) {
	tr := tname.NewTree()
	root := contendedRoot(tr)
	b, st, err := Run(tr, root, Options{Seed: 77, Protocol: locking.Protocol{},
		AbortProb: 0.05, MaxAborts: 2})
	if err != nil {
		t.Fatal(err)
	}
	commits, aborts := 0, 0
	for _, e := range b {
		switch e.Kind {
		case event.Commit:
			commits++
		case event.Abort:
			aborts++
		}
	}
	if commits != st.Commits || aborts != st.Aborts {
		t.Errorf("stats commits/aborts = %d/%d, trace has %d/%d", st.Commits, st.Aborts, commits, aborts)
	}
	if st.Events != len(b) {
		t.Errorf("stats events = %d, trace %d", st.Events, len(b))
	}
	if st.SpontaneousAborts+st.DeadlockVictims > st.Aborts {
		t.Error("abort sub-counters exceed total aborts")
	}
}

// TestEagerDeadlockDetection: with eager waits-for detection the classic
// two-transaction deadlock is broken before global quiescence, and runs
// remain well-formed. Compare victim behavior across both policies.
func TestEagerDeadlockDetection(t *testing.T) {
	mkRoot := func(tr *tname.Tree) *program.Node {
		x := tr.AddObject("x", spec.Register{})
		y := tr.AddObject("y", spec.Register{})
		t1 := program.SeqNode("t1",
			program.Access("rx", x, spec.Op{Kind: spec.OpRead}),
			program.Access("wy", y, spec.Op{Kind: spec.OpWrite, Arg: spec.Int(1)}),
		)
		t2 := program.SeqNode("t2",
			program.Access("ry", y, spec.Op{Kind: spec.OpRead}),
			program.Access("wx", x, spec.Op{Kind: spec.OpWrite, Arg: spec.Int(2)}),
		)
		kids := []*program.Node{t1, t2}
		// Filler transactions on private objects keep the scheduler busy
		// past the 32-step detection boundary while the cycle persists, so
		// the eager path (not just quiescence) actually fires.
		for i := 0; i < 6; i++ {
			z := tr.AddObject(fmt.Sprintf("z%d", i), spec.Register{})
			kids = append(kids, program.SeqNode(fmt.Sprintf("f%d", i),
				program.Access("w", z, spec.Op{Kind: spec.OpWrite, Arg: spec.Int(1)}),
				program.Access("r", z, spec.Op{Kind: spec.OpRead}),
			))
		}
		return &program.Node{Label: "T0", Mode: program.Par, Children: kids}
	}
	sawVictim := false
	for seed := int64(0); seed < 40; seed++ {
		tr := tname.NewTree()
		b, st, err := Run(tr, mkRoot(tr), Options{Seed: seed, Protocol: locking.Protocol{},
			EagerDeadlock: true})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := simple.CheckWellFormed(tr, b); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if st.DeadlockVictims > 0 {
			sawVictim = true
		}
	}
	if !sawVictim {
		t.Error("expected at least one eager victim among 40 seeds")
	}
}

// abortingStub is a minimal object.Generic whose writes always demand a
// restart — it drives the runner's protocol-abort path without pulling in
// the MVTO package (which would create an import cycle in this test).
type abortingStub struct {
	created map[tname.TxID]bool
	tr      *tname.Tree
}

func (s *abortingStub) Create(t tname.TxID)              { s.created[t] = true }
func (s *abortingStub) InformCommit(tname.TxID)          {}
func (s *abortingStub) InformAbort(tname.TxID)           {}
func (s *abortingStub) Blockers(tname.TxID) []tname.TxID { return nil }
func (s *abortingStub) TryRequestCommit(t tname.TxID) (spec.Value, bool) {
	if !s.created[t] {
		return spec.Nil, false
	}
	op := s.tr.AccessOp(t)
	if spec.IsWrite(op) {
		return spec.Nil, false
	}
	delete(s.created, t)
	return spec.Int(0), true
}
func (s *abortingStub) ShouldAbort(t tname.TxID) bool {
	return s.created[t] && spec.IsWrite(s.tr.AccessOp(t))
}

type abortingProtocol struct{}

func (abortingProtocol) Name() string { return "aborting-stub" }
func (abortingProtocol) New(tr *tname.Tree, x tname.ObjID) object.Generic {
	return &abortingStub{created: map[tname.TxID]bool{}, tr: tr}
}

// TestProtocolAbortPath: a protocol that rejects all writes forces the
// runner to abort the writing transactions; reads still commit.
func TestProtocolAbortPath(t *testing.T) {
	tr := tname.NewTree()
	x := tr.AddObject("x", spec.Register{})
	root := &program.Node{Label: "T0", Mode: program.Par, Children: []*program.Node{
		program.SeqNode("w", program.Access("wa", x, spec.Op{Kind: spec.OpWrite, Arg: spec.Int(1)})),
		program.SeqNode("r", program.Access("rd", x, spec.Op{Kind: spec.OpRead})),
	}}
	b, st, err := Run(tr, root, Options{Seed: 1, Protocol: abortingProtocol{}})
	if err != nil {
		t.Fatal(err)
	}
	if st.ProtocolAborts == 0 {
		t.Fatal("expected protocol aborts")
	}
	commits, aborts := b.CommitSet(), b.AbortSet()
	if !aborts[tr.Child(tname.Root, "w")] {
		t.Fatal("writer must be aborted")
	}
	if !commits[tr.Child(tname.Root, "r")] {
		t.Fatal("reader must commit")
	}
	if err := simple.CheckWellFormed(tr, b); err != nil {
		t.Fatal(err)
	}
}
