// Package classic implements the classical (unnested) serializability
// theory the paper generalizes: conflict-serializability testing on flat
// histories via the textbook serialization graph over committed
// transactions, as in Bernstein/Hadzilacos/Goodman.
//
// In the paper's model a classical system is the special case in which
// every child of T0 is a flat transaction whose children are accesses
// (depth ≤ 2 names, accesses at depth 2). Experiment E6 checks that on
// such systems the paper's SG(β, T0) restricted to conflict edges is
// exactly the classical graph, and that the classical and nested checkers
// agree — the subsumption the introduction claims.
package classic

import (
	"fmt"

	"nestedsg/internal/core"
	"nestedsg/internal/event"
	"nestedsg/internal/graph"
	"nestedsg/internal/spec"
	"nestedsg/internal/tname"
)

// Edge is a directed edge between top-level transactions.
type Edge struct {
	From, To tname.TxID
}

// SGT is the classical serialization graph of a flat history: nodes are
// the committed top-level transactions, with an edge Ti → Tj when an
// access of Ti conflicts with a later access of Tj (committed projection:
// accesses of uncommitted or aborted transactions are ignored).
type SGT struct {
	Txs   []tname.TxID
	Edges map[Edge]bool

	index map[tname.TxID]int
	g     *graph.Graph
}

// BuildSGT constructs the classical graph from the serial actions of b.
// It returns an error if the history is not flat (an access deeper than a
// child of a child of T0).
func BuildSGT(tr *tname.Tree, b event.Behavior) (*SGT, error) {
	serialB := b.Serial()
	committed := serialB.CommitSet()

	s := &SGT{Edges: make(map[Edge]bool), index: make(map[tname.TxID]int)}
	node := func(t tname.TxID) int {
		if i, ok := s.index[t]; ok {
			return i
		}
		i := len(s.Txs)
		s.Txs = append(s.Txs, t)
		s.index[t] = i
		return i
	}

	type step struct {
		top tname.TxID
		op  event.AccessOp
	}
	perObj := make(map[tname.ObjID][]step)
	for _, e := range serialB {
		if e.Kind != event.RequestCommit || !tr.IsAccess(e.Tx) {
			continue
		}
		if tr.Depth(e.Tx) != 2 {
			return nil, fmt.Errorf("classic: access %s is not flat (depth %d)", tr.Name(e.Tx), tr.Depth(e.Tx))
		}
		top := tr.ChildAncestor(tname.Root, e.Tx)
		// Committed projection: both the access and its transaction must
		// have committed.
		if !committed[top] || !committed[e.Tx] {
			continue
		}
		x := tr.AccessObject(e.Tx)
		cur := step{top: top, op: event.AccessOp{Tx: e.Tx, Obj: x,
			OV: spec.OpVal{Op: tr.AccessOp(e.Tx), Val: e.Val}}}
		node(top)
		sp := tr.Spec(x)
		for _, prev := range perObj[x] {
			if prev.top != top && sp.Conflicts(prev.op.OV, cur.op.OV) {
				s.Edges[Edge{From: prev.top, To: top}] = true
			}
		}
		perObj[x] = append(perObj[x], cur)
	}

	s.g = graph.New(len(s.Txs))
	for e := range s.Edges {
		s.g.AddEdge(s.index[e.From], s.index[e.To])
	}
	return s, nil
}

// Serializable reports whether the history is conflict-serializable: the
// classical graph is acyclic.
func (s *SGT) Serializable() bool { return s.g.Acyclic() }

// CompareWithNested checks the subsumption claim: the conflict edges of the
// paper's SG(β, T0) over committed top-level transactions equal the
// classical edges. It returns a description of the first discrepancy, or
// "" when the edge sets agree.
func (s *SGT) CompareWithNested(tr *tname.Tree, sg *core.SG) string {
	pg := sg.Parent(tname.Root)
	// Collect nested conflict edges between committed top-level names.
	nested := make(map[Edge]bool)
	if pg != nil {
		for _, ce := range pg.Edges() {
			if ce.Kind&core.EdgeConflict == 0 {
				continue
			}
			e := Edge{From: pg.Children[ce.From], To: pg.Children[ce.To]}
			nested[e] = true
		}
	}
	for e := range s.Edges {
		if !nested[e] {
			return fmt.Sprintf("classical edge %s -> %s missing from SG(β,T0)", tr.Name(e.From), tr.Name(e.To))
		}
	}
	for e := range nested {
		if !s.Edges[e] {
			return fmt.Sprintf("SG(β,T0) conflict edge %s -> %s missing from classical graph", tr.Name(e.From), tr.Name(e.To))
		}
	}
	return ""
}
