package classic

import (
	"testing"

	"nestedsg/internal/core"
	"nestedsg/internal/event"
	"nestedsg/internal/generic"
	"nestedsg/internal/locking"
	"nestedsg/internal/spec"
	"nestedsg/internal/tname"
	"nestedsg/internal/undolog"
	"nestedsg/internal/workload"
)

func flatFixture(t *testing.T) (*tname.Tree, tname.TxID, tname.TxID, tname.TxID, tname.TxID) {
	t.Helper()
	tr := tname.NewTree()
	x := tr.AddObject("x", spec.Register{})
	t1 := tr.Child(tname.Root, "t1")
	t2 := tr.Child(tname.Root, "t2")
	w1 := tr.Access(t1, "w1", x, spec.Op{Kind: spec.OpWrite, Arg: spec.Int(1)})
	r2 := tr.Access(t2, "r2", x, spec.Op{Kind: spec.OpRead})
	return tr, t1, t2, w1, r2
}

func ev(k event.Kind, tx tname.TxID) event.Event { return event.NewEvent(k, tx) }
func evv(k event.Kind, tx tname.TxID, v spec.Value) event.Event {
	return event.NewValEvent(k, tx, v)
}

func TestBuildSGTBasicEdge(t *testing.T) {
	tr, t1, t2, w1, r2 := flatFixture(t)
	b := event.Behavior{
		ev(event.Create, tname.Root),
		ev(event.RequestCreate, t1), ev(event.Create, t1),
		ev(event.RequestCreate, t2), ev(event.Create, t2),
		ev(event.RequestCreate, w1), ev(event.Create, w1),
		evv(event.RequestCommit, w1, spec.OK), ev(event.Commit, w1),
		ev(event.RequestCreate, r2), ev(event.Create, r2),
		evv(event.RequestCommit, r2, spec.Int(1)), ev(event.Commit, r2),
		evv(event.ReportCommit, w1, spec.OK), evv(event.ReportCommit, r2, spec.Int(1)),
		evv(event.RequestCommit, t1, spec.Nil), ev(event.Commit, t1),
		evv(event.RequestCommit, t2, spec.Nil), ev(event.Commit, t2),
	}
	s, err := BuildSGT(tr, b)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Edges[Edge{From: t1, To: t2}] {
		t.Error("expected classical edge t1 -> t2")
	}
	if !s.Serializable() {
		t.Error("single edge is serializable")
	}
	if msg := s.CompareWithNested(tr, core.Build(tr, b)); msg != "" {
		t.Errorf("nested/classical mismatch: %s", msg)
	}
}

func TestBuildSGTCommittedProjection(t *testing.T) {
	tr, t1, t2, w1, r2 := flatFixture(t)
	// w1 responds but t1 aborts: the classical committed projection drops
	// the conflict.
	b := event.Behavior{
		ev(event.Create, tname.Root),
		ev(event.RequestCreate, t1), ev(event.Create, t1),
		ev(event.RequestCreate, t2), ev(event.Create, t2),
		ev(event.RequestCreate, w1), ev(event.Create, w1),
		evv(event.RequestCommit, w1, spec.OK), ev(event.Commit, w1),
		ev(event.Abort, t1),
		ev(event.RequestCreate, r2), ev(event.Create, r2),
		evv(event.RequestCommit, r2, spec.Int(0)), ev(event.Commit, r2),
		evv(event.ReportCommit, r2, spec.Int(0)),
		evv(event.RequestCommit, t2, spec.Nil), ev(event.Commit, t2),
	}
	s, err := BuildSGT(tr, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Edges) != 0 {
		t.Errorf("aborted transaction must contribute no edges: %v", s.Edges)
	}
	if msg := s.CompareWithNested(tr, core.Build(tr, b)); msg != "" {
		t.Errorf("mismatch: %s", msg)
	}
}

func TestBuildSGTRejectsDeepNesting(t *testing.T) {
	tr := tname.NewTree()
	x := tr.AddObject("x", spec.Register{})
	t1 := tr.Child(tname.Root, "t1")
	sub := tr.Child(t1, "sub")
	deep := tr.Access(sub, "deep", x, spec.Op{Kind: spec.OpRead})
	b := event.Behavior{evv(event.RequestCommit, deep, spec.Int(0))}
	if _, err := BuildSGT(tr, b); err == nil {
		t.Fatal("nested access must be rejected by the classical builder")
	}
}

func TestBuildSGTCycle(t *testing.T) {
	tr, t1, t2, w1, r2 := flatFixture(t)
	x := tr.Object("x")
	w1b := tr.Access(t1, "w1b", x, spec.Op{Kind: spec.OpWrite, Arg: spec.Int(2)})
	b := event.Behavior{
		ev(event.Create, tname.Root),
		ev(event.RequestCreate, t1), ev(event.Create, t1),
		ev(event.RequestCreate, t2), ev(event.Create, t2),
		ev(event.RequestCreate, w1), ev(event.Create, w1),
		evv(event.RequestCommit, w1, spec.OK), ev(event.Commit, w1),
		ev(event.RequestCreate, r2), ev(event.Create, r2),
		evv(event.RequestCommit, r2, spec.Int(1)), ev(event.Commit, r2),
		ev(event.RequestCreate, w1b), ev(event.Create, w1b),
		evv(event.RequestCommit, w1b, spec.OK), ev(event.Commit, w1b),
		evv(event.ReportCommit, w1, spec.OK), evv(event.ReportCommit, r2, spec.Int(1)),
		evv(event.ReportCommit, w1b, spec.OK),
		evv(event.RequestCommit, t1, spec.Nil), ev(event.Commit, t1),
		evv(event.RequestCommit, t2, spec.Nil), ev(event.Commit, t2),
	}
	s, err := BuildSGT(tr, b)
	if err != nil {
		t.Fatal(err)
	}
	if s.Serializable() {
		t.Fatal("w1 < r2 < w1b is a classic non-serializable pattern")
	}
	// The nested checker agrees: SG(β, T0) has the same cycle.
	res := core.Check(tr, b)
	if res.OK || res.Cycle == nil {
		t.Fatalf("nested checker must reject too: %s", res.Summary(tr))
	}
}

// TestSubsumptionOnGeneratedFlatWorkloads is experiment E6: across seeded
// flat workloads under both protocols, the conflict edges of SG(β, T0)
// equal the classical graph's, and acyclicity verdicts agree.
func TestSubsumptionOnGeneratedFlatWorkloads(t *testing.T) {
	run := func(seed int64, proto string) {
		tr := tname.NewTree()
		cfg := workload.Config{Seed: seed, TopLevel: 6, Depth: 0, Fanout: 3,
			Objects: 2, HotProb: 0.5, SpecName: "register"}
		root := workload.Build(tr, cfg)
		var p generic.Options
		if proto == "moss" {
			p = generic.Options{Seed: seed * 31, Protocol: locking.Protocol{}}
		} else {
			p = generic.Options{Seed: seed * 31, Protocol: undolog.Protocol{}}
		}
		b, _, err := generic.Run(tr, root, p)
		if err != nil {
			t.Fatalf("seed %d %s: %v", seed, proto, err)
		}
		s, err := BuildSGT(tr, b)
		if err != nil {
			t.Fatalf("seed %d %s: %v", seed, proto, err)
		}
		sg := core.Build(tr, b)
		if msg := s.CompareWithNested(tr, sg); msg != "" {
			t.Fatalf("seed %d %s: %s", seed, proto, msg)
		}
		if !s.Serializable() {
			t.Fatalf("seed %d %s: locking/undolog produced a non-serializable flat history", seed, proto)
		}
	}
	for seed := int64(0); seed < 12; seed++ {
		run(seed, "moss")
		run(seed, "undolog")
	}
}
