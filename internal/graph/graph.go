// Package graph provides the small directed-graph substrate used by the
// serialization-graph construction: cycle detection, topological sorting,
// strongly connected components and DOT export.
//
// Nodes are dense small integers supplied by the caller (the checker maps
// transaction names to node indices). The implementation is iterative —
// histories can contain very long sibling chains and Go stacks, while
// growable, are better left out of complexity arguments.
package graph

import (
	"container/heap"
	"fmt"
	"sort"
	"strings"
)

// Graph is a directed graph over nodes 0..n-1 with deduplicated edges. The
// representation is adjacency lists only — no auxiliary edge set — so a
// Graph can be Reset and refilled without steady-state allocations.
type Graph struct {
	n   int
	m   int
	adj [][]int32
}

type edge struct{ from, to int32 }

// New returns an empty graph with n nodes.
func New(n int) *Graph {
	return &Graph{n: n, adj: make([][]int32, n)}
}

// Reset reshapes the graph to n isolated nodes, retaining the adjacency
// backing arrays so a refill of similar shape allocates nothing.
func (g *Graph) Reset(n int) {
	if cap(g.adj) < n {
		g.adj = append(g.adj[:cap(g.adj)], make([][]int32, n-cap(g.adj))...)
	}
	g.adj = g.adj[:n]
	for i := range g.adj {
		g.adj[i] = g.adj[i][:0]
	}
	g.n = n
	g.m = 0
}

// Len returns the number of nodes.
func (g *Graph) Len() int { return g.n }

// NumEdges returns the number of distinct edges.
func (g *Graph) NumEdges() int { return g.m }

// AddEdge inserts the edge from→to, ignoring duplicates and panicking on
// out-of-range nodes. Self-loops are recorded (they are cycles). The
// duplicate check scans from's adjacency list; callers that already
// deduplicated should use AddEdgeUnchecked.
func (g *Graph) AddEdge(from, to int) {
	if from < 0 || from >= g.n || to < 0 || to >= g.n {
		panic(fmt.Sprintf("graph: edge (%d,%d) out of range [0,%d)", from, to, g.n))
	}
	for _, w := range g.adj[from] {
		if int(w) == to {
			return
		}
	}
	g.adj[from] = append(g.adj[from], int32(to))
	g.m++
}

// AddEdgeUnchecked inserts from→to without the duplicate scan; the caller
// guarantees the edge is in range and not already present.
func (g *Graph) AddEdgeUnchecked(from, to int) {
	g.adj[from] = append(g.adj[from], int32(to))
	g.m++
}

// HasEdge reports whether from→to is present.
func (g *Graph) HasEdge(from, to int) bool {
	if from < 0 || from >= g.n {
		return false
	}
	for _, w := range g.adj[from] {
		if int(w) == to {
			return true
		}
	}
	return false
}

// Succ returns the successors of node v; the slice is owned by the graph.
func (g *Graph) Succ(v int) []int32 { return g.adj[v] }

// nodeHeap is a min-heap of node indices: the TopoSort frontier.
type nodeHeap []int32

func (h nodeHeap) Len() int            { return len(h) }
func (h nodeHeap) Less(i, j int) bool  { return h[i] < h[j] }
func (h nodeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x interface{}) { *h = append(*h, x.(int32)) }
func (h *nodeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// TopoSort returns a topological order of the nodes, or (nil, cycle) where
// cycle is a list of nodes forming a directed cycle. Kahn's algorithm over a
// min-heap frontier, so ties always break toward the smallest node index
// and certificates are reproducible regardless of edge insertion order.
func (g *Graph) TopoSort() (order []int, cycle []int) {
	indeg := make([]int, g.n)
	for v := range g.adj {
		for _, w := range g.adj[v] {
			indeg[w]++
		}
	}
	h := make(nodeHeap, 0, g.n)
	for v := 0; v < g.n; v++ {
		if indeg[v] == 0 {
			h = append(h, int32(v))
		}
	}
	// Ascending append order is already a valid min-heap.
	order = make([]int, 0, g.n)
	for h.Len() > 0 {
		v := int(heap.Pop(&h).(int32))
		order = append(order, v)
		for _, w := range g.adj[v] {
			indeg[w]--
			if indeg[w] == 0 {
				heap.Push(&h, w)
			}
		}
	}
	if len(order) == g.n {
		return order, nil
	}
	return nil, g.findCycle()
}

// Acyclic reports whether the graph has no directed cycle.
func (g *Graph) Acyclic() bool {
	_, cycle := g.TopoSort()
	return cycle == nil
}

// findCycle returns some directed cycle; it must only be called when one
// exists. Iterative DFS with an explicit stack, tracking the path.
func (g *Graph) findCycle() []int {
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := make([]byte, g.n)
	parent := make([]int32, g.n)
	for i := range parent {
		parent[i] = -1
	}
	type frame struct {
		v    int32
		next int
	}
	for start := 0; start < g.n; start++ {
		if color[start] != white {
			continue
		}
		stack := []frame{{v: int32(start)}}
		color[start] = grey
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.next < len(g.adj[f.v]) {
				w := g.adj[f.v][f.next]
				f.next++
				switch color[w] {
				case white:
					color[w] = grey
					parent[w] = f.v
					stack = append(stack, frame{v: w})
				case grey:
					// Found a back edge f.v -> w; walk parents from f.v to w.
					cyc := []int{int(w)}
					for u := f.v; u != w; u = parent[u] {
						cyc = append(cyc, int(u))
					}
					// Reverse so the cycle reads in edge direction.
					for i, j := 0, len(cyc)-1; i < j; i, j = i+1, j-1 {
						cyc[i], cyc[j] = cyc[j], cyc[i]
					}
					return cyc
				}
			} else {
				color[f.v] = black
				stack = stack[:len(stack)-1]
			}
		}
	}
	return nil
}

// SCCs returns the strongly connected components in reverse topological
// order (Tarjan, iterative). Components are sorted internally by node index.
func (g *Graph) SCCs() [][]int {
	index := make([]int32, g.n)
	low := make([]int32, g.n)
	onStack := make([]bool, g.n)
	for i := range index {
		index[i] = -1
	}
	var (
		counter int32
		stack   []int32
		out     [][]int
	)
	type frame struct {
		v    int32
		next int
	}
	for start := 0; start < g.n; start++ {
		if index[start] != -1 {
			continue
		}
		call := []frame{{v: int32(start)}}
		index[start] = counter
		low[start] = counter
		counter++
		stack = append(stack, int32(start))
		onStack[start] = true
		for len(call) > 0 {
			f := &call[len(call)-1]
			if f.next < len(g.adj[f.v]) {
				w := g.adj[f.v][f.next]
				f.next++
				if index[w] == -1 {
					index[w] = counter
					low[w] = counter
					counter++
					stack = append(stack, w)
					onStack[w] = true
					call = append(call, frame{v: w})
				} else if onStack[w] && index[w] < low[f.v] {
					low[f.v] = index[w]
				}
			} else {
				if len(call) > 1 {
					p := call[len(call)-2].v
					if low[f.v] < low[p] {
						low[p] = low[f.v]
					}
				}
				if low[f.v] == index[f.v] {
					var comp []int
					for {
						w := stack[len(stack)-1]
						stack = stack[:len(stack)-1]
						onStack[w] = false
						comp = append(comp, int(w))
						if w == f.v {
							break
						}
					}
					sort.Ints(comp)
					out = append(out, comp)
				}
				call = call[:len(call)-1]
			}
		}
	}
	return out
}

// DOT renders the graph in Graphviz DOT syntax. label maps node indices to
// display names; nil uses the index.
func (g *Graph) DOT(name string, label func(int) string) string {
	if label == nil {
		label = func(v int) string { return fmt.Sprintf("%d", v) }
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph %q {\n", name)
	for v := 0; v < g.n; v++ {
		fmt.Fprintf(&sb, "  n%d [label=%q];\n", v, label(v))
	}
	// Deterministic edge order.
	es := make([]edge, 0, g.m)
	for v := range g.adj {
		for _, w := range g.adj[v] {
			es = append(es, edge{int32(v), w})
		}
	}
	sort.Slice(es, func(i, j int) bool {
		if es[i].from != es[j].from {
			return es[i].from < es[j].from
		}
		return es[i].to < es[j].to
	})
	for _, e := range es {
		fmt.Fprintf(&sb, "  n%d -> n%d;\n", e.from, e.to)
	}
	sb.WriteString("}\n")
	return sb.String()
}
