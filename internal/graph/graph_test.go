package graph

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestEmptyGraph(t *testing.T) {
	g := New(0)
	order, cycle := g.TopoSort()
	if cycle != nil || len(order) != 0 {
		t.Error("empty graph must sort trivially")
	}
	if !g.Acyclic() {
		t.Error("empty graph is acyclic")
	}
}

func TestEdgeBookkeeping(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	g.AddEdge(0, 1) // duplicate
	g.AddEdge(1, 2)
	if g.NumEdges() != 2 {
		t.Errorf("NumEdges = %d", g.NumEdges())
	}
	if !g.HasEdge(0, 1) || g.HasEdge(1, 0) {
		t.Error("HasEdge wrong")
	}
	if len(g.Succ(0)) != 1 {
		t.Error("duplicate edges must not duplicate adjacency")
	}
}

func TestAddEdgeOutOfRange(t *testing.T) {
	g := New(2)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	g.AddEdge(0, 5)
}

func TestTopoSortChain(t *testing.T) {
	g := New(4)
	g.AddEdge(3, 2)
	g.AddEdge(2, 1)
	g.AddEdge(1, 0)
	order, cycle := g.TopoSort()
	if cycle != nil {
		t.Fatal("chain is acyclic")
	}
	want := []int{3, 2, 1, 0}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v", order)
		}
	}
}

func TestTopoSortDeterministicTieBreak(t *testing.T) {
	g := New(4)
	g.AddEdge(2, 3)
	order, cycle := g.TopoSort()
	if cycle != nil {
		t.Fatal("acyclic")
	}
	// Unconstrained nodes come in ascending index order.
	want := []int{0, 1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestSelfLoopIsCycle(t *testing.T) {
	g := New(2)
	g.AddEdge(1, 1)
	if g.Acyclic() {
		t.Error("self-loop is a cycle")
	}
	_, cycle := g.TopoSort()
	if len(cycle) != 1 || cycle[0] != 1 {
		t.Errorf("cycle = %v", cycle)
	}
}

func TestFindCycleValid(t *testing.T) {
	g := New(5)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(3, 1) // cycle 1→2→3→1
	g.AddEdge(3, 4)
	_, cycle := g.TopoSort()
	if cycle == nil {
		t.Fatal("expected a cycle")
	}
	assertIsCycle(t, g, cycle)
}

func assertIsCycle(t *testing.T, g *Graph, cycle []int) {
	t.Helper()
	if len(cycle) == 0 {
		t.Fatal("empty cycle")
	}
	for i := range cycle {
		j := (i + 1) % len(cycle)
		if !g.HasEdge(cycle[i], cycle[j]) {
			t.Fatalf("cycle %v: missing edge %d->%d", cycle, cycle[i], cycle[j])
		}
	}
}

func TestSCCs(t *testing.T) {
	g := New(6)
	// Component {0,1,2}, component {3,4}, singleton {5}.
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 0)
	g.AddEdge(2, 3)
	g.AddEdge(3, 4)
	g.AddEdge(4, 3)
	g.AddEdge(4, 5)
	comps := g.SCCs()
	sizes := map[int]int{}
	for _, c := range comps {
		sizes[len(c)]++
	}
	if sizes[3] != 1 || sizes[2] != 1 || sizes[1] != 1 {
		t.Fatalf("components = %v", comps)
	}
	// Reverse topological order: {5} first, then {3,4}, then {0,1,2}.
	if len(comps[0]) != 1 || comps[0][0] != 5 {
		t.Errorf("first component = %v, want [5]", comps[0])
	}
	if len(comps[2]) != 3 {
		t.Errorf("last component = %v, want the 3-cycle", comps[2])
	}
}

func TestDOT(t *testing.T) {
	g := New(2)
	g.AddEdge(0, 1)
	dot := g.DOT("g", func(v int) string { return "N" + string(rune('A'+v)) })
	for _, frag := range []string{"digraph", "NA", "NB", "n0 -> n1"} {
		if !strings.Contains(dot, frag) {
			t.Errorf("DOT output missing %q:\n%s", frag, dot)
		}
	}
}

// randomDAG builds a DAG by only adding forward edges under a random
// permutation, returning the graph and the hidden order.
func randomDAG(rng *rand.Rand, n, m int) *Graph {
	perm := rng.Perm(n)
	g := New(n)
	for k := 0; k < m; k++ {
		i, j := rng.Intn(n), rng.Intn(n)
		if i == j {
			continue
		}
		if perm[i] > perm[j] {
			i, j = j, i
		}
		g.AddEdge(i, j)
	}
	return g
}

// TestTopoSortProperty: on random DAGs, TopoSort must return a permutation
// consistent with every edge; on graphs with a planted cycle, it must
// report a genuine cycle.
func TestTopoSortProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		g := randomDAG(rng, n, n*2)
		order, cycle := g.TopoSort()
		if cycle != nil {
			return false
		}
		pos := make([]int, n)
		for i, v := range order {
			pos[v] = i
		}
		for v := 0; v < n; v++ {
			for _, w := range g.Succ(v) {
				if pos[v] >= pos[int(w)] {
					return false
				}
			}
		}
		// Plant a guaranteed 2-cycle; TopoSort is pure so re-running the
		// mutated graph is fine.
		if n >= 2 {
			g.AddEdge(order[0], order[1])
			g.AddEdge(order[1], order[0])
			cyc2, cyc := g.TopoSort()
			if cyc == nil {
				_ = cyc2
				return false
			}
			for i := range cyc {
				if !g.HasEdge(cyc[i], cyc[(i+1)%len(cyc)]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestSCCsAgreeWithAcyclicity: a graph is acyclic iff every SCC is a
// singleton without a self-loop.
func TestSCCsAgreeWithAcyclicity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		g := New(n)
		m := rng.Intn(3 * n)
		for k := 0; k < m; k++ {
			g.AddEdge(rng.Intn(n), rng.Intn(n))
		}
		allSingle := true
		for _, c := range g.SCCs() {
			if len(c) > 1 {
				allSingle = false
			} else if g.HasEdge(c[0], c[0]) {
				allSingle = false
			}
		}
		return g.Acyclic() == allSingle
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
