package graph

import (
	"fmt"
	"slices"
)

// Incremental maintains a topological order of a growing directed acyclic
// graph under single-edge insertions, using the two-way bounded search of
// Pearce & Kelly ("A Dynamic Topological Sort Algorithm for Directed
// Acyclic Graphs", JEA 2006). Inserting an edge that already respects the
// maintained order costs O(1); otherwise only the nodes whose positions lie
// in the affected region [pos(to), pos(from)] are searched and reshuffled,
// which is the region a violating edge can possibly disturb.
//
// The online serialization-graph checker uses one Incremental per parent
// graph SG(β, T): every appended edge either preserves acyclicity (and the
// order certificate stays valid) or closes a cycle, which AddEdge reports
// immediately — the checker rejects the trace at that exact prefix instead
// of re-running a full sort per event.
//
// All search scratch (visited stamps, discovery buffers, the slot pool) is
// owned by the struct and epoch-stamped, so a long append sequence — and a
// Reset followed by a refill — runs without steady-state allocations.
type Incremental struct {
	out, in [][]int32
	m       int
	// pos[v] is v's position in the maintained topological order; positions
	// always form a permutation of 0..n-1.
	pos []int32

	// Search scratch, reused across AddEdge calls. markF/markB hold the
	// epoch at which a node was last discovered forward/backward; parent
	// records the forward search tree for cycle extraction.
	epoch          uint32
	markF, markB   []uint32
	parent         []int32
	deltaF, deltaB []int32
	stack          []int32
	nodes, slots   []int32
}

// NewIncremental returns an incremental DAG with n nodes, no edges, and
// the identity order.
func NewIncremental(n int) *Incremental {
	g := &Incremental{}
	for i := 0; i < n; i++ {
		g.AddNode()
	}
	return g
}

// Reset empties the graph back to zero nodes, keeping every backing array
// so a refill of similar shape allocates nothing. The epoch stamps survive,
// which is what keeps the reused mark arrays valid.
func (g *Incremental) Reset() {
	g.pos = g.pos[:0]
	g.out = g.out[:0]
	g.in = g.in[:0]
	g.m = 0
}

// AddNode appends a node at the end of the maintained order and returns
// its index.
func (g *Incremental) AddNode() int {
	v := len(g.pos)
	g.pos = append(g.pos, int32(v))
	if cap(g.out) > v {
		g.out = g.out[:v+1]
		g.out[v] = g.out[v][:0]
	} else {
		g.out = append(g.out, nil)
	}
	if cap(g.in) > v {
		g.in = g.in[:v+1]
		g.in[v] = g.in[v][:0]
	} else {
		g.in = append(g.in, nil)
	}
	if len(g.markF) <= v {
		g.markF = append(g.markF, 0)
		g.markB = append(g.markB, 0)
		g.parent = append(g.parent, 0)
	}
	return v
}

// Len returns the number of nodes.
func (g *Incremental) Len() int { return len(g.pos) }

// NumEdges returns the number of distinct edges.
func (g *Incremental) NumEdges() int { return g.m }

// HasEdge reports whether from→to is present.
func (g *Incremental) HasEdge(from, to int) bool {
	if from < 0 || from >= len(g.out) {
		return false
	}
	for _, w := range g.out[from] {
		if int(w) == to {
			return true
		}
	}
	return false
}

// Pos returns the position of v in the maintained topological order.
func (g *Incremental) Pos(v int) int { return int(g.pos[v]) }

// bumpEpoch advances the scratch stamp, clearing the mark arrays on the
// (effectively unreachable) wraparound so stale stamps can never collide.
func (g *Incremental) bumpEpoch() uint32 {
	g.epoch++
	if g.epoch == 0 {
		for i := range g.markF {
			g.markF[i] = 0
			g.markB[i] = 0
		}
		g.epoch = 1
	}
	return g.epoch
}

// AddEdge inserts the edge from→to, maintaining the topological order. It
// returns nil when the graph stays acyclic, and otherwise a directed cycle
// the new edge closes, in edge order (the edge from the last node to the
// first closes it). Duplicate edges are ignored. After a non-nil return the
// maintained order is stale; the caller is expected to stop feeding edges
// (the serialization checker rejects the trace at this point).
func (g *Incremental) AddEdge(from, to int) []int {
	if from < 0 || from >= len(g.pos) || to < 0 || to >= len(g.pos) {
		panic(fmt.Sprintf("graph: incremental edge (%d,%d) out of range [0,%d)", from, to, len(g.pos)))
	}
	if g.HasEdge(from, to) {
		return nil
	}
	g.out[from] = append(g.out[from], int32(to))
	g.in[to] = append(g.in[to], int32(from))
	g.m++
	if from == to {
		return []int{from}
	}
	lb, ub := g.pos[to], g.pos[from]
	if ub < lb {
		// The edge already agrees with the order: nothing to do.
		return nil
	}
	ep := g.bumpEpoch()
	// Discovery: forward from `to` over nodes positioned ≤ ub. Any path
	// to→…→from lies entirely inside [lb, ub] (positions increase along
	// edges of a respected order), so reaching `from` here is the complete
	// cycle test.
	deltaF := append(g.deltaF[:0], int32(to))
	g.markF[to] = ep
	stack := append(g.stack[:0], int32(to))
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range g.out[v] {
			if int(w) == from {
				// Cycle: to → … → v → from, closed by the new from→to.
				g.deltaF, g.stack = deltaF, stack
				cyc := []int{}
				for u := v; ; u = g.parent[u] {
					cyc = append(cyc, int(u))
					if int(u) == to {
						break
					}
				}
				// Collected back-to-front; reverse into edge order and
				// append the far endpoint.
				for i, j := 0, len(cyc)-1; i < j; i, j = i+1, j-1 {
					cyc[i], cyc[j] = cyc[j], cyc[i]
				}
				return append(cyc, from)
			}
			if g.pos[w] < ub && g.markF[w] != ep {
				g.markF[w] = ep
				g.parent[w] = v
				deltaF = append(deltaF, w)
				stack = append(stack, w)
			}
		}
	}
	// Backward from `from` over nodes positioned > lb. (`to` cannot be
	// reached: that would be a to⇒from path, found above.)
	deltaB := append(g.deltaB[:0], int32(from))
	g.markB[from] = ep
	stack = append(stack[:0], int32(from))
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range g.in[v] {
			if g.pos[w] > lb && g.markB[w] != ep {
				g.markB[w] = ep
				deltaB = append(deltaB, w)
				stack = append(stack, w)
			}
		}
	}
	// Reassignment: everything that reaches `from` must precede everything
	// reachable from `to`. Keep each group's internal order and pour both
	// into the sorted pool of their old positions.
	byPos := func(a, b int32) int { return int(g.pos[a]) - int(g.pos[b]) }
	slices.SortFunc(deltaB, byPos)
	slices.SortFunc(deltaF, byPos)
	nodes := append(append(g.nodes[:0], deltaB...), deltaF...)
	slots := g.slots[:0]
	for _, v := range nodes {
		slots = append(slots, g.pos[v])
	}
	slices.Sort(slots)
	for i, v := range nodes {
		g.pos[v] = slots[i]
	}
	g.deltaF, g.deltaB, g.stack, g.nodes, g.slots = deltaF, deltaB, stack, nodes, slots
	return nil
}
