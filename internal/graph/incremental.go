package graph

import (
	"fmt"
	"sort"
)

// Incremental maintains a topological order of a growing directed acyclic
// graph under single-edge insertions, using the two-way bounded search of
// Pearce & Kelly ("A Dynamic Topological Sort Algorithm for Directed
// Acyclic Graphs", JEA 2006). Inserting an edge that already respects the
// maintained order costs O(1); otherwise only the nodes whose positions lie
// in the affected region [pos(to), pos(from)] are searched and reshuffled,
// which is the region a violating edge can possibly disturb.
//
// The online serialization-graph checker uses one Incremental per parent
// graph SG(β, T): every appended edge either preserves acyclicity (and the
// order certificate stays valid) or closes a cycle, which AddEdge reports
// immediately — the checker rejects the trace at that exact prefix instead
// of re-running a full sort per event.
type Incremental struct {
	out, in [][]int32
	edges   map[edge]bool
	// pos[v] is v's position in the maintained topological order; positions
	// always form a permutation of 0..n-1.
	pos []int32
}

// NewIncremental returns an incremental DAG with n nodes, no edges, and
// the identity order.
func NewIncremental(n int) *Incremental {
	g := &Incremental{edges: make(map[edge]bool)}
	for i := 0; i < n; i++ {
		g.AddNode()
	}
	return g
}

// AddNode appends a node at the end of the maintained order and returns
// its index.
func (g *Incremental) AddNode() int {
	v := len(g.pos)
	g.pos = append(g.pos, int32(v))
	g.out = append(g.out, nil)
	g.in = append(g.in, nil)
	return v
}

// Len returns the number of nodes.
func (g *Incremental) Len() int { return len(g.pos) }

// NumEdges returns the number of distinct edges.
func (g *Incremental) NumEdges() int { return len(g.edges) }

// HasEdge reports whether from→to is present.
func (g *Incremental) HasEdge(from, to int) bool {
	return g.edges[edge{int32(from), int32(to)}]
}

// Pos returns the position of v in the maintained topological order.
func (g *Incremental) Pos(v int) int { return int(g.pos[v]) }

// AddEdge inserts the edge from→to, maintaining the topological order. It
// returns nil when the graph stays acyclic, and otherwise a directed cycle
// the new edge closes, in edge order (the edge from the last node to the
// first closes it). Duplicate edges are ignored. After a non-nil return the
// maintained order is stale; the caller is expected to stop feeding edges
// (the serialization checker rejects the trace at this point).
func (g *Incremental) AddEdge(from, to int) []int {
	if from < 0 || from >= len(g.pos) || to < 0 || to >= len(g.pos) {
		panic(fmt.Sprintf("graph: incremental edge (%d,%d) out of range [0,%d)", from, to, len(g.pos)))
	}
	e := edge{int32(from), int32(to)}
	if g.edges[e] {
		return nil
	}
	g.edges[e] = true
	g.out[from] = append(g.out[from], int32(to))
	g.in[to] = append(g.in[to], int32(from))
	if from == to {
		return []int{from}
	}
	lb, ub := g.pos[to], g.pos[from]
	if ub < lb {
		// The edge already agrees with the order: nothing to do.
		return nil
	}
	// Discovery: forward from `to` over nodes positioned ≤ ub. Any path
	// to→…→from lies entirely inside [lb, ub] (positions increase along
	// edges of a respected order), so reaching `from` here is the complete
	// cycle test.
	parent := map[int32]int32{}
	deltaF := []int32{int32(to)}
	onF := map[int32]bool{int32(to): true}
	stack := []int32{int32(to)}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range g.out[v] {
			if int(w) == from {
				// Cycle: to → … → v → from, closed by the new from→to.
				cyc := []int{}
				for u := v; ; u = parent[u] {
					cyc = append(cyc, int(u))
					if int(u) == to {
						break
					}
				}
				// Collected back-to-front; reverse into edge order and
				// append the far endpoint.
				for i, j := 0, len(cyc)-1; i < j; i, j = i+1, j-1 {
					cyc[i], cyc[j] = cyc[j], cyc[i]
				}
				return append(cyc, from)
			}
			if g.pos[w] < ub && !onF[w] {
				onF[w] = true
				parent[w] = v
				deltaF = append(deltaF, w)
				stack = append(stack, w)
			}
		}
	}
	// Backward from `from` over nodes positioned > lb. (`to` cannot be
	// reached: that would be a to⇒from path, found above.)
	deltaB := []int32{int32(from)}
	onB := map[int32]bool{int32(from): true}
	stack = append(stack[:0], int32(from))
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range g.in[v] {
			if g.pos[w] > lb && !onB[w] {
				onB[w] = true
				deltaB = append(deltaB, w)
				stack = append(stack, w)
			}
		}
	}
	// Reassignment: everything that reaches `from` must precede everything
	// reachable from `to`. Keep each group's internal order and pour both
	// into the sorted pool of their old positions.
	sort.Slice(deltaB, func(i, j int) bool { return g.pos[deltaB[i]] < g.pos[deltaB[j]] })
	sort.Slice(deltaF, func(i, j int) bool { return g.pos[deltaF[i]] < g.pos[deltaF[j]] })
	nodes := append(deltaB, deltaF...)
	slots := make([]int32, len(nodes))
	for i, v := range nodes {
		slots[i] = g.pos[v]
	}
	sort.Slice(slots, func(i, j int) bool { return slots[i] < slots[j] })
	for i, v := range nodes {
		g.pos[v] = slots[i]
	}
	return nil
}
