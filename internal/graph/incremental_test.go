package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIncrementalEmpty(t *testing.T) {
	g := NewIncremental(0)
	if g.Len() != 0 || g.NumEdges() != 0 {
		t.Error("empty incremental graph must be empty")
	}
	v := g.AddNode()
	if v != 0 || g.Len() != 1 || g.Pos(0) != 0 {
		t.Errorf("AddNode = %d, Len = %d, Pos = %d", v, g.Len(), g.Pos(0))
	}
}

func TestIncrementalBookkeeping(t *testing.T) {
	g := NewIncremental(3)
	if cyc := g.AddEdge(0, 1); cyc != nil {
		t.Fatalf("acyclic edge reported cycle %v", cyc)
	}
	if cyc := g.AddEdge(0, 1); cyc != nil {
		t.Fatalf("duplicate edge reported cycle %v", cyc)
	}
	if cyc := g.AddEdge(1, 2); cyc != nil {
		t.Fatalf("acyclic edge reported cycle %v", cyc)
	}
	if g.NumEdges() != 2 {
		t.Errorf("NumEdges = %d", g.NumEdges())
	}
	if !g.HasEdge(0, 1) || g.HasEdge(1, 0) {
		t.Error("HasEdge wrong")
	}
}

func TestIncrementalOutOfRange(t *testing.T) {
	g := NewIncremental(2)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	g.AddEdge(0, 5)
}

func TestIncrementalSelfLoop(t *testing.T) {
	g := NewIncremental(2)
	cyc := g.AddEdge(1, 1)
	if len(cyc) != 1 || cyc[0] != 1 {
		t.Errorf("self-loop cycle = %v", cyc)
	}
}

func TestIncrementalTwoCycle(t *testing.T) {
	g := NewIncremental(2)
	if cyc := g.AddEdge(0, 1); cyc != nil {
		t.Fatalf("unexpected cycle %v", cyc)
	}
	cyc := g.AddEdge(1, 0)
	if len(cyc) != 2 || cyc[0] != 0 || cyc[1] != 1 {
		t.Errorf("cycle = %v, want [0 1]", cyc)
	}
}

// orderValid checks that pos is a permutation respecting every edge.
func orderValid(t *testing.T, g *Incremental) {
	t.Helper()
	seen := make([]bool, g.Len())
	for v := 0; v < g.Len(); v++ {
		p := g.Pos(v)
		if p < 0 || p >= g.Len() || seen[p] {
			t.Fatalf("pos is not a permutation: node %d at %d", v, p)
		}
		seen[p] = true
	}
	for v := range g.out {
		for _, w := range g.out[v] {
			if int(w) == v {
				continue
			}
			if g.Pos(v) >= g.Pos(int(w)) {
				t.Fatalf("edge %d->%d violates order (%d >= %d)",
					v, w, g.Pos(v), g.Pos(int(w)))
			}
		}
	}
}

func TestIncrementalMaintainsOrder(t *testing.T) {
	// Insert a chain against the initial order so every edge forces a
	// reshuffle, then verify the order after each insertion.
	const n = 50
	g := NewIncremental(n)
	for v := n - 1; v > 0; v-- {
		if cyc := g.AddEdge(v, v-1); cyc != nil {
			t.Fatalf("chain edge %d->%d reported cycle %v", v, v-1, cyc)
		}
		orderValid(t, g)
	}
	if g.Pos(n-1) != 0 || g.Pos(0) != n-1 {
		t.Errorf("chain ends at pos %d and %d", g.Pos(n-1), g.Pos(0))
	}
}

// TestIncrementalVsStatic: feeding random edges one at a time, the
// incremental structure must agree with the static checker at every step —
// same acyclicity verdict, and any reported cycle must be a genuine cycle
// closed by the edge just inserted.
func TestIncrementalVsStatic(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		inc := NewIncremental(n)
		static := New(n)
		for k := 0; k < 4*n; k++ {
			from, to := rng.Intn(n), rng.Intn(n)
			static.AddEdge(from, to)
			cyc := inc.AddEdge(from, to)
			if (cyc == nil) != static.Acyclic() {
				return false
			}
			if cyc != nil {
				// Validate the cycle against the edge set, including the
				// closing edge, then stop: the order is stale now.
				for i := range cyc {
					if !static.HasEdge(cyc[i], cyc[(i+1)%len(cyc)]) {
						return false
					}
				}
				return true
			}
		}
		// Stayed acyclic throughout: the final order must respect all edges.
		for v := 0; v < n; v++ {
			for _, w := range static.Succ(v) {
				if int(w) != v && inc.Pos(v) >= inc.Pos(int(w)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestIncrementalCycleEdgeOrder: the returned cycle reads in edge direction
// and the freshly inserted edge is the one from the last node to the first.
func TestIncrementalCycleEdgeOrder(t *testing.T) {
	g := NewIncremental(4)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 3}} {
		if cyc := g.AddEdge(e[0], e[1]); cyc != nil {
			t.Fatalf("unexpected cycle %v", cyc)
		}
	}
	cyc := g.AddEdge(3, 0)
	want := []int{0, 1, 2, 3}
	if len(cyc) != len(want) {
		t.Fatalf("cycle = %v, want %v", cyc, want)
	}
	for i := range want {
		if cyc[i] != want[i] {
			t.Fatalf("cycle = %v, want %v", cyc, want)
		}
	}
}

// TestTopoSortDeterministicUnderInsertionOrder: the heap-based TopoSort must
// give the identical order no matter how the same edge set was inserted.
func TestTopoSortDeterministicUnderInsertionOrder(t *testing.T) {
	edges := [][2]int{{0, 3}, {4, 2}, {1, 3}, {4, 0}, {2, 3}}
	var ref []int
	for trial := 0; trial < 20; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		g := New(5)
		for _, i := range rng.Perm(len(edges)) {
			g.AddEdge(edges[i][0], edges[i][1])
		}
		order, cycle := g.TopoSort()
		if cycle != nil {
			t.Fatal("acyclic")
		}
		if ref == nil {
			ref = order
			continue
		}
		for i := range ref {
			if order[i] != ref[i] {
				t.Fatalf("trial %d: order %v != %v", trial, order, ref)
			}
		}
	}
}

// combGraph builds a long chain with a burst of leaves hanging off the
// chain's head. Once the chain drains, every leaf sits in the frontier at
// the same time — the shape that made the old sort-per-round frontier
// quadratic.
func combGraph(n int) *Graph {
	g := New(2 * n)
	for v := 0; v+1 < n; v++ {
		g.AddEdge(v, v+1)
	}
	for v := 0; v < n; v++ {
		g.AddEdge(n-1, n+v)
	}
	return g
}

func BenchmarkTopoSortComb(b *testing.B) {
	g := combGraph(2000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, cycle := g.TopoSort(); cycle != nil {
			b.Fatal("comb is acyclic")
		}
	}
}

func BenchmarkIncrementalChain(b *testing.B) {
	// Worst-case insertion order: every edge lands against the current
	// order, forcing a (bounded) reshuffle.
	const n = 2000
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := NewIncremental(n)
		for v := n - 1; v > 0; v-- {
			if cyc := g.AddEdge(v, v-1); cyc != nil {
				b.Fatal("chain is acyclic")
			}
		}
	}
}
