package simple

import (
	"fmt"

	"nestedsg/internal/event"
	"nestedsg/internal/tname"
)

// WFError reports the first violation of the simple-database axioms found
// in a behavior, with the index of the offending event.
type WFError struct {
	Index int
	Event event.Event
	Msg   string
}

func (e *WFError) Error() string {
	return fmt.Sprintf("well-formedness violated at event %d (%v %d): %s", e.Index, e.Event.Kind, e.Event.Tx, e.Msg)
}

// txWFState tracks the lifecycle facts the axioms mention.
type txWFState struct {
	requested       bool
	created         bool
	commitRequested bool
	commitVal       bool // commitRequested carries a value
	committed       bool
	aborted         bool
	reported        bool
	pendingReports  int // children completed but not yet reported to this tx
	openChildren    int // children whose creation was requested but not yet reported
}

// CheckWellFormed verifies that serial(β) satisfies the simple-database
// constraints of §2.3.1 together with transaction and serial-object
// well-formedness syntax:
//
//   - CREATE(T) (T ≠ T0) only after REQUEST_CREATE(T), and at most once;
//   - REQUEST_CREATE(T) only by a created, non-commit-requested parent, at
//     most once;
//   - REQUEST_COMMIT(T, v) only after CREATE(T), at most once, and for
//     non-access T only when every requested child has been reported;
//   - COMMIT(T) only after REQUEST_COMMIT(T, ·); ABORT(T) only after
//     REQUEST_CREATE(T); at most one completion event per transaction;
//   - REPORT_COMMIT(T, v) only after COMMIT(T) with v equal to the
//     requested value; REPORT_ABORT(T) only after ABORT(T); at most one
//     report per transaction.
//
// INFORM events are ignored here (they are generic-system actions checked
// by the generic runner). The values map records each REQUEST_COMMIT value
// so that report values can be matched.
func CheckWellFormed(tr *tname.Tree, b event.Behavior) error {
	st := make(map[tname.TxID]*txWFState)
	vals := make(map[tname.TxID]event.Event)
	get := func(t tname.TxID) *txWFState {
		s, ok := st[t]
		if !ok {
			s = &txWFState{}
			st[t] = s
		}
		return s
	}
	fail := func(i int, e event.Event, format string, args ...any) error {
		return &WFError{Index: i, Event: e, Msg: fmt.Sprintf(format, args...)}
	}

	for i, e := range b {
		if !e.Kind.IsSerial() {
			continue
		}
		s := get(e.Tx)
		switch e.Kind {
		case event.Create:
			if e.Tx != tname.Root && !s.requested {
				return fail(i, e, "CREATE without prior REQUEST_CREATE")
			}
			if s.created {
				return fail(i, e, "second CREATE")
			}
			if s.aborted || s.committed {
				return fail(i, e, "CREATE after completion")
			}
			s.created = true

		case event.RequestCreate:
			if e.Tx == tname.Root {
				return fail(i, e, "REQUEST_CREATE of T0")
			}
			if s.requested {
				return fail(i, e, "second REQUEST_CREATE")
			}
			p := get(tr.Parent(e.Tx))
			if !p.created {
				return fail(i, e, "parent not created")
			}
			if p.commitRequested {
				return fail(i, e, "parent already requested commit")
			}
			s.requested = true
			p.openChildren++

		case event.RequestCommit:
			if !s.created {
				return fail(i, e, "REQUEST_COMMIT without CREATE")
			}
			if s.commitRequested {
				return fail(i, e, "second REQUEST_COMMIT")
			}
			if !tr.IsAccess(e.Tx) && e.Tx != tname.Root && s.openChildren > 0 {
				return fail(i, e, "REQUEST_COMMIT with %d unreported children", s.openChildren)
			}
			s.commitRequested = true
			vals[e.Tx] = e

		case event.Commit:
			if e.Tx == tname.Root {
				return fail(i, e, "COMMIT of T0")
			}
			if !s.commitRequested {
				return fail(i, e, "COMMIT without REQUEST_COMMIT")
			}
			if s.committed || s.aborted {
				return fail(i, e, "second completion event")
			}
			s.committed = true

		case event.Abort:
			if e.Tx == tname.Root {
				return fail(i, e, "ABORT of T0")
			}
			if !s.requested {
				return fail(i, e, "ABORT without REQUEST_CREATE")
			}
			if s.committed || s.aborted {
				return fail(i, e, "second completion event")
			}
			s.aborted = true

		case event.ReportCommit:
			if !s.committed {
				return fail(i, e, "REPORT_COMMIT without COMMIT")
			}
			if s.reported {
				return fail(i, e, "second report")
			}
			if rc, ok := vals[e.Tx]; !ok || rc.Val != e.Val {
				return fail(i, e, "REPORT_COMMIT value %s does not match requested %s", e.Val, rc.Val)
			}
			s.reported = true
			get(tr.Parent(e.Tx)).openChildren--

		case event.ReportAbort:
			if !s.aborted {
				return fail(i, e, "REPORT_ABORT without ABORT")
			}
			if s.reported {
				return fail(i, e, "second report")
			}
			s.reported = true
			get(tr.Parent(e.Tx)).openChildren--

		default:
			// Unreachable: the IsSerial filter above admits exactly the
			// seven kinds handled here. Fail loudly if the enumeration and
			// the filter ever drift apart.
			return fail(i, e, "unhandled serial kind %s", e.Kind)
		}
	}
	return nil
}
