// Package simple implements the paper's "simple system" layer (§2.3.1):
// the axioms every reasonable transaction-processing system satisfies, and
// the derived notions the Serializability Theorem is stated with —
// visibility, orphans, clean projections, write sequences and final values,
// appropriate return values, and the current/safe conditions of §3.3.
//
// Everything here is a pure function over a recorded behavior; the
// checkers in internal/core build on these.
package simple

import (
	"fmt"

	"nestedsg/internal/event"
	"nestedsg/internal/spec"
	"nestedsg/internal/tname"
)

// Vis answers visibility queries against a fixed behavior: T' is visible to
// T in β iff every ancestor of T' up to but not including lca(T, T') has a
// COMMIT event in β (§2.3.2).
type Vis struct {
	tr        *tname.Tree
	committed map[tname.TxID]bool
	ancOfT    map[tname.TxID]bool
	t         tname.TxID
}

// NewVis builds a visibility oracle for transaction t in behavior b.
func NewVis(tr *tname.Tree, b event.Behavior, t tname.TxID) *Vis {
	v := &Vis{tr: tr, committed: b.CommitSet(), ancOfT: make(map[tname.TxID]bool), t: t}
	for u := t; u != tname.None; u = tr.Parent(u) {
		v.ancOfT[u] = true
	}
	return v
}

// Visible reports whether tx is visible to the oracle's transaction.
func (v *Vis) Visible(tx tname.TxID) bool {
	for u := tx; u != tname.None; u = v.tr.Parent(u) {
		if v.ancOfT[u] {
			return true
		}
		if !v.committed[u] {
			return false
		}
	}
	return true
}

// Committed reports whether tx has a COMMIT event in the behavior the
// oracle was built from.
func (v *Vis) Committed(tx tname.TxID) bool { return v.committed[tx] }

// VisibleTo returns visible(β, t): the subsequence of serial actions of b
// whose hightransaction is visible to t in b.
func VisibleTo(tr *tname.Tree, b event.Behavior, t tname.TxID) event.Behavior {
	v := NewVis(tr, b, t)
	out := make(event.Behavior, 0, len(b))
	for _, e := range b {
		if !e.Kind.IsSerial() {
			continue
		}
		if v.Visible(e.HighTransaction(tr)) {
			out = append(out, e)
		}
	}
	return out
}

// Clean returns clean(β): the subsequence of serial actions whose
// hightransactions are not orphans in β (§3.3).
func Clean(tr *tname.Tree, b event.Behavior) event.Behavior {
	aborted := b.AbortSet()
	out := make(event.Behavior, 0, len(b))
	for _, e := range b {
		if !e.Kind.IsSerial() {
			continue
		}
		if !event.IsOrphan(tr, aborted, e.HighTransaction(tr)) {
			out = append(out, e)
		}
	}
	return out
}

// WriteSequence returns write-sequence(β, X): the subsequence of
// REQUEST_COMMIT events for write accesses to the read/write object X
// (§3.1). It panics if X is not a register.
func WriteSequence(tr *tname.Tree, b event.Behavior, x tname.ObjID) event.Behavior {
	mustRegister(tr, x)
	var out event.Behavior
	for _, e := range b {
		if e.Kind == event.RequestCommit && tr.IsAccess(e.Tx) &&
			tr.AccessObject(e.Tx) == x && spec.IsWrite(tr.AccessOp(e.Tx)) {
			out = append(out, e)
		}
	}
	return out
}

func mustRegister(tr *tname.Tree, x tname.ObjID) {
	if tr.Spec(x).Name() != (spec.Register{}).Name() {
		panic(fmt.Sprintf("simple: object %s is %s, not a read/write object",
			tr.ObjectLabel(x), tr.Spec(x).Name()))
	}
}

// LastWrite returns last-write(β, X): the write access whose REQUEST_COMMIT
// is last in write-sequence(β, X), or (None, false) if there is none.
func LastWrite(tr *tname.Tree, b event.Behavior, x tname.ObjID) (tname.TxID, bool) {
	ws := WriteSequence(tr, b, x)
	if len(ws) == 0 {
		return tname.None, false
	}
	return ws[len(ws)-1].Tx, true
}

// FinalValue returns final-value(β, X): the initial value of X if no write
// access requested commit in β, and the datum of the last such write
// otherwise (§3.1).
func FinalValue(tr *tname.Tree, b event.Behavior, x tname.ObjID) spec.Value {
	if w, ok := LastWrite(tr, b, x); ok {
		return tr.AccessOp(w).Arg
	}
	return tr.Spec(x).Init().(spec.Value)
}

// CleanFinalValue returns clean-final-value(β, X) = final-value(clean(β), X).
func CleanFinalValue(tr *tname.Tree, b event.Behavior, x tname.ObjID) spec.Value {
	return FinalValue(tr, Clean(tr, b), x)
}

// CleanLastWrite returns clean-last-write(β, X) = last-write(clean(β), X).
func CleanLastWrite(tr *tname.Tree, b event.Behavior, x tname.ObjID) (tname.TxID, bool) {
	return LastWrite(tr, Clean(tr, b), x)
}

// ValueViolation describes a REQUEST_COMMIT whose return value is not the
// one the serial specification produces at that point of the committed
// projection.
type ValueViolation struct {
	// Index is the position of the offending event within visible(β, T0).
	Index int
	// Tx is the access whose return value is wrong.
	Tx tname.TxID
	// Got is the recorded value; Want is the specification's value.
	Got, Want spec.Value
}

// Error renders the violation.
func (v *ValueViolation) Error(tr *tname.Tree) string {
	return fmt.Sprintf("access %s returned %s, serial spec requires %s (visible event %d)",
		tr.Name(v.Tx), v.Got, v.Want, v.Index)
}

// AppropriateReturnValues checks the §6.1 generalization of "appropriate
// return values": for every object X, perform(operations(visible(β,T0)|X))
// must be a behavior of S_X. For read/write objects this coincides with the
// concrete §3.2 definition (Lemma 5). It returns nil if the behavior has
// appropriate return values, or the first violation per offending object.
func AppropriateReturnValues(tr *tname.Tree, b event.Behavior) []ValueViolation {
	vis := VisibleTo(tr, b, tname.Root)
	// Per-object running state, replayed in visible order.
	states := make(map[tname.ObjID]spec.State)
	var viols []ValueViolation
	bad := make(map[tname.ObjID]bool)
	for i, e := range vis {
		if e.Kind != event.RequestCommit || !tr.IsAccess(e.Tx) {
			continue
		}
		x := tr.AccessObject(e.Tx)
		if bad[x] {
			continue
		}
		sp := tr.Spec(x)
		st, ok := states[x]
		if !ok {
			st = sp.Init()
		}
		st, want := sp.Apply(st, tr.AccessOp(e.Tx))
		states[x] = st
		if want != e.Val {
			viols = append(viols, ValueViolation{Index: i, Tx: e.Tx, Got: e.Val, Want: want})
			bad[x] = true
		}
	}
	return viols
}

// CurrentSafeReport records, for one read access's REQUEST_COMMIT in
// visible(β, T0), whether it was current and safe in β (§3.3).
type CurrentSafeReport struct {
	Tx      tname.TxID
	Current bool
	Safe    bool
}

// AuditCurrentSafe evaluates the two sufficient conditions of Lemma 6 on a
// behavior whose objects are all read/write objects: every write access
// visible to T0 must return OK, and every read access visible to T0 must be
// current and safe. It returns one report per read access visible to T0
// (all-true reports included, so callers can count), plus any write access
// returning a non-OK value.
func AuditCurrentSafe(tr *tname.Tree, b event.Behavior) (reads []CurrentSafeReport, badWrites []tname.TxID) {
	serial := b.Serial()
	visT0 := NewVis(tr, serial, tname.Root)
	committedPrefix := make(map[tname.TxID]bool)

	// Walk the serial behavior maintaining the clean write chronology per
	// object. Because clean(β') depends on aborts up to each prefix β', we
	// recompute lazily: keep, per object, the full chronological list of
	// write REQUEST_COMMIT indices and scan back skipping events whose
	// hightransaction is an orphan in the prefix. Aborts only grow with the
	// prefix, so we track per-prefix orphan-ness with a running abort set.
	type writeRec struct {
		tx tname.TxID
	}
	writes := make(map[tname.ObjID][]writeRec)
	abortedSoFar := make(map[tname.TxID]bool)

	orphanAt := func(t tname.TxID) bool {
		for u := t; u != tname.None; u = tr.Parent(u) {
			if abortedSoFar[u] {
				return true
			}
		}
		return false
	}

	for _, e := range serial {
		switch e.Kind {
		default:
			// Only ABORT (orphan tracking) and access REQUEST_COMMITs
			// (read/write classification) matter to this audit.
		case event.Abort:
			abortedSoFar[e.Tx] = true
		case event.RequestCommit:
			if !tr.IsAccess(e.Tx) {
				continue
			}
			x := tr.AccessObject(e.Tx)
			op := tr.AccessOp(e.Tx)
			if spec.IsWrite(op) {
				if visT0.Visible(e.Tx) && e.Val != spec.OK {
					badWrites = append(badWrites, e.Tx)
				}
				writes[x] = append(writes[x], writeRec{tx: e.Tx})
				continue
			}
			if !spec.IsRead(op) {
				continue
			}
			if !visT0.Visible(e.Tx) {
				continue
			}
			// clean-last-write(β', X): last write whose writer is not an
			// orphan in the prefix β' before this event.
			var (
				lastWriter tname.TxID = tname.None
				haveWriter bool
			)
			ws := writes[x]
			for i := len(ws) - 1; i >= 0; i-- {
				if !orphanAt(ws[i].tx) {
					lastWriter, haveWriter = ws[i].tx, true
					break
				}
			}
			rep := CurrentSafeReport{Tx: e.Tx}
			var cur spec.Value
			if haveWriter {
				cur = tr.AccessOp(lastWriter).Arg
			} else {
				cur = tr.Spec(x).Init().(spec.Value)
			}
			rep.Current = e.Val == cur
			if !haveWriter {
				rep.Safe = true
			} else {
				// Safe: clean-last-write visible to the reader in the
				// prefix. Visibility in the prefix: every ancestor of the
				// writer outside ancestors(reader) committed by now — we
				// check against commits in the whole behavior restricted to
				// those seen so far. For exactness, track committed-so-far.
				rep.Safe = visibleInPrefix(tr, committedPrefix, lastWriter, e.Tx)
			}
			reads = append(reads, rep)
		case event.Commit:
			committedPrefix[e.Tx] = true
		}
	}
	return reads, badWrites
}

func visibleInPrefix(tr *tname.Tree, committed map[tname.TxID]bool, writer, reader tname.TxID) bool {
	lca := tr.LCA(writer, reader)
	for u := writer; u != lca; u = tr.Parent(u) {
		if !committed[u] {
			return false
		}
	}
	return true
}
