package simple

import (
	"math/rand"
	"testing"

	"nestedsg/internal/event"
	"nestedsg/internal/spec"
	"nestedsg/internal/tname"
)

// fixture builds the nested system used across these tests:
//
//	T0
//	├── t1 ── w1 (write x=5), r1 (read x)
//	├── t2 ── t21 ── w2 (write x=9)
//	└── t3 ── r3 (read x)
type fix struct {
	tr              *tname.Tree
	x               tname.ObjID
	t1, t2, t21, t3 tname.TxID
	w1, r1, w2, r3  tname.TxID
}

func newFix(t *testing.T) *fix {
	t.Helper()
	tr := tname.NewTree()
	x := tr.AddObject("x", spec.Register{})
	f := &fix{tr: tr, x: x}
	f.t1 = tr.Child(tname.Root, "t1")
	f.t2 = tr.Child(tname.Root, "t2")
	f.t21 = tr.Child(f.t2, "t21")
	f.t3 = tr.Child(tname.Root, "t3")
	f.w1 = tr.Access(f.t1, "w1", x, spec.Op{Kind: spec.OpWrite, Arg: spec.Int(5)})
	f.r1 = tr.Access(f.t1, "r1", x, spec.Op{Kind: spec.OpRead})
	f.w2 = tr.Access(f.t21, "w2", x, spec.Op{Kind: spec.OpWrite, Arg: spec.Int(9)})
	f.r3 = tr.Access(f.t3, "r3", x, spec.Op{Kind: spec.OpRead})
	return f
}

// ev shorthands.
func ev(k event.Kind, tx tname.TxID) event.Event { return event.NewEvent(k, tx) }
func evv(k event.Kind, tx tname.TxID, v spec.Value) event.Event {
	return event.NewValEvent(k, tx, v)
}

func TestVisibility(t *testing.T) {
	f := newFix(t)
	// w2 commits, t21 commits, but t2 does not: w2 is visible to t2 (and to
	// descendants of t2) but not to T0 or t1.
	b := event.Behavior{
		ev(event.Commit, f.w2),
		ev(event.Commit, f.t21),
	}
	v0 := NewVis(f.tr, b, tname.Root)
	if v0.Visible(f.w2) {
		t.Error("w2 must not be visible to T0 (t2 uncommitted)")
	}
	v2 := NewVis(f.tr, b, f.t2)
	if !v2.Visible(f.w2) {
		t.Error("w2 must be visible to t2")
	}
	// Visibility to a cousin requires commits up to the lca.
	v1 := NewVis(f.tr, b, f.t1)
	if v1.Visible(f.w2) {
		t.Error("w2 must not be visible to t1")
	}
	b = append(b, ev(event.Commit, f.t2))
	v1 = NewVis(f.tr, b, f.t1)
	if !v1.Visible(f.w2) {
		t.Error("after COMMIT(t2), w2 is visible to t1")
	}
	// Everything is visible to itself and to its descendants' perspective.
	if !NewVis(f.tr, nil, f.w2).Visible(f.w2) {
		t.Error("reflexive visibility")
	}
	// T0 is visible to everyone.
	if !v0.Visible(tname.Root) {
		t.Error("T0 visible to T0")
	}
}

func TestVisibleToFiltersEvents(t *testing.T) {
	f := newFix(t)
	b := event.Behavior{
		evv(event.RequestCommit, f.w2, spec.OK), // hightransaction w2
		ev(event.Commit, f.w2),                  // hightransaction t21
		evv(event.RequestCommit, f.w1, spec.OK),
		ev(event.Commit, f.w1),
		ev(event.Commit, f.t1),
		event.NewInform(event.InformCommit, f.w1, f.x), // not serial: dropped
	}
	vis := VisibleTo(f.tr, b, tname.Root)
	// Visible: w1's request-commit (w1,t1 committed), COMMIT(w1)
	// (hightransaction t1 committed... t1 is committed), COMMIT(t1)
	// (hightransaction T0). Not visible: w2 events (t21, t2 uncommitted).
	if len(vis) != 3 {
		t.Fatalf("visible(β,T0) = %d events:\n%s", len(vis), vis.Format(f.tr))
	}
	for _, e := range vis {
		if e.Tx == f.w2 {
			t.Error("w2 events must be filtered out")
		}
	}
}

func TestCleanDropsOrphans(t *testing.T) {
	f := newFix(t)
	b := event.Behavior{
		evv(event.RequestCommit, f.w1, spec.OK),
		evv(event.RequestCommit, f.w2, spec.OK),
		ev(event.Abort, f.t2),
	}
	c := Clean(f.tr, b)
	// w2's request-commit is orphaned by ABORT(t2); ABORT(t2) itself has
	// hightransaction T0 (not an orphan) and stays.
	if len(c) != 2 {
		t.Fatalf("clean(β) = %d events:\n%s", len(c), c.Format(f.tr))
	}
	if c[0].Tx != f.w1 || c[1].Kind != event.Abort {
		t.Errorf("clean(β) content wrong:\n%s", c.Format(f.tr))
	}
}

func TestWriteSequenceAndFinalValue(t *testing.T) {
	f := newFix(t)
	b := event.Behavior{
		evv(event.RequestCommit, f.r3, spec.Int(0)),
		evv(event.RequestCommit, f.w1, spec.OK),
		evv(event.RequestCommit, f.w2, spec.OK),
	}
	ws := WriteSequence(f.tr, b, f.x)
	if len(ws) != 2 || ws[0].Tx != f.w1 || ws[1].Tx != f.w2 {
		t.Fatalf("write-sequence wrong:\n%s", ws.Format(f.tr))
	}
	if lw, ok := LastWrite(f.tr, b, f.x); !ok || lw != f.w2 {
		t.Error("last-write must be w2")
	}
	if got := FinalValue(f.tr, b, f.x); got != spec.Int(9) {
		t.Errorf("final-value = %s", got)
	}
	if got := FinalValue(f.tr, nil, f.x); got != spec.Int(0) {
		t.Errorf("final-value of empty behavior = %s, want initial", got)
	}
	if _, ok := LastWrite(f.tr, nil, f.x); ok {
		t.Error("last-write undefined on empty behavior")
	}
}

func TestCleanFinalValue(t *testing.T) {
	f := newFix(t)
	b := event.Behavior{
		evv(event.RequestCommit, f.w1, spec.OK),
		evv(event.RequestCommit, f.w2, spec.OK),
		ev(event.Abort, f.t21),
	}
	// w2 is orphaned, so the clean final value is w1's datum.
	if got := CleanFinalValue(f.tr, b, f.x); got != spec.Int(5) {
		t.Errorf("clean-final-value = %s, want 5", got)
	}
	if lw, ok := CleanLastWrite(f.tr, b, f.x); !ok || lw != f.w1 {
		t.Error("clean-last-write must be w1")
	}
}

// committedRun returns a behavior in which w1 then r3 run and every
// involved transaction commits; readVal is what r3 returns.
func committedRun(f *fix, readVal spec.Value) event.Behavior {
	return event.Behavior{
		ev(event.Create, tname.Root),
		ev(event.RequestCreate, f.t1),
		ev(event.Create, f.t1),
		ev(event.RequestCreate, f.w1),
		ev(event.Create, f.w1),
		evv(event.RequestCommit, f.w1, spec.OK),
		ev(event.Commit, f.w1),
		evv(event.ReportCommit, f.w1, spec.OK),
		evv(event.RequestCommit, f.t1, spec.Nil),
		ev(event.Commit, f.t1),
		evv(event.ReportCommit, f.t1, spec.Nil),
		ev(event.RequestCreate, f.t3),
		ev(event.Create, f.t3),
		ev(event.RequestCreate, f.r3),
		ev(event.Create, f.r3),
		evv(event.RequestCommit, f.r3, readVal),
		ev(event.Commit, f.r3),
		evv(event.ReportCommit, f.r3, readVal),
		evv(event.RequestCommit, f.t3, spec.Nil),
		ev(event.Commit, f.t3),
		evv(event.ReportCommit, f.t3, spec.Nil),
	}
}

func TestAppropriateReturnValuesAccepts(t *testing.T) {
	f := newFix(t)
	b := committedRun(f, spec.Int(5))
	if viols := AppropriateReturnValues(f.tr, b); len(viols) != 0 {
		t.Fatalf("unexpected violations: %+v", viols)
	}
}

func TestAppropriateReturnValuesRejects(t *testing.T) {
	f := newFix(t)
	b := committedRun(f, spec.Int(42)) // r3 returns garbage
	viols := AppropriateReturnValues(f.tr, b)
	if len(viols) != 1 {
		t.Fatalf("want 1 violation, got %+v", viols)
	}
	v := viols[0]
	if v.Tx != f.r3 || v.Got != spec.Int(42) || v.Want != spec.Int(5) {
		t.Errorf("violation = %+v", v)
	}
	if v.Error(f.tr) == "" {
		t.Error("violation must render")
	}
}

func TestAppropriateReturnValuesIgnoresInvisible(t *testing.T) {
	f := newFix(t)
	// w2 writes 9 but t2/t21 never commit; a later committed read of 5 is
	// appropriate because the invisible write is excluded.
	b := committedRun(f, spec.Int(5))
	head := event.Behavior{
		ev(event.Create, tname.Root),
		ev(event.RequestCreate, f.t2),
		ev(event.Create, f.t2),
		ev(event.RequestCreate, f.t21),
		ev(event.Create, f.t21),
		ev(event.RequestCreate, f.w2),
		ev(event.Create, f.w2),
		evv(event.RequestCommit, f.w2, spec.OK),
	}
	full := append(head, b[1:]...) // drop duplicate CREATE(T0)
	if viols := AppropriateReturnValues(f.tr, full); len(viols) != 0 {
		t.Fatalf("invisible write must not count: %+v", viols)
	}
}

func TestAuditCurrentSafe(t *testing.T) {
	f := newFix(t)
	b := committedRun(f, spec.Int(5))
	reads, badWrites := AuditCurrentSafe(f.tr, b)
	if len(badWrites) != 0 {
		t.Errorf("bad writes: %v", badWrites)
	}
	if len(reads) != 1 || !reads[0].Current || !reads[0].Safe {
		t.Fatalf("reads = %+v", reads)
	}
}

func TestAuditCurrentDetectsStaleRead(t *testing.T) {
	f := newFix(t)
	b := committedRun(f, spec.Int(0)) // r3 reads the initial value: stale
	reads, _ := AuditCurrentSafe(f.tr, b)
	if len(reads) != 1 || reads[0].Current {
		t.Fatalf("stale read must not be current: %+v", reads)
	}
}

func TestAuditSafeDetectsDirtyRead(t *testing.T) {
	f := newFix(t)
	// w1 writes but t1 has NOT committed when r3 reads 5: current but not
	// safe (dirty read of uncommitted data)... then t1 commits later so r3
	// is visible to T0.
	b := event.Behavior{
		ev(event.Create, tname.Root),
		ev(event.RequestCreate, f.t1),
		ev(event.Create, f.t1),
		ev(event.RequestCreate, f.w1),
		ev(event.Create, f.w1),
		evv(event.RequestCommit, f.w1, spec.OK),
		ev(event.Commit, f.w1),
		ev(event.RequestCreate, f.t3),
		ev(event.Create, f.t3),
		ev(event.RequestCreate, f.r3),
		ev(event.Create, f.r3),
		evv(event.RequestCommit, f.r3, spec.Int(5)), // dirty: t1 uncommitted
		ev(event.Commit, f.r3),
		evv(event.ReportCommit, f.r3, spec.Int(5)),
		evv(event.RequestCommit, f.t3, spec.Nil),
		ev(event.Commit, f.t3),
		evv(event.ReportCommit, f.w1, spec.OK),
		evv(event.RequestCommit, f.t1, spec.Nil),
		ev(event.Commit, f.t1),
	}
	reads, _ := AuditCurrentSafe(f.tr, b)
	if len(reads) != 1 {
		t.Fatalf("reads = %+v", reads)
	}
	if !reads[0].Current {
		t.Error("the dirty read is still current")
	}
	if reads[0].Safe {
		t.Error("the dirty read must not be safe")
	}
}

func TestWellFormedAccepts(t *testing.T) {
	f := newFix(t)
	if err := CheckWellFormed(f.tr, committedRun(f, spec.Int(5))); err != nil {
		t.Fatal(err)
	}
}

func TestWellFormedViolations(t *testing.T) {
	f := newFix(t)
	cases := []struct {
		name string
		b    event.Behavior
	}{
		{"create without request", event.Behavior{
			ev(event.Create, tname.Root), ev(event.Create, f.t1)}},
		{"double create", event.Behavior{
			ev(event.Create, tname.Root), ev(event.RequestCreate, f.t1),
			ev(event.Create, f.t1), ev(event.Create, f.t1)}},
		{"request_create of T0", event.Behavior{ev(event.RequestCreate, tname.Root)}},
		{"double request_create", event.Behavior{
			ev(event.Create, tname.Root), ev(event.RequestCreate, f.t1), ev(event.RequestCreate, f.t1)}},
		{"request by uncreated parent", event.Behavior{
			ev(event.Create, tname.Root), ev(event.RequestCreate, f.t21)}},
		{"commit without request_commit", event.Behavior{
			ev(event.Create, tname.Root), ev(event.RequestCreate, f.t1),
			ev(event.Create, f.t1), ev(event.Commit, f.t1)}},
		{"abort without request_create", event.Behavior{
			ev(event.Create, tname.Root), ev(event.Abort, f.t1)}},
		{"double completion", event.Behavior{
			ev(event.Create, tname.Root), ev(event.RequestCreate, f.t1),
			ev(event.Abort, f.t1), ev(event.Abort, f.t1)}},
		{"commit after abort", event.Behavior{
			ev(event.Create, tname.Root), ev(event.RequestCreate, f.t1),
			ev(event.Create, f.t1), evv(event.RequestCommit, f.t1, spec.Nil),
			ev(event.Abort, f.t1), ev(event.Commit, f.t1)}},
		{"report without completion", event.Behavior{
			ev(event.Create, tname.Root), ev(event.RequestCreate, f.t1),
			evv(event.ReportCommit, f.t1, spec.Nil)}},
		{"report value mismatch", event.Behavior{
			ev(event.Create, tname.Root), ev(event.RequestCreate, f.t1),
			ev(event.Create, f.t1), evv(event.RequestCommit, f.t1, spec.Nil),
			ev(event.Commit, f.t1), evv(event.ReportCommit, f.t1, spec.Int(3))}},
		{"request_commit with open children", event.Behavior{
			ev(event.Create, tname.Root), ev(event.RequestCreate, f.t1),
			ev(event.Create, f.t1), ev(event.RequestCreate, f.w1),
			evv(event.RequestCommit, f.t1, spec.Nil)}},
		{"request_commit before create", event.Behavior{
			ev(event.Create, tname.Root), ev(event.RequestCreate, f.t1),
			evv(event.RequestCommit, f.t1, spec.Nil)}},
		{"request after parent requested commit", event.Behavior{
			ev(event.Create, tname.Root), ev(event.RequestCreate, f.t1),
			ev(event.Create, f.t1), evv(event.RequestCommit, f.t1, spec.Nil),
			ev(event.RequestCreate, f.w1)}},
	}
	for _, c := range cases {
		if err := CheckWellFormed(f.tr, c.b); err == nil {
			t.Errorf("%s: expected a well-formedness error", c.name)
		}
	}
}

func TestWellFormedIgnoresInforms(t *testing.T) {
	f := newFix(t)
	b := event.Behavior{
		ev(event.Create, tname.Root),
		event.NewInform(event.InformCommit, f.t1, f.x),
	}
	if err := CheckWellFormed(f.tr, b); err != nil {
		t.Fatal(err)
	}
}

// TestLemma4Characterization is the executable Lemma 4: perform(T, v)
// extends a register behavior exactly when T is a write with v = OK, or a
// read with v = final-value of the prefix.
func TestLemma4Characterization(t *testing.T) {
	sp := spec.Register{}
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 200; trial++ {
		// Random legal prefix.
		n := rng.Intn(6)
		var xi []spec.OpVal
		st := sp.Init()
		for i := 0; i < n; i++ {
			op := sp.RandOp(rng)
			var v spec.Value
			st, v = sp.Apply(st, op)
			xi = append(xi, spec.OpVal{Op: op, Val: v})
		}
		finalVal := st.(spec.Value)

		// A write extends with OK and nothing else.
		w := spec.Op{Kind: spec.OpWrite, Arg: spec.Int(int64(rng.Intn(8)))}
		if ok, _ := spec.IsBehavior(sp, append(append([]spec.OpVal{}, xi...), spec.OpVal{Op: w, Val: spec.OK})); !ok {
			t.Fatal("write with OK must extend")
		}
		if ok, _ := spec.IsBehavior(sp, append(append([]spec.OpVal{}, xi...), spec.OpVal{Op: w, Val: spec.Int(1)})); ok {
			t.Fatal("write with non-OK must not extend")
		}
		// A read extends exactly with the final value.
		r := spec.Op{Kind: spec.OpRead}
		if ok, _ := spec.IsBehavior(sp, append(append([]spec.OpVal{}, xi...), spec.OpVal{Op: r, Val: finalVal})); !ok {
			t.Fatal("read with final-value must extend")
		}
		wrong := spec.Int(finalVal.Int + 1)
		if ok, _ := spec.IsBehavior(sp, append(append([]spec.OpVal{}, xi...), spec.OpVal{Op: r, Val: wrong})); ok {
			t.Fatal("read with a different value must not extend")
		}
	}
}

// TestLemma3StateIsFinalValue: after any legal schedule the register state
// equals final-value of the behavior.
func TestLemma3StateIsFinalValue(t *testing.T) {
	f := newFix(t)
	b := event.Behavior{
		evv(event.RequestCommit, f.w1, spec.OK),
		evv(event.RequestCommit, f.r1, spec.Int(5)),
		evv(event.RequestCommit, f.w2, spec.OK),
	}
	// Replay through the spec and compare with FinalValue.
	sp := f.tr.Spec(f.x)
	st := sp.Init()
	for _, op := range b.Operations(f.tr) {
		st, _ = sp.Apply(st, op.OV.Op)
	}
	if got := FinalValue(f.tr, b, f.x); got != st.(spec.Value) {
		t.Fatalf("final-value %s != replayed state %s", got, st.(spec.Value))
	}
}

func TestVisCommittedAndMustRegister(t *testing.T) {
	f := newFix(t)
	b := event.Behavior{ev(event.Commit, f.t1)}
	vis := NewVis(f.tr, b, tname.Root)
	if !vis.Committed(f.t1) || vis.Committed(f.t2) {
		t.Error("Committed oracle wrong")
	}
	// write-sequence on a non-register object panics.
	c := f.tr.AddObject("cnt", spec.Counter{})
	defer func() {
		if recover() == nil {
			t.Error("WriteSequence on a counter must panic")
		}
	}()
	WriteSequence(f.tr, nil, c)
}

func TestWFErrorRendering(t *testing.T) {
	f := newFix(t)
	err := CheckWellFormed(f.tr, event.Behavior{ev(event.Create, f.t1)})
	if err == nil {
		t.Fatal("expected error")
	}
	var wf *WFError
	if !errorsAs(err, &wf) {
		t.Fatalf("error type %T", err)
	}
	if wf.Error() == "" || wf.Index != 0 {
		t.Errorf("rendered: %q index %d", wf.Error(), wf.Index)
	}
}

func errorsAs(err error, target **WFError) bool {
	w, ok := err.(*WFError)
	if ok {
		*target = w
	}
	return ok
}
