package experiments

import (
	"strings"
	"testing"
)

// TestAllExperimentsSmoke runs the entire suite at Smoke scale: every
// theorem experiment must report zero violations, every table must render.
func TestAllExperimentsSmoke(t *testing.T) {
	results := All(Smoke)
	if len(results) != 15 {
		t.Fatalf("expected 15 experiments, got %d", len(results))
	}
	seen := map[string]bool{}
	for _, r := range results {
		if seen[r.ID] {
			t.Errorf("duplicate experiment id %s", r.ID)
		}
		seen[r.ID] = true
		out := r.Table.String()
		if !strings.Contains(out, r.ID+" ") && !strings.Contains(out, r.ID+"—") && !strings.Contains(out, r.ID+" —") {
			t.Errorf("%s: table title should carry the id:\n%s", r.ID, out)
		}
		if r.Violations != 0 {
			t.Errorf("%s: %d violations; notes: %v", r.ID, r.Violations, r.Notes)
		}
	}
}

func TestScaleSeeds(t *testing.T) {
	if Smoke.seeds() >= Standard.seeds() || Standard.seeds() >= Full.seeds() {
		t.Error("scales must be ordered")
	}
}
