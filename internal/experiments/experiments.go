// Package experiments implements the reproduction suite of EXPERIMENTS.md:
// one function per experiment (E1–E15), each returning the table it
// regenerates. cmd/experiments prints them; bench_test.go wraps them in
// testing.B benchmarks.
//
// The paper (PODS 1990) is a theory paper without measured tables, so the
// experiments are derived from its theorem structure — see DESIGN.md §3.
// Each function is deterministic in its seed set except for the timing
// columns.
package experiments

import (
	"fmt"
	"time"

	"nestedsg/internal/classic"
	"nestedsg/internal/core"
	"nestedsg/internal/event"
	"nestedsg/internal/generic"
	"nestedsg/internal/harness"
	"nestedsg/internal/locking"
	"nestedsg/internal/mvto"
	"nestedsg/internal/object"
	"nestedsg/internal/oracle"
	"nestedsg/internal/replica"
	"nestedsg/internal/serial"
	"nestedsg/internal/simple"
	"nestedsg/internal/stats"
	"nestedsg/internal/tname"
	"nestedsg/internal/undolog"
	"nestedsg/internal/workload"
)

// Scale selects how much work each experiment does.
type Scale int

// Scales.
const (
	// Smoke is used by tests: a few seeds per cell.
	Smoke Scale = iota
	// Standard is the default for cmd/experiments.
	Standard
	// Full is the thorough overnight setting.
	Full
)

func (s Scale) seeds() int64 {
	switch s {
	case Smoke:
		return 3
	case Full:
		return 40
	default:
		return 12
	}
}

// Result bundles an experiment's table with pass/fail summary for the
// harness.
type Result struct {
	ID    string
	Table *stats.Table
	// Violations counts hard failures (a theorem experiment expecting zero
	// violations fails when this is non-zero).
	Violations int
	// Notes carries free-form findings.
	Notes []string
}

// E1MossSerialCorrectness sweeps workload shape and failure injection under
// Moss locking; every cell must report zero violations (Theorem 17).
func E1MossSerialCorrectness(scale Scale) *Result {
	type cell struct {
		name      string
		cfg       workload.Config
		abortProb float64
		maxAborts int
	}
	cells := []cell{
		{"flat", workload.Config{TopLevel: 6, Depth: 0, Fanout: 3, Objects: 3}, 0, 0},
		{"nested-d2", workload.Config{TopLevel: 5, Depth: 2, Fanout: 3, Objects: 3, ParProb: 0.5}, 0, 0},
		{"deep-d3", workload.Config{TopLevel: 4, Depth: 3, Fanout: 2, Objects: 3, ParProb: 0.5}, 0, 0},
		{"hot-spot", workload.Config{TopLevel: 6, Depth: 1, Fanout: 3, Objects: 4, HotProb: 0.8}, 0, 0},
		{"write-heavy", workload.Config{TopLevel: 6, Depth: 1, Fanout: 3, Objects: 3, ReadRatio: 0.1}, 0, 0},
		{"read-heavy", workload.Config{TopLevel: 6, Depth: 1, Fanout: 3, Objects: 3, ReadRatio: 0.9}, 0, 0},
		{"failures", workload.Config{TopLevel: 6, Depth: 2, Fanout: 3, Objects: 3, ParProb: 0.6, RetryProb: 0.5}, 0.03, 6},
		{"conditional", workload.Config{TopLevel: 5, Depth: 2, Fanout: 3, Objects: 3, CondProb: 0.6, ParProb: 0.5}, 0.02, 4},
	}
	res := &Result{ID: "E1", Table: stats.NewTable(
		"E1 — Theorem 17: Moss read/write locking is serially correct for T0",
		"workload", "runs", "events/run", "accesses/run", "aborts/run", "victims/run", "violations")}
	for _, c := range cells {
		var events, accesses, aborts, victims []float64
		violations := 0
		for seed := int64(0); seed < scale.seeds(); seed++ {
			cfg := c.cfg
			cfg.Seed = seed
			v, err := harness.RunAndCheck(harness.Options{
				Workload: cfg,
				Generic: generic.Options{Seed: seed * 101, Protocol: locking.Protocol{},
					AbortProb: c.abortProb, MaxAborts: c.maxAborts},
				ValidateWitness: true,
			})
			if err != nil {
				res.Notes = append(res.Notes, fmt.Sprintf("%s seed %d: %v", c.name, seed, err))
				violations++
				continue
			}
			if !v.SeriallyCorrect() {
				violations++
				res.Notes = append(res.Notes, fmt.Sprintf("%s seed %d: %s", c.name, seed, v.Describe()))
			}
			events = append(events, float64(v.Stats.Events))
			accesses = append(accesses, float64(v.Stats.Accesses))
			aborts = append(aborts, float64(v.Stats.Aborts))
			victims = append(victims, float64(v.Stats.DeadlockVictims))
		}
		res.Violations += violations
		res.Table.AddRow(c.name, scale.seeds(), stats.Mean(events), stats.Mean(accesses),
			stats.Mean(aborts), stats.Mean(victims), violations)
	}
	return res
}

// E2UndoLogSerialCorrectness does the Theorem 25 sweep per data type.
func E2UndoLogSerialCorrectness(scale Scale) *Result {
	res := &Result{ID: "E2", Table: stats.NewTable(
		"E2 — Theorem 25: undo logging is serially correct for T0, per data type",
		"type", "runs", "events/run", "accesses/run", "blocked-polls/run", "violations")}
	for _, spn := range []string{"register", "counter", "account", "set", "appendlog", "queue", "mixed"} {
		var events, accesses, blocked []float64
		violations := 0
		for seed := int64(0); seed < scale.seeds(); seed++ {
			cfg := workload.Config{Seed: seed, TopLevel: 5, Depth: 2, Fanout: 3, Objects: 3,
				SpecName: spn, ParProb: 0.5, HotProb: 0.4}
			v, err := harness.RunAndCheck(harness.Options{
				Workload: cfg,
				Generic: generic.Options{Seed: seed*211 + 7, Protocol: undolog.Protocol{},
					AbortProb: 0.02, MaxAborts: 4},
				ValidateWitness: true,
			})
			if err != nil {
				violations++
				res.Notes = append(res.Notes, fmt.Sprintf("%s seed %d: %v", spn, seed, err))
				continue
			}
			if !v.SeriallyCorrect() {
				violations++
				res.Notes = append(res.Notes, fmt.Sprintf("%s seed %d: %s", spn, seed, v.Describe()))
			}
			events = append(events, float64(v.Stats.Events))
			accesses = append(accesses, float64(v.Stats.Accesses))
			blocked = append(blocked, float64(v.Stats.Blocked))
		}
		res.Violations += violations
		res.Table.AddRow(spn, scale.seeds(), stats.Mean(events), stats.Mean(accesses),
			stats.Mean(blocked), violations)
	}
	return res
}

// E3NegativeControls runs the broken protocols and reports how often the
// checker flags them and through which detector. The experiment fails if a
// broken protocol is never flagged, or if a flagged-clean run cannot be
// witnessed (checker unsoundness).
func E3NegativeControls(scale Scale) *Result {
	res := &Result{ID: "E3", Table: stats.NewTable(
		"E3 — negative controls: detection of deliberately broken protocols",
		"protocol", "runs", "flagged", "value-violations", "cycles", "passed+witnessed", "unsound")}
	type ctl struct {
		proto     object.Protocol
		specName  string
		abortProb float64
		maxAborts int
	}
	controls := []ctl{
		{locking.BrokenProtocol{Mode: locking.IgnoreReadLocks}, "register", 0, 0},
		{locking.BrokenProtocol{Mode: locking.NoInheritance}, "register", 0, 0},
		// The recovery bugs only surface when an abort lands on a write
		// that a later committed access observes, so their cells inject
		// aborts aggressively over a single hot, write-heavy object.
		{locking.BrokenProtocol{Mode: locking.KeepAbortState}, "register", 0.15, 30},
		{undolog.BrokenProtocol{Mode: undolog.NoUndo}, "register", 0.15, 30},
		{undolog.BrokenProtocol{Mode: undolog.SkipCommute}, "register", 0, 0},
	}
	runs := scale.seeds() * 3
	for _, c := range controls {
		flagged, valueViol, cycles, passed, unsound := 0, 0, 0, 0, 0
		for seed := int64(0); seed < runs; seed++ {
			cfg := workload.Config{Seed: seed, TopLevel: 6, Depth: 1, Fanout: 3,
				Objects: 1, HotProb: 1, ParProb: 0.8, ReadRatio: 0.35, SpecName: c.specName}
			v, err := harness.RunAndCheck(harness.Options{
				Workload: cfg,
				Generic: generic.Options{Seed: seed * 977, Protocol: c.proto,
					AbortProb: c.abortProb, MaxAborts: c.maxAborts},
				ValidateWitness: true,
			})
			if err != nil {
				res.Notes = append(res.Notes, fmt.Sprintf("%s seed %d: %v", c.proto.Name(), seed, err))
				continue
			}
			switch {
			case v.Check.OK:
				passed++
				if v.WitnessErr != nil {
					unsound++
				}
			case len(v.Check.ValueViolations) > 0:
				flagged++
				valueViol++
			case v.Check.Cycle != nil:
				flagged++
				cycles++
			default:
				flagged++
			}
		}
		if flagged == 0 {
			res.Violations++
			res.Notes = append(res.Notes, c.proto.Name()+": never flagged")
		}
		res.Violations += unsound
		res.Table.AddRow(c.proto.Name(), runs, flagged, valueViol, cycles, passed, unsound)
	}
	return res
}

// E4CommutativityConcurrency compares Moss read/update locking against undo
// logging on a hot commuting-update workload (the §6 motivation): as
// contention grows, locking serializes updaters while the undo log admits
// them concurrently.
func E4CommutativityConcurrency(scale Scale) *Result {
	res := &Result{ID: "E4", Table: stats.NewTable(
		"E4 — type-specific concurrency on a hot counter (Moss vs undo log)",
		"workload", "top-level txs", "protocol", "blocked-polls/run", "victims/run", "steps/access", "wall µs/access")}
	type mix struct {
		name       string
		updateOnly bool
	}
	for _, m := range []mix{{"updates-only", true}, {"with-observers", false}} {
		for _, topLevel := range []int{2, 4, 8, 16} {
			for _, proto := range []object.Protocol{locking.Protocol{}, undolog.Protocol{}} {
				var blocked, victims, stepsPerAccess, usPerAccess []float64
				for seed := int64(0); seed < scale.seeds(); seed++ {
					tr := tname.NewTree()
					cfg := workload.Config{Seed: seed, TopLevel: topLevel, Depth: 0, Fanout: 4,
						Objects: 1, HotProb: 1, SpecName: "counter", UpdateOnly: m.updateOnly}
					root := workload.Build(tr, cfg)
					start := time.Now()
					_, st, err := generic.Run(tr, root, generic.Options{Seed: seed * 17, Protocol: proto})
					if err != nil {
						res.Notes = append(res.Notes, fmt.Sprintf("E4 %s/%d seed %d: %v", proto.Name(), topLevel, seed, err))
						res.Violations++
						continue
					}
					el := time.Since(start)
					blocked = append(blocked, float64(st.Blocked))
					victims = append(victims, float64(st.DeadlockVictims))
					if st.Accesses > 0 {
						stepsPerAccess = append(stepsPerAccess, float64(st.Steps)/float64(st.Accesses))
						usPerAccess = append(usPerAccess, float64(el.Microseconds())/float64(st.Accesses))
					}
				}
				res.Table.AddRow(m.name, topLevel, proto.Name(), stats.Mean(blocked), stats.Mean(victims),
					stats.Mean(stepsPerAccess), stats.Mean(usPerAccess))
			}
		}
	}
	return res
}

// E5SGConstruction measures serialization-graph build plus acyclicity cost
// against trace length.
func E5SGConstruction(scale Scale) *Result {
	res := &Result{ID: "E5", Table: stats.NewTable(
		"E5 — SG(β) construction cost vs history length (full vs reduced ablation)",
		"top-level txs", "trace events", "visible ops", "edges full", "µs full", "edges reduced", "µs reduced")}
	sizes := []int{4, 8, 16, 32}
	if scale == Full {
		sizes = append(sizes, 64, 128)
	}
	for _, topLevel := range sizes {
		tr := tname.NewTree()
		cfg := workload.Config{Seed: 42, TopLevel: topLevel, Depth: 1, Fanout: 3,
			Objects: 4, HotProb: 0.3, ParProb: 0.5}
		root := workload.Build(tr, cfg)
		b, _, err := generic.Run(tr, root, generic.Options{Seed: 99, Protocol: locking.Protocol{}})
		if err != nil {
			res.Violations++
			res.Notes = append(res.Notes, fmt.Sprintf("E5 %d: %v", topLevel, err))
			continue
		}
		const reps = 5
		measure := func(build func(*tname.Tree, event.Behavior) *core.SG) (*core.SG, int64) {
			start := time.Now()
			var sg *core.SG
			for i := 0; i < reps; i++ {
				sg = build(tr, b)
				if _, cyc := sg.Acyclicity(); cyc != nil {
					res.Violations++
				}
			}
			return sg, (time.Since(start) / reps).Microseconds()
		}
		full, usFull := measure(core.Build)
		red, usRed := measure(core.BuildReduced)
		res.Table.AddRow(topLevel, len(b), len(full.VisibleOps),
			full.NumEdges(), usFull, red.NumEdges(), usRed)
	}
	return res
}

// E6ClassicalEquivalence checks the subsumption of the classical theory on
// flat histories: conflict edges of SG(β, T0) equal the classical SGT
// edges, and both verdicts agree.
func E6ClassicalEquivalence(scale Scale) *Result {
	res := &Result{ID: "E6", Table: stats.NewTable(
		"E6 — classical SGT equivalence on flat histories",
		"protocol", "runs", "edges compared", "mismatches", "non-serializable")}
	for _, proto := range []object.Protocol{locking.Protocol{}, undolog.Protocol{}} {
		edges, mismatches, nonSer := 0, 0, 0
		runs := scale.seeds() * 2
		for seed := int64(0); seed < runs; seed++ {
			tr := tname.NewTree()
			cfg := workload.Config{Seed: seed, TopLevel: 6, Depth: 0, Fanout: 3,
				Objects: 2, HotProb: 0.5}
			root := workload.Build(tr, cfg)
			b, _, err := generic.Run(tr, root, generic.Options{Seed: seed * 31, Protocol: proto})
			if err != nil {
				res.Violations++
				continue
			}
			sgt, err := classic.BuildSGT(tr, b)
			if err != nil {
				res.Violations++
				continue
			}
			edges += len(sgt.Edges)
			if msg := sgt.CompareWithNested(tr, core.Build(tr, b)); msg != "" {
				mismatches++
				res.Notes = append(res.Notes, msg)
			}
			if !sgt.Serializable() {
				nonSer++
			}
		}
		res.Violations += mismatches + nonSer
		res.Table.AddRow(proto.Name(), runs, edges, mismatches, nonSer)
	}
	return res
}

// E7CurrentSafe audits the Lemma 6 conditions on Moss traces: every read
// visible to T0 must be current and safe, matching the appropriate-return-
// values audit.
func E7CurrentSafe(scale Scale) *Result {
	res := &Result{ID: "E7", Table: stats.NewTable(
		"E7 — Lemma 6: current+safe audit of Moss traces",
		"workload", "runs", "reads audited", "current", "safe", "violations")}
	cells := []workload.Config{
		{TopLevel: 6, Depth: 1, Fanout: 3, Objects: 3, ReadRatio: 0.7},
		{TopLevel: 5, Depth: 2, Fanout: 3, Objects: 2, HotProb: 0.6, ParProb: 0.6},
	}
	for ci, base := range cells {
		reads, current, safe, violations := 0, 0, 0, 0
		for seed := int64(0); seed < scale.seeds(); seed++ {
			cfg := base
			cfg.Seed = seed
			tr := tname.NewTree()
			root := workload.Build(tr, cfg)
			b, _, err := generic.Run(tr, root, generic.Options{Seed: seed * 53, Protocol: locking.Protocol{},
				AbortProb: 0.02, MaxAborts: 4})
			if err != nil {
				res.Violations++
				continue
			}
			rep, badWrites := simple.AuditCurrentSafe(tr, b)
			violations += len(badWrites)
			for _, r := range rep {
				reads++
				if r.Current {
					current++
				}
				if r.Safe {
					safe++
				}
				if !r.Current || !r.Safe {
					violations++
				}
			}
		}
		res.Violations += violations
		res.Table.AddRow(fmt.Sprintf("cell-%d", ci), scale.seeds(), reads, current, safe, violations)
	}
	return res
}

// E8ProtocolOverhead compares end-to-end run cost: serial scheduler (no
// concurrency), Moss locking and undo logging on identical workloads.
func E8ProtocolOverhead(scale Scale) *Result {
	res := &Result{ID: "E8", Table: stats.NewTable(
		"E8 — protocol overhead on identical workloads",
		"protocol", "runs", "events/run", "wall µs/run", "µs/access")}
	base := workload.Config{TopLevel: 8, Depth: 1, Fanout: 3, Objects: 4, ParProb: 0.5}
	type row struct {
		name string
		run  func(seed int64) (int, int, error) // events, accesses
	}
	rows := []row{
		{"serial", func(seed int64) (int, int, error) {
			tr := tname.NewTree()
			cfg := base
			cfg.Seed = seed
			root := workload.Build(tr, cfg)
			b, err := serial.Run(tr, root, serial.Options{Seed: seed})
			acc := 0
			for _, op := range b.Operations(tr) {
				_ = op
				acc++
			}
			return len(b), acc, err
		}},
		{"moss", func(seed int64) (int, int, error) {
			tr := tname.NewTree()
			cfg := base
			cfg.Seed = seed
			root := workload.Build(tr, cfg)
			b, st, err := generic.Run(tr, root, generic.Options{Seed: seed, Protocol: locking.Protocol{}})
			return len(b), st.Accesses, err
		}},
		{"undolog", func(seed int64) (int, int, error) {
			tr := tname.NewTree()
			cfg := base
			cfg.Seed = seed
			root := workload.Build(tr, cfg)
			b, st, err := generic.Run(tr, root, generic.Options{Seed: seed, Protocol: undolog.Protocol{}})
			return len(b), st.Accesses, err
		}},
	}
	for _, r := range rows {
		var events, us, usAcc []float64
		for seed := int64(0); seed < scale.seeds(); seed++ {
			start := time.Now()
			ev, acc, err := r.run(seed)
			el := time.Since(start)
			if err != nil {
				res.Violations++
				continue
			}
			events = append(events, float64(ev))
			us = append(us, float64(el.Microseconds()))
			if acc > 0 {
				usAcc = append(usAcc, float64(el.Microseconds())/float64(acc))
			}
		}
		res.Table.AddRow(r.name, scale.seeds(), stats.Mean(events), stats.Mean(us), stats.Mean(usAcc))
	}
	return res
}

// E9DeadlockFailure sweeps contention and failure injection under Moss and
// reports deadlock frequency and abort costs; correctness must hold in
// every cell.
func E9DeadlockFailure(scale Scale) *Result {
	res := &Result{ID: "E9", Table: stats.NewTable(
		"E9 — deadlocks and failure injection under Moss locking (policy ablation)",
		"hot-prob", "abort-prob", "policy", "runs", "victims/run", "aborts/run", "steps/run", "commit-rate", "violations")}
	for _, hot := range []float64{0.2, 0.6, 1.0} {
		for _, ap := range []float64{0, 0.03} {
			for _, eager := range []bool{false, true} {
				var victims, aborts, steps, commitRate []float64
				violations := 0
				for seed := int64(0); seed < scale.seeds(); seed++ {
					cfg := workload.Config{Seed: seed, TopLevel: 8, Depth: 1, Fanout: 3,
						Objects: 2, HotProb: hot, ParProb: 0.8, ReadRatio: 0.4}
					maxAborts := 0
					if ap > 0 {
						maxAborts = 8
					}
					v, err := harness.RunAndCheck(harness.Options{
						Workload: cfg,
						Generic: generic.Options{Seed: seed * 7919, Protocol: locking.Protocol{},
							AbortProb: ap, MaxAborts: maxAborts, EagerDeadlock: eager},
						ValidateWitness: true,
					})
					if err != nil {
						violations++
						continue
					}
					if !v.SeriallyCorrect() {
						violations++
						res.Notes = append(res.Notes, v.Describe())
					}
					victims = append(victims, float64(v.Stats.DeadlockVictims))
					aborts = append(aborts, float64(v.Stats.Aborts))
					steps = append(steps, float64(v.Stats.Steps))
					if tot := v.Stats.Commits + v.Stats.Aborts; tot > 0 {
						commitRate = append(commitRate, float64(v.Stats.Commits)/float64(tot))
					}
				}
				policy := "quiescence"
				if eager {
					policy = "eager"
				}
				res.Violations += violations
				res.Table.AddRow(hot, ap, policy, scale.seeds(), stats.Mean(victims), stats.Mean(aborts),
					stats.Mean(steps), stats.Mean(commitRate), violations)
			}
		}
	}
	return res
}

// E10WitnessReplay measures the cost of materializing the serial witness γ
// and verifying γ|T0 = β|T0.
func E10WitnessReplay(scale Scale) *Result {
	res := &Result{ID: "E10", Table: stats.NewTable(
		"E10 — serial witness construction cost",
		"top-level txs", "β events", "γ events", "check µs", "witness µs")}
	sizes := []int{4, 8, 16, 32}
	if scale == Full {
		sizes = append(sizes, 64)
	}
	for _, topLevel := range sizes {
		tr := tname.NewTree()
		cfg := workload.Config{Seed: 4242, TopLevel: topLevel, Depth: 1, Fanout: 3,
			Objects: 4, ParProb: 0.5}
		root := workload.Build(tr, cfg)
		b, _, err := generic.Run(tr, root, generic.Options{Seed: 5, Protocol: locking.Protocol{}})
		if err != nil {
			res.Violations++
			continue
		}
		start := time.Now()
		chk := core.Check(tr, b)
		checkDur := time.Since(start)
		if !chk.OK {
			res.Violations++
			res.Notes = append(res.Notes, chk.Summary(tr))
			continue
		}
		start = time.Now()
		gamma, err := serial.Witness(tr, root, b, chk.Certificate.Order)
		witnessDur := time.Since(start)
		if err != nil {
			res.Violations++
			res.Notes = append(res.Notes, err.Error())
			continue
		}
		res.Table.AddRow(topLevel, len(b), len(gamma), checkDur.Microseconds(), witnessDur.Microseconds())
	}
	return res
}

// E11Conservatism quantifies the incompleteness the paper concedes in §1
// ("the acyclicity of the graphs we construct is merely a sufficient
// condition"): on traces produced by a broken protocol, how many
// SG-flagged behaviors does the exhaustive oracle still certify via some
// suitable sibling order? Soundness is asserted in both directions where
// the theory requires it: checker-OK traces must always be oracle-Found.
func E11Conservatism(scale Scale) *Result {
	res := &Result{ID: "E11", Table: stats.NewTable(
		"E11 — conservatism of SG acyclicity vs exhaustive order search",
		"trace source", "runs", "checker-ok", "flagged", "flagged-but-order-exists", "no-order", "budget-exceeded")}
	type src struct {
		name  string
		proto object.Protocol
	}
	sources := []src{
		{"moss (correct)", locking.Protocol{}},
		{"undolog-broken-commute", undolog.BrokenProtocol{Mode: undolog.SkipCommute}},
		{"moss-broken-readlocks", locking.BrokenProtocol{Mode: locking.IgnoreReadLocks}},
	}
	runs := scale.seeds() * 2
	for _, s := range sources {
		ok, flagged, conservative, noOrder, exhausted := 0, 0, 0, 0, 0
		for seed := int64(0); seed < runs; seed++ {
			tr := tname.NewTree()
			cfg := workload.Config{Seed: seed, TopLevel: 4, Depth: 1, Fanout: 2,
				Objects: 1, HotProb: 1, ParProb: 0.9, ReadRatio: 0.5}
			root := workload.Build(tr, cfg)
			b, _, err := generic.Run(tr, root, generic.Options{Seed: seed * 41, Protocol: s.proto})
			if err != nil {
				res.Violations++
				continue
			}
			chk := core.Check(tr, b)
			or := oracle.Search(tr, b, 200000)
			if chk.OK {
				ok++
				if or.Outcome != oracle.Found {
					res.Violations++
					res.Notes = append(res.Notes,
						fmt.Sprintf("%s seed %d: checker OK but oracle %s", s.name, seed, or.Outcome))
				}
				continue
			}
			flagged++
			switch or.Outcome {
			case oracle.Found:
				conservative++
			case oracle.NoOrder:
				noOrder++
			default:
				exhausted++
			}
		}
		res.Table.AddRow(s.name, runs, ok, flagged, conservative, noOrder, exhausted)
	}
	return res
}

// E12OrphanActivity compares the default controller (orphans frozen on
// abort) with the paper's full nondeterminism (orphans keep running).
// Orphan operations are invisible to T0, so correctness must hold in both
// modes; the table shows the extra work orphans burn.
func E12OrphanActivity(scale Scale) *Result {
	res := &Result{ID: "E12", Table: stats.NewTable(
		"E12 — orphan activity (frozen vs running orphans, with failure injection)",
		"protocol", "orphans", "runs", "events/run", "accesses/run", "orphan-accesses/run", "violations")}
	for _, proto := range []object.Protocol{locking.Protocol{}, undolog.Protocol{}} {
		for _, allow := range []bool{false, true} {
			var events, accesses, orphanAcc []float64
			violations := 0
			for seed := int64(0); seed < scale.seeds(); seed++ {
				cfg := workload.Config{Seed: seed, TopLevel: 5, Depth: 2, Fanout: 3,
					Objects: 2, HotProb: 0.6, ParProb: 0.7}
				v, err := harness.RunAndCheck(harness.Options{
					Workload: cfg,
					Generic: generic.Options{Seed: seed*577 + 3, Protocol: proto,
						AbortProb: 0.04, MaxAborts: 6, AllowOrphans: allow},
					ValidateWitness: true,
				})
				if err != nil {
					violations++
					res.Notes = append(res.Notes, fmt.Sprintf("orphans=%v seed %d: %v", allow, seed, err))
					continue
				}
				if !v.SeriallyCorrect() {
					violations++
					res.Notes = append(res.Notes, fmt.Sprintf("orphans=%v seed %d: %s", allow, seed, v.Describe()))
				}
				events = append(events, float64(v.Stats.Events))
				accesses = append(accesses, float64(v.Stats.Accesses))
				orphanAcc = append(orphanAcc, float64(countOrphanAccesses(v)))
			}
			res.Violations += violations
			mode := "frozen"
			if allow {
				mode = "running"
			}
			res.Table.AddRow(proto.Name(), mode, scale.seeds(), stats.Mean(events),
				stats.Mean(accesses), stats.Mean(orphanAcc), violations)
		}
	}
	return res
}

// countOrphanAccesses counts access REQUEST_COMMITs that happen after an
// ancestor's ABORT.
func countOrphanAccesses(v *harness.Verdict) int {
	abortedAt := map[tname.TxID]int{}
	for i, e := range v.Trace {
		if e.Kind == event.Abort {
			abortedAt[e.Tx] = i
		}
	}
	n := 0
	for i, e := range v.Trace {
		if e.Kind != event.RequestCommit || !v.Tree.IsAccess(e.Tx) {
			continue
		}
		for anc, pos := range abortedAt {
			if i > pos && v.Tree.IsDescendant(e.Tx, anc) {
				n++
				break
			}
		}
	}
	return n
}

// E13MultiversionGap runs the Reed-style multiversion timestamp protocol
// (internal/mvto) and measures the §7 gap: the event-order serialization
// graph flags most of its runs, yet every one is serially correct for T0 —
// certified by the exhaustive Theorem-2 oracle and replayed into a serial
// witness under the oracle's order. A run the oracle cannot certify counts
// as a violation.
func E13MultiversionGap(scale Scale) *Result {
	res := &Result{ID: "E13", Table: stats.NewTable(
		"E13 — multiversion timestamps vs the event-order SG construction (§7 gap)",
		"workload", "runs", "sg-flagged", "oracle-certified", "witnessed", "restarts/run", "violations")}
	cells := []struct {
		name string
		cfg  workload.Config
	}{
		{"low-contention", workload.Config{TopLevel: 4, Depth: 1, Fanout: 2, Objects: 3, ReadRatio: 0.6, ParProb: 0.9}},
		{"hot-reads", workload.Config{TopLevel: 4, Depth: 1, Fanout: 2, Objects: 1, HotProb: 1, ReadRatio: 0.7, ParProb: 0.9}},
		{"hot-writes", workload.Config{TopLevel: 5, Depth: 0, Fanout: 3, Objects: 1, HotProb: 1, ReadRatio: 0.3}},
	}
	for _, c := range cells {
		flagged, certified, witnessed, violations := 0, 0, 0, 0
		var restarts []float64
		for seed := int64(0); seed < scale.seeds(); seed++ {
			tr := tname.NewTree()
			cfg := c.cfg
			cfg.Seed = seed
			root := workload.Build(tr, cfg)
			b, st, err := generic.Run(tr, root, generic.Options{Seed: seed*13 + 5, Protocol: mvto.NewProtocol(tr)})
			if err != nil {
				violations++
				res.Notes = append(res.Notes, fmt.Sprintf("%s seed %d: %v", c.name, seed, err))
				continue
			}
			restarts = append(restarts, float64(st.ProtocolAborts))
			if chk := core.Check(tr, b); !chk.OK {
				flagged++
			}
			or := oracle.Search(tr, b, 500000)
			if or.Outcome != oracle.Found {
				violations++
				res.Notes = append(res.Notes, fmt.Sprintf("%s seed %d: oracle %s", c.name, seed, or.Outcome))
				continue
			}
			certified++
			gamma, err := serial.Witness(tr, root, b, or.Order)
			if err != nil {
				violations++
				res.Notes = append(res.Notes, fmt.Sprintf("%s seed %d: witness: %v", c.name, seed, err))
				continue
			}
			if serial.Validate(tr, gamma) == nil {
				witnessed++
			} else {
				violations++
			}
		}
		res.Violations += violations
		res.Table.AddRow(c.name, scale.seeds(), flagged, certified, witnessed,
			stats.Mean(restarts), violations)
	}
	return res
}

// E14ReplicatedData runs the quorum-replicated register objects (the
// paper's [6] lineage) across quorum geometries and availability levels:
// correctness must hold everywhere, with the per-step quorum-intersection
// audit enabled; the table reports the price of unavailability.
func E14ReplicatedData(scale Scale) *Result {
	res := &Result{ID: "E14", Table: stats.NewTable(
		"E14 — quorum-replicated registers under Moss locking ([6] lineage)",
		"config", "unavail-p", "runs", "events/run", "quorum-failures/run", "installs/run", "violations")}
	type geom struct{ n, r, w int }
	for _, g := range []geom{{1, 1, 1}, {3, 2, 2}, {5, 3, 3}, {5, 2, 4}} {
		for _, p := range []float64{0, 0.3} {
			if g.n == 1 && p > 0 {
				continue // a single unavailable copy only adds retries
			}
			var events, qfails, installs []float64
			violations := 0
			for seed := int64(0); seed < scale.seeds(); seed++ {
				cfgR := replica.Config{Copies: g.n, ReadQuorum: g.r, WriteQuorum: g.w,
					UnavailableProb: p, Seed: seed * 131}
				var objs []*replica.Replicated
				proto := capturingReplicaProtocol{cfg: cfgR, out: &objs}
				v, err := harness.RunAndCheck(harness.Options{
					Workload: workload.Config{Seed: seed, TopLevel: 5, Depth: 1, Fanout: 3,
						Objects: 2, HotProb: 0.6, ParProb: 0.7},
					Generic: generic.Options{Seed: seed*17 + 3, Protocol: proto,
						AbortProb: 0.02, MaxAborts: 4, AuditObjects: true},
					ValidateWitness: true,
				})
				if err != nil {
					violations++
					res.Notes = append(res.Notes, fmt.Sprintf("replica p=%.1f seed %d: %v", p, seed, err))
					continue
				}
				if !v.SeriallyCorrect() {
					violations++
					res.Notes = append(res.Notes, fmt.Sprintf("replica p=%.1f seed %d: %s", p, seed, v.Describe()))
				}
				events = append(events, float64(v.Stats.Events))
				var qf, ins float64
				for _, o := range objs {
					qf += float64(o.QuorumFailures)
					ins += float64(o.Installs)
				}
				qfails = append(qfails, qf)
				installs = append(installs, ins)
			}
			res.Violations += violations
			res.Table.AddRow(fmt.Sprintf("n%d/r%d/w%d", g.n, g.r, g.w), p, scale.seeds(),
				stats.Mean(events), stats.Mean(qfails), stats.Mean(installs), violations)
		}
	}
	return res
}

// capturingReplicaProtocol records the objects it creates.
type capturingReplicaProtocol struct {
	cfg replica.Config
	out *[]*replica.Replicated
}

func (p capturingReplicaProtocol) Name() string { return "replica-capture" }

func (p capturingReplicaProtocol) New(tr *tname.Tree, x tname.ObjID) object.Generic {
	o := replica.New(tr, x, p.cfg)
	*p.out = append(*p.out, o)
	return o
}

// E15StreamingParallel measures the incremental (streaming) checker and the
// parallel batch construction on a contended multi-object workload. The
// streaming replay must agree with the offline SG verdict on every trace —
// clean Moss rows never reject, broken-protocol rows reject at a strict
// prefix (the table reports the mean rejection point as a fraction of the
// trace) — and the parallel construction must produce the same graph while
// the timing columns record its wall-clock cost per worker count.
func E15StreamingParallel(scale Scale) *Result {
	res := &Result{ID: "E15", Table: stats.NewTable(
		"E15 — streaming check cost per event and parallel SG construction vs workers",
		"workload", "runs", "events/run", "ns/event stream", "reject frac",
		"µs w=1", "µs w=2", "µs w=4", "µs w=8", "violations")}
	topLevel := 16
	switch scale {
	case Standard:
		topLevel = 32
	case Full:
		topLevel = 64
	}
	mossTrace := func(seed int64, proto object.Protocol) (*tname.Tree, event.Behavior, error) {
		tr := tname.NewTree()
		root := workload.Build(tr, workload.Config{Seed: seed, TopLevel: topLevel, Depth: 2,
			Fanout: 3, Objects: 8, HotProb: 0.3, ParProb: 0.7})
		b, _, err := generic.Run(tr, root, generic.Options{Seed: seed*19 + 7, Protocol: proto})
		return tr, b, err
	}
	// The serial scheduler commits every access, so its traces maximize
	// visible operations per event: the quadratic per-object scan dominates
	// and the parallel timing columns measure the phase that actually fans
	// out. Lock-protocol traces under contention abort most transactions and
	// leave the scan with little to do.
	denseTrace := func(seed int64) (*tname.Tree, event.Behavior, error) {
		tr := tname.NewTree()
		root := workload.Build(tr, workload.Config{Seed: seed, TopLevel: topLevel * 4, Depth: 1,
			Fanout: 4, Objects: 8, ParProb: 0.5})
		b, err := serial.Run(tr, root, serial.Options{Seed: seed*19 + 7})
		return tr, b, err
	}
	cells := []struct {
		name  string
		gen   func(int64) (*tname.Tree, event.Behavior, error)
		clean bool
	}{
		{"moss contended", func(s int64) (*tname.Tree, event.Behavior, error) {
			return mossTrace(s, locking.Protocol{})
		}, true},
		{"moss-broken-readlocks", func(s int64) (*tname.Tree, event.Behavior, error) {
			return mossTrace(s, locking.BrokenProtocol{Mode: locking.IgnoreReadLocks})
		}, false},
		{"serial dense (scan-bound)", denseTrace, true},
	}
	const reps = 3
	for _, c := range cells {
		var events, nsPerEvent, rejectFrac []float64
		us := make(map[int][]float64)
		violations := 0
		for seed := int64(0); seed < scale.seeds(); seed++ {
			tr, b, err := c.gen(seed)
			if err != nil {
				violations++
				res.Notes = append(res.Notes, fmt.Sprintf("%s seed %d: %v", c.name, seed, err))
				continue
			}
			events = append(events, float64(len(b)))

			start := time.Now()
			var at int
			for i := 0; i < reps; i++ {
				at, _ = core.StreamPrefix(tr, b)
			}
			nsPerEvent = append(nsPerEvent, float64((time.Since(start)/reps).Nanoseconds())/float64(len(b)))

			sg := core.Build(tr, b)
			_, cyc := sg.Acyclicity()
			if (at >= 0) != (cyc != nil) {
				violations++
				res.Notes = append(res.Notes, fmt.Sprintf("%s seed %d: stream at=%d but offline cyclic=%v",
					c.name, seed, at, cyc != nil))
			}
			if c.clean && at >= 0 {
				violations++
				res.Notes = append(res.Notes, fmt.Sprintf("%s seed %d: clean run rejected at %d", c.name, seed, at))
			}
			if at >= 0 {
				rejectFrac = append(rejectFrac, float64(at+1)/float64(len(b)))
			}

			for _, w := range []int{1, 2, 4, 8} {
				start := time.Now()
				var got *core.SG
				for i := 0; i < reps; i++ {
					got = core.BuildParallel(tr, b, w)
				}
				us[w] = append(us[w], float64((time.Since(start)/reps).Microseconds()))
				if got.NumEdges() != sg.NumEdges() {
					violations++
					res.Notes = append(res.Notes, fmt.Sprintf("%s seed %d: w=%d edges %d != %d",
						c.name, seed, w, got.NumEdges(), sg.NumEdges()))
				}
			}
		}
		res.Violations += violations
		res.Table.AddRow(c.name, scale.seeds(), stats.Mean(events), stats.Mean(nsPerEvent),
			stats.Mean(rejectFrac), stats.Mean(us[1]), stats.Mean(us[2]), stats.Mean(us[4]),
			stats.Mean(us[8]), violations)
	}
	return res
}

// All runs every experiment at the given scale, in order.
func All(scale Scale) []*Result {
	return []*Result{
		E1MossSerialCorrectness(scale),
		E2UndoLogSerialCorrectness(scale),
		E3NegativeControls(scale),
		E4CommutativityConcurrency(scale),
		E5SGConstruction(scale),
		E6ClassicalEquivalence(scale),
		E7CurrentSafe(scale),
		E8ProtocolOverhead(scale),
		E9DeadlockFailure(scale),
		E10WitnessReplay(scale),
		E11Conservatism(scale),
		E12OrphanActivity(scale),
		E13MultiversionGap(scale),
		E14ReplicatedData(scale),
		E15StreamingParallel(scale),
	}
}
