// Package serial implements the paper's serial systems (§2.2): serial
// object automata, the serial scheduler that runs sibling transactions one
// at a time and aborts only transactions that were never created, and —
// the executable content of Theorem 8/19 — the construction of an explicit
// serial witness behavior γ with γ|T0 = β|T0 from a checker certificate.
package serial

import (
	"fmt"
	"math/rand"

	"nestedsg/internal/event"
	"nestedsg/internal/program"
	"nestedsg/internal/spec"
	"nestedsg/internal/tname"
)

// Objects tracks the serial object automata S_X: one deterministic state
// per object, advanced by perform(T, v) pairs.
type Objects struct {
	tr     *tname.Tree
	states map[tname.ObjID]spec.State
}

// NewObjects initializes every object of the tree to its initial state.
func NewObjects(tr *tname.Tree) *Objects {
	return &Objects{tr: tr, states: make(map[tname.ObjID]spec.State)}
}

// Perform executes one access against S_X and returns the value of its
// REQUEST_COMMIT.
func (o *Objects) Perform(x tname.ObjID, op spec.Op) spec.Value {
	sp := o.tr.Spec(x)
	st, ok := o.states[x]
	if !ok {
		st = sp.Init()
	}
	st, v := sp.Apply(st, op)
	o.states[x] = st
	return v
}

// Options configures the plain serial runner.
type Options struct {
	// Seed drives the scheduler's only nondeterministic choice: aborting a
	// requested-but-not-created transaction.
	Seed int64
	// AbortProb is the probability that a requested child is aborted
	// instead of created. Zero runs everything to commit.
	AbortProb float64
	// MaxAborts bounds the total number of scheduler-chosen aborts (so
	// retry loops in programs terminate); ignored if zero.
	MaxAborts int
}

// Runner executes a program tree under the serial scheduler.
type Runner struct {
	tr      *tname.Tree
	objects *Objects
	rng     *rand.Rand
	opts    Options
	aborts  int
	trace   event.Behavior
}

// Run executes root — the program of T0, whose children are the top-level
// transactions — under the serial scheduler and returns the recorded serial
// behavior. Programs are executed depth-first; each requested child either
// runs to commitment with no overlapping siblings or is aborted without
// being created.
func Run(tr *tname.Tree, root *program.Node, opts Options) (event.Behavior, error) {
	if err := program.Validate(root); err != nil {
		return nil, err
	}
	r := &Runner{
		tr:      tr,
		objects: NewObjects(tr),
		rng:     rand.New(rand.NewSource(opts.Seed)),
		opts:    opts,
	}
	r.emit(event.NewEvent(event.Create, tname.Root))
	if _, err := r.runComposite(tname.Root, root); err != nil {
		return nil, err
	}
	return r.trace, nil
}

func (r *Runner) emit(e event.Event) { r.trace = append(r.trace, e) }

func (r *Runner) chooseAbort() bool {
	if r.opts.AbortProb <= 0 {
		return false
	}
	if r.opts.MaxAborts > 0 && r.aborts >= r.opts.MaxAborts {
		return false
	}
	if r.rng.Float64() < r.opts.AbortProb {
		r.aborts++
		return true
	}
	return false
}

// runComposite drives the program of tx after CREATE(tx) until it is ready
// to request commit; for T0 it stops there (T0 never commits). It returns
// the REQUEST_COMMIT value.
func (r *Runner) runComposite(tx tname.TxID, node *program.Node) (spec.Value, error) {
	exec := program.NewExec(node)
	pending := exec.Start()
	for len(pending) > 0 {
		child := pending[0]
		pending = pending[1:]
		childTx, err := r.internChild(tx, child)
		if err != nil {
			return spec.Nil, err
		}
		r.emit(event.NewEvent(event.RequestCreate, childTx))
		idx := exec.RequestIndex(child.Label)

		var oc program.Outcome
		if r.chooseAbort() {
			r.emit(event.NewEvent(event.Abort, childTx))
			r.emit(event.NewEvent(event.ReportAbort, childTx))
			oc = program.Outcome{Committed: false}
		} else {
			v, err := r.runChild(childTx, child)
			if err != nil {
				return spec.Nil, err
			}
			r.emit(event.NewEvent(event.Commit, childTx))
			r.emit(event.NewValEvent(event.ReportCommit, childTx, v))
			oc = program.Outcome{Committed: true, Val: v}
		}
		pending = append(pending, exec.OnReport(idx, oc)...)
	}
	if !exec.Ready() {
		return spec.Nil, fmt.Errorf("serial: program of %s not ready after all children completed", r.tr.Name(tx))
	}
	v := exec.Value()
	if tx != tname.Root {
		r.emit(event.NewValEvent(event.RequestCommit, tx, v))
	}
	return v, nil
}

// runChild creates and fully executes one child transaction.
func (r *Runner) runChild(childTx tname.TxID, child *program.Node) (spec.Value, error) {
	r.emit(event.NewEvent(event.Create, childTx))
	if child.IsAccess {
		v := r.objects.Perform(child.Obj, child.Op)
		r.emit(event.NewValEvent(event.RequestCommit, childTx, v))
		return v, nil
	}
	return r.runComposite(childTx, child)
}

func (r *Runner) internChild(parent tname.TxID, n *program.Node) (tname.TxID, error) {
	if n.Label == "" {
		return tname.None, fmt.Errorf("serial: child of %s has empty label", r.tr.Name(parent))
	}
	if n.IsAccess {
		return r.tr.Access(parent, n.Label, n.Obj, n.Op), nil
	}
	return r.tr.Child(parent, n.Label), nil
}
