package serial

import (
	"fmt"

	"nestedsg/internal/event"
	"nestedsg/internal/simple"
	"nestedsg/internal/tname"
)

// Validate checks that γ is a behavior the serial system could produce
// (§2.2.3–2.2.4), independently of how it was constructed:
//
//  1. it satisfies the simple-system axioms;
//  2. no aborted transaction was ever created (the serial scheduler aborts
//     only requested-but-not-created transactions);
//  3. no two sibling transactions are concurrently active: the set of
//     live transactions always forms a single ancestor chain;
//  4. every access returns exactly the value the serial object automaton
//     S_X produces when the accesses are applied in γ order.
//
// It is used by the test suite to certify witnesses produced by Witness and
// behaviors produced by Run.
func Validate(tr *tname.Tree, g event.Behavior) error {
	if err := simple.CheckWellFormed(tr, g); err != nil {
		return err
	}

	created := make(map[tname.TxID]bool)
	completed := make(map[tname.TxID]bool)
	// Chain of currently active (created, not completed) transactions,
	// innermost last.
	var active []tname.TxID
	objects := NewObjects(tr)

	for i, e := range g {
		switch e.Kind {
		case event.Create:
			created[e.Tx] = true
			if e.Tx == tname.Root {
				if len(active) != 0 {
					return fmt.Errorf("serial: event %d: CREATE(T0) with active transactions", i)
				}
				active = append(active, e.Tx)
				continue
			}
			if len(active) == 0 || active[len(active)-1] != tr.Parent(e.Tx) {
				return fmt.Errorf("serial: event %d: CREATE(%s) while parent is not the innermost active transaction",
					i, tr.Name(e.Tx))
			}
			active = append(active, e.Tx)

		case event.Abort:
			if created[e.Tx] {
				return fmt.Errorf("serial: event %d: ABORT(%s) after it was created", i, tr.Name(e.Tx))
			}
			completed[e.Tx] = true

		case event.Commit:
			completed[e.Tx] = true

		case event.RequestCommit:
			if tr.IsAccess(e.Tx) {
				want := objects.Perform(tr.AccessObject(e.Tx), tr.AccessOp(e.Tx))
				if want != e.Val {
					return fmt.Errorf("serial: event %d: access %s returned %s, S_X requires %s",
						i, tr.Name(e.Tx), e.Val, want)
				}
			}
			// A transaction that has requested commit is no longer active:
			// pop it (it must be innermost).
			if len(active) == 0 || active[len(active)-1] != e.Tx {
				return fmt.Errorf("serial: event %d: REQUEST_COMMIT(%s) while it is not the innermost active transaction",
					i, tr.Name(e.Tx))
			}
			active = active[:len(active)-1]

		default:
			// REQUEST_CREATE and the reports carry no obligations a serial
			// behavior could violate beyond well-formedness, which
			// CheckWellFormed established above; informs never appear in a
			// serial witness.
		}
	}
	return nil
}
