package serial

import (
	"strings"
	"testing"

	"nestedsg/internal/core"
	"nestedsg/internal/event"
	"nestedsg/internal/generic"
	"nestedsg/internal/locking"
	"nestedsg/internal/program"
	"nestedsg/internal/spec"
	"nestedsg/internal/tname"
	"nestedsg/internal/undolog"
	"nestedsg/internal/workload"
)

// runAndCertify produces a concurrent Moss trace and its certificate.
func runAndCertify(t *testing.T, tr *tname.Tree, root *program.Node, seed int64, opts generic.Options) (event.Behavior, *core.SiblingOrder) {
	t.Helper()
	opts.Seed = seed
	if opts.Protocol == nil {
		opts.Protocol = locking.Protocol{}
	}
	b, _, err := generic.Run(tr, root, opts)
	if err != nil {
		t.Fatal(err)
	}
	res := core.Check(tr, b)
	if !res.OK {
		t.Fatalf("check failed: %s", res.Summary(tr))
	}
	return b, res.Certificate.Order
}

func TestWitnessProjectionEquality(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		tr := tname.NewTree()
		root := workload.Build(tr, workload.Config{Seed: seed, TopLevel: 5, Depth: 2,
			Fanout: 3, Objects: 3, ParProb: 0.7, HotProb: 0.5})
		b, order := runAndCertify(t, tr, root, seed*3+1, generic.Options{})
		gamma, err := Witness(tr, root, b, order)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := Validate(tr, gamma); err != nil {
			t.Fatalf("seed %d: witness not serial: %v", seed, err)
		}
		g0 := gamma.ProjectTx(tr, tname.Root)
		b0 := b.Serial().ProjectTx(tr, tname.Root)
		if !g0.Equal(b0) {
			t.Fatalf("seed %d: γ|T0 ≠ β|T0", seed)
		}
	}
}

// TestWitnessWithRetriesAndConditionals stresses the dynamic-program paths:
// OnOutcome children (retries after aborts, value-dependent accesses) must
// replay identically.
func TestWitnessWithRetriesAndConditionals(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		tr := tname.NewTree()
		root := workload.Build(tr, workload.Config{Seed: seed, TopLevel: 4, Depth: 2,
			Fanout: 3, Objects: 2, ParProb: 0.5, RetryProb: 0.8, CondProb: 0.8, HotProb: 0.5})
		b, order := runAndCertify(t, tr, root, seed*7+3,
			generic.Options{AbortProb: 0.04, MaxAborts: 6})
		gamma, err := Witness(tr, root, b, order)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := Validate(tr, gamma); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// TestWitnessAbortedNeverCreated: in γ, transactions aborted in β must be
// aborted without CREATE and without any descendant activity.
func TestWitnessAbortedNeverCreated(t *testing.T) {
	tr := tname.NewTree()
	root := workload.Build(tr, workload.Config{Seed: 5, TopLevel: 5, Depth: 1,
		Fanout: 3, Objects: 2, HotProb: 0.8, ParProb: 0.8})
	b, order := runAndCertify(t, tr, root, 77, generic.Options{AbortProb: 0.05, MaxAborts: 5})
	gamma, err := Witness(tr, root, b, order)
	if err != nil {
		t.Fatal(err)
	}
	abortedInGamma := gamma.AbortSet()
	if len(abortedInGamma) == 0 {
		t.Skip("no aborts occurred for this seed")
	}
	for _, e := range gamma {
		if e.Kind == event.Create {
			for u := e.Tx; u != tname.None; u = tr.Parent(u) {
				if abortedInGamma[u] {
					t.Fatalf("γ creates %s under aborted %s", tr.Name(e.Tx), tr.Name(u))
				}
			}
		}
	}
}

// TestWitnessValuesAreSerial: every access value in γ must re-derive from
// the serial objects in γ order (this is what Validate checks; here we
// additionally compare γ's operation multiset with the certificate views).
func TestWitnessValuesMatchViews(t *testing.T) {
	tr := tname.NewTree()
	root := workload.Build(tr, workload.Config{Seed: 8, TopLevel: 5, Depth: 1,
		Fanout: 3, Objects: 2, HotProb: 0.7})
	b, _, err := generic.Run(tr, root, generic.Options{Seed: 21, Protocol: locking.Protocol{}})
	if err != nil {
		t.Fatal(err)
	}
	res := core.Check(tr, b)
	if !res.OK {
		t.Fatal(res.Summary(tr))
	}
	gamma, err := Witness(tr, root, b, res.Certificate.Order)
	if err != nil {
		t.Fatal(err)
	}
	// γ's per-object operation sequences must equal the certificate views.
	gops := gamma.Operations(tr)
	byObj := map[tname.ObjID][]event.AccessOp{}
	for _, op := range gops {
		byObj[op.Obj] = append(byObj[op.Obj], op)
	}
	for _, view := range res.Certificate.Views {
		got := byObj[view.Obj]
		if len(got) != len(view.Ops) {
			t.Fatalf("object %s: γ has %d ops, view has %d", tr.ObjectLabel(view.Obj), len(got), len(view.Ops))
		}
		for i := range got {
			if got[i].Tx != view.Ops[i].Tx || got[i].OV != view.Ops[i].OV {
				t.Fatalf("object %s: op %d differs: γ %v view %v",
					tr.ObjectLabel(view.Obj), i, got[i], view.Ops[i])
			}
		}
	}
}

// TestWitnessDetectsTamperedValues: corrupting a committed read's value in
// β (and in the report) past the checker is not possible — but corrupting
// the *certificate order* so views no longer match must make the witness
// fail rather than silently produce a wrong γ.
func TestWitnessDetectsTamperedOrder(t *testing.T) {
	tr := tname.NewTree()
	x := tr.AddObject("x", spec.Register{})
	// Order-sensitive pair: t1 writes, t2 only reads — swapping them makes
	// the reader observe the initial value instead of the write.
	root := &program.Node{Label: "T0", Mode: program.Par, Children: []*program.Node{
		program.SeqNode("t1", program.Access("w", x, spec.Op{Kind: spec.OpWrite, Arg: spec.Int(1)})),
		program.SeqNode("t2", program.Access("r", x, spec.Op{Kind: spec.OpRead})),
	}}
	b, _, err := generic.Run(tr, root, generic.Options{Seed: 3, Protocol: locking.Protocol{}})
	if err != nil {
		t.Fatal(err)
	}
	res := core.Check(tr, b)
	if !res.OK {
		t.Fatal(res.Summary(tr))
	}
	order := res.Certificate.Order
	t1 := tr.Child(tname.Root, "t1")
	t2 := tr.Child(tname.Root, "t2")
	// There must be a conflict edge between the two; forge the reverse
	// order.
	first, second := t1, t2
	if order.CompareSiblings(t2, t1) {
		first, second = t2, t1
	}
	forged := core.ForgeOrderForTest(tr, map[tname.TxID][]tname.TxID{
		tname.Root: {second, first},
	})
	if _, err := Witness(tr, root, b, forged); err == nil {
		t.Fatal("witness must reject a forged sibling order")
	} else if !strings.Contains(err.Error(), "mismatch") && !strings.Contains(err.Error(), "not executed") {
		t.Logf("rejection reason: %v", err)
	}
}

// TestWitnessMissingProgramFails: a trace whose top-level transaction has
// no corresponding program child must be rejected.
func TestWitnessMissingProgramFails(t *testing.T) {
	tr := tname.NewTree()
	x := tr.AddObject("x", spec.Register{})
	root := &program.Node{Label: "T0", Mode: program.Par, Children: []*program.Node{
		program.SeqNode("t1", program.Access("w", x, spec.Op{Kind: spec.OpWrite, Arg: spec.Int(1)})),
	}}
	b, _, err := generic.Run(tr, root, generic.Options{Seed: 1, Protocol: locking.Protocol{}})
	if err != nil {
		t.Fatal(err)
	}
	res := core.Check(tr, b)
	if !res.OK {
		t.Fatal(res.Summary(tr))
	}
	// Replay against a DIFFERENT root missing "t1".
	otherRoot := &program.Node{Label: "T0", Mode: program.Par, Children: []*program.Node{
		program.SeqNode("zz", program.Access("w", x, spec.Op{Kind: spec.OpWrite, Arg: spec.Int(1)})),
	}}
	if _, err := Witness(tr, otherRoot, b, res.Certificate.Order); err == nil {
		t.Fatal("witness must fail when the program lacks the transaction")
	}
}

// TestWitnessUnreportedCommittedChildren: a trace that ends after COMMIT
// but before REPORT_COMMIT of a top-level transaction still witnesses (the
// scheduler may delay reports indefinitely), and the unreported child's
// effects are in γ.
func TestWitnessUnreportedCommittedChildren(t *testing.T) {
	tr := tname.NewTree()
	x := tr.AddObject("x", spec.Register{})
	t1 := tr.Child(tname.Root, "t1")
	w := tr.Access(t1, "w", x, spec.Op{Kind: spec.OpWrite, Arg: spec.Int(5)})
	b := event.Behavior{
		event.NewEvent(event.Create, tname.Root),
		event.NewEvent(event.RequestCreate, t1),
		event.NewEvent(event.Create, t1),
		event.NewEvent(event.RequestCreate, w),
		event.NewEvent(event.Create, w),
		event.NewValEvent(event.RequestCommit, w, spec.OK),
		event.NewEvent(event.Commit, w),
		event.NewValEvent(event.ReportCommit, w, spec.OK),
		event.NewValEvent(event.RequestCommit, t1, spec.Nil),
		event.NewEvent(event.Commit, t1),
		// No REPORT_COMMIT(t1): the trace ends here.
	}
	res := core.Check(tr, b)
	if !res.OK {
		t.Fatal(res.Summary(tr))
	}
	root := &program.Node{Label: "T0", Mode: program.Par, Children: []*program.Node{
		program.SeqNode("t1", program.Access("w", x, spec.Op{Kind: spec.OpWrite, Arg: spec.Int(5)})),
	}}
	gamma, err := Witness(tr, root, b, res.Certificate.Order)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(tr, gamma); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, e := range gamma {
		if e.Kind == event.RequestCommit && e.Tx == w {
			found = true
		}
	}
	if !found {
		t.Fatal("γ must include the unreported committed child's execution")
	}
}

// TestWitnessLiveChildrenOmitted: children requested but never completed
// in β appear in γ only as REQUEST_CREATE events.
func TestWitnessLiveChildrenOmitted(t *testing.T) {
	tr := tname.NewTree()
	x := tr.AddObject("x", spec.Register{})
	t1 := tr.Child(tname.Root, "t1")
	b := event.Behavior{
		event.NewEvent(event.Create, tname.Root),
		event.NewEvent(event.RequestCreate, t1),
		event.NewEvent(event.Create, t1),
		// t1 is live at trace end.
	}
	res := core.Check(tr, b)
	if !res.OK {
		t.Fatal(res.Summary(tr))
	}
	root := &program.Node{Label: "T0", Mode: program.Par, Children: []*program.Node{
		program.SeqNode("t1", program.Access("w", x, spec.Op{Kind: spec.OpWrite, Arg: spec.Int(5)})),
	}}
	gamma, err := Witness(tr, root, b, res.Certificate.Order)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range gamma {
		if e.Tx == t1 && e.Kind != event.RequestCreate {
			t.Fatalf("live child contributed %v to γ", e.Format(tr))
		}
	}
}

// TestWitnessManySeedsUndolog mirrors the main property under the other
// protocol and mixed types, where values matter more (accounts, sets).
func TestWitnessManySeedsUndolog(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		tr := tname.NewTree()
		root := workload.Build(tr, workload.Config{Seed: seed, TopLevel: 4, Depth: 2,
			Fanout: 3, Objects: 6, SpecName: "mixed", ParProb: 0.6, CondProb: 0.4})
		b, order := runAndCertify(t, tr, root, seed+100, generic.Options{
			Protocol: undolog.Protocol{}, AbortProb: 0.02, MaxAborts: 4})
		gamma, err := Witness(tr, root, b, order)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := Validate(tr, gamma); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}
