package serial

import (
	"fmt"
	"sort"

	"nestedsg/internal/core"
	"nestedsg/internal/event"
	"nestedsg/internal/program"
	"nestedsg/internal/spec"
	"nestedsg/internal/tname"
)

// Witness materializes the conclusion of Theorem 8/19: given a behavior β
// that passed the checker (certificate with sibling order R), it constructs
// an explicit serial behavior γ with γ|T0 = β|T0 — the definition of
// "serially correct for T0" (§2.2.5) — by re-running the transaction
// programs under the serial scheduler with siblings ordered by R.
//
// The construction follows the proof: committed subtrees execute serially,
// children of each parent in R order; transactions that aborted in β are
// aborted by the serial scheduler before being created; report events to T0
// are emitted at exactly their positions in β|T0 (the scheduler may delay
// reports arbitrarily, which is what makes this possible — and the precedes
// edges of SG(β) are exactly the constraint that keeps the greedy placement
// feasible).
//
// Witness re-derives every access value from the serial objects S_X and
// every transaction value from the program logic, comparing them against β;
// a mismatch means the certificate does not actually support the behavior
// and is reported as an error. A successful call is therefore an
// end-to-end, per-trace validation of the theorem.
//
// The top-level transactions (children of T0 in root) must be statically
// declared: T0's own request order is taken verbatim from β|T0, so
// dynamically generated top-level children cannot be resolved to programs.
// Deeper levels may use OnOutcome freely.
func Witness(tr *tname.Tree, root *program.Node, b event.Behavior, order *core.SiblingOrder) (event.Behavior, error) {
	serialB := b.Serial()
	w := &witness{
		tr:       tr,
		root:     root,
		order:    order,
		objects:  NewObjects(tr),
		fate:     make(map[tname.TxID]fate),
		values:   make(map[tname.TxID]spec.Value),
		reqSeen:  make(map[tname.TxID]bool),
		programs: make(map[tname.TxID]*program.Node),
	}
	for _, e := range serialB {
		switch e.Kind {
		case event.RequestCreate:
			w.reqSeen[e.Tx] = true
		case event.Commit:
			w.fate[e.Tx] = committed
		case event.Abort:
			w.fate[e.Tx] = abortedFate
		case event.RequestCommit:
			w.values[e.Tx] = e.Val
		default:
			// CREATE and the reports add nothing the fate/value maps need.
		}
	}
	if err := w.replayRoot(serialB.ProjectTx(tr, tname.Root)); err != nil {
		return nil, err
	}
	// The construction guarantees γ|T0 = β|T0; verify it anyway.
	gamma0 := event.Behavior(w.gamma).ProjectTx(tr, tname.Root)
	beta0 := serialB.ProjectTx(tr, tname.Root)
	if !gamma0.Equal(beta0) {
		return nil, fmt.Errorf("serial: witness projection mismatch: γ|T0 has %d events, β|T0 has %d", len(gamma0), len(beta0))
	}
	return w.gamma, nil
}

type fate uint8

const (
	incomplete fate = iota
	committed
	abortedFate
)

type witness struct {
	tr       *tname.Tree
	root     *program.Node
	order    *core.SiblingOrder
	objects  *Objects
	fate     map[tname.TxID]fate
	values   map[tname.TxID]spec.Value
	reqSeen  map[tname.TxID]bool
	programs map[tname.TxID]*program.Node
	gamma    event.Behavior
}

func (w *witness) emit(e event.Event) { w.gamma = append(w.gamma, e) }

// replayRoot walks β|T0, emitting T0's events verbatim and scheduling the
// execution blocks of committed children greedily in R order.
func (w *witness) replayRoot(beta0 event.Behavior) error {
	// Map labels of T0's program children lazily: programs for requested
	// children are resolved when their REQUEST_CREATE is replayed. T0's own
	// logic is not re-run — β|T0 already fixes its request order, and any
	// deterministic automaton consistent with it exists (it is the same
	// program that produced β).
	byLabel := make(map[string]*program.Node)
	collectLabels(w.root, byLabel)

	var (
		requested []tname.TxID // committed children requested, not yet executed
		executed  = make(map[tname.TxID]bool)
	)

	execUpTo := func(limit tname.TxID, inclusive bool) error {
		// Execute all requested, unexecuted committed children ordered
		// before limit (or equal when inclusive), in R order.
		sort.Slice(requested, func(i, j int) bool {
			return w.order.CompareSiblings(requested[i], requested[j])
		})
		for _, c := range requested {
			if executed[c] {
				continue
			}
			if c != limit && !w.order.CompareSiblings(c, limit) {
				continue
			}
			if c == limit && !inclusive {
				continue
			}
			if err := w.execCommitted(c); err != nil {
				return err
			}
			w.emit(event.NewEvent(event.Commit, c))
			executed[c] = true
		}
		return nil
	}

	for _, e := range beta0 {
		switch e.Kind {
		case event.Create:
			// CREATE(T0).
			w.emit(e)
		case event.RequestCreate:
			w.emit(e)
			if w.fate[e.Tx] == committed {
				if _, ok := byLabel[w.tr.Label(e.Tx)]; !ok {
					return fmt.Errorf("serial: no program for top-level transaction %s", w.tr.Name(e.Tx))
				}
				w.programs[e.Tx] = byLabel[w.tr.Label(e.Tx)]
				requested = append(requested, e.Tx)
			}
		case event.ReportCommit:
			if err := execUpTo(e.Tx, true); err != nil {
				return err
			}
			if !executed[e.Tx] {
				return fmt.Errorf("serial: committed child %s not executed before its report", w.tr.Name(e.Tx))
			}
			got := w.values[e.Tx]
			if got != e.Val {
				return fmt.Errorf("serial: report value mismatch for %s", w.tr.Name(e.Tx))
			}
			w.emit(e)
		case event.ReportAbort:
			w.emit(event.NewEvent(event.Abort, e.Tx))
			w.emit(e)
		default:
			return fmt.Errorf("serial: unexpected event kind %v in β|T0", e.Kind)
		}
	}
	// Committed children whose report never made it into β still executed
	// (their effects are visible to T0); the scheduler simply has not
	// reported them yet.
	sort.Slice(requested, func(i, j int) bool {
		return w.order.CompareSiblings(requested[i], requested[j])
	})
	for _, c := range requested {
		if !executed[c] {
			if err := w.execCommitted(c); err != nil {
				return err
			}
			w.emit(event.NewEvent(event.Commit, c))
			executed[c] = true
		}
	}
	return nil
}

// execCommitted runs the execution block of a committed transaction:
// CREATE, the serial execution of its program with children in R order, and
// its REQUEST_COMMIT. The COMMIT/REPORT events are the caller's business
// (their placement differs between T0's children and interior children).
// It verifies the resulting value against β.
func (w *witness) execCommitted(tx tname.TxID) error {
	node := w.programs[tx]
	if node == nil {
		return fmt.Errorf("serial: no program recorded for %s", w.tr.Name(tx))
	}
	w.emit(event.NewEvent(event.Create, tx))

	var v spec.Value
	if node.IsAccess {
		v = w.objects.Perform(node.Obj, node.Op)
	} else {
		var err error
		v, err = w.execComposite(tx, node)
		if err != nil {
			return err
		}
	}
	want, ok := w.values[tx]
	if !ok {
		return fmt.Errorf("serial: %s committed in β without a REQUEST_COMMIT value", w.tr.Name(tx))
	}
	if v != want {
		return fmt.Errorf("serial: witness value mismatch for %s: serial execution yields %s, β recorded %s",
			w.tr.Name(tx), v, want)
	}
	w.emit(event.NewValEvent(event.RequestCommit, tx, v))
	return nil
}

// execComposite drives the program logic of committed transaction tx,
// executing its children serially in R order and forcing the abort
// decisions recorded in β.
func (w *witness) execComposite(tx tname.TxID, node *program.Node) (spec.Value, error) {
	exec := program.NewExec(node)
	unfinished := make(map[tname.TxID]*program.Node)

	admit := func(batch []*program.Node) error {
		for _, c := range batch {
			childTx, err := w.intern(tx, c)
			if err != nil {
				return err
			}
			if !w.reqSeen[childTx] {
				return fmt.Errorf("serial: replay of %s requested %s, which never occurred in β",
					w.tr.Name(tx), w.tr.Name(childTx))
			}
			w.emit(event.NewEvent(event.RequestCreate, childTx))
			unfinished[childTx] = c
		}
		return nil
	}
	if err := admit(exec.Start()); err != nil {
		return spec.Nil, err
	}

	for len(unfinished) > 0 {
		// Pick the minimal unfinished child in the total sibling order;
		// the precedes edges of SG(β) guarantee that any child requested
		// later is ordered after some currently unfinished one, so the
		// greedy choice is safe (see package comment).
		var next tname.TxID = tname.None
		for c := range unfinished {
			if next == tname.None || w.order.CompareSiblings(c, next) {
				next = c
			}
		}
		childNode := unfinished[next]
		delete(unfinished, next)

		var oc program.Outcome
		switch w.fate[next] {
		case committed:
			w.programs[next] = childNode
			if err := w.execCommitted(next); err != nil {
				return spec.Nil, err
			}
			w.emit(event.NewEvent(event.Commit, next))
			w.emit(event.NewValEvent(event.ReportCommit, next, w.values[next]))
			oc = program.Outcome{Committed: true, Val: w.values[next]}
		case abortedFate:
			w.emit(event.NewEvent(event.Abort, next))
			w.emit(event.NewEvent(event.ReportAbort, next))
			oc = program.Outcome{Committed: false}
		default:
			// A child of a committed parent must have completed in β
			// (well-formedness: the parent requested commit only after all
			// children reported).
			return spec.Nil, fmt.Errorf("serial: child %s of committed %s has no completion in β",
				w.tr.Name(next), w.tr.Name(tx))
		}
		idx := exec.RequestIndex(childNode.Label)
		if err := admit(exec.OnReport(idx, oc)); err != nil {
			return spec.Nil, err
		}
	}
	if !exec.Ready() {
		return spec.Nil, fmt.Errorf("serial: program of %s not ready after replay", w.tr.Name(tx))
	}
	return exec.Value(), nil
}

func (w *witness) intern(parent tname.TxID, n *program.Node) (tname.TxID, error) {
	if n.IsAccess {
		return w.tr.Access(parent, n.Label, n.Obj, n.Op), nil
	}
	return w.tr.Child(parent, n.Label), nil
}

// collectLabels indexes the static children of the root program by label.
func collectLabels(root *program.Node, out map[string]*program.Node) {
	for _, c := range root.Children {
		out[c.Label] = c
	}
}
