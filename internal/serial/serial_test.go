package serial

import (
	"testing"

	"nestedsg/internal/core"
	"nestedsg/internal/event"
	"nestedsg/internal/program"
	"nestedsg/internal/simple"
	"nestedsg/internal/spec"
	"nestedsg/internal/tname"
)

// bankRoot builds a small deterministic program:
//
//	T0 ── xfer (Seq): w (write x=10), r (read x), t (Par): a,b (counter incs)
func bankRoot(tr *tname.Tree) *program.Node {
	x := tr.AddObject("x", spec.Register{})
	c := tr.AddObject("c", spec.Counter{})
	xfer := program.SeqNode("xfer",
		program.Access("w", x, spec.Op{Kind: spec.OpWrite, Arg: spec.Int(10)}),
		program.Access("r", x, spec.Op{Kind: spec.OpRead}),
		program.ParNode("t",
			program.Access("a", c, spec.Op{Kind: spec.OpIncrement, Arg: spec.Int(1)}),
			program.Access("b", c, spec.Op{Kind: spec.OpIncrement, Arg: spec.Int(2)}),
		),
	)
	xfer.Result = func(ocs []program.Outcome) spec.Value {
		var sum int64
		for _, oc := range ocs {
			if oc.Committed && oc.Val.Kind == spec.VInt {
				sum += oc.Val.Int
			}
		}
		return spec.Int(sum)
	}
	root := &program.Node{Label: "T0", Mode: program.Par, Children: []*program.Node{xfer}}
	return root
}

func TestRunProducesSerialBehavior(t *testing.T) {
	tr := tname.NewTree()
	root := bankRoot(tr)
	b, err := Run(tr, root, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(tr, b); err != nil {
		t.Fatalf("serial runner output invalid: %v\n%s", err, b.Format(tr))
	}
	if err := simple.CheckWellFormed(tr, b); err != nil {
		t.Fatal(err)
	}
	// The read must see the just-written 10.
	for _, e := range b {
		if e.Kind == event.RequestCommit && tr.IsAccess(e.Tx) && tr.Label(e.Tx) == "r" {
			if e.Val != spec.Int(10) {
				t.Errorf("serial read = %s, want 10", e.Val)
			}
		}
	}
	// The composite's REQUEST_COMMIT value: read 10 (int).
	for _, e := range b {
		if e.Kind == event.RequestCommit && tr.Label(e.Tx) == "xfer" {
			if e.Val != spec.Int(10) {
				t.Errorf("xfer value = %s, want 10", e.Val)
			}
		}
	}
}

func TestRunIsDeterministic(t *testing.T) {
	tr1 := tname.NewTree()
	b1, err := Run(tr1, bankRoot(tr1), Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	tr2 := tname.NewTree()
	b2, err := Run(tr2, bankRoot(tr2), Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !b1.Equal(b2) {
		t.Fatal("equal seeds must give equal serial behaviors")
	}
}

func TestRunWithAborts(t *testing.T) {
	tr := tname.NewTree()
	root := bankRoot(tr)
	b, err := Run(tr, root, Options{Seed: 3, AbortProb: 0.5, MaxAborts: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(tr, b); err != nil {
		t.Fatalf("invalid: %v\n%s", err, b.Format(tr))
	}
	// Aborted transactions must never have CREATE events.
	created := make(map[tname.TxID]bool)
	for _, e := range b {
		if e.Kind == event.Create {
			created[e.Tx] = true
		}
	}
	for tx := range b.AbortSet() {
		if created[tx] {
			t.Errorf("aborted %s was created", tr.Name(tx))
		}
	}
}

func TestRunSerialBehaviorPassesChecker(t *testing.T) {
	// A serial behavior trivially satisfies the checker (Theorem 8's
	// hypotheses hold: values are appropriate by construction and the
	// depth-first order leaves no cycles).
	tr := tname.NewTree()
	root := bankRoot(tr)
	b, err := Run(tr, root, Options{Seed: 7, AbortProb: 0.3, MaxAborts: 1})
	if err != nil {
		t.Fatal(err)
	}
	res := core.Check(tr, b)
	if !res.OK {
		t.Fatalf("checker rejected a serial behavior: %s", res.Summary(tr))
	}
}

func TestValidateRejections(t *testing.T) {
	tr := tname.NewTree()
	x := tr.AddObject("x", spec.Register{})
	t1 := tr.Child(tname.Root, "t1")
	t2 := tr.Child(tname.Root, "t2")
	w1 := tr.Access(t1, "w1", x, spec.Op{Kind: spec.OpWrite, Arg: spec.Int(5)})

	ev := event.NewEvent
	evv := event.NewValEvent

	t.Run("abort after create", func(t *testing.T) {
		b := event.Behavior{
			ev(event.Create, tname.Root),
			ev(event.RequestCreate, t1),
			ev(event.Create, t1),
			ev(event.Abort, t1),
		}
		if err := Validate(tr, b); err == nil {
			t.Fatal("serial scheduler never aborts created transactions")
		}
	})
	t.Run("concurrent siblings", func(t *testing.T) {
		b := event.Behavior{
			ev(event.Create, tname.Root),
			ev(event.RequestCreate, t1),
			ev(event.RequestCreate, t2),
			ev(event.Create, t1),
			ev(event.Create, t2), // t1 still active
		}
		if err := Validate(tr, b); err == nil {
			t.Fatal("siblings must not overlap")
		}
	})
	t.Run("wrong access value", func(t *testing.T) {
		b := event.Behavior{
			ev(event.Create, tname.Root),
			ev(event.RequestCreate, t1),
			ev(event.Create, t1),
			ev(event.RequestCreate, w1),
			ev(event.Create, w1),
			evv(event.RequestCommit, w1, spec.Int(3)), // writes return OK
		}
		if err := Validate(tr, b); err == nil {
			t.Fatal("wrong access value must be rejected")
		}
	})
	t.Run("create under inactive parent", func(t *testing.T) {
		b := event.Behavior{
			ev(event.Create, tname.Root),
			ev(event.RequestCreate, t1),
			ev(event.RequestCreate, w1), // t1 not created yet: not wf either
		}
		if err := Validate(tr, b); err == nil {
			t.Fatal("request by uncreated parent must be rejected")
		}
	})
}

func TestObjectsPerform(t *testing.T) {
	tr := tname.NewTree()
	x := tr.AddObject("x", spec.Register{})
	o := NewObjects(tr)
	if v := o.Perform(x, spec.Op{Kind: spec.OpRead}); v != spec.Int(0) {
		t.Errorf("initial read = %s", v)
	}
	if v := o.Perform(x, spec.Op{Kind: spec.OpWrite, Arg: spec.Int(4)}); v != spec.OK {
		t.Errorf("write = %s", v)
	}
	if v := o.Perform(x, spec.Op{Kind: spec.OpRead}); v != spec.Int(4) {
		t.Errorf("read = %s", v)
	}
}

func TestRunRejectsInvalidProgram(t *testing.T) {
	tr := tname.NewTree()
	tr.AddObject("x", spec.Register{})
	bad := program.SeqNode("T0",
		program.SeqNode("t", program.Access("a", 0, spec.Op{Kind: spec.OpRead}),
			program.Access("a", 0, spec.Op{Kind: spec.OpRead})))
	if _, err := Run(tr, bad, Options{}); err == nil {
		t.Fatal("duplicate labels must fail")
	}
}
