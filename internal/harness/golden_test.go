package harness

import (
	"os"
	"path/filepath"
	"testing"

	"nestedsg/internal/core"
	"nestedsg/internal/event"
	"nestedsg/internal/generic"
	"nestedsg/internal/locking"
	"nestedsg/internal/tname"
	"nestedsg/internal/undolog"
	"nestedsg/internal/workload"
)

// golden pins the checker's observable semantics on committed trace files:
// if a change to the conflict relation, the visibility rules or the graph
// construction alters the verdict or the edge count on these traces, the
// test fails and the change needs a conscious decision.
type golden struct {
	file  string
	edges int
}

var goldens = []golden{
	{"golden_moss.json", 29},
	{"golden_undolog.json", 26},
}

func TestGoldenTracesStillCertify(t *testing.T) {
	for _, g := range goldens {
		g := g
		t.Run(g.file, func(t *testing.T) {
			f, err := os.Open(filepath.Join("testdata", g.file))
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			tr, b, err := event.ReadTrace(f)
			if err != nil {
				t.Fatal(err)
			}
			res := core.Check(tr, b)
			if !res.OK {
				t.Fatalf("golden trace no longer certifies: %s", res.Summary(tr))
			}
			if got := res.SG.NumEdges(); got != g.edges {
				t.Errorf("edge count changed: got %d, committed as %d — the conflict or visibility semantics moved", got, g.edges)
			}
			if err := core.AuditSuitability(tr, b, res.Certificate.Order); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestGoldenTraceRegeneration: the runner is deterministic, so the golden
// traces must be exactly reproducible from their generation parameters.
// This pins the scheduler's and workload generator's determinism across
// refactorings.
func TestGoldenTraceRegeneration(t *testing.T) {
	t.Run("golden_moss.json", func(t *testing.T) {
		tr := tname.NewTree()
		root := workload.Build(tr, workload.Config{Seed: 12345, TopLevel: 5, Depth: 2,
			Fanout: 3, Objects: 3, ParProb: 0.6, RetryProb: 0.4, CondProb: 0.4})
		b, _, err := generic.Run(tr, root, generic.Options{Seed: 12345,
			Protocol: locking.Protocol{}, AbortProb: 0.02, MaxAborts: 4})
		if err != nil {
			t.Fatal(err)
		}
		assertMatchesGolden(t, "golden_moss.json", tr, b)
	})
	t.Run("golden_undolog.json", func(t *testing.T) {
		tr := tname.NewTree()
		root := workload.Build(tr, workload.Config{Seed: 777, TopLevel: 4, Depth: 2,
			Fanout: 3, Objects: 6, SpecName: "mixed", ParProb: 0.5})
		b, _, err := generic.Run(tr, root, generic.Options{Seed: 777, Protocol: undolog.Protocol{}})
		if err != nil {
			t.Fatal(err)
		}
		assertMatchesGolden(t, "golden_undolog.json", tr, b)
	})
}

func assertMatchesGolden(t *testing.T, file string, tr *tname.Tree, b event.Behavior) {
	t.Helper()
	f, err := os.Open(filepath.Join("testdata", file))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	goldTr, goldB, err := event.ReadTrace(f)
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumTx() != goldTr.NumTx() {
		t.Fatalf("transaction count drifted: %d vs golden %d", tr.NumTx(), goldTr.NumTx())
	}
	if !b.Equal(goldB) {
		t.Fatalf("regenerated trace differs from golden (%d vs %d events) — scheduler or workload determinism broke",
			len(b), len(goldB))
	}
}
