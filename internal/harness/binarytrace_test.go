package harness

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"testing"

	"nestedsg/internal/core"
	"nestedsg/internal/event"
)

// TestGoldenTracesBinaryRoundTrip: every committed trace must survive a
// JSON → binary → JSON round trip with an identical behavior, an identical
// Check verdict, and a byte-identical certificate — the two codecs are two
// encodings of the same trace, not two dialects.
func TestGoldenTracesBinaryRoundTrip(t *testing.T) {
	for _, g := range goldens {
		g := g
		t.Run(g.file, func(t *testing.T) {
			f, err := os.Open(filepath.Join("testdata", g.file))
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			tr, b, err := event.ReadTrace(f)
			if err != nil {
				t.Fatal(err)
			}

			bin := event.MarshalBinaryTrace(tr, b)
			tr2, b2, err := event.ReadBinaryTrace(bytes.NewReader(bin))
			if err != nil {
				t.Fatalf("binary decode: %v", err)
			}
			if !b2.Equal(b) {
				t.Fatalf("behavior changed across binary round trip")
			}

			res := core.Check(tr, b)
			res2 := core.Check(tr2, b2)
			if res.OK != res2.OK {
				t.Fatalf("verdict changed: JSON %v, binary %v", res.OK, res2.OK)
			}
			cert := core.FormatCertificate(tr, res.Certificate)
			cert2 := core.FormatCertificate(tr2, res2.Certificate)
			if cert != cert2 {
				t.Fatalf("certificate changed across codecs:\nJSON:\n%s\nbinary:\n%s", cert, cert2)
			}

			// And back out to JSON: re-encoding the binary-decoded trace
			// must reproduce the committed file's parse exactly.
			var jbuf bytes.Buffer
			if err := event.WriteTrace(&jbuf, tr2, b2); err != nil {
				t.Fatal(err)
			}
			_, b3, err := event.ReadTrace(&jbuf)
			if err != nil {
				t.Fatal(err)
			}
			if !b3.Equal(b) {
				t.Fatalf("JSON re-encoding of binary decode drifted")
			}
		})
	}
}

// TestGoldenTracesStreamingBinaryCheck: the streaming binary decoder must
// drive the incremental checker event-by-event — no Behavior slice — and
// agree with the batch checker on both the accepted prefix and the final
// certificate (Snapshot ≡ Build on accepted traces).
func TestGoldenTracesStreamingBinaryCheck(t *testing.T) {
	for _, g := range goldens {
		g := g
		t.Run(g.file, func(t *testing.T) {
			f, err := os.Open(filepath.Join("testdata", g.file))
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			tr, b, err := event.ReadTrace(f)
			if err != nil {
				t.Fatal(err)
			}
			bin := event.MarshalBinaryTrace(tr, b)

			d, err := event.NewBinaryDecoder(bytes.NewReader(bin))
			if err != nil {
				t.Fatal(err)
			}
			inc := core.NewIncremental(d.Tree())
			n := 0
			for {
				e, err := d.Next()
				if err == io.EOF {
					break
				}
				if err != nil {
					t.Fatalf("streaming decode at event %d: %v", n, err)
				}
				if cyc := inc.Append(e); cyc != nil {
					t.Fatalf("streamed golden trace rejected at event %d: %v", n, cyc)
				}
				n++
			}
			if n != len(b) {
				t.Fatalf("streamed %d events, batch decoded %d", n, len(b))
			}

			got := inc.Snapshot()
			want := core.Build(tr, b)
			if got.NumEdges() != want.NumEdges() || got.NumParents() != want.NumParents() {
				t.Fatalf("streamed SG differs: %d/%d edges, %d/%d parents",
					got.NumEdges(), want.NumEdges(), got.NumParents(), want.NumParents())
			}
			if got.DOT() != want.DOT() {
				t.Fatalf("streamed SG not byte-identical to batch build")
			}
		})
	}
}
