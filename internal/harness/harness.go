// Package harness wires the full pipeline used by the experiment suite and
// the property tests: generate a workload, run it under a generic-system
// protocol, check the trace with the serialization-graph construction, and
// (when a program is available) materialize and validate the serial
// witness.
package harness

import (
	"fmt"

	"nestedsg/internal/core"
	"nestedsg/internal/event"
	"nestedsg/internal/generic"
	"nestedsg/internal/program"
	"nestedsg/internal/serial"
	"nestedsg/internal/tname"
	"nestedsg/internal/workload"
)

// Verdict is the outcome of one end-to-end run.
type Verdict struct {
	// Tree and Trace are the system type and recorded behavior.
	Tree  *tname.Tree
	Trace event.Behavior
	// Root is the generated program of T0.
	Root *program.Node
	// Stats are the runner's counters.
	Stats generic.Stats
	// Check is the Theorem 8/19 checker result.
	Check *core.Result
	// Witness is the serial witness behavior (nil when Check failed or
	// witnessing was skipped); WitnessErr records a witness failure.
	Witness    event.Behavior
	WitnessErr error
	// StreamRejectedAt is the raw index of the first event whose prefix has
	// a cyclic SG (-1 when streaming was skipped or every prefix passed);
	// StreamCycle is that prefix's certificate.
	StreamRejectedAt int
	StreamCycle      *core.Cycle
}

// SeriallyCorrect reports whether the trace passed the checker and, if a
// witness was attempted, the witness construction too.
func (v *Verdict) SeriallyCorrect() bool {
	return v.Check != nil && v.Check.OK && v.WitnessErr == nil
}

// Options configures RunAndCheck beyond the workload and runner options.
type Options struct {
	Workload workload.Config
	Generic  generic.Options
	// SkipWitness disables the serial-witness construction (it needs the
	// program and costs another pass).
	SkipWitness bool
	// ValidateWitness additionally re-validates the witness as a serial
	// behavior and compares projections; implied by property tests.
	ValidateWitness bool
	// AuditSuitability runs the quadratic §2.3.2 suitability audit.
	AuditSuitability bool
	// Streaming additionally replays the trace through the incremental
	// checker, recording the shortest prefix with a cyclic SG.
	Streaming bool
	// SGWorkers > 1 fans the SG construction's conflict scan out over that
	// many workers; 0 or 1 keeps it sequential.
	SGWorkers int
}

// RunAndCheck executes the full pipeline. Runner errors (non-quiescence)
// are returned as errors; checker failures are reported in the Verdict.
func RunAndCheck(opts Options) (*Verdict, error) {
	tr := tname.NewTree()
	root := workload.Build(tr, opts.Workload)
	trace, stats, err := generic.Run(tr, root, opts.Generic)
	if err != nil {
		return nil, fmt.Errorf("harness: generic run: %w", err)
	}
	v := &Verdict{Tree: tr, Trace: trace, Root: root, Stats: stats, StreamRejectedAt: -1}
	// One pooled Checker serves both the streaming replay and the batch
	// check; its scratch state is reused between the two passes. The Result
	// outlives the Checker safely because no further calls follow.
	c := core.NewChecker(tr)
	if opts.Streaming {
		v.StreamRejectedAt, v.StreamCycle = c.StreamPrefix(trace)
	}
	if opts.SGWorkers > 1 {
		v.Check = c.CheckParallel(trace, opts.SGWorkers)
	} else {
		v.Check = c.Check(trace)
	}
	if !v.Check.OK {
		return v, nil
	}
	if opts.AuditSuitability {
		if err := core.AuditSuitability(tr, trace, v.Check.Certificate.Order); err != nil {
			v.WitnessErr = err
			return v, nil
		}
	}
	if opts.SkipWitness {
		return v, nil
	}
	gamma, err := serial.Witness(tr, root, trace, v.Check.Certificate.Order)
	if err != nil {
		v.WitnessErr = err
		return v, nil
	}
	v.Witness = gamma
	if opts.ValidateWitness {
		if err := serial.Validate(tr, gamma); err != nil {
			v.WitnessErr = fmt.Errorf("harness: witness not a serial behavior: %w", err)
		}
	}
	return v, nil
}

// RunSerialAndCheck runs a workload under the serial scheduler (the
// specification system) and checks the resulting behavior — an oracle test
// for the checker: serial behaviors must always pass.
func RunSerialAndCheck(cfg workload.Config, seed int64, abortProb float64, maxAborts int) (*Verdict, error) {
	tr := tname.NewTree()
	root := workload.Build(tr, cfg)
	trace, err := serial.Run(tr, root, serial.Options{Seed: seed, AbortProb: abortProb, MaxAborts: maxAborts})
	if err != nil {
		return nil, fmt.Errorf("harness: serial run: %w", err)
	}
	v := &Verdict{Tree: tr, Trace: trace, Root: root, StreamRejectedAt: -1}
	v.Check = core.Check(tr, trace)
	return v, nil
}

// Describe renders a short human-readable summary of the verdict.
func (v *Verdict) Describe() string {
	s := fmt.Sprintf("events=%d commits=%d aborts=%d accesses=%d blockedPolls=%d victims=%d",
		v.Stats.Events, v.Stats.Commits, v.Stats.Aborts, v.Stats.Accesses, v.Stats.Blocked, v.Stats.DeadlockVictims)
	if v.Check != nil {
		s += " | " + v.Check.Summary(v.Tree)
	}
	if v.WitnessErr != nil {
		s += " | witness: " + v.WitnessErr.Error()
	} else if v.Witness != nil {
		s += fmt.Sprintf(" | witness: %d events, γ|T0 = β|T0", len(v.Witness))
	}
	return s
}
