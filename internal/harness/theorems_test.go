package harness

import (
	"testing"

	"nestedsg/internal/event"
	"nestedsg/internal/generic"
	"nestedsg/internal/locking"
	"nestedsg/internal/object"
	"nestedsg/internal/tname"
	"nestedsg/internal/undolog"
	"nestedsg/internal/workload"
)

// sweepConfigs enumerates a grid of workload shapes used by the theorem
// property tests.
func sweepConfigs(seed int64) []workload.Config {
	return []workload.Config{
		{Seed: seed, TopLevel: 3, Depth: 0, Fanout: 3, Objects: 2},
		{Seed: seed, TopLevel: 5, Depth: 1, Fanout: 3, Objects: 3, ParProb: 0.5},
		{Seed: seed, TopLevel: 4, Depth: 2, Fanout: 2, Objects: 2, ParProb: 0.8, HotProb: 0.6},
		{Seed: seed, TopLevel: 6, Depth: 1, Fanout: 4, Objects: 1, ReadRatio: 0.3},
		{Seed: seed, TopLevel: 4, Depth: 3, Fanout: 2, Objects: 4, ParProb: 0.4, RetryProb: 0.6, CondProb: 0.5},
	}
}

// runTheoremSweep validates the full Theorem 17/25 pipeline across a grid
// of seeds and shapes: every run must be serially correct for T0, with the
// witness validated and γ|T0 = β|T0.
func runTheoremSweep(t *testing.T, proto object.Protocol, specName string, seeds int64) {
	t.Helper()
	checked := 0
	for seed := int64(0); seed < seeds; seed++ {
		for ci, cfg := range sweepConfigs(seed) {
			cfg.SpecName = specName
			v, err := RunAndCheck(Options{
				Workload: cfg,
				Generic: generic.Options{Seed: seed*131 + int64(ci), Protocol: proto,
					AbortProb: 0.01, MaxAborts: 3},
				ValidateWitness:  true,
				AuditSuitability: seed%4 == 0, // quadratic: sample it
			})
			if err != nil {
				t.Fatalf("seed %d cfg %d: %v", seed, ci, err)
			}
			if !v.SeriallyCorrect() {
				t.Fatalf("seed %d cfg %d (%s/%s): %s", seed, ci, proto.Name(), specName, v.Describe())
			}
			checked++
		}
	}
	t.Logf("%s/%s: %d runs serially correct", proto.Name(), specName, checked)
}

// TestTheorem17MossLocking is the executable form of the paper's Theorem
// 17: every behavior of a generic system whose objects are M1_X is
// serially correct for T0.
func TestTheorem17MossLocking(t *testing.T) {
	seeds := int64(6)
	if testing.Short() {
		seeds = 2
	}
	runTheoremSweep(t, locking.Protocol{}, "register", seeds)
}

// TestTheorem17MossGeneralTypes exercises the read/update generalization
// over non-register types.
func TestTheorem17MossGeneralTypes(t *testing.T) {
	seeds := int64(4)
	if testing.Short() {
		seeds = 1
	}
	runTheoremSweep(t, locking.Protocol{}, "mixed", seeds)
}

// TestTheorem25UndoLogging is the executable form of Theorem 25: every
// behavior of a generic system whose objects are U_X is serially correct
// for T0 — exercised over every built-in data type.
func TestTheorem25UndoLogging(t *testing.T) {
	seeds := int64(4)
	if testing.Short() {
		seeds = 1
	}
	for _, spn := range []string{"register", "counter", "account", "set", "appendlog", "queue", "mixed"} {
		spn := spn
		t.Run(spn, func(t *testing.T) {
			runTheoremSweep(t, undolog.Protocol{}, spn, seeds)
		})
	}
}

// TestNegativeControlsDetected is the contrapositive experiment (E3): the
// deliberately broken protocols must be caught by the checker on a
// substantial fraction of seeds, and — crucially for soundness — whenever
// the checker does pass a broken run, the serial witness must still be
// constructible (the schedule simply never exercised the bug).
func TestNegativeControlsDetected(t *testing.T) {
	brokens := []object.Protocol{
		locking.BrokenProtocol{Mode: locking.IgnoreReadLocks},
		locking.BrokenProtocol{Mode: locking.NoInheritance},
		locking.BrokenProtocol{Mode: locking.KeepAbortState},
		undolog.BrokenProtocol{Mode: undolog.NoUndo},
		undolog.BrokenProtocol{Mode: undolog.SkipCommute},
	}
	seeds := int64(25)
	if testing.Short() {
		seeds = 8
	}
	for _, proto := range brokens {
		proto := proto
		t.Run(proto.Name(), func(t *testing.T) {
			detected, passed := 0, 0
			attempts := seeds
			if proto.Name() == "moss-broken-recovery" || proto.Name() == "undolog-broken-noundo" {
				// Recovery bugs fire only when an abort lands on an
				// observed write; give the schedule room to find one.
				attempts = 60
			}
			for seed := int64(0); seed < attempts && detected == 0; seed++ {
				cfg := workload.Config{Seed: seed, TopLevel: 5, Depth: 1, Fanout: 3,
					Objects: 2, HotProb: 0.7, ParProb: 0.8, ReadRatio: 0.5, SpecName: "register"}
				abortProb, maxAborts := 0.0, 0
				if proto.Name() == "moss-broken-recovery" || proto.Name() == "undolog-broken-noundo" {
					// Recovery bugs need an abort to land on a write that a
					// later committed access observes: one hot write-heavy
					// object and aggressive failure injection.
					cfg = workload.Config{Seed: seed, TopLevel: 8, Depth: 1, Fanout: 3,
						Objects: 1, HotProb: 1, ParProb: 0.8, ReadRatio: 0.3, SpecName: "register"}
					abortProb, maxAborts = 0.2, 40
				}
				v, err := RunAndCheck(Options{
					Workload: cfg,
					Generic: generic.Options{Seed: seed * 977, Protocol: proto,
						AbortProb: abortProb, MaxAborts: maxAborts},
					ValidateWitness: true,
				})
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if v.Check.OK {
					passed++
					if v.WitnessErr != nil {
						t.Fatalf("seed %d: checker passed but witness failed — checker unsound: %v", seed, v.WitnessErr)
					}
				} else {
					detected++
				}
			}
			t.Logf("%s: %d flagged after %d clean runs (all clean runs witnessed)",
				proto.Name(), detected, passed)
			if detected == 0 {
				t.Errorf("%s: no run was flagged; the negative control is not exercising the bug", proto.Name())
			}
		})
	}
}

// TestCheckerAgreesWithSerialOracle: behaviors produced by the *serial*
// scheduler must always pass the checker — the specification system is
// trivially correct.
func TestCheckerAgreesWithSerialOracle(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		cfg := workload.Config{Seed: seed, TopLevel: 4, Depth: 2, Fanout: 3, Objects: 3,
			SpecName: "mixed", ParProb: 0.5, RetryProb: 0.4}
		v, err := RunSerialAndCheck(cfg, seed*7, 0.2, 3)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !v.Check.OK {
			t.Fatalf("seed %d: checker rejected a serial behavior: %s", seed, v.Check.Summary(v.Tree))
		}
	}
}

// TestObjectInvariantsDuringRuns enables per-step object auditing (the
// Lemma 9 lock-chain invariant for Moss, log-replay consistency for the
// undo log) across a randomized sweep.
func TestObjectInvariantsDuringRuns(t *testing.T) {
	protos := []object.Protocol{locking.Protocol{}, undolog.Protocol{}}
	for _, proto := range protos {
		proto := proto
		t.Run(proto.Name(), func(t *testing.T) {
			for seed := int64(0); seed < 8; seed++ {
				cfg := workload.Config{Seed: seed, TopLevel: 5, Depth: 2, Fanout: 3,
					Objects: 3, SpecName: "mixed", ParProb: 0.6, HotProb: 0.5}
				_, err := RunAndCheck(Options{
					Workload: cfg,
					Generic: generic.Options{Seed: seed * 19, Protocol: proto,
						AbortProb: 0.03, MaxAborts: 5, AuditObjects: true},
					SkipWitness: true,
				})
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
			}
		})
	}
}

// TestOrphanActivityStillSeriallyCorrect exercises the generic
// controller's full nondeterminism: descendants of aborted transactions
// keep running (orphan activity, which the paper permits and [8] manages).
// Orphan operations are never visible to T0, so every behavior must still
// be serially correct for T0 under both protocols.
func TestOrphanActivityStillSeriallyCorrect(t *testing.T) {
	protos := []object.Protocol{locking.Protocol{}, undolog.Protocol{}}
	seeds := int64(12)
	if testing.Short() {
		seeds = 4
	}
	for _, proto := range protos {
		proto := proto
		t.Run(proto.Name(), func(t *testing.T) {
			sawOrphanWork := false
			for seed := int64(0); seed < seeds; seed++ {
				cfg := workload.Config{Seed: seed, TopLevel: 5, Depth: 2, Fanout: 3,
					Objects: 2, HotProb: 0.6, ParProb: 0.7, SpecName: "register"}
				v, err := RunAndCheck(Options{
					Workload: cfg,
					Generic: generic.Options{Seed: seed*577 + 3, Protocol: proto,
						AbortProb: 0.04, MaxAborts: 6, AllowOrphans: true, AuditObjects: true},
					ValidateWitness: true,
				})
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if !v.SeriallyCorrect() {
					t.Fatalf("seed %d: %s", seed, v.Describe())
				}
				// Detect genuine orphan activity: an access REQUEST_COMMIT
				// after an ancestor's ABORT.
				abortedAt := map[tname.TxID]int{}
				for i, e := range v.Trace {
					if e.Kind == event.Abort {
						abortedAt[e.Tx] = i
					}
				}
				for i, e := range v.Trace {
					if e.Kind != event.RequestCommit || !v.Tree.IsAccess(e.Tx) {
						continue
					}
					for anc, pos := range abortedAt {
						if i > pos && v.Tree.IsDescendant(e.Tx, anc) {
							sawOrphanWork = true
						}
					}
				}
			}
			if !sawOrphanWork {
				t.Log("no orphan access was scheduled in this sweep (allowed, but weakens the test)")
			}
		})
	}
}
