package harness

import (
	"strings"
	"testing"

	"nestedsg/internal/generic"
	"nestedsg/internal/locking"
	"nestedsg/internal/undolog"
	"nestedsg/internal/workload"
)

// TestPipelineMossSmoke runs one small Moss-locking workload end to end:
// generic run, Theorem 8 check, witness construction and validation.
func TestPipelineMossSmoke(t *testing.T) {
	v, err := RunAndCheck(Options{
		Workload:         workload.Config{Seed: 1, TopLevel: 4, Depth: 2, Fanout: 3, Objects: 3, ParProb: 0.5},
		Generic:          generic.Options{Seed: 2, Protocol: locking.Protocol{}},
		ValidateWitness:  true,
		AuditSuitability: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !v.SeriallyCorrect() {
		t.Fatalf("expected serial correctness: %s", v.Describe())
	}
	if v.Stats.Accesses == 0 {
		t.Fatal("workload performed no accesses")
	}
}

// TestPipelineUndoLogSmoke does the same for undo logging over mixed types.
func TestPipelineUndoLogSmoke(t *testing.T) {
	v, err := RunAndCheck(Options{
		Workload:         workload.Config{Seed: 3, TopLevel: 4, Depth: 2, Fanout: 3, Objects: 6, SpecName: "mixed", ParProb: 0.5},
		Generic:          generic.Options{Seed: 4, Protocol: undolog.Protocol{}},
		ValidateWitness:  true,
		AuditSuitability: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !v.SeriallyCorrect() {
		t.Fatalf("expected serial correctness: %s", v.Describe())
	}
}

// TestPipelineWithFailures injects spontaneous aborts and still expects
// serial correctness for T0.
func TestPipelineWithFailures(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		v, err := RunAndCheck(Options{
			Workload: workload.Config{Seed: seed, TopLevel: 5, Depth: 2, Fanout: 3, Objects: 3,
				ParProb: 0.6, RetryProb: 0.5, CondProb: 0.4, HotProb: 0.4},
			Generic: generic.Options{Seed: seed + 100, Protocol: locking.Protocol{},
				AbortProb: 0.02, MaxAborts: 5},
			ValidateWitness: true,
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !v.SeriallyCorrect() {
			t.Fatalf("seed %d: %s", seed, v.Describe())
		}
	}
}

// TestHarnessDeterminism: identical options produce byte-identical traces,
// identical certificates and identical witnesses.
func TestHarnessDeterminism(t *testing.T) {
	opts := Options{
		Workload: workload.Config{Seed: 6, TopLevel: 5, Depth: 2, Fanout: 3, Objects: 3,
			ParProb: 0.6, RetryProb: 0.3, CondProb: 0.3},
		Generic: generic.Options{Seed: 60, Protocol: locking.Protocol{},
			AbortProb: 0.02, MaxAborts: 4},
	}
	a, err := RunAndCheck(opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunAndCheck(opts)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Trace.Equal(b.Trace) {
		t.Fatal("traces differ across identical runs")
	}
	if !a.Witness.Equal(b.Witness) {
		t.Fatal("witnesses differ across identical runs")
	}
	if a.Check.SG.NumEdges() != b.Check.SG.NumEdges() {
		t.Fatal("graphs differ across identical runs")
	}
}

// TestDescribe renders verdicts for both passing and failing runs.
func TestDescribe(t *testing.T) {
	good, err := RunAndCheck(Options{
		Workload:        workload.Config{Seed: 1, TopLevel: 3, Depth: 1, Fanout: 2, Objects: 2},
		Generic:         generic.Options{Seed: 1, Protocol: locking.Protocol{}},
		ValidateWitness: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := good.Describe()
	if !strings.Contains(s, "serially correct") || !strings.Contains(s, "witness:") {
		t.Errorf("describe: %s", s)
	}
	// A failing run (broken protocol, scan seeds).
	for seed := int64(0); seed < 20; seed++ {
		bad, err := RunAndCheck(Options{
			Workload: workload.Config{Seed: seed, TopLevel: 6, Depth: 1, Fanout: 3,
				Objects: 1, HotProb: 1, ParProb: 0.9},
			Generic: generic.Options{Seed: seed * 7,
				Protocol: undolog.BrokenProtocol{Mode: undolog.SkipCommute}},
		})
		if err != nil {
			t.Fatal(err)
		}
		if !bad.Check.OK {
			if s := bad.Describe(); !strings.Contains(s, "cycle") && !strings.Contains(s, "inappropriate") {
				t.Errorf("failing describe: %s", s)
			}
			return
		}
	}
	t.Log("no failing seed found; describe failure path untested this run")
}

// TestStreamingAndParallelOptions: the streaming option agrees with the
// offline verdict and the parallel construction does not change it.
func TestStreamingAndParallelOptions(t *testing.T) {
	good, err := RunAndCheck(Options{
		Workload:    workload.Config{Seed: 5, TopLevel: 5, Depth: 1, Fanout: 3, Objects: 2, HotProb: 0.7, ParProb: 0.7},
		Generic:     generic.Options{Seed: 9, Protocol: locking.Protocol{}},
		SkipWitness: true,
		Streaming:   true,
		SGWorkers:   4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !good.Check.OK {
		t.Fatalf("moss run must pass: %s", good.Describe())
	}
	if good.StreamRejectedAt != -1 || good.StreamCycle != nil {
		t.Fatalf("streaming rejected a passing trace at %d", good.StreamRejectedAt)
	}

	rejected := false
	for seed := int64(0); seed < 20 && !rejected; seed++ {
		bad, err := RunAndCheck(Options{
			Workload:    workload.Config{Seed: seed, TopLevel: 6, Depth: 1, Fanout: 3, Objects: 1, HotProb: 1, ParProb: 0.9},
			Generic:     generic.Options{Seed: seed * 13, Protocol: undolog.BrokenProtocol{Mode: undolog.SkipCommute}},
			SkipWitness: true,
			Streaming:   true,
			SGWorkers:   4,
		})
		if err != nil {
			t.Fatal(err)
		}
		if bad.Check.Cycle == nil {
			continue
		}
		rejected = true
		if bad.StreamRejectedAt < 0 || bad.StreamCycle == nil {
			t.Fatalf("offline found a cycle but streaming did not: %s", bad.Describe())
		}
		if bad.StreamRejectedAt >= len(bad.Trace) {
			t.Fatalf("rejection index %d out of range", bad.StreamRejectedAt)
		}
	}
	if !rejected {
		t.Error("no cyclic trace found; the streaming rejection path is untested")
	}
}
