// Package locking implements Moss' read/write locking object automaton
// M1_X (§5.2), generalized in the natural way to read/update locking over
// an arbitrary serial specification (the paper's M1_X is the special case
// where the specification is the read/write Register; the generalization is
// the M_X of [4] restricted to two lock classes).
//
// The automaton keeps, per object:
//
//   - write-lockholders: a chain of transactions ordered by ancestry, each
//     holding an exclusive lock, together with value(U) — the object state
//     as seen at U (the paper's stack of values);
//   - read-lockholders: the transactions holding shared locks;
//   - created / commit-requested bookkeeping.
//
// On INFORM_COMMIT the locks and value of the committed transaction move to
// its parent; on INFORM_ABORT the locks of all its descendants are
// discarded, which — because the values live on the write-lock chain —
// implicitly restores the pre-abort state: this is the "underlying recovery
// system" §3.2 assumes.
package locking

import (
	"fmt"

	"nestedsg/internal/object"
	"nestedsg/internal/spec"
	"nestedsg/internal/tname"
)

// Moss is the read/update locking generic object automaton.
type Moss struct {
	tr *tname.Tree
	x  tname.ObjID
	sp spec.Spec

	created         map[tname.TxID]bool
	commitRequested map[tname.TxID]bool
	readLockholders map[tname.TxID]bool
	// writeLockholders maps each exclusive-lock holder to its view of the
	// object state. The holders always form a chain under ancestry
	// (Lemma 9); T0 is a permanent holder of the initial state.
	writeLockholders map[tname.TxID]spec.State

	// broken configuration; all false for the faithful automaton.
	brokenIgnoreReadLocks bool
	brokenNoInheritance   bool
	brokenKeepAbortState  bool
}

// NewMoss builds the faithful M1_X automaton for object x.
func NewMoss(tr *tname.Tree, x tname.ObjID) *Moss {
	m := &Moss{
		tr:               tr,
		x:                x,
		sp:               tr.Spec(x),
		created:          make(map[tname.TxID]bool),
		commitRequested:  make(map[tname.TxID]bool),
		readLockholders:  make(map[tname.TxID]bool),
		writeLockholders: make(map[tname.TxID]spec.State),
	}
	m.writeLockholders[tname.Root] = m.sp.Init()
	return m
}

// Create implements object.Generic.
func (m *Moss) Create(t tname.TxID) { m.created[t] = true }

// InformCommit implements object.Generic: locks and the stored state pass
// to the parent.
func (m *Moss) InformCommit(t tname.TxID) {
	if t == tname.Root {
		return
	}
	if m.brokenNoInheritance {
		// Negative control: drop the lock instead of passing it upward,
		// making the transaction's effects visible to everyone immediately.
		if st, ok := m.writeLockholders[t]; ok {
			delete(m.writeLockholders, t)
			m.writeLockholders[tname.Root] = st
		}
		delete(m.readLockholders, t)
		return
	}
	p := m.tr.Parent(t)
	if st, ok := m.writeLockholders[t]; ok {
		delete(m.writeLockholders, t)
		m.writeLockholders[p] = st
	}
	if m.readLockholders[t] {
		delete(m.readLockholders, t)
		m.readLockholders[p] = true
	}
}

// InformAbort implements object.Generic: every descendant of t loses its
// locks; the surviving chain values are exactly the pre-abort states, so no
// explicit restore is needed.
func (m *Moss) InformAbort(t tname.TxID) {
	if m.brokenKeepAbortState {
		// Negative control: "forget to undo" — instead of discarding the
		// aborted writer's state, merge it into the parent as if it had
		// committed.
		for u, st := range m.writeLockholders {
			if u != tname.Root && m.tr.IsDescendant(u, t) {
				delete(m.writeLockholders, u)
				m.writeLockholders[m.tr.Parent(t)] = st
			}
		}
		for u := range m.readLockholders {
			if m.tr.IsDescendant(u, t) {
				delete(m.readLockholders, u)
			}
		}
		return
	}
	for u := range m.writeLockholders {
		if u != tname.Root && m.tr.IsDescendant(u, t) {
			delete(m.writeLockholders, u)
		}
	}
	for u := range m.readLockholders {
		if m.tr.IsDescendant(u, t) {
			delete(m.readLockholders, u)
		}
	}
}

// least returns the least (deepest) write-lockholder: the unique descendant
// of all other holders.
func (m *Moss) least() tname.TxID {
	var best tname.TxID = tname.None
	bestDepth := -1
	for u := range m.writeLockholders {
		if d := m.tr.Depth(u); d > bestDepth {
			best, bestDepth = u, d
		}
	}
	return best
}

// TryRequestCommit implements object.Generic.
func (m *Moss) TryRequestCommit(t tname.TxID) (spec.Value, bool) {
	if !m.created[t] || m.commitRequested[t] {
		return spec.Nil, false
	}
	op := m.tr.AccessOp(t)
	if m.sp.ReadOnly(op) {
		// Read-class access: every write-lockholder must be an ancestor.
		for u := range m.writeLockholders {
			if !m.tr.IsAncestor(u, t) {
				return spec.Nil, false
			}
		}
		_, v := m.sp.Apply(m.writeLockholders[m.least()], op)
		m.commitRequested[t] = true
		m.readLockholders[t] = true
		return v, true
	}
	// Update-class access: every holder of any lock must be an ancestor.
	for u := range m.writeLockholders {
		if !m.tr.IsAncestor(u, t) {
			return spec.Nil, false
		}
	}
	if !m.brokenIgnoreReadLocks {
		for u := range m.readLockholders {
			if !m.tr.IsAncestor(u, t) {
				return spec.Nil, false
			}
		}
	}
	st, v := m.sp.Apply(m.writeLockholders[m.least()], op)
	m.commitRequested[t] = true
	m.writeLockholders[t] = st
	return v, true
}

// Blockers implements object.Generic.
func (m *Moss) Blockers(t tname.TxID) []tname.TxID {
	if !m.created[t] || m.commitRequested[t] {
		return nil
	}
	op := m.tr.AccessOp(t)
	var out []tname.TxID
	for u := range m.writeLockholders {
		if !m.tr.IsAncestor(u, t) {
			out = append(out, u)
		}
	}
	if !m.sp.ReadOnly(op) && !m.brokenIgnoreReadLocks {
		for u := range m.readLockholders {
			if !m.tr.IsAncestor(u, t) {
				out = append(out, u)
			}
		}
	}
	return out
}

// Blocked implements object.BlockChecker: equivalent to
// len(Blockers(t)) > 0, but returns at the first non-ancestor lockholder
// without building the list. The runner polls this on every step.
func (m *Moss) Blocked(t tname.TxID) bool {
	if !m.created[t] || m.commitRequested[t] {
		return false
	}
	for u := range m.writeLockholders {
		if !m.tr.IsAncestor(u, t) {
			return true
		}
	}
	if !m.sp.ReadOnly(m.tr.AccessOp(t)) && !m.brokenIgnoreReadLocks {
		for u := range m.readLockholders {
			if !m.tr.IsAncestor(u, t) {
				return true
			}
		}
	}
	return false
}

// Audit implements object.Auditor: the faithful automaton must satisfy the
// Lemma 9 chain invariant at all times. Broken variants are exempt — their
// whole point is to violate the protocol.
func (m *Moss) Audit() error {
	if m.brokenIgnoreReadLocks || m.brokenNoInheritance || m.brokenKeepAbortState {
		return nil
	}
	return m.CheckChainInvariant()
}

// CheckChainInvariant verifies Lemma 9: any write-lockholder is ancestrally
// related to every other lockholder. Used by tests after every step.
func (m *Moss) CheckChainInvariant() error {
	for u := range m.writeLockholders {
		for w := range m.writeLockholders {
			if !m.tr.IsOrdered(u, w) {
				return fmt.Errorf("locking: write-lockholders %s and %s unrelated", m.tr.Name(u), m.tr.Name(w))
			}
		}
		for w := range m.readLockholders {
			if !m.tr.IsOrdered(u, w) {
				return fmt.Errorf("locking: write-lockholder %s and read-lockholder %s unrelated", m.tr.Name(u), m.tr.Name(w))
			}
		}
	}
	return nil
}

// Holders reports the current lock tables (copies); used by tests.
func (m *Moss) Holders() (writes map[tname.TxID]spec.State, reads map[tname.TxID]bool) {
	writes = make(map[tname.TxID]spec.State, len(m.writeLockholders))
	for u, st := range m.writeLockholders {
		writes[u] = st
	}
	reads = make(map[tname.TxID]bool, len(m.readLockholders))
	for u := range m.readLockholders {
		reads[u] = true
	}
	return writes, reads
}

// Protocol implements object.Protocol for the faithful Moss automaton.
type Protocol struct{}

// Name implements object.Protocol.
func (Protocol) Name() string { return "moss" }

// New implements object.Protocol.
func (Protocol) New(tr *tname.Tree, x tname.ObjID) object.Generic { return NewMoss(tr, x) }

// BrokenMode selects a deliberately incorrect variant of the automaton for
// the negative-control experiments (E3).
type BrokenMode uint8

// Broken modes.
const (
	// IgnoreReadLocks lets update accesses proceed despite read locks held
	// by non-ancestors (lost-update / non-repeatable-read bugs).
	IgnoreReadLocks BrokenMode = iota
	// NoInheritance releases locks to T0 on commit instead of passing them
	// to the parent (premature visibility).
	NoInheritance
	// KeepAbortState merges an aborted writer's state into its parent
	// instead of discarding it (broken recovery).
	KeepAbortState
)

// BrokenProtocol implements object.Protocol for broken Moss variants.
type BrokenProtocol struct{ Mode BrokenMode }

// Name implements object.Protocol.
func (p BrokenProtocol) Name() string {
	switch p.Mode {
	case IgnoreReadLocks:
		return "moss-broken-readlocks"
	case NoInheritance:
		return "moss-broken-inheritance"
	case KeepAbortState:
		return "moss-broken-recovery"
	}
	return "moss-broken"
}

// New implements object.Protocol.
func (p BrokenProtocol) New(tr *tname.Tree, x tname.ObjID) object.Generic {
	m := NewMoss(tr, x)
	switch p.Mode {
	case IgnoreReadLocks:
		m.brokenIgnoreReadLocks = true
	case NoInheritance:
		m.brokenNoInheritance = true
	case KeepAbortState:
		m.brokenKeepAbortState = true
	}
	return m
}
