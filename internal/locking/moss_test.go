package locking

import (
	"testing"

	"nestedsg/internal/spec"
	"nestedsg/internal/tname"
)

// fix: T0 with two top-level transactions touching register x.
//
//	t1 ── w1 (write x=5), t2 ── r2 (read x), t2 ── w2 (write x=9)
type fix struct {
	tr                 *tname.Tree
	x                  tname.ObjID
	t1, t2, w1, r2, w2 tname.TxID
	m                  *Moss
}

func newFix(t *testing.T) *fix {
	t.Helper()
	tr := tname.NewTree()
	x := tr.AddObject("x", spec.Register{})
	f := &fix{tr: tr, x: x}
	f.t1 = tr.Child(tname.Root, "t1")
	f.t2 = tr.Child(tname.Root, "t2")
	f.w1 = tr.Access(f.t1, "w1", x, spec.Op{Kind: spec.OpWrite, Arg: spec.Int(5)})
	f.r2 = tr.Access(f.t2, "r2", x, spec.Op{Kind: spec.OpRead})
	f.w2 = tr.Access(f.t2, "w2", x, spec.Op{Kind: spec.OpWrite, Arg: spec.Int(9)})
	f.m = NewMoss(tr, x)
	return f
}

func (f *fix) mustRespond(t *testing.T, acc tname.TxID) spec.Value {
	t.Helper()
	v, ok := f.m.TryRequestCommit(acc)
	if !ok {
		t.Fatalf("access %s should be enabled", f.tr.Name(acc))
	}
	if err := f.m.CheckChainInvariant(); err != nil {
		t.Fatal(err)
	}
	return v
}

func (f *fix) mustBlock(t *testing.T, acc tname.TxID) {
	t.Helper()
	if _, ok := f.m.TryRequestCommit(acc); ok {
		t.Fatalf("access %s should be blocked", f.tr.Name(acc))
	}
	if len(f.m.Blockers(acc)) == 0 {
		t.Fatalf("blocked access %s must report blockers", f.tr.Name(acc))
	}
}

func TestInitialRead(t *testing.T) {
	f := newFix(t)
	f.m.Create(f.r2)
	if v := f.mustRespond(t, f.r2); v != spec.Int(0) {
		t.Errorf("initial read = %s", v)
	}
}

func TestUncreatedAccessNotEnabled(t *testing.T) {
	f := newFix(t)
	if _, ok := f.m.TryRequestCommit(f.r2); ok {
		t.Error("respond before CREATE must be disabled")
	}
	if f.m.Blockers(f.r2) != nil {
		t.Error("uncreated access has no blockers")
	}
}

func TestNoDoubleResponse(t *testing.T) {
	f := newFix(t)
	f.m.Create(f.r2)
	f.mustRespond(t, f.r2)
	if _, ok := f.m.TryRequestCommit(f.r2); ok {
		t.Error("second response must be disabled")
	}
}

func TestWriteLockBlocksConflicting(t *testing.T) {
	f := newFix(t)
	f.m.Create(f.w1)
	f.m.Create(f.r2)
	f.m.Create(f.w2)
	f.mustRespond(t, f.w1)
	// w1 (under t1) holds the write lock: r2 and w2 (under t2) block.
	f.mustBlock(t, f.r2)
	f.mustBlock(t, f.w2)
}

func TestReadLockBlocksWriters(t *testing.T) {
	f := newFix(t)
	f.m.Create(f.r2)
	f.m.Create(f.w1)
	f.mustRespond(t, f.r2)
	f.mustBlock(t, f.w1)
}

func TestReadersShareLocks(t *testing.T) {
	f := newFix(t)
	r1 := f.tr.Access(f.t1, "r1", f.x, spec.Op{Kind: spec.OpRead})
	f.m.Create(r1)
	f.m.Create(f.r2)
	f.mustRespond(t, r1)
	if v := f.mustRespond(t, f.r2); v != spec.Int(0) {
		t.Errorf("shared read = %s", v)
	}
}

func TestAncestorLocksAreCompatible(t *testing.T) {
	f := newFix(t)
	// w2 and r2 are both under t2: after w2 responds and COMMITS up to t2,
	// r2 must see the inherited value 9.
	f.m.Create(f.w2)
	f.mustRespond(t, f.w2)
	f.m.InformCommit(f.w2) // lock moves to t2
	f.m.Create(f.r2)
	if v := f.mustRespond(t, f.r2); v != spec.Int(9) {
		t.Errorf("read under same parent after inherited write = %s, want 9", v)
	}
	// But t1's access is still blocked: the lock sits at t2.
	f.m.Create(f.w1)
	f.mustBlock(t, f.w1)
}

func TestLockInheritanceToRootUnblocks(t *testing.T) {
	f := newFix(t)
	f.m.Create(f.w1)
	f.mustRespond(t, f.w1)
	f.m.InformCommit(f.w1) // to t1
	f.m.Create(f.r2)
	f.mustBlock(t, f.r2)
	f.m.InformCommit(f.t1) // to T0
	if v := f.mustRespond(t, f.r2); v != spec.Int(5) {
		t.Errorf("read after full inheritance = %s, want 5", v)
	}
}

func TestAbortDiscardsLocksAndRestoresValue(t *testing.T) {
	f := newFix(t)
	f.m.Create(f.w1)
	f.mustRespond(t, f.w1)
	f.m.InformAbort(f.t1) // aborts w1's parent: w1's lock and value vanish
	f.m.Create(f.r2)
	if v := f.mustRespond(t, f.r2); v != spec.Int(0) {
		t.Errorf("read after abort = %s, want initial 0", v)
	}
}

func TestAbortAfterPartialInheritance(t *testing.T) {
	f := newFix(t)
	f.m.Create(f.w2)
	f.mustRespond(t, f.w2)
	f.m.InformCommit(f.w2) // value 9 now held by t2
	f.m.InformAbort(f.t2)  // t2 aborts: the inherited value is discarded
	f.m.Create(f.w1)
	f.mustRespond(t, f.w1)
	f.m.InformCommit(f.w1)
	f.m.InformCommit(f.t1)
	f.m.Create(f.r2)
	if v := f.mustRespond(t, f.r2); v != spec.Int(5) {
		t.Errorf("read = %s, want 5 (t2's aborted write must not survive)", v)
	}
}

func TestLeastWriteLockholderValueWins(t *testing.T) {
	// Nested writers: t2 writes 9 (inherited to t2), then a deeper access
	// under t2 writes 3; a read under the same deep transaction must see 3.
	f := newFix(t)
	t21 := f.tr.Child(f.t2, "t21")
	w21 := f.tr.Access(t21, "w21", f.x, spec.Op{Kind: spec.OpWrite, Arg: spec.Int(3)})
	r21 := f.tr.Access(t21, "r21", f.x, spec.Op{Kind: spec.OpRead})
	f.m.Create(f.w2)
	f.mustRespond(t, f.w2)
	f.m.InformCommit(f.w2) // 9 at t2
	f.m.Create(w21)
	f.mustRespond(t, w21) // 3 at w21 (descendant of t2: compatible)
	f.m.Create(r21)
	f.m.InformCommit(w21) // 3 at t21
	if v := f.mustRespond(t, r21); v != spec.Int(3) {
		t.Errorf("read = %s, want 3 (least holder's value)", v)
	}
}

func TestHoldersSnapshot(t *testing.T) {
	f := newFix(t)
	f.m.Create(f.w1)
	f.mustRespond(t, f.w1)
	writes, reads := f.m.Holders()
	if len(writes) != 2 { // T0 and w1
		t.Errorf("writes = %v", writes)
	}
	if len(reads) != 0 {
		t.Errorf("reads = %v", reads)
	}
	// Mutating the snapshot must not affect the automaton.
	delete(writes, f.w1)
	f.m.InformCommit(f.w1)
	writes2, _ := f.m.Holders()
	if _, ok := writes2[f.t1]; !ok {
		t.Error("snapshot mutation leaked into the automaton")
	}
}

func TestGeneralizedCounterLocking(t *testing.T) {
	// The read/update generalization: counter updates take exclusive
	// locks; a get under the same transaction sees the updated value.
	tr := tname.NewTree()
	c := tr.AddObject("c", spec.Counter{})
	t1 := tr.Child(tname.Root, "t1")
	inc := tr.Access(t1, "inc", c, spec.Op{Kind: spec.OpIncrement, Arg: spec.Int(4)})
	get := tr.Access(t1, "get", c, spec.Op{Kind: spec.OpGet})
	m := NewMoss(tr, c)
	m.Create(inc)
	if v, ok := m.TryRequestCommit(inc); !ok || v != spec.OK {
		t.Fatalf("inc: %v %v", v, ok)
	}
	m.InformCommit(inc)
	m.Create(get)
	if v, ok := m.TryRequestCommit(get); !ok || v != spec.Int(4) {
		t.Fatalf("get = %v, ok=%v; want 4", v, ok)
	}
}

func TestProtocolFactory(t *testing.T) {
	if (Protocol{}).Name() != "moss" {
		t.Error("protocol name")
	}
	tr := tname.NewTree()
	x := tr.AddObject("x", spec.Register{})
	if g := (Protocol{}).New(tr, x); g == nil {
		t.Error("factory returned nil")
	}
}

func TestBrokenIgnoreReadLocks(t *testing.T) {
	f := newFix(t)
	m := BrokenProtocol{Mode: IgnoreReadLocks}.New(f.tr, f.x).(*Moss)
	m.Create(f.r2)
	if _, ok := m.TryRequestCommit(f.r2); !ok {
		t.Fatal("read should respond")
	}
	m.Create(f.w1)
	// The faithful automaton blocks here; the broken one does not.
	if _, ok := m.TryRequestCommit(f.w1); !ok {
		t.Fatal("broken variant must ignore the read lock")
	}
}

func TestBrokenNoInheritance(t *testing.T) {
	f := newFix(t)
	m := BrokenProtocol{Mode: NoInheritance}.New(f.tr, f.x).(*Moss)
	m.Create(f.w1)
	if _, ok := m.TryRequestCommit(f.w1); !ok {
		t.Fatal("write should respond")
	}
	m.InformCommit(f.w1) // drops the lock to T0 instead of t1
	m.Create(f.r2)
	// The faithful automaton blocks (lock at t1); the broken one responds
	// and leaks the value 5 before t1 commits.
	if v, ok := m.TryRequestCommit(f.r2); !ok || v != spec.Int(5) {
		t.Fatalf("broken variant must leak: %v %v", v, ok)
	}
}

func TestBrokenKeepAbortState(t *testing.T) {
	f := newFix(t)
	m := BrokenProtocol{Mode: KeepAbortState}.New(f.tr, f.x).(*Moss)
	m.Create(f.w1)
	if _, ok := m.TryRequestCommit(f.w1); !ok {
		t.Fatal("write should respond")
	}
	m.InformAbort(f.w1) // merges 5 into t1 instead of discarding
	m.InformCommit(f.t1)
	m.Create(f.r2)
	if v, ok := m.TryRequestCommit(f.r2); !ok || v != spec.Int(5) {
		t.Fatalf("broken recovery must keep the aborted write: %v %v", v, ok)
	}
	names := map[string]bool{}
	for _, mode := range []BrokenMode{IgnoreReadLocks, NoInheritance, KeepAbortState} {
		names[BrokenProtocol{Mode: mode}.Name()] = true
	}
	if len(names) != 3 {
		t.Error("broken protocol names must be distinct")
	}
}
