//go:build !race

// Allocation-regression tests for the partitioned certifier's apply
// path. The race detector instruments allocations, so the zero-alloc
// assertions only hold in ordinary builds; the build tag keeps
// `go test -race` green.

package part_test

import (
	"testing"

	"nestedsg/internal/part"
)

// TestCertifierResetSteadyStateAllocs pins the whole partitioned apply
// path — ownership routing, per-partition streaming, the codec round
// trip, and edge composition — at zero steady-state allocations: after
// one warm-up pass, Reset + Prime over the same tree must not allocate.
func TestCertifierResetSteadyStateAllocs(t *testing.T) {
	tr, b := protocolBehavior(t, 19, 57)
	c := part.New(part.Config{Partitions: 4, Tree: tr})
	c.Prime(b) // warm up: grow every backing array once
	feed := func() {
		c.Reset()
		c.Prime(b)
	}
	feed()
	if n := testing.AllocsPerRun(20, feed); n > 0 {
		t.Errorf("partitioned Reset+Prime allocates %.1f/op after warm-up, want 0", n)
	}
}

// BenchmarkPartitionedApply measures the per-event cost of the
// partitioned apply path, end to end through the edge exchange. The
// benchdiff gate holds its allocs/op at zero.
func BenchmarkPartitionedApply(b *testing.B) {
	tr, tb := protocolBehavior(b, 19, 57)
	c := part.New(part.Config{Partitions: 4, Tree: tr})
	c.Prime(tb)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Reset()
		c.Prime(tb)
	}
	b.StopTimer()
	events := int64(len(tb))
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(int64(b.N)*events), "ns/event")
}
