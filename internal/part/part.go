// Package part partitions SG(β) certification across P independent
// certifier partitions and composes their verdicts into the global one.
//
// The paper defines the serialization graph over one total-order event
// log, and internal/core certifies that log with one streaming checker.
// This package splits the *object space* instead: each object is owned by
// exactly one partition (a deterministic hash of its label, see Owner),
// and each partition runs its own core.Incremental over a filtered view
// of the shared log:
//
//   - the REQUEST_COMMIT of an access is applied only by the partition
//     that owns the accessed object;
//   - every other event — creations, commits, aborts, reports — is
//     applied by all partitions.
//
// The split is chosen so the union of the partitions' edge sets is
// exactly edges(SG(β)). Conflict edges relate two accesses of the same
// object, so the owner derives every conflict edge of its objects and no
// other partition derives any; the quadratic per-object conflict scan —
// the certifier's real work — is therefore partitioned. Precedes edges
// and the visibility relation depend only on the structural events, which
// every partition sees, so each partition derives the full precedes set
// (the composer dedups the copies) and parks/admits accesses with exactly
// the global visibility. "Deciding Serializability in Network Systems"
// (PAPERS.md) is the template: per-node graphs certify locally and
// compose into the global verdict when the nodes exchange the edges that
// cross them.
//
// Partitions export their edges through the versioned wire.EdgeBatch
// codec — every flush round-trips through the encoder even though this
// build composes in-process, so a multi-process split changes the
// transport, not the protocol. The composer (core.Composer) unions the
// batches; because the canonical freeze makes SG a pure function of its
// edge set, the composed certificate is byte-identical to a batch
// core.Check over the merged log, which Final() and the recovery audit
// verify.
//
// Soundness of commit acknowledgement: a batch carries the exclusive
// event bound UpTo its partition has applied, delivered atomically with
// (never before) the edges derived from those events. The composer's
// watermark is min over partitions of UpTo, so the composed graph always
// contains every edge of SG(β[:watermark]) — it is a superset, since fast
// partitions run ahead. Edges are monotone over prefixes (see
// core.Incremental), so if the superset is acyclic, every covered prefix
// is acyclic, and a COMMIT at log position seq may be acknowledged as
// soon as watermark > seq.
package part

// Owner maps an object label to its owning partition in [0, parts). The
// map is a pure function of the label bytes (FNV-1a) — independent of
// interning order, of the partition a request arrived on, and of any
// previous run — so every process, recovery, and replay agrees on it.
//
//sgvet:hotpath
func Owner(label string, parts int) int {
	if parts <= 1 {
		return 0
	}
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(label); i++ {
		h ^= uint32(label[i])
		h *= prime32
	}
	return int(h % uint32(parts))
}
