package part

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"nestedsg/internal/core"
	"nestedsg/internal/event"
	"nestedsg/internal/tname"
	"nestedsg/internal/wire"
)

// Hooks receives the certifier partitions' scheduling points. The
// simulator implements it to freeze partitions at deterministic event
// bounds; the live server's hooks are no-ops.
type Hooks interface {
	// PartApply is called before partition part applies the event at log
	// index index. It may block (a stalled partition); no locks are held
	// and the partition's previous edge batch — bound included — has
	// already been delivered to the composer.
	PartApply(part, index int)
	// PartBatch returns how many events (1..max) partition part should
	// apply in one locked run starting at index. It must not block.
	PartBatch(part, index, max int) int
}

// nopHooks is the live implementation: never stall, largest runs.
type nopHooks struct{}

func (nopHooks) PartApply(int, int)          {}
func (nopHooks) PartBatch(_, _, max int) int { return max }

// Config wires a Certifier into its host.
type Config struct {
	// Partitions is P, the number of certifier partitions; values < 1
	// mean 1.
	Partitions int

	// Tree is the interned name tree shared with the event source.
	Tree *tname.Tree

	// Lock, when non-nil, is held for reading the tree while applying
	// events and composing edges — the server passes its state lock's
	// RLocker. Prime runs before any concurrency exists and does not
	// take it.
	Lock sync.Locker

	// Source streams the merged total-order log: it blocks until events
	// beyond n exist, returning them (from n on) in buf's backing array,
	// or ok=false once the log is closed and drained. Required by Start;
	// a purely primed certifier (recovery audits, fuzzing) leaves it nil.
	Source func(n int, buf event.Behavior) (event.Behavior, bool)

	// Hooks, when nil, defaults to no-ops.
	Hooks Hooks

	// ObserveLag, when non-nil, receives each delivered batch's compose
	// lag: how far the delivering partition's bound ran ahead of the
	// composed watermark, in events. The server feeds per-partition
	// histograms from it.
	ObserveLag func(part, lag int)
}

// partition is one certifier partition: a streaming checker over the
// partition's filtered view of the log plus the flush machinery. All
// fields except applied are confined to the owning worker goroutine
// (or to the single-threaded Prime).
type partition struct {
	id    int
	total int
	inc   *core.Incremental

	// owners caches ObjID → owning partition (lazily filled from Owner;
	// -1 = unresolved). Worker-confined.
	owners []int32

	// pend accumulates the edge records the sink observed since the last
	// flush; buf is the encode scratch. Worker-confined.
	pend []wire.SGEdge
	buf  []byte

	// applied counts events this partition has applied (post-filter);
	// written by the worker, read by Stats.
	applied atomic.Int64
}

// Certifier is the partitioned certification subsystem: P partitions,
// each streaming the log through its own core.Incremental, exchanging
// edge batches with the composer that maintains the global graph and the
// commit watermark.
//
// Lock order: Certifier.mu, then Config.Lock (matching the server's
// certifier.mu → Server.mu order). Never the reverse.
type Certifier struct {
	cfg   Config
	tr    *tname.Tree
	parts []*partition

	// start is the log index the workers stream from — 0 for a fresh
	// system, the primed length after Prime. Written before Start.
	start int

	mu   sync.Mutex
	cond *sync.Cond

	g *core.Composer //sgvet:guardedby mu

	// origin records which partition first delivered each edge record;
	// a second delivery from a different partition is a cross-partition
	// exchange (counted in cross).
	origin map[wire.SGEdge]int32 //sgvet:guardedby mu

	// upTo[p] is the exclusive event bound partition p has delivered;
	// watermark is min over partitions, the certified frontier. After
	// the last worker retires the watermark jumps to MaxInt so pending
	// waiters drain, mirroring the single certifier's close.
	upTo      []int //sgvet:guardedby mu
	watermark int   //sgvet:guardedby mu
	live      int   //sgvet:guardedby mu

	// cyclic latches the composed graph's first cycle; cycleAt is the
	// last watermark published while acyclic — every event before it was
	// covered by an acyclic composed prefix, everything at or after is
	// refused. Conservative by at most the compose lag; the single
	// certifier pins the exact violating index instead.
	cyclic  bool //sgvet:guardedby mu
	cycleAt int  //sgvet:guardedby mu

	delivered []int64 //sgvet:guardedby mu
	cross     []int64 //sgvet:guardedby mu

	// scratch is the decode-side batch, its Edges array recycled across
	// deliveries.
	scratch wire.EdgeBatch //sgvet:guardedby mu

	wg sync.WaitGroup
}

// New builds a partitioned certifier over the given system. No goroutines
// start until Start.
func New(cfg Config) *Certifier {
	if cfg.Partitions < 1 {
		cfg.Partitions = 1
	}
	if cfg.Hooks == nil {
		cfg.Hooks = nopHooks{}
	}
	c := &Certifier{
		cfg:       cfg,
		tr:        cfg.Tree,
		g:         core.NewComposer(cfg.Tree),
		origin:    make(map[wire.SGEdge]int32),
		upTo:      make([]int, cfg.Partitions),
		delivered: make([]int64, cfg.Partitions),
		cross:     make([]int64, cfg.Partitions),
	}
	c.cond = sync.NewCond(&c.mu)
	for i := 0; i < cfg.Partitions; i++ {
		p := &partition{id: i, total: cfg.Partitions, inc: core.NewIncremental(cfg.Tree)}
		p.inc.SetEdgeSink(func(parent, from, to tname.TxID, kind core.EdgeKind) {
			p.pend = append(p.pend, wire.SGEdge{
				Parent: uint32(parent), From: uint32(from), To: uint32(to), Kind: uint8(kind),
			})
		})
		c.parts = append(c.parts, p)
	}
	return c
}

// Partitions returns P.
func (c *Certifier) Partitions() int { return len(c.parts) }

// ownerOf resolves the owning partition of object x through the
// partition-local cache.
//
//sgvet:hotpath
func (p *partition) ownerOf(tr *tname.Tree, x tname.ObjID) int {
	for int(x) >= len(p.owners) {
		p.owners = append(p.owners, -1)
	}
	if p.owners[x] < 0 {
		p.owners[x] = int32(Owner(tr.ObjectLabel(x), p.total))
	}
	return int(p.owners[x])
}

// applyOne routes one log event through the partition filter and into the
// partition's checker: access REQUEST_COMMITs belong to their object's
// owner alone, everything else is broadcast. This is the per-event apply
// path; the caller holds Config.Lock.
//
//sgvet:hotpath
func (p *partition) applyOne(tr *tname.Tree, e event.Event) {
	if e.Kind == event.RequestCommit && tr.IsAccess(e.Tx) &&
		p.ownerOf(tr, tr.AccessObject(e.Tx)) != p.id {
		return
	}
	p.inc.Append(e)
	p.applied.Add(1)
}

// Prime feeds a recovered or generated behavior through every partition
// synchronously — no goroutines, no locks — then flushes each partition's
// batch so the composed graph and watermark cover all of b. Workers
// started afterwards stream from len(b).
func (c *Certifier) Prime(b event.Behavior) {
	for _, p := range c.parts {
		for _, e := range b {
			p.applyOne(c.tr, e)
		}
		c.deliver(p.encode(len(b)), nil)
	}
	c.start = len(b)
}

// Start spawns the partition workers; Config.Source and Config.Lock must
// be set. Call at most once.
func (c *Certifier) Start() {
	if c.cfg.Source == nil || c.cfg.Lock == nil {
		panic("part: Start needs a Source and a Lock")
	}
	c.mu.Lock()
	c.live = len(c.parts)
	c.mu.Unlock()
	c.wg.Add(len(c.parts))
	for _, p := range c.parts {
		go c.worker(p)
	}
}

// worker streams the merged log through one partition. Each locked run is
// bounded by the hooks; the partition's batch — edges and bound — is
// flushed after every run and before any blocking in PartApply, so the
// composer's watermark tracks a stalled partition's frontier exactly.
func (c *Certifier) worker(p *partition) {
	defer c.wg.Done()
	var buf event.Behavior
	processed := c.start
	for {
		batch, ok := c.cfg.Source(processed, buf)
		if !ok {
			c.retire()
			return
		}
		buf = batch
		for off := 0; off < len(batch); {
			c.cfg.Hooks.PartApply(p.id, processed+off)
			n := c.cfg.Hooks.PartBatch(p.id, processed+off, len(batch)-off)
			if n < 1 {
				n = 1
			}
			if rem := len(batch) - off; n > rem {
				n = rem
			}
			c.cfg.Lock.Lock()
			for _, e := range batch[off : off+n] {
				p.applyOne(c.tr, e)
			}
			c.cfg.Lock.Unlock()
			off += n
			c.deliver(p.encode(processed+off), c.cfg.Lock)
		}
		processed += len(batch)
	}
}

// encode freezes the partition's pending edges and bound as one
// wire.EdgeBatch payload. The round trip through the codec is deliberate:
// the encoded form is the exchange protocol.
func (p *partition) encode(upTo int) []byte {
	p.buf = wire.AppendEdgeBatch(p.buf[:0], wire.EdgeBatch{Part: p.id, UpTo: upTo, Edges: p.pend})
	p.pend = p.pend[:0]
	return p.buf
}

// deliver parses one edge batch and applies it to the composed graph
// atomically with its bound — the soundness invariant: the watermark
// never advances over events whose edges are not yet composed. lk, when
// non-nil, is held around the tree-reading composition (the live path);
// Prime passes nil. A decode failure is a protocol bug between in-process
// peers, hence a panic.
func (c *Certifier) deliver(payload []byte, lk sync.Locker) {
	c.mu.Lock()
	defer c.mu.Unlock()
	b, err := wire.ParseEdgeBatch(payload, c.scratch)
	c.scratch = b
	if err != nil {
		panic(fmt.Sprintf("part: malformed edge batch: %v", err))
	}
	if b.Part < 0 || b.Part >= len(c.parts) {
		panic(fmt.Sprintf("part: edge batch from unknown partition %d", b.Part))
	}
	if len(b.Edges) > 0 {
		if lk != nil {
			lk.Lock()
		}
		n := c.tr.NumTx()
		for _, e := range b.Edges {
			c.delivered[b.Part]++
			if int(e.Parent) >= n || int(e.From) >= n || int(e.To) >= n {
				panic(fmt.Sprintf("part: edge batch names unknown transaction (%d/%d/%d of %d)",
					e.Parent, e.From, e.To, n))
			}
			if first, dup := c.origin[e]; dup {
				if int(first) != b.Part {
					c.cross[b.Part]++
				}
			} else {
				c.origin[e] = int32(b.Part)
			}
			c.g.AddEdge(tname.TxID(e.Parent), tname.TxID(e.From), tname.TxID(e.To), core.EdgeKind(e.Kind))
		}
		if lk != nil {
			lk.Unlock()
		}
		if c.g.Cyclic() && !c.cyclic {
			c.cyclic = true
			c.cycleAt = c.watermark
		}
	}
	if b.UpTo > c.upTo[b.Part] {
		c.upTo[b.Part] = b.UpTo
	}
	w := c.upTo[0]
	for _, u := range c.upTo[1:] {
		if u < w {
			w = u
		}
	}
	if w > c.watermark {
		c.watermark = w
		c.cond.Broadcast()
	}
	if c.cfg.ObserveLag != nil {
		c.cfg.ObserveLag(b.Part, c.upTo[b.Part]-c.watermark)
	}
}

// retire marks one worker done; when the last retires the watermark jumps
// past every possible sequence so pending waiters drain.
func (c *Certifier) retire() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.live--
	if c.live == 0 {
		c.watermark = math.MaxInt
		c.cond.Broadcast()
	}
}

// WaitDrained blocks until every worker has consumed the closed log and
// retired.
func (c *Certifier) WaitDrained() { c.wg.Wait() }

// WaitCertified blocks until the composed watermark passes seq and
// reports whether an acyclic composed prefix covers it. false means the
// composed graph acquired a cycle at or before the covering frontier —
// the commit must be refused; CycleBound and CycleCertificate describe
// the rejection.
func (c *Certifier) WaitCertified(seq int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	for c.watermark <= seq {
		c.cond.Wait()
	}
	return !(c.cyclic && c.cycleAt <= seq)
}

// State reports (watermark, acyclic) for the verdict request.
func (c *Certifier) State() (int, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.watermark, !c.cyclic
}

// CycleBound returns the refusal frontier: commits at or after it are
// rejected. Meaningful only once State reports a cycle.
func (c *Certifier) CycleBound() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cycleAt
}

// Cyclic reports whether the composed graph has latched a cycle.
func (c *Certifier) Cyclic() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cyclic
}

// Counts reports the composed graph's size: parents, nodes, edge records.
func (c *Certifier) Counts() (parents, nodes, edges int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.g.Counts()
}

// Snapshot materializes the composed SG; byte-identical (as DOT) to a
// batch Build over the certified log. Callers rendering it take the tree
// lock themselves.
func (c *Certifier) Snapshot() *core.SG {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.g.Snapshot()
}

// CycleCertificate freezes the composed graph and extracts its cycle, or
// nil while acyclic.
func (c *Certifier) CycleCertificate() *core.Cycle {
	_, cyc := c.Snapshot().Acyclicity()
	return cyc
}

// Stats is one partition's counters for the metrics endpoint.
type Stats struct {
	// EventsApplied counts log events the partition applied after the
	// ownership filter.
	EventsApplied int64
	// EdgesDelivered counts edge records the partition shipped to the
	// composer.
	EdgesDelivered int64
	// CrossEdges counts delivered records another partition had already
	// derived — the overlap the edge-exchange protocol exists to ship.
	CrossEdges int64
	// Bound is the partition's delivered event frontier.
	Bound int
}

// PartStats returns per-partition counters, indexed by partition.
func (c *Certifier) PartStats() []Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Stats, len(c.parts))
	for i, p := range c.parts {
		out[i] = Stats{
			EventsApplied:  p.applied.Load(),
			EdgesDelivered: c.delivered[i],
			CrossEdges:     c.cross[i],
			Bound:          c.upTo[i],
		}
	}
	return out
}

// Reset rewinds the certifier to the empty log over the same tree,
// retaining every backing array; only valid with no workers running. A
// long sequence of Reset+Prime cycles allocates nothing in steady state.
func (c *Certifier) Reset() {
	for _, p := range c.parts {
		p.inc.Reset()
		p.pend = p.pend[:0]
		p.applied.Store(0)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.g.Reset()
	clear(c.origin)
	for i := range c.upTo {
		c.upTo[i] = 0
		c.delivered[i] = 0
		c.cross[i] = 0
	}
	c.watermark = 0
	c.cyclic = false
	c.cycleAt = 0
	c.start = 0
}
