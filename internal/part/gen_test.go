package part_test

import (
	"math/rand"

	"nestedsg/internal/event"
	"nestedsg/internal/spec"
	"nestedsg/internal/tname"
)

// randomSystem interns a random tree over a couple of typed objects —
// the same shape core's differential fuzzing uses.
func randomSystem(rng *rand.Rand) (*tname.Tree, []tname.TxID) {
	tr := tname.NewTree()
	specs := spec.All()
	nObj := 1 + rng.Intn(4)
	objs := make([]tname.ObjID, nObj)
	for i := range objs {
		sp := specs[rng.Intn(len(specs))]
		objs[i] = tr.AddObject(sp.Name()+string(rune('a'+i)), sp)
	}
	names := []tname.TxID{tname.Root}
	for i := 0; i < 14; i++ {
		parent := names[rng.Intn(len(names))]
		if tr.IsAccess(parent) {
			continue
		}
		label := "n" + string(rune('a'+i))
		var id tname.TxID
		if rng.Intn(3) == 0 {
			x := objs[rng.Intn(len(objs))]
			id = tr.Access(parent, label, x, tr.Spec(x).RandOp(rng))
		} else {
			id = tr.Child(parent, label)
		}
		names = append(names, id)
	}
	return tr, names
}

// randomEvents emits arbitrary (usually ill-formed) event sequences; the
// composed and batch constructions must agree on garbage too.
func randomEvents(rng *rand.Rand, tr *tname.Tree, names []tname.TxID, n int) event.Behavior {
	kinds := []event.Kind{event.Create, event.RequestCreate, event.RequestCommit,
		event.Commit, event.Abort, event.ReportCommit, event.ReportAbort}
	b := make(event.Behavior, n)
	for i := range b {
		k := kinds[rng.Intn(len(kinds))]
		tx := names[rng.Intn(len(names))]
		var v spec.Value
		switch rng.Intn(4) {
		case 0:
			v = spec.OK
		case 1:
			v = spec.Int(int64(rng.Intn(8)))
		case 2:
			v = spec.Bool(rng.Intn(2) == 0)
		}
		b[i] = event.NewValEvent(k, tx, v)
	}
	return b
}
