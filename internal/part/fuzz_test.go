package part_test

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"nestedsg/internal/event"
)

// corpusSeeds generates the committed seed traces: a few protocol runs
// (well-formed, certifiable) and a few random event soups (ill-formed on
// purpose), all marshalled in the NSGB binary trace format the fuzz
// target decodes.
func corpusSeeds(t testing.TB) map[string][]byte {
	t.Helper()
	seeds := map[string][]byte{}
	for i := int64(0); i < 3; i++ {
		tr, b := protocolBehavior(t, i, i+40)
		seeds["seed_protocol_"+strconv.FormatInt(i, 10)] = event.MarshalBinaryTrace(tr, b)
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 3; i++ {
		tr, names := randomSystem(rng)
		b := randomEvents(rng, tr, names, 40)
		seeds["seed_soup_"+strconv.Itoa(i)] = event.MarshalBinaryTrace(tr, b)
	}
	return seeds
}

// FuzzPartitionedCertificate is the differential fuzzer of the
// partitioned certifier: any decodable trace, partitioned at P ∈
// {1, 2, 4}, must compose to the byte-identical certificate a batch
// construction produces over the same log — acyclicity verdict included.
func FuzzPartitionedCertificate(f *testing.F) {
	for _, data := range corpusSeeds(f) {
		f.Add(data)
	}
	f.Add([]byte("NSGB"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, b, err := event.ReadBinaryTrace(bytes.NewReader(data))
		if err != nil {
			return // rejected input; all we require is no panic
		}
		if tr.Validate() != nil {
			return
		}
		verifyDifferential(t, tr, b, 1, 2, 4)
	})
}

// TestRegeneratePartitionedFuzzCorpus rewrites the committed seed corpus
// for FuzzPartitionedCertificate when UPDATE_FUZZ_CORPUS=1; otherwise it
// checks the committed files are current.
func TestRegeneratePartitionedFuzzCorpus(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzPartitionedCertificate")
	for name, data := range corpusSeeds(t) {
		content := "go test fuzz v1\n[]byte(" + strconv.Quote(string(data)) + ")\n"
		path := filepath.Join(dir, name)
		if os.Getenv("UPDATE_FUZZ_CORPUS") == "1" {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("seed corpus missing (run with UPDATE_FUZZ_CORPUS=1): %v", err)
		}
		if string(got) != content {
			t.Fatalf("seed corpus %s is stale (run with UPDATE_FUZZ_CORPUS=1)", name)
		}
	}
}

// TestFuzzCorpusCertifies replays every committed corpus entry through
// the differential check directly, so the corpus guards the invariant
// even when the fuzz engine is not running.
func TestFuzzCorpusCertifies(t *testing.T) {
	for name, data := range corpusSeeds(t) {
		tr, b, err := event.ReadBinaryTrace(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		verifyDifferential(t, tr, b, 1, 2, 4, 8)
	}
}
