package part_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"nestedsg/internal/core"
	"nestedsg/internal/event"
	"nestedsg/internal/generic"
	"nestedsg/internal/locking"
	"nestedsg/internal/part"
	"nestedsg/internal/tname"
	"nestedsg/internal/workload"
)

// protocolBehavior runs a locking workload and returns its event trace —
// a well-formed, certifiable behavior.
func protocolBehavior(t testing.TB, wseed, rseed int64) (*tname.Tree, event.Behavior) {
	t.Helper()
	tr := tname.NewTree()
	root := workload.Build(tr, workload.Config{Seed: wseed, TopLevel: 6, Depth: 2,
		Fanout: 3, Objects: 4, ParProb: 0.6})
	b, _, err := generic.Run(tr, root, generic.Options{Seed: rseed, Protocol: locking.Protocol{}})
	if err != nil {
		t.Fatal(err)
	}
	return tr, b
}

func TestOwnerDeterministicAndTotal(t *testing.T) {
	labels := []string{"", "x", "y", "account-17", "registera", "counterc", "setb"}
	for _, l := range labels {
		if got := part.Owner(l, 1); got != 0 {
			t.Fatalf("Owner(%q, 1) = %d", l, got)
		}
		for _, p := range []int{2, 4, 8} {
			a, b := part.Owner(l, p), part.Owner(l, p)
			if a != b {
				t.Fatalf("Owner(%q, %d) unstable: %d vs %d", l, p, a, b)
			}
			if a < 0 || a >= p {
				t.Fatalf("Owner(%q, %d) = %d out of range", l, p, a)
			}
		}
	}
	// The map must actually spread: over many labels every partition of 4
	// owns something.
	hit := make([]bool, 4)
	for i := 0; i < 64; i++ {
		hit[part.Owner(fmt.Sprintf("obj-%d", i), 4)] = true
	}
	for i, h := range hit {
		if !h {
			t.Fatalf("partition %d owns none of 64 labels — degenerate map", i)
		}
	}
}

// verifyDifferential is the core acceptance check: for each P the primed
// composed certificate must match the batch construction byte-for-byte,
// with agreeing acyclicity verdicts.
func verifyDifferential(t testing.TB, tr *tname.Tree, b event.Behavior, ps ...int) {
	t.Helper()
	if len(ps) == 0 {
		ps = []int{1, 2, 4}
	}
	want := core.Build(tr, b)
	wantDOT := want.DOT()
	_, wantCyc := want.Acyclicity()
	for _, p := range ps {
		c := part.New(part.Config{Partitions: p, Tree: tr})
		c.Prime(b)
		if got := c.Snapshot().DOT(); got != wantDOT {
			t.Fatalf("P=%d: composed certificate diverges from batch Build:\n--- composed ---\n%s\n--- batch ---\n%s",
				p, got, wantDOT)
		}
		if c.Cyclic() != (wantCyc != nil) {
			t.Fatalf("P=%d: composed cyclic=%v, batch cyclic=%v", p, c.Cyclic(), wantCyc != nil)
		}
		if w, _ := c.State(); w != len(b) {
			t.Fatalf("P=%d: primed watermark %d, want %d", p, w, len(b))
		}
		stats := c.PartStats()
		var cross int64
		for _, st := range stats {
			cross += st.CrossEdges
			if st.Bound != len(b) {
				t.Fatalf("P=%d: partition bound %d, want %d", p, st.Bound, len(b))
			}
		}
		if p == 1 && cross != 0 {
			t.Fatalf("P=1 reported %d cross-partition edges", cross)
		}
	}
}

func TestPartitionedMatchesBatchOnProtocolTraces(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		tr, b := protocolBehavior(t, seed, seed*7+1)
		verifyDifferential(t, tr, b, 1, 2, 4, 8)
	}
}

func TestPartitionedMatchesBatchOnRandomSoup(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	for i := 0; i < 30; i++ {
		tr, names := randomSystem(rng)
		b := randomEvents(rng, tr, names, 25+rng.Intn(50))
		verifyDifferential(t, tr, b)
	}
}

// TestCrossEdgesAppearAtP4: with several objects spread over 4
// partitions, the precedes relation is derived independently by every
// partition, so the composer must observe cross-partition duplicates —
// the exchange overlap the protocol ships.
func TestCrossEdgesAppearAtP4(t *testing.T) {
	var total int64
	for seed := int64(0); seed < 8; seed++ {
		tr, b := protocolBehavior(t, seed, seed+100)
		c := part.New(part.Config{Partitions: 4, Tree: tr})
		c.Prime(b)
		for _, st := range c.PartStats() {
			total += st.CrossEdges
		}
	}
	if total == 0 {
		t.Fatal("no cross-partition edges over 8 workloads at P=4 — the exchange is never exercised")
	}
}

// TestResetReplays: Reset + Prime over the same tree reproduces the same
// certificate.
func TestResetReplays(t *testing.T) {
	tr, b := protocolBehavior(t, 3, 5)
	c := part.New(part.Config{Partitions: 4, Tree: tr})
	c.Prime(b)
	first := c.Snapshot().DOT()
	c.Reset()
	if p, n, e := c.Counts(); p != 0 || n != 0 || e != 0 {
		t.Fatalf("reset left %d parents %d nodes %d edges", p, n, e)
	}
	c.Prime(b)
	if got := c.Snapshot().DOT(); got != first {
		t.Fatalf("post-reset certificate diverges:\n%s\n%s", got, first)
	}
}

// memSource adapts a growable in-memory log to the Config.Source
// contract.
type memSource struct {
	mu     sync.Mutex
	cond   *sync.Cond
	events event.Behavior
	closed bool
}

func newMemSource() *memSource {
	s := &memSource{}
	s.cond = sync.NewCond(&s.mu)
	return s
}

func (s *memSource) append(evs ...event.Event) {
	s.mu.Lock()
	s.events = append(s.events, evs...)
	s.mu.Unlock()
	s.cond.Broadcast()
}

func (s *memSource) close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.cond.Broadcast()
}

func (s *memSource) wait(n int, buf event.Behavior) (event.Behavior, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for len(s.events) <= n && !s.closed {
		s.cond.Wait()
	}
	if len(s.events) <= n {
		return nil, false
	}
	return append(buf[:0], s.events[n:]...), true
}

// TestCertifierLive: workers tailing a live source certify every prefix
// and drain on close with the batch-identical certificate.
func TestCertifierLive(t *testing.T) {
	tr, b := protocolBehavior(t, 9, 2)
	src := newMemSource()
	var treeMu sync.RWMutex
	c := part.New(part.Config{
		Partitions: 4,
		Tree:       tr,
		Lock:       treeMu.RLocker(),
		Source:     src.wait,
	})
	c.Start()
	for i, e := range b {
		src.append(e)
		if i == len(b)/2 {
			// Mid-stream commit wait: certification must catch up.
			if !c.WaitCertified(i) {
				t.Fatalf("acyclic prefix %d refused", i)
			}
		}
	}
	src.close()
	c.WaitDrained()
	if got, want := c.Snapshot().DOT(), core.Build(tr, b).DOT(); got != want {
		t.Fatalf("live certificate diverges from batch:\n%s\n%s", got, want)
	}
	if w, ac := c.State(); !ac || w <= len(b) {
		t.Fatalf("drained state (%d, %v), want watermark past %d and acyclic", w, ac, len(b))
	}
}

// stallHooks freezes one partition before it applies the event at bound,
// until released.
type stallHooks struct {
	part    int
	bound   int
	release chan struct{}
}

func (h *stallHooks) PartApply(p, index int) {
	if p == h.part && index >= h.bound {
		<-h.release
	}
}

func (h *stallHooks) PartBatch(p, index, max int) int {
	if p == h.part {
		if d := h.bound - index; d > 0 && d < max {
			return d
		}
	}
	return max
}

// TestCertifierPartitionStall: with one partition frozen at a bound, the
// watermark settles exactly there — commits before it certify, commits at
// or past it block until the release.
func TestCertifierPartitionStall(t *testing.T) {
	tr, b := protocolBehavior(t, 11, 4)
	bound := len(b) / 2
	hooks := &stallHooks{part: 1, bound: bound, release: make(chan struct{})}
	src := newMemSource()
	var treeMu sync.RWMutex
	c := part.New(part.Config{
		Partitions: 4,
		Tree:       tr,
		Lock:       treeMu.RLocker(),
		Source:     src.wait,
		Hooks:      hooks,
	})
	c.Start()
	src.append(b...)
	if !c.WaitCertified(bound - 1) {
		t.Fatalf("prefix %d refused", bound-1)
	}
	certified := make(chan bool)
	go func() { certified <- c.WaitCertified(bound) }()
	select {
	case <-certified:
		t.Fatal("commit at the stalled bound certified while the partition is frozen")
	default:
	}
	if w, _ := c.State(); w != bound {
		t.Fatalf("stalled watermark %d, want exactly %d", w, bound)
	}
	close(hooks.release)
	if ok := <-certified; !ok {
		t.Fatal("commit refused after release")
	}
	src.close()
	c.WaitDrained()
	if got, want := c.Snapshot().DOT(), core.Build(tr, b).DOT(); got != want {
		t.Fatalf("post-stall certificate diverges:\n%s\n%s", got, want)
	}
}
