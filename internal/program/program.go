// Package program models the paper's transaction automata (§2.2.1) as
// deterministic, replayable programs.
//
// The paper leaves transactions as arbitrary I/O automata constrained only
// by transaction well-formedness. The runners in this module need one extra
// property the paper does not: to materialize an explicit serial witness γ
// for a concurrent behavior β, the same transaction must be re-runnable
// under the serial scheduler. We therefore restrict programs to be
// deterministic functions of the *outcomes of their children* (keyed by
// child identity, not by report arrival order). Every such program is a
// valid transaction automaton, so the theorems apply unchanged; the
// restriction only strengthens what the test suite can verify.
//
// A program is a tree of Nodes. Composite nodes request their children
// sequentially (Seq) or all at once (Par), may request further children
// when an outcome arrives (OnOutcome — retries, conditional accesses), and
// compute their REQUEST_COMMIT value from the keyed outcomes (Result).
package program

import (
	"fmt"

	"nestedsg/internal/spec"
	"nestedsg/internal/tname"
)

// Mode says how a composite node schedules its static children.
type Mode uint8

// Scheduling modes.
const (
	// Seq requests child i+1 only after child i's outcome arrives.
	Seq Mode = iota
	// Par requests all static children immediately on creation.
	Par
)

// Outcome is what a parent learns about a child: whether it committed and,
// if so, the reported value.
type Outcome struct {
	Committed bool
	Val       spec.Value
}

// Node describes the program of one transaction name. Exactly one of
// (IsAccess) or (composite fields) is meaningful.
type Node struct {
	// Label is the child's name relative to its parent; it must be unique
	// among the children a parent ever requests.
	Label string

	// IsAccess marks a leaf that performs Op on Obj.
	IsAccess bool
	Obj      tname.ObjID
	Op       spec.Op

	// Mode schedules the static Children.
	Mode     Mode
	Children []*Node

	// OnOutcome, if non-nil, is consulted when any child's outcome arrives
	// (index is the child's position in the full request sequence so far).
	// It may return additional nodes to request; their labels must be
	// deterministic and unique. It must be a pure function of its
	// arguments and the node's immutable configuration.
	OnOutcome func(index int, child *Node, oc Outcome) []*Node

	// Result computes the node's REQUEST_COMMIT value from all outcomes,
	// keyed by request index. If nil, the value is spec.Nil.
	Result func(ocs []Outcome) spec.Value
}

// Access builds an access leaf.
func Access(label string, obj tname.ObjID, op spec.Op) *Node {
	return &Node{Label: label, IsAccess: true, Obj: obj, Op: op}
}

// SeqNode builds a sequential composite.
func SeqNode(label string, children ...*Node) *Node {
	return &Node{Label: label, Mode: Seq, Children: children}
}

// ParNode builds a parallel composite.
func ParNode(label string, children ...*Node) *Node {
	return &Node{Label: label, Mode: Par, Children: children}
}

// Exec is the live execution state of one composite node: the paper's
// transaction automaton A_T between CREATE(T) and REQUEST_COMMIT(T, v).
// The runner drives it; it never sees the scheduler.
type Exec struct {
	node       *Node
	requested  []*Node   // request sequence so far (index = request index)
	outcomes   []Outcome // outcome per request index
	pending    int       // requests without an outcome yet
	nextStatic int       // next static child to request (Seq)
	started    bool
	done       bool
}

// NewExec prepares the execution of a composite node. It panics on access
// nodes: accesses are executed by objects, not by programs.
func NewExec(n *Node) *Exec {
	if n.IsAccess {
		panic("program: NewExec on an access node")
	}
	return &Exec{node: n}
}

// Node returns the node being executed.
func (e *Exec) Node() *Node { return e.node }

// Start is called at CREATE(T); it returns the first batch of children to
// request (possibly empty, in which case the transaction is immediately
// ready to request commit).
func (e *Exec) Start() []*Node {
	if e.started {
		panic("program: Start called twice")
	}
	e.started = true
	var batch []*Node
	switch e.node.Mode {
	case Par:
		batch = append(batch, e.node.Children...)
		e.nextStatic = len(e.node.Children)
	case Seq:
		if len(e.node.Children) > 0 {
			batch = append(batch, e.node.Children[0])
			e.nextStatic = 1
		}
	}
	e.admit(batch)
	return batch
}

// admit records a batch as requested.
func (e *Exec) admit(batch []*Node) {
	for _, c := range batch {
		e.requested = append(e.requested, c)
		e.outcomes = append(e.outcomes, Outcome{})
		e.pending++
	}
}

// RequestIndex returns the request index of the child with the given label,
// or -1. Linear scan: fan-out per node is small in every workload here.
func (e *Exec) RequestIndex(label string) int {
	for i, c := range e.requested {
		if c.Label == label {
			return i
		}
	}
	return -1
}

// Requested returns the nodes requested so far, in request order.
func (e *Exec) Requested() []*Node { return e.requested }

// OnReport delivers the outcome for request index i and returns the next
// batch of children to request. The runner must deliver each index exactly
// once.
func (e *Exec) OnReport(i int, oc Outcome) []*Node {
	if i < 0 || i >= len(e.requested) {
		panic(fmt.Sprintf("program: OnReport index %d out of range", i))
	}
	if e.pending <= 0 {
		panic("program: OnReport with no pending requests")
	}
	e.outcomes[i] = oc
	e.pending--

	var batch []*Node
	if e.node.Mode == Seq && e.nextStatic < len(e.node.Children) {
		batch = append(batch, e.node.Children[e.nextStatic])
		e.nextStatic++
	}
	if e.node.OnOutcome != nil {
		batch = append(batch, e.node.OnOutcome(i, e.requested[i], oc)...)
	}
	e.admit(batch)
	return batch
}

// Ready reports whether every requested child has an outcome, i.e. the
// transaction may request commit (transaction well-formedness requires all
// reports before REQUEST_COMMIT).
func (e *Exec) Ready() bool { return e.started && e.pending == 0 }

// Value computes the REQUEST_COMMIT value. It panics unless Ready.
func (e *Exec) Value() spec.Value {
	if !e.Ready() {
		panic("program: Value before all children reported")
	}
	if e.node.Result == nil {
		return spec.Nil
	}
	return e.node.Result(e.outcomes)
}

// Validate checks static properties of a program tree: labels unique among
// static siblings, access nodes childless, composite leaves allowed.
func Validate(n *Node) error {
	if n.IsAccess {
		if len(n.Children) > 0 || n.OnOutcome != nil || n.Result != nil {
			return fmt.Errorf("program: access node %q has composite fields", n.Label)
		}
		return nil
	}
	seen := make(map[string]bool, len(n.Children))
	for _, c := range n.Children {
		if c.Label == "" {
			return fmt.Errorf("program: child of %q has empty label", n.Label)
		}
		if seen[c.Label] {
			return fmt.Errorf("program: duplicate child label %q under %q", c.Label, n.Label)
		}
		seen[c.Label] = true
		if err := Validate(c); err != nil {
			return err
		}
	}
	return nil
}

// CountNodes returns the number of nodes in the static tree (dynamic
// OnOutcome children are not counted).
func CountNodes(n *Node) int {
	total := 1
	for _, c := range n.Children {
		total += CountNodes(c)
	}
	return total
}
