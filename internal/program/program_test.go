package program

import (
	"testing"

	"nestedsg/internal/spec"
	"nestedsg/internal/tname"
)

func accessNode(label string) *Node {
	return Access(label, tname.ObjID(0), spec.Op{Kind: spec.OpRead})
}

func TestValidateAcceptsTree(t *testing.T) {
	n := SeqNode("t", accessNode("a"), ParNode("p", accessNode("b"), accessNode("c")))
	if err := Validate(n); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsDuplicateLabels(t *testing.T) {
	n := SeqNode("t", accessNode("a"), accessNode("a"))
	if err := Validate(n); err == nil {
		t.Fatal("duplicate labels must be rejected")
	}
}

func TestValidateRejectsEmptyLabel(t *testing.T) {
	n := SeqNode("t", accessNode(""))
	if err := Validate(n); err == nil {
		t.Fatal("empty label must be rejected")
	}
}

func TestValidateRejectsAccessWithChildren(t *testing.T) {
	bad := accessNode("a")
	bad.Children = []*Node{accessNode("b")}
	if err := Validate(SeqNode("t", bad)); err == nil {
		t.Fatal("access with children must be rejected")
	}
}

func TestNewExecPanicsOnAccess(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewExec(accessNode("a"))
}

func TestSeqIssuesOneAtATime(t *testing.T) {
	n := SeqNode("t", accessNode("a"), accessNode("b"), accessNode("c"))
	e := NewExec(n)
	batch := e.Start()
	if len(batch) != 1 || batch[0].Label != "a" {
		t.Fatalf("Start = %v", batch)
	}
	if e.Ready() {
		t.Fatal("not ready with pending child")
	}
	batch = e.OnReport(e.RequestIndex("a"), Outcome{Committed: true})
	if len(batch) != 1 || batch[0].Label != "b" {
		t.Fatalf("after a: %v", batch)
	}
	batch = e.OnReport(e.RequestIndex("b"), Outcome{Committed: false})
	if len(batch) != 1 || batch[0].Label != "c" {
		t.Fatalf("after b: %v", batch)
	}
	if e.Ready() {
		t.Fatal("c still pending")
	}
	if batch = e.OnReport(e.RequestIndex("c"), Outcome{Committed: true}); len(batch) != 0 {
		t.Fatalf("after c: %v", batch)
	}
	if !e.Ready() {
		t.Fatal("ready after all children reported")
	}
}

func TestParIssuesAllAtOnce(t *testing.T) {
	n := ParNode("t", accessNode("a"), accessNode("b"))
	e := NewExec(n)
	batch := e.Start()
	if len(batch) != 2 {
		t.Fatalf("Start = %v", batch)
	}
	// Reports may arrive in any order.
	e.OnReport(e.RequestIndex("b"), Outcome{Committed: true, Val: spec.Int(2)})
	if e.Ready() {
		t.Fatal("a pending")
	}
	e.OnReport(e.RequestIndex("a"), Outcome{Committed: true, Val: spec.Int(1)})
	if !e.Ready() {
		t.Fatal("ready")
	}
}

func TestEmptyCompositeImmediatelyReady(t *testing.T) {
	e := NewExec(SeqNode("t"))
	if batch := e.Start(); len(batch) != 0 {
		t.Fatal("no children to request")
	}
	if !e.Ready() {
		t.Fatal("empty composite is ready at once")
	}
	if v := e.Value(); v != spec.Nil {
		t.Errorf("default value = %s", v)
	}
}

func TestResultAggregatesOutcomes(t *testing.T) {
	n := ParNode("t", accessNode("a"), accessNode("b"))
	n.Result = func(ocs []Outcome) spec.Value {
		var sum int64
		for _, oc := range ocs {
			if oc.Committed {
				sum += oc.Val.Int
			}
		}
		return spec.Int(sum)
	}
	e := NewExec(n)
	e.Start()
	e.OnReport(0, Outcome{Committed: true, Val: spec.Int(3)})
	e.OnReport(1, Outcome{Committed: false, Val: spec.Int(100)})
	if v := e.Value(); v != spec.Int(3) {
		t.Errorf("value = %s", v)
	}
}

func TestOnOutcomeDynamicChildren(t *testing.T) {
	retry := accessNode("a~r")
	n := SeqNode("t", accessNode("a"))
	n.OnOutcome = func(i int, child *Node, oc Outcome) []*Node {
		if !oc.Committed && child.Label == "a" {
			return []*Node{retry}
		}
		return nil
	}
	e := NewExec(n)
	e.Start()
	batch := e.OnReport(0, Outcome{Committed: false})
	if len(batch) != 1 || batch[0] != retry {
		t.Fatalf("expected retry, got %v", batch)
	}
	if e.Ready() {
		t.Fatal("retry pending")
	}
	e.OnReport(e.RequestIndex("a~r"), Outcome{Committed: true})
	if !e.Ready() {
		t.Fatal("ready after retry")
	}
	if got := len(e.Requested()); got != 2 {
		t.Errorf("requested = %d", got)
	}
}

func TestExecPanics(t *testing.T) {
	e := NewExec(SeqNode("t", accessNode("a")))
	e.Start()
	assertPanics(t, "double start", func() { e.Start() })
	assertPanics(t, "bad index", func() { e.OnReport(7, Outcome{}) })
	assertPanics(t, "value before ready", func() { e.Value() })
	e.OnReport(0, Outcome{Committed: true})
	assertPanics(t, "report with none pending", func() { e.OnReport(0, Outcome{}) })
}

func assertPanics(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	f()
}

func TestRequestIndexUnknownLabel(t *testing.T) {
	e := NewExec(SeqNode("t", accessNode("a")))
	e.Start()
	if i := e.RequestIndex("zz"); i != -1 {
		t.Errorf("RequestIndex(zz) = %d", i)
	}
}

func TestCountNodes(t *testing.T) {
	n := SeqNode("t", accessNode("a"), ParNode("p", accessNode("b"), accessNode("c")))
	if got := CountNodes(n); got != 5 {
		t.Errorf("CountNodes = %d, want 5", got)
	}
}
