package tname

import (
	"math/rand"
	"testing"
	"testing/quick"

	"nestedsg/internal/spec"
)

// buildSample interns a small fixed tree:
//
//	T0
//	├── a        (composite)
//	│   ├── a1   (composite)
//	│   │   └── r (access: read x)
//	│   └── a2   (access: write x)
//	└── b        (composite)
//	    └── b1   (access: read y)
func buildSample(t *testing.T) (*Tree, map[string]TxID, map[string]ObjID) {
	t.Helper()
	tr := NewTree()
	x := tr.AddObject("x", spec.Register{})
	y := tr.AddObject("y", spec.Register{})
	a := tr.Child(Root, "a")
	a1 := tr.Child(a, "a1")
	r := tr.Access(a1, "r", x, spec.Op{Kind: spec.OpRead})
	a2 := tr.Access(a, "a2", x, spec.Op{Kind: spec.OpWrite, Arg: spec.Int(7)})
	b := tr.Child(Root, "b")
	b1 := tr.Access(b, "b1", y, spec.Op{Kind: spec.OpRead})
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	return tr,
		map[string]TxID{"a": a, "a1": a1, "r": r, "a2": a2, "b": b, "b1": b1},
		map[string]ObjID{"x": x, "y": y}
}

func TestRootProperties(t *testing.T) {
	tr := NewTree()
	if tr.Parent(Root) != None {
		t.Error("T0 must have no parent")
	}
	if tr.Depth(Root) != 0 {
		t.Error("T0 must have depth 0")
	}
	if tr.IsAccess(Root) {
		t.Error("T0 must not be an access")
	}
	if got := tr.Name(Root); got != "T0" {
		t.Errorf("Name(T0) = %q", got)
	}
	if tr.NumTx() != 1 {
		t.Errorf("fresh tree has %d names", tr.NumTx())
	}
}

func TestInterningIsIdempotent(t *testing.T) {
	tr, ids, objs := buildSample(t)
	if got := tr.Child(Root, "a"); got != ids["a"] {
		t.Errorf("re-interning a gave %d, want %d", got, ids["a"])
	}
	if got := tr.Access(ids["a"], "a2", objs["x"], spec.Op{Kind: spec.OpWrite, Arg: spec.Int(7)}); got != ids["a2"] {
		t.Errorf("re-interning a2 gave %d, want %d", got, ids["a2"])
	}
	n := tr.NumTx()
	tr.Child(Root, "a")
	if tr.NumTx() != n {
		t.Error("idempotent interning must not grow the tree")
	}
}

func TestInterningConflictsPanic(t *testing.T) {
	tr, ids, objs := buildSample(t)
	assertPanics(t, "access metadata change", func() {
		tr.Access(ids["a"], "a2", objs["x"], spec.Op{Kind: spec.OpWrite, Arg: spec.Int(8)})
	})
	assertPanics(t, "child of access", func() {
		tr.Child(ids["a2"], "sub")
	})
	assertPanics(t, "access with unknown object", func() {
		tr.Access(ids["a"], "zz", ObjID(99), spec.Op{Kind: spec.OpRead})
	})
}

func assertPanics(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	f()
}

func TestAncestry(t *testing.T) {
	tr, ids, _ := buildSample(t)
	cases := []struct {
		anc, desc string
		want      bool
	}{
		{"a", "r", true},
		{"a1", "r", true},
		{"r", "r", true}, // a transaction is its own ancestor
		{"a", "a", true},
		{"r", "a", false},
		{"a", "b1", false},
		{"b", "r", false},
	}
	for _, c := range cases {
		if got := tr.IsAncestor(ids[c.anc], ids[c.desc]); got != c.want {
			t.Errorf("IsAncestor(%s, %s) = %v, want %v", c.anc, c.desc, got, c.want)
		}
	}
	for name, id := range ids {
		if !tr.IsAncestor(Root, id) {
			t.Errorf("T0 must be an ancestor of %s", name)
		}
		if !tr.IsDescendant(id, Root) {
			t.Errorf("%s must be a descendant of T0", name)
		}
	}
}

func TestLCA(t *testing.T) {
	tr, ids, _ := buildSample(t)
	cases := []struct{ a, b, want string }{
		{"r", "a2", "a"},
		{"r", "b1", ""},
		{"a1", "a2", "a"},
		{"r", "r", "r"},
		{"a", "r", "a"},
	}
	for _, c := range cases {
		want := Root
		if c.want != "" {
			want = ids[c.want]
		}
		if c.a == c.want {
			want = ids[c.a]
		}
		if got := tr.LCA(ids[c.a], ids[c.b]); got != want {
			t.Errorf("LCA(%s, %s) = %s, want %s", c.a, c.b, tr.Name(got), tr.Name(want))
		}
	}
}

func TestChildAncestor(t *testing.T) {
	tr, ids, _ := buildSample(t)
	if got := tr.ChildAncestor(Root, ids["r"]); got != ids["a"] {
		t.Errorf("ChildAncestor(T0, r) = %s", tr.Name(got))
	}
	if got := tr.ChildAncestor(ids["a"], ids["r"]); got != ids["a1"] {
		t.Errorf("ChildAncestor(a, r) = %s", tr.Name(got))
	}
	assertPanics(t, "non-ancestor", func() { tr.ChildAncestor(ids["b"], ids["r"]) })
	assertPanics(t, "equal names", func() { tr.ChildAncestor(ids["r"], ids["r"]) })
}

func TestAncestors(t *testing.T) {
	tr, ids, _ := buildSample(t)
	anc := tr.Ancestors(ids["r"])
	want := []TxID{ids["r"], ids["a1"], ids["a"], Root}
	if len(anc) != len(want) {
		t.Fatalf("Ancestors(r) = %v", anc)
	}
	for i := range want {
		if anc[i] != want[i] {
			t.Fatalf("Ancestors(r)[%d] = %s, want %s", i, tr.Name(anc[i]), tr.Name(want[i]))
		}
	}
}

func TestAccessMetadata(t *testing.T) {
	tr, ids, objs := buildSample(t)
	if !tr.IsAccess(ids["a2"]) || tr.IsAccess(ids["a"]) {
		t.Fatal("access classification wrong")
	}
	if tr.AccessObject(ids["a2"]) != objs["x"] {
		t.Error("a2 accesses x")
	}
	if tr.AccessObject(ids["a"]) != NoObj {
		t.Error("composite must report NoObj")
	}
	op := tr.AccessOp(ids["a2"])
	if op.Kind != spec.OpWrite || op.Arg != spec.Int(7) {
		t.Errorf("AccessOp(a2) = %v", op)
	}
	assertPanics(t, "AccessOp on composite", func() { tr.AccessOp(ids["a"]) })
}

func TestObjects(t *testing.T) {
	tr, _, objs := buildSample(t)
	if tr.NumObjects() != 2 {
		t.Fatalf("NumObjects = %d", tr.NumObjects())
	}
	if tr.Object("x") != objs["x"] || tr.Object("nope") != NoObj {
		t.Error("Object lookup wrong")
	}
	if tr.ObjectLabel(objs["y"]) != "y" {
		t.Error("ObjectLabel wrong")
	}
	if tr.Spec(objs["x"]).Name() != "register" {
		t.Error("Spec wrong")
	}
	if got := tr.AddObject("x", spec.Register{}); got != objs["x"] {
		t.Error("re-adding object must return the same ID")
	}
	assertPanics(t, "respec object", func() { tr.AddObject("x", spec.Counter{}) })
}

func TestChildrenOrder(t *testing.T) {
	tr, ids, _ := buildSample(t)
	kids := tr.Children(Root)
	if len(kids) != 2 || kids[0] != ids["a"] || kids[1] != ids["b"] {
		t.Errorf("Children(T0) = %v", kids)
	}
}

func TestNameRendering(t *testing.T) {
	tr, ids, _ := buildSample(t)
	if got := tr.Name(ids["a1"]); got != "T0/a/a1" {
		t.Errorf("Name(a1) = %q", got)
	}
	if got := tr.Name(None); got != "<none>" {
		t.Errorf("Name(None) = %q", got)
	}
	// Access names embed object and operation.
	got := tr.Name(ids["b1"])
	if got != "T0/b/b1[y read]" {
		t.Errorf("Name(b1) = %q", got)
	}
}

// randomTree interns a pseudo-random tree and returns all names.
func randomTree(seed int64, n int) (*Tree, []TxID) {
	tr := NewTree()
	x := tr.AddObject("x", spec.Register{})
	rng := rand.New(rand.NewSource(seed))
	names := []TxID{Root}
	for i := 0; i < n; i++ {
		parent := names[rng.Intn(len(names))]
		if tr.IsAccess(parent) {
			continue
		}
		var id TxID
		if rng.Intn(4) == 0 {
			id = tr.Access(parent, label(i), x, spec.Op{Kind: spec.OpRead})
		} else {
			id = tr.Child(parent, label(i))
		}
		names = append(names, id)
	}
	return tr, names
}

func label(i int) string {
	return "n" + string(rune('A'+i%26)) + string(rune('0'+i/26%10)) + string(rune('a'+i/260%26))
}

// TestLCAProperties checks algebraic properties of LCA/ancestry on random
// trees: symmetry, idempotence, and that LCA is the deepest common
// ancestor.
func TestLCAProperties(t *testing.T) {
	f := func(seed int64) bool {
		tr, names := randomTree(seed, 60)
		rng := rand.New(rand.NewSource(seed ^ 0x5f5f))
		for k := 0; k < 200; k++ {
			a := names[rng.Intn(len(names))]
			b := names[rng.Intn(len(names))]
			l := tr.LCA(a, b)
			if l != tr.LCA(b, a) {
				return false
			}
			if !tr.IsAncestor(l, a) || !tr.IsAncestor(l, b) {
				return false
			}
			// No child of l that is an ancestor of both.
			for _, c := range tr.Children(l) {
				if tr.IsAncestor(c, a) && tr.IsAncestor(c, b) {
					return false
				}
			}
			if tr.LCA(a, a) != a {
				return false
			}
		}
		return tr.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestAncestryViaAncestors cross-checks IsAncestor against the explicit
// ancestor list.
func TestAncestryViaAncestors(t *testing.T) {
	f := func(seed int64) bool {
		tr, names := randomTree(seed, 40)
		rng := rand.New(rand.NewSource(seed ^ 0x1234))
		for k := 0; k < 100; k++ {
			a := names[rng.Intn(len(names))]
			b := names[rng.Intn(len(names))]
			inList := false
			for _, u := range tr.Ancestors(b) {
				if u == a {
					inList = true
					break
				}
			}
			if tr.IsAncestor(a, b) != inList {
				return false
			}
			if tr.IsOrdered(a, b) != (tr.IsAncestor(a, b) || tr.IsAncestor(b, a)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
