// Package tname implements the system type of Fekete, Lynch & Weihl (1990):
// the tree of transaction names, rooted at T0, whose leaves below the root
// may be designated as accesses to named objects.
//
// The paper treats the name tree as infinite and "known in advance by all
// components of a system"; we realize it lazily, interning each name the
// first time a component mentions it. Interned names are small integer IDs
// (TxID), so ancestor/descendant/lca queries are cheap pointer-free walks.
package tname

import (
	"fmt"
	"strings"

	"nestedsg/internal/spec"
)

// TxID identifies an interned transaction name. The root T0 is always ID 0.
// The zero value therefore denotes T0; callers that need "no transaction"
// should use None.
type TxID int32

// None is a sentinel TxID meaning "no transaction". It is never a valid name.
const None TxID = -1

// Root is the transaction name T0, the "mythical" root of the transaction
// tree that models the environment of the system.
const Root TxID = 0

// ObjID identifies an interned object name X.
type ObjID int32

// NoObj is a sentinel ObjID meaning "no object".
const NoObj ObjID = -1

// node is the interned record for one transaction name.
type node struct {
	parent TxID
	depth  int32 // depth of T0 is 0
	label  string
	// Access metadata; obj == NoObj for non-access names.
	obj ObjID
	op  spec.Op
}

// object is the interned record for one object name.
type object struct {
	label string
	sp    spec.Spec
}

// Tree is a system type: the set of interned transaction names organized
// into a tree by parent, together with the set of object names and, for each
// access name, the object it accesses and the operation it performs.
//
// A Tree is not safe for concurrent mutation; the runners in this module
// intern all names they need before or while holding their own locks.
type Tree struct {
	nodes   []node
	objects []object
	// children holds the interned children of each name in creation order;
	// used by pretty-printers and generators, not by the checkers.
	children [][]TxID
	// byLabel resolves "parentID/label" for idempotent interning.
	byLabel    map[childKey]TxID
	objByLabel map[string]ObjID
}

type childKey struct {
	parent TxID
	label  string
}

// NewTree returns a system type containing only T0 and no objects.
func NewTree() *Tree {
	t := &Tree{
		byLabel:    make(map[childKey]TxID),
		objByLabel: make(map[string]ObjID),
	}
	t.nodes = append(t.nodes, node{parent: None, depth: 0, label: "T0", obj: NoObj})
	t.children = append(t.children, nil)
	return t
}

// NumTx reports how many transaction names have been interned.
func (t *Tree) NumTx() int { return len(t.nodes) }

// NumObjects reports how many object names have been interned.
func (t *Tree) NumObjects() int { return len(t.objects) }

// AddObject interns an object name with the given serial specification.
// Interning the same label twice returns the original ID; the specification
// must match.
func (t *Tree) AddObject(label string, sp spec.Spec) ObjID {
	if id, ok := t.objByLabel[label]; ok {
		if t.objects[id].sp.Name() != sp.Name() {
			panic(fmt.Sprintf("tname: object %q re-interned with different spec %q (was %q)",
				label, sp.Name(), t.objects[id].sp.Name()))
		}
		return id
	}
	id := ObjID(len(t.objects))
	t.objects = append(t.objects, object{label: label, sp: sp})
	t.objByLabel[label] = id
	return id
}

// Object returns the interned ID for an object label, or NoObj.
func (t *Tree) Object(label string) ObjID {
	if id, ok := t.objByLabel[label]; ok {
		return id
	}
	return NoObj
}

// ObjectLabel returns the label an object was interned under.
func (t *Tree) ObjectLabel(x ObjID) string { return t.objects[x].label }

// Spec returns the serial specification of object x.
func (t *Tree) Spec(x ObjID) spec.Spec { return t.objects[x].sp }

// Child interns (or resolves) the non-access child of parent with the given
// label. It panics if parent is an access: accesses are leaves.
func (t *Tree) Child(parent TxID, label string) TxID {
	return t.intern(parent, label, NoObj, spec.Op{})
}

// Access interns (or resolves) an access child of parent: a leaf that
// performs op on object x. The paper regards all parameters of an access as
// encoded in its name, so (x, op) is part of the identity of the name.
func (t *Tree) Access(parent TxID, label string, x ObjID, op spec.Op) TxID {
	if x < 0 || int(x) >= len(t.objects) {
		panic(fmt.Sprintf("tname: access %q to unknown object %d", label, x))
	}
	id := t.intern(parent, label, x, op)
	return id
}

func (t *Tree) intern(parent TxID, label string, x ObjID, op spec.Op) TxID {
	if t.IsAccess(parent) {
		panic(fmt.Sprintf("tname: %s is an access and cannot have children", t.Name(parent)))
	}
	key := childKey{parent, label}
	if id, ok := t.byLabel[key]; ok {
		n := t.nodes[id]
		if n.obj != x || n.op != op {
			panic(fmt.Sprintf("tname: name %s re-interned with different access metadata", t.Name(id)))
		}
		return id
	}
	id := TxID(len(t.nodes))
	t.nodes = append(t.nodes, node{parent: parent, depth: t.nodes[parent].depth + 1, label: label, obj: x, op: op})
	t.children = append(t.children, nil)
	t.children[parent] = append(t.children[parent], id)
	t.byLabel[key] = id
	return id
}

// Parent returns the parent of tx, or None for T0.
func (t *Tree) Parent(tx TxID) TxID { return t.nodes[tx].parent }

// Depth returns the depth of tx (T0 has depth 0).
func (t *Tree) Depth(tx TxID) int { return int(t.nodes[tx].depth) }

// Label returns the local label tx was interned under.
func (t *Tree) Label(tx TxID) string { return t.nodes[tx].label }

// Children returns the children of tx interned so far, in creation order.
// The returned slice is owned by the tree and must not be mutated.
func (t *Tree) Children(tx TxID) []TxID { return t.children[tx] }

// IsAccess reports whether tx is an access (a leaf that operates on data).
func (t *Tree) IsAccess(tx TxID) bool { return t.nodes[tx].obj != NoObj }

// AccessObject returns the object accessed by tx, or NoObj if tx is not an
// access.
func (t *Tree) AccessObject(tx TxID) ObjID { return t.nodes[tx].obj }

// AccessOp returns the operation performed by access tx. It panics if tx is
// not an access.
func (t *Tree) AccessOp(tx TxID) spec.Op {
	if !t.IsAccess(tx) {
		panic(fmt.Sprintf("tname: %s is not an access", t.Name(tx)))
	}
	return t.nodes[tx].op
}

// IsAncestor reports whether a is an ancestor of b. Following the paper, a
// transaction is an ancestor (and descendant) of itself.
func (t *Tree) IsAncestor(a, b TxID) bool {
	da, db := t.nodes[a].depth, t.nodes[b].depth
	if da > db {
		return false
	}
	for db > da {
		b = t.nodes[b].parent
		db--
	}
	return a == b
}

// IsDescendant reports whether a is a descendant of b.
func (t *Tree) IsDescendant(a, b TxID) bool { return t.IsAncestor(b, a) }

// IsOrdered reports whether a and b lie on a common root-to-leaf path, i.e.
// one is an ancestor of the other.
func (t *Tree) IsOrdered(a, b TxID) bool {
	return t.IsAncestor(a, b) || t.IsAncestor(b, a)
}

// LCA returns the least common ancestor of a and b.
func (t *Tree) LCA(a, b TxID) TxID {
	da, db := t.nodes[a].depth, t.nodes[b].depth
	for da > db {
		a = t.nodes[a].parent
		da--
	}
	for db > da {
		b = t.nodes[b].parent
		db--
	}
	for a != b {
		a = t.nodes[a].parent
		b = t.nodes[b].parent
	}
	return a
}

// ChildAncestor returns the child of anc that is an ancestor of desc.
// It panics unless anc is a proper ancestor of desc.
func (t *Tree) ChildAncestor(anc, desc TxID) TxID {
	dAnc, d := t.nodes[anc].depth, t.nodes[desc].depth
	if d <= dAnc {
		panic("tname: ChildAncestor requires a proper ancestor")
	}
	for d > dAnc+1 {
		desc = t.nodes[desc].parent
		d--
	}
	if t.nodes[desc].parent != anc {
		panic("tname: ChildAncestor: not an ancestor")
	}
	return desc
}

// Ancestors returns the ancestors of tx from tx up to and including T0.
func (t *Tree) Ancestors(tx TxID) []TxID {
	out := make([]TxID, 0, t.nodes[tx].depth+1)
	for u := tx; u != None; u = t.nodes[u].parent {
		out = append(out, u)
	}
	return out
}

// Name returns the fully qualified, slash-separated name of tx, e.g.
// "T0/1/2.read(x)".
func (t *Tree) Name(tx TxID) string {
	if tx == None {
		return "<none>"
	}
	var parts []string
	for u := tx; u != None; u = t.nodes[u].parent {
		parts = append(parts, t.nodes[u].label)
	}
	for i, j := 0, len(parts)-1; i < j; i, j = i+1, j-1 {
		parts[i], parts[j] = parts[j], parts[i]
	}
	s := strings.Join(parts, "/")
	if t.IsAccess(tx) {
		s += fmt.Sprintf("[%s %s]", t.objects[t.nodes[tx].obj].label, t.nodes[tx].op)
	}
	return s
}

// Validate checks internal invariants of the tree; it is used by tests.
func (t *Tree) Validate() error {
	if len(t.nodes) == 0 || t.nodes[0].parent != None || t.nodes[0].depth != 0 {
		return fmt.Errorf("tname: malformed root")
	}
	for id := 1; id < len(t.nodes); id++ {
		n := t.nodes[id]
		if n.parent < 0 || int(n.parent) >= len(t.nodes) {
			return fmt.Errorf("tname: node %d has out-of-range parent %d", id, n.parent)
		}
		if n.parent >= TxID(id) {
			return fmt.Errorf("tname: node %d has non-topological parent %d", id, n.parent)
		}
		if n.depth != t.nodes[n.parent].depth+1 {
			return fmt.Errorf("tname: node %d has wrong depth", id)
		}
		if t.nodes[n.parent].obj != NoObj {
			return fmt.Errorf("tname: node %d is a child of an access", id)
		}
		if n.obj != NoObj && int(n.obj) >= len(t.objects) {
			return fmt.Errorf("tname: node %d accesses unknown object %d", id, n.obj)
		}
	}
	return nil
}
