package server

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"nestedsg/internal/event"
)

// The write-ahead log is a sequence of segment files, each
//
//	"NSGW" | version uvarint | record*
//
// where a record is
//
//	payload-length uvarint | payload | crc32(payload) LE32
//
// and payloads are the WAL record codec of internal/event (WalObjectDef /
// WalTxDef / WalEvents). Two invariants make recovery simple:
//
//   - a segment is synced before the next one is created (rotation syncs),
//     so after a crash only the LAST segment can hold a torn tail;
//   - every atomic append the server makes is one WalEvents record, so a
//     valid record prefix of the WAL is a prefix of atomic appends.
//
// Recovery (scanWAL) therefore reads segments in order, stops at the first
// invalid byte of the last segment (truncating the torn tail so the next
// recovery sees a clean log), and treats an invalid byte in any earlier
// segment as corruption to be rejected, not repaired.

var walMagic = [4]byte{'N', 'S', 'G', 'W'}

const (
	walVersion = 1
	// maxWalRecord bounds a single record payload, matching the trace
	// codec's string bound: anything larger is corruption.
	maxWalRecord = 1 << 20
	// defaultSegmentBytes rotates segments at 1 MiB.
	defaultSegmentBytes = 1 << 20
)

// SegmentFile is one open WAL segment.
type SegmentFile interface {
	io.Writer
	// Sync makes everything written so far durable.
	Sync() error
	Close() error
}

// Disk is the storage a WAL lives on. DirDisk backs it with a directory of
// real files; MemDisk is an in-memory implementation whose sync/crash
// semantics the simulator controls.
type Disk interface {
	// Segments lists existing segment names in ascending order.
	Segments() ([]string, error)
	// ReadSegment returns a segment's full contents.
	ReadSegment(name string) ([]byte, error)
	// Create creates (or truncates) a segment for writing.
	Create(name string) (SegmentFile, error)
	// Truncate shortens an existing segment to size bytes.
	Truncate(name string, size int64) error
}

func segmentName(index int) string { return fmt.Sprintf("wal-%08d.seg", index) }

// segmentIndex parses the index out of a segment name; ok=false for
// foreign files.
func segmentIndex(name string) (int, bool) {
	var n int
	if _, err := fmt.Sscanf(name, "wal-%08d.seg", &n); err != nil {
		return 0, false
	}
	if segmentName(n) != name {
		return 0, false
	}
	return n, true
}

// DirDisk stores segments as files in a directory. Create and Truncate
// fsync the directory (and Truncate the file) so segment metadata survives
// an OS crash — the rotation invariant "only the last segment can be torn"
// needs a synced segment's directory entry to be durable too.
type DirDisk struct{ dir string }

// NewDirDisk creates the directory if needed and returns a Disk over it.
func NewDirDisk(dir string) (*DirDisk, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &DirDisk{dir: dir}, nil
}

// Dir returns the backing directory.
func (d *DirDisk) Dir() string { return d.dir }

func (d *DirDisk) Segments() ([]string, error) {
	ents, err := os.ReadDir(d.dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		if !e.IsDir() {
			if _, ok := segmentIndex(e.Name()); ok {
				names = append(names, e.Name())
			}
		}
	}
	sort.Strings(names)
	return names, nil
}

func (d *DirDisk) ReadSegment(name string) ([]byte, error) {
	return os.ReadFile(filepath.Join(d.dir, name))
}

func (d *DirDisk) Create(name string) (SegmentFile, error) {
	f, err := os.Create(filepath.Join(d.dir, name))
	if err != nil {
		return nil, err
	}
	if err := d.syncDir(); err != nil {
		return nil, errors.Join(err, f.Close())
	}
	return f, nil
}

func (d *DirDisk) Truncate(name string, size int64) error {
	path := filepath.Join(d.dir, name)
	if err := os.Truncate(path, size); err != nil {
		return err
	}
	f, err := os.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		return err
	}
	serr := f.Sync()
	if cerr := f.Close(); serr == nil {
		serr = cerr
	}
	if serr != nil {
		return serr
	}
	return d.syncDir()
}

// syncDir fsyncs the directory itself, making entry creation and the
// latest truncation durable across an OS crash.
func (d *DirDisk) syncDir() error {
	f, err := os.Open(d.dir)
	if err != nil {
		return err
	}
	serr := f.Sync()
	if cerr := f.Close(); serr == nil {
		serr = cerr
	}
	return serr
}

// MemDisk is an in-memory Disk that models the durability boundary: bytes
// written but not yet synced are lost by Crash. The simulator freezes the
// live disk at a crash point and recovers the server from the crash copy,
// optionally keeping a seed-chosen prefix of the unsynced tail to model a
// torn write.
type MemDisk struct {
	mu     sync.Mutex
	segs   map[string]*memSegment //sgvet:guardedby mu
	frozen bool                   //sgvet:guardedby mu
}

type memSegment struct {
	data   []byte
	synced int // bytes made durable by Sync
}

// NewMemDisk returns an empty in-memory disk.
func NewMemDisk() *MemDisk { return &MemDisk{segs: make(map[string]*memSegment)} }

func (d *MemDisk) Segments() ([]string, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	names := make([]string, 0, len(d.segs))
	for n := range d.segs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names, nil
}

func (d *MemDisk) ReadSegment(name string) ([]byte, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	s, ok := d.segs[name]
	if !ok {
		return nil, fmt.Errorf("memdisk: no segment %q", name)
	}
	return append([]byte(nil), s.data...), nil
}

func (d *MemDisk) Create(name string) (SegmentFile, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	s := &memSegment{}
	if !d.frozen {
		// A dying server may still rotate after Freeze; hand it a detached
		// segment so the pinned crash-point state is never mutated (nor an
		// existing segment clobbered by a colliding name).
		d.segs[name] = s
	}
	return &memFile{d: d, s: s}, nil
}

func (d *MemDisk) Truncate(name string, size int64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.frozen {
		return nil
	}
	s, ok := d.segs[name]
	if !ok {
		return fmt.Errorf("memdisk: no segment %q", name)
	}
	if size < 0 || size > int64(len(s.data)) {
		return fmt.Errorf("memdisk: truncate %q to %d out of range", name, size)
	}
	s.data = s.data[:size]
	if s.synced > int(size) {
		s.synced = int(size)
	}
	return nil
}

// Freeze makes every subsequent write and sync a silent no-op: the disk
// state is pinned at the crash point while the dying server's goroutines
// finish. The frozen contents stay readable.
func (d *MemDisk) Freeze() {
	d.mu.Lock()
	d.frozen = true
	d.mu.Unlock()
}

// SetSegment installs raw segment bytes (fully synced); the fuzzer and
// tests use it to plant arbitrary WAL images.
func (d *MemDisk) SetSegment(name string, data []byte) {
	d.mu.Lock()
	d.segs[name] = &memSegment{data: append([]byte(nil), data...), synced: len(data)}
	d.mu.Unlock()
}

// Crash returns the disk a process crash would leave behind: every segment
// keeps its synced prefix, and the segment with unsynced bytes (only the
// last can have any, by the rotation invariant) additionally keeps
// keepTail bytes of its unsynced tail to model a torn in-flight write.
func (d *MemDisk) Crash(keepTail int) *MemDisk {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := &MemDisk{segs: make(map[string]*memSegment)}
	for n, s := range d.segs {
		keep := s.synced + keepTail
		if keep > len(s.data) {
			keep = len(s.data)
		}
		out.segs[n] = &memSegment{data: append([]byte(nil), s.data[:keep]...), synced: keep}
	}
	return out
}

// UnsyncedBytes reports how many written bytes are not yet durable, i.e.
// the maximum useful keepTail for Crash.
func (d *MemDisk) UnsyncedBytes() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := 0
	for _, s := range d.segs {
		n += len(s.data) - s.synced
	}
	return n
}

type memFile struct {
	d *MemDisk
	s *memSegment
}

func (f *memFile) Write(p []byte) (int, error) {
	f.d.mu.Lock()
	defer f.d.mu.Unlock()
	if !f.d.frozen {
		f.s.data = append(f.s.data, p...)
	}
	return len(p), nil
}

func (f *memFile) Sync() error {
	f.d.mu.Lock()
	defer f.d.mu.Unlock()
	if !f.d.frozen {
		f.s.synced = len(f.s.data)
	}
	return nil
}

func (f *memFile) Close() error { return nil }

// walWriter appends framed records to the current segment, rotating (and
// syncing) when it grows past segMax. Callers serialize access: the event
// log writes event records under its own mutex, definition records are
// written under the server's tree write lock, and both locks are ordered
// before wmu.
type walWriter struct {
	mu      sync.Mutex
	disk    Disk
	cur     SegmentFile //sgvet:guardedby mu
	curName string      //sgvet:guardedby mu
	curSize int         //sgvet:guardedby mu
	nextIdx int         //sgvet:guardedby mu
	segMax  int
	scratch []byte //sgvet:guardedby mu
	// err is sticky: the first write/sync failure, surfaced on every
	// later call.
	err error //sgvet:guardedby mu
	// syncMu serializes sync callers; the fsync itself runs with mu
	// RELEASED so appends never stall behind the disk (see sync).
	syncMu sync.Mutex
}

func newWalWriter(disk Disk, segMax, firstIndex int) (*walWriter, error) {
	if segMax <= 0 {
		segMax = defaultSegmentBytes
	}
	w := &walWriter{disk: disk, segMax: segMax, nextIdx: firstIndex}
	if err := w.rotate(); err != nil {
		return nil, err
	}
	return w, nil
}

// rotate seals the current segment and opens the next. appendRecord calls
// it with w.mu held; newWalWriter calls it on a writer no other goroutine
// can see yet, which satisfies the same exclusion.
//
//sgvet:holds w.mu
func (w *walWriter) rotate() error {
	if w.cur != nil {
		if err := w.cur.Sync(); err != nil {
			return err
		}
		if err := w.cur.Close(); err != nil {
			return err
		}
	}
	name := segmentName(w.nextIdx)
	f, err := w.disk.Create(name)
	if err != nil {
		return err
	}
	hdr := append([]byte(nil), walMagic[:]...)
	hdr = binary.AppendUvarint(hdr, walVersion)
	if _, err := f.Write(hdr); err != nil {
		return errors.Join(err, f.Close())
	}
	w.cur, w.curName, w.curSize = f, name, len(hdr)
	w.nextIdx++
	return nil
}

// appendRecord frames and writes one payload. Errors are sticky; the
// server surfaces them rather than silently dropping durability.
func (w *walWriter) appendRecord(payload []byte) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	w.scratch = binary.AppendUvarint(w.scratch[:0], uint64(len(payload)))
	w.scratch = append(w.scratch, payload...)
	w.scratch = binary.LittleEndian.AppendUint32(w.scratch, crc32.ChecksumIEEE(payload))
	if w.curSize > len(walMagic)+1 && w.curSize+len(w.scratch) > w.segMax {
		if err := w.rotate(); err != nil {
			w.err = err
			return err
		}
	}
	if _, err := w.cur.Write(w.scratch); err != nil {
		w.err = err
		return err
	}
	w.curSize += len(w.scratch)
	return nil
}

// sync makes everything appended so far durable.
// sync makes every record appended before the call durable. The fsync runs
// with w.mu RELEASED: the append path holds the event-log mutex while it
// writes records, so an fsync that held w.mu would stall every session —
// and in particular would keep concurrent committers from ever reaching
// the group committer, defeating the coalescing entirely. syncMu
// serializes syncers (the group committer admits one leader at a time
// anyway; recovery syncs single-threaded).
//
// If the segment is rotated away while the fsync is in flight, rotation
// has already synced it before closing, so every record this call must
// cover is durable and a racing fsync error on the closed file is not a
// durability failure.
func (w *walWriter) sync() error {
	w.syncMu.Lock()
	defer w.syncMu.Unlock()
	w.mu.Lock()
	if err := w.err; err != nil {
		w.mu.Unlock()
		return err
	}
	cur := w.cur
	w.mu.Unlock()
	if cur == nil {
		// Closed cleanly; close already synced everything.
		return nil
	}
	err := cur.Sync()
	w.mu.Lock()
	defer w.mu.Unlock()
	if err != nil {
		if w.cur != cur {
			// Rotated (or closed) mid-fsync: the records are durable.
			return w.err
		}
		if w.err == nil {
			w.err = err
		}
		return err
	}
	return nil
}

// stickyErr reports the writer's first failure, if any, without issuing
// any I/O.
func (w *walWriter) stickyErr() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

// closeNoSync closes the current segment without a final sync — the crash
// path, where pretending the tail became durable would be a lie.
func (w *walWriter) closeNoSync() {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.cur != nil {
		w.cur.Close() //sgvet:ignore[checkederr] crash path: the close error is moot once the tail is deliberately not synced
		w.cur = nil
	}
}

func (w *walWriter) close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.cur == nil {
		return w.err
	}
	serr := w.cur.Sync()
	cerr := w.cur.Close()
	w.cur = nil
	if w.err == nil {
		if serr != nil {
			w.err = serr
		} else if cerr != nil {
			w.err = cerr
		}
	}
	return w.err
}

// walScan is the result of reading a WAL off a Disk.
type walScan struct {
	ops      []event.WalOp // decoded records, in WAL order
	records  int
	segments int
	// nextIdx is the segment index a writer resuming this WAL must use.
	nextIdx int
	// tornSegment/tornBytes report a truncated torn tail (last segment
	// only); tornBytes is 0 when the WAL ended cleanly.
	tornSegment string
	tornBytes   int64
}

// errWalCorrupt marks corruption outside the repairable torn tail.
var errWalCorrupt = errors.New("wal: corrupt")

// scanWAL reads every segment in order, decoding and validating records
// against running (numTx, numObjects) counts. An invalid suffix of the
// last segment is a torn tail: it is physically truncated away and the
// scan succeeds with what precedes it. Invalid bytes anywhere else mean
// the WAL is corrupt and recovery must refuse.
func scanWAL(disk Disk) (*walScan, error) {
	names, err := disk.Segments()
	if err != nil {
		return nil, fmt.Errorf("wal: listing segments: %w", err)
	}
	res := &walScan{nextIdx: 1, segments: len(names)}
	numTx, numObj := 1, 0 // the root T0 always exists
	prevIdx := -1
	for si, name := range names {
		idx, ok := segmentIndex(name)
		if !ok {
			return nil, fmt.Errorf("%w: unexpected file %q", errWalCorrupt, name)
		}
		// Segment indices must be contiguous (any start index is fine): a
		// hole means a whole segment of records vanished, which is
		// corruption, not something to silently skip over.
		if prevIdx >= 0 && idx != prevIdx+1 {
			return nil, fmt.Errorf("%w: segment hole: %s follows %s", errWalCorrupt, name, segmentName(prevIdx))
		}
		prevIdx = idx
		last := si == len(names)-1
		data, err := disk.ReadSegment(name)
		if err != nil {
			return nil, fmt.Errorf("wal: reading %s: %w", name, err)
		}
		validTo, serr := scanSegment(data, &res.ops, &numTx, &numObj, &res.records)
		if serr != nil {
			if !last {
				return nil, fmt.Errorf("%w: segment %s offset %d: %v", errWalCorrupt, name, validTo, serr)
			}
			// Torn tail: truncate so the next recovery (and the resuming
			// writer's successors) see a clean WAL.
			res.tornSegment, res.tornBytes = name, int64(len(data))-int64(validTo)
			if validTo < headerLen() {
				// Not even a full header survived: recreate this segment
				// from scratch by reusing its index.
				if err := disk.Truncate(name, 0); err != nil {
					return nil, fmt.Errorf("wal: truncating torn %s: %w", name, err)
				}
				res.nextIdx = idx
				return res, nil
			}
			if err := disk.Truncate(name, int64(validTo)); err != nil {
				return nil, fmt.Errorf("wal: truncating torn %s: %w", name, err)
			}
		}
		res.nextIdx = idx + 1
	}
	return res, nil
}

func headerLen() int { return len(walMagic) + 1 /* version uvarint, 1 byte for v1 */ }

// scanSegment decodes records from one segment image, appending to ops and
// updating the running counts. It returns the byte offset of the end of
// the last fully valid record (or 0 if the header itself is bad) plus an
// error describing the first invalid byte, if any.
func scanSegment(data []byte, ops *[]event.WalOp, numTx, numObj, records *int) (int, error) {
	if len(data) < headerLen() || string(data[:4]) != string(walMagic[:]) {
		return 0, errors.New("bad segment header")
	}
	if data[4] != walVersion {
		return 0, fmt.Errorf("unsupported wal version %d", data[4])
	}
	pos := headerLen()
	for pos < len(data) {
		plen, n := binary.Uvarint(data[pos:])
		if n <= 0 {
			return pos, errors.New("short record length")
		}
		if plen > maxWalRecord {
			return pos, fmt.Errorf("record length %d exceeds limit", plen)
		}
		body := pos + n
		end := body + int(plen) + 4
		if end > len(data) {
			return pos, errors.New("short record")
		}
		payload := data[body : body+int(plen)]
		if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(data[body+int(plen):end]) {
			return pos, errors.New("record checksum mismatch")
		}
		op, err := event.DecodeWalOp(payload, *numTx, *numObj)
		if err != nil {
			return pos, err
		}
		switch op.Kind {
		case event.WalObjectDef:
			*numObj++
		case event.WalTxDef:
			*numTx++
		case event.WalEvents:
			// No new names.
		}
		*ops = append(*ops, op)
		*records++
		pos = end
	}
	return pos, nil
}

// walEncodeEvents encodes one atomic event batch into a record payload
// (reusing buf) for the event log's WAL tee.
func walEncodeEvents(buf []byte, evs []event.Event) []byte {
	return event.AppendWalEvents(buf[:0], evs...)
}

// isWalCorrupt reports whether err is a clean corruption rejection (as
// opposed to an I/O failure).
func isWalCorrupt(err error) bool { return errors.Is(err, errWalCorrupt) }
