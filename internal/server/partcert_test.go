package server_test

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"nestedsg/internal/client"
	"nestedsg/internal/server"
	"nestedsg/internal/spec"
)

// TestPartitionedCertifierSoak is TestConcurrentSoak through the
// partitioned backend: 8 clients hammer shared objects at
// CertPartitions=4, every commit must certify against the composed
// watermark, and the final composed snapshot must be byte-identical to
// the batch certificate over the captured log (shutdownAndVerify checks
// Final().Match).
func TestPartitionedCertifierSoak(t *testing.T) {
	objects := []string{"a", "b", "c", "d", "e"}
	s := startServer(t, server.Options{
		Objects:        objects,
		LockTimeout:    500 * time.Millisecond,
		CertPartitions: 4,
	})
	if got := s.CertPartitions(); got != 4 {
		t.Fatalf("CertPartitions() = %d, want 4", got)
	}
	const (
		clients = 8
		txPer   = 15
	)
	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(i)))
			c, err := client.Dial(s.Addr().String())
			if err != nil {
				errCh <- err
				return
			}
			defer c.Close()
			for n := 0; n < txPer; n++ {
				err := c.RunTx(10, func(tx *client.Tx) error {
					for a := 0; a < 3; a++ {
						obj := objects[rng.Intn(len(objects))]
						var err error
						if rng.Intn(2) == 0 {
							_, err = tx.Access(obj, spec.OpRead, spec.Nil)
						} else {
							_, err = tx.Access(obj, spec.OpWrite, spec.Int(int64(rng.Intn(10))))
						}
						if err != nil {
							return err
						}
						if rng.Intn(4) == 0 {
							if _, err := tx.Child(); err != nil {
								return err
							}
							if _, err := tx.Access(obj, spec.OpWrite, spec.Int(int64(n))); err != nil {
								return err
							}
							if _, err := tx.Commit(); err != nil {
								return err
							}
						}
					}
					return nil
				})
				if err != nil {
					errCh <- fmt.Errorf("client %d tx %d: %w", i, n, err)
					return
				}
			}
			// The verdict path reads the composed gauges.
			v, err := c.Verdict()
			if err != nil {
				errCh <- err
				return
			}
			if !v.Acyclic {
				errCh <- fmt.Errorf("client %d: verdict reports a cyclic SG", i)
			}
		}(i)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}

	// Metrics must carry the per-partition breakdown before shutdown.
	snap := s.MetricsSnapshot()
	if got, ok := snap["cert_partitions"].(int); !ok || got != 4 {
		t.Fatalf("cert_partitions = %v, want 4", snap["cert_partitions"])
	}
	var applied int64
	for p := 0; p < 4; p++ {
		for _, key := range []string{
			"cert_part_events_%d", "cert_part_edges_%d", "cert_part_cross_edges_%d",
			"compose_lag_p50_%d", "compose_lag_p99_%d", "compose_lag_mean_%d",
		} {
			if _, ok := snap[fmt.Sprintf(key, p)]; !ok {
				t.Errorf("metrics snapshot missing %s for partition %d", key, p)
			}
		}
		if ev, ok := snap[fmt.Sprintf("cert_part_events_%d", p)].(int64); ok {
			applied += ev
		}
	}
	if applied == 0 {
		t.Error("no partition applied any events")
	}

	f := shutdownAndVerify(t, s)
	m := s.Metrics()
	if m.Uncertified.Load() != 0 {
		t.Fatalf("%d commits failed certification", m.Uncertified.Load())
	}
	if got := m.TopCommits.Load(); got != clients*txPer {
		t.Fatalf("TopCommits = %d, want %d", got, clients*txPer)
	}
	t.Logf("partitioned soak: %d events, %d commits, %d aborts", f.Events, f.Commits, f.Aborts)
}

// TestPartitionedRecovery: a durable server at CertPartitions=2 runs
// committed traffic, shuts down, and is recovered at the same partition
// count — the recovery prime must replay the WAL through every
// partition, the audit must find the composed graph byte-identical to
// the batch check, and the recovered server must keep certifying.
func TestPartitionedRecovery(t *testing.T) {
	disk := server.NewMemDisk()
	opts := server.Options{
		WAL:            disk,
		Objects:        []string{"x", "y", "z"},
		CertPartitions: 2,
	}
	s1, rep1 := recoverAndStart(t, opts)
	if rep1.DurableEvents != 0 {
		t.Fatalf("fresh report: %+v", rep1)
	}
	c := dialT(t, s1)
	for i := 0; i < 4; i++ {
		if err := c.RunTx(5, func(tx *client.Tx) error {
			if _, err := tx.Access("x", spec.OpWrite, spec.Int(int64(i))); err != nil {
				return err
			}
			if _, err := tx.Access("y", spec.OpWrite, spec.Int(int64(i))); err != nil {
				return err
			}
			_, err := tx.Access("z", spec.OpRead, spec.Nil)
			return err
		}); err != nil {
			t.Fatalf("tx %d: %v", i, err)
		}
	}
	c.Close()
	if err := s1.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	wantEvents := len(s1.Log())

	s2, rep2 := recoverAndStart(t, opts)
	if rep2.DurableEvents != wantEvents {
		t.Fatalf("resume report: %+v (want %d durable events)", rep2, wantEvents)
	}
	if !rep2.AuditOK {
		t.Fatalf("partitioned resume audit not ok: %+v", rep2)
	}
	// The recovered partitioned backend keeps certifying new commits.
	c2 := dialT(t, s2)
	if err := c2.RunTx(5, func(tx *client.Tx) error {
		_, err := tx.Access("x", spec.OpWrite, spec.Int(99))
		return err
	}); err != nil {
		t.Fatalf("commit after recovery: %v", err)
	}
	c2.Close()
	f := shutdownAndVerify(t, s2)
	if f.Events <= wantEvents {
		t.Fatalf("recovered server appended nothing: %d <= %d", f.Events, wantEvents)
	}
}

// TestPartitionCountNormalized: zero and negative partition counts fall
// back to the single certifier, whose metrics advertise one partition.
func TestPartitionCountNormalized(t *testing.T) {
	s := startServer(t, server.Options{Objects: []string{"x"}, CertPartitions: -3})
	if got := s.CertPartitions(); got != 1 {
		t.Fatalf("CertPartitions() = %d, want 1", got)
	}
	snap := s.MetricsSnapshot()
	if got, ok := snap["cert_partitions"].(int); !ok || got != 1 {
		t.Fatalf("cert_partitions = %v, want 1", snap["cert_partitions"])
	}
	shutdownAndVerify(t, s)
}
