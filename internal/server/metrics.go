package server

import (
	"encoding/json"
	"fmt"
	"math/bits"
	"net/http"
	"sync/atomic"
	"time"
)

// histBuckets is the number of power-of-two latency buckets; bucket i counts
// observations with ceil(log2(µs+1)) == i, so the range spans sub-µs to
// ~9 hours.
const histBuckets = 45

// Histogram is a lock-free power-of-two latency histogram.
type Histogram struct {
	buckets [histBuckets]atomic.Int64
	count   atomic.Int64
	sumNs   atomic.Int64
}

// Observe records one latency sample.
//
//sgvet:hotpath
func (h *Histogram) Observe(d time.Duration) {
	us := uint64(d / time.Microsecond)
	i := bits.Len64(us)
	if i >= histBuckets {
		i = histBuckets - 1
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sumNs.Add(int64(d))
}

// ObserveVal records one dimensionless sample (e.g. a commit-group size)
// in the same power-of-two buckets; read it back with QuantileVal/MeanVal.
//
//sgvet:hotpath
func (h *Histogram) ObserveVal(v int64) {
	i := bits.Len64(uint64(v))
	if i >= histBuckets {
		i = histBuckets - 1
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sumNs.Add(v)
}

// QuantileVal is Quantile for dimensionless samples: the upper bound of
// the bucket containing the q-quantile, 0 with no samples.
func (h *Histogram) QuantileVal(q float64) int64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := int64(q * float64(total))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i := 0; i < histBuckets; i++ {
		seen += h.buckets[i].Load()
		if seen >= rank {
			return int64(1) << uint(i)
		}
	}
	return int64(1) << uint(histBuckets-1)
}

// MeanVal returns the exact mean of dimensionless samples.
func (h *Histogram) MeanVal() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sumNs.Load()) / float64(n)
}

// Quantile estimates the q-quantile (0 < q ≤ 1) as the upper bound of the
// bucket containing it. Returns 0 with no samples.
func (h *Histogram) Quantile(q float64) time.Duration {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := int64(q * float64(total))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i := 0; i < histBuckets; i++ {
		seen += h.buckets[i].Load()
		if seen >= rank {
			return time.Duration(uint64(1)<<uint(i)) * time.Microsecond
		}
	}
	return time.Duration(uint64(1)<<uint(histBuckets-1)) * time.Microsecond
}

// Mean returns the mean observed latency.
func (h *Histogram) Mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sumNs.Load() / n)
}

// Count returns the number of samples.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Metrics holds the server's operational counters. All fields are atomics;
// the struct is safe to read while the server runs.
type Metrics struct {
	start time.Time

	// Request-level counters.
	Sessions atomic.Int64 // connections accepted
	Requests atomic.Int64 // frames handled

	// Transaction-level counters.
	Begins       atomic.Int64 // top-level transactions opened
	TopCommits   atomic.Int64 // top-level transactions committed (certified)
	Accesses     atomic.Int64 // access REQUEST_COMMITs granted
	BlockedPolls atomic.Int64 // grant polls that found the access blocked

	// Abort/retry counters.
	ClientAborts   atomic.Int64 // ABORT requests from clients
	LockTimeouts   atomic.Int64 // top-level aborts from lock-wait timeout
	DeadlockAborts atomic.Int64 // top-level aborts as waits-for cycle victim
	DrainAborts    atomic.Int64 // top-level aborts forced by shutdown
	RestartAborts  atomic.Int64 // top-level aborts forced by a protocol restart verdict (e.g. mvto too-late)
	Retries        atomic.Int64 // BEGINs that follow a server-side abort on the same session
	Uncertified    atomic.Int64 // commits whose certification failed (SG cycle)
	WALFailures    atomic.Int64 // commits refused because the WAL write/sync failed

	// Event counters (completion events appended to the log).
	CommitEvents atomic.Int64
	AbortEvents  atomic.Int64

	// Group-commit counters: sync requests enqueued by completing
	// sessions, fsyncs actually issued (WALSyncs ≤ WALSyncRequests; the
	// gap is the coalescing win), and the cohort-size distribution.
	WALSyncRequests atomic.Int64
	WALSyncs        atomic.Int64
	GroupSize       Histogram

	// AcceptRetries counts transient listener Accept failures that were
	// retried with backoff instead of killing the accept loop.
	AcceptRetries atomic.Int64

	// Merge histograms: the appended-minus-merged gap observed by the log
	// merger each time it wakes with work, and how many entries each wake
	// merged (the reorder window the sharded append path creates).
	MergeLag   Histogram
	MergeBatch Histogram

	// Latency histograms: all requests, and commit requests (which include
	// the wait for the certifier watermark).
	ReqLatency    Histogram
	CommitLatency Histogram
}

func newMetrics() *Metrics {
	return &Metrics{start: time.Now()}
}

// serverAborts sums the server-initiated top-level aborts.
func (m *Metrics) serverAborts() int64 {
	return m.LockTimeouts.Load() + m.DeadlockAborts.Load() + m.DrainAborts.Load() + m.RestartAborts.Load()
}

// Snapshot renders every counter (plus the live SG gauges, when a certifier
// is attached) as a flat map, the shape served by the HTTP endpoint and
// published through expvar by cmd/nestedsgd.
func (s *Server) MetricsSnapshot() map[string]any {
	m := s.metrics
	elapsed := time.Since(m.start).Seconds()
	wm, acyclic := s.cert.state()
	sgParents, sgNodes, sgEdges := s.cert.gauges()
	logLen := s.log.len()
	if wm > logLen {
		wm = logLen // drained sentinel
	}
	snap := map[string]any{
		"uptime_seconds":        elapsed,
		"sessions":              m.Sessions.Load(),
		"requests":              m.Requests.Load(),
		"begins":                m.Begins.Load(),
		"top_commits":           m.TopCommits.Load(),
		"accesses":              m.Accesses.Load(),
		"blocked_polls":         m.BlockedPolls.Load(),
		"client_aborts":         m.ClientAborts.Load(),
		"lock_timeouts":         m.LockTimeouts.Load(),
		"deadlock_aborts":       m.DeadlockAborts.Load(),
		"restart_aborts":        m.RestartAborts.Load(),
		"drain_aborts":          m.DrainAborts.Load(),
		"backend":               s.backend.name(),
		"retries":               m.Retries.Load(),
		"uncertified":           m.Uncertified.Load(),
		"wal_failures":          m.WALFailures.Load(),
		"commit_events":         m.CommitEvents.Load(),
		"abort_events":          m.AbortEvents.Load(),
		"log_events":            logLen,
		"certified":             wm,
		"sg_acyclic":            acyclic,
		"sg_parents":            sgParents,
		"sg_nodes":              sgNodes,
		"sg_edges":              sgEdges,
		"req_p50_us":            s.metrics.ReqLatency.Quantile(0.50).Microseconds(),
		"req_p99_us":            s.metrics.ReqLatency.Quantile(0.99).Microseconds(),
		"commit_p50_us":         s.metrics.CommitLatency.Quantile(0.50).Microseconds(),
		"commit_p99_us":         s.metrics.CommitLatency.Quantile(0.99).Microseconds(),
		"wal_sync_requests":     m.WALSyncRequests.Load(),
		"wal_syncs":             m.WALSyncs.Load(),
		"accept_retries":        m.AcceptRetries.Load(),
		"group_size_p50":        m.GroupSize.QuantileVal(0.50),
		"group_size_p99":        m.GroupSize.QuantileVal(0.99),
		"group_size_mean":       m.GroupSize.MeanVal(),
		"log_shards":            len(s.log.shards),
		"log_merged":            s.log.mergedLen(),
		"merge_lag_p50":         m.MergeLag.QuantileVal(0.50),
		"merge_lag_p99":         m.MergeLag.QuantileVal(0.99),
		"merge_lag_mean":        m.MergeLag.MeanVal(),
		"merge_batch_size_p50":  m.MergeBatch.QuantileVal(0.50),
		"merge_batch_size_p99":  m.MergeBatch.QuantileVal(0.99),
		"merge_batch_size_mean": m.MergeBatch.MeanVal(),
	}
	for i, sh := range s.log.shards {
		snap[fmt.Sprintf("log_shard_appends_%d", i)] = sh.appends.Load()
	}
	s.cert.metricsInto(snap)
	s.backend.metricsInto(snap)
	if req := m.WALSyncRequests.Load(); req > 0 {
		snap["wal_syncs_per_request"] = float64(m.WALSyncs.Load()) / float64(req)
	}
	if elapsed > 0 {
		snap["accesses_per_second"] = float64(m.Accesses.Load()) / elapsed
		snap["commits_per_second"] = float64(m.TopCommits.Load()) / elapsed
	}
	return snap
}

// MetricsHandler serves the metrics snapshot as JSON — the body of the
// -metrics endpoint of cmd/nestedsgd.
func (s *Server) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		// Encoding a just-built map of scalars cannot fail; the checked
		// encode keeps the error path honest anyway.
		if err := enc.Encode(s.MetricsSnapshot()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}

// Metrics exposes the counter struct (for tests and expvar publishing).
func (s *Server) Metrics() *Metrics { return s.metrics }
