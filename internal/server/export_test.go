package server

// GroupArrived reports how many committers have entered the group
// committer since boot. Test-only observability: the group-commit tests
// gate the leader's fsync and need to know when the whole cohort has
// arrived before releasing it, so the coalescing assertion is
// deterministic instead of timing-dependent.
func (s *Server) GroupArrived() uint64 {
	s.group.mu.Lock()
	defer s.group.mu.Unlock()
	return s.group.arrived
}
