package server_test

import (
	"context"
	"net"
	"testing"

	"nestedsg/internal/client"
	"nestedsg/internal/server"
)

// BenchmarkServerSessionRoundTrip measures one full request/response round
// trip — client encode, frame write, server read/parse/handle/encode, frame
// write, client read/parse — over an in-process pipe. After the first
// iteration warms the per-session scratch buffers (frame read buffer,
// encode buffer), the steady state must be allocation-free on both sides:
// the slice-cutting wire parsers, the geometric ReadFrame growth and the
// reused encode buffers exist exactly so this number is zero.
func BenchmarkServerSessionRoundTrip(b *testing.B) {
	s := server.New(server.Options{Objects: []string{"x"}})
	srvEnd, cliEnd := net.Pipe()
	s.ServeConn(srvEnd)
	c := client.NewConn(cliEnd)
	// Warm the session and client scratch buffers outside the timed region.
	if err := c.Ping(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Ping(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	c.Close()
	if err := s.Shutdown(context.Background()); err != nil {
		b.Fatal(err)
	}
}
