package server_test

import (
	"bufio"
	"context"
	"errors"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"nestedsg/internal/server"
	"nestedsg/internal/spec"
	"nestedsg/internal/wire"
)

// fakeListener feeds the accept loop a scripted sequence of connections
// and errors, then net.ErrClosed once closed.
type fakeListener struct {
	ch     chan acceptResult
	closed chan struct{}
	once   sync.Once
}

type acceptResult struct {
	conn net.Conn
	err  error
}

func newFakeListener() *fakeListener {
	return &fakeListener{ch: make(chan acceptResult, 8), closed: make(chan struct{})}
}

func (l *fakeListener) Accept() (net.Conn, error) {
	// Drain the script before reporting closure, so a queued connection
	// is never lost to the select's random choice.
	select {
	case r := <-l.ch:
		return r.conn, r.err
	default:
	}
	select {
	case r := <-l.ch:
		return r.conn, r.err
	case <-l.closed:
		return nil, net.ErrClosed
	}
}

func (l *fakeListener) Close() error {
	l.once.Do(func() { close(l.closed) })
	return nil
}

func (l *fakeListener) Addr() net.Addr { return &net.TCPAddr{IP: net.IPv4(127, 0, 0, 1)} }

// rawSession speaks the wire protocol directly over a net.Conn.
type rawSession struct {
	t *testing.T
	c net.Conn
	w *bufio.Writer
	r *bufio.Reader
}

func newRawSession(t *testing.T, c net.Conn) *rawSession {
	return &rawSession{t: t, c: c, w: bufio.NewWriter(c), r: bufio.NewReader(c)}
}

// roundTrip writes payload as one frame and parses the response against
// cmd (use wire.CmdInvalid for malformed frames: the server must answer
// them with a bare error response, not a command-shaped payload).
func (rs *rawSession) roundTrip(payload []byte, cmd wire.Cmd) wire.Response {
	rs.t.Helper()
	if err := wire.WriteFrame(rs.w, payload); err != nil {
		rs.t.Fatalf("write frame: %v", err)
	}
	raw, err := wire.ReadFrame(rs.r, nil)
	if err != nil {
		rs.t.Fatalf("read response frame: %v", err)
	}
	resp, err := wire.ParseResponse(cmd, raw)
	if err != nil {
		rs.t.Fatalf("parse response: %v", err)
	}
	return resp
}

// TestAcceptLoopRetriesTransientErrors: a transient Accept failure (EMFILE,
// ECONNABORTED, ...) must not kill the accept loop — before the fix the
// loop returned on any error, leaving a live, certifying server that
// silently accepted nothing forever.
func TestAcceptLoopRetriesTransientErrors(t *testing.T) {
	lis := newFakeListener()
	s := server.New(server.Options{Objects: []string{"x"}})
	s.Serve(lis)

	lis.ch <- acceptResult{err: errors.New("accept tcp: too many open files")}
	srvEnd, cliEnd := net.Pipe()
	lis.ch <- acceptResult{conn: srvEnd}

	// A round trip on the connection queued after the error proves the
	// loop retried instead of returning.
	rs := newRawSession(t, cliEnd)
	if resp := rs.roundTrip(wire.AppendRequest(nil, wire.Request{Cmd: wire.CmdPing}), wire.CmdPing); resp.Status != wire.StatusOK {
		t.Fatalf("ping after transient accept error: status %v", resp.Status)
	}
	if got := s.Metrics().AcceptRetries.Load(); got != 1 {
		t.Fatalf("AcceptRetries = %d, want 1", got)
	}
	cliEnd.Close()
	shutdownAndVerify(t, s)
}

// recordingHooks is the real-time hook set plus a DrainWait recorder.
type recordingHooks struct {
	drains   atomic.Int64
	drainDur atomic.Int64
}

func (h *recordingHooks) Now() time.Time                    { return time.Now() }
func (h *recordingHooks) LockWait(_ int64, d time.Duration) { time.Sleep(d) }
func (h *recordingHooks) CertApply(int)                     {}
func (h *recordingHooks) CertBatch(_, max int) int          { return max }
func (h *recordingHooks) PartApply(int, int)                {}
func (h *recordingHooks) PartBatch(_, _, max int) int       { return max }
func (h *recordingHooks) MergeApply(int, int)               {}
func (h *recordingHooks) MergeWait(int64, int)              {}
func (h *recordingHooks) CommitWait(int64, int)             {}
func (h *recordingHooks) SessionDone(int64)                 {}
func (h *recordingHooks) DrainWait(d time.Duration) {
	h.drains.Add(1)
	h.drainDur.Store(int64(d))
	time.Sleep(d)
}

// TestShutdownDrainPollsThroughHooks: the drain loop's poll cadence must
// go through Hooks.DrainWait (so a seeded harness can drain on its virtual
// clock) — before the fix it slept on a raw time.After.
func TestShutdownDrainPollsThroughHooks(t *testing.T) {
	h := &recordingHooks{}
	s := startServer(t, server.Options{Objects: []string{"x"}, Hooks: h})
	c := dialT(t, s)
	if _, err := c.Begin(); err != nil {
		t.Fatalf("begin: %v", err)
	}

	done := make(chan error, 1)
	go func() { done <- s.Shutdown(context.Background()) }()
	// The open transaction keeps the session busy, so the drain loop must
	// poll — through the hook.
	waitFor(t, "a hooked drain poll", func() bool { return h.drains.Load() >= 1 })
	if got := time.Duration(h.drainDur.Load()); got != 2*time.Millisecond {
		t.Fatalf("DrainWait duration = %v, want the 2ms drain cadence", got)
	}
	if _, err := c.Commit(); err != nil {
		t.Fatalf("commit during drain: %v", err)
	}
	c.Close()
	if err := <-done; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// TestMalformedFrameRejectedWithoutKillingSession: a frame that fails
// ParseRequest must be answered StatusError with the parse reason —
// encoded against CmdInvalid, never against whatever half-parsed command
// byte the garbage happened to start with — and the session must survive
// to serve well-formed requests afterwards.
func TestMalformedFrameRejectedWithoutKillingSession(t *testing.T) {
	s := startServer(t, server.Options{Objects: []string{"x"}})
	nc, err := net.Dial("tcp", s.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	rs := newRawSession(t, nc)

	base := s.Metrics().CommitLatency.Count()

	// An unknown command byte.
	resp := rs.roundTrip([]byte{99}, wire.CmdInvalid)
	if resp.Status != wire.StatusError || !strings.Contains(resp.Reason, "unknown command byte") {
		t.Fatalf("garbage frame: status %v reason %q", resp.Status, resp.Reason)
	}
	// A known command byte with a truncated payload: ParseRequest fails
	// after reading the ACCESS byte, and the response must still be the
	// bare error shape, not an ACCESS-shaped payload.
	resp = rs.roundTrip([]byte{byte(wire.CmdAccess)}, wire.CmdInvalid)
	if resp.Status != wire.StatusError {
		t.Fatalf("truncated access frame: status %v reason %q", resp.Status, resp.Reason)
	}
	// A COMMIT frame with trailing garbage parses far enough to carry
	// Cmd=COMMIT before failing; the error path must not treat it as a
	// commit (the commit-latency metric must not move).
	resp = rs.roundTrip([]byte{byte(wire.CmdCommit), 0xFF}, wire.CmdInvalid)
	if resp.Status != wire.StatusError || !strings.Contains(resp.Reason, "trailing bytes") {
		t.Fatalf("trailing-garbage commit frame: status %v reason %q", resp.Status, resp.Reason)
	}
	if got := s.Metrics().CommitLatency.Count(); got != base {
		t.Fatalf("a malformed commit frame moved CommitLatency (%d -> %d)", base, got)
	}

	// The session is still alive and functional.
	if resp := rs.roundTrip(wire.AppendRequest(nil, wire.Request{Cmd: wire.CmdBegin}), wire.CmdBegin); resp.Status != wire.StatusOK {
		t.Fatalf("begin after malformed frames: status %v reason %q", resp.Status, resp.Reason)
	}
	if resp := rs.roundTrip(wire.AppendRequest(nil, wire.Request{Cmd: wire.CmdAccess, Obj: "x", Op: spec.OpWrite, Arg: spec.Int(1)}), wire.CmdAccess); resp.Status != wire.StatusOK {
		t.Fatalf("access after malformed frames: status %v reason %q", resp.Status, resp.Reason)
	}
	if resp := rs.roundTrip(wire.AppendRequest(nil, wire.Request{Cmd: wire.CmdCommit}), wire.CmdCommit); resp.Status != wire.StatusOK {
		t.Fatalf("commit after malformed frames: status %v reason %q", resp.Status, resp.Reason)
	}
	nc.Close()
	shutdownAndVerify(t, s)
}
