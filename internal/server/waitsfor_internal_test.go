package server

import (
	"sync"
	"testing"
	"time"

	"nestedsg/internal/client"
	"nestedsg/internal/spec"
	"nestedsg/internal/tname"
)

// TestOverlappingCyclesSingleVictim builds two waits-for cycles sharing a
// transaction — T1⇄T2 and T2⇄T3 — and checks that exactly one session
// self-selects as the deadlock victim. The per-cycle DFS this replaced let
// both T2 (maximum of its cycle with T1) and T3 (maximum of its cycle with
// T2) abort in the same detection round; the SCC computation must name one
// victim for the whole knot: its largest TxID.
//
// Lock pattern (Moss read/update locks; reads share, writes exclude):
//
//	T1 holds read x, blocks on read y  → edge T1→T2
//	T3 holds read x, blocks on read z  → edge T3→T2
//	T2 holds write y and write z, blocks on write x → edges T2→T1, T2→T3
func TestOverlappingCyclesSingleVictim(t *testing.T) {
	s, err := Listen("127.0.0.1:0", Options{
		Objects:       []string{"x", "y", "z"},
		DeadlockEvery: -1, // detector off: the test invokes deadlockVictim itself
		LockTimeout:   30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	dial := func() *client.Conn {
		t.Helper()
		c, err := client.Dial(s.Addr().String())
		if err != nil {
			t.Fatalf("dial: %v", err)
		}
		return c
	}
	c1, c2, c3 := dial(), dial(), dial()

	begin := func(c *client.Conn) {
		t.Helper()
		if _, err := c.Begin(); err != nil {
			t.Fatalf("begin: %v", err)
		}
	}
	access := func(c *client.Conn, obj string, op spec.OpKind, arg spec.Value) {
		t.Helper()
		if _, err := c.Access(obj, op, arg); err != nil {
			t.Fatalf("access %s: %v", obj, err)
		}
	}
	// Sessions begin in order, so the top-level TxIDs are interned in
	// ascending order: top(c1) < top(c2) < top(c3).
	begin(c1)
	access(c1, "x", spec.OpRead, spec.Nil)
	begin(c2)
	access(c2, "y", spec.OpWrite, spec.Int(1))
	access(c2, "z", spec.OpWrite, spec.Int(1))
	begin(c3)
	access(c3, "x", spec.OpRead, spec.Nil)

	// The three blocking accesses; each parks its session in the wait
	// table until the server is killed at the end of the test.
	var wg sync.WaitGroup
	for _, b := range []struct {
		c   *client.Conn
		obj string
		op  spec.OpKind
		arg spec.Value
	}{
		{c1, "y", spec.OpRead, spec.Nil},
		{c3, "z", spec.OpRead, spec.Nil},
		{c2, "x", spec.OpWrite, spec.Int(2)},
	} {
		wg.Add(1)
		go func(c *client.Conn, obj string, op spec.OpKind, arg spec.Value) {
			defer wg.Done()
			c.Access(obj, op, arg) // returns with an error once the server dies
		}(b.c, b.obj, b.op, b.arg)
	}

	deadline := time.Now().Add(10 * time.Second)
	for len(s.waits.entries()) < 3 {
		if time.Now().After(deadline) {
			t.Fatal("timed out waiting for the three sessions to block")
		}
		time.Sleep(time.Millisecond)
	}

	entries := s.waits.entries()
	var victims []tname.TxID
	var maxTop tname.TxID
	for _, e := range entries {
		if e.top > maxTop {
			maxTop = e.top
		}
		if s.deadlockVictim(e.top) {
			victims = append(victims, e.top)
		}
	}
	if len(victims) != 1 {
		t.Fatalf("deadlockVictim self-selected %d of %d blocked sessions (%v); the overlapping cycles need exactly 1", len(victims), len(entries), victims)
	}
	if victims[0] != maxTop {
		t.Fatalf("victim = %v, want the SCC's largest TxID %v", victims[0], maxTop)
	}

	s.Kill()
	wg.Wait()
	c1.Close()
	c2.Close()
	c3.Close()
}
