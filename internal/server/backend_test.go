package server_test

import (
	"strings"
	"testing"
	"time"

	"nestedsg/internal/client"
	"nestedsg/internal/locking"
	"nestedsg/internal/server"
	"nestedsg/internal/spec"
)

// TestValidateBackendOptions: the CLIs' pre-flight accepts every published
// backend name and rejects the configurations New would panic on.
func TestValidateBackendOptions(t *testing.T) {
	for _, name := range server.BackendNames() {
		if err := server.ValidateBackendOptions(server.Options{Backend: name}); err != nil {
			t.Errorf("backend %q rejected: %v", name, err)
		}
	}
	for what, opts := range map[string]server.Options{
		"unknown name":       {Backend: "nope"},
		"backend + protocol": {Backend: "mvto", Protocol: locking.Protocol{}},
		"mvto non-register":  {Backend: "mvto", DefaultSpec: spec.Counter{}},
		"replica bad quorum": {Backend: "replica", ReplicaCopies: 4, ReplicaReadQuorum: 2, ReplicaWriteQuorum: 2},
	} {
		if err := server.ValidateBackendOptions(opts); err == nil {
			t.Errorf("%s: validated, want error", what)
		}
	}
}

// roReadValue opens one read-only transaction and reads label through it.
func roReadValue(t *testing.T, c *client.Conn, label string) (string, spec.Value) {
	t.Helper()
	name, err := c.BeginRO()
	if err != nil {
		t.Fatalf("BeginRO: %v", err)
	}
	v, err := c.Access(label, spec.OpRead, spec.Nil)
	if err != nil {
		t.Fatalf("RO read: %v", err)
	}
	if _, err := c.Commit(); err != nil {
		t.Fatalf("RO commit: %v", err)
	}
	return name, v
}

// awaitSnapshot polls read-only transactions until one's cut covers a
// state where label reads want — the snapshot tailer publishes
// asynchronously, so a cut pinned right after a commit ack may predate it.
func awaitSnapshot(t *testing.T, c *client.Conn, label string, want spec.Value) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, v := roReadValue(t, c, label); v == want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("snapshot never published %s=%s", label, want)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestMVTOReadOnlySnapshotLifecycle drives the whole read-only path over
// TCP against the mvto backend: committed writes become visible to
// snapshot cuts, read-only transactions take no locks (a concurrent
// writer commits while one is open), write operations inside them are
// rejected, subtransactions are pure bookkeeping, and the object audits
// and final certificate still hold.
func TestMVTOReadOnlySnapshotLifecycle(t *testing.T) {
	s := startServer(t, server.Options{Backend: "mvto", Objects: []string{"x", "y"}})
	c, err := client.Dial(s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if got := s.Backend(); got != "mvto" {
		t.Fatalf("Backend() = %q, want mvto", got)
	}

	// A fresh store serves the initial value at cut 0.
	if name, v := roReadValue(t, c, "x"); v != spec.Int(0) || !strings.Contains(name, ".r") {
		t.Fatalf("initial RO read: name=%q v=%s, want .r-named read of 0", name, v)
	}

	err = c.RunTx(8, func(tx *client.Tx) error {
		if _, err := tx.Access("x", spec.OpWrite, spec.Int(5)); err != nil {
			return err
		}
		_, err := tx.Access("y", spec.OpWrite, spec.Int(7))
		return err
	})
	if err != nil {
		t.Fatalf("writer: %v", err)
	}
	awaitSnapshot(t, c, "x", spec.Int(5))

	// One read-only transaction observes both writes at a single cut, with
	// a subtransaction in the middle, and rejects a write operation.
	if _, err := c.BeginRO(); err != nil {
		t.Fatal(err)
	}
	if v, err := c.Access("x", spec.OpRead, spec.Nil); err != nil || v != spec.Int(5) {
		t.Fatalf("RO x: v=%v err=%v", v, err)
	}
	if _, err := c.Child(); err != nil {
		t.Fatal(err)
	}
	if v, err := c.Access("y", spec.OpRead, spec.Nil); err != nil || v != spec.Int(7) {
		t.Fatalf("RO y in child: v=%v err=%v", v, err)
	}
	if _, err := c.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Access("x", spec.OpWrite, spec.Int(9)); err == nil {
		t.Fatal("write op inside a read-only transaction was accepted")
	}
	// The open read-only transaction holds no locks: a concurrent writer
	// commits immediately instead of parking behind it.
	w, err := client.Dial(s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	werr := w.RunTx(8, func(tx *client.Tx) error {
		_, err := tx.Access("x", spec.OpWrite, spec.Int(9))
		return err
	})
	w.Close()
	if werr != nil {
		t.Fatalf("writer while RO open: %v", werr)
	}
	// The pinned cut predates that commit; the open transaction still sees 5.
	if v, err := c.Access("x", spec.OpRead, spec.Nil); err != nil || v != spec.Int(5) {
		t.Fatalf("RO reread after concurrent commit: v=%v err=%v, want the pinned 5", v, err)
	}
	if _, err := c.Commit(); err != nil {
		t.Fatal(err)
	}
	awaitSnapshot(t, c, "x", spec.Int(9))

	if err := s.AuditObjects(); err != nil {
		t.Fatalf("audit: %v", err)
	}
	snap := s.MetricsSnapshot()
	if snap["backend"] != "mvto" {
		t.Fatalf("metrics backend = %v", snap["backend"])
	}
	if n, _ := snap["mvto_snapshot_reads"].(int64); n == 0 {
		t.Fatal("mvto_snapshot_reads stayed 0")
	}
	if n, _ := snap["mvto_ro_begins"].(int64); n == 0 {
		t.Fatal("mvto_ro_begins stayed 0")
	}
	shutdownAndVerify(t, s)
}

// TestReadOnlyDegradesWithoutSnapshots: on a backend with no snapshot
// store, a read-only BEGIN is served as an ordinary transaction — the
// read takes a Moss lock and returns the current committed value, and the
// transaction is logged and certified like any other.
func TestReadOnlyDegradesWithoutSnapshots(t *testing.T) {
	s := startServer(t, server.Options{Objects: []string{"x"}})
	c, err := client.Dial(s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.RunTx(8, func(tx *client.Tx) error {
		_, err := tx.Access("x", spec.OpWrite, spec.Int(3))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	// No tailer to wait for: the degraded read locks the live object.
	name, v := roReadValue(t, c, "x")
	if v != spec.Int(3) {
		t.Fatalf("degraded RO read: got %s, want 3", v)
	}
	if strings.Contains(name, ".r") {
		t.Fatalf("degraded RO transaction got a snapshot-style name %q", name)
	}
	var viaRun spec.Value
	if err := c.RunReadTx(8, func(tx *client.Tx) error {
		var err error
		viaRun, err = tx.Access("x", spec.OpRead, spec.Nil)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if viaRun != spec.Int(3) {
		t.Fatalf("RunReadTx read: got %s, want 3", viaRun)
	}
	f := shutdownAndVerify(t, s)
	if f.Commits < 3 {
		t.Fatalf("degraded read-only transactions missing from the log: %d commits", f.Commits)
	}
}

// TestReplicaBackendEndToEnd: the replica backend serves real traffic with
// the default 3/2/2 geometry, counts quorum traffic, passes the
// quorum-intersection audit, and certifies the run.
func TestReplicaBackendEndToEnd(t *testing.T) {
	s := startServer(t, server.Options{Backend: "replica", Objects: []string{"x", "y"}})
	c, err := client.Dial(s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	for i := 0; i < 4; i++ {
		i := i
		if err := c.RunTx(8, func(tx *client.Tx) error {
			if _, err := tx.Access("x", spec.OpWrite, spec.Int(int64(i))); err != nil {
				return err
			}
			_, err := tx.Access("y", spec.OpRead, spec.Nil)
			return err
		}); err != nil {
			t.Fatalf("tx %d: %v", i, err)
		}
	}
	if err := s.AuditObjects(); err != nil {
		t.Fatalf("audit: %v", err)
	}
	snap := s.MetricsSnapshot()
	if snap["backend"] != "replica" {
		t.Fatalf("metrics backend = %v", snap["backend"])
	}
	if n, _ := snap["replica_copies"].(int); n != 3 {
		t.Fatalf("replica_copies = %v, want 3", snap["replica_copies"])
	}
	if n, _ := snap["replica_quorum_writes"].(int64); n == 0 {
		t.Fatal("replica_quorum_writes stayed 0")
	}
	if n, _ := snap["replica_quorum_reads"].(int64); n == 0 {
		t.Fatal("replica_quorum_reads stayed 0")
	}
	shutdownAndVerify(t, s)
}
