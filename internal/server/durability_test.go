package server_test

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"

	"nestedsg/internal/client"
	"nestedsg/internal/server"
	"nestedsg/internal/spec"
)

// failingDisk wraps a MemDisk and, once fail is set, makes every segment
// write and sync return an I/O error — the "disk died under a running
// server" scenario.
type failingDisk struct {
	*server.MemDisk
	fail atomic.Bool
}

var errInjected = errors.New("injected disk failure")

func (d *failingDisk) Create(name string) (server.SegmentFile, error) {
	if d.fail.Load() {
		return nil, errInjected
	}
	f, err := d.MemDisk.Create(name)
	if err != nil {
		return nil, err
	}
	return &failingFile{d: d, f: f}, nil
}

type failingFile struct {
	d *failingDisk
	f server.SegmentFile
}

func (f *failingFile) Write(p []byte) (int, error) {
	if f.d.fail.Load() {
		return 0, errInjected
	}
	return f.f.Write(p)
}

func (f *failingFile) Sync() error {
	if f.d.fail.Load() {
		return errInjected
	}
	return f.f.Sync()
}

func (f *failingFile) Close() error { return f.f.Close() }

// TestCommitNotAckedAfterWALFailure: once the WAL writer fails, a COMMIT
// must not be acknowledged StatusOK (the events would vanish on recovery),
// and the server must refuse new top-level transactions instead of
// silently dropping every further append.
func TestCommitNotAckedAfterWALFailure(t *testing.T) {
	disk := &failingDisk{MemDisk: server.NewMemDisk()}
	s, _ := recoverAndStart(t, server.Options{WAL: disk, Objects: []string{"x"}})
	c := dialT(t, s)

	// Healthy baseline: a commit on the working disk is acked.
	if err := c.RunTx(1, func(tx *client.Tx) error {
		_, err := tx.Access("x", spec.OpWrite, spec.Int(1))
		return err
	}); err != nil {
		t.Fatalf("healthy commit: %v", err)
	}

	disk.fail.Store(true)
	if _, err := c.Begin(); err != nil {
		t.Fatalf("begin: %v", err)
	}
	if _, err := c.Access("x", spec.OpWrite, spec.Int(2)); err != nil {
		t.Fatalf("access: %v", err)
	}
	if _, err := c.Commit(); err == nil {
		t.Fatal("commit acked OK after the WAL writer failed")
	} else if !strings.Contains(err.Error(), "not durable") {
		t.Fatalf("commit error does not name durability: %v", err)
	}
	if s.WALError() == nil {
		t.Fatal("WALError is nil after an injected failure")
	}
	if got := s.Metrics().WALFailures.Load(); got != 1 {
		t.Fatalf("WALFailures = %d, want 1", got)
	}

	// The failure is sticky: no new work is accepted.
	if _, err := c.Begin(); err == nil {
		t.Fatal("BEGIN accepted with a broken WAL")
	} else if !strings.Contains(err.Error(), "wal unavailable") {
		t.Fatalf("begin error does not name the wal: %v", err)
	}
	c.Close()
	s.Kill()
}
