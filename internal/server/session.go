package server

import (
	"bufio"
	"fmt"
	"net"
	"sync/atomic"
	"time"

	"nestedsg/internal/event"
	"nestedsg/internal/spec"
	"nestedsg/internal/tname"
	"nestedsg/internal/wire"
)

// txFrame is one open transaction on a session's cursor stack: frames[0] is
// the top-level transaction, deeper frames are open subtransactions. The
// innermost frame is the "current transaction" every request addresses.
type txFrame struct {
	id tname.TxID
	// touched is the set of objects accessed anywhere in this frame's
	// subtree, in first-touch order; completion informs go to exactly these
	// objects (the runner's markTouched, maintained eagerly at access
	// creation).
	touched []tname.ObjID
}

func (f *txFrame) touch(x tname.ObjID) {
	for _, y := range f.touched {
		if y == x {
			return
		}
	}
	f.touched = append(f.touched, x)
}

// session is one connection: a strictly sequential request/response loop
// driving one fragment of the transaction tree. All transaction state lives
// here on the server; the client only holds a cursor.
type session struct {
	s    *Server
	conn net.Conn
	id   int64
	// shard is the event-log append shard this session hashes to; all of
	// the session's appends go through it, so they queue in program order.
	shard *logShard

	r    *bufio.Reader
	w    *bufio.Writer
	rbuf []byte
	out  []byte

	frames []*txFrame
	labelN int // session-local unique label counter for children/accesses
	topN   int // top-level transactions begun on this session

	// roDepth > 0 means the open transaction is read-only on the backend's
	// snapshot store: it has no frames, appends no events, and every read
	// resolves against the log prefix pinned in roCut at BEGIN.
	roDepth int
	roCut   int

	// lastAborted marks that the previous transaction ended in a
	// server-side abort, so the next BEGIN counts as a retry.
	lastAborted bool
	// inTx mirrors len(frames) > 0 for the drain loop, which must read it
	// from another goroutine.
	inTx atomic.Bool
}

func newSession(s *Server, c net.Conn) *session {
	id := s.sessionSeq.Add(1)
	return &session{
		s:     s,
		conn:  c,
		id:    id,
		shard: s.log.shardFor(id),
		r:     bufio.NewReader(c),
		w:     bufio.NewWriter(c),
	}
}

// idle reports whether the session has no open transaction; Shutdown closes
// idle connections immediately.
func (sn *session) idle() bool { return !sn.inTx.Load() }

// serve runs the request loop until the connection closes. A connection
// that drops mid-transaction has its top-level transaction aborted so the
// objects release its locks and the log stays a complete story.
func (sn *session) serve() {
	sn.s.metrics.Sessions.Add(1)
	defer sn.conn.Close()
	for {
		payload, err := wire.ReadFrame(sn.r, sn.rbuf)
		if err != nil {
			break
		}
		sn.rbuf = payload
		start := time.Now()
		q, perr := wire.ParseRequest(payload)
		var resp wire.Response
		if perr != nil {
			resp = wire.Response{Status: wire.StatusError, Reason: perr.Error()}
		} else {
			resp = sn.handle(q)
		}
		sn.s.metrics.Requests.Add(1)
		sn.s.metrics.ReqLatency.Observe(time.Since(start))
		if perr == nil && q.Cmd == wire.CmdCommit && resp.Status == wire.StatusOK {
			sn.s.metrics.CommitLatency.Observe(time.Since(start))
		}
		cmd := q.Cmd
		if perr != nil {
			// q is the zero Request after a parse error; answer under the
			// explicit invalid command instead of echoing whatever the
			// zero value happens to decode as.
			cmd = wire.CmdInvalid
		}
		sn.out = wire.AppendResponse(sn.out[:0], cmd, resp)
		if err := wire.WriteFrame(sn.w, sn.out); err != nil {
			break
		}
	}
	if len(sn.frames) > 0 {
		// Disconnect (or force-close during drain) with an open transaction.
		if sn.s.draining.Load() {
			sn.s.metrics.DrainAborts.Add(1)
			sn.abortTop("server draining")
		} else {
			sn.s.metrics.ClientAborts.Add(1)
			sn.abortTop("client disconnected")
		}
	} else if sn.roDepth > 0 {
		// A read-only transaction holds no locks and logged nothing;
		// dropping it needs no abort events.
		sn.roDepth = 0
		sn.inTx.Store(false)
	}
	sn.s.opts.Hooks.SessionDone(sn.id)
}

func (sn *session) handle(q wire.Request) wire.Response {
	if sn.roDepth > 0 {
		return sn.handleRO(q)
	}
	switch q.Cmd {
	case wire.CmdBegin:
		return sn.handleBegin(q)
	case wire.CmdChild:
		return sn.handleChild()
	case wire.CmdAccess:
		return sn.handleAccess(q)
	case wire.CmdCommit:
		return sn.handleCommit()
	case wire.CmdAbort:
		return sn.handleAbort()
	case wire.CmdVerdict:
		return sn.handleVerdict()
	case wire.CmdPing:
		return wire.Response{Status: wire.StatusOK}
	case wire.CmdInvalid:
		return errResp("invalid command")
	default:
		return errResp(fmt.Sprintf("unknown command %d", uint8(q.Cmd)))
	}
}

func errResp(reason string) wire.Response {
	return wire.Response{Status: wire.StatusError, Reason: reason}
}

// appendLog appends events to the server log, keeping the completion-event
// counters in step, and returns the log index of the first event.
//
//sgvet:hotpath
func (sn *session) appendLog(evs ...event.Event) int {
	for _, e := range evs {
		switch e.Kind {
		case event.Commit:
			sn.s.metrics.CommitEvents.Add(1)
		case event.Abort:
			sn.s.metrics.AbortEvents.Add(1)
		default:
		}
	}
	return sn.s.log.append(sn.shard, evs...)
}

// handleBegin opens a top-level transaction: REQUEST_CREATE by T0 followed
// immediately by the controller's CREATE — one specific schedule of the
// generic controller's nondeterminism. A read-only BEGIN on a backend with
// a snapshot store instead pins a certified snapshot cut and enters the
// lock-free read-only mode; backends without one serve it as a normal
// transaction.
func (sn *session) handleBegin(q wire.Request) wire.Response {
	if len(sn.frames) > 0 {
		return errResp("BEGIN with a transaction already open")
	}
	if sn.s.draining.Load() {
		return errResp("server draining")
	}
	if err := sn.s.WALError(); err != nil {
		// The WAL writer's failure is sticky: every further append would be
		// silently dropped, so stop accepting work instead of building
		// transactions that recovery can never see.
		return errResp(fmt.Sprintf("wal unavailable: %v", err))
	}
	if q.RO {
		if st := sn.s.backend.snapshots(); st != nil {
			sn.topN++
			sn.roDepth = 1
			sn.roCut = st.cut()
			sn.inTx.Store(true)
			if sn.lastAborted {
				sn.s.metrics.Retries.Add(1)
				sn.lastAborted = false
			}
			// The name is cosmetic — a read-only transaction is a query
			// outside the behavior β, so nothing is interned or logged.
			return wire.Response{Status: wire.StatusOK, Name: fmt.Sprintf("s%d.r%d", sn.id, sn.topN)}
		}
	}
	sn.topN++
	label := fmt.Sprintf("s%d.%d", sn.id, sn.topN)
	top := sn.s.internTx(tname.Root, label, tname.NoObj, spec.Op{})
	sn.appendLog(
		event.NewEvent(event.RequestCreate, top),
		event.NewEvent(event.Create, top),
	)
	sn.frames = append(sn.frames, &txFrame{id: top})
	sn.inTx.Store(true)
	sn.s.metrics.Begins.Add(1)
	if sn.lastAborted {
		sn.s.metrics.Retries.Add(1)
		sn.lastAborted = false
	}
	return wire.Response{Status: wire.StatusOK, Name: label}
}

// handleRO serves every request of an open read-only transaction: children
// are pure depth bookkeeping, accesses must be read-only ops answered from
// the snapshot cut, and completions just pop depth — none of it touches
// objects, locks, or the event log, so a read-only transaction can never
// block, deadlock, or be chosen as a victim.
func (sn *session) handleRO(q wire.Request) wire.Response {
	st := sn.s.backend.snapshots()
	switch q.Cmd {
	case wire.CmdBegin:
		return errResp("BEGIN with a transaction already open")
	case wire.CmdChild:
		sn.roDepth++
		sn.labelN++
		return wire.Response{Status: wire.StatusOK, Name: fmt.Sprintf("c%d", sn.labelN)}
	case wire.CmdAccess:
		if !sn.s.opts.DefaultSpec.ReadOnly(spec.Op{Kind: q.Op, Arg: q.Arg}) {
			return errResp(fmt.Sprintf("read-only transaction: op %s not allowed", q.Op))
		}
		v, err := st.read(q.Obj, sn.roCut)
		if err != nil {
			return errResp(err.Error())
		}
		return wire.Response{Status: wire.StatusOK, Value: v}
	case wire.CmdCommit, wire.CmdAbort:
		sn.roDepth--
		if sn.roDepth == 0 {
			sn.inTx.Store(false)
		}
		return wire.Response{Status: wire.StatusOK}
	case wire.CmdVerdict:
		return sn.handleVerdict()
	case wire.CmdPing:
		return wire.Response{Status: wire.StatusOK}
	case wire.CmdInvalid:
		return errResp("invalid command")
	default:
		return errResp(fmt.Sprintf("unknown command %d", uint8(q.Cmd)))
	}
}

// handleChild opens a subtransaction of the current transaction.
func (sn *session) handleChild() wire.Response {
	if len(sn.frames) == 0 {
		return errResp("CHILD outside a transaction")
	}
	cur := sn.frames[len(sn.frames)-1]
	sn.labelN++
	label := fmt.Sprintf("c%d", sn.labelN)
	child := sn.s.internTx(cur.id, label, tname.NoObj, spec.Op{})
	sn.appendLog(
		event.NewEvent(event.RequestCreate, child),
		event.NewEvent(event.Create, child),
	)
	sn.frames = append(sn.frames, &txFrame{id: child})
	return wire.Response{Status: wire.StatusOK, Name: label}
}

// handleAccess runs one access as a child of the current transaction: it is
// created at the object, polled until the object grants REQUEST_COMMIT (with
// deadlock detection and a timeout aborting the whole top-level transaction),
// and then committed and reported immediately — an access is a leaf, so
// nothing is gained by leaving it open.
func (sn *session) handleAccess(q wire.Request) wire.Response {
	if len(sn.frames) == 0 {
		return errResp("ACCESS outside a transaction")
	}
	obj, err := sn.s.resolveObject(q.Obj)
	if err != nil {
		return errResp(err.Error())
	}
	if !specAllows(obj.sp, q.Op) {
		return errResp(fmt.Sprintf("object %q (%s) does not support op %s", q.Obj, obj.sp.Name(), q.Op))
	}
	cur := sn.frames[len(sn.frames)-1]
	sn.labelN++
	label := fmt.Sprintf("a%d", sn.labelN)
	op := spec.Op{Kind: q.Op, Arg: q.Arg}
	acc := sn.s.internTx(cur.id, label, obj.id, op)

	// Every open frame is an ancestor of the access: record the touch now,
	// before the access can block, so an abort that interrupts the wait
	// still informs the object (the runner's markTouched at CREATE time).
	for _, f := range sn.frames {
		f.touch(obj.id)
	}

	sn.appendLog(event.NewEvent(event.RequestCreate, acc))
	sn.s.withObj(obj, func() { //sgvet:holds obj.mu, sn.s.mu:r
		obj.g.Create(acc)
		sn.appendLog(event.NewEvent(event.Create, acc))
	})

	v, granted, reason := sn.waitGrant(obj, acc)
	if !granted {
		sn.abortTop(reason)
		return wire.Response{Status: wire.StatusTxAborted, Reason: reason}
	}
	sn.s.metrics.Accesses.Add(1)

	// The access auto-commits: COMMIT, inform its object, report to the
	// parent. Leaf-to-root inform order holds because the session emits a
	// child's informs before its parent can complete.
	sn.appendLog(event.NewEvent(event.Commit, acc))
	sn.s.withObj(obj, func() { //sgvet:holds obj.mu, sn.s.mu:r
		obj.g.InformCommit(acc)
		sn.appendLog(event.NewInform(event.InformCommit, acc, obj.id))
	})
	sn.appendLog(event.NewValEvent(event.ReportCommit, acc, v))
	return wire.Response{Status: wire.StatusOK, Value: v}
}

// waitGrant polls TryRequestCommit with exponential backoff until the object
// grants the access, the waits-for detector picks this session's top as a
// deadlock victim, the lock-wait times out, or the server is force-draining.
// The REQUEST_COMMIT event is appended while the object mutex is held, so
// the log's per-object operation order is the automaton's.
func (sn *session) waitGrant(obj *sharedObject, acc tname.TxID) (spec.Value, bool, string) {
	var (
		v       spec.Value
		ok      bool
		opts    = &sn.s.opts
		deadlne = opts.Hooks.Now().Add(opts.LockTimeout)
		backoff = opts.LockPoll
		polls   = 0
		waiting = false
	)
	defer func() {
		if waiting {
			sn.s.waits.unregister(sn.id)
		}
	}()
	for {
		var restart string
		sn.s.withObj(obj, func() { //sgvet:holds obj.mu, sn.s.mu:r
			v, ok = obj.g.TryRequestCommit(acc)
			if ok {
				sn.appendLog(event.NewValEvent(event.RequestCommit, acc, v))
			} else {
				restart = sn.s.backend.restartReason(obj.g, acc)
			}
		})
		if ok {
			return v, true, ""
		}
		if restart != "" {
			// The protocol says this access can never be granted (e.g. an
			// MVTO access below an already granted conflicting timestamp):
			// restart the classical transaction instead of parking forever.
			sn.s.metrics.RestartAborts.Add(1)
			return spec.Nil, false, restart
		}
		polls++
		sn.s.metrics.BlockedPolls.Add(1)
		if !waiting {
			waiting = true
			sn.s.waits.register(&waitEntry{sess: sn.id, access: acc, top: sn.frames[0].id, obj: obj})
		}
		if sn.s.killed.Load() {
			sn.s.metrics.DrainAborts.Add(1)
			return spec.Nil, false, "server draining"
		}
		if opts.DeadlockEvery > 0 && polls%opts.DeadlockEvery == 0 {
			if sn.s.deadlockVictim(sn.frames[0].id) {
				sn.s.metrics.DeadlockAborts.Add(1)
				return spec.Nil, false, "deadlock victim"
			}
		}
		if opts.Hooks.Now().After(deadlne) {
			sn.s.metrics.LockTimeouts.Add(1)
			return spec.Nil, false, "lock wait timeout"
		}
		opts.Hooks.LockWait(sn.id, backoff)
		if backoff *= 2; backoff > opts.LockPollMax {
			backoff = opts.LockPollMax
		}
	}
}

// handleCommit commits the current transaction. The response is not written
// until the online certifier's watermark covers the appended events, so a
// StatusOK commit is always backed by an acyclic SG(β) prefix.
func (sn *session) handleCommit() wire.Response {
	if len(sn.frames) == 0 {
		return errResp("COMMIT outside a transaction")
	}
	cur := sn.frames[len(sn.frames)-1]
	base := sn.appendLog(
		event.NewValEvent(event.RequestCommit, cur.id, spec.OK),
		event.NewEvent(event.Commit, cur.id),
	)
	sn.informAll(event.InformCommit, cur)
	seq := sn.appendLog(event.NewValEvent(event.ReportCommit, cur.id, spec.OK))
	sn.popFrame(cur)
	top := len(sn.frames) == 0
	// The commit's records must be in the WAL writer before the durability
	// fsync below, and a shard entry only reaches the writer when the
	// merger places it: wait for the merged prefix to cover the report.
	sn.s.opts.Hooks.MergeWait(sn.id, seq)
	sn.s.log.waitMerged(seq + 1)
	var walErr error
	if top {
		// Top-level completion is a durability point: fsync before the
		// client can observe the commit.
		walErr = sn.s.walSync()
	} else {
		// Writer failures are sticky: if any earlier append was dropped,
		// this subtree's events are not on their way to disk either.
		walErr = sn.s.WALError()
	}
	sn.s.opts.Hooks.CommitWait(sn.id, seq)

	if err := sn.s.cert.waitCertified(seq); err != nil {
		// The commit is already in the log; certification failing here means
		// the protocol let a non-serializable history through (a broken
		// protocol under test). Surface it loudly instead of claiming OK.
		sn.s.metrics.Uncertified.Add(1)
		return errResp(err.Error())
	}
	if walErr != nil {
		// The commit is in the in-memory log but not durable: acking OK
		// would let the client observe a commit that recovery loses.
		sn.s.metrics.WALFailures.Add(1)
		sn.s.logf("session %d: commit not durable: %v", sn.id, walErr)
		return errResp(fmt.Sprintf("commit not durable: %v", walErr))
	}
	if top {
		sn.s.metrics.TopCommits.Add(1)
	}
	return wire.Response{Status: wire.StatusOK, Seq: uint64(base + 1)}
}

// handleAbort aborts the current transaction at the client's request.
func (sn *session) handleAbort() wire.Response {
	if len(sn.frames) == 0 {
		return errResp("ABORT outside a transaction")
	}
	sn.s.metrics.ClientAborts.Add(1)
	cur := sn.frames[len(sn.frames)-1]
	sn.appendLog(event.NewEvent(event.Abort, cur.id))
	sn.informAll(event.InformAbort, cur)
	seq := sn.appendLog(event.NewEvent(event.ReportAbort, cur.id))
	sn.popFrame(cur)
	if len(sn.frames) == 0 {
		// A sync failure here is tolerable: an abort ack promises no
		// durability, and recovery aborts any orphan it finds anyway. The
		// merge wait keeps the sync covering this abort's own records.
		sn.s.opts.Hooks.MergeWait(sn.id, seq)
		sn.s.log.waitMerged(seq + 1)
		sn.s.walSync()
	}
	return wire.Response{Status: wire.StatusOK}
}

// abortTop aborts the session's whole top-level transaction — the server's
// unilateral move for deadlock victims, lock timeouts, drains and dropped
// connections. Open subtransactions (and a still-live blocked access) become
// orphans, exactly as in the runner: informing the objects of the top's
// abort discards the entire subtree's locks and log entries.
func (sn *session) abortTop(reason string) {
	top := sn.frames[0]
	sn.appendLog(event.NewEvent(event.Abort, top.id))
	sn.informAll(event.InformAbort, top)
	seq := sn.appendLog(event.NewEvent(event.ReportAbort, top.id))
	// Sync failures are ignored: an undurable abort is recovered as an
	// orphan and aborted again, which is the same outcome.
	sn.s.opts.Hooks.MergeWait(sn.id, seq)
	sn.s.log.waitMerged(seq + 1)
	sn.s.walSync()
	sn.frames = sn.frames[:0]
	sn.inTx.Store(false)
	sn.lastAborted = true
	sn.s.logf("session %d: aborted %s: %s", sn.id, sn.s.nameOf(top.id), reason)
}

// informAll delivers INFORM_COMMIT/INFORM_ABORT of f's transaction to every
// object its subtree touched, calling the automaton and appending the inform
// under each object's mutex.
func (sn *session) informAll(kind event.Kind, f *txFrame) {
	for _, x := range f.touched {
		sn.s.mu.RLock()
		obj := sn.s.objs[x]
		sn.s.mu.RUnlock()
		sn.s.withObj(obj, func() { //sgvet:holds obj.mu, sn.s.mu:r
			if kind == event.InformCommit {
				obj.g.InformCommit(f.id)
			} else {
				obj.g.InformAbort(f.id)
			}
			sn.appendLog(event.NewInform(kind, f.id, x))
		})
	}
}

// popFrame closes the innermost frame after its completion events are in the
// log, folding its touched set into the parent (already done eagerly at
// access time, but kept for frames opened after the touches).
func (sn *session) popFrame(cur *txFrame) {
	sn.frames = sn.frames[:len(sn.frames)-1]
	if len(sn.frames) > 0 {
		parent := sn.frames[len(sn.frames)-1]
		for _, x := range cur.touched {
			parent.touch(x)
		}
	} else {
		sn.inTx.Store(false)
	}
}

// nameOf formats a transaction name under the tree read lock.
func (s *Server) nameOf(t tname.TxID) string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.tr.Name(t)
}

// handleVerdict reports the live certification state.
func (sn *session) handleVerdict() wire.Response {
	wm, acyclic := sn.s.cert.state()
	logLen := sn.s.log.len()
	if wm > logLen {
		wm = logLen
	}
	parents, nodes, edges := sn.s.cert.gauges()
	return wire.Response{Status: wire.StatusOK, Verdict: wire.Verdict{
		Events:    uint64(logLen),
		Certified: uint64(wm),
		Acyclic:   acyclic,
		Parents:   uint64(parents),
		Nodes:     uint64(nodes),
		Edges:     uint64(edges),
		Commits:   uint64(sn.s.metrics.CommitEvents.Load()),
		Aborts:    uint64(sn.s.metrics.AbortEvents.Load()),
	}}
}
