package server

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"nestedsg/internal/core"
	"nestedsg/internal/event"
)

// eventLog is the totally-ordered atomic event log of the server: every
// session appends its serial and inform events here under one mutex, so the
// log order is the behavior β the certifier judges. The order is produced by
// the race itself — whichever session wins the mutex appends first — and the
// per-object/per-session emission discipline (see session.go) guarantees the
// result is a generic behavior.
type eventLog struct {
	mu     sync.Mutex
	cond   *sync.Cond
	events event.Behavior //sgvet:guardedby mu
	closed bool           //sgvet:guardedby mu

	// wal, when set, receives every atomic append as one WalEvents record
	// — written under mu, so the durable record order IS the log order.
	// (Recovery installs it before the listener starts; see recovery.go.)
	wal    *walWriter //sgvet:guardedby mu
	walBuf []byte     //sgvet:guardedby mu
}

func newEventLog() *eventLog {
	l := &eventLog{}
	l.cond = sync.NewCond(&l.mu)
	return l
}

// append atomically appends evs and returns the log index of the first one.
//
//sgvet:hotpath
func (l *eventLog) append(evs ...event.Event) int {
	l.mu.Lock()
	base := len(l.events)
	l.events = append(l.events, evs...)
	if l.wal != nil {
		l.walBuf = event.AppendWalEvents(l.walBuf[:0], evs...)
		l.wal.appendRecord(l.walBuf)
	}
	l.mu.Unlock()
	l.cond.Broadcast()
	return base
}

// len reports the current log length.
//
//sgvet:hotpath
func (l *eventLog) len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.events)
}

// snapshot copies the current log.
func (l *eventLog) snapshot() event.Behavior {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append(event.Behavior(nil), l.events...)
}

// close marks the log complete and wakes the certifier so it can drain and
// exit.
func (l *eventLog) close() {
	l.mu.Lock()
	l.closed = true
	l.mu.Unlock()
	l.cond.Broadcast()
}

// waitBeyond blocks until the log extends past n (returning a copy of the
// new suffix in buf) or is closed with nothing left (returning ok=false).
//
//sgvet:hotpath
func (l *eventLog) waitBeyond(n int, buf event.Behavior) (event.Behavior, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for len(l.events) <= n && !l.closed {
		l.cond.Wait()
	}
	if len(l.events) <= n {
		return nil, false
	}
	buf = append(buf[:0], l.events[n:]...)
	return buf, true
}

// certifier runs core.Incremental behind the event log: a single goroutine
// consumes the log in order and certifies each prefix, so a commit response
// can wait until the watermark covers its COMMIT event and thereby carry an
// acyclic-SG(β)-prefix guarantee. Prefix-monotonicity of the SG edge set
// (see core.Incremental) makes the online verdict agree with the offline
// batch verdict on every extension, which is why certifying behind the log
// is sound.
type certifier struct {
	srv *Server
	inc *core.Incremental

	mu        sync.Mutex
	cond      *sync.Cond
	watermark int         //sgvet:guardedby mu
	cycle     *core.Cycle //sgvet:guardedby mu
	cycleAt   int         //sgvet:guardedby mu

	// Live gauges, readable without the certifier's locks.
	parents, nodes, edges atomic.Int64

	// start is how many log events Recover primed synchronously before
	// the loop began; the loop resumes after them.
	start int

	done chan struct{}
}

//sgvet:ignore[lockguard] construction: runs inside newServer before the server is shared with any goroutine
func newCertifier(s *Server) *certifier {
	c := &certifier{
		srv:     s,
		inc:     core.NewIncremental(s.tr),
		cycleAt: -1,
		done:    make(chan struct{}),
	}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// loop consumes the log until it is closed and drained. The tree read lock
// is held while appending (sessions intern names under the write lock).
func (c *certifier) loop() {
	defer close(c.done)
	processed := c.start
	var buf event.Behavior
	for {
		batch, ok := c.srv.log.waitBeyond(processed, buf)
		if !ok {
			// Closed and drained: release any lingering waiters.
			c.mu.Lock()
			c.watermark = math.MaxInt
			c.mu.Unlock()
			c.cond.Broadcast()
			return
		}
		buf = batch
		// Apply the suffix as runs: one tree read-lock acquisition, one
		// gauge refresh and one watermark publish per run instead of per
		// event. Prefix-monotonicity of the SG edge set makes this sound —
		// judging the run's end prefix certifies every prefix inside it,
		// and Incremental records the exact index of the first rejection
		// regardless of how the appends were grouped. CertBatch lets a
		// harness cut runs at its stall point so batching never crosses
		// one.
		for off := 0; off < len(batch); {
			// The stall hook runs without any server lock held, so a
			// harness-stalled certifier cannot wedge the sessions.
			c.srv.opts.Hooks.CertApply(processed + off)
			n := c.srv.opts.Hooks.CertBatch(processed+off, len(batch)-off)
			if n < 1 {
				n = 1
			} else if n > len(batch)-off {
				n = len(batch) - off
			}
			c.srv.mu.RLock()
			for _, e := range batch[off : off+n] {
				c.inc.Append(e)
			}
			p, nn, ed := c.inc.Counts()
			c.srv.mu.RUnlock()
			c.parents.Store(int64(p))
			c.nodes.Store(int64(nn))
			c.edges.Store(int64(ed))
			off += n

			c.mu.Lock()
			c.watermark = processed + off
			if c.cycle == nil {
				c.cycle, c.cycleAt = c.inc.Rejected()
			}
			c.mu.Unlock()
			c.cond.Broadcast()
		}
		processed += len(batch)
	}
}

// waitCertified blocks until the certifier has consumed the log through seq
// and returns nil when every prefix up to seq has an acyclic SG, or the
// cycle certificate error from the first violating prefix at or before seq.
func (c *certifier) waitCertified(seq int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for c.watermark <= seq {
		c.cond.Wait()
	}
	if c.cycle != nil && c.cycleAt <= seq {
		c.srv.mu.RLock()
		msg := c.cycle.Format(c.srv.tr)
		c.srv.mu.RUnlock()
		return fmt.Errorf("server: SG(β) acquired a cycle at log event %d: %s", c.cycleAt, msg)
	}
	return nil
}

// state reports (watermark, acyclic) for the verdict request.
func (c *certifier) state() (int, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.watermark, c.cycle == nil
}
