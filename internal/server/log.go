package server

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"nestedsg/internal/core"
	"nestedsg/internal/event"
)

// defaultLogShards is the append-shard count when Options.LogShards is 0.
const defaultLogShards = 4

// pendEntry is one atomic append parked in a shard, waiting for the merger:
// base is its global log index (the ticket), evs the events of the append.
type pendEntry struct {
	base int
	evs  []event.Event
}

// logShard is one striped append buffer. Sessions hash to a shard by id, so
// two sessions on different shards never contend on an append mutex; the
// global order is fixed by the ticket taken inside the shard's critical
// section, not by who wins a shared lock.
type logShard struct {
	idx int

	mu   sync.Mutex
	q    []pendEntry //sgvet:guardedby mu
	head int         //sgvet:guardedby mu
	// free recycles the event slices of merged entries back to appenders,
	// keeping the steady-state append path allocation-free.
	free [][]event.Event //sgvet:guardedby mu

	// appends counts events ticketed through this shard (metrics); the
	// shard counters sum to the global log length.
	appends atomic.Int64
}

// defEntry is one pending WAL definition record: seq is its intern order,
// evbase the global event count at intern time. The merger must flush it
// before merging any event at index ≥ evbase, which preserves the WAL's
// definition-before-use order.
type defEntry struct {
	seq    int
	evbase int
	rec    []byte
}

// shardedLog is the totally-ordered atomic event log of the server, striped
// for append concurrency. Appenders take a global ticket (a fetch-add on
// evSeq) inside their shard's critical section — so the ticket order is an
// order the single-mutex log could have produced, and every append is
// inserted into its shard queue already holding its final log index. A
// single merger goroutine stitches the shards back into the totally-ordered
// merged prefix in strict ticket order, writes each entry's WAL record, and
// feeds the certifier. The emission discipline of session.go is unchanged
// (tickets for REQUEST_COMMIT/informs are taken under the object mutex, and
// a session's own events ticket in program order), so the merged order is
// still a generic behavior; see DESIGN.md §13 for the full argument.
type shardedLog struct {
	shards []*logShard
	// evSeq is the next global ticket == the number of events appended.
	evSeq atomic.Int64

	// Pending definition records, fed under the tree write lock (so defSeq
	// is contiguous and evbase monotonic).
	defMu   sync.Mutex
	defSeq  int        //sgvet:guardedby defMu
	defs    []defEntry //sgvet:guardedby defMu
	defHead int        //sgvet:guardedby defMu
	defFree [][]byte   //sgvet:guardedby defMu

	// wake is the merger's doorbell: one buffered token is enough, the
	// merger rescans everything each time it wakes.
	wake chan struct{}

	// Merged state: the totally-ordered prefix the certifier consumes.
	mu      sync.Mutex
	cond    *sync.Cond
	events  event.Behavior //sgvet:guardedby mu
	closing bool           //sgvet:guardedby mu
	closed  bool           //sgvet:guardedby mu

	// wal, when set, receives every merged entry as one WalEvents record —
	// written by the merger in merged order, so the durable record order IS
	// the log order. Recovery installs it before the merger starts.
	wal    *walWriter
	walBuf []byte // merger-owned scratch

	// live flips to true when the merger goroutine starts; before that
	// (construction, recovery) appends drain inline on the caller.
	live       bool
	mergerDone chan struct{}

	hooks   Hooks
	metrics *Metrics
}

func newShardedLog(n int, hooks Hooks, m *Metrics) *shardedLog {
	if n < 1 {
		n = 1
	}
	l := &shardedLog{
		shards:     make([]*logShard, n),
		wake:       make(chan struct{}, 1),
		mergerDone: make(chan struct{}),
		hooks:      hooks,
		metrics:    m,
	}
	for i := range l.shards {
		l.shards[i] = &logShard{idx: i}
	}
	l.cond = sync.NewCond(&l.mu)
	return l
}

// shardFor picks the session's shard.
func (l *shardedLog) shardFor(sess int64) *logShard {
	return l.shards[int(uint64(sess)%uint64(len(l.shards)))]
}

// append atomically appends evs through sh and returns the global log index
// of the first one. The ticket is taken with sh.mu held, so an entry is in
// its shard queue by the time any later ticket exists — the merger never has
// to wait on an unannounced index — and the caller's enclosing critical
// section (object mutex, session program order) fixes the ticket order
// exactly as it fixed the append order of the single-mutex log.
//
//sgvet:hotpath
func (l *shardedLog) append(sh *logShard, evs ...event.Event) int {
	n := len(evs)
	sh.mu.Lock()
	base := int(l.evSeq.Add(int64(n))) - n
	var dst []event.Event
	if k := len(sh.free); k > 0 {
		dst = sh.free[k-1][:0]
		sh.free = sh.free[:k-1]
	}
	dst = append(dst, evs...)
	sh.q = append(sh.q, pendEntry{base: base, evs: dst})
	sh.mu.Unlock()
	sh.appends.Add(int64(n))
	if l.live {
		l.ring()
	} else {
		l.mergePending()
	}
	return base
}

// appendDef queues one WAL definition record, encoded by enc into a pooled
// buffer. Callers hold the tree write lock, so intern order == queue order
// and the merger flushes definitions in exactly the order recovery's
// sequential-ID replay demands.
func (l *shardedLog) appendDef(enc func([]byte) []byte) {
	l.defMu.Lock()
	var rec []byte
	if k := len(l.defFree); k > 0 {
		rec = l.defFree[k-1][:0]
		l.defFree = l.defFree[:k-1]
	}
	rec = enc(rec)
	l.defs = append(l.defs, defEntry{seq: l.defSeq, evbase: int(l.evSeq.Load()), rec: rec})
	l.defSeq++
	l.defMu.Unlock()
	if l.live {
		l.ring()
	} else {
		l.mergePending()
	}
}

// ring rings the merger's doorbell (non-blocking; one token suffices).
//
//sgvet:hotpath
func (l *shardedLog) ring() {
	select {
	case l.wake <- struct{}{}:
	default:
	}
}

// startMerger starts the background merger. Everything appended before this
// call has been drained inline; everything after goes through the merger.
// Must be called before any session goroutine exists.
func (l *shardedLog) startMerger() {
	l.live = true
	go l.mergeLoop()
}

// mergeLoop drains eligible entries whenever the doorbell rings, and exits
// once the log is closing and fully merged.
func (l *shardedLog) mergeLoop() {
	defer close(l.mergerDone)
	for {
		if l.metrics != nil {
			if lag := int(l.evSeq.Load()) - l.mergedLen(); lag > 0 {
				l.metrics.MergeLag.ObserveVal(int64(lag))
			}
		}
		if n := l.mergePending(); n > 0 {
			if l.metrics != nil {
				l.metrics.MergeBatch.ObserveVal(int64(n))
			}
			continue
		}
		l.defMu.Lock()
		defsPending := l.defHead < len(l.defs)
		l.defMu.Unlock()
		l.mu.Lock()
		done := l.closing && !defsPending && len(l.events) == int(l.evSeq.Load())
		if done {
			l.closed = true
		}
		l.mu.Unlock()
		if done {
			l.cond.Broadcast()
			return
		}
		<-l.wake
	}
}

// mergePending merges every entry that is currently eligible — strict
// ticket order, flushing pending definition records ahead of the events
// that may reference them — and returns how many entries it merged. It is
// the merger's whole step function, and doubles as the inline drain used
// before the merger starts (recovery, construction), where it runs on the
// single constructing goroutine.
func (l *shardedLog) mergePending() int {
	merged := 0
	next := l.mergedLen()
	for {
		l.flushDefs(next)
		sh, e, ok := l.eligible(next)
		if !ok {
			return merged
		}
		// The stall hook runs with no log lock held, so a harness-stalled
		// shard cannot wedge appenders or waiters on already-merged events.
		l.hooks.MergeApply(sh.idx, e.base)
		sh.mu.Lock()
		sh.q[sh.head] = pendEntry{}
		sh.head++
		if sh.head == len(sh.q) {
			sh.q = sh.q[:0]
			sh.head = 0
		}
		sh.mu.Unlock()
		if l.wal != nil {
			// One WalEvents record per atomic append, in merged order.
			l.walBuf = event.AppendWalEvents(l.walBuf[:0], e.evs...)
			l.wal.appendRecord(l.walBuf)
		}
		l.mu.Lock()
		l.events = append(l.events, e.evs...)
		next = len(l.events)
		l.mu.Unlock()
		l.cond.Broadcast()
		sh.mu.Lock()
		sh.free = append(sh.free, e.evs[:0])
		sh.mu.Unlock()
		merged++
	}
}

// eligible finds the shard whose head entry holds the next ticket. At most
// one shard can: tickets are unique and per-shard queues are sorted.
func (l *shardedLog) eligible(next int) (*logShard, pendEntry, bool) {
	for _, sh := range l.shards {
		sh.mu.Lock()
		if sh.head < len(sh.q) && sh.q[sh.head].base == next {
			e := sh.q[sh.head]
			sh.mu.Unlock()
			return sh, e, true
		}
		sh.mu.Unlock()
	}
	return nil, pendEntry{}, false
}

// flushDefs writes every pending definition record whose evbase ≤ next to
// the WAL, in intern order. A definition interned before event index i has
// evbase ≤ i, so flushing before merging the event at next keeps every
// record's names defined by the time recovery replays it.
func (l *shardedLog) flushDefs(next int) {
	l.defMu.Lock()
	for l.defHead < len(l.defs) && l.defs[l.defHead].evbase <= next {
		d := l.defs[l.defHead]
		if l.wal != nil {
			l.wal.appendRecord(d.rec)
		}
		l.defFree = append(l.defFree, d.rec[:0])
		l.defs[l.defHead] = defEntry{}
		l.defHead++
	}
	if l.defHead == len(l.defs) {
		l.defs = l.defs[:0]
		l.defHead = 0
	}
	l.defMu.Unlock()
}

// pendingIn reports the smallest unmerged ticket owned by shard that is
// ≥ from, or -1. The simulator uses it to decide deterministically whether
// a wait on the merged watermark will block behind a stalled shard.
func (l *shardedLog) pendingIn(shard, from int) int {
	sh := l.shards[shard]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	for i := sh.head; i < len(sh.q); i++ {
		if sh.q[i].base >= from {
			return sh.q[i].base
		}
	}
	return -1
}

// len reports how many events have been appended (ticketed).
//
//sgvet:hotpath
func (l *shardedLog) len() int { return int(l.evSeq.Load()) }

// mergedLen reports how many events the merger has placed in total order.
func (l *shardedLog) mergedLen() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.events)
}

// waitMerged blocks until the merged prefix covers [0, n) or the log is
// closed. Sessions call it before a durability fsync, so every record of
// the completion is in the WAL writer before the sync — the group-commit
// cohort invariant of the single-mutex log, restored under sharding.
//
//sgvet:hotpath
func (l *shardedLog) waitMerged(n int) {
	l.mu.Lock()
	for len(l.events) < n && !l.closed {
		l.cond.Wait()
	}
	l.mu.Unlock()
}

// snapshot copies the current merged log. Callers that need the complete
// log (Final, recovery audits) run after the merger has drained.
func (l *shardedLog) snapshot() event.Behavior {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append(event.Behavior(nil), l.events...)
}

// prime seeds the merged prefix with a recovered behavior; recovery calls
// it single-threaded before the merger starts.
func (l *shardedLog) prime(b event.Behavior) {
	l.mu.Lock()
	l.events = b
	l.mu.Unlock()
	l.evSeq.Store(int64(len(b)))
}

// close marks the log complete, waits for the merger to drain every pending
// entry (appenders are gone: Shutdown/Kill wait for sessions first), and
// wakes the certifier so it can drain and exit.
func (l *shardedLog) close() {
	l.mu.Lock()
	l.closing = true
	l.mu.Unlock()
	if !l.live {
		l.mergePending()
		l.mu.Lock()
		l.closed = true
		l.mu.Unlock()
		l.cond.Broadcast()
		return
	}
	l.ring()
	<-l.mergerDone
}

// waitBeyond blocks until the merged log extends past n (returning a copy of
// the new suffix in buf) or is closed with nothing left (returning ok=false).
//
//sgvet:hotpath
func (l *shardedLog) waitBeyond(n int, buf event.Behavior) (event.Behavior, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for len(l.events) <= n && !l.closed {
		l.cond.Wait()
	}
	if len(l.events) <= n {
		return nil, false
	}
	buf = append(buf[:0], l.events[n:]...)
	return buf, true
}

// certBackend is the seam between the server and its certification
// engine. Two implementations exist: the single-goroutine certifier
// below (the default, Options.CertPartitions ≤ 1) and the partitioned
// multi-certifier of internal/part (partcert.go). Both gate every
// commit ack on an acyclic-SG(β)-prefix covering its COMMIT event and
// both produce a final snapshot byte-identical to the batch check.
type certBackend interface {
	// prime replays a recovered log synchronously — before any session
	// or certification goroutine exists — and returns the recovery
	// rejection error if the durable prefix is already cyclic.
	prime(full event.Behavior) error
	// start launches the certification goroutine(s) after the log is
	// seeded or primed; waitDone blocks until the closed log has fully
	// drained through them and they have exited.
	start()
	waitDone()
	// waitCertified blocks until the certified watermark passes seq,
	// returning nil when an acyclic SG(β) prefix covers it and the
	// cycle-certificate error otherwise.
	waitCertified(seq int) error
	// state reports (watermark, acyclic) for the verdict request.
	state() (watermark int, acyclic bool)
	// gauges reports the live graph size: parents, nodes, edge records.
	gauges() (parents, nodes, edges int64)
	// snapshotSG materializes the online SG for audits and Final.
	snapshotSG() *core.SG
	// metricsInto adds backend-specific keys to the metrics snapshot.
	metricsInto(snap map[string]any)
}

// certifier runs core.Incremental behind the event log: a single goroutine
// consumes the merged log in order and certifies each prefix, so a commit
// response can wait until the watermark covers its COMMIT event and thereby
// carry an acyclic-SG(β)-prefix guarantee. Prefix-monotonicity of the SG
// edge set (see core.Incremental) makes the online verdict agree with the
// offline batch verdict on every extension, which is why certifying behind
// the log is sound.
type certifier struct {
	srv *Server
	inc *core.Incremental

	mu        sync.Mutex
	cond      *sync.Cond
	watermark int         //sgvet:guardedby mu
	cycle     *core.Cycle //sgvet:guardedby mu
	cycleAt   int         //sgvet:guardedby mu

	// Live gauges, readable without the certifier's locks.
	parents, nodes, edges atomic.Int64

	// primed is how many log events Recover replayed synchronously
	// before the loop began; the loop resumes after them.
	primed int

	done chan struct{}
}

//sgvet:ignore[lockguard] construction: runs inside newServer before the server is shared with any goroutine
func newCertifier(s *Server) *certifier {
	c := &certifier{
		srv:     s,
		inc:     core.NewIncremental(s.tr),
		cycleAt: -1,
		done:    make(chan struct{}),
	}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// loop consumes the log until it is closed and drained. The tree read lock
// is held while appending (sessions intern names under the write lock).
func (c *certifier) loop() {
	defer close(c.done)
	processed := c.primed
	var buf event.Behavior
	for {
		batch, ok := c.srv.log.waitBeyond(processed, buf)
		if !ok {
			// Closed and drained: release any lingering waiters.
			c.mu.Lock()
			c.watermark = math.MaxInt
			c.mu.Unlock()
			c.cond.Broadcast()
			return
		}
		buf = batch
		// Apply the suffix as runs: one tree read-lock acquisition, one
		// gauge refresh and one watermark publish per run instead of per
		// event. Prefix-monotonicity of the SG edge set makes this sound —
		// judging the run's end prefix certifies every prefix inside it,
		// and Incremental records the exact index of the first rejection
		// regardless of how the appends were grouped. CertBatch lets a
		// harness cut runs at its stall point so batching never crosses
		// one.
		for off := 0; off < len(batch); {
			// The stall hook runs without any server lock held, so a
			// harness-stalled certifier cannot wedge the sessions.
			c.srv.opts.Hooks.CertApply(processed + off)
			n := c.srv.opts.Hooks.CertBatch(processed+off, len(batch)-off)
			if n < 1 {
				n = 1
			} else if n > len(batch)-off {
				n = len(batch) - off
			}
			c.srv.mu.RLock()
			for _, e := range batch[off : off+n] {
				c.inc.Append(e)
			}
			p, nn, ed := c.inc.Counts()
			c.srv.mu.RUnlock()
			c.parents.Store(int64(p))
			c.nodes.Store(int64(nn))
			c.edges.Store(int64(ed))
			off += n

			c.mu.Lock()
			c.watermark = processed + off
			if c.cycle == nil {
				c.cycle, c.cycleAt = c.inc.Rejected()
			}
			c.mu.Unlock()
			c.cond.Broadcast()
		}
		processed += len(batch)
	}
}

// waitCertified blocks until the certifier has consumed the log through seq
// and returns nil when every prefix up to seq has an acyclic SG, or the
// cycle certificate error from the first violating prefix at or before seq.
func (c *certifier) waitCertified(seq int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for c.watermark <= seq {
		c.cond.Wait()
	}
	if c.cycle != nil && c.cycleAt <= seq {
		c.srv.mu.RLock()
		msg := c.cycle.Format(c.srv.tr)
		c.srv.mu.RUnlock()
		return fmt.Errorf("server: SG(β) acquired a cycle at log event %d: %s", c.cycleAt, msg)
	}
	return nil
}

// state reports (watermark, acyclic) for the verdict request.
func (c *certifier) state() (int, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.watermark, c.cycle == nil
}

// prime replays the recovered log through the incremental graph
// synchronously; recovery calls it single-threaded before the loop
// starts, so the loop resumes exactly after the primed prefix.
//
//sgvet:ignore[lockguard] recovery is single-threaded: no session or certifier goroutine exists yet
func (c *certifier) prime(full event.Behavior) error {
	for _, e := range full {
		c.inc.Append(e)
	}
	if cyc, at := c.inc.Rejected(); cyc != nil {
		return fmt.Errorf("server: recovery rejected wal: SG(β) cyclic at durable event %d: %s", at, cyc.Format(c.srv.tr))
	}
	p, n, ed := c.inc.Counts()
	c.parents.Store(int64(p))
	c.nodes.Store(int64(n))
	c.edges.Store(int64(ed))
	c.primed = len(full)
	c.mu.Lock()
	c.watermark = len(full)
	c.mu.Unlock()
	return nil
}

func (c *certifier) start()    { go c.loop() }
func (c *certifier) waitDone() { <-c.done }

func (c *certifier) gauges() (int64, int64, int64) {
	return c.parents.Load(), c.nodes.Load(), c.edges.Load()
}

// snapshotSG is called single-threaded (recovery) or post-drain (Final),
// so the incremental graph is quiescent.
func (c *certifier) snapshotSG() *core.SG { return c.inc.Snapshot() }

func (c *certifier) metricsInto(snap map[string]any) {
	snap["cert_partitions"] = 1
}
