package server_test

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"nestedsg/internal/client"
	"nestedsg/internal/server"
	"nestedsg/internal/spec"
)

// gatedDisk wraps a MemDisk, counts the fsyncs that actually reach it, and
// can hold every fsync at a gate: the group-commit tests park the cohort
// leader inside its sync, let the rest of the cohort pile up behind the
// generation ticket, and only then release — so the coalescing they assert
// is deterministic, not a race the test happens to win.
type gatedDisk struct {
	*server.MemDisk
	syncs atomic.Int64 // fsyncs that reached the backing MemDisk
	gate  atomic.Pointer[syncGate]
}

// syncGate is one armed gate: the first fsync to hit it closes entered,
// every fsync blocks until release is closed, and err (when set) is
// returned instead of syncing — the disk "dies" mid-group.
type syncGate struct {
	enterOnce sync.Once
	entered   chan struct{}
	release   chan struct{}
	err       error
}

func newGatedDisk() *gatedDisk { return &gatedDisk{MemDisk: server.NewMemDisk()} }

func (d *gatedDisk) arm(err error) *syncGate {
	g := &syncGate{entered: make(chan struct{}), release: make(chan struct{}), err: err}
	d.gate.Store(g)
	return g
}

func (d *gatedDisk) Create(name string) (server.SegmentFile, error) {
	f, err := d.MemDisk.Create(name)
	if err != nil {
		return nil, err
	}
	return &gatedFile{d: d, f: f}, nil
}

type gatedFile struct {
	d *gatedDisk
	f server.SegmentFile
}

func (f *gatedFile) Write(p []byte) (int, error) { return f.f.Write(p) }
func (f *gatedFile) Close() error                { return f.f.Close() }

func (f *gatedFile) Sync() error {
	if g := f.d.gate.Load(); g != nil {
		g.enterOnce.Do(func() { close(g.entered) })
		<-g.release
		if g.err != nil {
			return g.err
		}
	}
	f.d.syncs.Add(1)
	return f.f.Sync()
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestGroupCommitCoalescesFsyncs: 8 concurrent top-level commits must
// share fsyncs instead of issuing one each. The first committer becomes
// the generation leader and parks inside the gated fsync; the other 7
// arrive and wait on the next generation ticket; releasing the gate must
// drain all 8 with exactly two fsyncs — the leader's own and one covering
// the whole remaining cohort.
func TestGroupCommitCoalescesFsyncs(t *testing.T) {
	disk := newGatedDisk()
	const n = 8
	objs := make([]string, n)
	for i := range objs {
		objs[i] = fmt.Sprintf("x%d", i)
	}
	s, _ := recoverAndStart(t, server.Options{WAL: disk, Objects: objs})

	conns := make([]*client.Conn, n)
	for i := range conns {
		conns[i] = dialT(t, s)
		if _, err := conns[i].Begin(); err != nil {
			t.Fatalf("begin %d: %v", i, err)
		}
		if _, err := conns[i].Access(objs[i], spec.OpWrite, spec.Int(1)); err != nil {
			t.Fatalf("access %d: %v", i, err)
		}
	}

	m := s.Metrics()
	baseSyncs := disk.syncs.Load()
	baseReq := m.WALSyncRequests.Load()
	baseWALSyncs := m.WALSyncs.Load()
	baseArrived := s.GroupArrived()

	g := disk.arm(nil)
	errs := make(chan error, n)
	for _, c := range conns {
		go func(c *client.Conn) {
			_, err := c.Commit()
			errs <- err
		}(c)
	}
	// The leader is parked inside the gated fsync; wait until the whole
	// cohort has joined the group committer before letting it through.
	<-g.entered
	waitFor(t, "cohort arrival", func() bool { return s.GroupArrived() >= baseArrived+n })
	close(g.release)
	for i := 0; i < n; i++ {
		if err := <-errs; err != nil {
			t.Fatalf("commit: %v", err)
		}
	}

	fsyncs := disk.syncs.Load() - baseSyncs
	if fsyncs >= n {
		t.Fatalf("no coalescing: %d fsyncs for %d commits (want < %d)", fsyncs, n, n)
	}
	// Deterministically: the leader's generation serves itself, the next
	// generation serves the remaining 7.
	if fsyncs != 2 {
		t.Fatalf("got %d fsyncs for %d gated commits, want exactly 2", fsyncs, n)
	}
	if got := m.WALSyncRequests.Load() - baseReq; got != n {
		t.Fatalf("WALSyncRequests delta = %d, want %d", got, n)
	}
	if got := m.WALSyncs.Load() - baseWALSyncs; got != fsyncs {
		t.Fatalf("WALSyncs metric = %d, disk counted %d", got, fsyncs)
	}
	if mean := m.GroupSize.MeanVal(); mean < 2 {
		t.Fatalf("GroupSize mean = %.2f, want >= 2 (cohorts of 1 and 7)", mean)
	}
	for _, c := range conns {
		c.Close()
	}
	shutdownAndVerify(t, s)
}

// TestGroupCommitAckOrdering: a commit must not be acknowledged while the
// fsync covering its records is still outstanding — the ack would promise
// durability the disk has not delivered yet.
func TestGroupCommitAckOrdering(t *testing.T) {
	disk := newGatedDisk()
	s, _ := recoverAndStart(t, server.Options{WAL: disk, Objects: []string{"x"}})
	c := dialT(t, s)
	if _, err := c.Begin(); err != nil {
		t.Fatalf("begin: %v", err)
	}
	if _, err := c.Access("x", spec.OpWrite, spec.Int(1)); err != nil {
		t.Fatalf("access: %v", err)
	}

	g := disk.arm(nil)
	done := make(chan error, 1)
	go func() {
		_, err := c.Commit()
		done <- err
	}()
	<-g.entered
	// The fsync is parked at the gate; the ack must not arrive.
	for i := 0; i < 20; i++ {
		select {
		case err := <-done:
			t.Fatalf("commit acked while its fsync was outstanding (err=%v)", err)
		default:
		}
		time.Sleep(2 * time.Millisecond)
	}
	close(g.release)
	if err := <-done; err != nil {
		t.Fatalf("commit after fsync returned: %v", err)
	}
	c.Close()
	shutdownAndVerify(t, s)
}

// TestCrashMidGroupRefusesLostCohort: a crash that lands while a whole
// cohort is parked on one fsync must lose the cohort cleanly — no member
// is acked StatusOK, and recovery from the crash image reports every
// member as an orphaned (hence aborted) top while keeping the commits that
// were durable before the group formed.
func TestCrashMidGroupRefusesLostCohort(t *testing.T) {
	disk := newGatedDisk()
	const n = 4
	objs := []string{"seed"}
	for i := 0; i < n; i++ {
		objs = append(objs, fmt.Sprintf("x%d", i))
	}
	s, _ := recoverAndStart(t, server.Options{WAL: disk, Objects: objs})

	cohort := make([]*client.Conn, n)
	for i := range cohort {
		cohort[i] = dialT(t, s)
		if _, err := cohort[i].Begin(); err != nil {
			t.Fatalf("begin %d: %v", i, err)
		}
		if _, err := cohort[i].Access(objs[i+1], spec.OpWrite, spec.Int(1)); err != nil {
			t.Fatalf("access %d: %v", i, err)
		}
	}
	// An unrelated committed transaction fsyncs the segment, making the
	// cohort's BEGIN/ACCESS records part of the synced prefix — so the
	// crash image contains the cohort's definitions but not its commits.
	seed := dialT(t, s)
	if err := seed.RunTx(1, func(tx *client.Tx) error {
		_, err := tx.Access("seed", spec.OpWrite, spec.Int(7))
		return err
	}); err != nil {
		t.Fatalf("seed commit: %v", err)
	}

	baseArrived := s.GroupArrived()
	g := disk.arm(errInjected) // released fsyncs fail: the disk died mid-group
	errs := make(chan error, n)
	for _, c := range cohort {
		go func(c *client.Conn) {
			_, err := c.Commit()
			errs <- err
		}(c)
	}
	<-g.entered
	waitFor(t, "cohort arrival", func() bool { return s.GroupArrived() >= baseArrived+n })

	// Snapshot the disk at the crash point: the cohort's COMMIT records
	// are appended but unsynced, so Crash(0) drops them.
	crashed := disk.Crash(0)
	close(g.release)
	for i := 0; i < n; i++ {
		err := <-errs
		if err == nil {
			t.Fatal("a cohort member was acked StatusOK although its fsync failed")
		}
		if !strings.Contains(err.Error(), "not durable") {
			t.Fatalf("cohort member error = %v, want a commit-not-durable refusal", err)
		}
	}
	seed.Close()
	s.Kill()

	s2, rep := recoverAndStart(t, server.Options{WAL: crashed, Objects: objs})
	if rep.OrphanTops != n {
		t.Fatalf("recovery found %d orphan tops, want the whole lost cohort (%d)", rep.OrphanTops, n)
	}
	if got := s2.Metrics().TopCommits.Load(); got != 1 {
		t.Fatalf("recovered TopCommits = %d, want 1 (only the seed commit was durable)", got)
	}
	// The recovered server keeps working.
	c2 := dialT(t, s2)
	if err := c2.RunTx(1, func(tx *client.Tx) error {
		_, err := tx.Access("seed", spec.OpWrite, spec.Int(8))
		return err
	}); err != nil {
		t.Fatalf("post-recovery commit: %v", err)
	}
	c2.Close()
	shutdownAndVerify(t, s2)
}
