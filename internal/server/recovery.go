package server

import (
	"fmt"

	"nestedsg/internal/core"
	"nestedsg/internal/event"
	"nestedsg/internal/simple"
	"nestedsg/internal/spec"
	"nestedsg/internal/tname"
)

// RecoveryReport summarizes what Recover found and repaired.
type RecoveryReport struct {
	// Segments and Records count what the WAL scan read; TornBytes is the
	// size of a truncated torn tail (0 for a clean shutdown), and
	// TornSegment names the segment it was cut from.
	Segments    int
	Records     int
	TornBytes   int64
	TornSegment string
	// DurableEvents is the replayed event prefix; StitchedEvents is the
	// log length after appending recovery's own repair events.
	DurableEvents  int
	StitchedEvents int
	// OrphanTops counts top-level transactions that were in flight at the
	// crash and were aborted by recovery; FixupInforms counts informs a
	// crashed session logged a completion for but never delivered.
	OrphanTops   int
	FixupInforms int
	// AuditOK reports that the offline batch check of the stitched log
	// passed and its SG matched the primed online certifier byte for
	// byte (always true when Recover returns nil error and the audit was
	// not skipped).
	AuditOK bool
}

// Summary renders the report in one line.
func (r *RecoveryReport) Summary() string {
	audit := "audit: ok"
	if !r.AuditOK {
		audit = "audit: skipped"
	}
	return fmt.Sprintf(
		"recovered %d events from %d wal records in %d segments (%d torn bytes truncated); aborted %d orphan transactions, delivered %d missing informs; log now %d events; %s",
		r.DurableEvents, r.Records, r.Segments, r.TornBytes, r.OrphanTops, r.FixupInforms, r.StitchedEvents, audit)
}

// Recover builds a server from the durable WAL in opts.WAL (an empty WAL
// is a fresh start). The durable record prefix is replayed through the
// tree interner and the object automata — asserting at each logged
// REQUEST_COMMIT that the automaton grants the same value, so a WAL that
// could not have come from a faithful run is rejected instead of served —
// then the log is "stitched": transactions whose completion was logged
// but whose informs were lost get the missing informs, and top-level
// transactions still in flight at the crash are aborted exactly as a
// dropped connection would have been (the paper's well-formedness keeps
// orphans harmless: an aborted top's INFORM_ABORT discards the whole
// subtree's locks). The online certifier is primed synchronously over the
// stitched log and, unless SkipRecoveryAudit is set, cross-checked against
// a batch core.Check — so the resumed server's certificate is
// byte-identical to an uninterrupted batch check of the stitched log.
//
// Recovery never panics on bad WAL bytes: any torn tail outside the last
// segment, semantic replay divergence, or failed audit is returned as an
// error.
//
//sgvet:ignore[lockguard] recovery is single-threaded: no session or certifier goroutine exists yet
func Recover(opts Options) (s *Server, rep *RecoveryReport, err error) {
	opts = opts.withDefaults()
	if opts.WAL == nil {
		return nil, nil, fmt.Errorf("server: Recover requires Options.WAL")
	}
	// The interner panics on programming errors (duplicate labels with
	// different metadata); for recovery those can also be provoked by
	// corrupt-but-parseable WAL bytes, so they must surface as clean
	// rejections — this guard is the fuzz contract's armor.
	defer func() {
		if r := recover(); r != nil {
			s, rep = nil, nil
			err = fmt.Errorf("server: recovery rejected wal: %v", r)
		}
	}()

	scan, err := scanWAL(opts.WAL)
	if err != nil {
		return nil, nil, err
	}
	s, err = newServer(opts)
	if err != nil {
		return nil, nil, err
	}
	rep = &RecoveryReport{
		Segments:    scan.segments,
		Records:     scan.records,
		TornBytes:   scan.tornBytes,
		TornSegment: scan.tornSegment,
	}

	b, err := s.replayDefs(scan.ops)
	if err != nil {
		return nil, nil, err
	}
	rep.DurableEvents = len(b)

	if len(b) == 0 {
		if s.tr.NumTx() > 1 || s.tr.NumObjects() > 0 {
			// Definitions with no events cannot come from a live server,
			// which logs CREATE(T0) before anything else.
			return nil, nil, fmt.Errorf("server: recovery rejected wal: definitions without events")
		}
		return s.finishFresh(scan, rep)
	}

	if b[0].Kind != event.Create || b[0].Tx != tname.Root {
		return nil, nil, fmt.Errorf("server: recovery rejected wal: log does not open with CREATE(T0)")
	}
	if err := simple.CheckWellFormed(s.tr, b); err != nil {
		return nil, nil, fmt.Errorf("server: recovery rejected wal: %w", err)
	}
	if err := s.replayAutomata(b); err != nil {
		return nil, nil, err
	}

	// The durable prefix is the log; repairs append after it (and, once
	// the writer is attached, tee into the WAL like any other append —
	// drained inline, since the merger isn't running yet).
	s.log.prime(b)
	w, err := newWalWriter(opts.WAL, opts.WALSegmentBytes, scan.nextIdx)
	if err != nil {
		return nil, nil, err
	}
	s.wal = w
	s.log.wal = w
	s.group = newGroupCommitter(w, s.metrics)

	s.stitch(b, rep)
	for _, label := range s.opts.Objects {
		if _, oerr := s.resolveObject(label); oerr != nil {
			return nil, nil, fmt.Errorf("server: pre-creating object %q: %w", label, oerr)
		}
	}
	if err := w.sync(); err != nil {
		return nil, nil, fmt.Errorf("server: recovery sync: %w", err)
	}

	s.bumpSessionSeq()
	s.recoverMetrics()
	if err := s.primeCertifier(rep); err != nil {
		return nil, nil, err
	}
	s.log.startMerger()
	s.cert.start()
	s.backend.start(s)
	return s, rep, nil
}

// finishFresh completes Recover for an empty WAL: attach a writer, seed
// the log with CREATE(T0), pre-create objects, and start certifying. The
// seeded log goes through the same primeCertifier audit as a non-empty
// recovery, so AuditOK is earned (trivially) rather than assumed.
//
//sgvet:ignore[lockguard] recovery is single-threaded: no session or certifier goroutine exists yet
func (s *Server) finishFresh(scan *walScan, rep *RecoveryReport) (*Server, *RecoveryReport, error) {
	w, err := newWalWriter(s.opts.WAL, s.opts.WALSegmentBytes, scan.nextIdx)
	if err != nil {
		return nil, nil, err
	}
	s.wal = w
	s.log.wal = w
	s.group = newGroupCommitter(w, s.metrics)
	s.log.append(s.log.shards[0], event.NewEvent(event.Create, tname.Root))
	for _, label := range s.opts.Objects {
		if _, oerr := s.resolveObject(label); oerr != nil {
			return nil, nil, fmt.Errorf("server: pre-creating object %q: %w", label, oerr)
		}
	}
	if err := w.sync(); err != nil {
		return nil, nil, fmt.Errorf("server: recovery sync: %w", err)
	}
	rep.StitchedEvents = s.log.len()
	if err := s.primeCertifier(rep); err != nil {
		return nil, nil, err
	}
	s.log.startMerger()
	s.cert.start()
	s.backend.start(s)
	return s, rep, nil
}

// replayDefs re-interns every definition record in WAL order, asserting
// the interner assigns the same sequential IDs the live server got, and
// collects the event records into the durable behavior prefix.
//
//sgvet:ignore[lockguard] recovery is single-threaded: no session or certifier goroutine exists yet
func (s *Server) replayDefs(ops []event.WalOp) (event.Behavior, error) {
	var b event.Behavior
	for _, op := range ops {
		switch op.Kind {
		case event.WalObjectDef:
			if s.tr.Object(op.Label) != tname.NoObj {
				return nil, fmt.Errorf("server: recovery rejected wal: duplicate object %q", op.Label)
			}
			sp := spec.ByName(op.SpecName) // non-nil: DecodeWalOp validated
			id := s.tr.AddObject(op.Label, sp)
			for int(id) >= len(s.objs) {
				s.objs = append(s.objs, nil)
			}
			s.objs[id] = &sharedObject{id: id, sp: s.tr.Spec(id), g: s.backend.protocol().New(s.tr, id)}
		case event.WalTxDef:
			before := s.tr.NumTx()
			var id tname.TxID
			if op.Obj == tname.NoObj {
				id = s.tr.Child(op.Parent, op.Label)
			} else {
				id = s.tr.Access(op.Parent, op.Label, op.Obj, op.Op)
			}
			if s.tr.NumTx() != before+1 || id != tname.TxID(before) {
				return nil, fmt.Errorf("server: recovery rejected wal: duplicate tx definition %q under %s",
					op.Label, s.tr.Name(op.Parent))
			}
		case event.WalEvents:
			b = append(b, op.Events...)
		}
	}
	return b, nil
}

// replayAutomata drives the object automata through the durable prefix
// exactly as the live sessions did: CREATE at an access's CREATE event,
// TryRequestCommit at its REQUEST_COMMIT (asserting the grant and the
// value — the automata are deterministic and failed polls don't mutate, so
// a faithful log replays to the same state), informs at inform events.
//
//sgvet:ignore[lockguard] recovery is single-threaded: no session or certifier goroutine exists yet
func (s *Server) replayAutomata(b event.Behavior) error {
	for i, e := range b {
		switch e.Kind {
		case event.Create:
			if e.Tx != tname.Root && s.tr.IsAccess(e.Tx) {
				s.objs[s.tr.AccessObject(e.Tx)].g.Create(e.Tx)
			}
		case event.RequestCommit:
			if s.tr.IsAccess(e.Tx) {
				g := s.objs[s.tr.AccessObject(e.Tx)].g
				v, ok := g.TryRequestCommit(e.Tx)
				if !ok {
					return fmt.Errorf("server: recovery rejected wal: event %d: access %s not grantable at its logged position",
						i, s.tr.Name(e.Tx))
				}
				if v != e.Val {
					return fmt.Errorf("server: recovery rejected wal: event %d: access %s replays to %s, log says %s",
						i, s.tr.Name(e.Tx), v, e.Val)
				}
			}
		case event.InformCommit:
			s.objs[e.Obj].g.InformCommit(e.Tx)
		case event.InformAbort:
			s.objs[e.Obj].g.InformAbort(e.Tx)
		default:
			// RequestCreate, Commit, Abort, reports: no automaton call.
		}
	}
	return nil
}

// stitch appends the repair events: missing informs for completions whose
// session died before delivering them, then an abort for every orphaned
// in-flight top-level transaction (ascending TxID), mirroring what
// abortTop would have logged had the connection merely dropped. Every
// repair goes through the normal append path, so it is also made durable.
//
//sgvet:ignore[lockguard] recovery is single-threaded: no session or certifier goroutine exists yet
func (s *Server) stitch(b event.Behavior, rep *RecoveryReport) {
	// touched[T] = objects of automaton-created accesses in T's subtree,
	// in first-create order — the recovery analogue of txFrame.touched.
	touched := make(map[tname.TxID][]tname.ObjID)
	touch := func(t tname.TxID, x tname.ObjID) {
		for _, y := range touched[t] {
			if y == x {
				return
			}
		}
		touched[t] = append(touched[t], x)
	}
	informed := make(map[[2]int64]bool) // (tx, obj) pairs already informed
	completed := make(map[tname.TxID]event.Kind)
	var completions []tname.TxID
	for _, e := range b {
		switch e.Kind {
		case event.Create:
			if e.Tx != tname.Root && s.tr.IsAccess(e.Tx) {
				x := s.tr.AccessObject(e.Tx)
				for u := e.Tx; u != tname.Root; u = s.tr.Parent(u) {
					touch(u, x)
				}
			}
		case event.Commit, event.Abort:
			if _, dup := completed[e.Tx]; !dup {
				completed[e.Tx] = e.Kind
				completions = append(completions, e.Tx)
			}
		case event.InformCommit, event.InformAbort:
			informed[[2]int64{int64(e.Tx), int64(e.Obj)}] = true
		default:
		}
	}

	// Missing informs, in completion order — leaf completions precede
	// their ancestors' in any well-formed log, so lock hand-up replays in
	// the right order.
	for _, t := range completions {
		kind := event.InformCommit
		if completed[t] == event.Abort {
			kind = event.InformAbort
		}
		for _, x := range touched[t] {
			if informed[[2]int64{int64(t), int64(x)}] {
				continue
			}
			s.applyInform(kind, t, x)
			rep.FixupInforms++
		}
	}

	// Orphaned tops: created, never completed, session gone.
	for _, t := range s.tr.Children(tname.Root) {
		if _, done := completed[t]; done || !createdIn(b, t) {
			continue
		}
		s.log.append(s.log.shards[0], event.NewEvent(event.Abort, t))
		for _, x := range touched[t] {
			s.applyInform(event.InformAbort, t, x)
		}
		s.log.append(s.log.shards[0], event.NewEvent(event.ReportAbort, t))
		rep.OrphanTops++
	}
	rep.StitchedEvents = s.log.len()
}

// applyInform calls the automaton and logs the inform, like informAll but
// single-threaded (recovery runs before any session exists).
//
//sgvet:ignore[lockguard] recovery is single-threaded: no session or certifier goroutine exists yet
func (s *Server) applyInform(kind event.Kind, t tname.TxID, x tname.ObjID) {
	if kind == event.InformCommit {
		s.objs[x].g.InformCommit(t)
	} else {
		s.objs[x].g.InformAbort(t)
	}
	s.log.append(s.log.shards[0], event.NewInform(kind, t, x))
}

// createdIn reports whether t has a CREATE event in the durable prefix —
// a definition record alone (crash between intern and append) leaves a
// name that never entered the behavior and needs no abort.
func createdIn(b event.Behavior, t tname.TxID) bool {
	for _, e := range b {
		if e.Kind == event.Create && e.Tx == t {
			return true
		}
	}
	return false
}

// bumpSessionSeq moves the session counter past every recovered session
// label ("s<session>.<n>" tops), so resumed sessions never collide with a
// dead session's transaction names.
//
//sgvet:ignore[lockguard] recovery is single-threaded: no session or certifier goroutine exists yet
func (s *Server) bumpSessionSeq() {
	max := int64(0)
	for _, t := range s.tr.Children(tname.Root) {
		var sess int64
		var n int
		if _, err := fmt.Sscanf(s.tr.Label(t), "s%d.%d", &sess, &n); err == nil && sess > max {
			max = sess
		}
	}
	s.sessionSeq.Store(max)
}

// recoverMetrics rebuilds the counters derivable from the stitched log so
// verdicts and the final report stay consistent across a restart.
//
//sgvet:ignore[lockguard] recovery is single-threaded: no session or certifier goroutine exists yet
func (s *Server) recoverMetrics() {
	for _, e := range s.log.snapshot() {
		switch e.Kind {
		case event.Commit:
			s.metrics.CommitEvents.Add(1)
			if s.tr.Parent(e.Tx) == tname.Root {
				s.metrics.TopCommits.Add(1)
			}
		case event.Abort:
			s.metrics.AbortEvents.Add(1)
		case event.Create:
			if e.Tx != tname.Root && s.tr.Parent(e.Tx) == tname.Root {
				s.metrics.Begins.Add(1)
			}
		default:
		}
	}
}

// primeCertifier replays the stitched log through the online incremental
// graph synchronously, then (unless skipped) audits it against a batch
// core.Check: the two must be byte-identical, which is exactly the
// acceptance bar the live server's Final() enforces.
//
//sgvet:ignore[lockguard] recovery is single-threaded: no session or certifier goroutine exists yet
func (s *Server) primeCertifier(rep *RecoveryReport) error {
	full := s.log.snapshot()
	if err := s.cert.prime(full); err != nil {
		return err
	}
	if s.opts.SkipRecoveryAudit {
		return nil
	}
	res := core.Check(s.tr, full)
	if !res.OK {
		return fmt.Errorf("server: recovery rejected wal: stitched log fails batch check: %s", res.Summary(s.tr))
	}
	if got, want := s.cert.snapshotSG().DOT(), res.SG.DOT(); got != want {
		return fmt.Errorf("server: recovery audit: online snapshot differs from batch SG")
	}
	rep.AuditOK = true
	return nil
}
