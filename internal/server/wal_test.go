package server

import (
	"strings"
	"testing"

	"nestedsg/internal/event"
	"nestedsg/internal/spec"
	"nestedsg/internal/tname"
)

// writeRecords drives a walWriter over disk with the given payloads.
func writeRecords(t *testing.T, disk Disk, segMax int, payloads ...[]byte) {
	t.Helper()
	w, err := newWalWriter(disk, segMax, 1)
	if err != nil {
		t.Fatalf("newWalWriter: %v", err)
	}
	for _, p := range payloads {
		if err := w.appendRecord(p); err != nil {
			t.Fatalf("appendRecord: %v", err)
		}
	}
	if err := w.close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}

// tinyWal returns payloads for a minimal consistent WAL: one object, one
// top with one committed access.
func tinyWal() [][]byte {
	return [][]byte{
		event.AppendWalEvents(nil, event.NewEvent(event.Create, tname.Root)),
		event.AppendWalObjectDef(nil, "x", "register"),
		event.AppendWalTxDef(nil, tname.Root, "s1.1", tname.NoObj, spec.Op{}),
		event.AppendWalEvents(nil,
			event.NewEvent(event.RequestCreate, 1),
			event.NewEvent(event.Create, 1)),
		event.AppendWalTxDef(nil, 1, "a1", 0, spec.Op{Kind: spec.OpWrite, Arg: spec.Int(7)}),
		event.AppendWalEvents(nil, event.NewEvent(event.RequestCreate, 2)),
		event.AppendWalEvents(nil, event.NewEvent(event.Create, 2)),
		event.AppendWalEvents(nil, event.NewValEvent(event.RequestCommit, 2, spec.OK)),
		event.AppendWalEvents(nil,
			event.NewEvent(event.Commit, 2),
			event.NewInform(event.InformCommit, 2, 0),
			event.NewValEvent(event.ReportCommit, 2, spec.OK)),
		event.AppendWalEvents(nil,
			event.NewValEvent(event.RequestCommit, 1, spec.OK),
			event.NewEvent(event.Commit, 1)),
		event.AppendWalEvents(nil, event.NewInform(event.InformCommit, 1, 0)),
		event.AppendWalEvents(nil, event.NewValEvent(event.ReportCommit, 1, spec.OK)),
	}
}

func TestWalScanRoundTrip(t *testing.T) {
	payloads := tinyWal()
	for _, segMax := range []int{1 << 20, 48} { // one segment vs forced rotation
		disk := NewMemDisk()
		writeRecords(t, disk, segMax, payloads...)
		scan, err := scanWAL(disk)
		if err != nil {
			t.Fatalf("segMax=%d: scanWAL: %v", segMax, err)
		}
		if scan.records != len(payloads) {
			t.Fatalf("segMax=%d: got %d records, want %d", segMax, scan.records, len(payloads))
		}
		if scan.tornBytes != 0 {
			t.Fatalf("segMax=%d: unexpected torn tail %d bytes", segMax, scan.tornBytes)
		}
		if segMax == 48 && scan.segments < 2 {
			t.Fatalf("segMax=48 never rotated (got %d segments)", scan.segments)
		}
		events := 0
		for _, op := range scan.ops {
			if op.Kind == event.WalEvents {
				events += len(op.Events)
			}
		}
		if events != 13 {
			t.Fatalf("segMax=%d: got %d events, want 13", segMax, events)
		}
	}
}

// TestWalScanTornTail appends garbage after the valid records of the last
// segment: the scan must truncate it and succeed, and a second scan must
// see a clean WAL of the same records.
func TestWalScanTornTail(t *testing.T) {
	for _, garbage := range [][]byte{
		{0x01},                            // short record
		{0xff, 0xff, 0xff, 0xff, 0x7f},    // absurd record length
		{0x03, 'b', 'a', 'd', 0, 0, 0, 0}, // framed garbage, bad payload+crc
	} {
		disk := NewMemDisk()
		writeRecords(t, disk, 1<<20, tinyWal()...)
		names, _ := disk.Segments()
		last := names[len(names)-1]
		data, _ := disk.ReadSegment(last)
		disk.SetSegment(last, append(append([]byte(nil), data...), garbage...))

		scan, err := scanWAL(disk)
		if err != nil {
			t.Fatalf("garbage %x: scanWAL: %v", garbage, err)
		}
		if scan.tornBytes != int64(len(garbage)) {
			t.Fatalf("garbage %x: truncated %d bytes, want %d", garbage, scan.tornBytes, len(garbage))
		}
		if scan.records != len(tinyWal()) {
			t.Fatalf("garbage %x: got %d records, want %d", garbage, scan.records, len(tinyWal()))
		}
		again, err := scanWAL(disk)
		if err != nil || again.tornBytes != 0 || again.records != scan.records {
			t.Fatalf("garbage %x: rescan after truncation: %v (torn=%d records=%d)",
				garbage, err, again.tornBytes, again.records)
		}
	}
}

// TestWalScanHeaderlessLastSegment: a last segment without even a full
// header is truncated to zero and its index is reused by the resuming
// writer.
func TestWalScanHeaderlessLastSegment(t *testing.T) {
	disk := NewMemDisk()
	writeRecords(t, disk, 1<<20, tinyWal()...)
	disk.SetSegment(segmentName(2), []byte{'N', 'S'})
	scan, err := scanWAL(disk)
	if err != nil {
		t.Fatalf("scanWAL: %v", err)
	}
	if scan.nextIdx != 2 {
		t.Fatalf("nextIdx = %d, want 2 (reuse the dead segment)", scan.nextIdx)
	}
	if data, _ := disk.ReadSegment(segmentName(2)); len(data) != 0 {
		t.Fatalf("dead segment not truncated to zero (%d bytes)", len(data))
	}
}

// TestWalScanRejectsCorruptMiddle: garbage in a non-last segment is not a
// torn tail and must be rejected, never repaired.
func TestWalScanRejectsCorruptMiddle(t *testing.T) {
	disk := NewMemDisk()
	writeRecords(t, disk, 48, tinyWal()...) // rotates into several segments
	names, _ := disk.Segments()
	if len(names) < 2 {
		t.Fatal("test needs at least two segments")
	}
	data, _ := disk.ReadSegment(names[0])
	data[len(data)-1] ^= 0xff // corrupt the first segment's last record
	disk.SetSegment(names[0], data)
	_, err := scanWAL(disk)
	if err == nil || !isWalCorrupt(err) {
		t.Fatalf("scanWAL on corrupt middle segment: %v, want wal corruption", err)
	}
}

// TestWalScanRejectsSegmentHole: a missing middle segment is corruption —
// a whole run of records vanished — and must be rejected, never skipped.
func TestWalScanRejectsSegmentHole(t *testing.T) {
	disk := NewMemDisk()
	writeRecords(t, disk, 48, tinyWal()...) // rotates into several segments
	names, _ := disk.Segments()
	if len(names) < 3 {
		t.Fatalf("test needs at least three segments, got %d", len(names))
	}
	holed := NewMemDisk()
	for i, n := range names {
		if i == 1 {
			continue // drop a middle segment
		}
		data, _ := disk.ReadSegment(n)
		holed.SetSegment(n, data)
	}
	_, err := scanWAL(holed)
	if err == nil || !isWalCorrupt(err) {
		t.Fatalf("scanWAL with a missing middle segment: %v, want wal corruption", err)
	}
}

// TestMemDiskFreezeCreate: a rotation racing with Freeze must neither
// install a new segment on the pinned disk nor clobber an existing one.
func TestMemDiskFreezeCreate(t *testing.T) {
	disk := NewMemDisk()
	f, _ := disk.Create(segmentName(1))
	f.Write([]byte("pinned"))
	f.Sync()
	disk.Freeze()

	g, err := disk.Create(segmentName(1)) // colliding name
	if err != nil {
		t.Fatalf("Create after Freeze: %v", err)
	}
	g.Write([]byte("late"))
	g.Sync()
	if data, _ := disk.ReadSegment(segmentName(1)); string(data) != "pinned" {
		t.Fatalf("frozen segment clobbered: %q", data)
	}
	if _, err := disk.Create(segmentName(2)); err != nil {
		t.Fatalf("Create after Freeze: %v", err)
	}
	if err := disk.Truncate(segmentName(1), 0); err != nil {
		t.Fatalf("Truncate after Freeze: %v", err)
	}
	if data, _ := disk.ReadSegment(segmentName(1)); string(data) != "pinned" {
		t.Fatalf("frozen segment truncated: %q", data)
	}
	if names, _ := disk.Segments(); len(names) != 1 {
		t.Fatalf("Create after Freeze installed a segment: %v", names)
	}
}

// TestMemDiskCrashSemantics: Crash keeps only the synced prefix (plus the
// requested torn tail) and Freeze drops later writes.
func TestMemDiskCrashSemantics(t *testing.T) {
	disk := NewMemDisk()
	f, _ := disk.Create(segmentName(1))
	f.Write([]byte("durable"))
	f.Sync()
	f.Write([]byte("-volatile"))
	if got := disk.UnsyncedBytes(); got != len("-volatile") {
		t.Fatalf("UnsyncedBytes = %d", got)
	}
	crash := disk.Crash(3)
	data, _ := crash.ReadSegment(segmentName(1))
	if string(data) != "durable-vo" {
		t.Fatalf("crash copy = %q, want %q", data, "durable-vo")
	}
	disk.Freeze()
	f.Write([]byte("ignored"))
	f.Sync()
	data, _ = disk.ReadSegment(segmentName(1))
	if strings.Contains(string(data), "ignored") {
		t.Fatal("write after Freeze reached the disk")
	}
}

// TestRecoverRejectsDivergentValue: a WAL whose logged REQUEST_COMMIT
// value cannot be reproduced by the automaton replay is rejected cleanly.
func TestRecoverRejectsDivergentValue(t *testing.T) {
	payloads := [][]byte{
		event.AppendWalEvents(nil, event.NewEvent(event.Create, tname.Root)),
		event.AppendWalObjectDef(nil, "x", "register"),
		event.AppendWalTxDef(nil, tname.Root, "s1.1", tname.NoObj, spec.Op{}),
		event.AppendWalEvents(nil,
			event.NewEvent(event.RequestCreate, 1),
			event.NewEvent(event.Create, 1)),
		event.AppendWalTxDef(nil, 1, "a1", 0, spec.Op{Kind: spec.OpRead}),
		event.AppendWalEvents(nil,
			event.NewEvent(event.RequestCreate, 2),
			event.NewEvent(event.Create, 2)),
		// A fresh register reads Nil; the log claims 42.
		event.AppendWalEvents(nil, event.NewValEvent(event.RequestCommit, 2, spec.Int(42))),
	}
	disk := NewMemDisk()
	writeRecords(t, disk, 1<<20, payloads...)
	_, _, err := Recover(Options{WAL: disk})
	if err == nil || !strings.Contains(err.Error(), "replays to") {
		t.Fatalf("Recover: %v, want replay-divergence rejection", err)
	}
}

// TestRecoverRejectsDefsWithoutEvents: definition records with no event
// records cannot come from a live server.
func TestRecoverRejectsDefsWithoutEvents(t *testing.T) {
	disk := NewMemDisk()
	writeRecords(t, disk, 1<<20, event.AppendWalObjectDef(nil, "x", "register"))
	if _, _, err := Recover(Options{WAL: disk}); err == nil {
		t.Fatal("Recover accepted definitions without events")
	}
}
