package server

import (
	"sort"
	"sync"

	"nestedsg/internal/tname"
)

// waitTable tracks which sessions are currently polling for a blocked
// access. The deadlock detector builds the waits-for graph between the
// waiters' top-level transactions from the objects' Blockers and picks a
// deterministic victim, so two cross-locking sessions resolve long before
// the timeout safety net fires.
type waitTable struct {
	mu      sync.Mutex
	waiters map[int64]*waitEntry //sgvet:guardedby mu
}

type waitEntry struct {
	sess   int64
	access tname.TxID
	top    tname.TxID
	obj    *sharedObject
}

func newWaitTable() *waitTable {
	return &waitTable{waiters: make(map[int64]*waitEntry)}
}

func (w *waitTable) register(e *waitEntry) {
	w.mu.Lock()
	w.waiters[e.sess] = e
	w.mu.Unlock()
}

func (w *waitTable) unregister(sess int64) {
	w.mu.Lock()
	delete(w.waiters, sess)
	w.mu.Unlock()
}

func (w *waitTable) entries() []*waitEntry {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]*waitEntry, 0, len(w.waiters))
	for _, e := range w.waiters {
		out = append(out, e)
	}
	// Deterministic order: the waiters map iterates randomly, and the
	// victim computation must not depend on that (the simulator replays
	// runs from a seed).
	sort.Slice(out, func(i, j int) bool { return out[i].sess < out[j].sess })
	return out
}

// deadlockVictim reports whether the session waiting on myTop should abort
// itself to break a waits-for cycle.
//
// It snapshots the wait table, asks each waited-on object for the blockers
// of the waiting access, lifts every edge to the top-level transactions
// (waiter-top → blocker-top), and checks whether myTop lies on a cycle. The
// victim is computed over the full strongly connected component containing
// myTop — not over one DFS-discovered cycle: with overlapping cycles
// (T1⇄T2 and T2⇄T3 sharing T2) a per-cycle victim lets several sessions
// self-select at once, each the maximum of its own cycle, aborting more
// transactions in one round than breaking the knot requires. Every session
// in the SCC computes the same node set, so exactly one — the youngest
// member, largest TxID, which has done the least work — aborts; survivors
// re-run detection if a residual cycle remains after its locks release.
func (s *Server) deadlockVictim(myTop tname.TxID) bool {
	entries := s.waits.entries()
	if len(entries) < 2 {
		return false
	}
	waiting := make(map[tname.TxID]bool, len(entries))
	for _, e := range entries {
		waiting[e.top] = true
	}
	if !waiting[myTop] {
		return false
	}
	edges := make(map[tname.TxID][]tname.TxID, len(entries))
	for _, e := range entries {
		e.obj.mu.Lock()
		s.mu.RLock()
		blockers := e.obj.g.Blockers(e.access)
		for _, blk := range blockers {
			// Blockers never include ancestors of the access, so Root is
			// excluded and every blocker has a top-level ancestor.
			bt := s.tr.ChildAncestor(tname.Root, blk)
			if bt != e.top && waiting[bt] {
				edges[e.top] = append(edges[e.top], bt)
			}
		}
		s.mu.RUnlock()
		e.obj.mu.Unlock()
	}
	// Moss's Blockers iterates lock-holder maps, so edge order (and with
	// it the DFS path) would otherwise vary run to run.
	for t := range edges {
		ts := edges[t]
		sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
		dst := ts[:0]
		for i, v := range ts {
			if i == 0 || v != ts[i-1] {
				dst = append(dst, v)
			}
		}
		edges[t] = dst
	}

	scc := sccThrough(myTop, edges)
	if len(scc) < 2 {
		// myTop's SCC is trivial: it waits into other transactions but no
		// wait chain leads back, so it is not on any cycle. (Self-edges
		// cannot occur: bt != e.top filtered them above.)
		return false
	}
	victim := scc[0]
	for _, t := range scc[1:] {
		if t > victim {
			victim = t
		}
	}
	return victim == myTop
}

// sccThrough returns the strongly connected component containing start:
// the nodes reachable from start that also reach it. The component always
// contains start itself; any second member certifies a cycle through
// start, and the set is the union of every such cycle's nodes.
func sccThrough(start tname.TxID, edges map[tname.TxID][]tname.TxID) []tname.TxID {
	fwd := reachable(start, edges)
	rev := make(map[tname.TxID][]tname.TxID, len(edges))
	for u, vs := range edges {
		for _, v := range vs {
			rev[v] = append(rev[v], u)
		}
	}
	bwd := reachable(start, rev)
	var scc []tname.TxID
	for t := range fwd {
		if bwd[t] {
			scc = append(scc, t)
		}
	}
	return scc
}

// reachable returns the set of nodes reachable from start (including
// start) by following edges.
func reachable(start tname.TxID, edges map[tname.TxID][]tname.TxID) map[tname.TxID]bool {
	seen := map[tname.TxID]bool{start: true}
	stack := []tname.TxID{start}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range edges[u] {
			if !seen[v] {
				seen[v] = true
				stack = append(stack, v)
			}
		}
	}
	return seen
}
