package server

import (
	"sort"
	"sync"

	"nestedsg/internal/tname"
)

// waitTable tracks which sessions are currently polling for a blocked
// access. The deadlock detector builds the waits-for graph between the
// waiters' top-level transactions from the objects' Blockers and picks a
// deterministic victim, so two cross-locking sessions resolve long before
// the timeout safety net fires.
type waitTable struct {
	mu      sync.Mutex
	waiters map[int64]*waitEntry //sgvet:guardedby mu
}

type waitEntry struct {
	sess   int64
	access tname.TxID
	top    tname.TxID
	obj    *sharedObject
}

func newWaitTable() *waitTable {
	return &waitTable{waiters: make(map[int64]*waitEntry)}
}

func (w *waitTable) register(e *waitEntry) {
	w.mu.Lock()
	w.waiters[e.sess] = e
	w.mu.Unlock()
}

func (w *waitTable) unregister(sess int64) {
	w.mu.Lock()
	delete(w.waiters, sess)
	w.mu.Unlock()
}

func (w *waitTable) entries() []*waitEntry {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]*waitEntry, 0, len(w.waiters))
	for _, e := range w.waiters {
		out = append(out, e)
	}
	// Deterministic order: the waiters map iterates randomly, and the
	// victim computation must not depend on that (the simulator replays
	// runs from a seed).
	sort.Slice(out, func(i, j int) bool { return out[i].sess < out[j].sess })
	return out
}

// deadlockVictim reports whether the session waiting on myTop should abort
// itself to break a waits-for cycle.
//
// It snapshots the wait table, asks each waited-on object for the blockers
// of the waiting access, lifts every edge to the top-level transactions
// (waiter-top → blocker-top), and searches for a cycle through myTop among
// transactions that are themselves waiting. The victim is the cycle member
// with the largest TxID — the youngest transaction, which has done the least
// work — so every session in the cycle computes the same victim and exactly
// one aborts.
func (s *Server) deadlockVictim(myTop tname.TxID) bool {
	entries := s.waits.entries()
	if len(entries) < 2 {
		return false
	}
	waiting := make(map[tname.TxID]bool, len(entries))
	for _, e := range entries {
		waiting[e.top] = true
	}
	if !waiting[myTop] {
		return false
	}
	edges := make(map[tname.TxID][]tname.TxID, len(entries))
	for _, e := range entries {
		e.obj.mu.Lock()
		s.mu.RLock()
		blockers := e.obj.g.Blockers(e.access)
		for _, blk := range blockers {
			// Blockers never include ancestors of the access, so Root is
			// excluded and every blocker has a top-level ancestor.
			bt := s.tr.ChildAncestor(tname.Root, blk)
			if bt != e.top && waiting[bt] {
				edges[e.top] = append(edges[e.top], bt)
			}
		}
		s.mu.RUnlock()
		e.obj.mu.Unlock()
	}
	// Moss's Blockers iterates lock-holder maps, so edge order (and with
	// it the DFS path) would otherwise vary run to run.
	for t := range edges {
		ts := edges[t]
		sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
		dst := ts[:0]
		for i, v := range ts {
			if i == 0 || v != ts[i-1] {
				dst = append(dst, v)
			}
		}
		edges[t] = dst
	}

	cycle := findCycleThrough(myTop, edges)
	if cycle == nil {
		return false
	}
	victim := cycle[0]
	for _, t := range cycle[1:] {
		if t > victim {
			victim = t
		}
	}
	return victim == myTop
}

// findCycleThrough runs a DFS from start and returns the node set of a path
// leading back to start, or nil.
func findCycleThrough(start tname.TxID, edges map[tname.TxID][]tname.TxID) []tname.TxID {
	visited := make(map[tname.TxID]bool)
	var path []tname.TxID
	var dfs func(t tname.TxID) bool
	dfs = func(t tname.TxID) bool {
		path = append(path, t)
		visited[t] = true
		for _, next := range edges[t] {
			if next == start {
				return true
			}
			if !visited[next] && dfs(next) {
				return true
			}
		}
		path = path[:len(path)-1]
		return false
	}
	if dfs(start) {
		return path
	}
	return nil
}
