package server

import (
	"bytes"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"nestedsg/internal/event"
)

// segmentImage renders the tinyWal records into one durable segment and
// returns its raw bytes.
func segmentImage(t testing.TB) []byte {
	t.Helper()
	disk := NewMemDisk()
	w, err := newWalWriter(disk, 1<<20, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range tinyWal() {
		if err := w.appendRecord(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.close(); err != nil {
		t.Fatal(err)
	}
	data, err := disk.ReadSegment(segmentName(1))
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// recoverSegment plants data as the only (fully synced) WAL segment and
// runs Recover over it.
func recoverSegment(data []byte) (*Server, *RecoveryReport, error) {
	disk := NewMemDisk()
	disk.SetSegment(segmentName(1), data)
	return Recover(Options{WAL: disk})
}

// FuzzRecoveryReplay feeds arbitrary bytes to the WAL scan + replay +
// stitch pipeline as a torn/corrupted segment. The contract: Recover never
// panics — it either rejects the bytes with an error, or returns a server
// whose stitched log passed both the batch check and the online/batch
// certificate audit. A served WAL must also be stable: recovering the
// stitched disk again needs no further repairs and yields the identical
// trace.
func FuzzRecoveryReplay(f *testing.F) {
	img := segmentImage(f)
	f.Add(img)
	f.Add(img[:len(img)-3]) // torn mid-record
	f.Add(img[:6])          // header only
	f.Add([]byte{})
	f.Add([]byte("NSGW\x01"))
	f.Add([]byte("not a wal"))

	f.Fuzz(func(t *testing.T, data []byte) {
		disk := NewMemDisk()
		disk.SetSegment(segmentName(1), data)
		s, rep, err := Recover(Options{WAL: disk})
		if err != nil {
			return // clean rejection is fine; panics are not
		}
		if !rep.AuditOK {
			t.Fatalf("Recover returned without error but audit not ok: %s", rep.Summary())
		}
		trace := event.MarshalBinaryTrace(s.tr, s.log.snapshot())
		s.Kill()

		// The stitched WAL on disk must recover again with no repairs.
		s2, rep2, err := Recover(Options{WAL: disk})
		if err != nil {
			t.Fatalf("stitched wal does not recover: %v (first: %s)", err, rep.Summary())
		}
		if rep2.OrphanTops != 0 || rep2.FixupInforms != 0 || rep2.TornBytes != 0 {
			t.Fatalf("second recovery repaired a stitched wal: %s", rep2.Summary())
		}
		trace2 := event.MarshalBinaryTrace(s2.tr, s2.log.snapshot())
		s2.Kill()
		if !bytes.Equal(trace, trace2) {
			t.Fatal("stitched trace not stable across recoveries")
		}
	})
}

// TestRecoverTruncationPrefixes runs Recover on every byte prefix of a
// real segment image: each must either recover with a passing audit or be
// rejected cleanly.
func TestRecoverTruncationPrefixes(t *testing.T) {
	img := segmentImage(t)
	for n := 0; n <= len(img); n++ {
		s, rep, err := recoverSegment(img[:n])
		if err != nil {
			continue
		}
		if !rep.AuditOK {
			t.Fatalf("prefix %d: recovered without audit: %s", n, rep.Summary())
		}
		s.Kill()
	}
}

// TestRegenerateRecoveryFuzzCorpus rewrites the committed seed corpus for
// FuzzRecoveryReplay when UPDATE_FUZZ_CORPUS=1; otherwise it checks the
// committed files are current.
func TestRegenerateRecoveryFuzzCorpus(t *testing.T) {
	img := segmentImage(t)
	seeds := map[string][]byte{
		"seed_segment":  img,
		"seed_torn":     img[:len(img)-3],
		"seed_header":   img[:6],
		"seed_garbage":  []byte("not a wal"),
		"seed_headless": []byte("NS"),
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzRecoveryReplay")
	for name, data := range seeds {
		content := "go test fuzz v1\n[]byte(" + strconv.Quote(string(data)) + ")\n"
		path := filepath.Join(dir, name)
		if os.Getenv("UPDATE_FUZZ_CORPUS") == "1" {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("seed corpus missing (run with UPDATE_FUZZ_CORPUS=1): %v", err)
		}
		if string(got) != content {
			t.Fatalf("seed corpus %s is stale (run with UPDATE_FUZZ_CORPUS=1)", name)
		}
	}
}
