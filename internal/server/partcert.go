package server

import (
	"fmt"

	"nestedsg/internal/core"
	"nestedsg/internal/event"
	"nestedsg/internal/part"
)

// partCertifier is the certBackend over internal/part: P partition
// workers stream the merged log through their own incremental checkers
// and exchange SG edges (as wire.EdgeBatch payloads) with a composer
// whose watermark gates commit acks. Engaged by Options.CertPartitions
// > 1; the composed certificate stays byte-identical to the single
// certifier's, which Final() and the recovery audit both verify.
//
// Lock order: part.Certifier.mu, then Server.mu (read) — the same
// "certifier mutex, then tree lock" order the single certifier uses,
// established by passing s.mu.RLocker() as the part.Config.Lock.
type partCertifier struct {
	srv *Server
	pc  *part.Certifier

	// lag holds the per-partition compose-lag histograms (how far a
	// partition's delivered bound ran ahead of the composed watermark,
	// in events); fed by the composer, read by metricsInto.
	lag []Histogram
}

//sgvet:ignore[lockguard] construction: runs inside newServer before the server is shared with any goroutine
func newPartCertifier(s *Server, parts int) *partCertifier {
	c := &partCertifier{srv: s, lag: make([]Histogram, parts)}
	c.pc = part.New(part.Config{
		Partitions: parts,
		Tree:       s.tr,
		Lock:       s.mu.RLocker(),
		Source:     s.log.waitBeyond,
		Hooks:      s.opts.Hooks,
		ObserveLag: func(p, lag int) { c.lag[p].ObserveVal(int64(lag)) },
	})
	return c
}

//sgvet:ignore[lockguard] recovery is single-threaded: no session or certifier goroutine exists yet
func (c *partCertifier) prime(full event.Behavior) error {
	c.pc.Prime(full)
	if !c.pc.Cyclic() {
		return nil
	}
	// The composed refusal frontier is conservative (the last watermark
	// published while acyclic), unlike the single certifier's exact
	// violating index; the rejection itself is identical.
	msg := "no cycle certificate"
	if cyc := c.pc.CycleCertificate(); cyc != nil {
		msg = cyc.Format(c.srv.tr)
	}
	return fmt.Errorf("server: recovery rejected wal: SG(β) cyclic at durable event %d: %s",
		c.pc.CycleBound(), msg)
}

func (c *partCertifier) start()    { c.pc.Start() }
func (c *partCertifier) waitDone() { c.pc.WaitDrained() }

func (c *partCertifier) waitCertified(seq int) error {
	if c.pc.WaitCertified(seq) {
		return nil
	}
	// Extract the certificate before touching the tree lock: the
	// snapshot freeze only takes the composer's mutex, and rendering
	// names is the only tree read.
	at := c.pc.CycleBound()
	msg := "no cycle certificate"
	if cyc := c.pc.CycleCertificate(); cyc != nil {
		c.srv.mu.RLock()
		msg = cyc.Format(c.srv.tr)
		c.srv.mu.RUnlock()
	}
	return fmt.Errorf("server: SG(β) acquired a cycle at log event %d: %s", at, msg)
}

func (c *partCertifier) state() (int, bool) { return c.pc.State() }

func (c *partCertifier) gauges() (int64, int64, int64) {
	p, n, e := c.pc.Counts()
	return int64(p), int64(n), int64(e)
}

func (c *partCertifier) snapshotSG() *core.SG { return c.pc.Snapshot() }

func (c *partCertifier) metricsInto(snap map[string]any) {
	stats := c.pc.PartStats()
	snap["cert_partitions"] = len(stats)
	for i, st := range stats {
		snap[fmt.Sprintf("cert_part_events_%d", i)] = st.EventsApplied
		snap[fmt.Sprintf("cert_part_edges_%d", i)] = st.EdgesDelivered
		snap[fmt.Sprintf("cert_part_cross_edges_%d", i)] = st.CrossEdges
		h := &c.lag[i]
		snap[fmt.Sprintf("compose_lag_p50_%d", i)] = h.QuantileVal(0.50)
		snap[fmt.Sprintf("compose_lag_p99_%d", i)] = h.QuantileVal(0.99)
		snap[fmt.Sprintf("compose_lag_mean_%d", i)] = h.MeanVal()
	}
}
