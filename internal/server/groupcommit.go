package server

import "sync"

// groupCommitter coalesces WAL fsyncs across concurrent top-level
// completions. Committers enqueue a sync request and park on a shared
// generation ticket: the first request with no fsync in flight becomes the
// generation's leader, issues one walWriter.sync for everyone arrived so
// far, and releases the whole cohort. Requests that arrive while a sync is
// already in flight may have appended records the in-flight fsync does not
// cover, so they wait for the NEXT generation (completed+2) — the classic
// group-commit two-ticket rule.
//
// The protocol never holds g.mu across the fsync itself, so arrivals keep
// queueing (and growing the next cohort) while the disk works; and it
// acquires no other lock while holding g.mu, so it adds no edge to the
// lock-order graph.
type groupCommitter struct {
	mu   sync.Mutex
	cond *sync.Cond
	w    *walWriter
	m    *Metrics

	syncing   bool   //sgvet:guardedby mu
	completed uint64 //sgvet:guardedby mu
	arrived   uint64 //sgvet:guardedby mu
	served    uint64 //sgvet:guardedby mu
}

func newGroupCommitter(w *walWriter, m *Metrics) *groupCommitter {
	g := &groupCommitter{w: w, m: m}
	g.cond = sync.NewCond(&g.mu)
	return g
}

// sync makes every record the caller has already appended durable,
// coalescing with concurrent callers: one fsync per generation serves the
// whole cohort. The caller's records are in the writer before it gets
// here (appends happen under the log/tree locks, strictly before the
// durability point), so any fsync that STARTS after arrival covers them.
func (g *groupCommitter) sync() error {
	g.m.WALSyncRequests.Add(1)
	g.mu.Lock()
	g.arrived++
	// Generation ticket: completed+1 if no fsync is in flight; completed+2
	// if one is, because the running fsync may have hit the disk before
	// this caller's records were written.
	need := g.completed + 1
	if g.syncing {
		need = g.completed + 2
	}
	for g.completed < need {
		if g.syncing {
			g.cond.Wait()
			continue
		}
		// Leader: one fsync for everyone arrived so far. The result is
		// sticky in the writer, so the cohort reads it below rather than
		// having the leader thread it through.
		g.syncing = true
		cohort := g.arrived - g.served
		g.mu.Unlock()
		g.w.sync()
		g.mu.Lock()
		g.syncing = false
		g.served += cohort
		g.completed++
		g.m.WALSyncs.Add(1)
		g.m.GroupSize.ObserveVal(int64(cohort))
		g.cond.Broadcast()
	}
	g.mu.Unlock()
	return g.w.stickyErr()
}
