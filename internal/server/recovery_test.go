package server_test

import (
	"bytes"
	"context"
	"testing"
	"time"

	"nestedsg/internal/client"
	"nestedsg/internal/core"
	"nestedsg/internal/event"
	"nestedsg/internal/server"
	"nestedsg/internal/spec"
)

// recoverAndStart recovers a durable server from disk and starts it on a
// loopback port.
func recoverAndStart(t *testing.T, opts server.Options) (*server.Server, *server.RecoveryReport) {
	t.Helper()
	opts.LockTimeout = 2 * time.Second
	s, rep, err := server.Recover(opts)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatalf("Start: %v", err)
	}
	return s, rep
}

func dialT(t *testing.T, s *server.Server) *client.Conn {
	t.Helper()
	c, err := client.Dial(s.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	return c
}

// TestRecoverFreshThenResume: a durable server is started on an empty
// disk, runs transactions, shuts down cleanly, and is recovered — the
// recovered log must be byte-identical to the log at shutdown, the batch
// check must pass, and the server must keep working (with fresh session
// labels) afterwards.
func TestRecoverFreshThenResume(t *testing.T) {
	disk := server.NewMemDisk()
	opts := server.Options{WAL: disk, Objects: []string{"x", "y"}}
	s1, rep1 := recoverAndStart(t, opts)
	if rep1.DurableEvents != 0 || rep1.StitchedEvents != 1 {
		t.Fatalf("fresh report: %+v", rep1)
	}

	c := dialT(t, s1)
	for i := 0; i < 3; i++ {
		if err := c.RunTx(5, func(tx *client.Tx) error {
			if _, err := tx.Access("x", spec.OpWrite, spec.Int(int64(i))); err != nil {
				return err
			}
			_, err := tx.Access("y", spec.OpRead, spec.Nil)
			return err
		}); err != nil {
			t.Fatalf("tx %d: %v", i, err)
		}
	}
	c.Close()
	if err := s1.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := s1.WALError(); err != nil {
		t.Fatalf("wal error: %v", err)
	}
	wantLog := s1.Log()
	wantTrace := event.MarshalBinaryTrace(s1.Tree(), wantLog)

	s2, rep2 := recoverAndStart(t, opts)
	if rep2.DurableEvents != len(wantLog) || rep2.OrphanTops != 0 || rep2.FixupInforms != 0 {
		t.Fatalf("resume report: %+v (want %d durable events, no repairs)", rep2, len(wantLog))
	}
	if !rep2.AuditOK {
		t.Fatalf("resume audit not ok: %+v", rep2)
	}
	gotTrace := event.MarshalBinaryTrace(s2.Tree(), s2.Log())
	if !bytes.Equal(gotTrace, wantTrace) {
		t.Fatal("recovered trace differs from pre-shutdown trace")
	}

	// The recovered server keeps serving, and new tops don't collide with
	// recovered session labels.
	c2 := dialT(t, s2)
	name, err := c2.Begin()
	if err != nil {
		t.Fatalf("begin after recovery: %v", err)
	}
	if name != "s2.1" {
		t.Fatalf("first post-recovery top is %q, want s2.1 (session seq bumped past recovered s1)", name)
	}
	if _, err := c2.Access("x", spec.OpWrite, spec.Int(99)); err != nil {
		t.Fatalf("access after recovery: %v", err)
	}
	if _, err := c2.Commit(); err != nil {
		t.Fatalf("commit after recovery: %v", err)
	}
	c2.Close()
	f := shutdownAndVerify(t, s2)
	if f.Events <= len(wantLog) {
		t.Fatalf("recovered server appended nothing: %d <= %d", f.Events, len(wantLog))
	}
}

// TestRecoverAfterCrashAbortsOrphans: a session is mid-transaction when
// the process dies. Recovery must abort the orphaned top, deliver it to
// the touched objects, and produce a certificate byte-identical to a
// batch core.Check of the stitched log — after which the once-locked
// object is writable again.
func TestRecoverAfterCrashAbortsOrphans(t *testing.T) {
	disk := server.NewMemDisk()
	opts := server.Options{WAL: disk, Objects: []string{"x"}}
	s1, _ := recoverAndStart(t, opts)

	// Session 1 parks a transaction holding the write lock on x.
	c1 := dialT(t, s1)
	if _, err := c1.Begin(); err != nil {
		t.Fatal(err)
	}
	if _, err := c1.Access("x", spec.OpWrite, spec.Int(1)); err != nil {
		t.Fatal(err)
	}
	// Session 2 commits a transaction on another object; its top-level
	// completion fsyncs the whole WAL, making session 1's in-flight
	// events durable.
	c2 := dialT(t, s1)
	if err := c2.RunTx(5, func(tx *client.Tx) error {
		_, err := tx.Access("y", spec.OpWrite, spec.Int(2))
		return err
	}); err != nil {
		t.Fatal(err)
	}

	// Crash: freeze the disk at the durability boundary, then kill.
	crashDisk := disk.Crash(0)
	disk.Freeze()
	s1.Kill()
	c1.Close()
	c2.Close()

	opts.WAL = crashDisk
	s2, rep := recoverAndStart(t, opts)
	if rep.OrphanTops != 1 {
		t.Fatalf("OrphanTops = %d, want 1 (report: %s)", rep.OrphanTops, rep.Summary())
	}
	if !rep.AuditOK {
		t.Fatalf("audit failed: %s", rep.Summary())
	}

	// The certificate over the stitched log is byte-identical to batch.
	res := core.Check(s2.Tree(), s2.Log())
	if !res.OK {
		t.Fatalf("stitched log fails batch check: %s", res.Summary(s2.Tree()))
	}

	// The orphan's write lock on x must be gone: a new transaction can
	// write x immediately.
	c3 := dialT(t, s2)
	if err := c3.RunTx(1, func(tx *client.Tx) error {
		_, err := tx.Access("x", spec.OpWrite, spec.Int(3))
		return err
	}); err != nil {
		t.Fatalf("x still locked by the dead orphan: %v", err)
	}
	c3.Close()
	f := shutdownAndVerify(t, s2)
	if f.Aborts == 0 {
		t.Fatal("stitched log records no abort for the orphan")
	}
}

// TestRecoverCrashTornTail: unsynced WAL bytes partially survive the
// crash (a torn write). Recovery must truncate the torn suffix and serve
// from the valid prefix for every possible tear point.
func TestRecoverCrashTornTail(t *testing.T) {
	disk := server.NewMemDisk()
	opts := server.Options{WAL: disk, Objects: []string{"x"}}
	s1, _ := recoverAndStart(t, opts)

	c := dialT(t, s1)
	if err := c.RunTx(5, func(tx *client.Tx) error {
		_, err := tx.Access("x", spec.OpWrite, spec.Int(7))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	// Leave a transaction in flight so unsynced bytes exist.
	if _, err := c.Begin(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Access("x", spec.OpRead, spec.Nil); err != nil {
		t.Fatal(err)
	}

	unsynced := disk.UnsyncedBytes()
	crashes := make([]*server.MemDisk, 0, unsynced+1)
	for keep := 0; keep <= unsynced; keep++ {
		crashes = append(crashes, disk.Crash(keep))
	}
	disk.Freeze()
	s1.Kill()
	c.Close()

	for keep, crashDisk := range crashes {
		s2, rep, err := server.Recover(server.Options{WAL: crashDisk, Objects: []string{"x"}})
		if err != nil {
			t.Fatalf("keep=%d: Recover: %v", keep, err)
		}
		if !rep.AuditOK {
			t.Fatalf("keep=%d: audit failed: %s", keep, rep.Summary())
		}
		res := core.Check(s2.Tree(), s2.Log())
		if !res.OK {
			t.Fatalf("keep=%d: stitched log fails batch check", keep)
		}
		s2.Kill() // no connections; just stop the certifier and writer
	}
}

// BenchmarkE18Recover measures the cost of a full WAL recovery — scan,
// replay through the automata, stitch, and the batch-vs-incremental
// certificate audit — on a cleanly shut-down log (E18's "recovery time").
func BenchmarkE18Recover(b *testing.B) {
	disk := server.NewMemDisk()
	opts := server.Options{WAL: disk, Objects: []string{"x", "y", "z"}, LockTimeout: 2 * time.Second}
	s1, _, err := server.Recover(opts)
	if err != nil {
		b.Fatal(err)
	}
	if err := s1.Start("127.0.0.1:0"); err != nil {
		b.Fatal(err)
	}
	c, err := client.Dial(s1.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := c.RunTx(5, func(tx *client.Tx) error {
			if _, err := tx.Access("x", spec.OpWrite, spec.Int(int64(i))); err != nil {
				return err
			}
			_, err := tx.Access("y", spec.OpRead, spec.Nil)
			return err
		}); err != nil {
			b.Fatal(err)
		}
	}
	c.Close()
	if err := s1.Shutdown(context.Background()); err != nil {
		b.Fatal(err)
	}
	events := len(s1.Log())

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, rep, err := server.Recover(opts)
		if err != nil {
			b.Fatal(err)
		}
		if !rep.AuditOK || rep.DurableEvents != events {
			b.Fatalf("recovery diverged: %+v (want %d events)", rep, events)
		}
		s.Kill()
	}
	b.ReportMetric(float64(events), "events")
}
