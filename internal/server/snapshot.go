package server

import (
	"fmt"
	"sort"
	"sync/atomic"

	"nestedsg/internal/event"
	"nestedsg/internal/spec"
	"nestedsg/internal/tname"
)

// snapVersion is one committed value of one object: the value some
// top-level transaction's last surviving write installed, tagged with the
// merged-log index of that transaction's COMMIT event.
type snapVersion struct {
	seq int
	val spec.Value
}

// objHist is one object's committed-version history. The slice behind the
// pointer is never mutated — publication copies it, appends, and swaps the
// pointer — so readers work from whatever consistent slice they loaded
// without any lock.
type objHist struct {
	versions atomic.Pointer[[]snapVersion]
}

// pendingWrite is a granted-but-uncommitted write the tailer tracks until
// its top-level transaction commits (publish) or some ancestor aborts
// (discard).
type pendingWrite struct {
	writer tname.TxID // the access that wrote
	obj    tname.ObjID
	val    spec.Value
}

// snapshotStore serves read-only transactions without locks, automata, or
// log events: a tailer goroutine consumes the merged log in total order
// and, at every top-level COMMIT event, publishes the subtree's surviving
// register writes as versions tagged with that event's log index. A
// read-only transaction pins a cut — a log prefix both fully published and
// certified — at BEGIN and resolves every read against the latest version
// at or below its cut, so its whole read set equals the committed state of
// one acyclic SG(β) prefix: reads never block, never deadlock, and never
// force an abort.
//
// The cut is pinned to min(published, certified) so a stalled certifier
// only makes read-only snapshots older, never uncertified.
type snapshotStore struct {
	srv *Server

	// byObj maps objects to their histories behind an atomic pointer; the
	// map is copy-on-insert (inserts are rare: first commit per object).
	byObj atomic.Pointer[map[tname.ObjID]*objHist]

	// published is the merged-log prefix whose commits are all published.
	published atomic.Int64

	// reads counts snapshot reads served; roTx counts read-only BEGINs.
	reads atomic.Int64
	roTx  atomic.Int64

	// pending is tailer-private state: granted writes per open top.
	pending map[tname.TxID][]pendingWrite

	done chan struct{}
}

func newSnapshotStore() *snapshotStore {
	st := &snapshotStore{
		pending: make(map[tname.TxID][]pendingWrite),
		done:    make(chan struct{}),
	}
	empty := make(map[tname.ObjID]*objHist)
	st.byObj.Store(&empty)
	return st
}

// start launches the tailer after the log is seeded or primed (it then
// consumes the primed prefix first, exactly like the certifier).
func (st *snapshotStore) start(s *Server) {
	st.srv = s
	go st.loop()
}

// waitDone blocks until the closed log has drained through the tailer.
func (st *snapshotStore) waitDone() { <-st.done }

// loop tails the merged log until it closes. Tree reads happen under the
// server's read lock, like every other log consumer.
func (st *snapshotStore) loop() {
	defer close(st.done)
	processed := 0
	var buf event.Behavior
	for {
		batch, ok := st.srv.log.waitBeyond(processed, buf)
		if !ok {
			return
		}
		buf = batch
		st.srv.mu.RLock()
		for i, e := range batch {
			st.apply(processed+i, e)
		}
		st.srv.mu.RUnlock()
		processed += len(batch)
		st.published.Store(int64(processed))
	}
}

// topOf resolves the top-level ancestor of tx (tx itself when it is one).
//
//sgvet:holds st.srv.mu:r
func (st *snapshotStore) topOf(tx tname.TxID) tname.TxID {
	if st.srv.tr.Parent(tx) == tname.Root {
		return tx
	}
	return st.srv.tr.ChildAncestor(tname.Root, tx)
}

// apply folds one merged event at log index idx into the pending/publish
// state; the caller holds the tree read lock.
//
//sgvet:holds st.srv.mu:r
func (st *snapshotStore) apply(idx int, e event.Event) {
	tr := st.srv.tr
	switch e.Kind {
	case event.RequestCommit:
		if e.Tx == tname.Root || !tr.IsAccess(e.Tx) {
			return
		}
		op := tr.AccessOp(e.Tx)
		if !spec.IsWrite(op) {
			return
		}
		top := st.topOf(e.Tx)
		st.pending[top] = append(st.pending[top], pendingWrite{writer: e.Tx, obj: tr.AccessObject(e.Tx), val: op.Arg})
	case event.Abort:
		if e.Tx == tname.Root {
			return
		}
		if tr.Parent(e.Tx) == tname.Root {
			delete(st.pending, e.Tx)
			return
		}
		top := st.topOf(e.Tx)
		pend := st.pending[top]
		kept := pend[:0]
		for _, w := range pend {
			if w.writer != e.Tx && !tr.IsDescendant(w.writer, e.Tx) {
				kept = append(kept, w)
			}
		}
		st.pending[top] = kept
	case event.Commit:
		if e.Tx == tname.Root || tr.Parent(e.Tx) != tname.Root {
			return
		}
		pend := st.pending[e.Tx]
		if len(pend) == 0 {
			delete(st.pending, e.Tx)
			return
		}
		// Last write per object wins; pend is in log (= program) order.
		last := make(map[tname.ObjID]spec.Value, len(pend))
		for _, w := range pend {
			last[w.obj] = w.val
		}
		for obj, val := range last {
			st.publish(obj, idx, val)
		}
		delete(st.pending, e.Tx)
	default:
	}
}

// publish appends (seq, val) to obj's history. Copy-on-write on both the
// map (insert) and the slice (append) keeps concurrent readers safe.
func (st *snapshotStore) publish(obj tname.ObjID, seq int, val spec.Value) {
	m := st.byObj.Load()
	h, ok := (*m)[obj]
	if !ok {
		h = &objHist{}
		empty := []snapVersion{}
		h.versions.Store(&empty)
		nm := make(map[tname.ObjID]*objHist, len(*m)+1)
		for k, v := range *m {
			nm[k] = v
		}
		nm[obj] = h
		st.byObj.Store(&nm)
	}
	old := h.versions.Load()
	nv := make([]snapVersion, len(*old)+1)
	copy(nv, *old)
	nv[len(*old)] = snapVersion{seq: seq, val: val}
	h.versions.Store(&nv)
}

// cut pins the snapshot point for a new read-only transaction: the log
// prefix that is both fully published and certified acyclic.
func (st *snapshotStore) cut() int {
	st.roTx.Add(1)
	pub := int(st.published.Load())
	if wm, _ := st.srv.cert.state(); wm < pub {
		pub = wm
	}
	return pub
}

// read resolves one read at the given cut: the latest version whose
// publishing COMMIT event lies inside the cut prefix, or the spec's
// initial value when none does (or the object has never been created —
// to a prefix that predates an object, it holds its initial value).
//
//sgvet:hotpath
func (st *snapshotStore) read(label string, cutSeq int) (spec.Value, error) {
	if label == "" {
		return spec.Nil, errEmptyObjectLabel
	}
	st.reads.Add(1)
	st.srv.mu.RLock()
	obj := st.srv.tr.Object(label)
	st.srv.mu.RUnlock()
	if obj == tname.NoObj {
		return st.initVal(), nil
	}
	h, ok := (*st.byObj.Load())[obj]
	if !ok {
		return st.initVal(), nil
	}
	vs := *h.versions.Load()
	// Last version with seq < cutSeq; versions are sorted by seq.
	i := sort.Search(len(vs), func(i int) bool { return vs[i].seq >= cutSeq })
	if i == 0 {
		return st.initVal(), nil
	}
	return vs[i-1].val, nil
}

func (st *snapshotStore) initVal() spec.Value {
	return st.srv.opts.DefaultSpec.Init().(spec.Value)
}

var errEmptyObjectLabel = fmt.Errorf("empty object label")
