package server

import "time"

// Hooks intercepts the server's sources of timing nondeterminism so a test
// harness (internal/sim) can replace real time and real sleeps with a
// seeded virtual scheduler. The default implementation is real time; the
// hooks carry no semantics beyond scheduling — a server run under any
// Hooks produces a generic behavior by the same emission-discipline
// argument as the real-time server.
type Hooks interface {
	// Now replaces time.Now for lock-wait deadlines.
	Now() time.Time
	// LockWait replaces the blocked-access poll sleep: the session sess
	// parks for up to d before re-polling. The harness wakes it by
	// returning.
	LockWait(sess int64, d time.Duration)
	// CertApply is called before the certifier applies log event index to
	// the incremental graph; a harness can block here to simulate a
	// stalled certifier. It must not be called with server locks held.
	CertApply(index int)
	// CertBatch is called after CertApply, before the certifier applies a
	// run of up to max events starting at log event index; it returns how
	// many the certifier may apply under one tree read-lock acquisition
	// (the loop clamps the answer to [1, max]). A harness returns the
	// distance to its next stall point so batching never silently crosses
	// an installed stall; the real implementation returns max. Unlike
	// CertApply it must not block.
	CertBatch(index, max int) int
	// PartApply is called before certifier partition part applies log
	// event index to its local graph (only with Options.CertPartitions
	// > 1); a harness can block here to freeze one partition. It must
	// not be called with server locks held. The partition's edge batch —
	// bound included — is delivered to the composer before any blocking,
	// so the watermark stalls exactly at index.
	PartApply(part, index int)
	// PartBatch is the partitioned analogue of CertBatch: it returns how
	// many events (clamped to [1, max]) partition part may apply in one
	// locked run starting at index. A harness returns the distance to
	// its next stall point; the real implementation returns max. It must
	// not block.
	PartBatch(part, index, max int) int
	// MergeApply is called by the log merger just before it merges the
	// shard's entry at global log index base into the totally-ordered
	// log; a harness can block here to stall one shard's merge. It is
	// never called with a log, shard or tree lock held.
	MergeApply(shard int, base int)
	// MergeWait is called when session sess is about to block until the
	// merged log covers log sequence seq (a completion's durability
	// point). Notification only; it must not block on the harness.
	MergeWait(sess int64, seq int)
	// CommitWait is called after a COMMIT's events are logged, just
	// before the session blocks on the certification watermark for log
	// sequence seq. Notification only; it must not block on the harness.
	CommitWait(sess int64, seq int)
	// SessionDone is called when a session's serve loop has fully
	// finished: all of its events (including any disconnect abort) are in
	// the log and no further activity will come from it.
	SessionDone(sess int64)
	// DrainWait replaces the real-time waits of the server's maintenance
	// loops — Shutdown's drain poll and the accept loop's retry backoff —
	// so a seeded harness can advance a virtual clock instead of
	// sleeping.
	DrainWait(d time.Duration)
}

// realHooks is the production implementation: real clock, real sleeps, no
// interception.
type realHooks struct{}

func (realHooks) Now() time.Time                    { return time.Now() }
func (realHooks) LockWait(_ int64, d time.Duration) { time.Sleep(d) }
func (realHooks) CertApply(int)                     {}
func (realHooks) CertBatch(_, max int) int          { return max }
func (realHooks) PartApply(int, int)                {}
func (realHooks) PartBatch(_, _, max int) int       { return max }
func (realHooks) MergeApply(int, int)               {}
func (realHooks) MergeWait(int64, int)              {}
func (realHooks) CommitWait(int64, int)             {}
func (realHooks) SessionDone(int64)                 {}
func (realHooks) DrainWait(d time.Duration)         { time.Sleep(d) }
