package server

import (
	"fmt"

	"nestedsg/internal/locking"
	"nestedsg/internal/mvto"
	"nestedsg/internal/object"
	"nestedsg/internal/replica"
	"nestedsg/internal/spec"
	"nestedsg/internal/tname"
	"nestedsg/internal/undolog"
)

// objectBackend is the seam between the server and its object layer,
// mirroring the certBackend seam: one concurrency-control/recovery
// algorithm guarding every shared object, selected by Options.Backend.
// The automaton calls themselves still flow through object.Generic under
// the per-object mutexes; the backend adds the pieces a protocol needs
// from the server — construction, restart verdicts for protocols that
// abort instead of blocking, an optional read-only snapshot engine, and
// lifecycle/metrics hooks.
type objectBackend interface {
	// name identifies the backend ("moss", "undolog", "mvto", "replica" —
	// or the wrapped protocol's name when Options.Protocol was injected).
	name() string
	// protocol builds the generic object automata; resolveObject and
	// recovery's replayDefs construct every object through it.
	protocol() object.Protocol
	// restartReason is consulted after a failed grant poll, under the
	// object's mutex and the tree read lock. A non-empty reason means the
	// access can never be granted (e.g. an MVTO access that arrived too
	// late in timestamp order) and the session must abort its top-level
	// transaction — the classical restart — instead of parking.
	restartReason(g object.Generic, acc tname.TxID) string
	// snapshots returns the read-only snapshot engine, or nil when the
	// backend has none (read-only BEGINs then run as normal transactions).
	snapshots() *snapshotStore
	// start launches any backend goroutines after the log is seeded or
	// primed; waitDone blocks until the closed log has drained through
	// them. Both mirror the certBackend lifecycle.
	start(s *Server)
	waitDone()
	// metricsInto adds backend-specific keys to the metrics snapshot.
	metricsInto(snap map[string]any)
}

// aborterReason is the shared restartReason body: protocols whose objects
// implement object.Aborter get restart semantics, everything else blocks.
func aborterReason(g object.Generic, acc tname.TxID) string {
	if a, ok := g.(object.Aborter); ok && a.ShouldAbort(acc) {
		return "protocol restart: access arrived too late"
	}
	return ""
}

// protoBackend adapts a bare object.Protocol — the moss and undolog
// backends, and any protocol injected through Options.Protocol.
type protoBackend struct {
	p object.Protocol
}

func (b *protoBackend) name() string              { return b.p.Name() }
func (b *protoBackend) protocol() object.Protocol { return b.p }
func (b *protoBackend) restartReason(g object.Generic, acc tname.TxID) string {
	return aborterReason(g, acc)
}
func (b *protoBackend) snapshots() *snapshotStore  { return nil }
func (b *protoBackend) start(*Server)              {}
func (b *protoBackend) waitDone()                  {}
func (b *protoBackend) metricsInto(map[string]any) {}

// mvtoBackend runs strict-admission multiversion timestamp ordering plus
// the lock-free snapshot store that serves read-only transactions.
type mvtoBackend struct {
	p    *mvto.Protocol
	snap *snapshotStore
}

func (b *mvtoBackend) name() string              { return "mvto" }
func (b *mvtoBackend) protocol() object.Protocol { return b.p }
func (b *mvtoBackend) restartReason(g object.Generic, acc tname.TxID) string {
	return aborterReason(g, acc)
}
func (b *mvtoBackend) snapshots() *snapshotStore { return b.snap }
func (b *mvtoBackend) start(s *Server)           { b.snap.start(s) }
func (b *mvtoBackend) waitDone()                 { b.snap.waitDone() }
func (b *mvtoBackend) metricsInto(snap map[string]any) {
	snap["mvto_snapshot_reads"] = b.snap.reads.Load()
	snap["mvto_ro_begins"] = b.snap.roTx.Load()
}

// replicaBackend stores every object as K quorum-replicated copies. The
// availability process is pinned off (UnavailableProb 0): a live failed
// quorum poll would consume rng draws that leave no trace in the log, so
// recovery's one-replay-per-logged-grant could diverge from the run it is
// auditing. Quorum intersection (R+W>N) keeps logged read values
// replay-stable regardless of which copies each quorum drew.
type replicaBackend struct {
	proto replica.Protocol
	ctrs  *replica.Counters
}

func (b *replicaBackend) name() string              { return "replica" }
func (b *replicaBackend) protocol() object.Protocol { return b.proto }
func (b *replicaBackend) restartReason(g object.Generic, acc tname.TxID) string {
	return aborterReason(g, acc)
}
func (b *replicaBackend) snapshots() *snapshotStore { return nil }
func (b *replicaBackend) start(*Server)             {}
func (b *replicaBackend) waitDone()                 {}
func (b *replicaBackend) metricsInto(snap map[string]any) {
	snap["replica_copies"] = b.proto.Cfg.Copies
	snap["replica_quorum_reads"] = b.ctrs.QuorumReads.Load()
	snap["replica_quorum_writes"] = b.ctrs.QuorumWrites.Load()
}

// BackendNames lists the selectable Options.Backend values.
func BackendNames() []string { return []string{"moss", "undolog", "mvto", "replica"} }

// ValidateBackendOptions checks the backend-related fields of opts without
// building a server — the CLIs' pre-flight, so an unknown -backend name or
// bad quorum arithmetic is a clean error instead of a panic inside New.
func ValidateBackendOptions(opts Options) error {
	_, err := resolveBackend(opts.withDefaults(), tname.NewTree())
	return err
}

// resolveBackend builds the object backend newServer installs. The tree
// must already exist (the MVTO clock binds to it).
func resolveBackend(opts Options, tr *tname.Tree) (objectBackend, error) {
	if opts.Backend != "" && opts.Protocol != nil {
		return nil, fmt.Errorf("server: Options.Backend %q and Options.Protocol %q are both set; pick one",
			opts.Backend, opts.Protocol.Name())
	}
	registerOnly := func(kind string) error {
		if opts.DefaultSpec.Name() != (spec.Register{}).Name() {
			return fmt.Errorf("server: backend %q supports only the register spec (DefaultSpec is %s)",
				kind, opts.DefaultSpec.Name())
		}
		return nil
	}
	switch opts.Backend {
	case "":
		p := opts.Protocol
		if p == nil {
			p = locking.Protocol{}
		}
		return &protoBackend{p: p}, nil
	case "moss":
		return &protoBackend{p: locking.Protocol{}}, nil
	case "undolog":
		return &protoBackend{p: undolog.Protocol{}}, nil
	case "mvto":
		if err := registerOnly("mvto"); err != nil {
			return nil, err
		}
		return &mvtoBackend{p: mvto.NewStrictProtocol(tr), snap: newSnapshotStore()}, nil
	case "replica":
		if err := registerOnly("replica"); err != nil {
			return nil, err
		}
		ctrs := &replica.Counters{}
		cfg := replica.Config{
			Copies:      opts.ReplicaCopies,
			ReadQuorum:  opts.ReplicaReadQuorum,
			WriteQuorum: opts.ReplicaWriteQuorum,
			Counters:    ctrs,
		}
		if err := cfg.Validate(); err != nil {
			return nil, err
		}
		return &replicaBackend{proto: replica.Protocol{Cfg: cfg}, ctrs: ctrs}, nil
	default:
		return nil, fmt.Errorf("server: unknown backend %q (have %v)", opts.Backend, BackendNames())
	}
}
