package server_test

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"nestedsg/internal/client"
	"nestedsg/internal/core"
	"nestedsg/internal/server"
	"nestedsg/internal/spec"
	"nestedsg/internal/undolog"
)

func startServer(t *testing.T, opts server.Options) *server.Server {
	t.Helper()
	s, err := server.Listen("127.0.0.1:0", opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// shutdownAndVerify drains the server and cross-checks the online
// certifier's final snapshot against the batch checker over the captured
// log — the end-of-run certificate every test ends with.
func shutdownAndVerify(t *testing.T, s *server.Server) *server.Final {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	f := s.Final()
	if !f.Batch.OK {
		t.Fatalf("batch check failed:\n%s", f.Batch.Summary(s.Tree()))
	}
	if !f.Match {
		t.Fatal("online snapshot is not byte-identical to the batch SG")
	}
	// Belt and braces: the snapshot's DOT must equal a fresh batch build's.
	if got, want := f.Snapshot.DOT(), core.Check(s.Tree(), s.Log()).SG.DOT(); got != want {
		t.Fatal("snapshot DOT diverges from a recheck over the captured log")
	}
	return f
}

func TestLoopbackSessionLifecycle(t *testing.T) {
	s := startServer(t, server.Options{Objects: []string{"x", "y"}})
	c, err := client.Dial(s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	name, err := c.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(name, "s") {
		t.Fatalf("unexpected top-level name %q", name)
	}
	if _, err := c.Access("x", spec.OpWrite, spec.Int(5)); err != nil {
		t.Fatal(err)
	}
	// The transaction reads its own write through the Moss lock it holds.
	v, err := c.Access("x", spec.OpRead, spec.Nil)
	if err != nil {
		t.Fatal(err)
	}
	if v != spec.Int(5) {
		t.Fatalf("read own write: got %s, want 5", v)
	}
	// A subtransaction: child → access → commit.
	if _, err := c.Child(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Access("y", spec.OpWrite, spec.Int(7)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Commit(); err != nil {
		t.Fatal(err)
	}
	seq, err := c.Commit() // top level: certified commit
	if err != nil {
		t.Fatal(err)
	}
	if seq == 0 {
		t.Fatal("commit seq must point at the COMMIT event, which cannot be log[0]")
	}
	v9, err := c.Verdict()
	if err != nil {
		t.Fatal(err)
	}
	if !v9.Acyclic || v9.Certified < seq {
		t.Fatalf("verdict after certified commit: %+v", v9)
	}

	// A second transaction on the same session, reading the committed state.
	if _, err := c.Begin(); err != nil {
		t.Fatal(err)
	}
	if v, err = c.Access("y", spec.OpRead, spec.Nil); err != nil || v != spec.Int(7) {
		t.Fatalf("committed write not visible: v=%v err=%v", v, err)
	}
	if _, err := c.Commit(); err != nil {
		t.Fatal(err)
	}

	f := shutdownAndVerify(t, s)
	if f.Commits == 0 || f.Events == 0 {
		t.Fatalf("empty final report: %+v", f)
	}
	if got := s.Metrics().TopCommits.Load(); got != 2 {
		t.Fatalf("TopCommits = %d, want 2", got)
	}
}

func TestProtocolErrorsLeaveStateAlone(t *testing.T) {
	s := startServer(t, server.Options{Objects: []string{"x"}})
	c, err := client.Dial(s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, err := c.Commit(); err == nil {
		t.Fatal("COMMIT outside a transaction must fail")
	}
	if err := c.Abort(); err == nil {
		t.Fatal("ABORT outside a transaction must fail")
	}
	if _, err := c.Access("x", spec.OpRead, spec.Nil); err == nil {
		t.Fatal("ACCESS outside a transaction must fail")
	}
	if _, err := c.Begin(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Begin(); err == nil {
		t.Fatal("nested BEGIN must fail")
	}
	// Wrong op for the object's spec: rejected without touching the tx.
	if _, err := c.Access("x", spec.OpEnq, spec.Int(1)); err == nil {
		t.Fatal("register must reject enq")
	}
	// The transaction is still usable afterwards.
	if _, err := c.Access("x", spec.OpWrite, spec.Int(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Commit(); err != nil {
		t.Fatal(err)
	}
	shutdownAndVerify(t, s)
}

// TestConcurrentSoak is the -race soak: 8 clients hammer 4 shared objects
// with nested transactions; every commit must certify online, and the final
// snapshot must equal the batch certificate over the captured log.
func TestConcurrentSoak(t *testing.T) {
	objects := []string{"a", "b", "c", "d"}
	s := startServer(t, server.Options{
		Objects:     objects,
		LockTimeout: 500 * time.Millisecond,
	})
	const (
		clients = 8
		txPer   = 20
	)
	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(i)))
			c, err := client.Dial(s.Addr().String())
			if err != nil {
				errCh <- err
				return
			}
			defer c.Close()
			for n := 0; n < txPer; n++ {
				err := c.RunTx(10, func(tx *client.Tx) error {
					for a := 0; a < 3; a++ {
						obj := objects[rng.Intn(len(objects))]
						var err error
						if rng.Intn(2) == 0 {
							_, err = tx.Access(obj, spec.OpRead, spec.Nil)
						} else {
							_, err = tx.Access(obj, spec.OpWrite, spec.Int(int64(rng.Intn(10))))
						}
						if err != nil {
							return err
						}
						if rng.Intn(4) == 0 {
							if _, err := tx.Child(); err != nil {
								return err
							}
							if _, err := tx.Access(obj, spec.OpWrite, spec.Int(int64(n))); err != nil {
								return err
							}
							if _, err := tx.Commit(); err != nil {
								return err
							}
						}
					}
					return nil
				})
				if err != nil {
					errCh <- fmt.Errorf("client %d tx %d: %w", i, n, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	f := shutdownAndVerify(t, s)
	m := s.Metrics()
	if m.Uncertified.Load() != 0 {
		t.Fatalf("%d commits failed certification", m.Uncertified.Load())
	}
	if got := m.TopCommits.Load(); got != clients*txPer {
		t.Fatalf("TopCommits = %d, want %d", got, clients*txPer)
	}
	t.Logf("soak: %d events, %d commits, %d aborts, %d retries, %d deadlock victims, %d timeouts",
		f.Events, f.Commits, f.Aborts, m.Retries.Load(), m.DeadlockAborts.Load(), m.LockTimeouts.Load())
}

// TestDeadlockResolution cross-locks two sessions (A holds x wants y, B
// holds y wants x); the waits-for detector (or the timeout safety net)
// aborts one, the client retries with backoff, and both must eventually
// commit.
func TestDeadlockResolution(t *testing.T) {
	s := startServer(t, server.Options{
		Objects:     []string{"x", "y"},
		LockTimeout: 400 * time.Millisecond,
	})
	type pair struct{ first, second string }
	order := map[string]pair{
		"A": {"x", "y"},
		"B": {"y", "x"},
	}
	gates := map[string]chan struct{}{"A": make(chan struct{}), "B": make(chan struct{})}
	var wg sync.WaitGroup
	errs := make(map[string]error)
	var mu sync.Mutex
	for _, who := range []string{"A", "B"} {
		wg.Add(1)
		go func(who string) {
			defer wg.Done()
			c, err := client.Dial(s.Addr().String())
			if err == nil {
				defer c.Close()
				attempt := 0
				err = c.RunTx(10, func(tx *client.Tx) error {
					attempt++
					if _, err := tx.Access(order[who].first, spec.OpWrite, spec.Int(1)); err != nil {
						return err
					}
					if attempt == 1 {
						// First attempt only: wait until the peer holds its
						// first lock, guaranteeing the cross-lock.
						close(gates[who])
						other := "A"
						if who == "A" {
							other = "B"
						}
						<-gates[other]
					}
					_, err := tx.Access(order[who].second, spec.OpWrite, spec.Int(2))
					return err
				})
			}
			mu.Lock()
			errs[who] = err
			mu.Unlock()
		}(who)
	}
	wg.Wait()
	for who, err := range errs {
		if err != nil {
			t.Fatalf("session %s never committed: %v", who, err)
		}
	}
	m := s.Metrics()
	if m.DeadlockAborts.Load()+m.LockTimeouts.Load() == 0 {
		t.Fatal("cross-lock resolved without any server-side abort?")
	}
	if m.Retries.Load() == 0 {
		t.Fatal("no retry was recorded")
	}
	if got := m.TopCommits.Load(); got != 2 {
		t.Fatalf("TopCommits = %d, want 2", got)
	}
	f := shutdownAndVerify(t, s)
	if f.Aborts == 0 {
		t.Fatal("expected at least one ABORT in the log")
	}
	t.Logf("deadlock: %d deadlock aborts, %d timeouts, %d retries",
		m.DeadlockAborts.Load(), m.LockTimeouts.Load(), m.Retries.Load())
}

func TestDrainAbortsOpenTransactions(t *testing.T) {
	s := startServer(t, server.Options{Objects: []string{"x"}})
	c, err := client.Dial(s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Begin(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Access("x", spec.OpWrite, spec.Int(1)); err != nil {
		t.Fatal(err)
	}
	// Shutdown with an immediate deadline: the busy connection is
	// force-closed and its transaction aborted server-side.
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("shutdown: %v", err)
	}
	f := s.Final()
	if !f.Batch.OK || !f.Match {
		t.Fatalf("final check after drain failed:\n%s", f.Summary)
	}
	if f.Aborts == 0 {
		t.Fatal("the open transaction was not aborted during drain")
	}
	if s.Metrics().DrainAborts.Load() == 0 {
		t.Fatal("DrainAborts not counted")
	}
}

func TestRunTxAppErrorUnwindsChildren(t *testing.T) {
	s := startServer(t, server.Options{Objects: []string{"x"}})
	c, err := client.Dial(s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	sentinel := errors.New("application failure")
	err = c.RunTx(3, func(tx *client.Tx) error {
		if _, err := tx.Child(); err != nil {
			return err
		}
		if _, err := tx.Access("x", spec.OpWrite, spec.Int(9)); err != nil {
			return err
		}
		return sentinel // leaves the child open; RunTx must unwind it
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("want sentinel error, got %v", err)
	}
	// The session is idle again: a fresh transaction works.
	if _, err := c.Begin(); err != nil {
		t.Fatal(err)
	}
	if v, err := c.Access("x", spec.OpRead, spec.Nil); err != nil || v == spec.Int(9) {
		t.Fatalf("aborted write leaked: v=%v err=%v", v, err)
	}
	if _, err := c.Commit(); err != nil {
		t.Fatal(err)
	}
	shutdownAndVerify(t, s)
}

func TestMetricsHandler(t *testing.T) {
	s := startServer(t, server.Options{Objects: []string{"x"}})
	c, err := client.Dial(s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Begin(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Access("x", spec.OpWrite, spec.Int(3)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Commit(); err != nil {
		t.Fatal(err)
	}
	c.Close()

	rr := httptest.NewRecorder()
	s.MetricsHandler().ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	if rr.Code != 200 {
		t.Fatalf("metrics endpoint: %d", rr.Code)
	}
	var snap map[string]any
	if err := json.Unmarshal(rr.Body.Bytes(), &snap); err != nil {
		t.Fatalf("metrics not JSON: %v", err)
	}
	for _, key := range []string{"requests", "top_commits", "sg_acyclic", "sg_edges",
		"log_events", "certified", "req_p50_us", "commit_p99_us",
		"log_shards", "log_merged", "merge_lag_p99", "merge_batch_size_p99",
		"log_shard_appends_0"} {
		if _, ok := snap[key]; !ok {
			t.Errorf("metrics snapshot missing %q", key)
		}
	}
	if tc, _ := snap["top_commits"].(float64); tc != 1 {
		t.Errorf("top_commits = %v, want 1", snap["top_commits"])
	}
	// Every configured shard reports an append counter, and together they
	// account for every ticketed event.
	nShards, _ := snap["log_shards"].(float64)
	if nShards < 1 {
		t.Fatalf("log_shards = %v, want >= 1", snap["log_shards"])
	}
	var perShard float64
	for i := 0; i < int(nShards); i++ {
		v, ok := snap[fmt.Sprintf("log_shard_appends_%d", i)].(float64)
		if !ok {
			t.Fatalf("metrics snapshot missing shard %d append counter", i)
		}
		perShard += v
	}
	if events, _ := snap["log_events"].(float64); perShard != events {
		t.Errorf("shard append counters sum to %v, log_events = %v", perShard, events)
	}
	shutdownAndVerify(t, s)
}

func TestUndologProtocolServer(t *testing.T) {
	// The server is protocol-generic: the undo-log automaton certifies too.
	s := startServer(t, server.Options{
		Protocol:    undolog.Protocol{},
		DefaultSpec: spec.Counter{},
		Objects:     []string{"ctr"},
	})
	c, err := client.Dial(s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 3; i++ {
		if err := c.RunTx(5, func(tx *client.Tx) error {
			_, err := tx.Access("ctr", spec.OpIncrement, spec.Int(1))
			return err
		}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Begin(); err != nil {
		t.Fatal(err)
	}
	v, err := c.Access("ctr", spec.OpGet, spec.Nil)
	if err != nil {
		t.Fatal(err)
	}
	if v != spec.Int(3) {
		t.Fatalf("counter = %s, want 3", v)
	}
	if _, err := c.Commit(); err != nil {
		t.Fatal(err)
	}
	shutdownAndVerify(t, s)
}
