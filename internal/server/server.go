// Package server implements nestedsgd: a concurrent nested-transaction
// runtime in which every client session drives its own fragment of the
// transaction tree (begin-child / access / commit / abort) against shared
// generic objects, while a totally-ordered event log feeds an online
// core.Incremental certifier so that every committed response is backed by
// an acyclic SG(β) prefix.
//
// Unlike internal/generic — where one seeded scheduler simulates the
// nondeterminism of the paper's generic controller — the interleaving here
// is produced by real goroutine concurrency: sessions race for the
// per-object mutexes and the log mutex, and whatever total order the race
// yields is the behavior β that gets certified. The emission discipline that
// keeps β a generic behavior is local and cheap:
//
//   - each session appends the events of its own transaction subtree in
//     program order (sessions are sequential request/response loops), which
//     preserves every per-transaction well-formedness axiom;
//   - an access's REQUEST_COMMIT is appended while the object's mutex is
//     held, so the log's per-object operation order is exactly the order in
//     which the object automaton applied the operations, making the recorded
//     return values appropriate;
//   - INFORM events are appended under the same object mutex as the
//     automaton call, and a transaction's informs are emitted before its
//     parent can complete, preserving the ascending (leaf-to-root) inform
//     order the lock-visibility argument of §5.3 relies on.
//
// Deadlock is the blocking protocols' price for real concurrency: a session
// whose access stays blocked runs a waits-for cycle check (aborting the
// youngest cycle member) and, as a safety net, times out — either way the
// server aborts the session's whole top-level transaction and the client
// retries with bounded exponential backoff.
package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"nestedsg/internal/core"
	"nestedsg/internal/event"
	"nestedsg/internal/object"
	"nestedsg/internal/spec"
	"nestedsg/internal/tname"
)

// Options configures a server.
type Options struct {
	// Backend selects the object layer by name: "moss" (the default Moss
	// read/update locking), "undolog", "mvto" (strict multiversion
	// timestamp ordering with a lock-free snapshot path for read-only
	// transactions), or "replica" (quorum reads/writes over ReplicaCopies
	// copies). Empty behaves like "moss" unless Protocol is set. Setting
	// both Backend and Protocol is an error.
	Backend string
	// ReplicaCopies/ReplicaReadQuorum/ReplicaWriteQuorum configure the
	// "replica" backend (defaults 3/2/2; R+W must exceed N).
	ReplicaCopies      int
	ReplicaReadQuorum  int
	ReplicaWriteQuorum int
	// Protocol injects an arbitrary generic object automaton instead of a
	// named Backend (tests use it for broken protocols); default is Moss
	// read/update locking.
	Protocol object.Protocol
	// DefaultSpec is the serial specification given to objects created on
	// first access; default is the read/write Register.
	DefaultSpec spec.Spec
	// Objects pre-creates these labels at startup with DefaultSpec.
	Objects []string
	// LockTimeout bounds how long an access waits for its blockers before
	// the server aborts the session's top-level transaction. Default 1s.
	LockTimeout time.Duration
	// LockPoll and LockPollMax bound the exponential poll backoff while an
	// access is blocked. Defaults 100µs and 2ms.
	LockPoll    time.Duration
	LockPollMax time.Duration
	// DeadlockEvery runs the waits-for cycle detector every N blocked polls
	// (default 4); 0 disables detection, leaving the timeout as the only
	// deadlock escape.
	DeadlockEvery int
	// LogShards stripes the event log's append path across this many
	// shards (sessions hash to a shard; a deterministic merger restores
	// the total order). Default 4; 1 degenerates to a single append lock.
	LogShards int
	// CertPartitions splits SG(β) certification across this many
	// partitions of the object space (internal/part): each runs its own
	// incremental checker over its filtered view of the merged log and
	// the composed graph gates commits. Default 1 — the single certifier
	// goroutine; values > 1 engage the partitioned multi-certifier.
	CertPartitions int
	// Logf, when set, receives diagnostic messages.
	Logf func(format string, args ...any)

	// WAL, when set, makes the event log durable: every name definition
	// and every atomic event append is written as one framed record (see
	// wal.go), and the log is fsynced at each top-level completion.
	// Servers with a WAL are built with Recover (which also handles an
	// empty WAL as a fresh start); New panics if WAL is set.
	WAL Disk
	// WALSegmentBytes rotates WAL segments at this size (default 1 MiB).
	WALSegmentBytes int
	// SkipRecoveryAudit disables Recover's offline batch re-check of the
	// stitched log (the audit is cheap insurance; only large recoveries
	// would want to skip it).
	SkipRecoveryAudit bool
	// Hooks intercepts timing nondeterminism; default is real time.
	Hooks Hooks
}

func (o Options) withDefaults() Options {
	if o.ReplicaCopies <= 0 {
		o.ReplicaCopies = 3
	}
	if o.ReplicaReadQuorum <= 0 {
		o.ReplicaReadQuorum = 2
	}
	if o.ReplicaWriteQuorum <= 0 {
		o.ReplicaWriteQuorum = 2
	}
	if o.DefaultSpec == nil {
		o.DefaultSpec = spec.Register{}
	}
	if o.LockTimeout <= 0 {
		o.LockTimeout = time.Second
	}
	if o.LockPoll <= 0 {
		o.LockPoll = 100 * time.Microsecond
	}
	if o.LockPollMax <= 0 {
		o.LockPollMax = 2 * time.Millisecond
	}
	if o.DeadlockEvery < 0 {
		o.DeadlockEvery = 0
	} else if o.DeadlockEvery == 0 {
		o.DeadlockEvery = 4
	}
	if o.LogShards <= 0 {
		o.LogShards = defaultLogShards
	}
	if o.CertPartitions <= 0 {
		o.CertPartitions = 1
	}
	if o.Hooks == nil {
		o.Hooks = realHooks{}
	}
	return o
}

// sharedObject is one generic object plus the mutex that serializes all
// automaton calls on it. The paper's automata take atomic steps; the mutex
// is that atomicity under real concurrency.
type sharedObject struct {
	mu sync.Mutex
	id tname.ObjID
	sp spec.Spec
	g  object.Generic //sgvet:guardedby mu
}

// Server is a concurrent nested-transaction server.
type Server struct {
	opts Options

	// mu guards the tree (interning takes the write lock; every tree read —
	// including reads made inside object automata and the certifier — takes
	// the read lock) and the objs table.
	mu   sync.RWMutex
	tr   *tname.Tree     //sgvet:guardedby mu
	objs []*sharedObject //sgvet:guardedby mu

	log     *shardedLog
	cert    certBackend
	backend objectBackend
	metrics *Metrics
	waits   *waitTable
	wal     *walWriter      // nil without durability
	group   *groupCommitter // fsync coalescer over wal; nil without durability

	lis        net.Listener
	connMu     sync.Mutex
	conns      map[*session]struct{} //sgvet:guardedby connMu
	wg         sync.WaitGroup
	sessionSeq atomic.Int64
	draining   atomic.Bool
	killed     atomic.Bool
	shutdown   sync.Once
}

// newServer allocates the shared state; it neither seeds the log nor
// starts the certifier or backend goroutines — New and Recover finish
// construction their own way.
func newServer(opts Options) (*Server, error) {
	s := &Server{
		opts:    opts,
		tr:      tname.NewTree(),
		metrics: newMetrics(),
		waits:   newWaitTable(),
		conns:   make(map[*session]struct{}),
	}
	be, err := resolveBackend(opts, s.tr)
	if err != nil {
		return nil, err
	}
	s.backend = be
	s.log = newShardedLog(opts.LogShards, opts.Hooks, s.metrics)
	if opts.CertPartitions > 1 {
		s.cert = newPartCertifier(s, opts.CertPartitions)
	} else {
		s.cert = newCertifier(s)
	}
	return s, nil
}

// New builds a server (not yet listening). The log opens with CREATE(T0),
// exactly like the generic runner: T0 models the environment and must be
// created before any top-level REQUEST_CREATE is well-formed. Durable
// servers are built with Recover instead.
func New(opts Options) *Server {
	opts = opts.withDefaults()
	if opts.WAL != nil {
		panic("server: Options.WAL is set; build durable servers with Recover")
	}
	s, err := newServer(opts)
	if err != nil {
		panic(err)
	}
	for _, label := range s.opts.Objects {
		if _, err := s.resolveObject(label); err != nil {
			panic(fmt.Sprintf("server: pre-creating object %q: %v", label, err))
		}
	}
	s.log.append(s.log.shards[0], event.NewEvent(event.Create, tname.Root))
	s.log.startMerger()
	s.cert.start()
	s.backend.start(s)
	return s
}

// Listen builds a server and starts accepting connections on addr.
func Listen(addr string, opts Options) (*Server, error) {
	s := New(opts)
	if err := s.Start(addr); err != nil {
		s.log.close()
		s.cert.waitDone()
		s.backend.waitDone()
		return nil, err
	}
	return s, nil
}

// Start begins accepting connections on addr; it is how a recovered
// server goes back online.
func (s *Server) Start(addr string) error {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.Serve(lis)
	return nil
}

// Serve starts accepting connections from lis, which the server takes
// ownership of (Shutdown closes it). Start wraps it for TCP; tests inject
// fake listeners here to exercise the accept loop's error handling.
func (s *Server) Serve(lis net.Listener) {
	s.lis = lis
	s.wg.Add(1)
	go s.acceptLoop()
}

// Addr returns the listener address.
func (s *Server) Addr() net.Addr { return s.lis.Addr() }

func (s *Server) logf(format string, args ...any) {
	if s.opts.Logf != nil {
		s.opts.Logf(format, args...)
	}
}

// acceptRetryMax caps the accept loop's exponential retry backoff.
const acceptRetryMax = 100 * time.Millisecond

// acceptLoop accepts connections until the listener reports net.ErrClosed
// (Shutdown closed it). Any other Accept error is treated as transient —
// EMFILE under fd pressure, ECONNABORTED from a half-open handshake — and
// retried with capped exponential backoff: exiting on those would leave a
// live, certifying server that silently accepts nothing forever.
func (s *Server) acceptLoop() {
	defer s.wg.Done()
	var backoff time.Duration
	for {
		c, err := s.lis.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) || s.draining.Load() {
				return
			}
			s.metrics.AcceptRetries.Add(1)
			s.logf("accept: %v (retrying)", err)
			if backoff == 0 {
				backoff = time.Millisecond
			} else if backoff *= 2; backoff > acceptRetryMax {
				backoff = acceptRetryMax
			}
			s.opts.Hooks.DrainWait(backoff)
			continue
		}
		backoff = 0
		s.ServeConn(c)
	}
}

// ServeConn serves one session over an arbitrary connection (the simulator
// uses net.Pipe ends) in the background, returning the session id, or -1
// if the server is draining and the connection was refused.
func (s *Server) ServeConn(c net.Conn) int64 {
	sn := newSession(s, c)
	s.connMu.Lock()
	if s.draining.Load() {
		s.connMu.Unlock()
		c.Close()
		return -1
	}
	s.conns[sn] = struct{}{}
	s.connMu.Unlock()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		sn.serve()
		s.connMu.Lock()
		delete(s.conns, sn)
		s.connMu.Unlock()
	}()
	return sn.id
}

// resolveObject returns the shared object for label, creating it (and
// interning the object name) on first use with the default spec.
func (s *Server) resolveObject(label string) (*sharedObject, error) {
	s.mu.RLock()
	if id := s.tr.Object(label); id != tname.NoObj {
		o := s.objs[id]
		s.mu.RUnlock()
		return o, nil
	}
	s.mu.RUnlock()

	s.mu.Lock()
	defer s.mu.Unlock()
	if id := s.tr.Object(label); id != tname.NoObj {
		return s.objs[id], nil
	}
	if label == "" {
		return nil, errors.New("empty object label")
	}
	id := s.tr.AddObject(label, s.opts.DefaultSpec)
	// The definition record is queued inside the tree's write-lock
	// critical section, so WAL definition order equals interning order and
	// recovery's sequential ID re-assignment reproduces the tree exactly;
	// the merger flushes it before any event that could reference the name.
	if s.wal != nil {
		s.log.appendDef(func(buf []byte) []byte {
			return event.AppendWalObjectDef(buf, label, s.opts.DefaultSpec.Name())
		})
	}
	o := &sharedObject{id: id, sp: s.tr.Spec(id), g: s.backend.protocol().New(s.tr, id)}
	for int(id) >= len(s.objs) {
		s.objs = append(s.objs, nil)
	}
	s.objs[id] = o
	return o, nil
}

// internTx interns a subtransaction (or access, when obj != NoObj) under
// the tree write lock, writing the WAL definition record in the same
// critical section when the name is new.
func (s *Server) internTx(parent tname.TxID, label string, obj tname.ObjID, op spec.Op) tname.TxID {
	s.mu.Lock()
	defer s.mu.Unlock()
	before := s.tr.NumTx()
	var id tname.TxID
	if obj == tname.NoObj {
		id = s.tr.Child(parent, label)
	} else {
		id = s.tr.Access(parent, label, obj, op)
	}
	if s.wal != nil && s.tr.NumTx() > before {
		s.log.appendDef(func(buf []byte) []byte {
			return event.AppendWalTxDef(buf, parent, label, obj, op)
		})
	}
	return id
}

// walSync makes the log durable through the present; sessions call it at
// top-level completion points. It routes through the group committer, so
// concurrent completions coalesce onto one fsync per generation. The first
// failure is sticky in the writer (also surfaced by WALError) and returned
// here, so the commit path can refuse to ack a completion the WAL never
// persisted.
func (s *Server) walSync() error {
	if s.group == nil {
		return nil
	}
	return s.group.sync()
}

// WALError reports the first durability failure, if any.
func (s *Server) WALError() error {
	if s.wal == nil {
		return nil
	}
	return s.wal.stickyErr()
}

// LogLen reports the current event-log length (events appended, whether or
// not the merger has placed them in total order yet).
func (s *Server) LogLen() int { return s.log.len() }

// LogShards reports the number of append shards.
func (s *Server) LogShards() int { return len(s.log.shards) }

// MergedLen reports how many log events the merger has placed in total
// order (MergedLen ≤ LogLen; the gap is the merge lag).
func (s *Server) MergedLen() int { return s.log.mergedLen() }

// WaitMergedLen blocks until the merged log covers n events. Test harnesses
// use it to settle the merger at a deterministic point.
func (s *Server) WaitMergedLen(n int) { s.log.waitMerged(n) }

// SettleMerged blocks until the merged log covers n events, then flushes
// every definition record already eligible at that point to the WAL writer.
// The simulator calls it before snapshotting a crash: the merger announces
// a merged prefix before its next definition-flush pass, so without the
// explicit flush the crash-instant WAL bytes would depend on merger timing.
func (s *Server) SettleMerged(n int) {
	s.log.waitMerged(n)
	s.log.flushDefs(s.log.mergedLen())
}

// MergeBoundAfter returns the smallest unmerged log index owned by shard
// that is ≥ from, or -1 if the shard has none pending there. While a
// harness stalls the shard's merge at from, the answer is stable — entries
// at or past the stall can arrive but never merge — which is what makes
// park-or-proceed decisions in the simulator deterministic.
func (s *Server) MergeBoundAfter(shard, from int) int { return s.log.pendingIn(shard, from) }

// withObj runs f while holding the object's mutex and the tree read lock —
// the automata read the tree on most calls. Lock order is always object
// mutex before tree lock; the tree write lock is never taken while an
// object mutex is held.
func (s *Server) withObj(o *sharedObject, f func()) {
	o.mu.Lock()
	s.mu.RLock()
	f()
	s.mu.RUnlock()
	o.mu.Unlock()
}

// AuditObjects runs every object's protocol self-audit (object.Auditor)
// under its mutex and returns the first violation. Safe on a live server;
// the simulator calls it after every crash recovery and at the final
// drain, so backend invariants — e.g. the replica backend's rule that the
// latest installed version sits on a full write quorum — are re-proved
// across torn-write recoveries.
func (s *Server) AuditObjects() error {
	s.mu.RLock()
	objs := append([]*sharedObject(nil), s.objs...)
	s.mu.RUnlock()
	for _, o := range objs {
		if o == nil {
			continue
		}
		var err error
		s.withObj(o, func() { //sgvet:holds o.mu, s.mu:r
			if au, ok := o.g.(object.Auditor); ok {
				err = au.Audit()
			}
		})
		if err != nil {
			s.mu.RLock()
			label := s.tr.ObjectLabel(o.id)
			s.mu.RUnlock()
			return fmt.Errorf("object %s: %w", label, err)
		}
	}
	return nil
}

// specOps lists the operation kinds each built-in specification interprets;
// the server validates access requests against it so a client cannot drive
// an automaton into an unsupported operation.
var specOps = map[string][]spec.OpKind{
	"register":  {spec.OpRead, spec.OpWrite},
	"counter":   {spec.OpIncrement, spec.OpDecrement, spec.OpGet},
	"account":   {spec.OpDeposit, spec.OpWithdraw, spec.OpBalance},
	"set":       {spec.OpInsert, spec.OpRemove, spec.OpMember, spec.OpSize},
	"appendlog": {spec.OpAppend, spec.OpLen},
	"queue":     {spec.OpEnq, spec.OpDeq},
}

func specAllows(sp spec.Spec, k spec.OpKind) bool {
	for _, ok := range specOps[sp.Name()] {
		if ok == k {
			return true
		}
	}
	return false
}

// Shutdown drains the server: the listener closes, idle connections are
// closed immediately, and connections with an open transaction get until
// ctx's deadline to finish before being force-closed (their transactions
// are then aborted server-side). After the last session exits, the
// certifier drains the log and stops. Shutdown is idempotent; the first
// call's ctx governs.
func (s *Server) Shutdown(ctx context.Context) error {
	var err error
	s.shutdown.Do(func() {
		s.draining.Store(true)
		if s.lis != nil {
			s.lis.Close()
		}
		for {
			s.connMu.Lock()
			n := 0
			for sn := range s.conns {
				if sn.idle() {
					sn.conn.Close()
				} else {
					n++
				}
			}
			s.connMu.Unlock()
			if n == 0 {
				break
			}
			if ctx.Err() != nil {
				s.killed.Store(true)
				s.connMu.Lock()
				for sn := range s.conns {
					sn.conn.Close()
				}
				s.connMu.Unlock()
				err = ctx.Err()
				break
			}
			// The poll cadence goes through Hooks so a seeded harness can
			// drain on its virtual clock instead of real time.
			s.opts.Hooks.DrainWait(2 * time.Millisecond)
		}
		s.wg.Wait()
		s.log.close()
		s.cert.waitDone()
		s.backend.waitDone()
		if s.wal != nil {
			s.wal.close()
		}
	})
	return err
}

// Kill abandons the server without draining, simulating a process crash
// for everything above the WAL: connections are force-closed, in-flight
// transactions are NOT aborted in the durable log (recovery must do it),
// and no final sync is issued. The in-memory log still drains through the
// certifier so the dying process's goroutines all stop. A simulator that
// wants crash semantics freezes its MemDisk first, so the post-Kill
// appends never reach the "disk".
func (s *Server) Kill() {
	s.shutdown.Do(func() {
		s.killed.Store(true)
		s.draining.Store(true)
		if s.lis != nil {
			s.lis.Close()
		}
		s.connMu.Lock()
		for sn := range s.conns {
			sn.conn.Close()
		}
		s.connMu.Unlock()
		s.wg.Wait()
		s.log.close()
		s.cert.waitDone()
		s.backend.waitDone()
		if s.wal != nil {
			s.wal.closeNoSync()
		}
	})
}

// Final is the end-of-run report: the batch verdict over the captured log
// and the online certifier's snapshot, which must agree.
type Final struct {
	// Events, Commits and Aborts summarize the captured log.
	Events, Commits, Aborts int
	// Batch is the offline Theorem 8/19 check over the whole log.
	Batch *core.Result
	// Snapshot is the online certifier's final SG; Match reports that its
	// DOT rendering is byte-identical to the batch-built graph's.
	Snapshot *core.SG
	Match    bool
	// Summary is a human-readable multi-line rendering.
	Summary string
}

// Final recomputes the whole run offline and cross-checks the online
// snapshot. Call only after Shutdown has returned (the certifier must be
// drained and all sessions stopped).
//
//sgvet:ignore[lockguard] post-Shutdown: sessions and certifier are quiesced, so the tree is immutable here
func (s *Server) Final() *Final {
	b := s.log.snapshot()
	f := &Final{Events: len(b)}
	for _, e := range b {
		switch e.Kind {
		case event.Commit:
			f.Commits++
		case event.Abort:
			f.Aborts++
		default:
		}
	}
	f.Batch = core.Check(s.tr, b)
	f.Snapshot = s.cert.snapshotSG()
	if f.Batch.SG != nil {
		f.Match = f.Snapshot.DOT() == f.Batch.SG.DOT()
	}
	verdict := f.Batch.Summary(s.tr)
	match := "online snapshot matches batch SG byte-for-byte"
	if !f.Match {
		match = "MISMATCH between online snapshot and batch SG"
	}
	f.Summary = fmt.Sprintf(
		"final certificate: %s\n  log: %d events, %d commits, %d aborts\n  %s\n",
		verdict, f.Events, f.Commits, f.Aborts, match)
	return f
}

// Log returns a copy of the captured event log.
func (s *Server) Log() event.Behavior { return s.log.snapshot() }

// CertPartitions reports the certifier partition count (1 = the single
// certifier goroutine).
func (s *Server) CertPartitions() int { return s.opts.CertPartitions }

// Backend reports the object backend's name ("moss", "undolog", "mvto",
// "replica", or an injected protocol's name).
func (s *Server) Backend() string { return s.backend.name() }

// Tree returns the server's system type. It must only be read concurrently
// with running sessions under external synchronization; tests use it after
// Shutdown.
//
//sgvet:ignore[lockguard] post-Shutdown accessor: callers hold no lock because nothing mutates the tree anymore
func (s *Server) Tree() *tname.Tree { return s.tr }
