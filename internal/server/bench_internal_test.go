package server

import (
	"testing"

	"nestedsg/internal/event"
	"nestedsg/internal/tname"
)

// BenchmarkServerLogAppend measures the eventLog append path with a WAL
// attached — the hot path of every request the server logs. The pooled
// wal-encode buffer and the writer's scratch buffer must keep it
// steady-state allocation-free (the hotalloc analyzer gates the escape
// analysis; this benchmark gates the observed allocs/op).
func BenchmarkServerLogAppend(b *testing.B) {
	w, err := newWalWriter(NewMemDisk(), 0, 0)
	if err != nil {
		b.Fatal(err)
	}
	l := newEventLog()
	l.wal = w
	evs := []event.Event{
		event.NewEvent(event.RequestCreate, tname.TxID(2)),
		event.NewEvent(event.Create, tname.TxID(2)),
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.append(evs...)
	}
}

// BenchmarkServerGroupCommit measures the group committer under maximal
// contention: every iteration is one committer's sync request, and the
// parallel committers coalesce onto shared fsync generations. The ticket
// protocol itself must not allocate.
func BenchmarkServerGroupCommit(b *testing.B) {
	w, err := newWalWriter(NewMemDisk(), 0, 0)
	if err != nil {
		b.Fatal(err)
	}
	g := newGroupCommitter(w, newMetrics())
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if err := g.sync(); err != nil {
				b.Fatal(err)
			}
		}
	})
}
