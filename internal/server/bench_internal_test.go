package server

import (
	"sync/atomic"
	"testing"

	"nestedsg/internal/event"
	"nestedsg/internal/tname"
)

// BenchmarkShardedLogAppend measures the sharded append path with a WAL
// attached and the merger live — the hot path of every request the server
// logs, under maximal cross-goroutine contention. The per-shard freelists,
// the pooled wal-encode buffer and the writer's scratch buffer must keep
// the appender side steady-state allocation-free (the hotalloc analyzer
// gates the escape analysis; this benchmark gates the observed allocs/op —
// only appender-goroutine allocations are counted, the merger's occasional
// merged-slice growth is amortized background work).
func BenchmarkShardedLogAppend(b *testing.B) {
	w, err := newWalWriter(NewMemDisk(), 0, 0)
	if err != nil {
		b.Fatal(err)
	}
	l := newShardedLog(4, realHooks{}, nil)
	l.wal = w
	l.startMerger()
	evs := []event.Event{
		event.NewEvent(event.RequestCreate, tname.TxID(2)),
		event.NewEvent(event.Create, tname.TxID(2)),
	}
	var sid atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		sh := l.shardFor(sid.Add(1))
		for pb.Next() {
			l.append(sh, evs...)
		}
	})
	b.StopTimer()
	l.close()
	if got, want := l.mergedLen(), l.len(); got != want {
		b.Fatalf("merged %d of %d appended events", got, want)
	}
}

// BenchmarkServerGroupCommit measures the group committer under maximal
// contention: every iteration is one committer's sync request, and the
// parallel committers coalesce onto shared fsync generations. The ticket
// protocol itself must not allocate.
func BenchmarkServerGroupCommit(b *testing.B) {
	w, err := newWalWriter(NewMemDisk(), 0, 0)
	if err != nil {
		b.Fatal(err)
	}
	g := newGroupCommitter(w, newMetrics())
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if err := g.sync(); err != nil {
				b.Fatal(err)
			}
		}
	})
}
