package event

import (
	"encoding/json"
	"fmt"
	"io"

	"nestedsg/internal/spec"
	"nestedsg/internal/tname"
)

// Trace is the on-disk form of a behavior together with the system type it
// was recorded against. cmd/nestedrun writes traces; cmd/sgcheck reads them.
type Trace struct {
	// Objects lists object names and their specification names, indexed by
	// ObjID.
	Objects []TraceObject `json:"objects"`
	// Tx lists transaction names indexed by TxID; entry 0 is T0.
	Tx []TraceTx `json:"tx"`
	// Events is the recorded behavior.
	Events []TraceEvent `json:"events"`
}

// TraceObject is one object name in a trace.
type TraceObject struct {
	Label string `json:"label"`
	Spec  string `json:"spec"`
}

// TraceTx is one transaction name in a trace.
type TraceTx struct {
	Parent int32       `json:"parent"` // -1 for T0
	Label  string      `json:"label"`
	Obj    int32       `json:"obj"` // -1 for non-accesses
	Op     string      `json:"op,omitempty"`
	OpArg  *TraceValue `json:"oparg,omitempty"`
}

// TraceEvent is one event in a trace.
type TraceEvent struct {
	Kind string      `json:"kind"`
	Tx   int32       `json:"tx"`
	Val  *TraceValue `json:"val,omitempty"`
	Obj  int32       `json:"obj,omitempty"`
}

// TraceValue is the JSON form of a spec.Value.
type TraceValue struct {
	Kind string `json:"kind"`
	Int  int64  `json:"int,omitempty"`
	Str  string `json:"str,omitempty"`
}

var valueKindNames = map[spec.ValueKind]string{
	spec.VNil: "nil", spec.VOK: "ok", spec.VInt: "int", spec.VBool: "bool", spec.VStr: "str",
}

func encodeValue(v spec.Value) *TraceValue {
	return &TraceValue{Kind: valueKindNames[v.Kind], Int: v.Int, Str: v.Str}
}

func decodeValue(tv *TraceValue) (spec.Value, error) {
	if tv == nil {
		return spec.Nil, nil
	}
	// Rebuild through the spec constructors so that decoded values carry
	// exactly the fields their kind selects (a hand-rolled struct literal
	// here could smuggle, say, a Str payload into a VInt value, breaking
	// == comparison downstream).
	switch tv.Kind {
	case "nil":
		return spec.Nil, nil
	case "ok":
		return spec.OK, nil
	case "int":
		return spec.Int(tv.Int), nil
	case "bool":
		return spec.Bool(tv.Int != 0), nil
	case "str":
		return spec.Str(tv.Str), nil
	default:
		return spec.Nil, fmt.Errorf("trace: unknown value kind %q", tv.Kind)
	}
}

var opKindByName = func() map[string]spec.OpKind {
	m := make(map[string]spec.OpKind)
	for k := spec.OpKind(1); k <= spec.OpDeq; k++ {
		m[k.String()] = k
	}
	return m
}()

var eventKindByName = func() map[string]Kind {
	m := make(map[string]Kind)
	for k := Create; k <= InformAbort; k++ {
		m[k.String()] = k
	}
	return m
}()

// EncodeTrace converts a tree and behavior into a serializable Trace.
func EncodeTrace(tr *tname.Tree, b Behavior) *Trace {
	t := &Trace{}
	for x := tname.ObjID(0); int(x) < tr.NumObjects(); x++ {
		t.Objects = append(t.Objects, TraceObject{Label: tr.ObjectLabel(x), Spec: tr.Spec(x).Name()})
	}
	for id := tname.TxID(0); int(id) < tr.NumTx(); id++ {
		tt := TraceTx{Parent: int32(tr.Parent(id)), Label: tr.Label(id), Obj: int32(tname.NoObj)}
		if tr.IsAccess(id) {
			op := tr.AccessOp(id)
			tt.Obj = int32(tr.AccessObject(id))
			tt.Op = op.Kind.String()
			if op.Arg.Kind != spec.VNil {
				tt.OpArg = encodeValue(op.Arg)
			}
		}
		t.Tx = append(t.Tx, tt)
	}
	for _, e := range b {
		te := TraceEvent{Kind: e.Kind.String(), Tx: int32(e.Tx), Obj: int32(e.Obj)}
		if e.Kind == RequestCommit || e.Kind == ReportCommit {
			te.Val = encodeValue(e.Val)
		}
		t.Events = append(t.Events, te)
	}
	return t
}

// DecodeTrace reconstructs the tree and behavior from a Trace.
//
// Every malformed input must surface as an error, never as a panic: the
// tname interner panics on programming errors (re-interning a name with
// different metadata, giving an access a child), so the decoder validates
// each entry before handing it over. FuzzTraceRoundTrip drives this
// contract with arbitrary inputs.
func DecodeTrace(t *Trace) (*tname.Tree, Behavior, error) {
	tr := tname.NewTree()
	for i, to := range t.Objects {
		sp := spec.ByName(to.Spec)
		if sp == nil {
			return nil, nil, fmt.Errorf("trace: unknown spec %q", to.Spec)
		}
		if tr.Object(to.Label) != tname.NoObj {
			return nil, nil, fmt.Errorf("trace: object %d reuses label %q", i, to.Label)
		}
		tr.AddObject(to.Label, sp)
	}
	type nameKey struct {
		parent int32
		label  string
	}
	seen := make(map[nameKey]bool)
	for i, tt := range t.Tx {
		if i == 0 {
			if tt.Parent != -1 {
				return nil, nil, fmt.Errorf("trace: entry 0 must be T0")
			}
			continue
		}
		parent := tname.TxID(tt.Parent)
		if parent < 0 || int(parent) >= i {
			return nil, nil, fmt.Errorf("trace: tx %d has bad parent %d", i, tt.Parent)
		}
		if tr.IsAccess(parent) {
			return nil, nil, fmt.Errorf("trace: tx %d is a child of access %d", i, tt.Parent)
		}
		key := nameKey{tt.Parent, tt.Label}
		if seen[key] {
			return nil, nil, fmt.Errorf("trace: tx %d duplicates name %q under parent %d", i, tt.Label, tt.Parent)
		}
		seen[key] = true
		var id tname.TxID
		if tt.Obj >= 0 {
			if int(tt.Obj) >= tr.NumObjects() {
				return nil, nil, fmt.Errorf("trace: tx %d accesses unknown object %d", i, tt.Obj)
			}
			kind, ok := opKindByName[tt.Op]
			if !ok {
				return nil, nil, fmt.Errorf("trace: tx %d has unknown op %q", i, tt.Op)
			}
			arg, err := decodeValue(tt.OpArg)
			if err != nil {
				return nil, nil, err
			}
			id = tr.Access(parent, tt.Label, tname.ObjID(tt.Obj), spec.Op{Kind: kind, Arg: arg})
		} else {
			id = tr.Child(parent, tt.Label)
		}
		if id != tname.TxID(i) {
			return nil, nil, fmt.Errorf("trace: tx %d interned out of order (got %d); duplicate name?", i, id)
		}
	}
	var b Behavior
	for i, te := range t.Events {
		kind, ok := eventKindByName[te.Kind]
		if !ok {
			return nil, nil, fmt.Errorf("trace: event %d has unknown kind %q", i, te.Kind)
		}
		if te.Tx < 0 || int(te.Tx) >= tr.NumTx() {
			return nil, nil, fmt.Errorf("trace: event %d names unknown tx %d", i, te.Tx)
		}
		val, err := decodeValue(te.Val)
		if err != nil {
			return nil, nil, err
		}
		e := Event{Kind: kind, Tx: tname.TxID(te.Tx), Val: val, Obj: tname.ObjID(te.Obj)}
		if kind != InformCommit && kind != InformAbort {
			e.Obj = tname.NoObj
		} else if te.Obj < 0 || int(te.Obj) >= tr.NumObjects() {
			return nil, nil, fmt.Errorf("trace: event %d informs unknown object %d", i, te.Obj)
		}
		b = append(b, e)
	}
	return tr, b, nil
}

// WriteTrace writes the behavior as indented JSON.
func WriteTrace(w io.Writer, tr *tname.Tree, b Behavior) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(EncodeTrace(tr, b))
}

// ReadTrace parses a JSON trace.
func ReadTrace(r io.Reader) (*tname.Tree, Behavior, error) {
	var t Trace
	if err := json.NewDecoder(r).Decode(&t); err != nil {
		return nil, nil, fmt.Errorf("trace: decode: %w", err)
	}
	return DecodeTrace(&t)
}
