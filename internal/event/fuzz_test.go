package event

import (
	"bytes"
	"testing"

	"nestedsg/internal/spec"
	"nestedsg/internal/tname"
)

// seedTrace builds a small two-object behavior exercising accesses with
// arguments, values of several kinds, aborts and informs, and returns its
// JSON encoding.
func seedTrace(t testing.TB) []byte {
	t.Helper()
	tr := tname.NewTree()
	x := tr.AddObject("x", spec.Register{})
	c := tr.AddObject("c", spec.Counter{})
	t1 := tr.Child(tname.Root, "T1")
	t2 := tr.Child(tname.Root, "T2")
	w := tr.Access(t1, "w", x, spec.Op{Kind: spec.OpWrite, Arg: spec.Int(7)})
	inc := tr.Access(t2, "inc", c, spec.Op{Kind: spec.OpIncrement, Arg: spec.Int(1)})
	b := Behavior{
		NewEvent(Create, tname.Root),
		NewEvent(RequestCreate, t1),
		NewEvent(Create, t1),
		NewEvent(RequestCreate, w),
		NewEvent(Create, w),
		NewValEvent(RequestCommit, w, spec.OK),
		NewEvent(Commit, w),
		NewValEvent(ReportCommit, w, spec.OK),
		NewValEvent(RequestCommit, t1, spec.Nil),
		NewEvent(Commit, t1),
		NewInform(InformCommit, t1, x),
		NewEvent(RequestCreate, t2),
		NewEvent(Create, t2),
		NewEvent(RequestCreate, inc),
		NewEvent(Abort, inc),
		NewInform(InformAbort, inc, c),
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, tr, b); err != nil {
		t.Fatalf("encoding seed trace: %v", err)
	}
	return buf.Bytes()
}

// FuzzTraceRoundTrip checks that for any input the trace codec either
// rejects it with an error or settles after one round trip: if data parses
// to (tr, b), then render(tr, b) must itself parse, and rendering the
// reparsed trace must reproduce it byte for byte (parse ∘ render = id on
// rendered traces). Decoding must never panic — DecodeTrace validates
// every entry before handing it to the tname interner, whose panics mean
// programming errors, not bad input.
func FuzzTraceRoundTrip(f *testing.F) {
	f.Add(seedTrace(f))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"objects":[{"label":"x","spec":"register"}],"tx":[{"parent":-1,"label":"T0","obj":-1}],"events":[]}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, b, err := ReadTrace(bytes.NewReader(data))
		if err != nil {
			return // rejected; all we require is no panic
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("accepted trace yields invalid tree: %v", err)
		}

		var r1 bytes.Buffer
		if err := WriteTrace(&r1, tr, b); err != nil {
			t.Fatalf("rendering accepted trace: %v", err)
		}
		tr2, b2, err := ReadTrace(bytes.NewReader(r1.Bytes()))
		if err != nil {
			t.Fatalf("reparsing rendered trace: %v\nrendered:\n%s", err, r1.String())
		}
		if !b2.Equal(b) {
			t.Fatalf("behavior changed across round trip:\nbefore:\n%s\nafter:\n%s", b.Format(tr), b2.Format(tr2))
		}
		if tr2.NumTx() != tr.NumTx() || tr2.NumObjects() != tr.NumObjects() {
			t.Fatalf("tree changed across round trip: %d/%d tx, %d/%d objects",
				tr.NumTx(), tr2.NumTx(), tr.NumObjects(), tr2.NumObjects())
		}

		var r2 bytes.Buffer
		if err := WriteTrace(&r2, tr2, b2); err != nil {
			t.Fatalf("re-rendering: %v", err)
		}
		if !bytes.Equal(r1.Bytes(), r2.Bytes()) {
			t.Fatalf("render is not a fixed point:\nfirst:\n%s\nsecond:\n%s", r1.String(), r2.String())
		}
	})
}
