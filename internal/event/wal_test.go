package event

import (
	"testing"

	"nestedsg/internal/spec"
	"nestedsg/internal/tname"
)

// walSamples returns one encoded payload per record shape, with the
// (numTx, numObjects) counts under which each is valid.
func walSamples() []struct {
	name    string
	payload []byte
	numTx   int
	numObj  int
} {
	events := Behavior{
		NewEvent(RequestCreate, 1),
		NewEvent(Create, 1),
		NewValEvent(RequestCommit, 2, spec.Int(7)),
		NewEvent(Commit, 2),
		NewInform(InformCommit, 2, 0),
		NewValEvent(ReportCommit, 2, spec.Str("hi")),
		NewEvent(Abort, 1),
		NewInform(InformAbort, 1, 1),
		NewEvent(ReportAbort, 1),
		NewValEvent(RequestCommit, 1, spec.OK),
		NewValEvent(ReportCommit, 1, spec.Bool(true)),
	}
	return []struct {
		name    string
		payload []byte
		numTx   int
		numObj  int
	}{
		{"objectdef", AppendWalObjectDef(nil, "x", "register"), 1, 0},
		{"txdef-plain", AppendWalTxDef(nil, tname.Root, "s1.1", tname.NoObj, spec.Op{}), 1, 0},
		{"txdef-access", AppendWalTxDef(nil, 1, "a1", 0, spec.Op{Kind: spec.OpWrite, Arg: spec.Int(42)}), 2, 1},
		{"events", AppendWalEvents(nil, events...), 3, 2},
		{"events-empty", AppendWalEvents(nil), 1, 0},
	}
}

func TestWalOpRoundTrip(t *testing.T) {
	for _, s := range walSamples() {
		op, err := DecodeWalOp(s.payload, s.numTx, s.numObj)
		if err != nil {
			t.Fatalf("%s: decode: %v", s.name, err)
		}
		var re []byte
		switch op.Kind {
		case WalObjectDef:
			re = AppendWalObjectDef(nil, op.Label, op.SpecName)
		case WalTxDef:
			re = AppendWalTxDef(nil, op.Parent, op.Label, op.Obj, op.Op)
		case WalEvents:
			re = AppendWalEvents(nil, op.Events...)
		}
		if string(re) != string(s.payload) {
			t.Fatalf("%s: re-encode differs:\n  in:  %x\n  out: %x", s.name, s.payload, re)
		}
	}
}

// TestWalOpTruncation feeds every strict prefix of every sample payload to
// the decoder: each must return an error (never panic, never accept).
func TestWalOpTruncation(t *testing.T) {
	for _, s := range walSamples() {
		for n := 0; n < len(s.payload); n++ {
			if _, err := DecodeWalOp(s.payload[:n], s.numTx, s.numObj); err == nil {
				t.Fatalf("%s: %d-byte prefix of %d-byte payload decoded without error", s.name, n, len(s.payload))
			}
		}
	}
}

func TestWalOpRejects(t *testing.T) {
	good := AppendWalObjectDef(nil, "x", "register")
	cases := []struct {
		name    string
		payload []byte
		numTx   int
		numObj  int
	}{
		{"empty", nil, 1, 0},
		{"unknown-kind", []byte{'Z'}, 1, 0},
		{"trailing-garbage", append(append([]byte(nil), good...), 0xff), 1, 0},
		{"object-empty-label", AppendWalObjectDef(nil, "", "register"), 1, 0},
		{"object-bad-spec", AppendWalObjectDef(nil, "x", "nosuchspec"), 1, 0},
		{"tx-bad-parent", AppendWalTxDef(nil, 5, "c1", tname.NoObj, spec.Op{}), 2, 0},
		{"tx-negative-parent", AppendWalTxDef(nil, -2, "c1", tname.NoObj, spec.Op{}), 2, 0},
		{"tx-empty-label", AppendWalTxDef(nil, tname.Root, "", tname.NoObj, spec.Op{}), 1, 0},
		{"tx-bad-obj", AppendWalTxDef(nil, tname.Root, "a1", 3, spec.Op{Kind: spec.OpRead}), 1, 1},
		{"tx-bad-op", append(AppendWalTxDef(nil, tname.Root, "a1", tname.NoObj, spec.Op{})[:0],
			func() []byte {
				b := []byte{byte(WalTxDef)}
				b = append(b, 0)      // parent varint 0
				b = append(b, 1, 'a') // label "a"
				b = append(b, 0)      // obj varint 0
				b = append(b, 0x7f)   // op kind 127 (unknown)
				b = append(b, 0)      // arg: nil kind
				return b
			}()...), 1, 1},
		{"events-bad-tx", AppendWalEvents(nil, NewEvent(Create, 9)), 2, 0},
		{"events-bad-obj", AppendWalEvents(nil, NewInform(InformCommit, 1, 4)), 2, 1},
		{"events-huge-count", []byte{byte(WalEvents), 0xff, 0xff, 0xff, 0x7f}, 1, 0},
	}
	for _, c := range cases {
		if _, err := DecodeWalOp(c.payload, c.numTx, c.numObj); err == nil {
			t.Fatalf("%s: decoded without error", c.name)
		}
	}
}
