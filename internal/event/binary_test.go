package event

import (
	"bytes"
	"encoding/binary"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"nestedsg/internal/spec"
	"nestedsg/internal/tname"
)

func TestBinaryRoundTripSeed(t *testing.T) {
	tr, b, err := ReadTrace(bytes.NewReader(seedTrace(t)))
	if err != nil {
		t.Fatalf("reading seed trace: %v", err)
	}
	bin := MarshalBinaryTrace(tr, b)
	tr2, b2, err := ReadBinaryTrace(bytes.NewReader(bin))
	if err != nil {
		t.Fatalf("decoding binary trace: %v", err)
	}
	if !b2.Equal(b) {
		t.Fatalf("behavior changed across binary round trip:\nbefore:\n%s\nafter:\n%s", b.Format(tr), b2.Format(tr2))
	}
	if tr2.NumTx() != tr.NumTx() || tr2.NumObjects() != tr.NumObjects() {
		t.Fatalf("system type changed: %d/%d tx, %d/%d objects",
			tr.NumTx(), tr2.NumTx(), tr.NumObjects(), tr2.NumObjects())
	}
	for i := 0; i < tr.NumTx(); i++ {
		id := tname.TxID(i)
		if tr.Name(id) != tr2.Name(id) {
			t.Fatalf("tx %d renamed: %s vs %s", i, tr.Name(id), tr2.Name(id))
		}
	}
	if again := MarshalBinaryTrace(tr2, b2); !bytes.Equal(again, bin) {
		t.Fatalf("binary encoding is not a fixed point")
	}
}

func TestBinaryStreamingMatchesFull(t *testing.T) {
	tr, b, err := ReadTrace(bytes.NewReader(seedTrace(t)))
	if err != nil {
		t.Fatalf("reading seed trace: %v", err)
	}
	bin := MarshalBinaryTrace(tr, b)
	d, err := NewBinaryDecoder(bytes.NewReader(bin))
	if err != nil {
		t.Fatalf("NewBinaryDecoder: %v", err)
	}
	if d.Tree().NumTx() != tr.NumTx() {
		t.Fatalf("streamed tree has %d tx, want %d", d.Tree().NumTx(), tr.NumTx())
	}
	if d.Remaining() != len(b) {
		t.Fatalf("Remaining() = %d, want %d", d.Remaining(), len(b))
	}
	var streamed Behavior
	for {
		e, err := d.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		streamed = append(streamed, e)
	}
	if !streamed.Equal(b) {
		t.Fatalf("streamed behavior differs from full decode")
	}
	if _, err := d.Next(); err != io.EOF {
		t.Fatalf("Next after EOF = %v, want io.EOF", err)
	}
}

func TestReadTraceAuto(t *testing.T) {
	jsonData := seedTrace(t)
	tr, b, err := ReadTraceAuto(bytes.NewReader(jsonData))
	if err != nil {
		t.Fatalf("auto-reading JSON: %v", err)
	}
	bin := MarshalBinaryTrace(tr, b)
	tr2, b2, err := ReadTraceAuto(bytes.NewReader(bin))
	if err != nil {
		t.Fatalf("auto-reading binary: %v", err)
	}
	if !b2.Equal(b) || tr2.NumTx() != tr.NumTx() {
		t.Fatalf("auto-dispatch decoded different traces")
	}
	if _, _, err := ReadTraceAuto(bytes.NewReader(nil)); err == nil {
		t.Fatalf("empty input accepted")
	}
}

// TestBinaryRejectsCorruption: every truncation of a valid binary trace and
// a sample of corruptions must fail with an error, never a panic or a
// silent success that changes the decoded behavior.
func TestBinaryRejectsCorruption(t *testing.T) {
	tr, b, err := ReadTrace(bytes.NewReader(seedTrace(t)))
	if err != nil {
		t.Fatalf("reading seed trace: %v", err)
	}
	bin := MarshalBinaryTrace(tr, b)

	for n := 0; n < len(bin); n++ {
		if _, _, err := ReadBinaryTrace(bytes.NewReader(bin[:n])); err == nil {
			t.Fatalf("truncation to %d bytes accepted", n)
		}
	}
	bad := append([]byte(nil), bin...)
	bad[0] = 'X'
	if _, _, err := ReadBinaryTrace(bytes.NewReader(bad)); err == nil {
		t.Fatalf("bad magic accepted")
	}
	bad = append([]byte(nil), bin...)
	bad[4] = 99 // version
	if _, _, err := ReadBinaryTrace(bytes.NewReader(bad)); err == nil {
		t.Fatalf("bad version accepted")
	}
	if _, _, err := ReadBinaryTrace(bytes.NewReader(append(bin, 0))); err == nil {
		t.Fatalf("trailing data accepted")
	}
}

// TestRegenerateBinaryFuzzCorpus rewrites the committed seed corpus for
// FuzzBinaryTraceRoundTrip when UPDATE_FUZZ_CORPUS=1; otherwise it checks
// the committed files are current.
func TestRegenerateBinaryFuzzCorpus(t *testing.T) {
	tr, b, err := ReadTrace(bytes.NewReader(seedTrace(t)))
	if err != nil {
		t.Fatalf("reading seed trace: %v", err)
	}
	seeds := map[string][]byte{
		"seed_valid":     MarshalBinaryTrace(tr, b),
		"seed_empty":     MarshalBinaryTrace(emptyTree(t), nil),
		"seed_truncated": MarshalBinaryTrace(tr, b)[:20],
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzBinaryTraceRoundTrip")
	for name, data := range seeds {
		content := "go test fuzz v1\n[]byte(" + strconv.Quote(string(data)) + ")\n"
		path := filepath.Join(dir, name)
		if os.Getenv("UPDATE_FUZZ_CORPUS") == "1" {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("seed corpus missing (run with UPDATE_FUZZ_CORPUS=1): %v", err)
		}
		if string(got) != content {
			t.Fatalf("seed corpus %s is stale (run with UPDATE_FUZZ_CORPUS=1)", name)
		}
	}
}

func emptyTree(t testing.TB) *tname.Tree {
	t.Helper()
	tr, _, err := ReadTrace(bytes.NewReader([]byte(
		`{"objects":[],"tx":[{"parent":-1,"label":"T0","obj":-1}],"events":[]}`)))
	if err != nil {
		t.Fatalf("building empty tree: %v", err)
	}
	return tr
}

// FuzzBinaryTraceRoundTrip mirrors FuzzTraceRoundTrip for the binary
// codec: any input is either rejected with an error or settles after one
// round trip — decode(data) = (tr, b) implies encode(tr, b) decodes to an
// equal trace and re-encodes byte-identically. Decoding must never panic.
func FuzzBinaryTraceRoundTrip(f *testing.F) {
	{
		tr, b, err := ReadTrace(bytes.NewReader(seedTrace(f)))
		if err != nil {
			f.Fatalf("reading seed trace: %v", err)
		}
		f.Add(MarshalBinaryTrace(tr, b))
		f.Add(MarshalBinaryTrace(tr, b)[:20])
	}
	f.Add([]byte("NSGB"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, b, err := ReadBinaryTrace(bytes.NewReader(data))
		if err != nil {
			return // rejected; all we require is no panic
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("accepted binary trace yields invalid tree: %v", err)
		}
		bin := MarshalBinaryTrace(tr, b)
		tr2, b2, err := ReadBinaryTrace(bytes.NewReader(bin))
		if err != nil {
			t.Fatalf("reparsing re-encoded trace: %v", err)
		}
		if !b2.Equal(b) {
			t.Fatalf("behavior changed across binary round trip")
		}
		if tr2.NumTx() != tr.NumTx() || tr2.NumObjects() != tr.NumObjects() {
			t.Fatalf("system type changed across binary round trip")
		}
		if again := MarshalBinaryTrace(tr2, b2); !bytes.Equal(again, bin) {
			t.Fatalf("binary encoding is not a fixed point")
		}
		// Cross-codec agreement: the JSON rendering of a binary-decoded
		// trace must decode to the same behavior.
		var jbuf bytes.Buffer
		if err := WriteTrace(&jbuf, tr, b); err != nil {
			t.Fatalf("JSON-rendering binary-decoded trace: %v", err)
		}
		_, b3, err := ReadTrace(&jbuf)
		if err != nil {
			t.Fatalf("JSON round trip of binary-decoded trace: %v", err)
		}
		if !b3.Equal(b) {
			t.Fatalf("JSON and binary codecs disagree")
		}
	})
}

// TestCutPrimitivesMatchReaders: the slice-cutting decoders must accept
// exactly what the Append* encoders produce and agree with the
// reader-based decoders on every value kind, then report the exact
// remainder so a caller can chain cuts through a frame.
func TestCutPrimitivesMatchReaders(t *testing.T) {
	values := []spec.Value{
		spec.Nil, spec.OK, spec.Int(0), spec.Int(-1), spec.Int(1 << 40),
		spec.Bool(true), spec.Bool(false), spec.Str(""), spec.Str("payload"),
	}
	for _, v := range values {
		buf := AppendValue(nil, v)
		buf = append(buf, 0xEE) // sentinel remainder
		got, rest, err := CutValue(buf, "test")
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		if got != v {
			t.Fatalf("CutValue round trip: got %v want %v", got, v)
		}
		if len(rest) != 1 || rest[0] != 0xEE {
			t.Fatalf("%v: remainder %v, want the sentinel", v, rest)
		}
	}
	for _, s := range []string{"", "x", "a longer string value"} {
		buf := append(AppendString(nil, s), 0xEE)
		got, rest, err := CutString(buf, "test")
		if err != nil {
			t.Fatalf("%q: %v", s, err)
		}
		if got != s || len(rest) != 1 {
			t.Fatalf("CutString round trip: got %q rest %v", got, rest)
		}
	}
	for _, n := range []uint64{0, 1, 127, 128, 1 << 60} {
		buf := append(binary.AppendUvarint(nil, n), 0xEE)
		got, rest, err := CutUvarint(buf, "test")
		if err != nil {
			t.Fatalf("%d: %v", n, err)
		}
		if got != n || len(rest) != 1 {
			t.Fatalf("CutUvarint round trip: got %d rest %v", got, rest)
		}
	}
}

// TestCutPrimitivesRejectJunk: truncations and forged prefixes must fail
// with an error, never panic or return garbage.
func TestCutPrimitivesRejectJunk(t *testing.T) {
	if _, _, err := CutUvarint(nil, "t"); err == nil {
		t.Error("empty uvarint accepted")
	}
	if _, _, err := CutUvarint([]byte{0x80}, "t"); err == nil {
		t.Error("truncated uvarint accepted")
	}
	if _, _, err := CutString(binary.AppendUvarint(nil, 5), "t"); err == nil {
		t.Error("string with truncated payload accepted")
	}
	if _, _, err := CutString(binary.AppendUvarint(nil, maxBinaryStr+1), "t"); err == nil {
		t.Error("forged oversized string length accepted")
	}
	if _, _, err := CutValue(nil, "t"); err == nil {
		t.Error("empty value accepted")
	}
	if _, _, err := CutValue([]byte{200}, "t"); err == nil {
		t.Error("unknown value kind accepted")
	}
	if _, _, err := CutValue([]byte{byte(spec.VInt)}, "t"); err == nil {
		t.Error("int value with no payload accepted")
	}
	if _, _, err := CutValue(AppendValue(nil, spec.Str("xy"))[:2], "t"); err == nil {
		t.Error("str value with truncated payload accepted")
	}
}

// TestCutScalarValueAllocs: scalar values must cut without allocating —
// the property that keeps ACCESS responses off the allocator.
func TestCutScalarValueAllocs(t *testing.T) {
	buf := AppendValue(nil, spec.Int(42))
	if allocs := testing.AllocsPerRun(100, func() {
		if v, _, err := CutValue(buf, "t"); err != nil || v != spec.Int(42) {
			t.Fatalf("cut: %v, %v", v, err)
		}
	}); allocs != 0 {
		t.Fatalf("CutValue(int) allocates %.1f times, want 0", allocs)
	}
}
