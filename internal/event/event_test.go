package event

import (
	"testing"

	"nestedsg/internal/spec"
	"nestedsg/internal/tname"
)

// fixture builds a two-level system and a hand-written behavior:
//
//	T0 requests t1 and t2; t1 has accesses w (write x=5) and r (read x);
//	t2 aborts before creation.
func fixture(t *testing.T) (*tname.Tree, map[string]tname.TxID, Behavior) {
	t.Helper()
	tr := tname.NewTree()
	x := tr.AddObject("x", spec.Register{})
	t1 := tr.Child(tname.Root, "t1")
	t2 := tr.Child(tname.Root, "t2")
	w := tr.Access(t1, "w", x, spec.Op{Kind: spec.OpWrite, Arg: spec.Int(5)})
	r := tr.Access(t1, "r", x, spec.Op{Kind: spec.OpRead})
	ids := map[string]tname.TxID{"t1": t1, "t2": t2, "w": w, "r": r}

	b := Behavior{
		NewEvent(Create, tname.Root),
		NewEvent(RequestCreate, t1),
		NewEvent(RequestCreate, t2),
		NewEvent(Create, t1),
		NewEvent(Abort, t2),
		NewEvent(RequestCreate, w),
		NewEvent(Create, w),
		NewValEvent(RequestCommit, w, spec.OK),
		NewEvent(Commit, w),
		NewInform(InformCommit, w, x),
		NewValEvent(ReportCommit, w, spec.OK),
		NewEvent(RequestCreate, r),
		NewEvent(Create, r),
		NewValEvent(RequestCommit, r, spec.Int(5)),
		NewEvent(Commit, r),
		NewValEvent(ReportCommit, r, spec.Int(5)),
		NewValEvent(RequestCommit, t1, spec.Nil),
		NewEvent(Commit, t1),
		NewValEvent(ReportCommit, t1, spec.Nil),
		NewEvent(ReportAbort, t2),
	}
	return tr, ids, b
}

func TestKindClassification(t *testing.T) {
	serialKinds := []Kind{Create, RequestCreate, RequestCommit, Commit, Abort, ReportCommit, ReportAbort}
	for _, k := range serialKinds {
		if !k.IsSerial() {
			t.Errorf("%v must be serial", k)
		}
	}
	for _, k := range []Kind{InformCommit, InformAbort, KindInvalid} {
		if k.IsSerial() {
			t.Errorf("%v must not be serial", k)
		}
	}
	if !Commit.IsCompletion() || !Abort.IsCompletion() || Create.IsCompletion() {
		t.Error("completion classification wrong")
	}
	if !ReportCommit.IsReport() || !ReportAbort.IsReport() || Commit.IsReport() {
		t.Error("report classification wrong")
	}
}

func TestKindString(t *testing.T) {
	if Create.String() != "CREATE" || RequestCommit.String() != "REQUEST_COMMIT" {
		t.Error("kind names wrong")
	}
	if Kind(99).String() == "" {
		t.Error("unknown kind must render something")
	}
}

func TestTransactionFunctions(t *testing.T) {
	tr, ids, _ := fixture(t)
	cases := []struct {
		e          Event
		tx, hi, lo tname.TxID
	}{
		{NewEvent(Create, ids["t1"]), ids["t1"], ids["t1"], ids["t1"]},
		{NewEvent(RequestCreate, ids["t1"]), tname.Root, tname.Root, tname.Root},
		{NewValEvent(RequestCommit, ids["t1"], spec.Nil), ids["t1"], ids["t1"], ids["t1"]},
		{NewValEvent(ReportCommit, ids["w"], spec.OK), ids["t1"], ids["t1"], ids["t1"]},
		{NewEvent(ReportAbort, ids["t2"]), tname.Root, tname.Root, tname.Root},
		// Completion actions: hightransaction is the parent, lowtransaction
		// the transaction itself.
		{NewEvent(Commit, ids["t1"]), ids["t1"], tname.Root, ids["t1"]},
		{NewEvent(Abort, ids["t2"]), ids["t2"], tname.Root, ids["t2"]},
	}
	for i, c := range cases {
		if got := c.e.Transaction(tr); got != c.tx {
			t.Errorf("case %d: Transaction = %s, want %s", i, tr.Name(got), tr.Name(c.tx))
		}
		if got := c.e.HighTransaction(tr); got != c.hi {
			t.Errorf("case %d: HighTransaction = %s, want %s", i, tr.Name(got), tr.Name(c.hi))
		}
		if got := c.e.LowTransaction(tr); got != c.lo {
			t.Errorf("case %d: LowTransaction = %s, want %s", i, tr.Name(got), tr.Name(c.lo))
		}
	}
}

func TestObjectFunction(t *testing.T) {
	tr, ids, _ := fixture(t)
	x := tr.Object("x")
	if got := NewEvent(Create, ids["w"]).Object(tr); got != x {
		t.Errorf("Object(CREATE(w)) = %d", got)
	}
	if got := NewValEvent(RequestCommit, ids["w"], spec.OK).Object(tr); got != x {
		t.Errorf("Object(REQUEST_COMMIT(w)) = %d", got)
	}
	if got := NewEvent(Commit, ids["w"]).Object(tr); got != tname.NoObj {
		t.Error("completion events have no object")
	}
	if got := NewEvent(Create, ids["t1"]).Object(tr); got != tname.NoObj {
		t.Error("non-access CREATE has no object")
	}
}

func TestSerialProjection(t *testing.T) {
	_, _, b := fixture(t)
	s := b.Serial()
	if len(s) != len(b)-1 { // exactly one inform in the fixture
		t.Errorf("serial(β) has %d events, want %d", len(s), len(b)-1)
	}
	for _, e := range s {
		if !e.Kind.IsSerial() {
			t.Errorf("serial(β) contains %v", e.Kind)
		}
	}
}

func TestProjectTx(t *testing.T) {
	tr, ids, b := fixture(t)
	b0 := b.ProjectTx(tr, tname.Root)
	wantKinds := []Kind{Create, RequestCreate, RequestCreate, ReportCommit, ReportAbort}
	if len(b0) != len(wantKinds) {
		t.Fatalf("β|T0 = %d events, want %d:\n%s", len(b0), len(wantKinds), b0.Format(tr))
	}
	for i, k := range wantKinds {
		if b0[i].Kind != k {
			t.Errorf("β|T0[%d] = %v, want %v", i, b0[i].Kind, k)
		}
	}
	b1 := b.ProjectTx(tr, ids["t1"])
	// CREATE(t1), RC(w), REPORT(w), RC(r), REPORT(r), REQUEST_COMMIT(t1).
	if len(b1) != 6 {
		t.Fatalf("β|t1 = %d events:\n%s", len(b1), b1.Format(tr))
	}
}

func TestProjectObj(t *testing.T) {
	tr, _, b := fixture(t)
	x := tr.Object("x")
	bx := b.ProjectObj(tr, x)
	// CREATE(w), REQUEST_COMMIT(w), CREATE(r), REQUEST_COMMIT(r).
	if len(bx) != 4 {
		t.Fatalf("β|x = %d events:\n%s", len(bx), bx.Format(tr))
	}
}

func TestCommitAbortSets(t *testing.T) {
	tr, ids, b := fixture(t)
	cs := b.CommitSet()
	if !cs[ids["t1"]] || !cs[ids["w"]] || cs[ids["t2"]] {
		t.Error("commit set wrong")
	}
	as := b.AbortSet()
	if !as[ids["t2"]] || as[ids["t1"]] {
		t.Error("abort set wrong")
	}
	_ = tr
}

func TestOrphanAndLive(t *testing.T) {
	tr, ids, b := fixture(t)
	aborted := b.AbortSet()
	if !IsOrphan(tr, aborted, ids["t2"]) {
		t.Error("t2 is an orphan")
	}
	if IsOrphan(tr, aborted, ids["t1"]) || IsOrphan(tr, aborted, ids["r"]) {
		t.Error("t1 subtree is not orphaned")
	}
	if b.IsLive(ids["t1"]) {
		t.Error("t1 completed, not live")
	}
	half := b[:7] // through CREATE(w)
	if !half.IsLive(ids["t1"]) || !half.IsLive(ids["w"]) {
		t.Error("t1 and w are live mid-trace")
	}
	if half.IsLive(ids["t2"]) {
		t.Error("t2 was never created")
	}
}

func TestOperations(t *testing.T) {
	tr, ids, b := fixture(t)
	ops := b.Operations(tr)
	if len(ops) != 2 {
		t.Fatalf("got %d operations", len(ops))
	}
	if ops[0].Tx != ids["w"] || ops[0].OV.Val != spec.OK {
		t.Errorf("op 0 = %+v", ops[0])
	}
	if ops[1].Tx != ids["r"] || ops[1].OV.Val != spec.Int(5) {
		t.Errorf("op 1 = %+v", ops[1])
	}
}

func TestBehaviorEqual(t *testing.T) {
	_, _, b := fixture(t)
	c := make(Behavior, len(b))
	copy(c, b)
	if !b.Equal(c) {
		t.Error("copies must be equal")
	}
	c[3].Tx++
	if b.Equal(c) {
		t.Error("modified copy must differ")
	}
	if b.Equal(b[:len(b)-1]) {
		t.Error("prefixes must differ")
	}
}

func TestEventFormat(t *testing.T) {
	tr, ids, _ := fixture(t)
	x := tr.Object("x")
	if got := NewValEvent(RequestCommit, ids["r"], spec.Int(5)).Format(tr); got != "REQUEST_COMMIT(T0/t1/r[x read], 5)" {
		t.Errorf("format = %q", got)
	}
	if got := NewInform(InformAbort, ids["t2"], x).Format(tr); got != "INFORM_ABORT_AT(x)OF(T0/t2)" {
		t.Errorf("format = %q", got)
	}
}

func TestTraceRoundTrip(t *testing.T) {
	tr, _, b := fixture(t)
	enc := EncodeTrace(tr, b)
	tr2, b2, err := DecodeTrace(enc)
	if err != nil {
		t.Fatal(err)
	}
	if tr2.NumTx() != tr.NumTx() || tr2.NumObjects() != tr.NumObjects() {
		t.Fatal("tree shape changed in round trip")
	}
	if !b.Equal(b2) {
		t.Fatalf("behavior changed in round trip:\nwant\n%s\ngot\n%s", b.Format(tr), b2.Format(tr2))
	}
	for id := tname.TxID(0); int(id) < tr.NumTx(); id++ {
		if tr.Name(id) != tr2.Name(id) {
			t.Fatalf("name %d changed: %s vs %s", id, tr.Name(id), tr2.Name(id))
		}
	}
}

func TestTraceRejectsGarbage(t *testing.T) {
	tr, _, b := fixture(t)
	enc := EncodeTrace(tr, b)
	enc.Events[0].Kind = "NOPE"
	if _, _, err := DecodeTrace(enc); err == nil {
		t.Error("unknown event kind must fail")
	}
	enc = EncodeTrace(tr, b)
	enc.Events[0].Tx = 999
	if _, _, err := DecodeTrace(enc); err == nil {
		t.Error("out-of-range tx must fail")
	}
	enc = EncodeTrace(tr, b)
	enc.Objects[0].Spec = "martian"
	if _, _, err := DecodeTrace(enc); err == nil {
		t.Error("unknown spec must fail")
	}
	enc = EncodeTrace(tr, b)
	enc.Tx[1].Parent = 42
	if _, _, err := DecodeTrace(enc); err == nil {
		t.Error("bad parent must fail")
	}
}
