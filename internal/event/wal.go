// WAL record codec: the payloads of the server's write-ahead log.
//
// The server's durable log (internal/server) is a sequence of framed
// records; each record payload is encoded here with the same NSGB
// primitives as the binary trace codec (binary.go), so values, labels and
// events have exactly one wire form in the repo. Three record kinds exist:
//
//	WalObjectDef  'O' | label str | spec-name str
//	WalTxDef      'T' | parent svarint | label str | obj svarint
//	              [| op uvarint | arg value]          (obj >= 0 only)
//	WalEvents     'E' | count uvarint | count × event
//
// where an event is encoded as in the binary trace event section: kind
// byte, tx uvarint, then a value for REQUEST_COMMIT/REPORT_COMMIT or an
// object uvarint for informs. Definitions are written before first use and
// IDs are implicit: the i'th WalObjectDef defines ObjID i, the i'th
// WalTxDef defines TxID i+1 (TxID 0 is the pre-existing root T0), exactly
// mirroring the tname interner's sequential assignment. DecodeWalOp
// therefore validates every reference against the running (numTx,
// numObjects) counts the caller maintains, so a torn or corrupted record
// is rejected instead of panicking downstream in the interner.
package event

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"

	"nestedsg/internal/spec"
	"nestedsg/internal/tname"
)

// WalKind tags a WAL record payload.
type WalKind uint8

const (
	// WalObjectDef defines the next object (sequential ObjID).
	WalObjectDef WalKind = 'O'
	// WalTxDef defines the next transaction (sequential TxID after Root).
	WalTxDef WalKind = 'T'
	// WalEvents carries one atomic batch of log events: every multi-event
	// append the server makes (e.g. REQUEST_CREATE+CREATE) is one record,
	// so recovery never sees half of an atomic batch.
	WalEvents WalKind = 'E'
)

// WalOp is one decoded WAL record payload.
type WalOp struct {
	Kind WalKind

	// Label and SpecName describe a WalObjectDef; Label also names a
	// WalTxDef.
	Label    string
	SpecName string

	// Parent, Obj and Op describe a WalTxDef. Obj is NoObj for a plain
	// subtransaction.
	Parent tname.TxID
	Obj    tname.ObjID
	Op     spec.Op

	// Events carries a WalEvents batch.
	Events Behavior
}

// AppendWalObjectDef appends an object-definition payload to buf.
//
//sgvet:hotpath
func AppendWalObjectDef(buf []byte, label, specName string) []byte {
	buf = append(buf, byte(WalObjectDef))
	buf = appendStr(buf, label)
	return appendStr(buf, specName)
}

// AppendWalTxDef appends a transaction-definition payload to buf. For an
// access, obj names the accessed object and op its operation; for a plain
// subtransaction obj must be tname.NoObj (op is ignored).
//
//sgvet:hotpath
func AppendWalTxDef(buf []byte, parent tname.TxID, label string, obj tname.ObjID, op spec.Op) []byte {
	buf = append(buf, byte(WalTxDef))
	buf = binary.AppendVarint(buf, int64(parent))
	buf = appendStr(buf, label)
	buf = binary.AppendVarint(buf, int64(obj))
	if obj != tname.NoObj {
		buf = binary.AppendUvarint(buf, uint64(op.Kind))
		buf = appendValue(buf, op.Arg)
	}
	return buf
}

// AppendWalEvents appends an event-batch payload to buf.
//
//sgvet:hotpath
func AppendWalEvents(buf []byte, evs ...Event) []byte {
	buf = append(buf, byte(WalEvents))
	buf = binary.AppendUvarint(buf, uint64(len(evs)))
	for _, e := range evs {
		buf = append(buf, byte(e.Kind))
		buf = binary.AppendUvarint(buf, uint64(e.Tx))
		switch e.Kind {
		case RequestCommit, ReportCommit:
			buf = appendValue(buf, e.Val)
		case InformCommit, InformAbort:
			buf = binary.AppendUvarint(buf, uint64(e.Obj))
		default:
			// Every other kind is fully described by (kind, tx).
		}
	}
	return buf
}

// DecodeWalOp decodes one record payload, validating every transaction and
// object reference against the caller's running counts (numTx includes the
// root). It never panics on malformed input: any violation — short
// payload, trailing bytes, out-of-range reference, unknown kind — is an
// error.
func DecodeWalOp(payload []byte, numTx, numObjects int) (WalOp, error) {
	br := binReader{r: bufio.NewReader(bytes.NewReader(payload))}
	kb, err := br.readByte("wal record kind")
	if err != nil {
		return WalOp{}, err
	}
	op := WalOp{Kind: WalKind(kb), Obj: tname.NoObj}
	switch op.Kind {
	case WalObjectDef:
		if op.Label, err = br.readStr("wal object label"); err != nil {
			return WalOp{}, err
		}
		if op.SpecName, err = br.readStr("wal object spec"); err != nil {
			return WalOp{}, err
		}
		if op.Label == "" {
			return WalOp{}, fmt.Errorf("wal: object definition with empty label")
		}
		if spec.ByName(op.SpecName) == nil {
			return WalOp{}, fmt.Errorf("wal: object %q has unknown spec %q", op.Label, op.SpecName)
		}
	case WalTxDef:
		parent, err := br.readVarint("wal tx parent")
		if err != nil {
			return WalOp{}, err
		}
		if parent < 0 || parent >= int64(numTx) {
			return WalOp{}, fmt.Errorf("wal: tx definition names unknown parent %d", parent)
		}
		op.Parent = tname.TxID(parent)
		if op.Label, err = br.readStr("wal tx label"); err != nil {
			return WalOp{}, err
		}
		if op.Label == "" {
			return WalOp{}, fmt.Errorf("wal: tx definition with empty label")
		}
		obj, err := br.readVarint("wal tx obj")
		if err != nil {
			return WalOp{}, err
		}
		if obj != int64(tname.NoObj) {
			if obj < 0 || obj >= int64(numObjects) {
				return WalOp{}, fmt.Errorf("wal: tx definition accesses unknown object %d", obj)
			}
			op.Obj = tname.ObjID(obj)
			opk, err := br.readUvarint("wal tx op")
			if err != nil {
				return WalOp{}, err
			}
			if opk == 0 || spec.OpKind(opk) > spec.OpDeq {
				return WalOp{}, fmt.Errorf("wal: tx definition has unknown op kind %d", opk)
			}
			op.Op.Kind = spec.OpKind(opk)
			tv, err := br.readValue("wal tx op arg")
			if err != nil {
				return WalOp{}, err
			}
			if op.Op.Arg, err = decodeValue(tv); err != nil {
				return WalOp{}, err
			}
		}
	case WalEvents:
		count, err := br.readUvarint("wal event count")
		if err != nil {
			return WalOp{}, err
		}
		// Every encoded event takes at least two bytes, so a count larger
		// than the payload is corrupt; the bound also caps the allocation.
		if count > uint64(len(payload)) {
			return WalOp{}, fmt.Errorf("wal: event count %d exceeds payload size", count)
		}
		op.Events = make(Behavior, 0, count)
		for i := uint64(0); i < count; i++ {
			e, err := decodeWalEvent(br, numTx, numObjects)
			if err != nil {
				return WalOp{}, err
			}
			op.Events = append(op.Events, e)
		}
	default:
		return WalOp{}, fmt.Errorf("wal: unknown record kind %d", kb)
	}
	if _, err := br.r.ReadByte(); err != io.EOF {
		return WalOp{}, fmt.Errorf("wal: trailing bytes after %c record", byte(op.Kind))
	}
	return op, nil
}

func decodeWalEvent(br binReader, numTx, numObjects int) (Event, error) {
	kb, err := br.readByte("wal event kind")
	if err != nil {
		return Event{}, err
	}
	kind := Kind(kb)
	if kind < Create || kind > InformAbort {
		return Event{}, fmt.Errorf("wal: unknown event kind %d", kb)
	}
	txu, err := br.readUvarint("wal event tx")
	if err != nil {
		return Event{}, err
	}
	if txu >= uint64(numTx) {
		return Event{}, fmt.Errorf("wal: event names unknown tx %d", txu)
	}
	e := Event{Kind: kind, Tx: tname.TxID(txu), Val: spec.Nil, Obj: tname.NoObj}
	switch kind {
	case RequestCommit, ReportCommit:
		tv, err := br.readValue("wal event val")
		if err != nil {
			return Event{}, err
		}
		if e.Val, err = decodeValue(tv); err != nil {
			return Event{}, err
		}
	case InformCommit, InformAbort:
		obju, err := br.readUvarint("wal event obj")
		if err != nil {
			return Event{}, err
		}
		if obju >= uint64(numObjects) {
			return Event{}, fmt.Errorf("wal: event informs unknown object %d", obju)
		}
		e.Obj = tname.ObjID(obju)
	default:
		// Fully described by (kind, tx).
	}
	return e, nil
}
