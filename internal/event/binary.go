package event

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"

	"nestedsg/internal/spec"
	"nestedsg/internal/tname"
)

// Binary trace format (version 1).
//
// The binary codec is a compact, streamable alternative to the JSON Trace:
//
//	magic   "NSGB" (4 bytes)
//	version uvarint (currently 1)
//	objects uvarint count, then per object: label str, spec str
//	tx      uvarint count, then per entry (entry 0 is T0):
//	          parent svarint, label str, obj svarint (-1 for non-access);
//	          if obj >= 0: op-kind uvarint, arg value
//	events  uvarint count, then per event: kind byte, tx uvarint;
//	          REQUEST_COMMIT / REPORT_COMMIT carry a value;
//	          INFORM_COMMIT / INFORM_ABORT carry obj uvarint
//
// where str is a uvarint length followed by raw bytes, and value is a
// spec.ValueKind byte followed by an svarint (int, bool) or str (str)
// payload. The header is identical in content to the JSON Trace header, so
// decoding rebuilds a Trace and reuses DecodeTrace for validation; the
// event section can additionally be consumed one event at a time through
// BinaryDecoder without materializing a Behavior.

// binaryMagic identifies a binary trace stream.
var binaryMagic = [4]byte{'N', 'S', 'G', 'B'}

// binaryVersion is the current format version.
const binaryVersion = 1

// maxBinaryStr bounds decoded string lengths so corrupt or adversarial
// length prefixes fail fast instead of allocating gigabytes.
const maxBinaryStr = 1 << 20

func appendStr(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func appendValue(buf []byte, v spec.Value) []byte {
	buf = append(buf, byte(v.Kind))
	switch v.Kind {
	case spec.VInt, spec.VBool:
		buf = binary.AppendVarint(buf, v.Int)
	case spec.VStr:
		buf = appendStr(buf, v.Str)
	default:
		// VNil and VOK carry no payload beyond the kind byte.
	}
	return buf
}

// MarshalBinaryTrace encodes the tree and behavior in the binary format.
func MarshalBinaryTrace(tr *tname.Tree, b Behavior) []byte {
	buf := append([]byte(nil), binaryMagic[:]...)
	buf = binary.AppendUvarint(buf, binaryVersion)

	buf = binary.AppendUvarint(buf, uint64(tr.NumObjects()))
	for x := tname.ObjID(0); int(x) < tr.NumObjects(); x++ {
		buf = appendStr(buf, tr.ObjectLabel(x))
		buf = appendStr(buf, tr.Spec(x).Name())
	}

	buf = binary.AppendUvarint(buf, uint64(tr.NumTx()))
	for id := tname.TxID(0); int(id) < tr.NumTx(); id++ {
		buf = binary.AppendVarint(buf, int64(tr.Parent(id)))
		buf = appendStr(buf, tr.Label(id))
		if !tr.IsAccess(id) {
			buf = binary.AppendVarint(buf, int64(tname.NoObj))
			continue
		}
		op := tr.AccessOp(id)
		buf = binary.AppendVarint(buf, int64(tr.AccessObject(id)))
		buf = binary.AppendUvarint(buf, uint64(op.Kind))
		buf = appendValue(buf, op.Arg)
	}

	buf = binary.AppendUvarint(buf, uint64(len(b)))
	for _, e := range b {
		buf = append(buf, byte(e.Kind))
		buf = binary.AppendUvarint(buf, uint64(e.Tx))
		switch e.Kind {
		case RequestCommit, ReportCommit:
			buf = appendValue(buf, e.Val)
		case InformCommit, InformAbort:
			buf = binary.AppendUvarint(buf, uint64(e.Obj))
		default:
			// Every other kind is fully described by (kind, tx).
		}
	}
	return buf
}

// WriteBinaryTrace writes the behavior in the binary trace format.
func WriteBinaryTrace(w io.Writer, tr *tname.Tree, b Behavior) error {
	_, err := w.Write(MarshalBinaryTrace(tr, b))
	return err
}

// binReader wraps the byte-oriented reads the decoder needs, turning any
// short read into a decode error.
type binReader struct {
	r *bufio.Reader
}

func (br binReader) readStr(what string) (string, error) {
	n, err := binary.ReadUvarint(br.r)
	if err != nil {
		return "", fmt.Errorf("trace: binary: %s length: %w", what, err)
	}
	if n > maxBinaryStr {
		return "", fmt.Errorf("trace: binary: %s length %d exceeds limit", what, n)
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(br.r, b); err != nil {
		return "", fmt.Errorf("trace: binary: %s: %w", what, err)
	}
	return string(b), nil
}

func (br binReader) readUvarint(what string) (uint64, error) {
	n, err := binary.ReadUvarint(br.r)
	if err != nil {
		return 0, fmt.Errorf("trace: binary: %s: %w", what, err)
	}
	return n, nil
}

func (br binReader) readVarint(what string) (int64, error) {
	n, err := binary.ReadVarint(br.r)
	if err != nil {
		return 0, fmt.Errorf("trace: binary: %s: %w", what, err)
	}
	return n, nil
}

func (br binReader) readByte(what string) (byte, error) {
	b, err := br.r.ReadByte()
	if err != nil {
		return 0, fmt.Errorf("trace: binary: %s: %w", what, err)
	}
	return b, nil
}

// readValue decodes a value payload into its JSON-trace form so that the
// shared decodeValue path rebuilds the spec.Value through the constructors.
func (br binReader) readValue(what string) (*TraceValue, error) {
	kb, err := br.readByte(what + " kind")
	if err != nil {
		return nil, err
	}
	name, ok := valueKindNames[spec.ValueKind(kb)]
	if !ok {
		return nil, fmt.Errorf("trace: binary: %s has unknown value kind %d", what, kb)
	}
	tv := &TraceValue{Kind: name}
	switch spec.ValueKind(kb) {
	case spec.VInt, spec.VBool:
		tv.Int, err = br.readVarint(what + " int")
	case spec.VStr:
		tv.Str, err = br.readStr(what + " str")
	default:
		// VNil and VOK carry no payload beyond the kind byte.
	}
	if err != nil {
		return nil, err
	}
	return tv, nil
}

// readHeader decodes the object and transaction tables into a Trace header
// and validates them through DecodeTrace (with no events), returning the
// interned tree.
func (br binReader) readHeader() (*tname.Tree, error) {
	var magic [4]byte
	if _, err := io.ReadFull(br.r, magic[:]); err != nil {
		return nil, fmt.Errorf("trace: binary: magic: %w", err)
	}
	if magic != binaryMagic {
		return nil, fmt.Errorf("trace: binary: bad magic %q", magic[:])
	}
	ver, err := br.readUvarint("version")
	if err != nil {
		return nil, err
	}
	if ver != binaryVersion {
		return nil, fmt.Errorf("trace: binary: unsupported version %d", ver)
	}

	var t Trace
	nObj, err := br.readUvarint("object count")
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < nObj; i++ {
		var to TraceObject
		if to.Label, err = br.readStr("object label"); err != nil {
			return nil, err
		}
		if to.Spec, err = br.readStr("object spec"); err != nil {
			return nil, err
		}
		t.Objects = append(t.Objects, to)
	}

	nTx, err := br.readUvarint("tx count")
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < nTx; i++ {
		var tt TraceTx
		parent, err := br.readVarint("tx parent")
		if err != nil {
			return nil, err
		}
		tt.Parent = int32(parent)
		if tt.Label, err = br.readStr("tx label"); err != nil {
			return nil, err
		}
		obj, err := br.readVarint("tx obj")
		if err != nil {
			return nil, err
		}
		tt.Obj = int32(obj)
		if obj >= 0 {
			opk, err := br.readUvarint("tx op")
			if err != nil {
				return nil, err
			}
			if opk == 0 || spec.OpKind(opk) > spec.OpDeq {
				return nil, fmt.Errorf("trace: binary: tx %d has unknown op kind %d", i, opk)
			}
			tt.Op = spec.OpKind(opk).String()
			arg, err := br.readValue("tx op arg")
			if err != nil {
				return nil, err
			}
			if arg.Kind != "nil" {
				tt.OpArg = arg
			}
		}
		t.Tx = append(t.Tx, tt)
	}

	tr, _, err := DecodeTrace(&t)
	return tr, err
}

// BinaryDecoder decodes a binary trace incrementally: the header (system
// type) is read eagerly by NewBinaryDecoder, then Next yields one validated
// event at a time, so arbitrarily long behaviors can feed an incremental
// checker without ever materializing a full Behavior.
type BinaryDecoder struct {
	br   binReader
	tr   *tname.Tree
	left uint64
	err  error
}

// NewBinaryDecoder reads the header from r and prepares to stream events.
func NewBinaryDecoder(r io.Reader) (*BinaryDecoder, error) {
	br := binReader{r: bufio.NewReader(r)}
	tr, err := br.readHeader()
	if err != nil {
		return nil, err
	}
	n, err := br.readUvarint("event count")
	if err != nil {
		return nil, err
	}
	return &BinaryDecoder{br: br, tr: tr, left: n}, nil
}

// Tree returns the system type decoded from the header.
func (d *BinaryDecoder) Tree() *tname.Tree { return d.tr }

// Remaining reports how many events have not yet been decoded.
func (d *BinaryDecoder) Remaining() int { return int(d.left) }

// Next decodes and validates the next event. It returns io.EOF after the
// last event; any other error is sticky.
func (d *BinaryDecoder) Next() (Event, error) {
	if d.err != nil {
		return Event{}, d.err
	}
	if d.left == 0 {
		d.err = io.EOF
		return Event{}, io.EOF
	}
	e, err := d.next()
	if err != nil {
		d.err = err
		return Event{}, err
	}
	d.left--
	return e, nil
}

func (d *BinaryDecoder) next() (Event, error) {
	kb, err := d.br.readByte("event kind")
	if err != nil {
		return Event{}, err
	}
	kind := Kind(kb)
	if kind < Create || kind > InformAbort {
		return Event{}, fmt.Errorf("trace: binary: unknown event kind %d", kb)
	}
	txu, err := d.br.readUvarint("event tx")
	if err != nil {
		return Event{}, err
	}
	if txu >= uint64(d.tr.NumTx()) {
		return Event{}, fmt.Errorf("trace: binary: event names unknown tx %d", txu)
	}
	e := Event{Kind: kind, Tx: tname.TxID(txu), Val: spec.Nil, Obj: tname.NoObj}
	switch kind {
	case RequestCommit, ReportCommit:
		tv, err := d.br.readValue("event val")
		if err != nil {
			return Event{}, err
		}
		if e.Val, err = decodeValue(tv); err != nil {
			return Event{}, err
		}
	case InformCommit, InformAbort:
		obju, err := d.br.readUvarint("event obj")
		if err != nil {
			return Event{}, err
		}
		if obju >= uint64(d.tr.NumObjects()) {
			return Event{}, fmt.Errorf("trace: binary: event informs unknown object %d", obju)
		}
		e.Obj = tname.ObjID(obju)
	default:
		// Every other kind is fully described by (kind, tx); the kind
		// range was checked above.
	}
	return e, nil
}

// ReadBinaryTrace parses a binary trace in full. It is the same code path
// as streaming through BinaryDecoder, so the two cannot disagree on
// validity.
func ReadBinaryTrace(r io.Reader) (*tname.Tree, Behavior, error) {
	d, err := NewBinaryDecoder(r)
	if err != nil {
		return nil, nil, err
	}
	var b Behavior
	for {
		e, err := d.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, nil, err
		}
		b = append(b, e)
	}
	// Trailing garbage after the declared event count is a malformed trace,
	// not silent success.
	if _, err := d.br.r.ReadByte(); err != io.EOF {
		return nil, nil, fmt.Errorf("trace: binary: trailing data after events")
	}
	return d.tr, b, nil
}

// The exported Append/Read helpers below expose the NSGB wire primitives
// (uvarint-length-prefixed strings and kind-tagged values) to other framed
// protocols in this module — internal/wire speaks them verbatim — so the
// module has exactly one binary encoding of strings and spec.Values.

// AppendString appends a uvarint-length-prefixed string.
func AppendString(buf []byte, s string) []byte { return appendStr(buf, s) }

// AppendValue appends a kind-tagged value in the NSGB value encoding.
func AppendValue(buf []byte, v spec.Value) []byte { return appendValue(buf, v) }

// ReadString decodes a uvarint-length-prefixed string; what names the field
// in decode errors.
func ReadString(r *bufio.Reader, what string) (string, error) {
	return binReader{r: r}.readStr(what)
}

// CutUvarint decodes a uvarint from the front of b and returns the rest.
func CutUvarint(b []byte, what string) (uint64, []byte, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, nil, fmt.Errorf("wire: %s: truncated uvarint", what)
	}
	return v, b[n:], nil
}

// CutBytes decodes a uvarint-length-prefixed byte string from the front of
// b, returning the payload as a sub-slice of b (no copy) and the rest. The
// sub-slice aliases b and is only valid while b is.
func CutBytes(b []byte, what string) ([]byte, []byte, error) {
	n, rest, err := CutUvarint(b, what+" length")
	if err != nil {
		return nil, nil, err
	}
	if n > maxBinaryStr {
		return nil, nil, fmt.Errorf("wire: %s length %d exceeds limit", what, n)
	}
	if uint64(len(rest)) < n {
		return nil, nil, fmt.Errorf("wire: %s: truncated payload", what)
	}
	return rest[:n], rest[n:], nil
}

// CutString decodes a uvarint-length-prefixed string from the front of b and
// returns the rest. The string is copied out of b (strings are immutable),
// so it is the one unavoidable allocation of a string-carrying frame.
func CutString(b []byte, what string) (string, []byte, error) {
	v, rest, err := CutBytes(b, what)
	if err != nil {
		return "", nil, err
	}
	return string(v), rest, nil
}

// CutValue decodes a kind-tagged value in the NSGB value encoding from the
// front of b and returns the rest. Like ReadValue it rebuilds the payload
// through the spec constructors, but it reads the byte slice directly — no
// intermediate reader or TraceValue — so int/bool/nil/ok values decode
// without allocating.
func CutValue(b []byte, what string) (spec.Value, []byte, error) {
	if len(b) == 0 {
		return spec.Nil, nil, fmt.Errorf("wire: %s kind: truncated value", what)
	}
	kind, rest := spec.ValueKind(b[0]), b[1:]
	switch kind {
	case spec.VNil:
		return spec.Nil, rest, nil
	case spec.VOK:
		return spec.OK, rest, nil
	case spec.VInt, spec.VBool:
		v, n := binary.Varint(rest)
		if n <= 0 {
			return spec.Nil, nil, fmt.Errorf("wire: %s int: truncated varint", what)
		}
		if kind == spec.VBool {
			return spec.Bool(v != 0), rest[n:], nil
		}
		return spec.Int(v), rest[n:], nil
	case spec.VStr:
		s, rest, err := CutString(rest, what+" str")
		if err != nil {
			return spec.Nil, nil, err
		}
		return spec.Str(s), rest, nil
	default:
		return spec.Nil, nil, fmt.Errorf("wire: %s has unknown value kind %d", what, b[0])
	}
}

// ReadValue decodes a kind-tagged value in the NSGB value encoding. The
// payload is rebuilt through the spec constructors, exactly as the trace
// decoder does.
func ReadValue(r *bufio.Reader, what string) (spec.Value, error) {
	tv, err := binReader{r: r}.readValue(what)
	if err != nil {
		return spec.Nil, err
	}
	return decodeValue(tv)
}

// ReadTraceAuto sniffs the stream and dispatches to the binary or JSON
// reader: binary traces start with the NSGB magic, JSON traces with
// whitespace or '{'.
func ReadTraceAuto(r io.Reader) (*tname.Tree, Behavior, error) {
	br := bufio.NewReader(r)
	head, err := br.Peek(len(binaryMagic))
	if err != nil && len(head) == 0 {
		return nil, nil, fmt.Errorf("trace: read: %w", err)
	}
	if bytes.Equal(head, binaryMagic[:]) {
		return ReadBinaryTrace(br)
	}
	return ReadTrace(br)
}
