package event_test

import (
	"bytes"
	"testing"
	"testing/quick"

	"nestedsg/internal/event"
	"nestedsg/internal/generic"
	"nestedsg/internal/locking"
	"nestedsg/internal/tname"
	"nestedsg/internal/undolog"
	"nestedsg/internal/workload"
)

// TestTraceRoundTripProperty: encode→decode is the identity on generated
// traces (tree names, access metadata and every event), across protocols
// and failure injection.
func TestTraceRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		tr := tname.NewTree()
		root := workload.Build(tr, workload.Config{Seed: seed, TopLevel: 4, Depth: 2,
			Fanout: 3, Objects: 3, SpecName: "mixed", ParProb: 0.6, RetryProb: 0.4})
		proto := generic.Options{Seed: seed * 3, AbortProb: 0.03, MaxAborts: 4}
		if seed%2 == 0 {
			proto.Protocol = locking.Protocol{}
		} else {
			proto.Protocol = undolog.Protocol{}
		}
		b, _, err := generic.Run(tr, root, proto)
		if err != nil {
			return false
		}
		var buf bytes.Buffer
		if err := event.WriteTrace(&buf, tr, b); err != nil {
			return false
		}
		tr2, b2, err := event.ReadTrace(&buf)
		if err != nil {
			t.Logf("seed %d: decode: %v", seed, err)
			return false
		}
		if tr2.NumTx() != tr.NumTx() || tr2.NumObjects() != tr.NumObjects() {
			return false
		}
		for id := tname.TxID(0); int(id) < tr.NumTx(); id++ {
			if tr.Name(id) != tr2.Name(id) {
				return false
			}
			if tr.IsAccess(id) != tr2.IsAccess(id) {
				return false
			}
			if tr.IsAccess(id) && tr.AccessOp(id) != tr2.AccessOp(id) {
				return false
			}
		}
		return b.Equal(b2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestProjectionsPartitionSerialEvents: every serial non-completion event
// belongs to exactly one β|T (its transaction), and serial(β) is closed
// under projection.
func TestProjectionsPartitionSerialEvents(t *testing.T) {
	tr := tname.NewTree()
	root := workload.Build(tr, workload.Config{Seed: 5, TopLevel: 4, Depth: 2,
		Fanout: 3, Objects: 2, ParProb: 0.7})
	b, _, err := generic.Run(tr, root, generic.Options{Seed: 9, Protocol: locking.Protocol{}})
	if err != nil {
		t.Fatal(err)
	}
	serialB := b.Serial()
	total := 0
	for id := tname.TxID(0); int(id) < tr.NumTx(); id++ {
		total += len(serialB.ProjectTx(tr, id))
	}
	nonCompletion := 0
	for _, e := range serialB {
		if !e.Kind.IsCompletion() {
			nonCompletion++
		}
	}
	if total != nonCompletion {
		t.Fatalf("projections cover %d events, serial has %d non-completion events", total, nonCompletion)
	}
}
