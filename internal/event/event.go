// Package event defines the serial actions of the paper's systems and the
// finite behaviors (sequences of events) that every checker in this module
// consumes.
//
// The serial actions (§2.2.4) are CREATE, REQUEST_CREATE, REQUEST_COMMIT,
// COMMIT, ABORT, REPORT_COMMIT and REPORT_ABORT. Generic systems (§5.1) add
// the INFORM_COMMIT_AT(X) and INFORM_ABORT_AT(X) inputs of generic objects;
// serial(β) strips those, leaving the serial actions.
package event

import (
	"fmt"
	"strings"

	"nestedsg/internal/spec"
	"nestedsg/internal/tname"
)

// Kind identifies an action kind.
type Kind uint8

// Action kinds. The first block are the serial actions; the Inform kinds
// exist only in generic behaviors.
const (
	KindInvalid Kind = iota
	Create
	RequestCreate
	RequestCommit
	Commit
	Abort
	ReportCommit
	ReportAbort
	InformCommit
	InformAbort
)

var kindNames = [...]string{
	KindInvalid:   "INVALID",
	Create:        "CREATE",
	RequestCreate: "REQUEST_CREATE",
	RequestCommit: "REQUEST_COMMIT",
	Commit:        "COMMIT",
	Abort:         "ABORT",
	ReportCommit:  "REPORT_COMMIT",
	ReportAbort:   "REPORT_ABORT",
	InformCommit:  "INFORM_COMMIT",
	InformAbort:   "INFORM_ABORT",
}

// String returns the paper's name for the action kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// IsSerial reports whether the kind is a serial action kind (everything
// except the INFORM inputs of generic objects).
func (k Kind) IsSerial() bool { return k >= Create && k <= ReportAbort }

// IsCompletion reports whether the kind is a completion action (COMMIT or
// ABORT, §2.2.4).
func (k Kind) IsCompletion() bool { return k == Commit || k == Abort }

// IsReport reports whether the kind is a report action.
func (k Kind) IsReport() bool { return k == ReportCommit || k == ReportAbort }

// Event is a single occurrence of an action in a behavior.
//
//   - Create, RequestCreate, Commit, Abort, ReportAbort: Tx names the
//     transaction; Val is unused.
//   - RequestCommit, ReportCommit: Tx names the transaction, Val its return
//     value.
//   - InformCommit, InformAbort: Tx names the completed transaction and Obj
//     the object being informed; Obj is NoObj for every other kind.
type Event struct {
	Kind Kind
	Tx   tname.TxID
	Val  spec.Value
	Obj  tname.ObjID
}

// NewEvent builds a serial event with no object component.
func NewEvent(k Kind, tx tname.TxID) Event {
	return Event{Kind: k, Tx: tx, Obj: tname.NoObj}
}

// NewValEvent builds a serial event carrying a value.
func NewValEvent(k Kind, tx tname.TxID, v spec.Value) Event {
	return Event{Kind: k, Tx: tx, Val: v, Obj: tname.NoObj}
}

// NewInform builds an INFORM_COMMIT/INFORM_ABORT event at object x.
func NewInform(k Kind, tx tname.TxID, x tname.ObjID) Event {
	return Event{Kind: k, Tx: tx, Obj: x}
}

// Format renders the event using fully qualified transaction names.
func (e Event) Format(tr *tname.Tree) string {
	switch e.Kind {
	case RequestCommit, ReportCommit:
		return fmt.Sprintf("%s(%s, %s)", e.Kind, tr.Name(e.Tx), e.Val)
	case InformCommit, InformAbort:
		return fmt.Sprintf("%s_AT(%s)OF(%s)", e.Kind, tr.ObjectLabel(e.Obj), tr.Name(e.Tx))
	default:
		return fmt.Sprintf("%s(%s)", e.Kind, tr.Name(e.Tx))
	}
}

// Transaction returns transaction(π) as defined in §2.2.4: the transaction
// at which the action "happens" — the parent for requests and reports, the
// named transaction otherwise. Completion actions have no transaction() in
// the paper (they are scheduler-internal decisions); for them this returns
// the named transaction, which matches the paper's lowtransaction.
func (e Event) Transaction(tr *tname.Tree) tname.TxID {
	switch e.Kind {
	case RequestCreate, ReportCommit, ReportAbort:
		return tr.Parent(e.Tx)
	default:
		return e.Tx
	}
}

// HighTransaction returns hightransaction(π): transaction(π) for
// non-completion actions and parent(T) for a completion action of T.
func (e Event) HighTransaction(tr *tname.Tree) tname.TxID {
	if e.Kind.IsCompletion() {
		return tr.Parent(e.Tx)
	}
	return e.Transaction(tr)
}

// LowTransaction returns lowtransaction(π): transaction(π) for
// non-completion actions and T itself for a completion action of T.
func (e Event) LowTransaction(tr *tname.Tree) tname.TxID {
	if e.Kind.IsCompletion() {
		return e.Tx
	}
	return e.Transaction(tr)
}

// Object returns object(π) for CREATE or REQUEST_COMMIT events whose
// transaction is an access, and NoObj otherwise.
func (e Event) Object(tr *tname.Tree) tname.ObjID {
	if (e.Kind == Create || e.Kind == RequestCommit) && tr.IsAccess(e.Tx) {
		return tr.AccessObject(e.Tx)
	}
	return tname.NoObj
}

// Behavior is a finite sequence of events — a (prefix of a) behavior of one
// of the systems in this module.
type Behavior []Event

// Serial returns serial(β): the subsequence of serial actions.
func (b Behavior) Serial() Behavior {
	out := make(Behavior, 0, len(b))
	for _, e := range b {
		if e.Kind.IsSerial() {
			out = append(out, e)
		}
	}
	return out
}

// ProjectTx returns β|T: the subsequence of serial actions π with
// transaction(π) = T.
func (b Behavior) ProjectTx(tr *tname.Tree, t tname.TxID) Behavior {
	var out Behavior
	for _, e := range b {
		if e.Kind.IsSerial() && !e.Kind.IsCompletion() && e.Transaction(tr) == t {
			out = append(out, e)
		}
	}
	return out
}

// ProjectObj returns β|X: the subsequence of serial actions π with
// object(π) = X (CREATE and REQUEST_COMMIT events of accesses to X).
func (b Behavior) ProjectObj(tr *tname.Tree, x tname.ObjID) Behavior {
	var out Behavior
	for _, e := range b {
		if e.Object(tr) == x {
			out = append(out, e)
		}
	}
	return out
}

// CommitSet returns the set of transactions with a COMMIT event in b.
func (b Behavior) CommitSet() map[tname.TxID]bool {
	out := make(map[tname.TxID]bool)
	for _, e := range b {
		if e.Kind == Commit {
			out[e.Tx] = true
		}
	}
	return out
}

// AbortSet returns the set of transactions with an ABORT event in b.
func (b Behavior) AbortSet() map[tname.TxID]bool {
	out := make(map[tname.TxID]bool)
	for _, e := range b {
		if e.Kind == Abort {
			out[e.Tx] = true
		}
	}
	return out
}

// IsOrphan reports whether t is an orphan in b: some ancestor of t has an
// ABORT event in b (§2.2.4).
func IsOrphan(tr *tname.Tree, aborted map[tname.TxID]bool, t tname.TxID) bool {
	for u := t; u != tname.None; u = tr.Parent(u) {
		if aborted[u] {
			return true
		}
	}
	return false
}

// IsLive reports whether t is live in b: b contains CREATE(t) but no
// completion event for t.
func (b Behavior) IsLive(t tname.TxID) bool {
	created, completed := false, false
	for _, e := range b {
		if e.Tx != t {
			continue
		}
		switch e.Kind {
		case Create:
			created = true
		case Commit, Abort:
			completed = true
		default:
			// Requests, reports and informs do not affect liveness.
		}
	}
	return created && !completed
}

// Format renders the behavior one event per line.
func (b Behavior) Format(tr *tname.Tree) string {
	var sb strings.Builder
	for i, e := range b {
		fmt.Fprintf(&sb, "%4d  %s\n", i, e.Format(tr))
	}
	return sb.String()
}

// Equal reports whether two behaviors are identical event sequences.
func (b Behavior) Equal(o Behavior) bool {
	if len(b) != len(o) {
		return false
	}
	for i := range b {
		if b[i] != o[i] {
			return false
		}
	}
	return true
}

// Operations extracts the sequence of operations (access, value, object)
// corresponding to the REQUEST_COMMIT events of accesses in b — the paper's
// operations(β) operator.
func (b Behavior) Operations(tr *tname.Tree) []AccessOp {
	var out []AccessOp
	for _, e := range b {
		if e.Kind == RequestCommit && tr.IsAccess(e.Tx) {
			out = append(out, AccessOp{
				Tx:  e.Tx,
				Obj: tr.AccessObject(e.Tx),
				OV:  spec.OpVal{Op: tr.AccessOp(e.Tx), Val: e.Val},
			})
		}
	}
	return out
}

// AccessOp is an operation (T, v) with its object, as extracted from a
// behavior.
type AccessOp struct {
	Tx  tname.TxID
	Obj tname.ObjID
	OV  spec.OpVal
}
