package spec

// This file provides executable approximations of the paper's §6.1
// definitions — equieffectiveness and backward commutativity — used by the
// test suite to validate each Spec's Conflicts table against its Apply
// semantics.
//
// Equieffectiveness of two finite behaviors is, in general, a quantification
// over all continuations. For the deterministic specifications in this
// package, equality of canonically encoded states implies equieffectiveness
// (Apply is a function of the state), which is the direction soundness
// needs: if Conflicts reports "commute" the swapped sequence must be a
// behavior ending in an equal state.

// CommuteVerdict is the outcome of checking backward commutativity of a
// pair of operations in one particular context.
type CommuteVerdict uint8

// Verdicts of CommuteBackwardIn.
const (
	// Vacuous: perform(ξ a b) is not a behavior, so the definition's
	// hypothesis fails and this context says nothing.
	Vacuous CommuteVerdict = iota
	// Commutes: perform(ξ b a) is a behavior equieffective to
	// perform(ξ a b) (equal canonical final states).
	Commutes
	// Violates: perform(ξ a b) is a behavior but perform(ξ b a) either is
	// not a behavior or ends in a different state.
	Violates
)

// CommuteBackwardIn checks the backward-commutativity condition for the
// ordered pair (a, b) in the specific context ξ: if perform(ξ a b) is a
// behavior of sp, then perform(ξ b a) must be a behavior ending in an
// equieffective state.
func CommuteBackwardIn(sp Spec, xi []Op, a, b OpVal) CommuteVerdict {
	s, _ := Replay(sp, xi)

	s1, va := sp.Apply(s, a.Op)
	if va != a.Val {
		return Vacuous
	}
	s1, vb := sp.Apply(s1, b.Op)
	if vb != b.Val {
		return Vacuous
	}

	s2, vb2 := sp.Apply(s, b.Op)
	if vb2 != b.Val {
		return Violates
	}
	s2, va2 := sp.Apply(s2, a.Op)
	if va2 != a.Val {
		return Violates
	}
	if sp.Encode(s1) != sp.Encode(s2) {
		return Violates
	}
	return Commutes
}

// LegalOpVals returns every OpVal that op can produce when applied in the
// state reached by replaying ξ. For deterministic specs that is exactly one
// value.
func LegalOpVal(sp Spec, xi []Op, op Op) OpVal {
	s, _ := Replay(sp, xi)
	_, v := sp.Apply(s, op)
	return OpVal{Op: op, Val: v}
}
