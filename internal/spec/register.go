package spec

import (
	"fmt"
	"math/rand"
)

// Register is the read/write serial object of §3.1: a single location whose
// state is the most recently written value. Reads return the current value;
// writes store their argument and return OK.
//
// Its conflict relation is the classical one: two accesses conflict unless
// both are reads.
type Register struct {
	// InitVal is the initial value d of the object; the zero Register has
	// initial value Int(0).
	InitVal Value
}

// Name implements Spec.
func (Register) Name() string { return "register" }

// Init implements Spec.
func (r Register) Init() State {
	if r.InitVal.Kind == VNil {
		return Int(0)
	}
	return r.InitVal
}

// Apply implements Spec.
func (Register) Apply(s State, op Op) (State, Value) {
	cur := s.(Value)
	switch op.Kind {
	case OpRead:
		return cur, cur
	case OpWrite:
		return op.Arg, OK
	default:
		panic(fmt.Sprintf("register: unsupported op %s", op))
	}
}

// Conflicts implements Spec: conflict unless both operations are reads.
func (Register) Conflicts(a, b OpVal) bool {
	return a.Op.Kind != OpRead || b.Op.Kind != OpRead
}

// Encode implements Spec.
func (Register) Encode(s State) string { return s.(Value).String() }

// RandOp implements Spec: equal mix of reads and writes over a small domain.
func (Register) RandOp(r *rand.Rand) Op {
	if r.Intn(2) == 0 {
		return Op{Kind: OpRead}
	}
	return Op{Kind: OpWrite, Arg: Int(int64(r.Intn(8)))}
}

// IsWrite reports whether op is a write access of the read/write type. The
// simple-system audits of §3 use this to compute write-sequence(β, X).
func IsWrite(op Op) bool { return op.Kind == OpWrite }

// IsRead reports whether op is a read access of the read/write type.
func IsRead(op Op) bool { return op.Kind == OpRead }

// ReadOnly implements Spec.
func (Register) ReadOnly(op Op) bool { return op.Kind == OpRead }
