package spec

import (
	"fmt"
	"math/rand"
)

// Account is Weihl's bank-account type: deposits always succeed, withdrawals
// succeed only when the balance suffices (returning true/false), and balance
// reads the current amount. Its backward-commutativity structure is the
// standard subtle example:
//
//   - (deposit, OK) commutes with (deposit, OK);
//   - (withdraw a, true) commutes with (withdraw b, true): whenever both
//     succeed in one order from some state they succeed in the other and the
//     final balances agree;
//   - (withdraw, false) commutes with (withdraw, false) and with
//     (balance, v) — a failed withdrawal does not change state and its
//     failure is implied by the observed balance;
//   - (deposit, OK) conflicts with (withdraw, true), (withdraw, false) and
//     (balance, v): moving a deposit across any of them can change whether
//     the other's return value is legal;
//   - (withdraw, true) conflicts with (withdraw, false) and (balance, v).
//
// These entries are validated against the definition by exhaustive
// equieffectiveness checks in the package tests.
type Account struct{}

// Name implements Spec.
func (Account) Name() string { return "account" }

// Init implements Spec.
func (Account) Init() State { return int64(0) }

// Apply implements Spec.
func (Account) Apply(s State, op Op) (State, Value) {
	bal := s.(int64)
	switch op.Kind {
	case OpDeposit:
		return bal + op.Arg.Int, OK
	case OpWithdraw:
		if bal >= op.Arg.Int {
			return bal - op.Arg.Int, Bool(true)
		}
		return bal, Bool(false)
	case OpBalance:
		return bal, Int(bal)
	default:
		panic(fmt.Sprintf("account: unsupported op %s", op))
	}
}

// Conflicts implements Spec; see the type comment for the derivation.
func (Account) Conflicts(a, b OpVal) bool {
	return accountConflict(a, b) || accountConflict(b, a)
}

func accountConflict(a, b OpVal) bool {
	switch a.Op.Kind {
	case OpDeposit:
		// Deposits commute only with deposits.
		return b.Op.Kind != OpDeposit
	case OpWithdraw:
		if a.Val.AsBool() {
			// Successful withdrawal: commutes with successful withdrawals
			// and deposits... no: conflicts with deposit (handled from the
			// deposit side), conflicts with failed withdrawal and balance.
			switch b.Op.Kind {
			case OpWithdraw:
				return !b.Val.AsBool()
			case OpBalance:
				return true
			default:
				return false
			}
		}
		// Failed withdrawal: state unchanged; commutes with failed
		// withdrawals and balance, conflicts with everything that can
		// raise the balance past the threshold or drop it below.
		switch b.Op.Kind {
		case OpWithdraw:
			return b.Val.AsBool()
		default:
			return false
		}
	case OpBalance:
		// Balance commutes with balance and failed withdrawals.
		switch b.Op.Kind {
		case OpWithdraw:
			return b.Val.AsBool()
		default:
			return false
		}
	default:
		return true
	}
}

// Encode implements Spec.
func (Account) Encode(s State) string { return fmt.Sprintf("%d", s.(int64)) }

// RandOp implements Spec: deposit-heavy with occasional withdrawals and
// balance checks, over small amounts so failures occur.
func (Account) RandOp(r *rand.Rand) Op {
	switch r.Intn(5) {
	case 0:
		return Op{Kind: OpBalance}
	case 1, 2:
		return Op{Kind: OpWithdraw, Arg: Int(int64(1 + r.Intn(6)))}
	default:
		return Op{Kind: OpDeposit, Arg: Int(int64(1 + r.Intn(6)))}
	}
}

// ReadOnly implements Spec.
//
// Withdraw is classified as an update even when it fails: a locking object
// cannot know the outcome before serializing the access.
func (Account) ReadOnly(op Op) bool { return op.Kind == OpBalance }
