package spec

import (
	"fmt"
	"math/rand"
	"strings"
)

// Queue is a FIFO queue of integers. enq returns OK; deq returns the head,
// or nil on an empty queue. FIFO order makes almost everything conflict —
// the worst case for type-specific concurrency — which gives the benchmark
// suite a pessimal data point alongside Counter's optimal one.
type Queue struct{}

type queueState []int64

// Name implements Spec.
func (Queue) Name() string { return "queue" }

// Init implements Spec.
func (Queue) Init() State { return queueState(nil) }

// Apply implements Spec.
func (Queue) Apply(s State, op Op) (State, Value) {
	st := s.(queueState)
	switch op.Kind {
	case OpEnq:
		out := make(queueState, len(st)+1)
		copy(out, st)
		out[len(st)] = op.Arg.Int
		return out, OK
	case OpDeq:
		if len(st) == 0 {
			return st, Nil
		}
		out := make(queueState, len(st)-1)
		copy(out, st[1:])
		return out, Int(st[0])
	default:
		panic(fmt.Sprintf("queue: unsupported op %s", op))
	}
}

// Conflicts implements Spec.
//
// enq(a)/enq(a) commute (equal sequences); enq of distinct values conflict;
// deq conflicts with everything including other deqs (values and emptiness
// pin positions), except that two empty deqs (both returning nil) commute.
func (Queue) Conflicts(a, b OpVal) bool {
	if a.Op.Kind == OpEnq && b.Op.Kind == OpEnq {
		return a.Op.Arg != b.Op.Arg
	}
	if a.Op.Kind == OpDeq && b.Op.Kind == OpDeq {
		return !(a.Val == Nil && b.Val == Nil)
	}
	return true
}

// Encode implements Spec.
func (Queue) Encode(s State) string {
	st := s.(queueState)
	parts := make([]string, len(st))
	for i, v := range st {
		parts[i] = fmt.Sprintf("%d", v)
	}
	return "<" + strings.Join(parts, ",") + ">"
}

// RandOp implements Spec.
func (Queue) RandOp(r *rand.Rand) Op {
	if r.Intn(3) == 0 {
		return Op{Kind: OpDeq}
	}
	return Op{Kind: OpEnq, Arg: Int(int64(r.Intn(4)))}
}

// ReadOnly implements Spec.
func (Queue) ReadOnly(op Op) bool { return false }
