package spec

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
)

// IntSet is a set of small integers with blind insert/remove, a membership
// test and a size query. Blind updates on distinct elements commute; updates
// on the same element commute with each other only when they are the same
// operation (insert/insert or remove/remove are idempotent in either order).
type IntSet struct{}

// setState is an immutable sorted slice of distinct elements.
type setState []int64

// Name implements Spec.
func (IntSet) Name() string { return "set" }

// Init implements Spec.
func (IntSet) Init() State { return setState(nil) }

// Apply implements Spec.
func (IntSet) Apply(s State, op Op) (State, Value) {
	st := s.(setState)
	switch op.Kind {
	case OpInsert:
		if st.has(op.Arg.Int) {
			return st, OK
		}
		return st.with(op.Arg.Int), OK
	case OpRemove:
		if !st.has(op.Arg.Int) {
			return st, OK
		}
		return st.without(op.Arg.Int), OK
	case OpMember:
		return st, Bool(st.has(op.Arg.Int))
	case OpSize:
		return st, Int(int64(len(st)))
	default:
		panic(fmt.Sprintf("set: unsupported op %s", op))
	}
}

func (st setState) has(v int64) bool {
	i := sort.Search(len(st), func(i int) bool { return st[i] >= v })
	return i < len(st) && st[i] == v
}

func (st setState) with(v int64) setState {
	i := sort.Search(len(st), func(i int) bool { return st[i] >= v })
	out := make(setState, 0, len(st)+1)
	out = append(out, st[:i]...)
	out = append(out, v)
	return append(out, st[i:]...)
}

func (st setState) without(v int64) setState {
	i := sort.Search(len(st), func(i int) bool { return st[i] >= v })
	out := make(setState, 0, len(st)-1)
	out = append(out, st[:i]...)
	return append(out, st[i+1:]...)
}

// Conflicts implements Spec.
//
// Derivation: insert(a)/insert(a) and remove(a)/remove(a) are idempotent
// blind updates, hence commute; insert(a)/remove(a) do not (the final state
// depends on order). Updates on distinct elements commute. member(a,v)
// commutes with updates on other elements and with a same-element update
// whose effect is implied by v (insert after member=true, remove after
// member=false are no-ops in every state reaching that return) — we keep the
// table conservative and declare member(a) in conflict with any update of a.
// size conflicts with every update (its value pins the cardinality).
func (IntSet) Conflicts(a, b OpVal) bool {
	return setConflict(a, b) || setConflict(b, a)
}

func isSetUpdate(k OpKind) bool { return k == OpInsert || k == OpRemove }

func setConflict(a, b OpVal) bool {
	switch a.Op.Kind {
	case OpInsert, OpRemove:
		switch b.Op.Kind {
		case OpInsert, OpRemove:
			if a.Op.Arg != b.Op.Arg {
				return false
			}
			return a.Op.Kind != b.Op.Kind
		case OpMember:
			return a.Op.Arg == b.Op.Arg
		case OpSize:
			return true
		default:
			return false
		}
	case OpMember:
		if isSetUpdate(b.Op.Kind) {
			return a.Op.Arg == b.Op.Arg
		}
		return false
	case OpSize:
		return isSetUpdate(b.Op.Kind)
	default:
		return true
	}
}

// Encode implements Spec.
func (IntSet) Encode(s State) string {
	st := s.(setState)
	parts := make([]string, len(st))
	for i, v := range st {
		parts[i] = fmt.Sprintf("%d", v)
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// RandOp implements Spec over a domain of 6 elements.
func (IntSet) RandOp(r *rand.Rand) Op {
	arg := Int(int64(r.Intn(6)))
	switch r.Intn(6) {
	case 0:
		return Op{Kind: OpSize}
	case 1:
		return Op{Kind: OpMember, Arg: arg}
	case 2, 3:
		return Op{Kind: OpRemove, Arg: arg}
	default:
		return Op{Kind: OpInsert, Arg: arg}
	}
}

// ReadOnly implements Spec.
func (IntSet) ReadOnly(op Op) bool { return op.Kind == OpMember || op.Kind == OpSize }
