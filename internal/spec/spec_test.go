package spec

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestValueString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Nil, "nil"},
		{OK, "OK"},
		{Int(42), "42"},
		{Int(-3), "-3"},
		{Bool(true), "true"},
		{Bool(false), "false"},
		{Str("hi"), `"hi"`},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("%#v.String() = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestValueComparability(t *testing.T) {
	if Int(1) == Int(2) {
		t.Error("distinct ints compare equal")
	}
	if Int(1) != Int(1) {
		t.Error("equal ints compare unequal")
	}
	if Bool(false) == Nil {
		t.Error("false must differ from nil")
	}
	if Bool(true) == Int(1) {
		t.Error("bool true must differ from int 1")
	}
}

func TestOpString(t *testing.T) {
	if got := (Op{Kind: OpRead}).String(); got != "read" {
		t.Errorf("read op renders %q", got)
	}
	if got := (Op{Kind: OpWrite, Arg: Int(5)}).String(); got != "write(5)" {
		t.Errorf("write op renders %q", got)
	}
}

func TestByNameAndAll(t *testing.T) {
	for _, sp := range All() {
		got := ByName(sp.Name())
		if got == nil || got.Name() != sp.Name() {
			t.Errorf("ByName(%q) failed", sp.Name())
		}
	}
	if ByName("nope") != nil {
		t.Error("ByName must return nil for unknown specs")
	}
	if len(All()) != 6 {
		t.Errorf("expected 6 built-in specs, got %d", len(All()))
	}
}

// --- Register semantics -------------------------------------------------

func TestRegisterSemantics(t *testing.T) {
	sp := Register{}
	st := sp.Init()
	var v Value
	st, v = sp.Apply(st, Op{Kind: OpRead})
	if v != Int(0) {
		t.Errorf("initial read = %s", v)
	}
	st, v = sp.Apply(st, Op{Kind: OpWrite, Arg: Int(9)})
	if v != OK {
		t.Errorf("write returned %s", v)
	}
	_, v = sp.Apply(st, Op{Kind: OpRead})
	if v != Int(9) {
		t.Errorf("read after write = %s", v)
	}
}

func TestRegisterCustomInit(t *testing.T) {
	sp := Register{InitVal: Int(5)}
	_, v := sp.Apply(sp.Init(), Op{Kind: OpRead})
	if v != Int(5) {
		t.Errorf("custom initial read = %s", v)
	}
}

func TestRegisterConflicts(t *testing.T) {
	sp := Register{}
	r := OpVal{Op: Op{Kind: OpRead}, Val: Int(0)}
	w := OpVal{Op: Op{Kind: OpWrite, Arg: Int(1)}, Val: OK}
	if sp.Conflicts(r, r) {
		t.Error("read/read must not conflict")
	}
	if !sp.Conflicts(r, w) || !sp.Conflicts(w, r) || !sp.Conflicts(w, w) {
		t.Error("any pair involving a write must conflict")
	}
}

// --- Counter semantics --------------------------------------------------

func TestCounterSemantics(t *testing.T) {
	sp := Counter{}
	st := sp.Init()
	st, _ = sp.Apply(st, Op{Kind: OpIncrement, Arg: Int(5)})
	st, _ = sp.Apply(st, Op{Kind: OpDecrement, Arg: Int(2)})
	_, v := sp.Apply(st, Op{Kind: OpGet})
	if v != Int(3) {
		t.Errorf("counter = %s, want 3", v)
	}
}

func TestCounterConflicts(t *testing.T) {
	sp := Counter{}
	inc := OpVal{Op: Op{Kind: OpIncrement, Arg: Int(1)}, Val: OK}
	dec := OpVal{Op: Op{Kind: OpDecrement, Arg: Int(2)}, Val: OK}
	get := OpVal{Op: Op{Kind: OpGet}, Val: Int(0)}
	if sp.Conflicts(inc, dec) || sp.Conflicts(inc, inc) {
		t.Error("blind counter updates must commute")
	}
	if !sp.Conflicts(inc, get) || !sp.Conflicts(get, dec) {
		t.Error("get must conflict with updates")
	}
	if sp.Conflicts(get, get) {
		t.Error("two gets must commute")
	}
}

// --- Account semantics --------------------------------------------------

func TestAccountSemantics(t *testing.T) {
	sp := Account{}
	st := sp.Init()
	st, v := sp.Apply(st, Op{Kind: OpWithdraw, Arg: Int(1)})
	if v != Bool(false) {
		t.Errorf("withdraw from empty account = %s", v)
	}
	st, v = sp.Apply(st, Op{Kind: OpDeposit, Arg: Int(10)})
	if v != OK {
		t.Errorf("deposit = %s", v)
	}
	st, v = sp.Apply(st, Op{Kind: OpWithdraw, Arg: Int(4)})
	if v != Bool(true) {
		t.Errorf("withdraw 4 of 10 = %s", v)
	}
	_, v = sp.Apply(st, Op{Kind: OpBalance})
	if v != Int(6) {
		t.Errorf("balance = %s, want 6", v)
	}
}

func TestAccountConflictTable(t *testing.T) {
	sp := Account{}
	dep := OpVal{Op: Op{Kind: OpDeposit, Arg: Int(3)}, Val: OK}
	wOK := OpVal{Op: Op{Kind: OpWithdraw, Arg: Int(2)}, Val: Bool(true)}
	wNo := OpVal{Op: Op{Kind: OpWithdraw, Arg: Int(9)}, Val: Bool(false)}
	bal := OpVal{Op: Op{Kind: OpBalance}, Val: Int(4)}

	commutes := [][2]OpVal{{dep, dep}, {wOK, wOK}, {wNo, wNo}, {wNo, bal}, {bal, bal}}
	conflicts := [][2]OpVal{{dep, wOK}, {dep, wNo}, {dep, bal}, {wOK, wNo}, {wOK, bal}}
	for _, p := range commutes {
		if sp.Conflicts(p[0], p[1]) || sp.Conflicts(p[1], p[0]) {
			t.Errorf("%s and %s should commute", p[0], p[1])
		}
	}
	for _, p := range conflicts {
		if !sp.Conflicts(p[0], p[1]) || !sp.Conflicts(p[1], p[0]) {
			t.Errorf("%s and %s should conflict", p[0], p[1])
		}
	}
}

// TestAccountConflictWitnesses exhibits, for each conflicting pair, a
// concrete context in which backward commutativity genuinely fails —
// showing the table is not merely over-conservative on these entries.
func TestAccountConflictWitnesses(t *testing.T) {
	sp := Account{}
	dep5 := Op{Kind: OpDeposit, Arg: Int(5)}
	w5 := Op{Kind: OpWithdraw, Arg: Int(5)}
	balOp := Op{Kind: OpBalance}

	cases := []struct {
		name string
		xi   []Op
		a, b OpVal
	}{
		{"deposit/withdraw-true on empty", nil,
			OpVal{Op: dep5, Val: OK}, OpVal{Op: w5, Val: Bool(true)}},
		{"deposit/balance", nil,
			OpVal{Op: dep5, Val: OK}, OpVal{Op: balOp, Val: Int(5)}},
		{"withdraw-true/balance", []Op{{Kind: OpDeposit, Arg: Int(5)}},
			OpVal{Op: w5, Val: Bool(true)}, OpVal{Op: balOp, Val: Int(0)}},
		{"withdraw-true/withdraw-false", []Op{{Kind: OpDeposit, Arg: Int(7)}},
			OpVal{Op: w5, Val: Bool(true)}, OpVal{Op: Op{Kind: OpWithdraw, Arg: Int(3)}, Val: Bool(false)}},
	}
	for _, c := range cases {
		if got := CommuteBackwardIn(sp, c.xi, c.a, c.b); got != Violates {
			t.Errorf("%s: verdict %v, want Violates", c.name, got)
		}
	}
}

// --- Set semantics ------------------------------------------------------

func TestSetSemantics(t *testing.T) {
	sp := IntSet{}
	st := sp.Init()
	st, _ = sp.Apply(st, Op{Kind: OpInsert, Arg: Int(3)})
	st, _ = sp.Apply(st, Op{Kind: OpInsert, Arg: Int(1)})
	st, _ = sp.Apply(st, Op{Kind: OpInsert, Arg: Int(3)}) // duplicate
	_, v := sp.Apply(st, Op{Kind: OpSize})
	if v != Int(2) {
		t.Errorf("size = %s, want 2", v)
	}
	_, v = sp.Apply(st, Op{Kind: OpMember, Arg: Int(1)})
	if v != Bool(true) {
		t.Error("member(1) should be true")
	}
	st, _ = sp.Apply(st, Op{Kind: OpRemove, Arg: Int(1)})
	_, v = sp.Apply(st, Op{Kind: OpMember, Arg: Int(1)})
	if v != Bool(false) {
		t.Error("member(1) after remove should be false")
	}
	if sp.Encode(st) != "{3}" {
		t.Errorf("encode = %s", sp.Encode(st))
	}
}

func TestSetConflicts(t *testing.T) {
	sp := IntSet{}
	ins3 := OpVal{Op: Op{Kind: OpInsert, Arg: Int(3)}, Val: OK}
	ins4 := OpVal{Op: Op{Kind: OpInsert, Arg: Int(4)}, Val: OK}
	rem3 := OpVal{Op: Op{Kind: OpRemove, Arg: Int(3)}, Val: OK}
	mem3 := OpVal{Op: Op{Kind: OpMember, Arg: Int(3)}, Val: Bool(true)}
	size := OpVal{Op: Op{Kind: OpSize}, Val: Int(0)}

	if sp.Conflicts(ins3, ins4) || sp.Conflicts(ins3, ins3) {
		t.Error("inserts on distinct/same elements commute")
	}
	if !sp.Conflicts(ins3, rem3) {
		t.Error("insert/remove of the same element conflict")
	}
	if !sp.Conflicts(ins3, mem3) || sp.Conflicts(ins4, mem3) {
		t.Error("member conflicts exactly with same-element updates")
	}
	if !sp.Conflicts(size, ins3) || sp.Conflicts(size, mem3) {
		t.Error("size conflicts with updates only")
	}
}

// --- AppendLog semantics ------------------------------------------------

func TestAppendLogSemantics(t *testing.T) {
	sp := AppendLog{}
	st := sp.Init()
	st, _ = sp.Apply(st, Op{Kind: OpAppend, Arg: Int(1)})
	st, _ = sp.Apply(st, Op{Kind: OpAppend, Arg: Int(2)})
	_, v := sp.Apply(st, Op{Kind: OpLen})
	if v != Int(2) {
		t.Errorf("len = %s", v)
	}
	if sp.Encode(st) != "[1,2]" {
		t.Errorf("encode = %s", sp.Encode(st))
	}
}

func TestAppendLogConflicts(t *testing.T) {
	sp := AppendLog{}
	a1 := OpVal{Op: Op{Kind: OpAppend, Arg: Int(1)}, Val: OK}
	a2 := OpVal{Op: Op{Kind: OpAppend, Arg: Int(2)}, Val: OK}
	ln := OpVal{Op: Op{Kind: OpLen}, Val: Int(0)}
	if sp.Conflicts(a1, a1) {
		t.Error("appends of equal values commute")
	}
	if !sp.Conflicts(a1, a2) {
		t.Error("appends of distinct values conflict")
	}
	if !sp.Conflicts(a1, ln) || sp.Conflicts(ln, ln) {
		t.Error("len conflicts with append only")
	}
}

// --- Queue semantics ----------------------------------------------------

func TestQueueSemantics(t *testing.T) {
	sp := Queue{}
	st := sp.Init()
	_, v := sp.Apply(st, Op{Kind: OpDeq})
	if v != Nil {
		t.Errorf("deq on empty = %s", v)
	}
	st, _ = sp.Apply(st, Op{Kind: OpEnq, Arg: Int(1)})
	st, _ = sp.Apply(st, Op{Kind: OpEnq, Arg: Int(2)})
	st, v = sp.Apply(st, Op{Kind: OpDeq})
	if v != Int(1) {
		t.Errorf("FIFO violated: deq = %s", v)
	}
	st, v = sp.Apply(st, Op{Kind: OpDeq})
	if v != Int(2) {
		t.Errorf("FIFO violated: deq = %s", v)
	}
	if sp.Encode(st) != "<>" {
		t.Errorf("encode = %s", sp.Encode(st))
	}
}

func TestQueueConflicts(t *testing.T) {
	sp := Queue{}
	e1 := OpVal{Op: Op{Kind: OpEnq, Arg: Int(1)}, Val: OK}
	e2 := OpVal{Op: Op{Kind: OpEnq, Arg: Int(2)}, Val: OK}
	dNil := OpVal{Op: Op{Kind: OpDeq}, Val: Nil}
	d1 := OpVal{Op: Op{Kind: OpDeq}, Val: Int(1)}
	if sp.Conflicts(e1, e1) {
		t.Error("equal enqueues commute")
	}
	if !sp.Conflicts(e1, e2) || !sp.Conflicts(e1, d1) || !sp.Conflicts(d1, d1) {
		t.Error("distinct enqueues and dequeues conflict")
	}
	if sp.Conflicts(dNil, dNil) {
		t.Error("two empty dequeues commute")
	}
}

// --- Cross-cutting properties -------------------------------------------

// TestConflictSymmetry: every Conflicts relation must be symmetric (the
// paper's backward commutativity is symmetric by definition).
func TestConflictSymmetry(t *testing.T) {
	for _, sp := range All() {
		sp := sp
		t.Run(sp.Name(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(7))
			for k := 0; k < 500; k++ {
				xi := randomContext(sp, rng, 6)
				a := LegalOpVal(sp, xi, sp.RandOp(rng))
				b := LegalOpVal(sp, xi, sp.RandOp(rng))
				if sp.Conflicts(a, b) != sp.Conflicts(b, a) {
					t.Fatalf("asymmetric conflict: %s vs %s", a, b)
				}
			}
		})
	}
}

// TestConflictTablesConservative is the soundness property the §6
// construction needs: whenever Conflicts reports that two operations
// commute, swapping them in any context where both are legal must yield a
// behavior ending in an equivalent state.
func TestConflictTablesConservative(t *testing.T) {
	for _, sp := range All() {
		sp := sp
		t.Run(sp.Name(), func(t *testing.T) {
			f := func(seed int64) bool {
				rng := rand.New(rand.NewSource(seed))
				for k := 0; k < 60; k++ {
					xi := randomContext(sp, rng, rng.Intn(8))
					st, _ := Replay(sp, xi)
					// Draw a and b legal in sequence after ξ, so the
					// backward-commutativity premise holds.
					opA := sp.RandOp(rng)
					s1, va := sp.Apply(st, opA)
					a := OpVal{Op: opA, Val: va}
					opB := sp.RandOp(rng)
					_, vb := sp.Apply(s1, opB)
					b := OpVal{Op: opB, Val: vb}
					if !sp.Conflicts(a, b) {
						if CommuteBackwardIn(sp, xi, a, b) == Violates {
							t.Logf("non-conservative: %s, %s in context %v", a, b, xi)
							return false
						}
					}
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestReadOnlyClassification: ReadOnly operations must not change the
// encoded state.
func TestReadOnlyClassification(t *testing.T) {
	for _, sp := range All() {
		sp := sp
		t.Run(sp.Name(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(11))
			for k := 0; k < 300; k++ {
				xi := randomContext(sp, rng, rng.Intn(6))
				st, _ := Replay(sp, xi)
				op := sp.RandOp(rng)
				if !sp.ReadOnly(op) {
					continue
				}
				st2, _ := sp.Apply(st, op)
				if sp.Encode(st) != sp.Encode(st2) {
					t.Fatalf("read-only op %s changed state %s -> %s", op, sp.Encode(st), sp.Encode(st2))
				}
			}
		})
	}
}

// TestApplyIsPure: Apply must not mutate its input state.
func TestApplyIsPure(t *testing.T) {
	for _, sp := range All() {
		sp := sp
		t.Run(sp.Name(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(13))
			for k := 0; k < 200; k++ {
				xi := randomContext(sp, rng, rng.Intn(6))
				st, _ := Replay(sp, xi)
				before := sp.Encode(st)
				sp.Apply(st, sp.RandOp(rng))
				if sp.Encode(st) != before {
					t.Fatalf("Apply mutated its input state")
				}
			}
		})
	}
}

// TestIsBehavior checks the replay-based legality test.
func TestIsBehavior(t *testing.T) {
	sp := Register{}
	good := []OpVal{
		{Op: Op{Kind: OpWrite, Arg: Int(3)}, Val: OK},
		{Op: Op{Kind: OpRead}, Val: Int(3)},
	}
	if ok, _ := IsBehavior(sp, good); !ok {
		t.Error("legal sequence rejected")
	}
	bad := []OpVal{
		{Op: Op{Kind: OpWrite, Arg: Int(3)}, Val: OK},
		{Op: Op{Kind: OpRead}, Val: Int(4)},
	}
	ok, i := IsBehavior(sp, bad)
	if ok || i != 1 {
		t.Errorf("IsBehavior(bad) = %v, %d", ok, i)
	}
}

// TestCommuteVacuous: when the premise sequence is not a behavior, the
// verdict is Vacuous.
func TestCommuteVacuous(t *testing.T) {
	sp := Register{}
	a := OpVal{Op: Op{Kind: OpRead}, Val: Int(99)} // wrong value in empty context
	b := OpVal{Op: Op{Kind: OpWrite, Arg: Int(1)}, Val: OK}
	if got := CommuteBackwardIn(sp, nil, a, b); got != Vacuous {
		t.Errorf("verdict = %v, want Vacuous", got)
	}
}

// randomContext draws a random legal operation sequence of length n.
func randomContext(sp Spec, rng *rand.Rand, n int) []Op {
	xi := make([]Op, n)
	for i := range xi {
		xi[i] = sp.RandOp(rng)
	}
	return xi
}

// TestConflictWitnessesAcrossTypes exhibits, for key conflicting pairs of
// every non-register type, a concrete context where backward commutativity
// genuinely fails — the tables are not merely over-conservative there.
func TestConflictWitnessesAcrossTypes(t *testing.T) {
	type wit struct {
		name string
		sp   Spec
		xi   []Op
		a, b OpVal
	}
	cases := []wit{
		{"counter inc/get", Counter{}, nil,
			OpVal{Op: Op{Kind: OpIncrement, Arg: Int(2)}, Val: OK},
			OpVal{Op: Op{Kind: OpGet}, Val: Int(2)}},
		{"set insert/remove same element", IntSet{}, []Op{{Kind: OpInsert, Arg: Int(1)}},
			OpVal{Op: Op{Kind: OpRemove, Arg: Int(1)}, Val: OK},
			OpVal{Op: Op{Kind: OpInsert, Arg: Int(1)}, Val: OK}},
		{"set insert/member same element", IntSet{}, nil,
			OpVal{Op: Op{Kind: OpInsert, Arg: Int(3)}, Val: OK},
			OpVal{Op: Op{Kind: OpMember, Arg: Int(3)}, Val: Bool(true)}},
		{"set insert/size", IntSet{}, nil,
			OpVal{Op: Op{Kind: OpInsert, Arg: Int(3)}, Val: OK},
			OpVal{Op: Op{Kind: OpSize}, Val: Int(1)}},
		{"appendlog append/len", AppendLog{}, nil,
			OpVal{Op: Op{Kind: OpAppend, Arg: Int(1)}, Val: OK},
			OpVal{Op: Op{Kind: OpLen}, Val: Int(1)}},
		{"queue enq/deq", Queue{}, nil,
			OpVal{Op: Op{Kind: OpEnq, Arg: Int(1)}, Val: OK},
			OpVal{Op: Op{Kind: OpDeq}, Val: Int(1)}},
		{"queue deq/deq distinct heads", Queue{}, []Op{{Kind: OpEnq, Arg: Int(1)}, {Kind: OpEnq, Arg: Int(2)}},
			OpVal{Op: Op{Kind: OpDeq}, Val: Int(1)},
			OpVal{Op: Op{Kind: OpDeq}, Val: Int(2)}},
	}
	for _, c := range cases {
		if !c.sp.Conflicts(c.a, c.b) {
			t.Errorf("%s: table says commute", c.name)
			continue
		}
		if got := CommuteBackwardIn(c.sp, c.xi, c.a, c.b); got != Violates {
			t.Errorf("%s: verdict %v, want Violates", c.name, got)
		}
	}
}

// TestOpKindStringsUnique: every op kind renders a distinct mnemonic (the
// trace codec relies on this for round-trips).
func TestOpKindStringsUnique(t *testing.T) {
	seen := map[string]OpKind{}
	for k := OpKind(0); k <= OpDeq; k++ {
		s := k.String()
		if prev, dup := seen[s]; dup {
			t.Errorf("kinds %d and %d both render %q", prev, k, s)
		}
		seen[s] = k
	}
}
