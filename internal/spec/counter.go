package spec

import (
	"fmt"
	"math/rand"
)

// Counter is an integer counter supporting blind increments and decrements
// plus a get. Increments and decrements commute backward with one another,
// so under the §6 construction they never conflict — the canonical example
// of type-specific concurrency that read/write locking cannot exploit.
type Counter struct{}

// Name implements Spec.
func (Counter) Name() string { return "counter" }

// Init implements Spec.
func (Counter) Init() State { return int64(0) }

// Apply implements Spec.
func (Counter) Apply(s State, op Op) (State, Value) {
	cur := s.(int64)
	switch op.Kind {
	case OpIncrement:
		return cur + op.Arg.Int, OK
	case OpDecrement:
		return cur - op.Arg.Int, OK
	case OpGet:
		return cur, Int(cur)
	default:
		panic(fmt.Sprintf("counter: unsupported op %s", op))
	}
}

// Conflicts implements Spec.
//
// inc/dec are blind (return OK) and addition is commutative, so any two of
// them commute backward. get returns the current value, so it conflicts
// with any update; two gets commute.
func (Counter) Conflicts(a, b OpVal) bool {
	aUpd := a.Op.Kind == OpIncrement || a.Op.Kind == OpDecrement
	bUpd := b.Op.Kind == OpIncrement || b.Op.Kind == OpDecrement
	if aUpd && bUpd {
		return false
	}
	if !aUpd && !bUpd { // two gets
		return false
	}
	return true
}

// Encode implements Spec.
func (Counter) Encode(s State) string { return fmt.Sprintf("%d", s.(int64)) }

// RandOp implements Spec: mostly updates, occasionally a get.
func (Counter) RandOp(r *rand.Rand) Op {
	switch r.Intn(4) {
	case 0:
		return Op{Kind: OpGet}
	case 1:
		return Op{Kind: OpDecrement, Arg: Int(int64(1 + r.Intn(4)))}
	default:
		return Op{Kind: OpIncrement, Arg: Int(int64(1 + r.Intn(4)))}
	}
}

// ReadOnly implements Spec.
func (Counter) ReadOnly(op Op) bool { return op.Kind == OpGet }
